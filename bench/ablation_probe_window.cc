/**
 * @file
 * Ablation: Litmus-test window length.
 *
 * The paper measures the first 45M instructions of the Python startup
 * (Section 7.1). Shorter windows probe less of the memory-heavy
 * import phases (noisier congestion estimates); the full startup adds
 * nothing but latency before the price can be quoted. This sweep
 * recalibrates and re-prices at several window lengths and reports
 * the accuracy each achieves.
 */

#include <iostream>

#include "bench_util.h"
#include "core/calibration.h"

using namespace litmus;

int
main()
{
    printBanner(std::cout, "Ablation: probe window length");

    TextTable table({"window (Minstr)", "litmus discount %",
                     "ideal discount %", "mean |err| vs ideal"});

    const unsigned reps = bench::reps(3);
    double err45 = 0, errShort = 0;

    for (double window : {5e6, 15e6, 30e6, 45e6}) {
        pricing::CalibrationConfig ccfg = bench::dedicatedCalibration();
        ccfg.levels = {4, 10, 16, 22};
        ccfg.probeWindowOverride = window;
        const auto cal = pricing::calibrate(ccfg);
        const pricing::DiscountModel model(cal.congestion,
                                           cal.performance);

        pricing::ExperimentConfig cfg;
        cfg.coRunners = 26;
        cfg.layoutOnePerCore();
        cfg.repetitions = reps;
        cfg.probeWindowOverride = window;

        const auto result = pricing::runPricingExperiment(cfg, model);
        std::vector<double> errs;
        for (const auto &row : result.rows)
            errs.push_back(row.totalError);
        const double err = meanAbs(errs);
        if (window == 45e6)
            err45 = err;
        if (window == 5e6)
            errShort = err;
        table.addRow({TextTable::num(window / 1e6, 0),
                      TextTable::num(100 * result.litmusDiscount(), 1),
                      TextTable::num(100 * result.idealDiscount(), 1),
                      TextTable::num(err)});
    }
    table.print(std::cout);

    std::cout << "\npaper=    uses the first 45M instructions of the "
                 "startup (Section 7.1)\n"
              << "measured= |err| at 5M window "
              << TextTable::num(errShort) << " vs at 45M "
              << TextTable::num(err45) << "\n";
    return 0;
}
