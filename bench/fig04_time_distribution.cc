/**
 * @file
 * Figure 4: distribution of execution time between T_private and
 * T_shared when running alone.
 *
 * Paper: compute-bound functions up to 99.96% private (float-py);
 * memory-bound functions (fib-nj, graph workloads) markedly lower.
 */

#include <iostream>

#include "bench_util.h"
#include "core/calibration.h"
#include "workload/suite.h"
#include "sim/machine_catalog.h"

using namespace litmus;

int
main()
{
    printBanner(std::cout,
                "Figure 4: T_private / T_shared distribution (solo)");

    const auto machine = sim::MachineCatalog::get("cascade-5218");

    TextTable table({"function", "Tprivate %", "Tshared %"});
    double meanShared = 0;
    double floatShare = 0, fibNjShare = 0;
    const auto &suite = workload::table1Suite();
    for (const auto &spec : suite) {
        const auto solo = pricing::measureSoloBaseline(machine, spec);
        const double shared = solo.sharedCpi / solo.totalCpi();
        meanShared += shared;
        if (spec.name == "float-py")
            floatShare = shared;
        if (spec.name == "fib-nj")
            fibNjShare = shared;
        table.addRow({spec.name, TextTable::num(100 * (1 - shared), 2),
                      TextTable::num(100 * shared, 2)});
    }
    meanShared /= static_cast<double>(suite.size());
    table.addRow({"mean", TextTable::num(100 * (1 - meanShared), 2),
                  TextTable::num(100 * meanShared, 2)});
    table.print(std::cout);

    std::cout << "\npaper=    float-py up to 99.96% private; fib-nj "
                 "clearly shared-heavy\n"
              << "measured= float-py "
              << TextTable::num(100 * (1 - floatShare), 2)
              << "% private; fib-nj "
              << TextTable::num(100 * fibNjShare, 1) << "% shared\n";
    return 0;
}
