/**
 * @file
 * Figure 12: weighted error rates of Litmus prices against ideal
 * prices (26 co-runners, one function per core).
 *
 * Paper: average absolute error 0.023; P_private errors average
 * 0.018 (max 0.079), P_shared 0.007 (max 0.040).
 */

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "core/calibration.h"

using namespace litmus;

int
main()
{
    printBanner(std::cout,
                "Figure 12: weighted price error rates vs ideal");

    std::cout << "calibrating...\n";
    const auto cal = pricing::calibrate(bench::dedicatedCalibration());
    const pricing::DiscountModel model(cal.congestion, cal.performance);

    pricing::ExperimentConfig cfg;
    cfg.coRunners = 26;
    cfg.layoutOnePerCore();
    cfg.repetitions = bench::reps();

    const auto result = pricing::runPricingExperiment(cfg, model);

    TextTable table({"function", "Pprivate err", "Pshared err",
                     "Ptotal err"});
    std::vector<double> privErr, sharedErr, totalErr;
    for (const auto &row : result.rows) {
        table.addRow({row.name, TextTable::num(row.privError),
                      TextTable::num(row.sharedError),
                      TextTable::num(row.totalError)});
        privErr.push_back(row.privError);
        sharedErr.push_back(row.sharedError);
        totalErr.push_back(row.totalError);
    }
    table.addRow({"abs geomean", TextTable::num(gmeanAbs(privErr)),
                  TextTable::num(gmeanAbs(sharedErr)),
                  TextTable::num(gmeanAbs(totalErr))});
    table.print(std::cout);

    auto maxAbs = [](const std::vector<double> &xs) {
        double m = 0;
        for (double x : xs)
            m = std::max(m, std::fabs(x));
        return m;
    };
    std::cout << "\npaper=    mean |err| 0.023 (max 0.072); Pprivate "
                 "avg 0.018 (max 0.079); Pshared avg 0.007 (max 0.040)\n"
              << "measured= mean |err| "
              << TextTable::num(meanAbs(totalErr)) << " (max "
              << TextTable::num(maxAbs(totalErr)) << "); Pprivate avg "
              << TextTable::num(meanAbs(privErr)) << "; Pshared avg "
              << TextTable::num(meanAbs(sharedErr)) << "\n";
    return 0;
}
