/**
 * @file
 * Figure 21: simultaneous multithreading — 16 physical cores exposing
 * 32 hardware threads; tables built with 50 functions over 5 physical
 * cores (10 hardware threads); 160 co-runners over all threads.
 *
 * Paper: the ideal price collapses to 47.3% of commercial (heavy
 * intra-core interference); Litmus discounts 45.4%, 1.9pp less.
 */

#include <iostream>

#include "bench_util.h"
#include "core/calibration.h"
#include "sim/machine_catalog.h"

using namespace litmus;

int
main()
{
    printBanner(std::cout, "Figure 21: SMT enabled, 160 co-runners");

    auto machine = sim::MachineCatalog::get("cascade-5218");
    machine.cores = 16;
    machine.smtWays = 2; // 32 hardware threads

    std::cout << "calibrating (Method 2, 50 functions over 5 physical "
                 "cores = 10 hw threads)...\n";
    // The sharing pool covers the hardware threads of 5 physical cores.
    auto ccfg = bench::sharingCalibration(machine, 10, 50);
    const auto cal = pricing::calibrate(ccfg);
    const pricing::DiscountModel model(cal.congestion, cal.performance);

    // 160 functions over all 32 hardware threads.
    const auto cfg = bench::pooledExperiment(160, 32, machine);
    const auto result = pricing::runPricingExperiment(cfg, model);

    bench::printPriceTable(result);
    std::cout << "\npaper=    ideal price 47.3% of commercial; Litmus "
                 "discount 45.4% (1.9pp less)\n"
              << "measured= ideal price "
              << TextTable::num(100 * result.gmeanIdealPrice, 1)
              << "%; Litmus discount "
              << TextTable::num(100 * result.litmusDiscount(), 1)
              << "% (gap "
              << TextTable::num(100 * (result.idealDiscount() -
                                       result.litmusDiscount()),
                                1)
              << "pp)\n";
    return 0;
}
