/**
 * @file
 * Figure 14: T_private inflation as a function of the number of
 * functions temporally sharing one core.
 *
 * Paper: logarithmic growth, ~1.025 at 10 co-runners, stabilizing
 * around 20. We print both the scheduler's analytic warmth curve and
 * a measured sweep (subject + N-1 co-runners pinned to one CPU).
 */

#include <iostream>

#include "bench_util.h"
#include "core/calibration.h"
#include "workload/suite.h"
#include "sim/machine_catalog.h"

using namespace litmus;

namespace
{

/** Measured T_private inflation with n functions sharing CPU 0. */
double
measuredInflation(unsigned n)
{
    const auto machine = sim::MachineCatalog::get("cascade-5218");
    const auto &spec = workload::functionByName("aes-py");
    const auto solo = pricing::measureSoloBaseline(machine, spec);

    sim::Engine engine(machine);
    workload::InvokerConfig icfg;
    icfg.placement = workload::InvokerConfig::Placement::Pooled;
    icfg.targetCount = n - 1;
    icfg.cpuPool = {0};
    icfg.seed = n;
    std::optional<workload::Invoker> invoker;
    sim::TaskCounters counters;
    bool captured = false;
    engine.onCompletion([&](sim::Task &task) {
        if (invoker && invoker->handleCompletion(task))
            return;
        counters = task.counters();
        captured = true;
    });
    if (n > 1) {
        invoker.emplace(engine, icfg);
        invoker->start();
        engine.run(0.05);
    }

    auto task = workload::makeNominalInvocation(spec, false);
    task->setAffinity({0});
    sim::Task &handle = engine.add(std::move(task));
    engine.runUntilCompleteId(handle.id(), 1200.0);
    if (!captured)
        fatal("fig14: completion not captured");
    const double privCpi =
        counters.privateCycles() / counters.instructions;
    return privCpi / solo.privCpi;
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Figure 14: temporal-sharing T_private overhead");

    const auto machine = sim::MachineCatalog::get("cascade-5218");
    sim::OsScheduler sched(machine);

    TextTable table({"co-runners/core", "warmth model",
                     "measured Tpriv"});
    double at10 = 0, at20 = 0;
    for (unsigned n : {1u, 2u, 3u, 5u, 7u, 10u, 14u, 20u, 25u}) {
        const double model = sched.warmthForCount(n);
        const double measured = measuredInflation(n);
        if (n == 10)
            at10 = measured;
        if (n == 20)
            at20 = measured;
        table.addRow({std::to_string(n), TextTable::num(model, 4),
                      TextTable::num(measured, 4)});
    }
    table.print(std::cout);

    std::cout << "\npaper=    logarithmic growth, ~1.025 at 10, "
                 "stabilizes ~20+\n"
              << "measured= " << TextTable::num(at10, 4) << " at 10, "
              << TextTable::num(at20, 4) << " at 20\n";
    return 0;
}
