/**
 * @file
 * Figure 1: L2 and L3 misses of CT-Gen and MB-Gen across stress
 * levels, normalized to the average misses of the serverless suite.
 *
 * Paper shape: CT-Gen's L2 misses grow steeply with thread count and
 * nearly all hit the L3 (normalized L3 misses ~0); MB-Gen produces
 * massive L3 misses and *fewer* L2 misses than CT-Gen because it is
 * self-throttled by DRAM.
 */

#include <iostream>

#include "bench_util.h"
#include "sim/machine.h"
#include "workload/suite.h"
#include "workload/traffic_gen.h"
#include "sim/machine_catalog.h"

using namespace litmus;

namespace
{

/** Machine-wide miss rates of a generator at a level (per ms). */
struct Rates
{
    double l2PerMs;
    double l3PerMs;
};

Rates
measureGenerator(workload::GeneratorKind kind, unsigned level)
{
    const auto cfg = sim::MachineCatalog::get("cascade-5218");
    sim::Engine engine(cfg);
    workload::spawnGenerator(engine, kind, level, 0);
    engine.run(0.02);
    const auto &mc = engine.machineCounters();
    return {mc.l3Accesses / (mc.time * 1e3),
            mc.l3Misses / (mc.time * 1e3)};
}

/** Average per-ms miss rates of solo suite functions (normalizer). */
Rates
suiteAverage()
{
    const auto cfg = sim::MachineCatalog::get("cascade-5218");
    double l2 = 0, l3 = 0;
    const auto &suite = workload::table1Suite();
    for (const auto &spec : suite) {
        const auto run = sim::runSolo(cfg, [&] {
            return workload::makeNominalInvocation(spec, false);
        });
        l2 += run.counters.l2Misses / (run.wallTime * 1e3);
        l3 += run.counters.l3Misses / (run.wallTime * 1e3);
    }
    return {l2 / suite.size(), l3 / suite.size()};
}

} // namespace

int
main()
{
    printBanner(std::cout, "Figure 1: traffic generator "
                           "characterization (normalized misses)");

    const Rates norm = suiteAverage();

    TextTable table({"level", "CT L2(norm)", "MB L2(norm)",
                     "CT L3(norm)", "MB L3(norm)"});
    double ctL2Max = 0, mbL2Max = 0, ctL3Max = 0, mbL3Max = 0;
    for (unsigned level = 1; level <= 31; level += 3) {
        const Rates ct =
            measureGenerator(workload::GeneratorKind::CtGen, level);
        const Rates mb =
            measureGenerator(workload::GeneratorKind::MbGen, level);
        table.addRow({std::to_string(level),
                      TextTable::num(ct.l2PerMs / norm.l2PerMs, 1),
                      TextTable::num(mb.l2PerMs / norm.l2PerMs, 1),
                      TextTable::num(ct.l3PerMs / norm.l3PerMs, 1),
                      TextTable::num(mb.l3PerMs / norm.l3PerMs, 1)});
        ctL2Max = std::max(ctL2Max, ct.l2PerMs / norm.l2PerMs);
        mbL2Max = std::max(mbL2Max, mb.l2PerMs / norm.l2PerMs);
        ctL3Max = std::max(ctL3Max, ct.l3PerMs / norm.l3PerMs);
        mbL3Max = std::max(mbL3Max, mb.l3PerMs / norm.l3PerMs);
    }
    table.print(std::cout);

    std::cout << "\npaper=    CT L2 misses >> MB L2 misses (MB "
                 "self-throttled); MB L3 misses >> CT L3 misses\n"
              << "measured= peak CT L2 " << TextTable::num(ctL2Max, 0)
              << "x vs MB L2 " << TextTable::num(mbL2Max, 0)
              << "x; peak MB L3 " << TextTable::num(mbL3Max, 0)
              << "x vs CT L3 " << TextTable::num(ctL3Max, 1) << "x\n";
    return 0;
}
