/**
 * @file
 * Figure 3: T_private and T_shared per instruction under 26
 * co-runners, normalized to running alone.
 *
 * Paper: T_shared +181% on average (max +488%); T_private +4%.
 */

#include <iostream>

#include "bench_util.h"

using namespace litmus;

int
main()
{
    printBanner(std::cout, "Figure 3: normalized T_private & T_shared "
                           "with 26 co-runners");

    pricing::ExperimentConfig cfg;
    cfg.coRunners = 26;
    cfg.layoutOnePerCore();
    cfg.repetitions = bench::reps();

    const auto result = pricing::runSlowdownExperiment(cfg);

    TextTable table({"function", "Tprivate", "Tshared"});
    double maxShared = 0;
    for (const auto &row : result.rows) {
        table.addRow({row.name, TextTable::num(row.tPrivSlowdown),
                      TextTable::num(row.tSharedSlowdown)});
        maxShared = std::max(maxShared, row.tSharedSlowdown);
    }
    table.addRow({"gmean", TextTable::num(result.gmeanPrivSlowdown),
                  TextTable::num(result.gmeanSharedSlowdown)});
    table.print(std::cout);

    std::cout << "\npaper=    Tshared +181% avg (max +488%), "
                 "Tprivate +4%\n"
              << "measured= Tshared +"
              << TextTable::num(100 * (result.gmeanSharedSlowdown - 1),
                                0)
              << "% avg (max +"
              << TextTable::num(100 * (maxShared - 1), 0)
              << "%), Tprivate +"
              << TextTable::num(100 * (result.gmeanPrivSlowdown - 1), 1)
              << "%\n";
    return 0;
}
