/**
 * @file
 * Figure 18: unfixed CPU frequency — the Section 7.2 configuration
 * rerun under a turbo governor while the tables were built at the
 * pinned base frequency.
 *
 * Paper: Litmus discount 16.8% vs ideal 17.3%; frequency changes are
 * rare with 160 functions because all cores stay busy.
 */

#include <iostream>

#include "bench_util.h"
#include "core/calibration.h"

using namespace litmus;

int
main()
{
    printBanner(std::cout, "Figure 18: unfixed CPU frequency (turbo), "
                           "160 co-runners");

    std::cout << "calibrating (Method 2, fixed frequency)...\n";
    const auto cal = pricing::calibrate(bench::sharingCalibration());
    const pricing::DiscountModel model(cal.congestion, cal.performance);

    auto cfg = bench::pooledExperiment(160, 16);
    cfg.policy = sim::FrequencyPolicy::Turbo;

    const auto result = pricing::runPricingExperiment(cfg, model);

    bench::printPriceTable(result);
    bench::printDiscountSummary(result, 0.168, 0.173);
    return 0;
}
