/**
 * @file
 * Table 1: the serverless benchmark suite and language runtimes, with
 * each function's modelled characteristics and role.
 */

#include <iostream>

#include "bench_util.h"
#include "core/calibration.h"
#include "workload/suite.h"
#include "sim/machine_catalog.h"

using namespace litmus;

int
main()
{
    printBanner(std::cout,
                "Table 1: serverless benchmarks & language runtimes");

    const auto machine = sim::MachineCatalog::get("cascade-5218");

    TextTable table({"function", "language", "role", "body Minstr",
                     "L2 MPKI", "L3 ws MiB", "solo shared-share"});
    for (const auto &spec : workload::table1Suite()) {
        const auto solo = pricing::measureSoloBaseline(machine, spec);
        const auto &body = spec.body.front();
        table.addRow({
            spec.name,
            workload::languageName(spec.language),
            spec.reference ? "reference*"
                           : (spec.testSet ? "test" : "pool"),
            TextTable::num(spec.bodyInstructions() / 1e6, 0),
            TextTable::num(body.demand.l2Mpki, 2),
            TextTable::num(
                static_cast<double>(body.demand.l3WorkingSet) /
                    (1024.0 * 1024.0),
                2),
            TextTable::num(solo.sharedCpi / solo.totalCpi(), 4),
        });
    }
    table.print(std::cout);

    std::cout << "\npaper=    27 functions, 13 reference (*), three "
                 "languages (py/nj/go)\n"
              << "measured= " << workload::table1Suite().size()
              << " functions, " << workload::referenceSet().size()
              << " reference, " << workload::testSet().size()
              << " in the evaluation test set\n";
    return 0;
}
