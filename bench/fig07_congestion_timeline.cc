/**
 * @file
 * Figure 7: Litmus tests tracking the machine's congestion level over
 * time as resource-intensive functions come and go.
 *
 * We run a light background population, inject a wave of
 * memory-intensive functions mid-experiment, and launch a Litmus
 * probe every 100 ms. The probe's estimated discount must rise during
 * the wave and fall after it drains.
 */

#include <iostream>

#include "bench_util.h"
#include "core/calibration.h"
#include "workload/suite.h"
#include "sim/machine_catalog.h"

using namespace litmus;

int
main()
{
    printBanner(std::cout,
                "Figure 7: congestion timeline via Litmus tests");

    std::cout << "calibrating provider tables...\n";
    const auto cal = pricing::calibrate(bench::dedicatedCalibration());
    const pricing::DiscountModel model(cal.congestion, cal.performance);

    const auto cfg = sim::MachineCatalog::get("cascade-5218");
    sim::Engine engine(cfg);

    // Light background: 6 compute-bound functions, churned.
    workload::InvokerConfig light;
    light.placement = workload::InvokerConfig::Placement::OnePerCore;
    light.targetCount = 6;
    light.cpuPool = {1, 2, 3, 4, 5, 6};
    light.functionPool = {&workload::functionByName("float-py"),
                          &workload::functionByName("fib-go"),
                          &workload::functionByName("auth-go")};
    light.seed = 5;
    workload::Invoker lightInvoker(engine, light);

    // The heavy wave arrives later on cores 7..26.
    workload::InvokerConfig heavy;
    heavy.placement = workload::InvokerConfig::Placement::OnePerCore;
    heavy.targetCount = 20;
    heavy.cpuPool.clear();
    for (unsigned i = 7; i < 27; ++i)
        heavy.cpuPool.push_back(i);
    heavy.functionPool = {&workload::functionByName("pager-py"),
                          &workload::functionByName("bfs-py"),
                          &workload::functionByName("fib-nj")};
    heavy.seed = 6;
    workload::Invoker heavyInvoker(engine, heavy);

    pricing::ProbeReading lastProbe;
    bool probeCaptured = false;
    bool waveActive = false;
    engine.onCompletion([&](sim::Task &task) {
        if (lightInvoker.handleCompletion(task))
            return;
        if (waveActive && heavyInvoker.handleCompletion(task))
            return;
        if (task.probe().complete) {
            lastProbe = pricing::readProbe(task);
            probeCaptured = true;
        }
    });

    lightInvoker.start();

    TextTable table({"t (s)", "phase", "startup slowdown", "L3/us",
                     "est. discount %"});
    double quietDiscount = 0, busyDiscount = 0;
    int quietCount = 0, busyCount = 0;

    for (int tick = 0; tick < 16; ++tick) {
        const double t = engine.now();
        if (tick == 5) {
            waveActive = true;
            heavyInvoker.start();
        }

        // Launch one Litmus probe (a bare Python startup) on core 0.
        auto probe = std::make_unique<workload::ProgramTask>(
            "probe", workload::startupProgram(workload::Language::Python),
            workload::probeWindow(workload::Language::Python));
        probe->setAffinity({0});
        probeCaptured = false;
        sim::Task &handle = engine.add(std::move(probe));
        engine.runUntilCompleteId(handle.id());
        if (!probeCaptured)
            fatal("fig07: probe not captured");

        const auto est =
            model.estimate(lastProbe, workload::Language::Python);
        const double discount = 1.0 - (est.rPrivate + est.rShared) / 2.0;
        const bool busy = tick >= 6 && tick < 14;
        table.addRow({TextTable::num(t, 2), busy ? "heavy wave" : "quiet",
                      TextTable::num(est.observed.total),
                      TextTable::num(lastProbe.machineL3MissPerUs, 1),
                      TextTable::num(100 * discount, 2)});
        if (busy) {
            busyDiscount += discount;
            ++busyCount;
        } else if (tick < 5) {
            quietDiscount += discount;
            ++quietCount;
        }

        engine.run(0.1);
    }
    table.print(std::cout);

    quietDiscount /= quietCount;
    busyDiscount /= busyCount;
    std::cout << "\npaper=    probes detect congestion rising (level "
                 ">8) during resource-intensive phases, falling (<3) "
                 "after\n"
              << "measured= mean estimated discount quiet "
              << TextTable::num(100 * quietDiscount, 2) << "% vs wave "
              << TextTable::num(100 * busyDiscount, 2) << "%\n";
    return 0;
}
