/**
 * @file
 * Engine-throughput microbenchmark: steady-state fast-forward vs.
 * exact quantum stepping.
 *
 * Two scenarios, each timed in both modes:
 *
 *  - steady: a fully loaded machine running constant-demand traffic
 *    generators (the shape of every long Table 1 phase), where the
 *    fast-forward engine should replay essentially every quantum;
 *  - fleet: the fig22 serving path (open-loop Poisson traffic, warm
 *    pools, epoch barriers) on a small fleet, where arrivals, slice
 *    rotations, and completions keep ending steady stretches. The
 *    fleet runs three ways: the exact-quantum epoch oracle, the
 *    fast-forwarding epoch loop, and the event-driven core (idle
 *    machines never stepped) — whose FleetReports must be
 *    bit-identical;
 *  - sparse: the same fleet at a low arrival rate, mostly idle —
 *    the event core's home turf, where the epoch loop still marches
 *    every machine through every quantum and the event queue
 *    fast-forwards between arrivals. This is where the event
 *    scheduler must land within 2x of the steady-state single-machine
 *    fast-forward throughput.
 *
 * Reports simulated-seconds-per-wall-second for every mode, solver
 * calls, memo hits, and executed / replayed / idle-skipped quanta,
 * and writes the same numbers to a machine-readable
 * bench-out/BENCH_engine.json so the perf trajectory is tracked run
 * over run.
 *
 * Always enforced (CI bench-smoke, sanitizer job included): quantum
 * accounting (executed + idle-skipped) must conserve total simulated
 * time to 1e-9, every fleet mode must cover identical quantum counts,
 * and the event-vs-epoch FleetReports must be bit-identical. The
 * >= 5x steady and >= 2x fleet speedup floors — and the event
 * scheduler landing within 2x of the steady-state single-machine
 * fast-forward throughput — are asserted unless LITMUS_BENCH_STRICT=0
 * (smoke/sanitizer runs, where wall-clock ratios are not meaningful).
 *
 * Knobs: LITMUS_ENGINE_BENCH_SECONDS (steady simulated seconds,
 * default 1.0), LITMUS_FLEET_INVOCATIONS (per machine, default 625),
 * LITMUS_FLEET_RATE (per machine, default 500),
 * LITMUS_SPARSE_INVOCATIONS (per machine, default 200),
 * LITMUS_SPARSE_RATE (per machine, default 20), LITMUS_BENCH_JSON
 * (output path, default bench-out/BENCH_engine.json),
 * LITMUS_BENCH_STRICT.
 */

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "workload/program.h"
#include "sim/machine_catalog.h"

using namespace litmus;

namespace
{

/** Wall-clock seconds elapsed while running @p fn. */
template <typename Fn>
double
wallSeconds(Fn &&fn)
{
    // LITMUS-LINT-ALLOW(wall-clock): measuring wall time IS this bench's purpose
    const auto start = std::chrono::steady_clock::now();
    fn();
    // LITMUS-LINT-ALLOW(wall-clock): timing only — never feeds simulated results
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
}

double
envDouble(const char *name, double fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    char *end = nullptr;
    const double parsed = std::strtod(value, &end);
    if (end == value || parsed <= 0)
        fatal("envDouble: ", name, " must be a positive number, got '",
              value, "'");
    return parsed;
}

/** One mode's measurement. */
struct ModeResult
{
    double wall = 0;          // wall-clock seconds
    double simSeconds = 0;    // simulated seconds advanced
    double quanta = 0;        // quanta executed
    double ffQuanta = 0;      // quanta advanced by replay
    double skipped = 0;       // idle quanta elided (event core)
    double solves = 0;        // contention solver invocations
    double memoHits = 0;      // solves served from the memo
    double simPerWall() const { return wall > 0 ? simSeconds / wall : 0; }
    /** Quanta covered on the canonical grid, stepped or not. */
    double covered() const { return quanta + skipped; }
};

void
accumulateEngine(ModeResult &r, const sim::Engine &engine)
{
    const sim::EngineStats &st = engine.stats();
    r.quanta += st.quanta.value();
    r.ffQuanta += st.ffQuanta.value();
    r.skipped += st.skippedQuanta.value();
    r.solves += st.solves.value();
    r.memoHits += st.solveMemoHits.value();
}

/**
 * Quantum accounting must conserve simulated time: the clock an
 * engine reached has to equal its covered quantum count (executed —
 * replayed or not — plus idle-skipped) times the quantum.
 */
void
checkConservation(const char *scenario, const sim::Engine &engine,
                  Seconds quantum)
{
    const double expected = (engine.stats().quanta.value() +
                             engine.stats().skippedQuanta.value()) *
                            quantum;
    // Relative 1e-9 (with a 1 ns floor): the engine clock accumulates
    // one addition per quantum, whose representation error grows with
    // the run length — while a real accounting bug (a skipped or
    // double-counted quantum) is a whole 50 us, many orders above the
    // bound at any run length.
    const double bound = 1e-9 * std::max(1.0, expected);
    const double drift = std::abs(engine.now() - expected);
    if (drift > bound)
        fatal("micro_engine_throughput: ", scenario,
              " quantum accounting drifted ", drift,
              " simulated seconds (", engine.stats().quanta.value(),
              " quanta, ff ", engine.stats().ffQuanta.value(),
              ", skipped ", engine.stats().skippedQuanta.value(), ")");
}

ModeResult
runSteady(bool fast_forward, Seconds sim_seconds)
{
    const Seconds quantum = 50e-6;
    auto cfg = sim::MachineCatalog::get("cascade-5218");
    sim::Engine engine(cfg);
    engine.setFastForward(fast_forward);

    // Every hardware thread busy with a distinct constant demand — the
    // long-phase steady state that dominates Table 1 bodies.
    for (unsigned i = 0; i < cfg.hwThreads(); ++i) {
        sim::ResourceDemand d;
        d.cpi0 = 0.5 + 0.05 * (i % 8);
        d.l2Mpki = static_cast<double>(i % 16);
        d.l3WorkingSet = (1 + i % 4) * 1_MiB;
        d.l3MissBase = 0.1 + 0.02 * (i % 5);
        d.mlp = 4.0;
        std::string name = "gen";
        name += std::to_string(i);
        engine.add(std::make_unique<workload::EndlessTask>(
            std::move(name), d));
    }

    ModeResult r;
    r.wall = wallSeconds([&] { engine.run(sim_seconds); });
    r.simSeconds = engine.now();
    accumulateEngine(r, engine);
    checkConservation("steady", engine, quantum);
    return r;
}

ModeResult
runFleet(bool fast_forward, std::uint64_t per_machine, double rate,
         cluster::SchedulerBackend sched,
         cluster::FleetReport *report_out = nullptr)
{
    const Seconds quantum = 50e-6;
    const unsigned machines = 4;
    cluster::ClusterConfig cfg;
    cfg.fleet = {{"cascade-5218", machines}};
    cfg.policy = cluster::DispatchPolicy::WarmthAware;
    cfg.arrivalsPerSecond = rate * machines;
    cfg.invocations = per_machine * machines;
    cfg.keepAlive = 10.0;
    cfg.seed = 7;
    cfg.threads = 1; // serial: the wall-clock ratio measures the
                     // engines, not the host's thread scheduling
    cfg.scheduler = sched;
    cfg.exactQuantum = !fast_forward; // true forces the epoch oracle

    cluster::Cluster fleet(cfg);
    ModeResult r;
    r.wall = wallSeconds([&] { fleet.run(); });
    for (unsigned m = 0; m < machines; ++m) {
        const sim::Engine &engine = fleet.engine(m);
        r.simSeconds += engine.now();
        accumulateEngine(r, engine);
        checkConservation("fleet", engine, quantum);
    }
    if (report_out)
        *report_out = fleet.report();
    return r;
}

void
addRow(TextTable &table, const std::string &scenario,
       const std::string &mode, const ModeResult &r)
{
    table.addRow({scenario, mode, TextTable::num(r.simPerWall(), 0),
                  TextTable::num(r.quanta, 0),
                  TextTable::num(r.ffQuanta, 0),
                  TextTable::num(r.skipped, 0),
                  TextTable::num(r.solves, 0),
                  TextTable::num(r.memoHits, 0)});
}

void
jsonScenario(bench::BenchJson &json, const std::string &name,
             const ModeResult &exact, const ModeResult &fast)
{
    json.metric(name, "sim_per_wall_exact", exact.simPerWall());
    json.metric(name, "sim_per_wall_ff", fast.simPerWall());
    json.metric(name, "speedup",
                exact.wall > 0 && fast.wall > 0
                    ? exact.wall / fast.wall
                    : 0);
    json.metric(name, "quanta", fast.quanta);
    json.metric(name, "ff_quanta", fast.ffQuanta);
    json.metric(name, "solves_exact", exact.solves);
    json.metric(name, "solves_ff", fast.solves);
    json.metric(name, "solve_memo_hits", fast.memoHits);
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Engine throughput: steady-state fast-forward vs. "
                "--exact-quantum");

    const double steadySeconds =
        envDouble("LITMUS_ENGINE_BENCH_SECONDS", 1.0);
    const std::uint64_t perMachine =
        pricing::envOr("LITMUS_FLEET_INVOCATIONS", 625);
    // Same parser as fig22_fleet_scaling so the shared knob means the
    // same workload in both benches.
    const double ratePerMachine =
        pricing::envOr("LITMUS_FLEET_RATE", 500);
    const char *strictEnv = std::getenv("LITMUS_BENCH_STRICT");
    const bool strict = !strictEnv || std::string(strictEnv) != "0";

    // Best-of-N wall times: the simulation is deterministic, so the
    // fastest repetition is the least host-noise-polluted measurement.
    const int repetitions = strict ? 3 : 1;
    const auto bestOf = [&](auto &&run) {
        auto best = run();
        for (int i = 1; i < repetitions; ++i) {
            auto r = run();
            if (r.wall < best.wall)
                best = r;
        }
        return best;
    };
    const ModeResult steadyExact =
        bestOf([&] { return runSteady(false, steadySeconds); });
    const ModeResult steadyFast =
        bestOf([&] { return runSteady(true, steadySeconds); });
    cluster::FleetReport epochReport, eventReport;
    const ModeResult fleetExact = bestOf([&] {
        return runFleet(false, perMachine, ratePerMachine,
                        cluster::SchedulerBackend::Epoch);
    });
    const ModeResult fleetEpoch = bestOf([&] {
        return runFleet(true, perMachine, ratePerMachine,
                        cluster::SchedulerBackend::Epoch, &epochReport);
    });
    const ModeResult fleetEvent = bestOf([&] {
        return runFleet(true, perMachine, ratePerMachine,
                        cluster::SchedulerBackend::Event, &eventReport);
    });
    const std::uint64_t sparseInv =
        pricing::envOr("LITMUS_SPARSE_INVOCATIONS", 200);
    const double sparseRate = pricing::envOr("LITMUS_SPARSE_RATE", 20);
    cluster::FleetReport sparseEpochReport, sparseEventReport;
    const ModeResult sparseEpoch = bestOf([&] {
        return runFleet(true, sparseInv, sparseRate,
                        cluster::SchedulerBackend::Epoch,
                        &sparseEpochReport);
    });
    const ModeResult sparseEvent = bestOf([&] {
        return runFleet(true, sparseInv, sparseRate,
                        cluster::SchedulerBackend::Event,
                        &sparseEventReport);
    });

    // Every mode must have covered the identical quantum count
    // (executed, replayed, or idle-skipped), and exact mode must never
    // have replayed: otherwise the wall-clock comparison is comparing
    // different amounts of simulation.
    if (steadyExact.quanta != steadyFast.quanta ||
        fleetExact.covered() != fleetEpoch.covered() ||
        fleetExact.covered() != fleetEvent.covered() ||
        sparseEpoch.covered() != sparseEvent.covered())
        fatal("micro_engine_throughput: modes covered different "
              "quantum counts");
    if (steadyExact.ffQuanta != 0 || fleetExact.ffQuanta != 0)
        fatal("micro_engine_throughput: exact mode replayed quanta");
    // The tentpole's determinism contract: the event core and the
    // epoch oracle must produce bit-identical fleet reports, on the
    // loaded fleet and the sparse one alike.
    if (!cluster::identicalTotals(eventReport, epochReport) ||
        !cluster::identicalTotals(sparseEventReport, sparseEpochReport))
        fatal("micro_engine_throughput: event scheduler diverged from "
              "the epoch oracle");
    // Deterministic fast-path assertion (independent of wall clock):
    // on a purely steady workload with no observers, everything after
    // the first quantum must take the replay path.
    if (steadyFast.ffQuanta < 0.99 * steadyFast.quanta)
        fatal("micro_engine_throughput: steady replay rate ",
              steadyFast.ffQuanta / steadyFast.quanta,
              " — the fast path is not engaging");

    TextTable table({"scenario", "mode", "sim s / wall s", "quanta",
                     "ff quanta", "skipped", "solves", "memo hits"});
    addRow(table, "steady", "exact-quantum", steadyExact);
    addRow(table, "steady", "fast-forward", steadyFast);
    addRow(table, "fleet", "exact-quantum", fleetExact);
    addRow(table, "fleet", "epoch", fleetEpoch);
    addRow(table, "fleet", "event", fleetEvent);
    addRow(table, "sparse", "epoch", sparseEpoch);
    addRow(table, "sparse", "event", sparseEvent);
    table.print(std::cout);

    const double steadySpeedup =
        steadyFast.wall > 0 ? steadyExact.wall / steadyFast.wall : 0;
    const double fleetSpeedup =
        fleetEvent.wall > 0 ? fleetExact.wall / fleetEvent.wall : 0;
    const double sparseSpeedup =
        sparseEvent.wall > 0 ? sparseEpoch.wall / sparseEvent.wall : 0;
    // The headline acceptance ratio: how close the event-driven
    // mostly-idle fleet gets to a lone fast-forwarding machine's
    // sim-seconds-per-wall.
    const double eventVsSteady =
        steadyFast.simPerWall() > 0
            ? sparseEvent.simPerWall() / steadyFast.simPerWall()
            : 0;

    bench::printPaperMeasured(
        std::cout,
        "n/a (engineering target: >= 5x steady, >= 2x fleet, event "
        "fleet within 2x of steady, bit-identical output)",
        "steady x" + TextTable::num(steadySpeedup, 1) + " (" +
            TextTable::num(steadyFast.simPerWall(), 0) + " vs " +
            TextTable::num(steadyExact.simPerWall(), 0) +
            " sim s/wall s), fleet x" +
            TextTable::num(fleetSpeedup, 1) + ", sparse event x" +
            TextTable::num(sparseSpeedup, 1) + " over epoch (at " +
            TextTable::num(100.0 * eventVsSteady, 1) +
            "% of steady), replay rate " +
            TextTable::num(
                100.0 * steadyFast.ffQuanta / steadyFast.quanta, 1) +
            "% steady / " +
            TextTable::num(
                100.0 * fleetEvent.ffQuanta / fleetEvent.quanta, 1) +
            "% fleet, idle skipped " +
            TextTable::num(fleetEvent.skipped, 0) +
            ", solver calls " +
            TextTable::num(fleetEvent.solves, 0) + " of " +
            TextTable::num(fleetExact.solves, 0));

    bench::BenchJson json("BENCH_engine.json");
    jsonScenario(json, "steady", steadyExact, steadyFast);
    jsonScenario(json, "fleet", fleetExact, fleetEvent);
    json.metric("fleet", "sim_per_wall_epoch", fleetEpoch.simPerWall());
    json.metric("fleet", "idle_quanta_skipped", fleetEvent.skipped);
    json.metric("fleet", "event_epoch_identical", 1.0);
    json.metric("sparse", "sim_per_wall_epoch",
                sparseEpoch.simPerWall());
    json.metric("sparse", "sim_per_wall_event",
                sparseEvent.simPerWall());
    json.metric("sparse", "event_speedup_over_epoch", sparseSpeedup);
    json.metric("sparse", "event_vs_steady_ratio", eventVsSteady);
    json.metric("sparse", "idle_quanta_skipped", sparseEvent.skipped);
    json.metric("sparse", "event_epoch_identical", 1.0);
    const cluster::SchedulerCounters &sc = eventReport.sched;
    json.metric("fleet_events", "arrival",
                static_cast<double>(sc.eventsArrival));
    json.metric("fleet_events", "retry",
                static_cast<double>(sc.eventsRetry));
    json.metric("fleet_events", "fault",
                static_cast<double>(sc.eventsFault));
    json.metric("fleet_events", "keepalive",
                static_cast<double>(sc.eventsKeepAlive));
    json.metric("fleet_events", "progress",
                static_cast<double>(sc.eventsProgress));
    json.metric("fleet_events", "barriers",
                static_cast<double>(sc.barriers));
    json.metric("fleet_events", "barriers_elided",
                static_cast<double>(sc.barriersElided));
    json.write();

    if (strict) {
        if (steadySpeedup < 5.0)
            fatal("micro_engine_throughput: steady speedup ",
                  steadySpeedup, " below the 5x floor");
        if (fleetSpeedup < 2.0)
            fatal("micro_engine_throughput: fleet speedup ",
                  fleetSpeedup, " below the 2x floor");
        if (eventVsSteady < 0.5)
            fatal("micro_engine_throughput: event fleet at ",
                  eventVsSteady,
                  " of steady-state throughput — below the within-2x "
                  "floor");
    }
    return 0;
}
