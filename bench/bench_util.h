/**
 * @file
 * Shared helpers for the experiment benches: standard calibrations,
 * paper-vs-measured summary lines, and environment knobs.
 *
 * Every bench prints the series the corresponding paper figure/table
 * reports, a `paper=` line with the headline numbers from the paper,
 * and a `measured=` line with ours, so EXPERIMENTS.md can be filled
 * by running the binaries.
 */

#ifndef LITMUS_BENCH_BENCH_UTIL_H
#define LITMUS_BENCH_BENCH_UTIL_H

#include <algorithm>
#include <iostream>
#include <string>

#include "common/logging.h"
#include "common/stats.h"
#include "common/text_table.h"
#include "core/experiment.h"

namespace litmus::bench
{

/** Repetitions per test function (env LITMUS_REPS overrides). */
inline unsigned
reps(unsigned fallback = 5)
{
    return pricing::envOr("LITMUS_REPS", fallback);
}

/** Calibration repetitions (env LITMUS_CAL_REPS overrides). */
inline unsigned
calReps(unsigned fallback = 1)
{
    return pricing::envOr("LITMUS_CAL_REPS", fallback);
}

/**
 * The provider's dedicated-core calibration (Sections 6 / 7.1):
 * subject pinned to CPU 0, generators on CPUs 1..level.
 */
inline pricing::CalibrationConfig
dedicatedCalibration(
    sim::MachineConfig machine = sim::MachineConfig::cascadeLake5218())
{
    pricing::CalibrationConfig cfg;
    cfg.machine = std::move(machine);
    cfg.levels = {2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26};
    cfg.subjectCpu = 0;
    cfg.generatorFirstCpu = 1;
    cfg.repetitions = calReps();
    return cfg;
}

/**
 * The Method 2 sharing calibration (Section 7.2): 50 functions churn
 * over 5 CPUs (10 per CPU) and the subject joins that pool; the
 * generators stress the cores behind the pool.
 */
inline pricing::CalibrationConfig
sharingCalibration(
    sim::MachineConfig machine = sim::MachineConfig::cascadeLake5218(),
    unsigned pool_cpus = 5, unsigned sharing_functions = 50)
{
    pricing::CalibrationConfig cfg;
    cfg.machine = std::move(machine);
    cfg.sharingFunctions = sharing_functions;
    for (unsigned i = 0; i < pool_cpus; ++i)
        cfg.sharingCpus.push_back(i);
    cfg.generatorFirstCpu = pool_cpus;
    const unsigned headroom = cfg.machine.hwThreads() - pool_cpus;
    cfg.levels.clear();
    for (unsigned level = 2; level <= headroom && level <= 26; level += 4)
        cfg.levels.push_back(level);
    cfg.repetitions = calReps();
    return cfg;
}

/**
 * Standard Section 7.2 pooled experiment: co-runners and the test
 * function share the first @p pool_cpus CPUs.
 */
inline pricing::ExperimentConfig
pooledExperiment(unsigned co_runners = 160, unsigned pool_cpus = 16,
                 sim::MachineConfig machine =
                     sim::MachineConfig::cascadeLake5218())
{
    pricing::ExperimentConfig cfg;
    cfg.machine = std::move(machine);
    cfg.coRunners = co_runners;
    cfg.layoutPooled(pool_cpus);
    cfg.repetitions = reps();
    cfg.warmup = 0.3;
    return cfg;
}

/** Print one price-per-function table (Figures 11, 15-21). */
inline void
printPriceTable(const pricing::ExperimentResult &result)
{
    TextTable table({"function", "litmus price", "ideal price"});
    for (const auto &row : result.rows) {
        table.addRow({row.name, TextTable::num(row.litmusPrice),
                      TextTable::num(row.idealPrice)});
    }
    table.addRow({"gmean", TextTable::num(result.gmeanLitmusPrice),
                  TextTable::num(result.gmeanIdealPrice)});
    table.print(std::cout);
}

/** Print the paper-vs-measured discount summary. */
inline void
printDiscountSummary(const pricing::ExperimentResult &result,
                     double paper_litmus_discount,
                     double paper_ideal_discount)
{
    std::cout << "\npaper=    litmus discount "
              << TextTable::num(100 * paper_litmus_discount, 1)
              << "%  ideal discount "
              << TextTable::num(100 * paper_ideal_discount, 1) << "%\n"
              << "measured= litmus discount "
              << TextTable::num(100 * result.litmusDiscount(), 1)
              << "%  ideal discount "
              << TextTable::num(100 * result.idealDiscount(), 1)
              << "%  gap "
              << TextTable::num(100 * (result.idealDiscount() -
                                       result.litmusDiscount()),
                                1)
              << "pp\n";
}

} // namespace litmus::bench

#endif // LITMUS_BENCH_BENCH_UTIL_H
