/**
 * @file
 * Shared helpers for the experiment benches: standard calibrations,
 * paper-vs-measured summary lines, machine-readable JSON artifacts,
 * and environment knobs.
 *
 * Every bench prints the series the corresponding paper figure/table
 * reports, a `paper=` line with the headline numbers from the paper,
 * and a `measured=` line with ours, so EXPERIMENTS.md can be filled
 * by running the binaries. Benches on the perf trajectory also write
 * a BENCH_<name>.json artifact (BenchJson) that CI prints and
 * uploads per run.
 */

#ifndef LITMUS_BENCH_BENCH_UTIL_H
#define LITMUS_BENCH_BENCH_UTIL_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "common/text_table.h"
#include "core/experiment.h"
#include "sim/machine_catalog.h"

namespace litmus::bench
{

/** |a - b| / |a| with a guard against an empty a. */
inline double
relativeError(double a, double b)
{
    if (a == 0.0)
        return b == 0.0 ? 0.0 : 1.0;
    return std::abs(a - b) / std::abs(a);
}

/** Repetitions per test function (env LITMUS_REPS overrides). */
inline unsigned
reps(unsigned fallback = 5)
{
    return pricing::envOr("LITMUS_REPS", fallback);
}

/** Calibration repetitions (env LITMUS_CAL_REPS overrides). */
inline unsigned
calReps(unsigned fallback = 1)
{
    return pricing::envOr("LITMUS_CAL_REPS", fallback);
}

/**
 * The provider's dedicated-core calibration (Sections 6 / 7.1):
 * subject pinned to CPU 0, generators on CPUs 1..level. Levels scale
 * with the machine's thread count (dedicatedCalibrationFor).
 */
inline pricing::CalibrationConfig
dedicatedCalibration(
    sim::MachineConfig machine = sim::MachineCatalog::get("cascade-5218"))
{
    pricing::CalibrationConfig cfg =
        pricing::dedicatedCalibrationFor(std::move(machine));
    cfg.repetitions = calReps();
    return cfg;
}

/**
 * The Method 2 sharing calibration (Section 7.2): 50 functions churn
 * over 5 CPUs (10 per CPU) and the subject joins that pool; the
 * generators stress the cores behind the pool.
 */
inline pricing::CalibrationConfig
sharingCalibration(
    sim::MachineConfig machine = sim::MachineCatalog::get("cascade-5218"),
    unsigned pool_cpus = 5, unsigned sharing_functions = 50)
{
    pricing::CalibrationConfig cfg;
    cfg.machine = std::move(machine);
    cfg.sharingFunctions = sharing_functions;
    for (unsigned i = 0; i < pool_cpus; ++i)
        cfg.sharingCpus.push_back(i);
    cfg.generatorFirstCpu = pool_cpus;
    const unsigned headroom = cfg.machine.hwThreads() - pool_cpus;
    cfg.levels.clear();
    for (unsigned level = 2; level <= headroom && level <= 26; level += 4)
        cfg.levels.push_back(level);
    cfg.repetitions = calReps();
    return cfg;
}

/**
 * Standard Section 7.2 pooled experiment: co-runners and the test
 * function share the first @p pool_cpus CPUs.
 */
inline pricing::ExperimentConfig
pooledExperiment(unsigned co_runners = 160, unsigned pool_cpus = 16,
                 sim::MachineConfig machine =
                     sim::MachineCatalog::get("cascade-5218"))
{
    pricing::ExperimentConfig cfg;
    cfg.machine = std::move(machine);
    cfg.coRunners = co_runners;
    cfg.layoutPooled(pool_cpus);
    cfg.repetitions = reps();
    cfg.warmup = 0.3;
    return cfg;
}

/** Print one price-per-function table (Figures 11, 15-21). */
inline void
printPriceTable(const pricing::ExperimentResult &result)
{
    TextTable table({"function", "litmus price", "ideal price"});
    for (const auto &row : result.rows) {
        table.addRow({row.name, TextTable::num(row.litmusPrice),
                      TextTable::num(row.idealPrice)});
    }
    table.addRow({"gmean", TextTable::num(result.gmeanLitmusPrice),
                  TextTable::num(result.gmeanIdealPrice)});
    table.print(std::cout);
}

/**
 * The standard summary footer: what the paper reports next to what
 * this run measured, in two aligned greppable lines.
 */
inline void
printPaperMeasured(std::ostream &os, const std::string &paper,
                   const std::string &measured)
{
    os << "\npaper=    " << paper << "\n"
       << "measured= " << measured << "\n";
}

/** Print the paper-vs-measured discount summary. */
inline void
printDiscountSummary(const pricing::ExperimentResult &result,
                     double paper_litmus_discount,
                     double paper_ideal_discount)
{
    printPaperMeasured(
        std::cout,
        "litmus discount " +
            TextTable::num(100 * paper_litmus_discount, 1) +
            "%  ideal discount " +
            TextTable::num(100 * paper_ideal_discount, 1) + "%",
        "litmus discount " +
            TextTable::num(100 * result.litmusDiscount(), 1) +
            "%  ideal discount " +
            TextTable::num(100 * result.idealDiscount(), 1) +
            "%  gap " +
            TextTable::num(100 * (result.idealDiscount() -
                                  result.litmusDiscount()),
                           1) +
            "pp");
}

/**
 * Reset the process's peak-RSS high-water mark (Linux: write "5" to
 * /proc/self/clear_refs), so a following peakRssBytes() measures only
 * the phase between the two calls. Returns false when the kernel
 * interface is unavailable (non-Linux, restricted /proc) — callers
 * should then skip RSS assertions rather than fail.
 */
inline bool
resetPeakRss()
{
    std::ofstream clear("/proc/self/clear_refs");
    if (!clear)
        return false;
    clear << "5\n";
    return static_cast<bool>(clear.flush());
}

/**
 * The process's peak resident set size in bytes since start (or since
 * the last resetPeakRss()), from VmHWM in /proc/self/status. Returns
 * 0 when /proc is unavailable.
 */
inline std::uint64_t
peakRssBytes()
{
    std::ifstream status("/proc/self/status");
    if (!status)
        return 0;
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) != 0)
            continue;
        // "VmHWM:     12345 kB"
        std::uint64_t kib = 0;
        for (const char c : line) {
            if (c >= '0' && c <= '9')
                kib = kib * 10 + static_cast<std::uint64_t>(c - '0');
        }
        return kib * 1024;
    }
    return 0;
}

/**
 * Machine-readable bench artifact: grouped numeric metrics written as
 * one JSON object per group, in insertion order. The output path
 * defaults to bench-out/BENCH_<name>.json under the working directory
 * (the directory is created on write), so every bench's artifacts
 * collect in one place for CI upload; LITMUS_BENCH_JSON overrides the
 * full path (shared by every bench, so CI can redirect a single
 * bench's artifact).
 */
class BenchJson
{
  public:
    /** @param default_path e.g. "BENCH_engine.json" (lands in
     *  bench-out/) */
    explicit BenchJson(std::string default_path)
        : path_("bench-out/" + std::move(default_path))
    {
        const char *env = std::getenv("LITMUS_BENCH_JSON");
        if (env && *env)
            path_ = env;
    }

    /** Record one metric under a group ("" = top level). */
    void metric(const std::string &group, const std::string &key,
                double value)
    {
        groupFor(group).emplace_back(key, value);
    }

    /** Write the artifact; fatal() when unwritable. */
    void write(std::ostream &echo = std::cout) const
    {
        const std::filesystem::path parent =
            std::filesystem::path(path_).parent_path();
        if (!parent.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(parent, ec);
            if (ec)
                fatal("BenchJson: cannot create ", parent.string(),
                      ": ", ec.message());
        }
        std::ofstream json(path_);
        if (!json)
            fatal("BenchJson: cannot write ", path_);
        json << std::setprecision(17) << "{\n";
        bool first = true;
        for (const auto &[group, metrics] : groups_) {
            if (!group.empty()) {
                json << (first ? "" : ",\n") << "  \"" << group
                     << "\": {\n";
                first = false;
                for (std::size_t i = 0; i < metrics.size(); ++i) {
                    json << "    \"" << metrics[i].first
                         << "\": " << metrics[i].second
                         << (i + 1 < metrics.size() ? ",\n" : "\n");
                }
                json << "  }";
            } else {
                for (const auto &[key, value] : metrics) {
                    json << (first ? "" : ",\n") << "  \"" << key
                         << "\": " << value;
                    first = false;
                }
            }
        }
        json << "\n}\n";
        echo << "json written to " << path_ << "\n";
    }

    const std::string &path() const { return path_; }

  private:
    using Metrics = std::vector<std::pair<std::string, double>>;

    Metrics &groupFor(const std::string &group)
    {
        for (auto &[name, metrics] : groups_) {
            if (name == group)
                return metrics;
        }
        groups_.emplace_back(group, Metrics{});
        return groups_.back().second;
    }

    std::string path_;
    std::vector<std::pair<std::string, Metrics>> groups_;
};

} // namespace litmus::bench

#endif // LITMUS_BENCH_BENCH_UTIL_H
