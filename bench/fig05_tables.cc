/**
 * @file
 * Figure 5: the provider's congestion and performance tables.
 *
 * Paper shape: slowdowns grow monotonically with stress level; MB-Gen
 * slows T_shared far more than CT-Gen; T_private slowdowns stay at
 * percent level.
 */

#include <iostream>

#include "bench_util.h"
#include "core/calibration.h"

using namespace litmus;
using workload::GeneratorKind;
using workload::Language;

int
main()
{
    printBanner(std::cout,
                "Figure 5: congestion and performance tables");

    std::cout << "calibrating (dedicated cores)...\n";
    const auto cal = pricing::calibrate(bench::dedicatedCalibration());

    for (Language lang : workload::allLanguages()) {
        std::cout << "\nCongestion table — " << workload::languageName(lang)
                  << " startup (slowdowns vs solo)\n";
        TextTable table({"level", "CT Tpriv", "CT Tshared", "CT L3/us",
                         "MB Tpriv", "MB Tshared", "MB L3/us"});
        const auto &levels =
            cal.congestion.levels(lang, GeneratorKind::CtGen);
        for (std::size_t i = 0; i < levels.size(); ++i) {
            const auto ct = cal.congestion.at(lang, GeneratorKind::CtGen,
                                              levels[i]);
            const auto mb = cal.congestion.at(lang, GeneratorKind::MbGen,
                                              levels[i]);
            table.addRow({TextTable::num(levels[i], 0),
                          TextTable::num(ct.privSlowdown),
                          TextTable::num(ct.sharedSlowdown),
                          TextTable::num(ct.l3MissPerUs, 1),
                          TextTable::num(mb.privSlowdown),
                          TextTable::num(mb.sharedSlowdown),
                          TextTable::num(mb.l3MissPerUs, 1)});
        }
        table.print(std::cout);
    }

    std::cout << "\nPerformance table — reference gmean slowdowns\n";
    TextTable perf({"level", "CT Tpriv", "CT Tshared", "CT total",
                    "MB Tpriv", "MB Tshared", "MB total"});
    const auto &levels = cal.performance.levels(GeneratorKind::CtGen);
    for (std::size_t i = 0; i < levels.size(); ++i) {
        const auto &ctP = cal.performance.privSeries(GeneratorKind::CtGen);
        const auto &ctS =
            cal.performance.sharedSeries(GeneratorKind::CtGen);
        const auto &ctT =
            cal.performance.totalSeries(GeneratorKind::CtGen);
        const auto &mbP = cal.performance.privSeries(GeneratorKind::MbGen);
        const auto &mbS =
            cal.performance.sharedSeries(GeneratorKind::MbGen);
        const auto &mbT =
            cal.performance.totalSeries(GeneratorKind::MbGen);
        perf.addRow({TextTable::num(levels[i], 0),
                     TextTable::num(ctP[i]), TextTable::num(ctS[i]),
                     TextTable::num(ctT[i]), TextTable::num(mbP[i]),
                     TextTable::num(mbS[i]), TextTable::num(mbT[i])});
    }
    perf.print(std::cout);

    const auto &ctShared =
        cal.congestion.sharedSeries(Language::Python, GeneratorKind::CtGen);
    const auto &mbShared =
        cal.congestion.sharedSeries(Language::Python, GeneratorKind::MbGen);
    std::cout << "\npaper=    monotone growth; MB Tshared slowdowns >> "
                 "CT at matched levels (e.g. 1.88-2.04 vs 1.08-1.19)\n"
              << "measured= py startup Tshared at top level: CT "
              << TextTable::num(ctShared.back()) << " vs MB "
              << TextTable::num(mbShared.back()) << "\n";
    return 0;
}
