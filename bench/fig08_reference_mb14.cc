/**
 * @file
 * Figure 8: T_private, T_shared and total time of the reference
 * functions co-running with MB-Gen at stress level 14, normalized to
 * running alone.
 *
 * Paper shape: varying slowdowns despite a constant stress level;
 * T_shared inflations up to ~3.4x; the gmean feeds the performance
 * table.
 */

#include <iostream>

#include "bench_util.h"
#include "core/calibration.h"
#include "workload/traffic_gen.h"
#include "sim/machine_catalog.h"

using namespace litmus;

int
main()
{
    printBanner(std::cout,
                "Figure 8: reference slowdowns at MB-Gen level 14");

    const auto machine = sim::MachineCatalog::get("cascade-5218");
    const auto refs = workload::referenceSet();

    TextTable table({"function", "Tprivate", "Tshared", "Ttotal"});
    std::vector<double> priv, shared, total;

    for (const auto *spec : refs) {
        const auto solo = pricing::measureSoloBaseline(machine, *spec);

        sim::Engine engine(machine);
        workload::spawnGenerator(engine, workload::GeneratorKind::MbGen,
                                 14, 1);
        engine.run(0.02);
        sim::TaskCounters counters;
        engine.onCompletion(
            [&](sim::Task &t) { counters = t.counters(); });
        auto task = workload::makeNominalInvocation(*spec, false);
        task->setAffinity({0});
        sim::Task &handle = engine.add(std::move(task));
        engine.runUntilComplete(handle);

        const double privCpi =
            counters.privateCycles() / counters.instructions;
        const double sharedCpi =
            counters.stallSharedCycles / counters.instructions;
        const double p = privCpi / solo.privCpi;
        const double s = sharedCpi / solo.sharedCpi;
        const double t = (privCpi + sharedCpi) / solo.totalCpi();
        priv.push_back(p);
        shared.push_back(s);
        total.push_back(t);
        table.addRow({spec->name, TextTable::num(p), TextTable::num(s),
                      TextTable::num(t)});
    }
    table.addRow({"gmean", TextTable::num(gmean(priv)),
                  TextTable::num(gmean(shared)),
                  TextTable::num(gmean(total))});
    table.print(std::cout);

    std::cout << "\npaper=    varying slowdowns at one stress level; "
                 "Tshared up to ~3.4x\n"
              << "measured= Tshared range "
              << TextTable::num(minOf(shared)) << "-"
              << TextTable::num(maxOf(shared)) << ", gmean "
              << TextTable::num(gmean(shared)) << "\n";
    return 0;
}
