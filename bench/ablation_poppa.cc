/**
 * @file
 * Ablation: POPPA-style sampling vs the Litmus test (Sections 1/4).
 *
 * The paper's motivating claim: sampling-based pricing stalls every
 * co-running task during each sample, which is impractical at
 * serverless churn rates, while the Litmus test is free. This bench
 * quantifies both sides on the same 26-co-runner environment:
 * POPPA's co-runner stall overhead, and both schemes' price accuracy
 * against the ideal price.
 */

#include <iostream>

#include "bench_util.h"
#include "core/calibration.h"
#include "core/poppa.h"
#include "workload/invoker.h"
#include "workload/suite.h"
#include "sim/machine_catalog.h"

using namespace litmus;

int
main()
{
    printBanner(std::cout, "Ablation: POPPA sampling vs Litmus test");

    std::cout << "calibrating Litmus tables...\n";
    const auto cal = pricing::calibrate(bench::dedicatedCalibration());
    const pricing::DiscountModel model(cal.congestion, cal.performance);
    const pricing::PricingEngine pricer(model);

    const auto machine = sim::MachineCatalog::get("cascade-5218");
    const auto subjects = workload::testSet();
    const unsigned reps = bench::reps(3);

    sim::Engine engine(machine);
    pricing::PoppaConfig pcfg;
    pcfg.samplePeriod = 20e-3;
    pcfg.sampleWindow = 2e-3;
    pricing::PoppaSampler sampler(engine, pcfg);

    workload::InvokerConfig icfg;
    icfg.placement = workload::InvokerConfig::Placement::OnePerCore;
    icfg.targetCount = 26;
    for (unsigned i = 1; i <= 26; ++i)
        icfg.cpuPool.push_back(i);
    icfg.seed = 42;
    workload::Invoker invoker(engine, icfg);

    sim::TaskCounters lastCounters;
    sim::ProbeCapture lastProbe;
    std::uint64_t lastId = 0;
    bool captured = false;
    engine.onCompletion([&](sim::Task &task) {
        if (invoker.handleCompletion(task))
            return;
        lastCounters = task.counters();
        lastProbe = task.probe();
        lastId = task.id();
        captured = true;
    });
    invoker.start();
    engine.run(0.2);

    Rng rng(7);
    std::vector<double> litmusErr, poppaErr;
    for (const auto *spec : subjects) {
        const auto solo = pricing::measureSoloBaseline(machine, *spec);
        for (unsigned rep = 0; rep < reps; ++rep) {
            auto task = workload::makeInvocation(*spec, rng);
            task->setAffinity({0});
            captured = false;
            sim::Task &handle = engine.add(std::move(task));
            engine.runUntilCompleteId(handle.id());
            if (!captured)
                fatal("ablation_poppa: completion not captured");

            const auto quote =
                pricer.quote(lastCounters, pricing::readProbe(lastProbe),
                             spec->language, solo);
            const double poppaPrice =
                sampler.price(lastCounters, lastId) /
                lastCounters.cycles;
            litmusErr.push_back(quote.litmusNormalized() -
                                quote.idealNormalized());
            poppaErr.push_back(poppaPrice - quote.idealNormalized());
        }
    }

    const double wallTime = engine.now();
    const double stallShare =
        sampler.stallOverhead() / (wallTime * 26.0);

    TextTable table({"scheme", "mean |price error| vs ideal",
                     "co-runner stall overhead"});
    table.addRow({"Litmus test", TextTable::num(meanAbs(litmusErr)),
                  "0 (reuses the startup)"});
    table.addRow({"POPPA sampling", TextTable::num(meanAbs(poppaErr)),
                  TextTable::num(100 * stallShare, 2) + "% of CPU time"});
    table.print(std::cout);

    std::cout << "\npaper=    sampling requires stalling all "
                 "co-runners; impractical for short-lived functions\n"
              << "measured= POPPA stalled co-runners for "
              << TextTable::num(100 * stallShare, 2)
              << "% of their CPU time ("
              << sampler.windowsOpened() << " windows); Litmus probe "
              << "overhead is zero by construction\n";
    return 0;
}
