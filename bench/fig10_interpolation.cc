/**
 * @file
 * Figure 10: estimating a function's discount with logarithmic
 * interpolation on the observed machine L3 miss rate.
 *
 * Paper example: at a given startup slowdown, an observation matching
 * CT-Gen's L3 misses maps to ~1% discount, matching MB-Gen's to ~6%,
 * and the geometric midpoint to roughly the midpoint discount (~3.5%).
 */

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "core/discount_model.h"

using namespace litmus;
using workload::GeneratorKind;
using workload::Language;

int
main()
{
    printBanner(std::cout,
                "Figure 10: log-interpolated discount vs L3 misses");

    std::cout << "calibrating...\n";
    const auto cal = pricing::calibrate(bench::dedicatedCalibration());
    const pricing::DiscountModel model(cal.congestion, cal.performance);

    // A fixed observed startup slowdown; sweep the observed machine L3
    // miss rate between (and beyond) the two generator extremes.
    const double startupSlow = 1.12;
    const auto &base = model.baseline(Language::Python);
    const double l3Ct = model.l3Fit(Language::Python, GeneratorKind::CtGen)
                            .invert(startupSlow);
    const double l3Mb = model.l3Fit(Language::Python, GeneratorKind::MbGen)
                            .invert(startupSlow);

    auto estimateAt = [&](double l3) {
        // Build a reading with a 2% private slowdown and whatever
        // shared slowdown makes the total equal startupSlow.
        pricing::ProbeReading reading;
        reading.privCpi = base.privCpi * 1.02;
        reading.sharedCpi =
            base.totalCpi() * startupSlow - reading.privCpi;
        reading.instructions = 45e6;
        reading.machineL3MissPerUs = l3;
        return model.estimate(reading, Language::Python);
    };

    TextTable table({"observed L3/us", "blend w", "discount %"});
    const double l3Mid = std::sqrt(l3Ct * l3Mb);
    double dCt = 0, dMb = 0, dMid = 0;
    for (double l3 : {l3Ct * 0.5, l3Ct, l3Mid, l3Mb, l3Mb * 2.0}) {
        const auto est = estimateAt(l3);
        const double discount =
            1.0 - 1.0 / est.predictedTotal; // total-slowdown view
        table.addRow({TextTable::num(l3, 1),
                      TextTable::num(est.blendWeight),
                      TextTable::num(100 * discount, 2)});
        if (l3 == l3Ct)
            dCt = discount;
        if (l3 == l3Mid)
            dMid = discount;
        if (l3 == l3Mb)
            dMb = discount;
    }
    table.print(std::cout);

    std::cout << "\npaper=    CT-like ~1%, MB-like ~6%, geometric "
                 "midpoint ~3.5% (midway)\n"
              << "measured= CT-like " << TextTable::num(100 * dCt, 2)
              << "%, MB-like " << TextTable::num(100 * dMb, 2)
              << "%, midpoint " << TextTable::num(100 * dMid, 2)
              << "% (expected ~"
              << TextTable::num(100 * (dCt + dMb) / 2, 2) << "%)\n";
    return 0;
}
