/**
 * @file
 * Figure 25 (extension): chaos — billing that survives machine
 * failure.
 *
 * The fleet trajectory so far only ever billed on machines that stay
 * up. This bench serves one Poisson-loaded fleet through a fault
 * campaign — machine crashes with state loss and timed cold restarts
 * — once per retry policy (drop / retry-once / retry-backoff), plus
 * one "full chaos" cell that adds transient slowdown and dispatcher-
 * blindness windows on top, and reports per-cell crash/kill/retry
 * counts, lost work, and the fault-billing split.
 *
 * Always enforced:
 *  - billing conservation through failures (<= 1e-6): the fleet's
 *    independently accumulated billed + absorbed seconds match the
 *    per-machine ledger + absorption sums;
 *  - every invocation reaches exactly one terminal state:
 *    completions + abandoned + rejected == arrivals;
 *  - the tenant-pays / provider-absorbs split partitions one total:
 *    billed(tenant-pays) == billed + absorbed(provider-absorbs);
 *  - seed-determinism under threading: serial and 8-worker runs of
 *    every cell produce bit-identical fleet reports, failure
 *    accounting included;
 *  - the compiled fault schedule itself is replay-identical.
 *
 * Knobs: LITMUS_FLEET_INVOCATIONS (arrivals per machine, default
 * 400), LITMUS_FLEET_RATE (per machine, default 500),
 * LITMUS_BENCH_JSON.
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/fault_plan.h"
#include "scenario/scenario_runner.h"

using namespace litmus;

namespace
{

using bench::relativeError;
using cluster::identicalTotals;

/** One cell's conservation error: fleet billed+absorbed accumulators
 *  vs the independent per-machine ledger and absorption sums. */
double
conservationError(const cluster::FleetReport &report)
{
    return relativeError(
        report.billedCpuSeconds + report.absorbedCpuSeconds,
        report.sumMachineBilledSeconds() +
            report.sumMachineAbsorbedSeconds());
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Figure 25 (extension): chaos — fault-rate sweep x "
                "retry policies, billing conserved through crashes");

    const std::uint64_t perMachine =
        pricing::envOr("LITMUS_FLEET_INVOCATIONS", 400);
    const double ratePerMachine =
        pricing::envOr("LITMUS_FLEET_RATE", 500);

    constexpr unsigned kMachines = 2;
    const std::uint64_t invocations = perMachine * kMachines;
    const double rate = ratePerMachine * kMachines;
    const double span = static_cast<double>(invocations) / rate;

    // The campaign scales with the trace span so the crash process
    // bites at smoke sizes and full sizes alike: ~4 stochastic
    // crashes per machine plus two scripted ones pinned mid-burst,
    // with restarts short enough that capacity loss never stalls the
    // drain.
    const auto baseScenario = [&](cluster::RetryPolicy retry) {
        scenario::ScenarioSpec spec;
        spec.fleet = {{"cascade-5218", kMachines}};
        spec.policy = cluster::DispatchPolicy::LeastLoaded;
        spec.traffic.model = "poisson";
        spec.traffic.arrivalsPerSecond = rate;
        spec.traffic.invocations = invocations;
        spec.keepAlive = 10.0;
        spec.seed = 11;
        spec.fault.crashMtbf = span / 4;
        spec.fault.restartDelay = std::max(1e-3, span / 25);
        spec.fault.crashAt = {{span * 0.25, 0}, {span * 0.6, 1}};
        spec.fault.retry = retry;
        spec.fault.retryMax = 4;
        spec.fault.retryBackoff = std::max(1e-3, span / 50);
        spec.fault.billing = cluster::FaultBilling::ProviderAbsorbs;
        return spec;
    };

    // The compiled schedule must be replay-identical: same spec, same
    // fleet, same horizon => the same event list, event for event.
    {
        const auto spec = baseScenario(cluster::RetryPolicy::Drop);
        const auto planA = cluster::FaultPlan::compile(
            spec.fault, kMachines, span, spec.seed);
        const auto planB = cluster::FaultPlan::compile(
            spec.fault, kMachines, span, spec.seed);
        if (planA.events().size() != planB.events().size())
            fatal("fig25: fault plan not replay-identical");
        for (std::size_t i = 0; i < planA.events().size(); ++i) {
            const auto &a = planA.events()[i];
            const auto &b = planB.events()[i];
            if (a.at != b.at || a.kind != b.kind ||
                a.machine != b.machine || a.factor != b.factor)
                fatal("fig25: fault plan not replay-identical at "
                      "event ", i);
        }
        if (planA.empty())
            fatal("fig25: fault campaign compiled to no events");
    }

    TextTable table({"cell", "crashes", "killed", "retried",
                     "abandoned", "lost s", "absorbed s", "cons err",
                     "deterministic"});
    bench::BenchJson json("BENCH_chaos.json");
    bool allDeterministic = true;
    double worstConservation = 0;
    std::uint64_t totalKilled = 0;

    const auto runCell = [&](const std::string &name,
                             scenario::ScenarioSpec spec)
        -> cluster::FleetReport {
        spec.threads = 1;
        scenario::ScenarioRunner serial(spec);
        const cluster::FleetReport report = serial.run();
        spec.threads = 8;
        scenario::ScenarioRunner threaded(spec);
        const bool deterministic =
            identicalTotals(report, threaded.run());
        allDeterministic = allDeterministic && deterministic;

        const double consErr = conservationError(report);
        worstConservation = std::max(worstConservation, consErr);
        totalKilled += report.killedInvocations;

        // Exactly one terminal state per arrival, crashes or not.
        if (report.completions + report.abandoned +
                report.rejectedMemory !=
            report.arrivals)
            fatal("fig25: cell '", name, "' lost invocations: ",
                  report.completions, " completed + ",
                  report.abandoned, " abandoned + ",
                  report.rejectedMemory, " rejected != ",
                  report.arrivals, " arrivals");

        table.addRow({name, std::to_string(report.crashes),
                      std::to_string(report.killedInvocations),
                      std::to_string(report.retries),
                      std::to_string(report.abandoned),
                      TextTable::num(report.lostCpuSeconds, 4),
                      TextTable::num(report.absorbedCpuSeconds, 4),
                      TextTable::num(consErr, 9),
                      deterministic ? "yes" : "NO"});

        json.metric(name, "crashes", report.crashes);
        json.metric(name, "killed", report.killedInvocations);
        json.metric(name, "retries", report.retries);
        json.metric(name, "abandoned", report.abandoned);
        json.metric(name, "lost_cpu_seconds", report.lostCpuSeconds);
        json.metric(name, "absorbed_cpu_seconds",
                    report.absorbedCpuSeconds);
        json.metric(name, "absorbed_usd", report.absorbedUsd);
        json.metric(name, "billed_cpu_seconds",
                    report.billedCpuSeconds);
        json.metric(name, "completions", report.completions);
        json.metric(name, "conservation_error", consErr);
        json.metric(name, "deterministic", deterministic ? 1 : 0);
        return report;
    };

    // --- Retry-policy sweep under the same crash schedule. ---------
    const auto dropReport =
        runCell("drop", baseScenario(cluster::RetryPolicy::Drop));
    if (dropReport.retries != 0 ||
        dropReport.abandoned != dropReport.killedInvocations)
        fatal("fig25: drop policy must abandon every killed "
              "invocation (", dropReport.retries, " retries, ",
              dropReport.abandoned, " abandoned, ",
              dropReport.killedInvocations, " killed)");

    const auto onceReport =
        runCell("retry-once", baseScenario(cluster::RetryPolicy::RetryOnce));
    if (onceReport.retries + onceReport.abandoned !=
        onceReport.killedInvocations)
        fatal("fig25: retry-once must retry or abandon each kill "
              "exactly once");

    const auto backoffSpec =
        baseScenario(cluster::RetryPolicy::RetryBackoff);
    const auto backoffReport = runCell("retry-backoff", backoffSpec);
    if (backoffReport.retries + backoffReport.abandoned !=
        backoffReport.killedInvocations)
        fatal("fig25: retry-backoff must retry or abandon each kill");

    // --- The fault-billing split partitions one total. -------------
    // Billing mode changes who pays, never what runs: the tenant-pays
    // twin of the backoff cell executes the identical schedule, so
    // its billed seconds must equal the provider's billed + absorbed.
    auto tenantSpec = backoffSpec;
    tenantSpec.fault.billing = cluster::FaultBilling::TenantPays;
    const auto tenantReport = runCell("tenant-pays", tenantSpec);
    if (tenantReport.absorbedCpuSeconds != 0)
        fatal("fig25: tenant-pays absorbed work");
    const double splitError = relativeError(
        tenantReport.billedCpuSeconds,
        backoffReport.billedCpuSeconds +
            backoffReport.absorbedCpuSeconds);
    const double splitUsdError = relativeError(
        tenantReport.commercialUsd,
        backoffReport.commercialUsd + backoffReport.absorbedUsd);

    // --- Full chaos: slowdown + blindness on top of crashes. -------
    auto chaosSpec = baseScenario(cluster::RetryPolicy::RetryBackoff);
    chaosSpec.fault.slowMtbf = span / 3;
    chaosSpec.fault.slowDuration = std::max(2e-3, span / 10);
    chaosSpec.fault.slowFactor = 0.6;
    chaosSpec.fault.blindMtbf = span / 3;
    chaosSpec.fault.blindDuration = std::max(2e-3, span / 12);
    const auto chaosReport = runCell("full-chaos", chaosSpec);

    table.print(std::cout);
    std::cout << "\nbilling split tenant-pays vs provider-absorbs: "
              << TextTable::num(splitError, 9) << " s err, "
              << TextTable::num(splitUsdError, 9) << " $ err\n";

    bench::printPaperMeasured(
        std::cout,
        "n/a (robustness extension; the paper bills on machines that "
        "stay up) — expect conservation <= 1e-6 through crashes, the "
        "billing modes to split one total, and bit-identical reports "
        "under threading",
        std::to_string(chaosReport.crashes) +
            " crashes in the chaos cell, " +
            std::to_string(totalKilled) +
            " invocations killed across the sweep, max conservation "
            "error " +
            TextTable::num(worstConservation, 9) +
            (allDeterministic ? ", all cells deterministic"
                              : ", DETERMINISM BROKEN"));

    json.metric("", "billing_split_error", splitError);
    json.metric("", "billing_split_usd_error", splitUsdError);
    json.metric("", "max_conservation_error", worstConservation);
    json.metric("", "total_killed", totalKilled);
    json.metric("", "all_deterministic", allDeterministic ? 1 : 0);
    json.write();

    if (worstConservation > 1e-6)
        fatal("fig25: billing conservation violated through failures "
              "(", worstConservation, " relative)");
    if (splitError > 1e-6 || splitUsdError > 1e-6)
        fatal("fig25: tenant-pays and provider-absorbs do not split "
              "one total (", splitError, " s, ", splitUsdError,
              " $)");
    if (totalKilled == 0)
        fatal("fig25: the fault campaign never killed an in-flight "
              "invocation — the chaos sweep is not exercising "
              "failure billing");
    if (!allDeterministic)
        fatal("fig25: a chaos cell is not deterministic under "
              "threading");
    return 0;
}
