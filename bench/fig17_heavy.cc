/**
 * @file
 * Figure 17: heavy congestion — 320 co-running functions drawn from
 * the eight most memory-intensive suite members, Method 2 tables.
 *
 * Paper: Litmus discount 20.0%, ideal 21.5%; largest Litmus discount
 * 26.0% (dyn-py) with a 2.8% error.
 */

#include <iostream>

#include "bench_util.h"
#include "core/calibration.h"
#include "workload/suite.h"

using namespace litmus;

int
main()
{
    printBanner(std::cout,
                "Figure 17: heavy congestion, 320 co-runners");

    std::cout << "calibrating (Method 2)...\n";
    const auto cal = pricing::calibrate(bench::sharingCalibration());
    const pricing::DiscountModel model(cal.congestion, cal.performance);

    auto cfg = bench::pooledExperiment(320, 16);
    cfg.coRunnerPool = workload::memoryIntensiveSet();
    cfg.warmup = 0.5;

    const auto result = pricing::runPricingExperiment(cfg, model);

    bench::printPriceTable(result);
    double maxDiscount = 0;
    std::string maxName;
    for (const auto &row : result.rows) {
        if (1 - row.litmusPrice > maxDiscount) {
            maxDiscount = 1 - row.litmusPrice;
            maxName = row.name;
        }
    }
    bench::printDiscountSummary(result, 0.200, 0.215);
    std::cout << "paper=    largest Litmus discount 26.0% (dyn-py)\n"
              << "measured= largest Litmus discount "
              << TextTable::num(100 * maxDiscount, 1) << "% (" << maxName
              << ")\n";
    return 0;
}
