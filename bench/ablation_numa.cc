/**
 * @file
 * Ablation: explicit dual-socket domains vs the folded single domain.
 *
 * The paper's testbed is a dual-socket Xeon; the default presets fold
 * it into one shared domain (DESIGN.md). This ablation models the
 * sockets explicitly ("cascade-5218-dual") and shows:
 *
 *  1. placement sensitivity the folded model cannot express — hogs on
 *     the subject's socket hurt, hogs on the remote socket do not;
 *  2. Litmus pricing keeps tracking the ideal price when calibration
 *     and serving both run on the dual-socket machine.
 */

#include <iostream>

#include "bench_util.h"
#include "core/calibration.h"
#include "workload/suite.h"
#include "sim/machine_catalog.h"

using namespace litmus;

namespace
{

/** pager-py slowdown with hogs on the given CPUs (dual machine). */
double
slowdownWithHogs(const sim::MachineConfig &cfg,
                 const std::vector<unsigned> &hog_cpus, double solo_cpi)
{
    sim::Engine engine(cfg);
    for (unsigned cpu : hog_cpus) {
        sim::ResourceDemand d;
        d.cpi0 = 0.6;
        d.l2Mpki = 30.0;
        d.l3WorkingSet = 16_MiB;
        d.l3MissBase = 0.8;
        d.mlp = 8.0;
        auto task = std::make_unique<workload::EndlessTask>(
            "hog" + std::to_string(cpu), d);
        task->setAffinity({cpu});
        engine.add(std::move(task));
    }
    sim::TaskCounters counters;
    engine.onCompletion([&](sim::Task &t) {
        if (t.name() == "pager-py")
            counters = t.counters();
    });
    auto subject = workload::makeNominalInvocation(
        workload::functionByName("pager-py"), false);
    subject->setAffinity({0});
    sim::Task &handle = engine.add(std::move(subject));
    engine.runUntilComplete(handle);
    return (counters.cycles / counters.instructions) / solo_cpi;
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Ablation: dual-socket domains vs folded domain");

    const auto dual = sim::MachineCatalog::get("cascade-5218-dual");
    const auto folded = sim::MachineCatalog::get("cascade-5218");

    const auto solo = pricing::measureSoloBaseline(
        dual, workload::functionByName("pager-py"));
    const double soloCpi = solo.totalCpi();

    std::vector<unsigned> local, remote, spread;
    for (unsigned i = 0; i < 12; ++i) {
        local.push_back(1 + i);   // subject's socket (0)
        remote.push_back(16 + i); // socket 1
        spread.push_back(i % 2 == 0 ? 1 + i / 2 : 16 + i / 2);
    }

    TextTable table({"hog placement (12 hogs)", "subject slowdown"});
    table.addRow({"same socket",
                  TextTable::num(slowdownWithHogs(dual, local, soloCpi))});
    table.addRow({"spread half/half",
                  TextTable::num(slowdownWithHogs(dual, spread, soloCpi))});
    table.addRow({"remote socket",
                  TextTable::num(slowdownWithHogs(dual, remote, soloCpi))});
    const auto soloFolded = pricing::measureSoloBaseline(
        folded, workload::functionByName("pager-py"));
    table.addRow({"folded domain (same 12)",
                  TextTable::num(slowdownWithHogs(
                      folded, local, soloFolded.totalCpi()))});
    table.print(std::cout);

    // Pricing still tracks ideal on the dual-socket machine.
    std::cout << "\ncalibrating on the dual-socket machine...\n";
    pricing::CalibrationConfig ccfg;
    ccfg.machine = dual;
    ccfg.levels = {4, 8, 12};
    const auto cal = pricing::calibrate(ccfg);
    const pricing::DiscountModel model(cal.congestion, cal.performance);

    pricing::ExperimentConfig cfg;
    cfg.machine = dual;
    cfg.coRunners = 14; // subject's socket fills first by least-load
    cfg.layoutOnePerCore();
    cfg.repetitions = bench::reps(3);
    const auto result = pricing::runPricingExperiment(cfg, model);

    std::cout << "\npaper=    (extension; the paper folds both sockets "
                 "into its measurements)\n"
              << "measured= remote-socket hogs are harmless, local "
                 "hogs are not; dual-socket pricing gap "
              << TextTable::num(100 * (result.idealDiscount() -
                                       result.litmusDiscount()),
                                1)
              << "pp (litmus "
              << TextTable::num(100 * result.litmusDiscount(), 1)
              << "% vs ideal "
              << TextTable::num(100 * result.idealDiscount(), 1)
              << "%)\n";
    return 0;
}
