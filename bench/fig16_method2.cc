/**
 * @file
 * Figure 16: Method 2 — tables rebuilt in a sharing-enabled
 * environment (50 functions over 5 cores during calibration), then
 * 160 co-runners over 16 cores.
 *
 * Paper: Litmus discount 17.2%, ideal 17.4% — a 0.2pp gap.
 */

#include <iostream>

#include "bench_util.h"
#include "core/calibration.h"

using namespace litmus;

int
main()
{
    printBanner(std::cout, "Figure 16: Method 2 — sharing-calibrated "
                           "tables, 160 co-runners");

    std::cout << "calibrating (50 functions over 5 shared cores)...\n";
    const auto cal = pricing::calibrate(bench::sharingCalibration());
    const pricing::DiscountModel model(cal.congestion, cal.performance);

    const auto cfg = bench::pooledExperiment(160, 16);
    const auto result = pricing::runPricingExperiment(cfg, model);

    bench::printPriceTable(result);
    bench::printDiscountSummary(result, 0.172, 0.174);
    return 0;
}
