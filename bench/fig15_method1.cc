/**
 * @file
 * Figure 15: Method 1 — temporal CPU sharing priced with the
 * dedicated-environment tables plus a switching-overhead calibration
 * factor on T_private (160 co-runners over 16 cores, ~10 per core).
 *
 * Paper: Litmus discount 14.5%, ideal 17.4% (Method 1 undershoots).
 */

#include <iostream>

#include "bench_util.h"
#include "core/calibration.h"
#include "sim/machine_catalog.h"

using namespace litmus;

int
main()
{
    printBanner(std::cout, "Figure 15: Method 1 — dedicated tables + "
                           "sharing factor, 160 co-runners");

    std::cout << "calibrating (dedicated cores)...\n";
    const auto cal = pricing::calibrate(bench::dedicatedCalibration());
    const pricing::DiscountModel model(cal.congestion, cal.performance);

    auto cfg = bench::pooledExperiment(160, 16);
    // Average 10 functions per core: divide T_private by the Figure 14
    // warmth factor before consulting the tables (Section 7.2).
    const auto machine = sim::MachineCatalog::get("cascade-5218");
    sim::OsScheduler sched(machine);
    cfg.sharingFactor = sched.warmthForCount(10);

    const auto result = pricing::runPricingExperiment(cfg, model);

    bench::printPriceTable(result);
    bench::printDiscountSummary(result, 0.145, 0.174);
    return 0;
}
