/**
 * @file
 * Figure 23 (extension): heterogeneous fleet serving.
 *
 * The paper calibrates and prices on two servers — Cascade Lake 5218
 * (Section 3) and Ice Lake 4314 (Section 8) — but always one at a
 * time. This bench serves one open-loop trace from a fleet that mixes
 * both generations, under every dispatch policy, with per-type Litmus
 * pricing: each machine type is calibrated once (ProfileStore) and
 * billed through its own profile-backed discount model.
 *
 * Always enforced:
 *  - the per-machine-type billing breakdown sums to the fleet totals
 *    (relative error <= 1e-6, for billed seconds and both revenues);
 *  - fleet billed seconds equal the sum of the per-machine ledgers
 *    (<= 1e-6);
 *  - the threaded epoch runner is bit-identical to the serial one at
 *    a fixed seed.
 *
 * Knobs: LITMUS_FLEET_INVOCATIONS (arrivals per machine, default
 * 625), LITMUS_FLEET_RATE (per machine, default 500),
 * LITMUS_FLEET_PRICING (0 disables the calibration sweep + Litmus
 * pricing; smoke/sanitizer runs), LITMUS_BENCH_JSON.
 */

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "scenario/scenario_runner.h"

using namespace litmus;

namespace
{

constexpr unsigned kPerType = 4; // machines per generation

/** The mixed-fleet point as a declarative scenario; pricing (when
 *  on) runs through the runner's memoized calibrate path. */
scenario::ScenarioSpec
fleetScenario(cluster::DispatchPolicy policy, std::uint64_t per_machine,
              double rate_per_machine, bool pricing)
{
    scenario::ScenarioSpec spec;
    spec.fleet = {{"cascade-5218", kPerType},
                  {"icelake-4314", kPerType}};
    spec.policy = policy;
    const unsigned machines = 2 * kPerType;
    spec.traffic.arrivalsPerSecond = rate_per_machine * machines;
    spec.traffic.invocations = per_machine * machines;
    spec.keepAlive = 10.0;
    spec.seed = 7;
    spec.calibrate = pricing;
    // The env cap keeps smoke/sanitizer calibrations coarse; 0 means
    // the full dedicated sweep.
    spec.calibrationLevels = pricing::envOr("LITMUS_CAL_LEVELS", 0);
    return spec;
}

using bench::relativeError;

/** Worst relative error between the type breakdown and the fleet
 *  totals (billed seconds, commercial and Litmus revenue), plus
 *  exact count checks. */
double
typeBreakdownError(const cluster::FleetReport &report)
{
    Seconds billed = 0;
    double commercial = 0, litmus = 0;
    std::uint64_t dispatched = 0, completions = 0;
    unsigned machines = 0;
    for (const cluster::TypeReport &t : report.types) {
        billed += t.billedCpuSeconds;
        commercial += t.commercialUsd;
        litmus += t.litmusUsd;
        dispatched += t.dispatched;
        completions += t.completions;
        machines += t.machines;
    }
    if (dispatched != report.dispatched ||
        completions != report.completions ||
        machines != report.machines.size())
        fatal("fig23: type breakdown loses machines or invocations");
    if (report.billedCpuSeconds <= 0)
        fatal("fig23: fleet billed no CPU time");
    double err = relativeError(report.billedCpuSeconds, billed);
    err = std::max(err,
                   relativeError(report.commercialUsd, commercial));
    err = std::max(err, relativeError(report.litmusUsd, litmus));
    return err;
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Figure 23 (extension): heterogeneous fleet, "
                "cascade-5218 + icelake-4314 x all dispatch policies");

    const std::uint64_t perMachine =
        pricing::envOr("LITMUS_FLEET_INVOCATIONS", 625);
    const double ratePerMachine =
        pricing::envOr("LITMUS_FLEET_RATE", 500);
    const bool litmusPricing =
        pricing::envOr("LITMUS_FLEET_PRICING", 1) != 0;

    TextTable table({"policy", "type", "dispatched", "cold %",
                     "billed s", "commercial $", "litmus $",
                     "discount %"});
    double worstTypeError = 0, worstConservation = 0;
    double costCascadeShare = 0, rrCascadeShare = 0;
    double discountCascade = 0, discountIcelake = 0;
    for (cluster::DispatchPolicy policy : cluster::allPolicies()) {
        // Calibration is memoized process-wide (ProfileStore), so
        // the per-policy runners share two sweeps, not run eight.
        scenario::ScenarioRunner runner(fleetScenario(
            policy, perMachine, ratePerMachine, litmusPricing));
        const cluster::FleetReport &report = runner.run();

        worstTypeError =
            std::max(worstTypeError, typeBreakdownError(report));
        worstConservation = std::max(
            worstConservation,
            relativeError(report.billedCpuSeconds,
                          report.sumMachineBilledSeconds()));

        for (const cluster::TypeReport &t : report.types) {
            const double share =
                report.dispatched > 0
                    ? static_cast<double>(t.dispatched) /
                          report.dispatched
                    : 0.0;
            if (t.type == "cascade-5218") {
                if (policy == cluster::DispatchPolicy::CostAware) {
                    costCascadeShare = share;
                    discountCascade = t.discount();
                }
                if (policy == cluster::DispatchPolicy::RoundRobin)
                    rrCascadeShare = share;
            } else if (policy == cluster::DispatchPolicy::CostAware) {
                discountIcelake = t.discount();
            }
            table.addRow(
                {policyName(policy), t.type,
                 std::to_string(t.dispatched),
                 TextTable::num(t.dispatched > 0
                                    ? 100.0 * t.coldStarts /
                                          t.dispatched
                                    : 0.0,
                                1),
                 TextTable::num(t.billedCpuSeconds, 3),
                 TextTable::num(t.commercialUsd, 6),
                 TextTable::num(t.litmusUsd, 6),
                 TextTable::num(100 * t.discount(), 1)});
        }
    }
    table.print(std::cout);

    // Determinism of the threaded runner on the mixed fleet: serial
    // vs. 8 workers must produce identical totals.
    auto detSpec = fleetScenario(cluster::DispatchPolicy::CostAware,
                                 perMachine, ratePerMachine,
                                 litmusPricing);
    detSpec.threads = 1;
    scenario::ScenarioRunner serial(detSpec);
    const cluster::FleetReport &serialReport = serial.run();
    detSpec.threads = 8;
    scenario::ScenarioRunner threaded(detSpec);
    const cluster::FleetReport &threadedReport = threaded.run();
    const bool deterministic =
        cluster::identicalTotals(serialReport, threadedReport);
    std::cout << "\ndeterminism(mixed fleet, 1 vs 8 threads): "
              << (deterministic ? "identical totals" : "MISMATCH")
              << "  billed "
              << TextTable::num(serialReport.billedCpuSeconds, 6)
              << " vs "
              << TextTable::num(threadedReport.billedCpuSeconds, 6)
              << "\n";

    bench::printPaperMeasured(
        std::cout,
        "n/a (heterogeneity extension; the paper prices one server "
        "generation at a time) — expect cost-aware to shift load "
        "toward the faster generation and per-type billing to sum "
        "to the fleet",
        "cost-aware routes " +
            TextTable::num(100 * costCascadeShare, 1) +
            "% of traffic to cascade-5218 (round-robin " +
            TextTable::num(100 * rrCascadeShare, 1) +
            "%), type discounts " +
            TextTable::num(100 * discountCascade, 1) + "% / " +
            TextTable::num(100 * discountIcelake, 1) +
            "% (cascade/icelake), max type-breakdown error " +
            TextTable::num(worstTypeError, 9) +
            ", max conservation error " +
            TextTable::num(worstConservation, 9));

    bench::BenchJson json("BENCH_hetero.json");
    json.metric("", "cost_cascade_share", costCascadeShare);
    json.metric("", "rr_cascade_share", rrCascadeShare);
    json.metric("", "discount_cascade", discountCascade);
    json.metric("", "discount_icelake", discountIcelake);
    json.metric("", "max_type_breakdown_error", worstTypeError);
    json.metric("", "max_conservation_error", worstConservation);
    json.metric("", "deterministic", deterministic ? 1 : 0);
    json.write();

    if (worstTypeError > 1e-6)
        fatal("fig23: per-type billing does not sum to the fleet "
              "total (", worstTypeError, " relative)");
    if (worstConservation > 1e-6)
        fatal("fig23: fleet billing conservation violated (",
              worstConservation, " relative)");
    if (!deterministic)
        fatal("fig23: threaded mixed-fleet runner is not "
              "deterministic");
    return 0;
}
