/**
 * @file
 * Figure 22 (extension): fleet scaling of the serving layer.
 *
 * The paper prices invocations on one machine; this bench scales the
 * same open-loop traffic across 1 -> 16 machines under the three
 * dispatch policies, holding the per-machine arrival rate constant
 * (weak scaling). It reports served throughput, cold-start rate, and
 * the fleet's price-conservation error — fleet billed CPU seconds
 * versus the sum of the per-machine ledgers — and re-runs the largest
 * configuration single-threaded and multi-threaded to prove the
 * threaded runner is deterministic.
 *
 * Knobs: LITMUS_FLEET_INVOCATIONS (arrivals per machine, default 625
 * so the 16-machine point serves 10000), LITMUS_FLEET_RATE (arrivals
 * per second per machine, default 500).
 */

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "scenario/scenario_runner.h"

using namespace litmus;

namespace
{

/** The weak-scaling point as a declarative scenario (the poisson
 *  model reproduces the pre-scenario trace bit-exactly, so migrating
 *  this bench onto the runner moved no numbers). */
scenario::ScenarioSpec
fleetScenario(unsigned machines, cluster::DispatchPolicy policy,
              std::uint64_t per_machine, double rate_per_machine)
{
    scenario::ScenarioSpec spec;
    spec.fleet = {{"cascade-5218", machines}};
    spec.policy = policy;
    spec.traffic.arrivalsPerSecond = rate_per_machine * machines;
    spec.traffic.invocations = per_machine * machines;
    spec.keepAlive = 10.0;
    spec.seed = 7;
    return spec;
}

/** |fleet billed - sum of machine ledgers| / fleet billed. */
double
conservationError(const cluster::FleetReport &report)
{
    // A zeroed fleet accumulator is itself a conservation bug, not a
    // pass — never mask it.
    if (report.billedCpuSeconds <= 0)
        fatal("fig22: fleet billed no CPU time");
    return std::abs(report.billedCpuSeconds -
                    report.sumMachineBilledSeconds()) /
           report.billedCpuSeconds;
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Figure 22 (extension): fleet scaling, 1 -> 16 "
                "machines x 3 dispatch policies");

    const std::uint64_t perMachine =
        pricing::envOr("LITMUS_FLEET_INVOCATIONS", 625);
    const double ratePerMachine =
        pricing::envOr("LITMUS_FLEET_RATE", 500);

    TextTable table({"machines", "policy", "invocations", "served/s",
                     "cold %", "mean lat ms", "billed s",
                     "conservation err"});
    double worstConservation = 0;
    double throughput1 = 0, throughput16 = 0;
    double coldRr16 = 0, coldWarm16 = 0;
    for (unsigned machines : {1u, 2u, 4u, 8u, 16u}) {
        for (cluster::DispatchPolicy policy : cluster::allPolicies()) {
            scenario::ScenarioRunner runner(fleetScenario(
                machines, policy, perMachine, ratePerMachine));
            const cluster::FleetReport &report = runner.run();
            const double err = conservationError(report);
            worstConservation = std::max(worstConservation, err);

            if (machines == 1 &&
                policy == cluster::DispatchPolicy::RoundRobin)
                throughput1 = report.throughput();
            if (machines == 16) {
                if (policy == cluster::DispatchPolicy::RoundRobin) {
                    throughput16 = report.throughput();
                    coldRr16 = report.coldStartRate();
                }
                if (policy == cluster::DispatchPolicy::WarmthAware)
                    coldWarm16 = report.coldStartRate();
            }

            table.addRow({std::to_string(machines),
                          policyName(policy),
                          std::to_string(report.dispatched),
                          TextTable::num(report.throughput(), 0),
                          TextTable::num(100 * report.coldStartRate(),
                                         1),
                          TextTable::num(1e3 * report.meanLatency, 1),
                          TextTable::num(report.billedCpuSeconds, 3),
                          TextTable::num(err, 9)});
        }
    }
    table.print(std::cout);

    // Determinism of the threaded runner: the largest configuration,
    // serial vs. multi-threaded, must produce identical fleet totals —
    // and the event core must match the epoch oracle bit-for-bit at
    // both thread counts.
    auto detSpec =
        fleetScenario(16, cluster::DispatchPolicy::WarmthAware,
                      perMachine, ratePerMachine);
    detSpec.threads = 1;
    scenario::ScenarioRunner serial(detSpec);
    const cluster::FleetReport &serialReport = serial.run();
    detSpec.threads = 8;
    scenario::ScenarioRunner threaded(detSpec);
    const cluster::FleetReport &threadedReport = threaded.run();
    const bool deterministic =
        cluster::identicalTotals(serialReport, threadedReport);
    std::cout << "\ndeterminism(16 machines, 1 vs 8 threads): "
              << (deterministic ? "identical totals" : "MISMATCH")
              << "  billed " << TextTable::num(
                     serialReport.billedCpuSeconds, 6)
              << " vs " << TextTable::num(
                     threadedReport.billedCpuSeconds, 6)
              << "\n";

    detSpec.scheduler = cluster::SchedulerBackend::Epoch;
    detSpec.threads = 1;
    scenario::ScenarioRunner epochSerial(detSpec);
    const cluster::FleetReport &epochSerialReport = epochSerial.run();
    detSpec.threads = 8;
    scenario::ScenarioRunner epochThreaded(detSpec);
    const cluster::FleetReport &epochThreadedReport =
        epochThreaded.run();
    const bool backendsIdentical =
        cluster::identicalTotals(serialReport, epochSerialReport) &&
        cluster::identicalTotals(threadedReport, epochThreadedReport);
    std::cout << "event vs epoch (16 machines, 1 and 8 threads): "
              << (backendsIdentical ? "identical totals" : "MISMATCH")
              << "  barriers " << serialReport.sched.barriers
              << " vs " << epochSerialReport.sched.barriers
              << " (elided " << serialReport.sched.barriersElided
              << ", idle quanta skipped "
              << serialReport.sched.idleQuantaSkipped << ")\n";

    bench::printPaperMeasured(
        std::cout,
        "n/a (fleet extension; single-machine Litmus only) — expect "
        "near-linear weak scaling and warmth-aware < round-robin "
        "cold starts",
        "throughput x" +
            TextTable::num(
                throughput1 > 0 ? throughput16 / throughput1 : 0.0, 2) +
            " from 1 to 16 machines, cold starts " +
            TextTable::num(100 * coldRr16, 1) + "% (round-robin) vs " +
            TextTable::num(100 * coldWarm16, 1) +
            "% (warmth-aware), max price-conservation error " +
            TextTable::num(worstConservation, 9));

    bench::BenchJson json("BENCH_fleet.json");
    json.metric("", "scaling_throughput_x",
                throughput1 > 0 ? throughput16 / throughput1 : 0.0);
    json.metric("", "cold_rate_rr_16", coldRr16);
    json.metric("", "cold_rate_warmth_16", coldWarm16);
    json.metric("", "max_conservation_error", worstConservation);
    json.metric("", "event_epoch_identical",
                backendsIdentical ? 1.0 : 0.0);
    const cluster::SchedulerCounters &sc = serialReport.sched;
    json.metric("sched_event", "events_arrival",
                static_cast<double>(sc.eventsArrival));
    json.metric("sched_event", "events_retry",
                static_cast<double>(sc.eventsRetry));
    json.metric("sched_event", "events_fault",
                static_cast<double>(sc.eventsFault));
    json.metric("sched_event", "events_keepalive",
                static_cast<double>(sc.eventsKeepAlive));
    json.metric("sched_event", "events_progress",
                static_cast<double>(sc.eventsProgress));
    json.metric("sched_event", "barriers",
                static_cast<double>(sc.barriers));
    json.metric("sched_event", "barriers_elided",
                static_cast<double>(sc.barriersElided));
    json.metric("sched_event", "idle_quanta_skipped",
                static_cast<double>(sc.idleQuantaSkipped));
    json.write();

    if (worstConservation > 1e-6)
        fatal("fig22: fleet billing conservation violated (",
              worstConservation, " relative)");
    if (!deterministic)
        fatal("fig22: threaded fleet runner is not deterministic");
    if (!backendsIdentical)
        fatal("fig22: event scheduler diverged from the epoch oracle");
    return 0;
}
