/**
 * @file
 * Figure 26 (extension): trace-scale serving — streaming vs upfront
 * arrival delivery on Azure-dataset-shaped workloads.
 *
 * The streaming arrival path exists so day-long, 10^5-10^6-function
 * traces fit in bounded memory. This bench generates Azure-shaped
 * CSVs along two axes — function count 10^3 -> 10^5 (10^6 at full
 * scale) at a constant fleet-wide arrival volume, and trace length
 * hour -> day — serves each under both delivery modes, and reports
 * per-cell peak RSS, time-to-first-arrival (parse + first pull),
 * wall time, and the arrival-flow counters (generated / pulled /
 * buffered max).
 *
 * The function sweep holds the served volume constant because
 * everything downstream of arrivals (billing ledgers retain one
 * record per invocation) is O(served) in BOTH modes — a sweep that
 * scaled volume with function count would measure the ledger, not
 * the delivery path. What separates the modes is arrivals resident
 * at once, and that is asserted exactly: upfront's buffered max IS
 * the whole trace (grows linearly hour -> day), streaming's is one
 * azure minute (<= 10% of the trace on every standard cell).
 *
 * Always enforced:
 *  - streaming and upfront produce bit-identical fleet totals AND
 *    per-machine billing ledgers (record for record) on the
 *    differential cell, at 1 and 8 worker threads, with and without
 *    a crash/retry chaos campaign;
 *  - every cell where both modes run has identical fleet totals;
 *  - streaming peak RSS stays under LITMUS_TRACE_RSS_CEILING_MB.
 * At standard/full scale with LITMUS_BENCH_STRICT != 0 the bench
 * additionally asserts the exact buffered-max shape above and (with
 * /proc available) that the streaming peak stays flat (<= 2x)
 * across the 10^3 -> 10^5 function sweep and below the upfront
 * peak.
 *
 * All streaming cells run before any upfront cell: glibc retains
 * freed pages, so the upfront runs' large vectors would otherwise
 * put a floor under later streaming measurements.
 *
 * Knobs: LITMUS_TRACE_SCALE (small | standard | full; default
 * standard), LITMUS_TRACE_RSS_CEILING_MB (default 2048),
 * LITMUS_BENCH_STRICT (0 relaxes the RSS-shape assertions),
 * LITMUS_BENCH_JSON.
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/traffic_source.h"
#include "common/rng.h"
#include "scenario/azure_trace.h"
#include "scenario/scenario_runner.h"

using namespace litmus;

namespace
{

using bench::BenchJson;
using cluster::identicalTotals;

double
// LITMUS-LINT-ALLOW(wall-clock): measuring wall time IS this bench's purpose
wallSeconds(std::chrono::steady_clock::time_point from,
            // LITMUS-LINT-ALLOW(wall-clock): timing only — never feeds simulated results
            std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

/** One sweep cell: an Azure-shaped file and whether the upfront
 *  (materialize-everything) twin is affordable for it. */
struct Cell
{
    std::uint64_t functions;
    unsigned minutes;
    double perMinute;
    bool upfront;

    std::string name() const
    {
        return "f" + std::to_string(functions) + "_m" +
               std::to_string(minutes);
    }
};

std::vector<Cell>
cellsFor(const std::string &scale)
{
    if (scale == "small")
        return {{1000, 5, 300.0, true}};
    // Function sweep at one fleet-wide volume (see the file
    // comment), then the duration axis: the day cell is where the
    // upfront twin's resident trace grows 24x.
    std::vector<Cell> cells = {
        {1000, 60, 5000.0, true},   {10000, 60, 5000.0, true},
        {100000, 60, 5000.0, true}, {1000, 1440, 500.0, true}};
    if (scale == "full") {
        cells.push_back({1000000, 60, 5000.0, false});
        cells.push_back({10000, 1440, 2000.0, false});
    } else if (scale != "standard") {
        fatal("fig26: unknown LITMUS_TRACE_SCALE '", scale,
              "' (want small | standard | full)");
    }
    return cells;
}

scenario::ScenarioSpec
cellSpec(const std::string &path, bool upfront)
{
    scenario::ScenarioSpec spec;
    spec.fleet = {{"cascade-5218", 2}};
    spec.set("traffic", "azure"); // drops the 10000-arrival default
    spec.traffic.azurePath = path;
    spec.keepAlive = 5.0;
    spec.seed = 7;
    spec.upfrontArrivals = upfront;
    return spec;
}

/** A run's complete observable outcome (fig-26's own copy of the
 *  test_event_core differential harness, fatal() instead of gtest). */
struct Outcome
{
    cluster::FleetReport report;
    std::vector<std::vector<pricing::BillRecord>> ledgers;
};

Outcome
runOutcome(scenario::ScenarioSpec spec)
{
    scenario::ScenarioRunner runner(std::move(spec));
    Outcome out;
    out.report = runner.run();
    for (std::size_t m = 0; m < out.report.machines.size(); ++m)
        out.ledgers.push_back(
            runner.cluster().ledger(static_cast<unsigned>(m)).records());
    return out;
}

void
requireIdentical(const Outcome &a, const Outcome &b,
                 const std::string &what)
{
    if (!identicalTotals(a.report, b.report))
        fatal("fig26: fleet totals diverged (", what, ")");
    if (a.ledgers.size() != b.ledgers.size())
        fatal("fig26: machine count diverged (", what, ")");
    for (std::size_t m = 0; m < a.ledgers.size(); ++m) {
        if (a.ledgers[m].size() != b.ledgers[m].size())
            fatal("fig26: ledger ", m, " record count diverged (",
                  what, ")");
        for (std::size_t r = 0; r < a.ledgers[m].size(); ++r) {
            const pricing::BillRecord &p = a.ledgers[m][r];
            const pricing::BillRecord &q = b.ledgers[m][r];
            if (p.function != q.function || p.tenant != q.tenant ||
                p.cpuSeconds != q.cpuSeconds ||
                p.commercialUsd != q.commercialUsd ||
                p.litmusUsd != q.litmusUsd)
                fatal("fig26: ledger ", m, " record ", r,
                      " diverged (", what, ")");
        }
    }
}

/** Time from cold model build to the first arrival being available:
 *  the latency a fleet waits before dispatch can begin. */
double
timeToFirstArrival(const scenario::ScenarioSpec &spec, bool upfront)
{
    const auto pool = spec.functionPool();
    // LITMUS-LINT-ALLOW(wall-clock): time-to-first-dispatch is the measurement
    const auto t0 = std::chrono::steady_clock::now();
    const auto model = scenario::makeTrafficModel(spec.traffic);
    Rng rng(cluster::deriveArrivalSeed(spec.seed));
    if (upfront) {
        const auto trace = model->generate(rng, pool);
        if (trace.empty())
            fatal("fig26: empty upfront trace");
    } else {
        auto stream = model->open(rng, pool);
        cluster::Invocation inv;
        if (!stream->next(inv))
            fatal("fig26: empty stream");
    }
    // LITMUS-LINT-ALLOW(wall-clock): timing only — never feeds simulated results
    return wallSeconds(t0, std::chrono::steady_clock::now());
}

/** One mode's measured serve of one cell. */
struct Measured
{
    cluster::FleetReport report;
    double peakRssMb = 0;
    double firstArrivalS = 0;
    double serveWallS = 0;
};

Measured
measure(const std::string &path, bool upfront)
{
    Measured m;
    m.firstArrivalS = timeToFirstArrival(cellSpec(path, upfront),
                                         upfront);
    const bool rss = bench::resetPeakRss();
    // LITMUS-LINT-ALLOW(wall-clock): serve wall time is the measurement
    const auto t0 = std::chrono::steady_clock::now();
    scenario::ScenarioRunner runner(cellSpec(path, upfront));
    m.report = runner.run();
    // LITMUS-LINT-ALLOW(wall-clock): timing only — never feeds simulated results
    m.serveWallS = wallSeconds(t0, std::chrono::steady_clock::now());
    if (rss)
        m.peakRssMb =
            static_cast<double>(bench::peakRssBytes()) / (1 << 20);
    return m;
}

void
recordCell(BenchJson &json, const std::string &group, const Measured &m)
{
    json.metric(group, "arrivals",
                static_cast<double>(m.report.arrivals));
    json.metric(group, "peak_rss_mb", m.peakRssMb);
    json.metric(group, "first_arrival_s", m.firstArrivalS);
    json.metric(group, "serve_wall_s", m.serveWallS);
    json.metric(group, "throughput", m.report.throughput());
    json.metric(group, "generated",
                static_cast<double>(m.report.arrivalFlow.generated));
    json.metric(group, "pulled",
                static_cast<double>(m.report.arrivalFlow.pulled));
    json.metric(group, "buffered_max",
                static_cast<double>(m.report.arrivalFlow.bufferedMax));
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Figure 26 (extension): trace-scale serving — "
                "streaming vs upfront arrivals on Azure-shaped "
                "workloads");

    const char *scaleEnv = std::getenv("LITMUS_TRACE_SCALE");
    const std::string scale =
        scaleEnv && *scaleEnv ? scaleEnv : "standard";
    const double ceilingMb =
        pricing::envOr("LITMUS_TRACE_RSS_CEILING_MB", 2048);
    const bool strict = pricing::envOr("LITMUS_BENCH_STRICT", 1) != 0;

    const std::vector<Cell> cells = cellsFor(scale);
    std::vector<std::string> paths;
    for (const Cell &cell : cells) {
        scenario::AzureTraceGenSpec gen;
        gen.functions = cell.functions;
        gen.minutes = cell.minutes;
        gen.invocationsPerMinute = cell.perMinute;
        gen.seed = 26;
        const std::string path =
            "fig26_azure_" + cell.name() + ".csv";
        const std::uint64_t total =
            scenario::writeAzureShapedCsv(path, gen);
        std::cout << "generated " << path << ": " << cell.functions
                  << " functions x " << cell.minutes << " min, "
                  << total << " invocations\n";
        paths.push_back(path);
    }

    // Streaming sweep first (see the file comment for why), then the
    // upfront twins.
    BenchJson json("BENCH_trace_scale.json");
    std::vector<Measured> streaming;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        streaming.push_back(measure(paths[i], false));
        recordCell(json, cells[i].name() + "_streaming",
                   streaming.back());
    }
    std::vector<std::size_t> upfrontIdx;
    std::vector<Measured> upfront;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (!cells[i].upfront)
            continue;
        upfrontIdx.push_back(i);
        upfront.push_back(measure(paths[i], true));
        recordCell(json, cells[i].name() + "_upfront",
                   upfront.back());
        if (!identicalTotals(streaming[i].report,
                             upfront.back().report))
            fatal("fig26: streaming vs upfront totals diverged on ",
                  cells[i].name());
    }

    TextTable table({"cell", "mode", "arrivals", "peak RSS MB",
                     "first arrival ms", "serve s", "buffered max"});
    const auto addRow = [&table](const Cell &cell, const char *mode,
                                 const Measured &m) {
        table.addRow({cell.name(), mode,
                      std::to_string(m.report.arrivals),
                      TextTable::num(m.peakRssMb, 1),
                      TextTable::num(1e3 * m.firstArrivalS, 2),
                      TextTable::num(m.serveWallS, 2),
                      std::to_string(m.report.arrivalFlow.bufferedMax)});
    };
    for (std::size_t i = 0; i < cells.size(); ++i)
        addRow(cells[i], "streaming", streaming[i]);
    for (std::size_t k = 0; k < upfront.size(); ++k)
        addRow(cells[upfrontIdx[k]], "upfront", upfront[k]);
    table.print(std::cout);

    // ---- differential gate: totals + per-record ledgers ------------
    // A dedicated tiny cell keeps this affordable at every scale.
    scenario::AzureTraceGenSpec diffGen;
    diffGen.functions = 500;
    diffGen.minutes = 4;
    diffGen.invocationsPerMinute = 300.0;
    diffGen.seed = 27;
    const std::string diffPath = "fig26_azure_diff.csv";
    scenario::writeAzureShapedCsv(diffPath, diffGen);
    for (const bool chaos : {false, true}) {
        const auto withChaos = [&](bool up, unsigned threads) {
            auto spec = cellSpec(diffPath, up);
            spec.threads = threads;
            if (chaos) {
                spec.fault.crashMtbf = 20.0;
                spec.fault.restartDelay = 1.0;
                spec.fault.retry = cluster::RetryPolicy::RetryBackoff;
                spec.fault.retryBackoff = 0.5;
            }
            return runOutcome(std::move(spec));
        };
        const std::string label = chaos ? " (chaos)" : "";
        const Outcome serial = withChaos(false, 1);
        requireIdentical(serial, withChaos(true, 1),
                         "streaming vs upfront, 1 thread" + label);
        requireIdentical(serial, withChaos(false, 8),
                         "streaming 1 vs 8 threads" + label);
        requireIdentical(serial, withChaos(true, 8),
                         "streaming vs upfront, 8 threads" + label);
    }
    std::cout << "\nstreaming vs upfront differential (totals + "
                 "per-record ledgers, 1 & 8 threads, +chaos): "
                 "identical\n";

    // ---- arrival-residency gates (exact, no /proc needed) ----------
    // Upfront's resident trace IS the whole run (buffered max ==
    // arrivals, so it grows linearly with trace length); streaming
    // holds at most one azure minute.
    if (strict && scale != "small") {
        for (std::size_t k = 0; k < upfront.size(); ++k) {
            const auto &flow = upfront[k].report.arrivalFlow;
            if (flow.bufferedMax != upfront[k].report.arrivals)
                fatal("fig26: upfront buffered max ", flow.bufferedMax,
                      " != whole trace ", upfront[k].report.arrivals,
                      " on ", cells[upfrontIdx[k]].name());
        }
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const auto &flow = streaming[i].report.arrivalFlow;
            if (10 * flow.bufferedMax > streaming[i].report.arrivals)
                fatal("fig26: streaming buffered max ",
                      flow.bufferedMax, " above 10% of the trace (",
                      streaming[i].report.arrivals, " arrivals) on ",
                      cells[i].name());
        }
    }

    // ---- RSS-shape gates -------------------------------------------
    const bool rssAvailable = streaming.front().peakRssMb > 0;
    double streamMin = 0, streamMax = 0;
    if (rssAvailable) {
        for (const Measured &m : streaming) {
            if (m.peakRssMb > ceilingMb)
                fatal("fig26: streaming peak RSS ",
                      TextTable::num(m.peakRssMb, 1),
                      " MB exceeds the ", ceilingMb, " MB ceiling");
        }
        // The flatness claim is about the constant-volume function
        // sweep (cells 0-2 at standard/full scale).
        if (scale != "small") {
            streamMin = streamMax = streaming[0].peakRssMb;
            for (std::size_t i = 1; i < 3; ++i) {
                streamMin = std::min(streamMin, streaming[i].peakRssMb);
                streamMax = std::max(streamMax, streaming[i].peakRssMb);
            }
            if (strict && streamMax > 2.0 * streamMin)
                fatal("fig26: streaming peak RSS not flat across the "
                      "function sweep: ", TextTable::num(streamMin, 1),
                      " .. ", TextTable::num(streamMax, 1), " MB");
            const double upLast = upfront.back().peakRssMb;
            const double streamLast =
                streaming[upfrontIdx.back()].peakRssMb;
            if (strict && upLast < streamLast)
                fatal("fig26: upfront peak RSS ",
                      TextTable::num(upLast, 1),
                      " MB below streaming's ",
                      TextTable::num(streamLast, 1),
                      " MB — the materialized vector should cost "
                      "more, not less");
        }
    } else {
        std::cout << "(/proc unavailable — RSS assertions skipped)\n";
    }

    bench::printPaperMeasured(
        std::cout,
        "n/a (serving-scale extension; the paper's fleet serves "
        "synthetic steady-state) — expect streaming peak RSS flat "
        "across the function sweep, one resident azure minute vs "
        "upfront's whole trace, and bit-identical billing vs "
        "upfront",
        "streaming peak " +
            (rssAvailable
                 ? TextTable::num(streamMax > 0 ? streamMax
                                                : streaming[0].peakRssMb,
                                  1) + " MB"
                 : std::string("n/a")) +
            " across " + std::to_string(cells.size()) +
            " cells (buffered max " +
            std::to_string(
                streaming[upfrontIdx.back()].report.arrivalFlow
                    .bufferedMax) +
            " of " +
            std::to_string(
                streaming[upfrontIdx.back()].report.arrivals) +
            " day-trace arrivals), ledgers bit-identical streaming "
            "vs upfront (1 & 8 threads, +chaos)");

    json.metric("", "cells", static_cast<double>(cells.size()));
    json.metric("", "rss_available", rssAvailable ? 1 : 0);
    json.metric("", "differential_ok", 1);
    json.write();
    return 0;
}
