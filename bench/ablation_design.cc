/**
 * @file
 * Ablation of Litmus design choices (Sections 5-6):
 *
 *  1. Two-component pricing (R_private / R_shared) vs a single total
 *     rate — the paper argues the split is what keeps errors small
 *     when T_private dominates.
 *  2. The L3-miss log blend vs using only one generator's regression
 *     (CT-only / MB-only) — the blend is what locates the machine
 *     between the two extremes.
 */

#include <iostream>

#include "bench_util.h"
#include "core/calibration.h"
#include "workload/invoker.h"
#include "workload/suite.h"
#include "sim/machine_catalog.h"

using namespace litmus;
using workload::GeneratorKind;
using workload::Language;

namespace
{

struct Variant
{
    std::string name;
    double meanAbsErr = 0;
    double discount = 0;
};

/** Price one captured invocation under a model variant. */
double
variantPrice(const pricing::DiscountModel &model,
             const sim::TaskCounters &counters,
             const pricing::ProbeReading &probe, Language lang,
             int mode)
{
    const auto est = model.estimate(probe, lang);
    const double tPriv = counters.privateCycles();
    const double tShared = counters.stallSharedCycles;
    switch (mode) {
      case 0: // full Litmus
        return est.rPrivate * tPriv + est.rShared * tShared;
      case 1: // single total rate applied to all time
        return (tPriv + tShared) / est.predictedTotal;
      case 2: { // CT-only: force the blend to CT with a tiny L3 signal
        pricing::ProbeReading r = probe;
        r.machineL3MissPerUs = 1e-3;
        const auto e = model.estimate(r, lang);
        return e.rPrivate * tPriv + e.rShared * tShared;
      }
      case 3: { // MB-only: force the blend to MB with a huge L3 signal
        pricing::ProbeReading r = probe;
        r.machineL3MissPerUs = 1e9;
        const auto e = model.estimate(r, lang);
        return e.rPrivate * tPriv + e.rShared * tShared;
      }
    }
    fatal("bad mode");
}

} // namespace

int
main()
{
    printBanner(std::cout, "Ablation: Litmus design choices");

    std::cout << "calibrating...\n";
    const auto cal = pricing::calibrate(bench::dedicatedCalibration());
    const pricing::DiscountModel model(cal.congestion, cal.performance);

    const auto machine = sim::MachineCatalog::get("cascade-5218");
    const unsigned reps = bench::reps(3);

    sim::Engine engine(machine);
    workload::InvokerConfig icfg;
    icfg.placement = workload::InvokerConfig::Placement::OnePerCore;
    icfg.targetCount = 26;
    for (unsigned i = 1; i <= 26; ++i)
        icfg.cpuPool.push_back(i);
    icfg.seed = 42;
    workload::Invoker invoker(engine, icfg);

    sim::TaskCounters lastCounters;
    sim::ProbeCapture lastProbe;
    bool captured = false;
    engine.onCompletion([&](sim::Task &task) {
        if (invoker.handleCompletion(task))
            return;
        lastCounters = task.counters();
        lastProbe = task.probe();
        captured = true;
    });
    invoker.start();
    engine.run(0.15);

    std::vector<Variant> variants = {{"two-rate + L3 blend (Litmus)"},
                                     {"single total rate"},
                                     {"CT-Gen model only"},
                                     {"MB-Gen model only"}};
    std::vector<std::vector<double>> errs(variants.size());
    std::vector<std::vector<double>> prices(variants.size());

    Rng rng(9);
    for (const auto *spec : workload::testSet()) {
        const auto solo = pricing::measureSoloBaseline(machine, *spec);
        for (unsigned rep = 0; rep < reps; ++rep) {
            auto task = workload::makeInvocation(*spec, rng);
            task->setAffinity({0});
            captured = false;
            sim::Task &handle = engine.add(std::move(task));
            engine.runUntilCompleteId(handle.id());
            if (!captured)
                fatal("ablation_design: completion not captured");

            const double ideal =
                solo.totalCpi() * lastCounters.instructions;
            const auto probe = pricing::readProbe(lastProbe);
            for (std::size_t v = 0; v < variants.size(); ++v) {
                const double p =
                    variantPrice(model, lastCounters, probe,
                                 spec->language, static_cast<int>(v));
                errs[v].push_back((p - ideal) / ideal);
                prices[v].push_back(p / lastCounters.cycles);
            }
        }
    }

    TextTable table({"variant", "mean |err| vs ideal", "discount %"});
    for (std::size_t v = 0; v < variants.size(); ++v) {
        table.addRow({variants[v].name, TextTable::num(meanAbs(errs[v])),
                      TextTable::num(100 * (1 - mean(prices[v])), 1)});
    }
    table.print(std::cout);

    std::cout << "\npaper=    the component split plus the L3-miss "
                 "blend is the accuracy-bearing design (Section 6)\n"
              << "measured= full Litmus |err| "
              << TextTable::num(meanAbs(errs[0]))
              << " vs single-rate " << TextTable::num(meanAbs(errs[1]))
              << ", CT-only " << TextTable::num(meanAbs(errs[2]))
              << ", MB-only " << TextTable::num(meanAbs(errs[3]))
              << "\n";
    return 0;
}
