/**
 * @file
 * Figure 9: correlation between the Python startup's slowdown and the
 * reference applications' slowdown, per traffic generator and time
 * component.
 *
 * Paper: linear fits with R^2 between 0.836 and 0.989; distinct CT
 * and MB lines.
 */

#include <iostream>

#include "bench_util.h"
#include "core/discount_model.h"

using namespace litmus;
using workload::GeneratorKind;
using workload::Language;

int
main()
{
    printBanner(std::cout, "Figure 9: startup-vs-reference slowdown "
                           "regressions (Python startup)");

    std::cout << "calibrating...\n";
    const auto cal = pricing::calibrate(bench::dedicatedCalibration());
    const pricing::DiscountModel model(cal.congestion, cal.performance);

    TextTable table({"component", "generator", "slope", "intercept",
                     "R^2"});
    double minR2 = 1.0;
    for (auto comp : {pricing::Component::Private,
                      pricing::Component::Shared,
                      pricing::Component::Total}) {
        const char *compName =
            comp == pricing::Component::Private
                ? "Tprivate"
                : (comp == pricing::Component::Shared ? "Tshared"
                                                      : "Ttotal");
        for (GeneratorKind gen :
             {GeneratorKind::CtGen, GeneratorKind::MbGen}) {
            const LinearFit &fit =
                model.perfFit(Language::Python, gen, comp);
            minR2 = std::min(minR2, fit.r2());
            table.addRow({compName, workload::generatorName(gen),
                          TextTable::num(fit.slope()),
                          TextTable::num(fit.intercept()),
                          TextTable::num(fit.r2())});
        }
    }
    table.print(std::cout);

    std::cout << "\npaper=    R^2 in 0.836-0.989 across the six fits\n"
              << "measured= minimum R^2 " << TextTable::num(minR2)
              << "\n";
    return 0;
}
