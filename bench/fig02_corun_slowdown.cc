/**
 * @file
 * Figure 2: execution time of the test functions when co-running with
 * 26 others (one per core), normalized to running alone.
 *
 * Paper: up to ~35% slowdown, gmean 11.5%.
 */

#include <iostream>

#include "bench_util.h"

using namespace litmus;

int
main()
{
    printBanner(std::cout,
                "Figure 2: co-run slowdown with 26 co-runners");

    pricing::ExperimentConfig cfg;
    cfg.coRunners = 26;
    cfg.layoutOnePerCore();
    cfg.repetitions = bench::reps();

    const auto result = pricing::runSlowdownExperiment(cfg);

    TextTable table({"function", "normalized exec time"});
    double maxSlow = 0;
    for (const auto &row : result.rows) {
        table.addRow({row.name, TextTable::num(row.totalSlowdown)});
        maxSlow = std::max(maxSlow, row.totalSlowdown);
    }
    table.addRow({"gmean", TextTable::num(result.gmeanTotalSlowdown)});
    table.print(std::cout);

    std::cout << "\npaper=    gmean slowdown 11.5%, max ~35%\n"
              << "measured= gmean slowdown "
              << TextTable::num(100 * (result.gmeanTotalSlowdown - 1), 1)
              << "%, max " << TextTable::num(100 * (maxSlow - 1), 1)
              << "%\n";
    return 0;
}
