/**
 * @file
 * Figure 11: prices computed via Litmus pricing and ideal prices when
 * each test function co-runs with 26 others, one function per core,
 * normalized to the commercial price.
 *
 * Paper: average Litmus discount 10.7%, ideal discount 10.3% — a 0.4
 * percentage-point gap.
 */

#include "bench_util.h"
#include "core/calibration.h"

using namespace litmus;

int
main()
{
    printBanner(std::cout, "Figure 11: Litmus vs ideal price, 26 "
                           "co-runners, one function per core");

    std::cout << "calibrating provider tables (dedicated cores)...\n";
    const auto calibration =
        pricing::calibrate(bench::dedicatedCalibration());
    const pricing::DiscountModel model(calibration.congestion,
                                       calibration.performance);

    pricing::ExperimentConfig cfg;
    cfg.coRunners = 26;
    cfg.layoutOnePerCore();
    cfg.repetitions = bench::reps();

    const auto result = pricing::runPricingExperiment(cfg, model);

    bench::printPriceTable(result);
    bench::printDiscountSummary(result, 0.107, 0.103);
    return 0;
}
