/**
 * @file
 * Figure 6: IPC of serverless functions during their startup phase,
 * per language, sampled once per millisecond on a solo run.
 *
 * Paper shape: functions of the same language have nearly identical
 * startup IPC timelines; Python ~19 ms, Node.js ~97 ms, Go ~6 ms.
 */

#include <iostream>

#include "bench_util.h"
#include "workload/runtime_startup.h"
#include "sim/machine_catalog.h"

using namespace litmus;

namespace
{

/** Per-ms IPC samples of the startup program of a language. */
std::vector<double>
sampleStartupIpc(workload::Language lang)
{
    const auto cfg = sim::MachineCatalog::get("cascade-5218");
    sim::Engine engine(cfg);
    sim::Task &task = engine.add(std::make_unique<workload::ProgramTask>(
        "startup", workload::startupProgram(lang)));

    std::vector<double> ipc;
    sim::TaskCounters prev;
    while (engine.alive(task)) {
        engine.run(1e-3);
        if (!engine.alive(task))
            break;
        const sim::TaskCounters now = task.counters();
        const sim::TaskCounters delta = now.since(prev);
        if (delta.cycles > 0)
            ipc.push_back(delta.instructions / delta.cycles);
        prev = now;
        if (ipc.size() > 200)
            break;
    }
    return ipc;
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Figure 6: startup-phase IPC timelines per language");

    for (workload::Language lang : workload::allLanguages()) {
        const auto ipc = sampleStartupIpc(lang);
        std::cout << "\n" << workload::languageName(lang) << " startup ("
                  << ipc.size() + 1 << " ms):\n  t(ms): IPC  ";
        for (std::size_t i = 0; i < ipc.size(); ++i) {
            if (i % 8 == 0)
                std::cout << "\n  ";
            std::cout << i << ":" << TextTable::num(ipc[i], 2) << "  ";
        }
        std::cout << "\n";
    }

    const auto py = sampleStartupIpc(workload::Language::Python);
    const auto nj = sampleStartupIpc(workload::Language::NodeJs);
    const auto go = sampleStartupIpc(workload::Language::Go);
    std::cout << "\npaper=    durations ~19 ms (py) / ~97 ms (nj) / "
                 "~6 ms (go); IPC fluctuates ~0.5-3.0\n"
              << "measured= durations ~" << py.size() + 1 << " / ~"
              << nj.size() + 1 << " / ~" << go.size() + 1
              << " ms; IPC range "
              << TextTable::num(*std::min_element(py.begin(), py.end()),
                                2)
              << "-"
              << TextTable::num(*std::max_element(py.begin(), py.end()),
                                2)
              << " (python)\n";
    return 0;
}
