/**
 * @file
 * Figure 13: measured T_private / T_shared slowdowns of the test
 * functions under 26 co-runners, against the component discount rates
 * Litmus pricing granted (the dotted lines in the paper's figure).
 *
 * Paper: private time extends ~5.3% with little dispersion; the
 * Litmus T_private line tracks it closely; T_shared is slowed more
 * than the estimate but the error's impact is minor.
 */

#include <iostream>

#include "bench_util.h"
#include "core/calibration.h"

using namespace litmus;

int
main()
{
    printBanner(std::cout, "Figure 13: component slowdowns vs Litmus "
                           "discount lines");

    std::cout << "calibrating...\n";
    const auto cal = pricing::calibrate(bench::dedicatedCalibration());
    const pricing::DiscountModel model(cal.congestion, cal.performance);

    pricing::ExperimentConfig cfg;
    cfg.coRunners = 26;
    cfg.layoutOnePerCore();
    cfg.repetitions = bench::reps();

    const auto result = pricing::runPricingExperiment(cfg, model);

    TextTable table({"function", "Tpriv measured", "Tshared measured",
                     "Tpriv estimated", "Tshared estimated"});
    std::vector<double> estPriv, estShared;
    for (const auto &row : result.rows) {
        table.addRow({row.name, TextTable::num(row.tPrivSlowdown),
                      TextTable::num(row.tSharedSlowdown),
                      TextTable::num(row.predictedPriv),
                      TextTable::num(row.predictedShared)});
        estPriv.push_back(row.predictedPriv);
        estShared.push_back(row.predictedShared);
    }
    table.addRow({"gmean", TextTable::num(result.gmeanPrivSlowdown),
                  TextTable::num(result.gmeanSharedSlowdown),
                  TextTable::num(gmean(estPriv)),
                  TextTable::num(gmean(estShared))});
    table.print(std::cout);

    std::cout << "\npaper=    Tprivate extended ~5.3% with little "
                 "dispersion, tracked by the Litmus line; Tshared "
                 "underestimated but low-impact\n"
              << "measured= Tprivate +"
              << TextTable::num(100 * (result.gmeanPrivSlowdown - 1), 1)
              << "% vs estimated +"
              << TextTable::num(100 * (gmean(estPriv) - 1), 1)
              << "%; Tshared "
              << TextTable::num(result.gmeanSharedSlowdown)
              << " vs estimated "
              << TextTable::num(gmean(estShared)) << "\n";
    return 0;
}
