/**
 * @file
 * Figure 20: CPU sharing overhead — 240 co-runners (15 per core)
 * priced with the tables calibrated for 10 per core, testing how the
 * Method 2 tables tolerate a co-location mismatch.
 *
 * Paper: error stays small (16.7% vs ideal 17.9%) because the
 * switching overhead saturates past ~10 co-runners (Figure 14).
 */

#include <iostream>

#include "bench_util.h"
#include "core/calibration.h"

using namespace litmus;

int
main()
{
    printBanner(std::cout, "Figure 20: 240 co-runners (15/core), "
                           "tables reused from 10/core");

    std::cout << "calibrating (Method 2 at 10 functions/core)...\n";
    const auto cal = pricing::calibrate(bench::sharingCalibration());
    const pricing::DiscountModel model(cal.congestion, cal.performance);

    auto cfg = bench::pooledExperiment(240, 16);
    cfg.warmup = 0.4;

    const auto result = pricing::runPricingExperiment(cfg, model);

    bench::printPriceTable(result);
    bench::printDiscountSummary(result, 0.167, 0.179);
    return 0;
}
