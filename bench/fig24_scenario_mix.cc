/**
 * @file
 * Figure 24 (extension): the scenario mix — every traffic model
 * through one fleet.
 *
 * The pricing trajectory so far only ever billed under open-loop
 * Poisson load. This bench serves the same fleet under all four
 * scenario traffic models — poisson, diurnal (sinusoid-modulated
 * rate), burst (on/off MMPP), and trace (CSV replay of a
 * deterministically synthesized arrival log) — with per-type Litmus
 * pricing, and reports per-model throughput, cold-start rate,
 * empirical arrival rate, and the aggregate discount.
 *
 * Always enforced:
 *  - every model is seed-deterministic under threading: serial and
 *    8-worker runs produce bit-identical fleet reports;
 *  - a poisson scenario through the ScenarioRunner is bit-identical
 *    to the legacy path (ClusterConfig's built-in Poisson source);
 *  - fleet billing conservation (<= 1e-6) for every model.
 *
 * Knobs: LITMUS_FLEET_INVOCATIONS (arrivals per machine, default
 * 500), LITMUS_FLEET_RATE (per machine, default 500),
 * LITMUS_FLEET_PRICING (0 disables calibration + Litmus pricing),
 * LITMUS_CAL_LEVELS (calibration sweep cap), LITMUS_BENCH_JSON.
 */

#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "scenario/scenario_runner.h"
#include "workload/suite.h"

using namespace litmus;

namespace
{

using bench::relativeError;
using cluster::identicalTotals;

/**
 * Synthesize the replay trace: a deterministic Poisson-ish arrival
 * log at the given rate where every third row names a suite function
 * and the rest leave the field empty (sampled from the scenario pool
 * at replay). Exercises the full CSV surface: header, comments,
 * named and anonymous rows.
 */
std::string
writeSyntheticTrace(std::uint64_t rows, double rate)
{
    const std::string path = "fig24_trace.csv";
    std::ofstream csv(path);
    if (!csv)
        fatal("fig24: cannot write ", path);
    csv << "# synthesized by fig24_scenario_mix\n";
    csv << "arrival_seconds,function\n";
    const auto pool = workload::allFunctions();
    Rng rng(1234);
    double at = 0;
    csv.precision(9);
    for (std::uint64_t i = 0; i < rows; ++i) {
        at += rng.exponential(1.0 / rate);
        csv << std::fixed << at;
        if (i % 3 == 0)
            csv << "," << pool[rng.below(pool.size())]->name;
        else
            csv << ",";
        csv << "\n";
    }
    return path;
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Figure 24 (extension): scenario traffic mix — "
                "poisson / diurnal / burst / trace through one fleet");

    const std::uint64_t perMachine =
        pricing::envOr("LITMUS_FLEET_INVOCATIONS", 500);
    const double ratePerMachine =
        pricing::envOr("LITMUS_FLEET_RATE", 500);
    const bool litmusPricing =
        pricing::envOr("LITMUS_FLEET_PRICING", 1) != 0;

    constexpr unsigned kMachines = 2;
    const std::uint64_t invocations = perMachine * kMachines;
    const double rate = ratePerMachine * kMachines;
    // Expected span of the arrival trace; the diurnal/burst knobs
    // scale with it so every model completes several load cycles.
    const double span =
        static_cast<double>(invocations) / rate;

    const std::string tracePath =
        writeSyntheticTrace(invocations, rate);

    const auto baseScenario = [&](const std::string &model) {
        scenario::ScenarioSpec spec;
        spec.fleet = {{"cascade-5218", kMachines}};
        spec.policy = cluster::DispatchPolicy::WarmthAware;
        spec.traffic.model = model;
        spec.traffic.arrivalsPerSecond = rate;
        spec.traffic.invocations = invocations;
        spec.traffic.diurnalPeriod = std::max(0.05, span / 4);
        spec.traffic.diurnalAmplitude = 0.9;
        spec.traffic.burstOn = std::max(0.02, span / 10);
        spec.traffic.burstOff = std::max(0.06, 3 * span / 10);
        spec.traffic.tracePath = tracePath;
        spec.keepAlive = 10.0;
        spec.seed = 7;
        spec.calibrate = litmusPricing;
        spec.calibrationLevels = pricing::envOr("LITMUS_CAL_LEVELS", 0);
        return spec;
    };

    TextTable table({"model", "arrivals", "served/s", "empirical/s",
                     "cold %", "billed s", "discount %",
                     "deterministic"});
    bench::BenchJson json("BENCH_scenarios.json");
    bool allDeterministic = true;
    double worstConservation = 0;
    double discountSum = 0, commercialSum = 0, litmusSum = 0;
    for (const std::string model :
         {"poisson", "diurnal", "burst", "trace"}) {
        auto spec = baseScenario(model);
        spec.threads = 1;
        scenario::ScenarioRunner serial(spec);
        const cluster::FleetReport &report = serial.run();
        spec.threads = 8;
        scenario::ScenarioRunner threaded(spec);
        const bool deterministic =
            identicalTotals(report, threaded.run());
        allDeterministic = allDeterministic && deterministic;

        worstConservation = std::max(
            worstConservation,
            relativeError(report.billedCpuSeconds,
                          report.sumMachineBilledSeconds()));

        // Mean rate the model actually realized: regenerate the
        // arrival trace (same seed => identical stream to the run)
        // and measure count over its span — the post-drain makespan
        // would understate it.
        Rng traceRng(spec.seed);
        const auto arrivals =
            scenario::makeTrafficModel(spec.traffic)
                ->generate(traceRng, spec.functionPool());
        const double traceSpan =
            arrivals.back().arrival > 0 ? arrivals.back().arrival : 1.0;
        const double empirical =
            static_cast<double>(arrivals.size()) / traceSpan;

        commercialSum += report.commercialUsd;
        litmusSum += report.litmusUsd;
        discountSum += report.discount();

        table.addRow({model, std::to_string(report.arrivals),
                      TextTable::num(report.throughput(), 0),
                      TextTable::num(empirical, 0),
                      TextTable::num(100 * report.coldStartRate(), 1),
                      TextTable::num(report.billedCpuSeconds, 3),
                      TextTable::num(100 * report.discount(), 1),
                      deterministic ? "yes" : "NO"});

        json.metric(model, "throughput", report.throughput());
        json.metric(model, "empirical_rate", empirical);
        json.metric(model, "cold_rate", report.coldStartRate());
        json.metric(model, "billed_cpu_seconds",
                    report.billedCpuSeconds);
        json.metric(model, "discount", report.discount());
        json.metric(model, "deterministic", deterministic ? 1 : 0);
    }

    // The legacy path (built-in Poisson source, no traffic model)
    // must be bit-identical to the poisson scenario at the same seed.
    auto poissonSpec = baseScenario("poisson");
    poissonSpec.threads = 1;
    scenario::ScenarioRunner viaRunner(poissonSpec);
    const cluster::FleetReport &runnerReport = viaRunner.run();
    cluster::ClusterConfig legacy = viaRunner.clusterConfig();
    legacy.traffic = nullptr;
    cluster::Cluster legacyFleet(legacy);
    const bool poissonEquivalent =
        identicalTotals(runnerReport, legacyFleet.run());

    table.print(std::cout);
    std::cout << "\npoisson scenario vs legacy inline source: "
              << (poissonEquivalent ? "identical reports" : "MISMATCH")
              << "\n";

    const double aggregateDiscount =
        commercialSum > 0 ? 1.0 - litmusSum / commercialSum : 0.0;
    bench::printPaperMeasured(
        std::cout,
        "n/a (scenario extension; the paper bills under synthetic "
        "steady-state only) — expect every model deterministic under "
        "threading and the poisson plugin identical to the legacy "
        "source",
        "aggregate discount " +
            TextTable::num(100 * aggregateDiscount, 1) +
            "% across 4 traffic models, max conservation error " +
            TextTable::num(worstConservation, 9) +
            (allDeterministic ? ", all models deterministic"
                              : ", DETERMINISM BROKEN"));

    json.metric("", "aggregate_discount", aggregateDiscount);
    json.metric("", "mean_model_discount", discountSum / 4);
    json.metric("", "max_conservation_error", worstConservation);
    json.metric("", "poisson_equivalent", poissonEquivalent ? 1 : 0);
    json.metric("", "all_deterministic", allDeterministic ? 1 : 0);
    json.write();

    if (worstConservation > 1e-6)
        fatal("fig24: fleet billing conservation violated (",
              worstConservation, " relative)");
    if (!poissonEquivalent)
        fatal("fig24: poisson scenario diverged from the legacy "
              "inline source");
    if (!allDeterministic)
        fatal("fig24: a traffic model is not deterministic under "
              "threading");
    return 0;
}
