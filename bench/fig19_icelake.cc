/**
 * @file
 * Figure 19: a different CPU architecture — Xeon Silver 4314 (Ice
 * Lake, 16 cores, 24 MiB L3, 128 GiB), Method 2 tables built with 50
 * functions over 5 cores, then 70 co-runners over 7 cores.
 *
 * Paper: tenants pay 82.5% of the commercial price, 0.7pp from ideal.
 */

#include <iostream>

#include "bench_util.h"
#include "core/calibration.h"
#include "sim/machine_catalog.h"

using namespace litmus;

int
main()
{
    printBanner(std::cout,
                "Figure 19: Ice Lake (Xeon Silver 4314), 70 co-runners");

    const auto machine = sim::MachineCatalog::get("icelake-4314");

    std::cout << "calibrating (Method 2 on Ice Lake)...\n";
    const auto cal =
        pricing::calibrate(bench::sharingCalibration(machine));
    const pricing::DiscountModel model(cal.congestion, cal.performance);

    const auto cfg = bench::pooledExperiment(70, 7, machine);
    const auto result = pricing::runPricingExperiment(cfg, model);

    bench::printPriceTable(result);
    std::cout << "\npaper=    Litmus price 82.5% of commercial, 0.7pp "
                 "below ideal\n"
              << "measured= Litmus price "
              << TextTable::num(100 * result.gmeanLitmusPrice, 1)
              << "% of commercial, gap "
              << TextTable::num(100 * (result.idealDiscount() -
                                       result.litmusDiscount()),
                                1)
              << "pp\n";
    return 0;
}
