/**
 * @file
 * Microbenchmarks (google-benchmark) of the pricing hot paths: the
 * operations a provider would run inline with production traffic.
 * The Litmus runtime cost per invocation is one probe read plus one
 * discount estimation — these must be trivially cheap.
 */

#include <benchmark/benchmark.h>

#include "core/discount_model.h"
#include "core/pricing_model.h"
#include "sim/contention.h"
#include "workload/suite.h"
#include "sim/machine_catalog.h"

using namespace litmus;
using workload::GeneratorKind;
using workload::Language;

namespace
{

/** Synthetic calibrated model (no simulation needed). */
const pricing::DiscountModel &
model()
{
    static const pricing::DiscountModel m = [] {
        pricing::CongestionTable congestion;
        pricing::PerformanceTable performance;
        for (Language lang : workload::allLanguages()) {
            pricing::ProbeReading base;
            base.privCpi = 0.7;
            base.sharedCpi = 0.2;
            base.instructions = 45e6;
            base.machineL3MissPerUs = 1.0;
            congestion.setBaseline(lang, base);
        }
        for (unsigned level = 2; level <= 26; level += 2) {
            const double x = 1.0 + 0.01 * level;
            for (Language lang : workload::allLanguages()) {
                pricing::CongestionEntry e;
                e.privSlowdown = 1.0 + 0.002 * level;
                e.sharedSlowdown = 1.0 + 0.05 * level;
                e.totalSlowdown = x;
                e.l3MissPerUs = 20.0 * x;
                congestion.add(lang, GeneratorKind::CtGen, level, e);
                e.l3MissPerUs = 2000.0 * x;
                congestion.add(lang, GeneratorKind::MbGen, level, e);
            }
            pricing::PerformanceEntry p;
            p.privSlowdown = 1.0 + 0.003 * level;
            p.sharedSlowdown = 1.0 + 0.06 * level;
            p.totalSlowdown = 1.0 + 0.012 * level;
            performance.add(GeneratorKind::CtGen, level, p);
            performance.add(GeneratorKind::MbGen, level, p);
        }
        return pricing::DiscountModel(congestion, performance);
    }();
    return m;
}

pricing::ProbeReading
reading()
{
    pricing::ProbeReading r;
    r.privCpi = 0.72;
    r.sharedCpi = 0.26;
    r.instructions = 45e6;
    r.machineL3MissPerUs = 140.0;
    return r;
}

void
BM_DiscountEstimate(benchmark::State &state)
{
    const auto &m = model();
    const auto r = reading();
    for (auto _ : state) {
        auto est = m.estimate(r, Language::Python);
        benchmark::DoNotOptimize(est);
    }
}
BENCHMARK(BM_DiscountEstimate);

void
BM_PriceQuote(benchmark::State &state)
{
    const auto &m = model();
    const pricing::PricingEngine pricer(m);
    const auto r = reading();
    sim::TaskCounters c;
    c.instructions = 3e8;
    c.cycles = 3.4e8;
    c.stallSharedCycles = 0.5e8;
    pricing::SoloBaseline solo{0.95, 0.12};
    for (auto _ : state) {
        auto q = pricer.quote(c, r, Language::Python, solo);
        benchmark::DoNotOptimize(q);
    }
}
BENCHMARK(BM_PriceQuote);

void
BM_ProbeRead(benchmark::State &state)
{
    sim::ProbeCapture cap;
    cap.started = cap.complete = true;
    cap.taskAtEnd.instructions = 45e6;
    cap.taskAtEnd.cycles = 60e6;
    cap.taskAtEnd.stallSharedCycles = 12e6;
    cap.machineAtEnd.l3Misses = 4e5;
    cap.machineAtEnd.time = 20e-3;
    for (auto _ : state) {
        auto r = pricing::readProbe(cap);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_ProbeRead);

void
BM_ContentionSolve(benchmark::State &state)
{
    const auto cfg = sim::MachineCatalog::get("cascade-5218");
    const sim::ContentionSolver solver(cfg);
    std::vector<sim::SolverInput> inputs(
        static_cast<std::size_t>(state.range(0)));
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        inputs[i].demand.cpi0 = 0.7;
        inputs[i].demand.l2Mpki = 5.0 + static_cast<double>(i % 7);
        inputs[i].demand.l3WorkingSet = (2 + i % 5) * 1024 * 1024;
        inputs[i].demand.l3MissBase = 0.3;
        inputs[i].demand.mlp = 4.0;
    }
    for (auto _ : state) {
        auto result = solver.solve(inputs, cfg.baseFrequency);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_ContentionSolve)->Arg(8)->Arg(32)->Arg(64);

void
BM_EngineQuantum(benchmark::State &state)
{
    // Cost of one simulated quantum with N busy hardware threads —
    // the simulator's own hot path.
    auto cfg = sim::MachineCatalog::get("cascade-5218");
    sim::Engine engine(cfg);
    const auto n = static_cast<unsigned>(state.range(0));
    for (unsigned i = 0; i < n; ++i) {
        sim::ResourceDemand d;
        d.cpi0 = 0.7;
        d.l2Mpki = 4.0 + i % 5;
        d.l3WorkingSet = (2 + i % 4) * 1024 * 1024;
        d.l3MissBase = 0.3;
        d.mlp = 4.0;
        // Built by append: GCC 12's -O3 -Wrestrict false-positives on
        // the operator+ temporary chain.
        std::string name = "t";
        name += std::to_string(i);
        engine.add(
            std::make_unique<workload::EndlessTask>(std::move(name), d));
    }
    for (auto _ : state)
        engine.run(50e-6);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineQuantum)->Arg(8)->Arg(32);

} // namespace

BENCHMARK_MAIN();
