/**
 * @file
 * Tenant's-eye view: Litmus applies a machine-wide discount, so
 * functions that lean on shared resources harder than the references
 * are under-compensated while compute-bound functions pocket more
 * discount than their slowdown justifies (Section 5.1's incentive).
 * This advisor quantifies that per function so a tenant can see where
 * their code sits.
 */

#include <iostream>

#include "common/text_table.h"
#include "core/calibration.h"
#include "core/experiment.h"

using namespace litmus;

int
main()
{
    printBanner(std::cout, "Tenant advisor: discount received vs "
                           "slowdown suffered (26 co-runners)");

    std::cout << "Calibrating and running the evaluation suite...\n";
    pricing::CalibrationConfig ccfg;
    ccfg.levels = {4, 10, 16, 22};
    const auto tables = pricing::calibrate(ccfg);
    const pricing::DiscountModel model(tables.congestion,
                                       tables.performance);

    pricing::ExperimentConfig cfg;
    cfg.coRunners = 26;
    cfg.layoutOnePerCore();
    cfg.repetitions = 3;
    const auto result = pricing::runPricingExperiment(cfg, model);

    TextTable table({"function", "slowdown suffered",
                     "discount received", "verdict"});
    for (const auto &row : result.rows) {
        const double suffered = 1.0 - row.idealPrice;
        const double received = 1.0 - row.litmusPrice;
        const double edge = received - suffered;
        std::string verdict;
        if (edge > 0.01)
            verdict = "over-compensated (shared-light: keep it up)";
        else if (edge < -0.01)
            verdict = "under-compensated (shared-heavy: optimize!)";
        else
            verdict = "fairly priced";
        table.addRow({row.name, TextTable::num(100 * suffered, 1) + "%",
                      TextTable::num(100 * received, 1) + "%", verdict});
    }
    table.print(std::cout);

    std::cout
        << "\nLitmus intentionally prices the *machine state*, not\n"
        << "your function: if you use fewer shared resources than the\n"
        << "reference mix, you keep the difference — the incentive\n"
        << "that nudges tenants toward cache-friendly functions.\n";
    return 0;
}
