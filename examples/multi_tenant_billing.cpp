/**
 * @file
 * A multi-tenant billing day: three tenants submit functions to a
 * crowded machine; every invocation is probed, priced and recorded in
 * the BillingLedger; the run ends with per-tenant dollar statements
 * and the platform's aggregate discount.
 */

#include <iostream>
#include <map>

#include "common/logging.h"
#include "common/text_table.h"
#include "core/billing.h"
#include "core/calibration.h"
#include "workload/invoker.h"
#include "workload/suite.h"
#include "sim/machine_catalog.h"

using namespace litmus;

namespace
{

/** A tenant and their deployed functions. */
struct Tenant
{
    std::string name;
    std::vector<const workload::FunctionSpec *> functions;
};

} // namespace

int
main()
{
    const auto machine = sim::MachineCatalog::get("cascade-5218");

    printBanner(std::cout, "Multi-tenant billing demo");

    std::cout << "Calibrating provider tables...\n";
    pricing::CalibrationConfig ccfg;
    ccfg.machine = machine;
    ccfg.levels = {4, 10, 16, 22};
    const auto tables = pricing::calibrate(ccfg);
    const pricing::DiscountModel model(tables.congestion,
                                       tables.performance);
    const pricing::PricingEngine pricer(model);

    const std::vector<Tenant> tenants = {
        {"acme-imaging",
         {&workload::functionByName("thum-py"),
          &workload::functionByName("recogn-py")}},
        {"webshop-inc",
         {&workload::functionByName("dyn-py"),
          &workload::functionByName("pay-nj"),
          &workload::functionByName("cur-nj")}},
        {"fintech-llc",
         {&workload::functionByName("aes-go"),
          &workload::functionByName("auth-go"),
          &workload::functionByName("float-py")}},
    };

    // Solo baselines (the ideal-price oracle, for reporting only).
    std::map<std::string, pricing::SoloBaseline> solo;
    for (const Tenant &tenant : tenants)
        for (const auto *spec : tenant.functions)
            solo.emplace(spec->name,
                         pricing::measureSoloBaseline(machine, *spec));

    // Background churn: 20 co-runners on their own cores.
    sim::Engine engine(machine);
    workload::InvokerConfig icfg;
    icfg.placement = workload::InvokerConfig::Placement::OnePerCore;
    icfg.targetCount = 20;
    for (unsigned cpu = 4; cpu < 24; ++cpu)
        icfg.cpuPool.push_back(cpu);
    icfg.seed = 99;
    workload::Invoker invoker(engine, icfg);

    sim::TaskCounters counters;
    sim::ProbeCapture probe;
    bool captured = false;
    engine.onCompletion([&](sim::Task &task) {
        if (invoker.handleCompletion(task))
            return;
        counters = task.counters();
        probe = task.probe();
        captured = true;
    });
    invoker.start();
    engine.run(0.1);

    // The billing day: each tenant function runs a few invocations.
    pricing::BillingLedger ledger;
    Rng rng(2026);
    for (const Tenant &tenant : tenants) {
        for (const auto *spec : tenant.functions) {
            for (int rep = 0; rep < 3; ++rep) {
                auto task = workload::makeInvocation(*spec, rng);
                task->setAffinity({0, 1, 2, 3});
                captured = false;
                sim::Task &handle = engine.add(std::move(task));
                engine.runUntilCompleteId(handle.id());
                if (!captured)
                    fatal("billing demo: invocation not captured");
                const auto quote =
                    pricer.quote(counters, pricing::readProbe(probe),
                                 spec->language, solo.at(spec->name));
                ledger.record(tenant.name, spec->name, counters, quote,
                              spec->memoryFootprint);
            }
        }
    }

    // Statements.
    for (const Tenant &tenant : tenants) {
        std::cout << "\nStatement for " << tenant.name << ":\n";
        TextTable table({"function", "cpu ms", "GiB", "commercial $",
                         "litmus $", "discount"});
        double commercial = 0, litmus = 0;
        for (const auto *rec : ledger.tenantRecords(tenant.name)) {
            commercial += rec->commercialUsd;
            litmus += rec->litmusUsd;
            table.addRow(
                {rec->function,
                 TextTable::num(rec->cpuSeconds * 1e3, 2),
                 TextTable::num(rec->memoryGiB, 2),
                 TextTable::num(rec->commercialUsd * 1e6, 2) + "u",
                 TextTable::num(rec->litmusUsd * 1e6, 2) + "u",
                 TextTable::num(100 * rec->discount(), 1) + "%"});
        }
        table.print(std::cout);
        std::cout << "  total: " << TextTable::num(commercial * 1e6, 2)
                  << "u commercial -> " << TextTable::num(litmus * 1e6, 2)
                  << "u with Litmus\n";
    }

    std::cout << "\nPlatform aggregate discount: "
              << TextTable::num(100 * ledger.aggregateDiscount(), 2)
              << "% across " << ledger.records().size()
              << " invocations ($ figures in micro-dollars)\n";
    return 0;
}
