/**
 * @file
 * Provider workflow: build the congestion and performance tables for a
 * machine, inspect the fitted regressions, and sanity-check the
 * discount model on synthetic observations — everything a platform
 * operator would do before enabling Litmus pricing on a fleet.
 */

#include <iostream>

#include "common/text_table.h"
#include "core/calibration.h"
#include "core/discount_model.h"
#include "sim/machine_catalog.h"

using namespace litmus;
using workload::GeneratorKind;
using workload::Language;

int
main()
{
    const auto machine = sim::MachineCatalog::get("cascade-5218");

    printBanner(std::cout,
                "Provider calibration on " + machine.name);

    pricing::CalibrationConfig ccfg;
    ccfg.machine = machine;
    ccfg.levels = {2, 6, 10, 14, 18, 22, 26};
    std::cout << "Sweeping CT-Gen and MB-Gen at "
              << ccfg.levels.size() << " stress levels...\n";
    const auto tables = pricing::calibrate(ccfg);

    // Inspect the Python congestion series.
    std::cout << "\nPython startup congestion series:\n";
    TextTable cong({"level", "CT total slowdown", "MB total slowdown",
                    "CT L3/us", "MB L3/us"});
    const auto &levels =
        tables.congestion.levels(Language::Python, GeneratorKind::CtGen);
    for (double level : levels) {
        const auto ct = tables.congestion.at(Language::Python,
                                             GeneratorKind::CtGen, level);
        const auto mb = tables.congestion.at(Language::Python,
                                             GeneratorKind::MbGen, level);
        cong.addRow({TextTable::num(level, 0),
                     TextTable::num(ct.totalSlowdown),
                     TextTable::num(mb.totalSlowdown),
                     TextTable::num(ct.l3MissPerUs, 1),
                     TextTable::num(mb.l3MissPerUs, 1)});
    }
    cong.print(std::cout);

    // Fit and report model quality (the operator's go/no-go check).
    const pricing::DiscountModel model(tables.congestion,
                                       tables.performance);
    std::cout << "\nFit quality (R^2) per language:\n";
    TextTable fits({"language", "CT shared", "MB shared", "CT total",
                    "MB total"});
    for (Language lang : workload::allLanguages()) {
        fits.addRow({workload::languageName(lang),
                     TextTable::num(model.perfFit(lang,
                                                  GeneratorKind::CtGen,
                                                  pricing::Component::Shared)
                                        .r2()),
                     TextTable::num(model.perfFit(lang,
                                                  GeneratorKind::MbGen,
                                                  pricing::Component::Shared)
                                        .r2()),
                     TextTable::num(model.perfFit(lang,
                                                  GeneratorKind::CtGen,
                                                  pricing::Component::Total)
                                        .r2()),
                     TextTable::num(model.perfFit(lang,
                                                  GeneratorKind::MbGen,
                                                  pricing::Component::Total)
                                        .r2())});
    }
    fits.print(std::cout);

    // Spot-check the model on synthetic observations.
    std::cout << "\nSpot checks (Python baseline + synthetic "
                 "congestion):\n";
    const auto &base = model.baseline(Language::Python);
    TextTable spot({"startup slowdown", "observed L3/us", "blend",
                    "R_private", "R_shared"});
    for (double l3 : {20.0, 150.0, 900.0}) {
        pricing::ProbeReading reading;
        reading.privCpi = base.privCpi * 1.03;
        reading.sharedCpi = base.sharedCpi * 1.6;
        reading.instructions = 45e6;
        reading.machineL3MissPerUs = l3;
        const auto est = model.estimate(reading, Language::Python);
        spot.addRow({TextTable::num(est.observed.total),
                     TextTable::num(l3, 0),
                     TextTable::num(est.blendWeight),
                     TextTable::num(est.rPrivate),
                     TextTable::num(est.rShared)});
    }
    spot.print(std::cout);

    std::cout << "\nTables ready: deploy the model and start probing.\n";
    return 0;
}
