/**
 * @file
 * Quickstart: the whole Litmus pipeline in one small program.
 *
 *  1. Calibrate provider tables on a simulated Xeon (a reduced sweep
 *     so this runs in seconds).
 *  2. Fit the discount model.
 *  3. Run one tenant function amid 12 co-running functions.
 *  4. Price the invocation three ways: commercial, Litmus, ideal.
 */

#include <iostream>

#include "common/logging.h"
#include "common/text_table.h"
#include "core/calibration.h"
#include "core/experiment.h"
#include "core/pricing_model.h"
#include "workload/invoker.h"
#include "workload/suite.h"
#include "sim/machine_catalog.h"

using namespace litmus;

int
main()
{
    const auto machine = sim::MachineCatalog::get("cascade-5218");

    // --- Step 1: provider-side calibration ---------------------------
    std::cout << "Calibrating congestion/performance tables "
                 "(reduced sweep)...\n";
    pricing::CalibrationConfig ccfg;
    ccfg.machine = machine;
    ccfg.levels = {4, 10, 16, 22};
    const auto tables = pricing::calibrate(ccfg);

    // --- Step 2: fit the discount model -------------------------------
    const pricing::DiscountModel model(tables.congestion,
                                       tables.performance);
    const pricing::PricingEngine pricer(model);

    // --- Step 3: run a function in a crowded machine -------------------
    const auto &spec = workload::functionByName("pager-py");
    const auto solo = pricing::measureSoloBaseline(machine, spec);

    sim::Engine engine(machine);
    workload::InvokerConfig icfg;
    icfg.placement = workload::InvokerConfig::Placement::OnePerCore;
    icfg.targetCount = 12;
    for (unsigned cpu = 1; cpu <= 12; ++cpu)
        icfg.cpuPool.push_back(cpu);
    workload::Invoker invoker(engine, icfg);

    sim::TaskCounters counters;
    sim::ProbeCapture probe;
    bool captured = false;
    engine.onCompletion([&](sim::Task &task) {
        if (invoker.handleCompletion(task))
            return;
        counters = task.counters();
        probe = task.probe();
        captured = true;
    });
    invoker.start();
    engine.run(0.1); // let the population warm up

    Rng rng(1);
    auto task = workload::makeInvocation(spec, rng);
    task->setAffinity({0});
    sim::Task &handle = engine.add(std::move(task));
    engine.runUntilCompleteId(handle.id());
    if (!captured)
        fatal("quickstart: invocation not captured");

    // --- Step 4: price it ---------------------------------------------
    const auto quote = pricer.quote(counters, pricing::readProbe(probe),
                                    spec.language, solo);

    printBanner(std::cout, "Quickstart: pricing one pager-py invocation "
                           "amid 12 co-runners");
    TextTable table({"scheme", "normalized price", "discount"});
    table.addRow({"commercial (today)", "1.000", "0.0%"});
    table.addRow({"Litmus",
                  TextTable::num(quote.litmusNormalized()),
                  TextTable::num(
                      100 * (1 - quote.litmusNormalized()), 1) + "%"});
    table.addRow({"ideal (oracle)",
                  TextTable::num(quote.idealNormalized()),
                  TextTable::num(
                      100 * (1 - quote.idealNormalized()), 1) + "%"});
    table.print(std::cout);

    std::cout << "\nLitmus test observed: startup slowdown "
              << TextTable::num(quote.estimate.observed.total)
              << ", blend weight "
              << TextTable::num(quote.estimate.blendWeight)
              << " (0=CT-like, 1=MB-like)\n"
              << "Charging rates: R_private "
              << TextTable::num(quote.estimate.rPrivate) << ", R_shared "
              << TextTable::num(quote.estimate.rShared) << "\n";
    return 0;
}
