/**
 * @file
 * Fleet operations: the full provider lifecycle of Litmus pricing.
 *
 *  1. Calibrate a machine and persist the tables artifact to disk.
 *  2. (Later / elsewhere) load the artifact and rebuild the model —
 *     no re-sweep needed.
 *  3. Serve a churning workload while a RecalibrationAdvisor watches
 *     the live Litmus-test stream for drift.
 *  4. Drift scenario: the workload turns far more memory-hungry than
 *     the calibration sweep covered, and the advisor flags it.
 *  5. Serve a declarative scenario file (examples/scenarios/) through
 *     the scenario layer: a diurnal load swing on a mixed fleet.
 */

#include <iostream>

#include "common/logging.h"
#include "common/text_table.h"
#include "core/calibration.h"
#include "core/recalibration.h"
#include "core/table_io.h"
#include "scenario/scenario_runner.h"
#include "workload/invoker.h"
#include "workload/suite.h"
#include "sim/machine_catalog.h"

#ifndef LITMUS_SCENARIO_DIR
#define LITMUS_SCENARIO_DIR "examples/scenarios"
#endif

using namespace litmus;

namespace
{

/**
 * Run a churn scenario, feeding every probe to the advisor; returns
 * the advisor's verdict.
 */
pricing::RecalibrationAdvice
serveScenario(const sim::MachineConfig &machine,
              const pricing::DiscountModel &model,
              const std::vector<const workload::FunctionSpec *> &pool,
              unsigned co_runners, const char *label)
{
    sim::Engine engine(machine);
    workload::InvokerConfig icfg;
    icfg.placement = workload::InvokerConfig::Placement::OnePerCore;
    icfg.targetCount = co_runners;
    for (unsigned cpu = 1; cpu <= co_runners; ++cpu)
        icfg.cpuPool.push_back(cpu);
    icfg.functionPool = pool;
    workload::Invoker invoker(engine, icfg);

    pricing::RecalibrationConfig rcfg;
    rcfg.minReadings = 8;
    pricing::RecalibrationAdvisor advisor(model, rcfg);

    bool captured = false;
    sim::ProbeCapture probe;
    engine.onCompletion([&](sim::Task &task) {
        if (invoker.handleCompletion(task))
            return;
        probe = task.probe();
        captured = true;
    });
    invoker.start();
    engine.run(0.1);

    for (int i = 0; i < 12; ++i) {
        auto startup = std::make_unique<workload::ProgramTask>(
            "probe",
            workload::startupProgram(workload::Language::Python),
            workload::probeWindow(workload::Language::Python));
        startup->setAffinity({0});
        captured = false;
        sim::Task &handle = engine.add(std::move(startup));
        engine.runUntilCompleteId(handle.id());
        if (!captured)
            fatal("fleet demo: probe not captured");
        advisor.observe(pricing::readProbe(probe),
                        workload::Language::Python);
        engine.run(0.05);
    }

    const auto advice = advisor.advice();
    std::cout << "  " << label << ": "
              << pricing::RecalibrationAdvisor::adviceName(advice)
              << " (out-of-range "
              << TextTable::num(100 * advisor.outOfRangeFraction(), 0)
              << "%, unbracketed "
              << TextTable::num(100 * advisor.unbracketedFraction(), 0)
              << "%)\n";
    return advice;
}

} // namespace

int
main()
{
    const auto machine = sim::MachineCatalog::get("cascade-5218");
    const std::string artifact = "/tmp/litmus-fleet-tables.txt";

    printBanner(std::cout, "Fleet operations: calibrate once, deploy, "
                           "watch for drift");

    // 1. Calibrate and persist. A deliberately *shallow* sweep so the
    //    drift scenario below can outrun it.
    std::cout << "calibrating (shallow sweep, levels 2-6)...\n";
    pricing::CalibrationConfig ccfg;
    ccfg.machine = machine;
    ccfg.levels = {2, 4, 6};
    const auto profile = pricing::calibrate(ccfg);
    pricing::saveProfile(artifact, profile);
    std::cout << "profile for " << profile.machine << " saved to "
              << artifact << "\n";

    // 2. Reload (as the pricing service on another node would). The
    //    profile remembers its machine type, so a mismatched load
    //    would refuse instead of mispricing.
    const auto loaded = pricing::loadProfile(artifact);
    loaded.requireMachine(machine.name);
    const pricing::DiscountModel model(loaded);
    std::cout << "profile reloaded; model rebuilt without re-sweep\n\n";

    // 3. Normal operation: mixed workload, light machine.
    std::cout << "serving scenarios:\n";
    serveScenario(machine, model, workload::allFunctions(), 8,
                  "light mixed workload   ");

    // 4. Drift: a stampede of the heaviest graph workloads, far
    //    beyond what levels 2-6 calibrated.
    const std::vector<const workload::FunctionSpec *> heavy = {
        &workload::functionByName("pager-py"),
        &workload::functionByName("bfs-py"),
        &workload::functionByName("mst-py"),
        &workload::functionByName("fib-nj"),
    };
    const auto advice = serveScenario(machine, model, heavy, 30,
                                      "memory-hungry stampede ");

    if (advice != pricing::RecalibrationAdvice::TablesHealthy) {
        std::cout << "\nadvisor recommends a recalibration sweep — "
                     "rerun with higher levels:\n"
                  << "  litmus-sim calibrate --max-level 30 "
                     "--output new-tables.txt\n";
    }

    // 5. A declarative scenario: the diurnal mixed-fleet file from
    //    examples/scenarios/, shrunk via the programmatic builder so
    //    the demo stays quick (any key can be overridden the same
    //    way — that is exactly what the CLI flag overlay does).
    std::cout << "\nserving examples/scenarios/diurnal_hetero"
                 ".scenario (shrunk to 800 invocations):\n";
    scenario::ScenarioSpec spec = scenario::ScenarioSpec::fromFile(
        std::string(LITMUS_SCENARIO_DIR) + "/diurnal_hetero.scenario");
    spec.set("invocations", "800").set("threads", "2");
    scenario::ScenarioRunner runner(std::move(spec));
    scenario::printFleetReport(std::cout, runner.run());
    return 0;
}
