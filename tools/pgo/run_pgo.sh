#!/usr/bin/env bash
# Two-phase profile-guided-optimization build.
#
# Phase 1 configures an instrumented build (pgo-generate-<cc> preset),
# trains it on the two benches that dominate the simulator's hot paths
# — micro_engine_throughput (engine stepping, fast-forward replay,
# event-driven fleet serving) and fig22_fleet_scaling (dispatch,
# harvest, billing) — then phase 2 rebuilds with the collected
# profiles plus LTO (pgo-use-<cc> preset).
#
# Usage: tools/pgo/run_pgo.sh [gcc|clang]   (default: gcc)
#
# The final optimized tree lands in build-pgo-use-<cc>/; compare
# bench-out/BENCH_*.json against a plain Release build to see the
# payoff.
set -euo pipefail

cc="${1:-gcc}"
case "$cc" in
gcc | clang) ;;
*)
    echo "usage: $0 [gcc|clang]" >&2
    exit 2
    ;;
esac

root="$(cd "$(dirname "$0")/../.." && pwd)"
cd "$root"
profiles="$root/build-pgo-profiles"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== phase 1: instrumented build (pgo-generate-$cc) =="
rm -rf "$profiles" "build-pgo-generate-$cc"
cmake --preset "pgo-generate-$cc"
cmake --build --preset "pgo-generate-$cc" -j "$jobs" \
    --target micro_engine_throughput fig22_fleet_scaling

echo "== training: micro_engine_throughput + fig22_fleet_scaling =="
# Wall-clock speedup floors are meaningless on an instrumented binary.
export LITMUS_BENCH_STRICT=0
(cd "build-pgo-generate-$cc/bench" && ./micro_engine_throughput)
(cd "build-pgo-generate-$cc/bench" && ./fig22_fleet_scaling)

if [ "$cc" = clang ]; then
    echo "== merging clang raw profiles =="
    merge_tool="$(command -v llvm-profdata || true)"
    if [ -z "$merge_tool" ]; then
        echo "run_pgo.sh: llvm-profdata not found — clang PGO needs it" >&2
        exit 1
    fi
    "$merge_tool" merge -output "$profiles/default.profdata" \
        "$profiles"/*.profraw
fi

echo "== phase 2: optimized build (pgo-use-$cc) =="
rm -rf "build-pgo-use-$cc"
cmake --preset "pgo-use-$cc"
cmake --build --preset "pgo-use-$cc" -j "$jobs"

echo "== validating the optimized build =="
(cd "build-pgo-use-$cc/bench" && ./micro_engine_throughput)
echo "PGO build ready in build-pgo-use-$cc/"
