/**
 * @file
 * azure_trace_gen: synthesize Azure-Functions-dataset-shaped CSVs.
 *
 * Emits the dataset's minute-bucket shape (four identity columns,
 * then one invocation-count column per minute) for an arbitrary
 * function count, so trace-scale experiments run against 10^5-10^6
 * function files without the real download:
 *
 *     azure_trace_gen --out=day.csv --functions=100000 \
 *         --minutes=1440 --rate=50000
 *     litmus_fleet --traffic=azure --azure-file=day.csv
 *
 * Counts are a pure function of the knobs + --seed (see
 * scenario::writeAzureShapedCsv), and the file is streamed row by
 * row, so generation itself is O(1) memory at any function count.
 */

#include "common/arg_parser.h"
#include "common/logging.h"
#include "scenario/azure_trace.h"

using namespace litmus;

int
main(int argc, char **argv)
{
    ArgParser args("azure_trace_gen",
                   "Generate Azure-dataset-shaped invocation CSVs");
    args.addOption("out", "output CSV path", "azure_trace.csv")
        .addOption("functions", "function rows to synthesize", "1000")
        .addOption("minutes",
                   "minute columns (60 = an hour, 1440 = the "
                   "dataset's day)",
                   "60")
        .addOption("rate",
                   "target fleet-wide mean invocations per minute",
                   "2000")
        .addOption("zipf",
                   "Zipf popularity exponent (higher = heavier head)",
                   "1.1")
        .addOption("suite-fraction",
                   "fraction of rows named after real suite functions "
                   "(exercises the suite-mapping heuristic)",
                   "0.25")
        .addOption("amplitude",
                   "diurnal swing of the minute profile in [0, 1]",
                   "0.6")
        .addOption("seed", "generator seed", "1");
    args.parseOrExit(argc, argv);

    scenario::AzureTraceGenSpec spec;
    spec.functions = static_cast<std::uint64_t>(
        args.getIntAtLeast("functions", 1));
    spec.minutes =
        static_cast<unsigned>(args.getIntAtLeast("minutes", 1));
    spec.invocationsPerMinute = args.getDouble("rate");
    spec.zipfExponent = args.getDouble("zipf");
    spec.suiteNamedFraction = args.getDouble("suite-fraction");
    spec.diurnalAmplitude = args.getDouble("amplitude");
    spec.seed =
        static_cast<std::uint64_t>(args.getIntAtLeast("seed", 0));

    const std::string out = args.get("out");
    const std::uint64_t total =
        scenario::writeAzureShapedCsv(out, spec);
    inform("azure_trace_gen: ", spec.functions, " functions x ",
           spec.minutes, " minutes -> ", out, " (", total,
           " invocations)");
    return 0;
}
