/**
 * @file
 * litmus-lint cross-file pass (internal).
 *
 * One whole-tree walk producing the cross-file rules and artifacts:
 *
 *   lock-annotation  every class's data members are indexed across
 *                    all files; raw std::mutex members in src/ are
 *                    rejected, and members touched inside a
 *                    MutexLock/UniqueLock/lock_guard scope must be
 *                    LITMUS_GUARDED_BY the mutex that scope holds.
 *   lock-order       nested guard scopes become edges of a lock
 *                    nesting graph spanning every TU; cycles are
 *                    findings, and the graph's topological order is
 *                    the canonical lock order (Report::lockOrderText,
 *                    checked against tools/lint/lock_order.txt).
 *   include-graph    quoted #includes resolved against the scanned
 *                    file set form the project include DAG, exported
 *                    as JSON and dot; cycles are findings and unused
 *                    project includes are advisories.
 *
 * The pass is deliberately lexical (the same stripped-token view the
 * per-file rules use) — it does not typecheck. Where resolution is
 * ambiguous it stays silent rather than guessing: every finding it
 * does emit is a real discipline violation.
 */

#ifndef LITMUS_TOOLS_LINT_TREE_ANALYSIS_H
#define LITMUS_TOOLS_LINT_TREE_ANALYSIS_H

#include <vector>

#include "lint.h"

namespace litmus::lint::detail
{

/** Run the cross-file rules over @p files, appending findings,
 *  advisories, and the generated artifacts to @p report. */
void runTreeAnalysis(const std::vector<SourceFile> &files,
                     const Options &options, Report &report);

} // namespace litmus::lint::detail

#endif // LITMUS_TOOLS_LINT_TREE_ANALYSIS_H
