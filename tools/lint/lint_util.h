/**
 * @file
 * Shared lexical helpers for litmus-lint.
 *
 * Both the per-file rules (lint.cc) and the whole-tree pass
 * (tree_analysis.cc) work on the same representation: the raw file
 * text plus a comment/string-stripped shadow copy whose offsets and
 * line numbers match the raw text exactly. The helpers here implement
 * that stripping, token search, pragma parsing, and #include-line
 * parsing once, so the two passes can never disagree about what a
 * line of code says.
 *
 * Internal to the linter; not part of the lint.h API.
 */

#ifndef LITMUS_TOOLS_LINT_LINT_UTIL_H
#define LITMUS_TOOLS_LINT_LINT_UTIL_H

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "lint.h"

namespace litmus::lint::detail
{

inline bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Blank out comments and string/char literals, preserving length and
 * newlines so offsets and line numbers in the stripped buffer match
 * the raw file. Rules then scan real code only; banned tokens inside
 * comments or log strings never fire.
 */
inline std::string
stripCommentsAndStrings(const std::string &raw)
{
    std::string out(raw);
    enum class State
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
    };
    State state = State::Code;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        const char c = raw[i];
        const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
        switch (state) {
        case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                out[i] = ' ';
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                out[i] = ' ';
            } else if (c == '"') {
                state = State::String;
            } else if (c == '\'') {
                state = State::Char;
            }
            break;
        case State::LineComment:
            if (c == '\n')
                state = State::Code;
            else
                out[i] = ' ';
            break;
        case State::BlockComment:
            if (c == '*' && next == '/') {
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
                state = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        case State::String:
        case State::Char: {
            const char quote = state == State::String ? '"' : '\'';
            if (c == '\\' && next != '\0') {
                out[i] = ' ';
                if (next != '\n')
                    out[i + 1] = ' ';
                ++i;
            } else if (c == quote) {
                state = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        }
        }
    }
    return out;
}

/** Split into lines (index 0 = line 1), keeping empty lines. */
inline std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string::size_type start = 0;
    while (start <= text.size()) {
        const auto nl = text.find('\n', start);
        if (nl == std::string::npos) {
            lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

inline int
lineOfOffset(const std::string &text, std::size_t offset)
{
    return 1 + static_cast<int>(
                   std::count(text.begin(), text.begin() + offset, '\n'));
}

/**
 * Find the next occurrence of @p token as a whole identifier at or
 * after @p from; npos when absent.
 */
inline std::size_t
findToken(const std::string &code, const std::string &token,
          std::size_t from)
{
    std::size_t pos = code.find(token, from);
    while (pos != std::string::npos) {
        const bool beginOk = pos == 0 || !isIdentChar(code[pos - 1]);
        const std::size_t end = pos + token.size();
        const bool endOk = end >= code.size() || !isIdentChar(code[end]);
        if (beginOk && endOk)
            return pos;
        pos = code.find(token, pos + 1);
    }
    return std::string::npos;
}

inline std::size_t
skipSpace(const std::string &code, std::size_t pos)
{
    while (pos < code.size() &&
           std::isspace(static_cast<unsigned char>(code[pos])))
        ++pos;
    return pos;
}

/** True when the identifier ending just before @p pos is qualified by
 *  `.`, `->`, or a non-std `::` — i.e. a member or foreign name. */
inline bool
memberQualified(const std::string &code, std::size_t pos)
{
    std::size_t i = pos;
    while (i > 0 &&
           std::isspace(static_cast<unsigned char>(code[i - 1])))
        --i;
    if (i == 0)
        return false;
    if (code[i - 1] == '.')
        return true;
    if (i >= 2 && code[i - 2] == '-' && code[i - 1] == '>')
        return true;
    if (i >= 2 && code[i - 2] == ':' && code[i - 1] == ':') {
        // std::time / std::clock are still the banned libc calls.
        std::size_t q = i - 2;
        std::size_t end = q;
        while (q > 0 && isIdentChar(code[q - 1]))
            --q;
        return code.compare(q, end - q, "std") != 0;
    }
    return false;
}

// ---------------------------------------------------------------- //
// Suppression pragmas                                              //
// ---------------------------------------------------------------- //

struct Pragma
{
    int targetLine = 0; ///< line whose findings it may suppress
    int pragmaLine = 0; ///< where the pragma itself sits
    std::string rule;
    bool used = false;
};

constexpr const char *kAllowMarker = "LITMUS-LINT-ALLOW";

/**
 * Parse the pragmas in the raw lines. A pragma on a line with code
 * guards that line; a pragma alone on its line guards the next line.
 * Malformed pragmas become findings immediately (rule @p badRule).
 */
inline std::vector<Pragma>
collectPragmas(const std::string &path,
               const std::vector<std::string> &rawLines,
               const std::vector<std::string> &strippedLines,
               const char *badRule, std::vector<Finding> &findings)
{
    std::vector<Pragma> pragmas;
    for (std::size_t i = 0; i < rawLines.size(); ++i) {
        const std::string &line = rawLines[i];
        const int lineNo = static_cast<int>(i) + 1;
        std::size_t pos = line.find(kAllowMarker);
        while (pos != std::string::npos) {
            const std::size_t after = pos + std::string(kAllowMarker).size();
            const auto bad = [&](const std::string &why) {
                findings.push_back(
                    {path, lineNo, badRule,
                     "malformed " + std::string(kAllowMarker) +
                         " pragma: " + why +
                         " — expected // LITMUS-LINT-ALLOW(rule): "
                         "reason"});
            };
            if (after >= line.size() || line[after] != '(') {
                bad("missing '(rule)'");
                break;
            }
            const auto close = line.find(')', after);
            if (close == std::string::npos) {
                bad("unterminated '(rule'");
                break;
            }
            const std::string rule =
                line.substr(after + 1, close - after - 1);
            if (!knownRule(rule)) {
                bad("unknown rule '" + rule + "'");
                break;
            }
            std::size_t rest = close + 1;
            if (rest >= line.size() || line[rest] != ':') {
                bad("missing ': reason'");
                break;
            }
            ++rest;
            while (rest < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[rest])))
                ++rest;
            if (rest >= line.size()) {
                bad("empty reason — the reason is the audit record");
                break;
            }
            Pragma pragma;
            pragma.pragmaLine = lineNo;
            pragma.rule = rule;
            // Alone on the line (no code survives stripping): guards
            // the next line. Otherwise guards its own line.
            const std::string &code = strippedLines[i];
            const bool bare =
                std::all_of(code.begin(), code.end(), [](char c) {
                    return std::isspace(static_cast<unsigned char>(c));
                });
            pragma.targetLine = bare ? lineNo + 1 : lineNo;
            pragmas.push_back(pragma);
            pos = line.find(kAllowMarker, close);
        }
    }
    return pragmas;
}

// ---------------------------------------------------------------- //
// #include parsing                                                 //
// ---------------------------------------------------------------- //

struct IncludeLine
{
    std::string target; ///< the quoted path, verbatim
    int line = 0;       ///< 1-based
};

/**
 * The quoted project includes of a file, in order. Angle-bracket
 * (system) includes are not project edges and are skipped.
 */
inline std::vector<IncludeLine>
parseIncludes(const std::vector<std::string> &rawLines)
{
    std::vector<IncludeLine> out;
    for (std::size_t i = 0; i < rawLines.size(); ++i) {
        const std::string &line = rawLines[i];
        const std::size_t hash = line.find_first_not_of(" \t");
        if (hash == std::string::npos || line[hash] != '#')
            continue;
        std::size_t p = skipSpace(line, hash + 1);
        if (line.compare(p, 7, "include") != 0)
            continue;
        p = skipSpace(line, p + 7);
        if (p >= line.size() || line[p] != '"')
            continue;
        const std::size_t close = line.find('"', p + 1);
        if (close == std::string::npos)
            continue;
        out.push_back({line.substr(p + 1, close - p - 1),
                       static_cast<int>(i) + 1});
    }
    return out;
}

} // namespace litmus::lint::detail

#endif // LITMUS_TOOLS_LINT_LINT_UTIL_H
