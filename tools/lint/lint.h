/**
 * @file
 * litmus-lint: project-invariant static analysis.
 *
 * The repo's guarantees — bit-identical billing at any thread count,
 * seed-deterministic traffic, 1e-15 conservation — rest on source
 * invariants that no compiler flag checks: no wall-clock or unseeded
 * randomness, no unordered-container iteration feeding reports, no
 * lenient numeric parsing, a strict layer DAG, and a single annotated
 * concurrency discipline. This tool walks the tree and enforces them
 * as named rules, so the invariants survive contributors instead of
 * depending on reviewer vigilance.
 *
 * Deliberately dependency-free (std + std::filesystem only): it must
 * build in seconds as a CI fast-gate, before the simulator itself.
 *
 * Rule catalog (see ruleCatalog() for one-line docs):
 *   wall-clock      real-time clocks anywhere in scanned code
 *   unseeded-rng    rand()/random_device/unseeded mt19937 outside
 *                   common/rng
 *   unordered-decl  unordered containers in src/ need an audit
 *                   annotation (order must never reach output)
 *   unordered-iter  iteration over an unordered container
 *   layering        upward #include edges in the layer DAG
 *                   common -> sim -> workload -> core -> cluster ->
 *                   scenario, and src/ includes of apps//bench//
 *                   tools//tests/
 *   raw-parse       lenient numeric parsing in src/ (use the strict
 *                   parsers in common/strings.h)
 *   float-billing   `float` in billing/pricing code (double is the
 *                   project currency type)
 *   stale-allow     a LITMUS-LINT-ALLOW pragma that suppresses
 *                   nothing
 *   bad-allow       a malformed LITMUS-LINT-ALLOW pragma
 *
 * Cross-file rules (need the whole tree, so they only run in tree
 * scans — runLint/lintFiles — never in single-file lintContent):
 *   lock-annotation raw std::mutex members in src/ (use
 *                   litmus::Mutex), and members touched under a lock
 *                   that are not LITMUS_GUARDED_BY that mutex
 *   lock-order      nested lock acquisitions whose order cycles
 *                   across the tree, and a checked-in canonical
 *                   order file that is out of date
 *   include-graph   circular #include chains; also exports the
 *                   project include DAG (JSON/dot) and advisory
 *                   unused-include hygiene notes
 *
 * Suppression: `// LITMUS-LINT-ALLOW(rule): reason` on the offending
 * line, or alone on the line above it. Each pragma suppresses exactly
 * one finding of the named rule; the reason is mandatory — it is the
 * audit record.
 */

#ifndef LITMUS_TOOLS_LINT_LINT_H
#define LITMUS_TOOLS_LINT_LINT_H

#include <string>
#include <vector>

namespace litmus::lint
{

/** One rule violation (or pragma problem) at a source location. */
struct Finding
{
    std::string file; ///< path relative to the scan root
    int line = 0;     ///< 1-based
    std::string rule;
    std::string message;
};

/** A rule's name and one-line description, for --list-rules. */
struct RuleInfo
{
    std::string name;
    std::string description;
};

/** One file of the tree, already loaded (lintFiles input). */
struct SourceFile
{
    std::string path; ///< root-relative, e.g. "src/core/billing.cc"
    std::string content;
};

/** What to scan and how. */
struct Options
{
    /** Tree root; scan paths and reported paths are relative to it. */
    std::string root = ".";

    /** Directories under root to walk (default: the code tree). */
    std::vector<std::string> dirs = {"src", "apps", "bench", "tools"};

    /** When non-empty, only run rules whose name is listed. The
     *  pragma rules (stale-allow / bad-allow) always run. */
    std::vector<std::string> rules;

    /**
     * Root-relative path of the checked-in canonical lock-order file.
     * When non-empty, tree scans compare the lock order derived from
     * the code against @ref lockOrderExpected and report a lock-order
     * finding on mismatch. runLint fills lockOrderExpected from this
     * file; lintFiles callers (tests) set it directly.
     */
    std::string lockOrderFile;

    /** Expected content of @ref lockOrderFile (see above). */
    std::string lockOrderExpected;
};

/** Scan outcome. */
struct Report
{
    std::vector<Finding> findings; ///< blocking; file, then line order
    /** Non-blocking hygiene notes (unused project includes). They
     *  never affect clean() or the exit code. */
    std::vector<Finding> advisories;
    int filesScanned = 0;
    int suppressions = 0; ///< findings silenced by ALLOW pragmas

    /** Canonical lock order derived from the tree (tree scans only);
     *  the expected content of Options::lockOrderFile. */
    std::string lockOrderText;

    /** Project include DAG (tree scans only). */
    std::string includeGraphJson;
    std::string includeGraphDot;

    bool clean() const { return findings.empty(); }
};

/** All rules, in catalog order. */
const std::vector<RuleInfo> &ruleCatalog();

/** True when @p name is a known rule (incl. the pragma rules). */
bool knownRule(const std::string &name);

/** True when @p name is a cross-file rule (tree scans only). */
bool isTreeRule(const std::string &name);

/** Run the scan. Throws std::runtime_error on unreadable root/dirs. */
Report runLint(const Options &options);

/**
 * Lint an already-loaded tree: the per-file rules on each file plus
 * the cross-file rules over all of them. runLint is this plus disk
 * I/O; tests call it directly with in-memory trees.
 */
Report lintFiles(const std::vector<SourceFile> &files,
                 const Options &options);

/**
 * Lint a single in-memory file (unit-test entry point). @p path is
 * the root-relative path the rules use for scoping, e.g.
 * "src/core/billing.cc". Per-file rules only; cross-file rules need
 * lintFiles. Pragmas naming cross-file rules are left for the tree
 * pass (neither applied nor reported stale here).
 */
std::vector<Finding> lintContent(const std::string &path,
                                 const std::string &content,
                                 const Options &options,
                                 int *suppressions = nullptr);

/**
 * Rewrite @p content with the ALLOW pragmas on @p pragmaLines
 * removed: a pragma alone on its line is deleted with the line, a
 * trailing pragma comment is snipped off its code line. Lines not
 * carrying a pragma are left untouched (and their numbers ignored).
 * Idempotent: re-running on the result is a no-op. This is the
 * engine of `litmus_lint --fix-stale`.
 */
std::string stripStalePragmas(const std::string &content,
                              const std::vector<int> &pragmaLines);

/** Machine-readable report (stable JSON, findings + totals). */
std::string toJson(const Report &report);

} // namespace litmus::lint

#endif // LITMUS_TOOLS_LINT_LINT_H
