/**
 * @file
 * litmus_lint CLI: scan the tree, print findings, emit the JSON
 * report, exit nonzero when the tree is dirty.
 *
 *     litmus_lint [--root=DIR] [--json=FILE] [--rule=NAME]...
 *                 [--lock-order=FILE] [--update-lock-order]
 *                 [--include-graph=FILE] [--include-graph-dot=FILE]
 *                 [--fix-stale] [--dry-run]
 *                 [--list-rules] [--quiet] [DIR]...
 *
 * Positional DIRs (relative to the root) override the default scan
 * set {src, apps, bench, tools}.
 *
 *   --lock-order=FILE       root-relative canonical lock-order file;
 *                           a mismatch with the code is a lock-order
 *                           finding.
 *   --update-lock-order     rewrite that file from the code instead
 *                           of verifying it.
 *   --include-graph=FILE    write the project include DAG as JSON.
 *   --include-graph-dot=FILE  same graph in Graphviz dot.
 *   --fix-stale             delete the pragmas behind stale-allow
 *                           findings in place (--dry-run: only say
 *                           what would be removed).
 *
 * Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include "lint.h"

namespace
{

int
usage(std::ostream &out, int code)
{
    out << "usage: litmus_lint [--root=DIR] [--json=FILE] "
           "[--rule=NAME]...\n"
           "                   [--lock-order=FILE] "
           "[--update-lock-order]\n"
           "                   [--include-graph=FILE] "
           "[--include-graph-dot=FILE]\n"
           "                   [--fix-stale] [--dry-run] "
           "[--list-rules] [--quiet] [DIR]...\n"
           "Enforces the project invariants over the code tree;\n"
           "run --list-rules for the rule catalog.\n";
    return code;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << content;
    return static_cast<bool>(out);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace litmus::lint;

    Options options;
    std::string jsonPath;
    std::string includeGraphPath;
    std::string includeGraphDotPath;
    bool updateLockOrder = false;
    bool fixStale = false;
    bool dryRun = false;
    bool quiet = false;
    std::vector<std::string> dirs;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto valueOf = [&arg](const char *flag) {
            return arg.substr(std::strlen(flag));
        };
        if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else if (arg == "--list-rules") {
            for (const RuleInfo &rule : ruleCatalog())
                std::cout << rule.name << "\n    " << rule.description
                          << "\n";
            return 0;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--update-lock-order") {
            updateLockOrder = true;
        } else if (arg == "--fix-stale") {
            fixStale = true;
        } else if (arg == "--dry-run") {
            dryRun = true;
        } else if (arg.rfind("--root=", 0) == 0) {
            options.root = valueOf("--root=");
        } else if (arg.rfind("--json=", 0) == 0) {
            jsonPath = valueOf("--json=");
        } else if (arg.rfind("--rule=", 0) == 0) {
            options.rules.push_back(valueOf("--rule="));
        } else if (arg.rfind("--lock-order=", 0) == 0) {
            options.lockOrderFile = valueOf("--lock-order=");
        } else if (arg.rfind("--include-graph=", 0) == 0) {
            includeGraphPath = valueOf("--include-graph=");
        } else if (arg.rfind("--include-graph-dot=", 0) == 0) {
            includeGraphDotPath = valueOf("--include-graph-dot=");
        } else if (arg.rfind("-", 0) == 0) {
            std::cerr << "litmus_lint: unknown flag '" << arg << "'\n";
            return usage(std::cerr, 2);
        } else {
            dirs.push_back(arg);
        }
    }
    if (!dirs.empty())
        options.dirs = dirs;
    if (updateLockOrder && options.lockOrderFile.empty()) {
        std::cerr << "litmus_lint: --update-lock-order needs "
                     "--lock-order=FILE\n";
        return usage(std::cerr, 2);
    }

    Report report;
    try {
        report = runLint(options);
    } catch (const std::exception &error) {
        std::cerr << "litmus_lint: " << error.what() << "\n";
        return 2;
    }

    // --update-lock-order: the file is being regenerated, so the
    // mismatch finding against its old content is moot. Genuine
    // lock-order findings (cycles in the code) remain.
    if (updateLockOrder) {
        const std::string path =
            options.root + "/" + options.lockOrderFile;
        if (!writeFile(path, report.lockOrderText)) {
            std::cerr << "litmus_lint: cannot write '" << path
                      << "'\n";
            return 2;
        }
        if (!quiet)
            std::cout << "litmus_lint: wrote "
                      << options.lockOrderFile << "\n";
        std::vector<Finding> kept;
        for (Finding &finding : report.findings) {
            if (!(finding.rule == "lock-order" &&
                  finding.file == options.lockOrderFile))
                kept.push_back(std::move(finding));
        }
        report.findings = std::move(kept);
    }

    // --fix-stale: rewrite the files behind stale-allow findings and
    // drop those findings (they are fixed — or would be, under
    // --dry-run, which only reports).
    if (fixStale) {
        std::map<std::string, std::vector<int>> staleByFile;
        for (const Finding &finding : report.findings) {
            if (finding.rule == "stale-allow")
                staleByFile[finding.file].push_back(finding.line);
        }
        for (const auto &[file, lines] : staleByFile) {
            const std::string path = options.root + "/" + file;
            std::ifstream in(path, std::ios::binary);
            if (!in) {
                std::cerr << "litmus_lint: cannot read '" << path
                          << "'\n";
                return 2;
            }
            std::ostringstream buffer;
            buffer << in.rdbuf();
            const std::string fixed =
                stripStalePragmas(buffer.str(), lines);
            if (dryRun) {
                std::cout << "litmus_lint: would remove "
                          << lines.size() << " stale pragma(s) from "
                          << file << "\n";
                continue;
            }
            if (!writeFile(path, fixed)) {
                std::cerr << "litmus_lint: cannot write '" << path
                          << "'\n";
                return 2;
            }
            if (!quiet)
                std::cout << "litmus_lint: removed " << lines.size()
                          << " stale pragma(s) from " << file << "\n";
        }
        if (!dryRun) {
            std::vector<Finding> kept;
            for (Finding &finding : report.findings) {
                if (finding.rule != "stale-allow")
                    kept.push_back(std::move(finding));
            }
            report.findings = std::move(kept);
        }
    }

    if (!jsonPath.empty() && !writeFile(jsonPath, toJson(report))) {
        std::cerr << "litmus_lint: cannot write '" << jsonPath
                  << "'\n";
        return 2;
    }
    if (!includeGraphPath.empty() &&
        !writeFile(includeGraphPath, report.includeGraphJson)) {
        std::cerr << "litmus_lint: cannot write '" << includeGraphPath
                  << "'\n";
        return 2;
    }
    if (!includeGraphDotPath.empty() &&
        !writeFile(includeGraphDotPath, report.includeGraphDot)) {
        std::cerr << "litmus_lint: cannot write '"
                  << includeGraphDotPath << "'\n";
        return 2;
    }

    if (!quiet) {
        for (const Finding &finding : report.findings)
            std::cout << finding.file << ":" << finding.line << ": ["
                      << finding.rule << "] " << finding.message
                      << "\n";
        for (const Finding &advisory : report.advisories)
            std::cout << advisory.file << ":" << advisory.line
                      << ": advisory [" << advisory.rule << "] "
                      << advisory.message << "\n";
        std::cout << "litmus_lint: " << report.filesScanned
                  << " files, " << report.findings.size()
                  << " finding(s), " << report.advisories.size()
                  << " advisory(ies), " << report.suppressions
                  << " suppression(s)\n";
    }
    return report.clean() ? 0 : 1;
}
