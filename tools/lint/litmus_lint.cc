/**
 * @file
 * litmus_lint CLI: scan the tree, print findings, emit the JSON
 * report, exit nonzero when the tree is dirty.
 *
 *     litmus_lint [--root=DIR] [--json=FILE] [--rule=NAME]...
 *                 [--list-rules] [--quiet] [DIR]...
 *
 * Positional DIRs (relative to the root) override the default scan
 * set {src, apps, bench, tools}. Exit codes: 0 clean, 1 findings,
 * 2 usage or I/O error.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "lint.h"

namespace
{

int
usage(std::ostream &out, int code)
{
    out << "usage: litmus_lint [--root=DIR] [--json=FILE] "
           "[--rule=NAME]... [--list-rules] [--quiet] [DIR]...\n"
           "Enforces the project invariants over the code tree;\n"
           "run --list-rules for the rule catalog.\n";
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace litmus::lint;

    Options options;
    std::string jsonPath;
    bool quiet = false;
    std::vector<std::string> dirs;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto valueOf = [&arg](const char *flag) {
            return arg.substr(std::strlen(flag));
        };
        if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else if (arg == "--list-rules") {
            for (const RuleInfo &rule : ruleCatalog())
                std::cout << rule.name << "\n    " << rule.description
                          << "\n";
            return 0;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg.rfind("--root=", 0) == 0) {
            options.root = valueOf("--root=");
        } else if (arg.rfind("--json=", 0) == 0) {
            jsonPath = valueOf("--json=");
        } else if (arg.rfind("--rule=", 0) == 0) {
            options.rules.push_back(valueOf("--rule="));
        } else if (arg.rfind("-", 0) == 0) {
            std::cerr << "litmus_lint: unknown flag '" << arg << "'\n";
            return usage(std::cerr, 2);
        } else {
            dirs.push_back(arg);
        }
    }
    if (!dirs.empty())
        options.dirs = dirs;

    Report report;
    try {
        report = runLint(options);
    } catch (const std::exception &error) {
        std::cerr << "litmus_lint: " << error.what() << "\n";
        return 2;
    }

    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath);
        if (!out) {
            std::cerr << "litmus_lint: cannot write '" << jsonPath
                      << "'\n";
            return 2;
        }
        out << toJson(report);
    }

    if (!quiet) {
        for (const Finding &finding : report.findings)
            std::cout << finding.file << ":" << finding.line << ": ["
                      << finding.rule << "] " << finding.message
                      << "\n";
        std::cout << "litmus_lint: " << report.filesScanned
                  << " files, " << report.findings.size()
                  << " finding(s), " << report.suppressions
                  << " suppression(s)\n";
    }
    return report.clean() ? 0 : 1;
}
