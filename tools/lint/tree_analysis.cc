#include "tree_analysis.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "lint_util.h"

namespace litmus::lint::detail
{

namespace
{

constexpr const char *kLockAnnotation = "lock-annotation";
constexpr const char *kLockOrder = "lock-order";
constexpr const char *kIncludeGraph = "include-graph";
constexpr const char *kStaleAllow = "stale-allow";

bool
ruleEnabled(const Options &options, const std::string &rule)
{
    if (options.rules.empty())
        return true;
    return std::find(options.rules.begin(), options.rules.end(),
                     rule) != options.rules.end();
}

// ---------------------------------------------------------------- //
// Parsed tree representation                                       //
// ---------------------------------------------------------------- //

/** One file with its stripped shadow copy (offsets match raw). */
struct ParsedFile
{
    const SourceFile *src = nullptr;
    std::string code; ///< comments/strings blanked
    std::vector<std::string> rawLines;
    std::vector<std::string> strippedLines;
    std::vector<IncludeLine> includes;          ///< as written
    std::vector<std::string> resolvedIncludes;  ///< per include; "" when
                                                ///< not a project file
};

struct Member
{
    std::string name;
    int line = 0;
    bool guarded = false;  ///< carries LITMUS_GUARDED_BY/PT_GUARDED_BY
    std::string guardName; ///< the macro's argument
    bool isCapability = false; ///< litmus::Mutex
    bool isRawMutex = false;   ///< std::mutex family
    bool isExempt = false;     ///< self-synchronizing or a lock itself
    bool pointer = false;      ///< declared as a pointer/reference —
                               ///< names a lock, is not one itself
};

struct ClassInfo
{
    std::string name;
    std::string file; ///< defining file, root-relative
    int line = 0;
    std::size_t bodyBegin = 0; ///< offset of '{'
    std::size_t bodyEnd = 0;   ///< offset of matching '}'
    std::map<std::string, Member> members; ///< data members only
};

/** Out-of-line `Cls::method(...) { ... }` body in a .cc/.h file. */
struct MethodDef
{
    std::string className;
    std::size_t bodyBegin = 0;
    std::size_t bodyEnd = 0;
};

/** One `MutexLock lock(&expr);`-style scope. */
struct GuardScope
{
    std::string base;      ///< "" / "this" for own members
    std::string mutexName; ///< member holding the lock
    std::size_t pos = 0;   ///< offset of the guard keyword
    std::size_t stmtEnd = 0; ///< offset just past the guard's ')'
    std::size_t scopeEnd = 0; ///< offset of the enclosing block's '}'
    int line = 0;
    const ClassInfo *guardClass = nullptr; ///< resolved owner, or null
};

std::size_t
matchBrace(const std::string &code, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < code.size(); ++i) {
        if (code[i] == '{')
            ++depth;
        else if (code[i] == '}' && --depth == 0)
            return i;
    }
    return code.size();
}

std::string
trimCopy(const std::string &text)
{
    std::size_t b = 0, e = text.size();
    while (b < e && std::isspace(static_cast<unsigned char>(text[b])))
        ++b;
    while (e > b &&
           std::isspace(static_cast<unsigned char>(text[e - 1])))
        --e;
    return text.substr(b, e - b);
}

std::string
firstToken(const std::string &text)
{
    std::size_t b = 0;
    while (b < text.size() &&
           std::isspace(static_cast<unsigned char>(text[b])))
        ++b;
    std::size_t e = b;
    while (e < text.size() && isIdentChar(text[e]))
        ++e;
    return text.substr(b, e - b);
}

/** Type text with leading storage/cv qualifiers removed. */
std::string
baseType(const std::string &typeText)
{
    std::string rest = trimCopy(typeText);
    for (;;) {
        const std::string tok = firstToken(rest);
        if (tok == "mutable" || tok == "const" || tok == "volatile" ||
            tok == "inline" || tok == "constexpr") {
            rest = trimCopy(rest.substr(tok.size()));
            continue;
        }
        return rest;
    }
}

/** True when @p base names type @p name (boundary-checked prefix). */
bool
typeIs(const std::string &base, const std::string &name)
{
    if (base.rfind(name, 0) != 0)
        return false;
    return base.size() == name.size() ||
           !isIdentChar(base[name.size()]);
}

bool
isRawMutexType(const std::string &base)
{
    for (const char *name :
         {"std::mutex", "std::shared_mutex", "std::recursive_mutex",
          "std::timed_mutex", "std::shared_timed_mutex",
          "std::recursive_timed_mutex"}) {
        if (typeIs(base, name))
            return true;
    }
    return false;
}

bool
isCapabilityType(const std::string &base)
{
    return typeIs(base, "Mutex") || typeIs(base, "litmus::Mutex");
}

/** Members that synchronize themselves (or are locks): accessing them
 *  under a lock without a GUARDED_BY annotation is fine. */
bool
isExemptType(const std::string &base)
{
    if (isCapabilityType(base) || isRawMutexType(base))
        return true;
    for (const char *name :
         {"std::condition_variable", "std::condition_variable_any",
          "std::atomic", "std::atomic_flag", "std::thread",
          "std::jthread", "std::once_flag", "MutexLock", "UniqueLock"}) {
        if (typeIs(base, name))
            return true;
    }
    return false;
}

// ---------------------------------------------------------------- //
// Class / member indexing                                          //
// ---------------------------------------------------------------- //

/**
 * Parse the data members declared at the top level of a class body.
 * Function bodies, nested type bodies, and brace initializers are
 * skipped wholesale; what remains is split into declaration chunks at
 * ';'. The member name is the last identifier before the initializer
 * or annotation macro; chunks whose "name" is followed by '(' or sits
 * inside parentheses are function declarations and are dropped.
 */
void
parseMembers(const std::string &code, ClassInfo &cls)
{
    std::string chunk;
    std::vector<std::size_t> offsets; ///< per chunk char

    const auto reset = [&] {
        chunk.clear();
        offsets.clear();
    };

    const auto finish = [&] {
        const std::string text = chunk;
        reset();
        if (trimCopy(text).empty())
            return;
        const std::string first = firstToken(text);
        for (const char *skip :
             {"using", "friend", "typedef", "template", "static",
              "operator", "public", "private", "protected", "class",
              "struct", "union", "enum"}) {
            if (first == skip)
                return;
        }
        if (findToken(text, "operator", 0) != std::string::npos)
            return;

        // Truncate at the initializer / annotation; the name is the
        // last identifier before the cut.
        std::size_t cut = text.size();
        const std::size_t eq = text.find('=');
        if (eq != std::string::npos)
            cut = std::min(cut, eq);
        const std::size_t bracket = text.find('[');
        if (bracket != std::string::npos)
            cut = std::min(cut, bracket);
        for (std::size_t p = text.find("LITMUS_");
             p != std::string::npos; p = text.find("LITMUS_", p + 1)) {
            if (p == 0 || !isIdentChar(text[p - 1])) {
                cut = std::min(cut, p);
                break;
            }
        }
        std::string head = text.substr(0, cut);
        // `T f() const` / `T f() noexcept`: strip the trailing
        // qualifier keywords so the ')' shows and the chunk reads as
        // the function declaration it is.
        for (;;) {
            std::string trimmed = trimCopy(head);
            bool stripped = false;
            for (const char *kw :
                 {"const", "noexcept", "override", "final"}) {
                const std::size_t len = std::string(kw).size();
                if (trimmed.size() >= len &&
                    trimmed.compare(trimmed.size() - len, len, kw) ==
                        0 &&
                    (trimmed.size() == len ||
                     !isIdentChar(trimmed[trimmed.size() - len - 1]))) {
                    head = trimmed.substr(0, trimmed.size() - len);
                    stripped = true;
                    break;
                }
            }
            if (!stripped)
                break;
        }
        if (!trimCopy(head).empty() && trimCopy(head).back() == ')')
            return; // function declaration
        std::size_t e = head.size();
        while (e > 0 && !isIdentChar(head[e - 1]))
            --e;
        std::size_t b = e;
        while (b > 0 && isIdentChar(head[b - 1]))
            --b;
        if (b == e)
            return;
        const std::string name = head.substr(b, e - b);
        // A name inside parentheses is a parameter; a name followed
        // by '(' is a function. Either way, not a data member.
        int parenDepth = 0;
        for (std::size_t i = 0; i < b; ++i) {
            if (head[i] == '(')
                ++parenDepth;
            else if (head[i] == ')')
                --parenDepth;
        }
        if (parenDepth > 0)
            return;
        std::size_t after = e;
        while (after < text.size() &&
               std::isspace(static_cast<unsigned char>(text[after])))
            ++after;
        if (after < text.size() && text[after] == '(')
            return;

        Member m;
        m.name = name;
        m.line = lineOfOffset(code, offsets[b]);
        const std::string base = baseType(head.substr(0, b));
        m.isRawMutex = isRawMutexType(base);
        m.isCapability = isCapabilityType(base);
        m.isExempt = isExemptType(base);
        m.pointer = base.find('*') != std::string::npos ||
                    base.find('&') != std::string::npos;
        for (const char *macro :
             {"LITMUS_GUARDED_BY", "LITMUS_PT_GUARDED_BY"}) {
            const std::size_t at = findToken(text, macro, 0);
            if (at == std::string::npos)
                continue;
            const std::size_t open = text.find('(', at);
            const std::size_t close =
                open == std::string::npos ? std::string::npos
                                          : text.find(')', open);
            if (close == std::string::npos)
                continue;
            m.guarded = true;
            m.guardName =
                trimCopy(text.substr(open + 1, close - open - 1));
            if (!m.guardName.empty() && m.guardName[0] == '&')
                m.guardName = trimCopy(m.guardName.substr(1));
        }
        cls.members.emplace(m.name, std::move(m));
    };

    std::size_t i = cls.bodyBegin + 1;
    while (i < cls.bodyEnd) {
        const char c = code[i];
        if (c == ';') {
            finish();
            ++i;
            continue;
        }
        if (c == ':') {
            if (i + 1 < cls.bodyEnd && code[i + 1] == ':') {
                chunk += "::";
                offsets.push_back(i);
                offsets.push_back(i + 1);
                i += 2;
                continue;
            }
            const std::string sofar = trimCopy(chunk);
            if (sofar == "public" || sofar == "private" ||
                sofar == "protected") {
                reset();
                ++i;
                continue;
            }
            chunk += ':';
            offsets.push_back(i);
            ++i;
            continue;
        }
        if (c == '{') {
            std::size_t prev = chunk.size();
            while (prev > 0 &&
                   std::isspace(
                       static_cast<unsigned char>(chunk[prev - 1])))
                --prev;
            // Trailing `const`/`noexcept`/`override`/`final` between
            // the parameter list and the body still mean "function".
            std::string tail = trimCopy(chunk);
            for (;;) {
                bool stripped = false;
                for (const char *kw :
                     {"const", "noexcept", "override", "final"}) {
                    const std::size_t len = std::string(kw).size();
                    if (tail.size() >= len &&
                        tail.compare(tail.size() - len, len, kw) == 0 &&
                        (tail.size() == len ||
                         !isIdentChar(tail[tail.size() - len - 1]))) {
                        tail = trimCopy(
                            tail.substr(0, tail.size() - len));
                        stripped = true;
                    }
                }
                if (!stripped)
                    break;
            }
            const std::size_t close = matchBrace(code, i);
            const std::string first = firstToken(chunk);
            if (first == "class" || first == "struct" ||
                first == "union" || first == "enum") {
                // Nested type: its own scan indexes it. Text between
                // '}' and ';' (an anonymous-type member) starts a new
                // chunk.
                reset();
                i = close + 1;
                continue;
            }
            if (!tail.empty() && tail.back() == ')') {
                // Function definition; a ';' is optional after it.
                reset();
                i = skipSpace(code, close + 1);
                if (i < cls.bodyEnd && code[i] == ';')
                    ++i;
                continue;
            }
            // Brace initializer: the chunk already has the name.
            i = close + 1;
            continue;
        }
        chunk += c;
        offsets.push_back(i);
        ++i;
    }
    finish();
}

/**
 * Index every class/struct definition in @p code. The name is the
 * last plain identifier between the keyword and the body (skipping
 * attribute-macro invocations like LITMUS_CAPABILITY("mutex")); a ';'
 * first means forward declaration, another class-keyword first means
 * we were inside a template parameter list.
 */
void
scanClasses(const std::string &file, const std::string &code,
            std::vector<ClassInfo> &out)
{
    for (const char *keyword : {"class", "struct"}) {
        for (std::size_t pos = findToken(code, keyword, 0);
             pos != std::string::npos;
             pos = findToken(code, keyword, pos + 1)) {
            // `enum class` / `enum struct` are not classes.
            {
                std::size_t q = pos;
                while (q > 0 && std::isspace(static_cast<unsigned char>(
                                    code[q - 1])))
                    --q;
                std::size_t b = q;
                while (b > 0 && isIdentChar(code[b - 1]))
                    --b;
                if (code.compare(b, q - b, "enum") == 0 && q > b)
                    continue;
            }
            std::size_t i = pos + std::string(keyword).size();
            std::string name;
            bool abort = false;
            while (i < code.size()) {
                i = skipSpace(code, i);
                if (i >= code.size())
                    break;
                const char c = code[i];
                if (c == '{' || c == ';')
                    break;
                if (c == ':' &&
                    (i + 1 >= code.size() || code[i + 1] != ':'))
                    break; // base-clause: name is already set
                if (c == '<') {
                    int depth = 0;
                    for (; i < code.size(); ++i) {
                        if (code[i] == '<')
                            ++depth;
                        else if (code[i] == '>' && --depth == 0) {
                            ++i;
                            break;
                        }
                    }
                    continue;
                }
                if (isIdentChar(c)) {
                    std::size_t e = i;
                    while (e < code.size() && isIdentChar(code[e]))
                        ++e;
                    const std::string ident = code.substr(i, e - i);
                    if (ident == "class" || ident == "struct" ||
                        ident == "union" || ident == "enum") {
                        abort = true; // template parameter list
                        break;
                    }
                    const std::size_t after = skipSpace(code, e);
                    if (after < code.size() && code[after] == '(') {
                        // attribute macro invocation — skip its args
                        int depth = 0;
                        i = after;
                        for (; i < code.size(); ++i) {
                            if (code[i] == '(')
                                ++depth;
                            else if (code[i] == ')' && --depth == 0) {
                                ++i;
                                break;
                            }
                        }
                        continue;
                    }
                    if (ident != "final" && ident != "alignas")
                        name = ident;
                    i = e;
                    continue;
                }
                ++i; // stray punctuation (e.g. '::' handled above)
            }
            if (abort || i >= code.size() || name.empty())
                continue;
            if (code[i] == ';')
                continue; // forward declaration
            if (code[i] == ':')
                i = code.find('{', i);
            if (i == std::string::npos || i >= code.size() ||
                code[i] != '{')
                continue;
            ClassInfo cls;
            cls.name = name;
            cls.file = file;
            cls.line = lineOfOffset(code, pos);
            cls.bodyBegin = i;
            cls.bodyEnd = matchBrace(code, i);
            parseMembers(code, cls);
            out.push_back(std::move(cls));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const ClassInfo &a, const ClassInfo &b) {
                  return a.bodyBegin < b.bodyBegin;
              });
}

/**
 * Out-of-line method bodies: `X::y(...) ... {`. X must be an indexed
 * class (this filters std::sort(...) calls and the like), and the
 * parameter list must be followed — possibly after cv-qualifiers,
 * annotation macros, or a constructor init list — by a body.
 */
void
scanMethodDefs(const std::string &code,
               const std::set<std::string> &classNames,
               std::vector<MethodDef> &out)
{
    for (std::size_t pos = code.find("::"); pos != std::string::npos;
         pos = code.find("::", pos + 1)) {
        std::size_t b = pos;
        while (b > 0 && isIdentChar(code[b - 1]))
            --b;
        if (b == pos)
            continue;
        const std::string cls = code.substr(b, pos - b);
        if (!classNames.count(cls))
            continue;
        std::size_t m = pos + 2;
        if (m < code.size() && code[m] == '~')
            ++m; // destructor
        std::size_t e = m;
        while (e < code.size() && isIdentChar(code[e]))
            ++e;
        if (e == m)
            continue;
        std::size_t p = skipSpace(code, e);
        if (p >= code.size() || code[p] != '(')
            continue;
        // Matching ')' of the parameter list.
        int depth = 0;
        for (; p < code.size(); ++p) {
            if (code[p] == '(')
                ++depth;
            else if (code[p] == ')' && --depth == 0) {
                ++p;
                break;
            }
        }
        // Walk decorations until the body (or bail at ';' — a mere
        // declaration/call).
        bool body = false;
        while (p < code.size()) {
            p = skipSpace(code, p);
            if (p >= code.size())
                break;
            const char c = code[p];
            if (c == '{') {
                body = true;
                break;
            }
            if (c == ';')
                break;
            if (c == ':') {
                // ctor init list: runs to the body's '{' (paren-
                // balanced; paren-init only in this tree).
                int d = 0;
                ++p;
                while (p < code.size()) {
                    if (code[p] == '(')
                        ++d;
                    else if (code[p] == ')')
                        --d;
                    else if (code[p] == '{' && d == 0)
                        break;
                    ++p;
                }
                continue;
            }
            if (isIdentChar(c)) {
                std::size_t q = p;
                while (q < code.size() && isIdentChar(code[q]))
                    ++q;
                const std::size_t after = skipSpace(code, q);
                if (after < code.size() && code[after] == '(') {
                    int d = 0;
                    p = after;
                    for (; p < code.size(); ++p) {
                        if (code[p] == '(')
                            ++d;
                        else if (code[p] == ')' && --d == 0) {
                            ++p;
                            break;
                        }
                    }
                } else {
                    p = q;
                }
                continue;
            }
            break; // operator definitions etc. — not interesting
        }
        if (!body)
            continue;
        MethodDef def;
        def.className = cls;
        def.bodyBegin = p;
        def.bodyEnd = matchBrace(code, p);
        out.push_back(std::move(def));
    }
}

// ---------------------------------------------------------------- //
// Guard scopes                                                     //
// ---------------------------------------------------------------- //

/** Offset of the '}' closing the block @p pos sits in. */
std::size_t
enclosingBlockEnd(const std::string &code, std::size_t pos)
{
    int depth = 0;
    for (std::size_t i = pos; i < code.size(); ++i) {
        if (code[i] == '{')
            ++depth;
        else if (code[i] == '}' && --depth < 0)
            return i;
    }
    return code.size();
}

/** Split a lock argument (`&reg.mutex`, `mutex_`, `&this->mu`) into
 *  base ("" for own members) and member name; false when it is not a
 *  plain member path. */
bool
splitLockArg(const std::string &argRaw, std::string &base,
             std::string &member)
{
    std::string arg = trimCopy(argRaw);
    if (!arg.empty() && arg[0] == '&')
        arg = trimCopy(arg.substr(1));
    if (arg.empty())
        return false;
    std::size_t cut = std::string::npos;
    const std::size_t dot = arg.rfind('.');
    const std::size_t arrow = arg.rfind("->");
    std::size_t baseEnd = 0, memberBegin = 0;
    if (dot != std::string::npos &&
        (arrow == std::string::npos || dot > arrow + 1)) {
        cut = dot;
        baseEnd = dot;
        memberBegin = dot + 1;
    } else if (arrow != std::string::npos) {
        cut = arrow;
        baseEnd = arrow;
        memberBegin = arrow + 2;
    }
    if (cut == std::string::npos) {
        base.clear();
        member = arg;
    } else {
        base = trimCopy(arg.substr(0, baseEnd));
        member = trimCopy(arg.substr(memberBegin));
    }
    if (base == "this")
        base.clear();
    const auto plainIdent = [](const std::string &s) {
        if (s.empty())
            return false;
        for (char c : s) {
            if (!isIdentChar(c))
                return false;
        }
        return true;
    };
    if (!plainIdent(member))
        return false;
    if (!base.empty() && !plainIdent(base))
        return false;
    return true;
}

void
scanGuardScopes(const std::string &code, std::vector<GuardScope> &out)
{
    struct Keyword
    {
        const char *token;
        bool templated; ///< std::lock_guard<...> form
    };
    for (const Keyword &kw : {Keyword{"MutexLock", false},
                              Keyword{"UniqueLock", false},
                              Keyword{"lock_guard", true},
                              Keyword{"unique_lock", true},
                              Keyword{"scoped_lock", true}}) {
        for (std::size_t pos = findToken(code, kw.token, 0);
             pos != std::string::npos;
             pos = findToken(code, kw.token, pos + 1)) {
            std::size_t i =
                skipSpace(code, pos + std::string(kw.token).size());
            if (kw.templated) {
                if (i >= code.size() || code[i] != '<')
                    continue;
                int depth = 0;
                for (; i < code.size(); ++i) {
                    if (code[i] == '<')
                        ++depth;
                    else if (code[i] == '>' && --depth == 0) {
                        ++i;
                        break;
                    }
                }
                i = skipSpace(code, i);
            }
            // Variable name, then the constructor argument. A '('
            // right after the type is a temporary or a declaration's
            // parameter list — not a scoped guard.
            std::size_t e = i;
            while (e < code.size() && isIdentChar(code[e]))
                ++e;
            if (e == i)
                continue;
            std::size_t open = skipSpace(code, e);
            if (open >= code.size() || code[open] != '(')
                continue;
            int depth = 0;
            std::size_t close = open;
            for (; close < code.size(); ++close) {
                if (code[close] == '(')
                    ++depth;
                else if (code[close] == ')' && --depth == 0)
                    break;
            }
            if (close >= code.size())
                continue;
            GuardScope scope;
            if (!splitLockArg(code.substr(open + 1, close - open - 1),
                              scope.base, scope.mutexName))
                continue;
            scope.pos = pos;
            scope.stmtEnd = close + 1;
            scope.scopeEnd = enclosingBlockEnd(code, pos);
            scope.line = lineOfOffset(code, pos);
            out.push_back(std::move(scope));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const GuardScope &a, const GuardScope &b) {
                  return a.pos < b.pos;
              });
}

/** Preceded by '.', '->', or any '::' — not a bare member access. */
bool
qualifiedAny(const std::string &code, std::size_t pos)
{
    std::size_t i = pos;
    while (i > 0 &&
           std::isspace(static_cast<unsigned char>(code[i - 1])))
        --i;
    if (i == 0)
        return false;
    if (code[i - 1] == '.')
        return true;
    if (i >= 2 && code[i - 2] == '-' && code[i - 1] == '>')
        return true;
    if (i >= 2 && code[i - 2] == ':' && code[i - 1] == ':')
        return true;
    return false;
}

// ---------------------------------------------------------------- //
// Lock identity & graph                                            //
// ---------------------------------------------------------------- //

std::string
lockId(const ClassInfo &cls, const std::string &member)
{
    return cls.file + ":" + cls.name + "::" + member;
}

struct LockEdge
{
    std::string outer; ///< lockId held
    std::string inner; ///< lockId acquired under it
    std::string file;  ///< nesting site
    int line = 0;
    std::string outerName, innerName; ///< bare member names
};

/** True when @p to is reachable from @p from via >= 1 edge. */
bool
reaches(const std::map<std::string, std::set<std::string>> &adj,
        const std::string &from, const std::string &to)
{
    std::set<std::string> seen;
    std::vector<std::string> stack;
    const auto it = adj.find(from);
    if (it == adj.end())
        return false;
    for (const std::string &n : it->second)
        stack.push_back(n);
    while (!stack.empty()) {
        const std::string node = stack.back();
        stack.pop_back();
        if (node == to)
            return true;
        if (!seen.insert(node).second)
            continue;
        const auto nit = adj.find(node);
        if (nit == adj.end())
            continue;
        for (const std::string &n : nit->second)
            stack.push_back(n);
    }
    return false;
}

} // namespace

// ---------------------------------------------------------------- //
// The pass                                                         //
// ---------------------------------------------------------------- //

void
runTreeAnalysis(const std::vector<SourceFile> &files,
                const Options &options, Report &report)
{
    // ---- parse every file once -------------------------------- //
    std::vector<ParsedFile> parsed(files.size());
    std::set<std::string> fileSet;
    for (const SourceFile &f : files)
        fileSet.insert(f.path);
    for (std::size_t i = 0; i < files.size(); ++i) {
        ParsedFile &pf = parsed[i];
        pf.src = &files[i];
        pf.code = stripCommentsAndStrings(files[i].content);
        pf.rawLines = splitLines(files[i].content);
        pf.strippedLines = splitLines(pf.code);
        pf.includes = parseIncludes(pf.rawLines);
        const std::string &path = files[i].path;
        const std::size_t slash = path.find_last_of('/');
        const std::string dir =
            slash == std::string::npos ? "" : path.substr(0, slash);
        for (const IncludeLine &inc : pf.includes) {
            std::string resolved;
            for (const std::string &cand :
                 {"src/" + inc.target,
                  dir.empty() ? inc.target : dir + "/" + inc.target,
                  inc.target}) {
                if (fileSet.count(cand)) {
                    resolved = cand;
                    break;
                }
            }
            pf.resolvedIncludes.push_back(resolved);
        }
    }

    // ---- class & member index --------------------------------- //
    std::vector<std::vector<ClassInfo>> classesByFile(files.size());
    std::set<std::string> classNames;
    for (std::size_t i = 0; i < files.size(); ++i) {
        scanClasses(files[i].path, parsed[i].code, classesByFile[i]);
        for (const ClassInfo &cls : classesByFile[i])
            classNames.insert(cls.name);
    }

    std::vector<Finding> found;     ///< tree-rule findings (pre-pragma)
    std::vector<Finding> advisories;

    // ---- lock-annotation part A: raw mutex members in src/ ----- //
    for (std::size_t i = 0; i < files.size(); ++i) {
        if (files[i].path.rfind("src/", 0) != 0)
            continue;
        for (const ClassInfo &cls : classesByFile[i]) {
            for (const auto &[name, m] : cls.members) {
                if (!m.isRawMutex)
                    continue;
                found.push_back(
                    {files[i].path, m.line, kLockAnnotation,
                     "raw std::mutex member '" + name + "' in " +
                         cls.name +
                         " — use litmus::Mutex (common/mutex.h) so "
                         "the lock is a capability the analysis can "
                         "see"});
            }
        }
    }

    // ---- guard scopes, lock-annotation part B, lock edges ------ //
    std::set<std::string> lockNodes; ///< all capability members, src/
    for (std::size_t i = 0; i < files.size(); ++i) {
        if (files[i].path.rfind("src/", 0) != 0)
            continue;
        for (const ClassInfo &cls : classesByFile[i]) {
            for (const auto &[name, m] : cls.members) {
                if (m.isCapability && !m.pointer)
                    lockNodes.insert(lockId(cls, name));
            }
        }
    }

    std::vector<LockEdge> edges;
    for (std::size_t i = 0; i < files.size(); ++i) {
        const std::string &path = files[i].path;
        if (path.rfind("src/", 0) != 0)
            continue;
        const ParsedFile &pf = parsed[i];
        const std::vector<ClassInfo> &ownClasses = classesByFile[i];

        std::vector<GuardScope> scopes;
        scanGuardScopes(pf.code, scopes);
        if (scopes.empty())
            continue;

        std::vector<MethodDef> methods;
        scanMethodDefs(pf.code, classNames, methods);

        // Classes visible for `base.member` resolution: this file's,
        // then those of directly-included project files.
        std::vector<const ClassInfo *> visible;
        for (const ClassInfo &cls : ownClasses)
            visible.push_back(&cls);
        for (const std::string &inc : pf.resolvedIncludes) {
            if (inc.empty())
                continue;
            for (std::size_t j = 0; j < files.size(); ++j) {
                if (files[j].path != inc)
                    continue;
                for (const ClassInfo &cls : classesByFile[j])
                    visible.push_back(&cls);
            }
        }

        const auto hasLockMember = [](const ClassInfo &cls,
                                      const std::string &name) {
            const auto it = cls.members.find(name);
            return it != cls.members.end() &&
                   (it->second.isCapability || it->second.isRawMutex);
        };

        for (GuardScope &scope : scopes) {
            if (scope.base.empty()) {
                // Own member: innermost enclosing class body, else
                // the out-of-line method's class; outer candidates
                // are tried when the inner one lacks the mutex.
                std::vector<const ClassInfo *> candidates;
                for (const ClassInfo &cls : ownClasses) {
                    if (cls.bodyBegin < scope.pos &&
                        scope.pos < cls.bodyEnd)
                        candidates.push_back(&cls);
                }
                std::reverse(candidates.begin(),
                             candidates.end()); // innermost first
                for (const MethodDef &def : methods) {
                    if (def.bodyBegin < scope.pos &&
                        scope.pos < def.bodyEnd) {
                        for (const ClassInfo *cls : visible) {
                            if (cls->name == def.className)
                                candidates.push_back(cls);
                        }
                    }
                }
                for (const ClassInfo *cls : candidates) {
                    if (hasLockMember(*cls, scope.mutexName)) {
                        scope.guardClass = cls;
                        break;
                    }
                }
            } else {
                // `obj.member`: the unique visible class with a lock
                // member of that name; ambiguity stays silent.
                const ClassInfo *match = nullptr;
                bool ambiguous = false;
                for (const ClassInfo *cls : visible) {
                    if (!hasLockMember(*cls, scope.mutexName))
                        continue;
                    if (match && match != cls &&
                        !(match->file == cls->file &&
                          match->bodyBegin == cls->bodyBegin)) {
                        ambiguous = true;
                        break;
                    }
                    match = cls;
                }
                if (!ambiguous)
                    scope.guardClass = match;
            }
        }

        // Part B: members touched in scope must be guarded by the
        // scope's mutex. One finding per (scope, member).
        for (const GuardScope &scope : scopes) {
            if (!scope.guardClass)
                continue;
            const ClassInfo &cls = *scope.guardClass;
            std::set<std::string> flagged;
            const auto check = [&](const Member &m, std::size_t at) {
                if (m.isExempt || m.name == scope.mutexName)
                    return;
                if (m.guarded && m.guardName == scope.mutexName)
                    return;
                // Nested locks: the access is fine when any guard
                // scope covering it holds the member's own mutex.
                if (m.guarded) {
                    for (const GuardScope &other : scopes) {
                        if (other.guardClass == scope.guardClass &&
                            other.mutexName == m.guardName &&
                            other.stmtEnd <= at &&
                            at < other.scopeEnd)
                            return;
                    }
                }
                if (!flagged.insert(m.name).second)
                    return;
                std::string msg =
                    "member '" + m.name + "' of " + cls.name +
                    " is touched under a lock on '" +
                    scope.mutexName + "' but is not LITMUS_GUARDED_BY(" +
                    scope.mutexName + ")";
                if (m.guarded)
                    msg += " (it is declared LITMUS_GUARDED_BY(" +
                           m.guardName + "))";
                found.push_back({path, lineOfOffset(pf.code, at),
                                 kLockAnnotation, msg});
            };
            if (scope.base.empty()) {
                for (const auto &[name, m] : cls.members) {
                    for (std::size_t at = findToken(pf.code, name,
                                                    scope.stmtEnd);
                         at != std::string::npos &&
                         at < scope.scopeEnd;
                         at = findToken(pf.code, name, at + 1)) {
                        if (qualifiedAny(pf.code, at))
                            continue;
                        check(m, at);
                    }
                }
            } else {
                for (std::size_t at = findToken(pf.code, scope.base,
                                                scope.stmtEnd);
                     at != std::string::npos && at < scope.scopeEnd;
                     at = findToken(pf.code, scope.base, at + 1)) {
                    std::size_t m = at + scope.base.size();
                    if (m < pf.code.size() && pf.code[m] == '.')
                        ++m;
                    else if (m + 1 < pf.code.size() &&
                             pf.code[m] == '-' && pf.code[m + 1] == '>')
                        m += 2;
                    else
                        continue;
                    std::size_t e = m;
                    while (e < pf.code.size() &&
                           isIdentChar(pf.code[e]))
                        ++e;
                    const auto it =
                        cls.members.find(pf.code.substr(m, e - m));
                    if (it == cls.members.end())
                        continue; // method or unknown
                    check(it->second, at);
                }
            }
        }

        // Lock-order edges: a guard starting inside another live
        // guard's scope nests inner under outer.
        for (std::size_t a = 0; a < scopes.size(); ++a) {
            const GuardScope &outer = scopes[a];
            if (!outer.guardClass)
                continue;
            for (std::size_t b = a + 1; b < scopes.size(); ++b) {
                const GuardScope &inner = scopes[b];
                if (!inner.guardClass)
                    continue;
                if (inner.pos >= outer.scopeEnd)
                    break;
                LockEdge edge;
                edge.outer =
                    lockId(*outer.guardClass, outer.mutexName);
                edge.inner =
                    lockId(*inner.guardClass, inner.mutexName);
                if (edge.outer == edge.inner)
                    continue;
                edge.file = path;
                edge.line = inner.line;
                edge.outerName = outer.mutexName;
                edge.innerName = inner.mutexName;
                lockNodes.insert(edge.outer);
                lockNodes.insert(edge.inner);
                edges.push_back(std::move(edge));
            }
        }
    }

    // ---- lock-order: cycles + canonical order ------------------ //
    std::map<std::string, std::set<std::string>> lockAdj;
    for (const LockEdge &edge : edges)
        lockAdj[edge.outer].insert(edge.inner);

    for (const LockEdge &edge : edges) {
        if (!reaches(lockAdj, edge.inner, edge.outer))
            continue;
        found.push_back(
            {edge.file, edge.line, kLockOrder,
             "lock-order cycle: '" + edge.innerName + "' (" +
                 edge.inner + ") is acquired while '" +
                 edge.outerName + "' (" + edge.outer +
                 ") is held, and the reverse nesting exists elsewhere "
                 "in the tree — pick one canonical order"});
    }

    {
        // Kahn's algorithm, lexicographic tie-break: smallest ready
        // node first. Cycle members cannot become ready and are
        // appended under a comment.
        std::map<std::string, int> indegree;
        for (const std::string &node : lockNodes)
            indegree[node] = 0;
        for (const auto &[outer, inners] : lockAdj) {
            for (const std::string &inner : inners) {
                if (indegree.count(inner))
                    ++indegree[inner];
            }
        }
        std::vector<std::string> order;
        std::set<std::string> ready, done;
        for (const auto &[node, deg] : indegree) {
            if (deg == 0)
                ready.insert(node);
        }
        while (!ready.empty()) {
            const std::string node = *ready.begin();
            ready.erase(ready.begin());
            order.push_back(node);
            done.insert(node);
            const auto it = lockAdj.find(node);
            if (it == lockAdj.end())
                continue;
            for (const std::string &next : it->second) {
                if (indegree.count(next) && --indegree[next] == 0)
                    ready.insert(next);
            }
        }
        std::ostringstream text;
        text << "# litmus canonical lock order (generated by "
                "litmus_lint)\n"
             << "# verify : litmus_lint --root . --lock-order "
                "tools/lint/lock_order.txt\n"
             << "# refresh: litmus_lint --root . --lock-order "
                "tools/lint/lock_order.txt --update-lock-order\n"
             << "# A lock may only be acquired while holding locks "
                "listed ABOVE it.\n"
             << "# identity: <defining-file>:<Class>::<member>\n";
        for (const std::string &node : order)
            text << node << "\n";
        if (done.size() != lockNodes.size()) {
            text << "# unorderable (lock-order cycle):\n";
            for (const std::string &node : lockNodes) {
                if (!done.count(node))
                    text << node << "\n";
            }
        }
        text << "# observed nestings (outer -> inner):\n";
        std::set<std::string> nestings;
        for (const LockEdge &edge : edges)
            nestings.insert("#   " + edge.outer + " -> " + edge.inner);
        if (nestings.empty())
            text << "#   (none)\n";
        for (const std::string &line : nestings)
            text << line << "\n";
        report.lockOrderText = text.str();
    }

    if (!options.lockOrderFile.empty() &&
        options.lockOrderExpected != report.lockOrderText) {
        found.push_back(
            {options.lockOrderFile, 1, kLockOrder,
             "canonical lock-order file does not match the lock "
             "graph derived from the code — refresh it with "
             "litmus_lint --update-lock-order"});
    }

    // ---- include-graph: cycles, advisories, exports ------------ //
    std::map<std::string, std::set<std::string>> incAdj;
    struct IncEdge
    {
        std::string from, to;
        int line;
    };
    std::vector<IncEdge> incEdges;
    for (std::size_t i = 0; i < files.size(); ++i) {
        const ParsedFile &pf = parsed[i];
        for (std::size_t k = 0; k < pf.includes.size(); ++k) {
            const std::string &to = pf.resolvedIncludes[k];
            if (to.empty() || to == files[i].path)
                continue;
            incAdj[files[i].path].insert(to);
            incEdges.push_back(
                {files[i].path, to, pf.includes[k].line});
        }
    }

    for (const IncEdge &edge : incEdges) {
        if (!reaches(incAdj, edge.to, edge.from))
            continue;
        found.push_back(
            {edge.from, edge.line, kIncludeGraph,
             "circular #include: '" + edge.to +
                 "' includes its way back to '" + edge.from +
                 "' — break the cycle (forward-declare, or split the "
                 "header)"});
    }

    // Advisory: an include of a project header none of whose provided
    // names appear in this file. "Provided" deliberately
    // over-approximates — classes, anything called or declared with a
    // '(', using-aliases, enumerators' enclosing enums, #define'd
    // macros — so a header used only for a free function or a macro
    // is never flagged. Headers providing nothing nameable are
    // skipped.
    std::map<std::string, std::size_t> fileIndex;
    for (std::size_t j = 0; j < files.size(); ++j)
        fileIndex[files[j].path] = j;
    std::map<std::string, std::set<std::string>> providedByFile;
    const auto providedNames =
        [&](std::size_t j) -> const std::set<std::string> & {
        auto it = providedByFile.find(files[j].path);
        if (it != providedByFile.end())
            return it->second;
        std::set<std::string> names;
        for (const ClassInfo &cls : classesByFile[j])
            names.insert(cls.name);
        const std::string &code = parsed[j].code;
        static const std::set<std::string> kNotProviders = {
            "if",     "for",    "while",  "switch",  "return",
            "sizeof", "catch",  "assert", "static_cast",
            "alignof", "decltype", "defined"};
        for (std::size_t p = code.find('('); p != std::string::npos;
             p = code.find('(', p + 1)) {
            std::size_t e = p;
            while (e > 0 && std::isspace(
                                static_cast<unsigned char>(code[e - 1])))
                --e;
            std::size_t b = e;
            while (b > 0 && isIdentChar(code[b - 1]))
                --b;
            if (b == e)
                continue;
            const std::string name = code.substr(b, e - b);
            if (!kNotProviders.count(name) &&
                !std::isdigit(static_cast<unsigned char>(name[0])))
                names.insert(name);
        }
        for (const char *kw : {"using", "enum"}) {
            for (std::size_t p = findToken(code, kw, 0);
                 p != std::string::npos;
                 p = findToken(code, kw, p + 1)) {
                std::size_t b =
                    skipSpace(code, p + std::string(kw).size());
                std::size_t e = b;
                while (e < code.size() && isIdentChar(code[e]))
                    ++e;
                const std::string name = code.substr(b, e - b);
                if (name == "class" || name == "struct" ||
                    name == "namespace") {
                    b = skipSpace(code, e);
                    e = b;
                    while (e < code.size() && isIdentChar(code[e]))
                        ++e;
                }
                if (e > b)
                    names.insert(code.substr(b, e - b));
            }
        }
        for (const std::string &line : parsed[j].rawLines) {
            const std::size_t hash = line.find_first_not_of(" \t");
            if (hash == std::string::npos || line[hash] != '#')
                continue;
            std::size_t p = skipSpace(line, hash + 1);
            if (line.compare(p, 6, "define") != 0)
                continue;
            p = skipSpace(line, p + 6);
            std::size_t e = p;
            while (e < line.size() && isIdentChar(line[e]))
                ++e;
            if (e > p)
                names.insert(line.substr(p, e - p));
        }
        return providedByFile
            .emplace(files[j].path, std::move(names))
            .first->second;
    };
    for (const IncEdge &edge : incEdges) {
        const auto targetIt = fileIndex.find(edge.to);
        const auto fromIt = fileIndex.find(edge.from);
        if (targetIt == fileIndex.end() || fromIt == fileIndex.end())
            continue;
        const std::set<std::string> &provided =
            providedNames(targetIt->second);
        if (provided.empty())
            continue;
        const std::string &fromCode = parsed[fromIt->second].code;
        bool used = false;
        for (const std::string &name : provided) {
            if (findToken(fromCode, name, 0) != std::string::npos) {
                used = true;
                break;
            }
        }
        if (used)
            continue;
        advisories.push_back(
            {edge.from, edge.line, kIncludeGraph,
             "include of '" + edge.to +
                 "' looks unused — nothing it declares is referenced "
                 "here (advisory)"});
    }

    {
        const auto layerOf = [](const std::string &path) {
            if (path.rfind("src/", 0) == 0) {
                const std::size_t slash = path.find('/', 4);
                if (slash != std::string::npos)
                    return path.substr(4, slash - 4);
            }
            const std::size_t slash = path.find('/');
            return slash == std::string::npos ? path
                                              : path.substr(0, slash);
        };
        std::ostringstream json;
        json << "{\n  \"nodes\": [";
        bool first = true;
        for (const SourceFile &f : files) {
            json << (first ? "" : ",") << "\n    {\"id\": \"" << f.path
                 << "\", \"layer\": \"" << layerOf(f.path) << "\"}";
            first = false;
        }
        json << (files.empty() ? "]" : "\n  ]") << ",\n  \"edges\": [";
        std::vector<IncEdge> sorted = incEdges;
        std::sort(sorted.begin(), sorted.end(),
                  [](const IncEdge &a, const IncEdge &b) {
                      if (a.from != b.from)
                          return a.from < b.from;
                      if (a.line != b.line)
                          return a.line < b.line;
                      return a.to < b.to;
                  });
        first = true;
        for (const IncEdge &edge : sorted) {
            json << (first ? "" : ",") << "\n    {\"from\": \""
                 << edge.from << "\", \"to\": \"" << edge.to
                 << "\", \"line\": " << edge.line << "}";
            first = false;
        }
        json << (sorted.empty() ? "]" : "\n  ]") << "\n}\n";
        report.includeGraphJson = json.str();

        std::ostringstream dot;
        dot << "digraph litmus_includes {\n  rankdir=LR;\n";
        for (const IncEdge &edge : sorted) {
            dot << "  \"" << edge.from << "\" -> \"" << edge.to
                << "\";\n";
        }
        dot << "}\n";
        report.includeGraphDot = dot.str();
    }

    // ---- tree-rule pragma resolution --------------------------- //
    // The per-file pass validated pragma syntax and handled per-file
    // rules; here the pragmas naming cross-file rules suppress tree
    // findings, and unused ones become stale-allow. (Pragma carries
    // no file field, so pair each with its file.)
    std::vector<std::pair<std::string, Pragma>> treePragmas;
    for (std::size_t i = 0; i < files.size(); ++i) {
        std::vector<Finding> sink;
        for (const Pragma &pragma :
             collectPragmas(files[i].path, parsed[i].rawLines,
                            parsed[i].strippedLines, "bad-allow",
                            sink)) {
            if (isTreeRule(pragma.rule))
                treePragmas.emplace_back(files[i].path, pragma);
        }
    }

    std::vector<Finding> kept;
    for (Finding &finding : found) {
        if (!ruleEnabled(options, finding.rule))
            continue;
        bool drop = false;
        for (auto &[file, pragma] : treePragmas) {
            if (!pragma.used && file == finding.file &&
                pragma.rule == finding.rule &&
                pragma.targetLine == finding.line) {
                pragma.used = true;
                drop = true;
                ++report.suppressions;
                break;
            }
        }
        if (!drop)
            kept.push_back(std::move(finding));
    }
    for (const auto &[file, pragma] : treePragmas) {
        if (pragma.used || !ruleEnabled(options, pragma.rule))
            continue;
        if (!ruleEnabled(options, kStaleAllow))
            continue;
        kept.push_back(
            {file, pragma.pragmaLine, kStaleAllow,
             "LITMUS-LINT-ALLOW(" + pragma.rule +
                 ") suppresses nothing — remove the stale pragma"});
    }

    report.findings.insert(report.findings.end(), kept.begin(),
                           kept.end());
    for (Finding &advisory : advisories) {
        if (ruleEnabled(options, kIncludeGraph))
            report.advisories.push_back(std::move(advisory));
    }
}

} // namespace litmus::lint::detail
