#!/bin/sh
# Verify the checked-in canonical lock order (and the rest of the lint
# rules) before committing. Wire it up once per clone:
#
#     ln -s ../../tools/lint/check_lock_order.sh .git/hooks/pre-commit
#
# Builds only the dependency-free linter, so the hook stays fast even
# when the simulator build is cold. If the lock graph changed on
# purpose, refresh the file and stage it:
#
#     ./build/tools/litmus_lint --root=. \
#         --lock-order=tools/lint/lock_order.txt --update-lock-order
#     git add tools/lint/lock_order.txt
set -eu

root="$(git rev-parse --show-toplevel)"
cd "$root"

if [ ! -x build/tools/litmus_lint ]; then
    cmake -B build -S . >/dev/null
fi
cmake --build build --target litmus_lint -j"$(nproc)" >/dev/null

exec ./build/tools/litmus_lint --root=. --quiet \
    --lock-order=tools/lint/lock_order.txt
