#include "lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "lint_util.h"
#include "tree_analysis.h"

namespace fs = std::filesystem;

namespace litmus::lint
{

using detail::collectPragmas;
using detail::findToken;
using detail::isIdentChar;
using detail::kAllowMarker;
using detail::lineOfOffset;
using detail::memberQualified;
using detail::Pragma;
using detail::skipSpace;
using detail::splitLines;
using detail::stripCommentsAndStrings;

namespace
{

// ---------------------------------------------------------------- //
// Rule catalog                                                     //
// ---------------------------------------------------------------- //

constexpr const char *kWallClock = "wall-clock";
constexpr const char *kUnseededRng = "unseeded-rng";
constexpr const char *kUnorderedDecl = "unordered-decl";
constexpr const char *kUnorderedIter = "unordered-iter";
constexpr const char *kLayering = "layering";
constexpr const char *kRawParse = "raw-parse";
constexpr const char *kFloatBilling = "float-billing";
constexpr const char *kStaleAllow = "stale-allow";
constexpr const char *kBadAllow = "bad-allow";
constexpr const char *kLockAnnotation = "lock-annotation";
constexpr const char *kLockOrder = "lock-order";
constexpr const char *kIncludeGraph = "include-graph";

const std::vector<RuleInfo> &
catalog()
{
    static const std::vector<RuleInfo> rules = {
        {kWallClock,
         "real-time clock use (system_clock/steady_clock/time()/...) "
         "— simulated time and seeded RNG are the only time sources"},
        {kUnseededRng,
         "rand()/srand()/std::random_device/default_random_engine "
         "anywhere, or std::mt19937 without an explicit seed, outside "
         "common/rng — all randomness flows from the experiment seed"},
        {kUnorderedDecl,
         "unordered_map/unordered_set declared in src/ without an "
         "audit annotation — confirm iteration order can never reach "
         "a report, billing total, or dispatch decision, then ALLOW"},
        {kUnorderedIter,
         "iteration over an unordered container — the visit order is "
         "implementation-defined and must not feed any output"},
        {kLayering,
         "#include edge that goes up the layer DAG common -> sim -> "
         "workload -> core -> cluster -> scenario, or any src/ "
         "include of apps//bench//tools//tests/"},
        {kRawParse,
         "lenient numeric parsing (atof/strtod/stod/...) in src/ — "
         "use the strict whole-string parsers in common/strings.h"},
        {kFloatBilling,
         "`float` in billing/pricing code — money and billed seconds "
         "are double end to end; float truncation breaks 1e-15 "
         "conservation"},
        {kStaleAllow,
         "LITMUS-LINT-ALLOW pragma that suppressed nothing — stale "
         "annotations rot into misdocumentation; remove it (or run "
         "litmus_lint --fix-stale)"},
        {kBadAllow,
         "malformed LITMUS-LINT-ALLOW pragma (unknown rule, missing "
         "reason, or bad syntax)"},
        {kLockAnnotation,
         "cross-file: raw std::mutex/std::shared_mutex member in src/ "
         "(use litmus::Mutex so the lock is a visible capability), or "
         "a member touched under a lock scope that is not "
         "LITMUS_GUARDED_BY that mutex"},
        {kLockOrder,
         "cross-file: nested lock acquisitions whose order forms a "
         "cycle across the tree, or a canonical lock-order file "
         "(tools/lint/lock_order.txt) that no longer matches the "
         "code — refresh with --update-lock-order"},
        {kIncludeGraph,
         "cross-file: circular #include chain among project headers; "
         "the full include DAG is exported with --include-graph, and "
         "unused project includes are reported as advisories"},
    };
    return rules;
}

// ---------------------------------------------------------------- //
// Path classification                                              //
// ---------------------------------------------------------------- //

struct FileClass
{
    bool inSrc = false;
    int layer = -1; ///< rank in the DAG when inSrc, else -1
    std::string basename;
};

/** Layer rank; the DAG is the true dependency order of the tree. */
int
layerRank(const std::string &layer)
{
    static const std::map<std::string, int> ranks = {
        {"common", 0},  {"sim", 1},     {"workload", 2},
        {"core", 3},    {"cluster", 4}, {"scenario", 5},
    };
    const auto it = ranks.find(layer);
    return it == ranks.end() ? -1 : it->second;
}

FileClass
classify(const std::string &path)
{
    FileClass fc;
    fc.inSrc = path.rfind("src/", 0) == 0;
    if (fc.inSrc) {
        const auto slash = path.find('/', 4);
        if (slash != std::string::npos)
            fc.layer = layerRank(path.substr(4, slash - 4));
    }
    const auto slash = path.find_last_of('/');
    fc.basename =
        slash == std::string::npos ? path : path.substr(slash + 1);
    return fc;
}

bool
isRngHome(const std::string &path)
{
    return path == "src/common/rng.h" || path == "src/common/rng.cc";
}

bool
isBillingFile(const std::string &basename)
{
    for (const char *marker :
         {"billing", "pricing", "discount", "poppa", "probe",
          "calibration", "profile_store", "table_io"}) {
        if (basename.find(marker) != std::string::npos)
            return true;
    }
    return false;
}

// ---------------------------------------------------------------- //
// Rules                                                            //
// ---------------------------------------------------------------- //

using Emit = std::vector<Finding> &;

void
checkWallClock(const std::string &path, const std::string &code,
               Emit findings)
{
    for (const char *token :
         {"system_clock", "steady_clock", "high_resolution_clock",
          "gettimeofday", "clock_gettime", "timespec_get"}) {
        for (std::size_t pos = findToken(code, token, 0);
             pos != std::string::npos;
             pos = findToken(code, token, pos + 1)) {
            findings.push_back(
                {path, lineOfOffset(code, pos), kWallClock,
                 std::string(token) +
                     " reads real time — results would change run to "
                     "run; use simulated time (Engine::now)"});
        }
    }
    // time(...) / clock(...) as free or std:: calls; members like
    // task.launchTime() or snapshot.clock are fine.
    for (const char *token : {"time", "clock"}) {
        for (std::size_t pos = findToken(code, token, 0);
             pos != std::string::npos;
             pos = findToken(code, token, pos + 1)) {
            const std::size_t after =
                skipSpace(code, pos + std::string(token).size());
            if (after >= code.size() || code[after] != '(')
                continue;
            if (memberQualified(code, pos))
                continue;
            findings.push_back(
                {path, lineOfOffset(code, pos), kWallClock,
                 std::string(token) +
                     "() reads the libc real-time clock — use "
                     "simulated time (Engine::now)"});
        }
    }
}

void
checkUnseededRng(const std::string &path, const std::string &code,
                 Emit findings)
{
    if (isRngHome(path))
        return;
    struct Banned
    {
        const char *token;
        bool call; ///< must be followed by '('
        const char *why;
    };
    for (const Banned &ban : {
             Banned{"rand", true,
                    "rand() is unseeded global state — draw from a "
                    "litmus::Rng owned by the experiment"},
             Banned{"srand", true,
                    "srand() is global seeding — seed a litmus::Rng "
                    "explicitly instead"},
             Banned{"random_device", false,
                    "std::random_device is nondeterministic by design "
                    "— derive streams from the experiment seed "
                    "(Rng::fork)"},
             Banned{"default_random_engine", false,
                    "std::default_random_engine varies by platform — "
                    "use litmus::Rng"},
             Banned{"random_shuffle", true,
                    "std::random_shuffle uses hidden global state — "
                    "use std::shuffle with a litmus::Rng"},
         }) {
        for (std::size_t pos = findToken(code, ban.token, 0);
             pos != std::string::npos;
             pos = findToken(code, ban.token, pos + 1)) {
            if (ban.call) {
                const std::size_t after = skipSpace(
                    code, pos + std::string(ban.token).size());
                if (after >= code.size() || code[after] != '(')
                    continue;
                if (memberQualified(code, pos))
                    continue;
            }
            findings.push_back(
                {path, lineOfOffset(code, pos), kUnseededRng, ban.why});
        }
    }
    // mt19937 with no initializer on its declaration line is seeded
    // with the fixed default — every run identical to every other
    // experiment's, defeating per-seed replication.
    for (const char *token : {"mt19937", "mt19937_64"}) {
        for (std::size_t pos = findToken(code, token, 0);
             pos != std::string::npos;
             pos = findToken(code, token, pos + 1)) {
            const std::size_t eol = code.find('\n', pos);
            const std::string rest = code.substr(
                pos + std::string(token).size(),
                eol == std::string::npos ? std::string::npos
                                         : eol - pos -
                                               std::string(token).size());
            if (rest.find('(') != std::string::npos ||
                rest.find('{') != std::string::npos)
                continue;
            findings.push_back(
                {path, lineOfOffset(code, pos), kUnseededRng,
                 std::string(token) +
                     " without an explicit seed initializer — seed "
                     "from the experiment (or use litmus::Rng)"});
        }
    }
}

/**
 * Names declared as unordered containers in this file: after the
 * template argument list closes, the next identifier (skipping
 * cv/ref/pointer noise, possibly on the next line) is the variable.
 */
std::vector<std::string>
unorderedNames(const std::string &code)
{
    std::vector<std::string> names;
    for (const char *token : {"unordered_map", "unordered_set"}) {
        for (std::size_t pos = findToken(code, token, 0);
             pos != std::string::npos;
             pos = findToken(code, token, pos + 1)) {
            std::size_t i =
                skipSpace(code, pos + std::string(token).size());
            if (i >= code.size() || code[i] != '<')
                continue;
            int depth = 0;
            for (; i < code.size(); ++i) {
                if (code[i] == '<')
                    ++depth;
                else if (code[i] == '>' && --depth == 0)
                    break;
            }
            if (i >= code.size())
                continue;
            ++i;
            for (;;) {
                i = skipSpace(code, i);
                if (i < code.size() &&
                    (code[i] == '*' || code[i] == '&')) {
                    ++i;
                    continue;
                }
                break;
            }
            std::size_t end = i;
            while (end < code.size() && isIdentChar(code[end]))
                ++end;
            if (end > i) {
                const std::string name = code.substr(i, end - i);
                if (name != "const")
                    names.push_back(name);
            }
        }
    }
    return names;
}

void
checkUnorderedDecl(const std::string &path, const FileClass &fc,
                   const std::string &code, Emit findings)
{
    if (!fc.inSrc)
        return;
    for (const char *token : {"unordered_map", "unordered_set"}) {
        for (std::size_t pos = findToken(code, token, 0);
             pos != std::string::npos;
             pos = findToken(code, token, pos + 1)) {
            // Only the declaration sites (token followed by '<');
            // #include <unordered_map> lines survive stripping but
            // have no template argument list.
            const std::size_t after =
                skipSpace(code, pos + std::string(token).size());
            if (after >= code.size() || code[after] != '<')
                continue;
            findings.push_back(
                {path, lineOfOffset(code, pos), kUnorderedDecl,
                 std::string(token) +
                     " in src/ needs an iteration-order audit — "
                     "annotate LITMUS-LINT-ALLOW(unordered-decl) with "
                     "why its order can never reach a report, billing "
                     "total, or dispatch decision (or use std::map)"});
        }
    }
}

void
checkUnorderedIter(const std::string &path, const std::string &code,
                   Emit findings)
{
    const std::vector<std::string> names = unorderedNames(code);
    if (names.empty())
        return;
    for (const std::string &name : names) {
        for (std::size_t pos = findToken(code, name, 0);
             pos != std::string::npos;
             pos = findToken(code, name, pos + 1)) {
            const std::size_t after = pos + name.size();
            bool iterates = false;
            const std::size_t next = skipSpace(code, after);
            // for (auto &x : name) / (... : m.name) / (... : *name):
            // the name sits in a range-for's range expression — walk
            // left across the expression to the ':' and confirm the
            // head opens with `for (`.
            {
                std::size_t i = pos;
                while (i > 0) {
                    const char c = code[i - 1];
                    if (isIdentChar(c) || c == '.' || c == '*' ||
                        c == '&' || c == '>' || c == '-' ||
                        std::isspace(static_cast<unsigned char>(c))) {
                        --i;
                        continue;
                    }
                    break;
                }
                if (i > 0 && code[i - 1] == ':' &&
                    (i < 2 || code[i - 2] != ':')) {
                    const std::size_t open = code.rfind('(', i - 1);
                    if (open != std::string::npos) {
                        std::size_t kw = open;
                        while (kw > 0 &&
                               std::isspace(static_cast<unsigned char>(
                                   code[kw - 1])))
                            --kw;
                        if (kw >= 3 &&
                            code.compare(kw - 3, 3, "for") == 0 &&
                            (kw == 3 || !isIdentChar(code[kw - 4])))
                            iterates = true;
                    }
                }
            }
            // name.begin() / name->begin() / cbegin / rbegin.
            if (!iterates) {
                std::size_t m = next;
                if (m < code.size() && code[m] == '.')
                    ++m;
                else if (m + 1 < code.size() && code[m] == '-' &&
                         code[m + 1] == '>')
                    m += 2;
                else
                    m = std::string::npos;
                if (m != std::string::npos) {
                    m = skipSpace(code, m);
                    for (const char *fn : {"begin", "cbegin", "rbegin"}) {
                        if (findToken(code, fn, m) == m) {
                            iterates = true;
                            break;
                        }
                    }
                }
            }
            if (iterates) {
                findings.push_back(
                    {path, lineOfOffset(code, pos), kUnorderedIter,
                     "iterating '" + name +
                         "', an unordered container — visit order is "
                         "implementation-defined; iterate a sorted "
                         "copy or prove the fold is order-independent "
                         "and ALLOW"});
            }
        }
    }
}

void
checkLayering(const std::string &path, const FileClass &fc,
              const std::vector<std::string> &rawLines, Emit findings)
{
    static const std::vector<std::string> layerNames = {
        "common", "sim", "workload", "core", "cluster", "scenario"};
    if (!fc.inSrc)
        return;
    for (const detail::IncludeLine &inc : detail::parseIncludes(rawLines)) {
        for (const char *outside :
             {"apps/", "bench/", "tools/", "tests/"}) {
            if (inc.target.rfind(outside, 0) == 0) {
                findings.push_back(
                    {path, inc.line, kLayering,
                     "src/ must not include " + std::string(outside) +
                         " — the library cannot depend on its "
                         "consumers"});
            }
        }
        const auto slash = inc.target.find('/');
        if (slash != std::string::npos && fc.layer >= 0) {
            const int targetLayer =
                layerRank(inc.target.substr(0, slash));
            if (targetLayer > fc.layer) {
                findings.push_back(
                    {path, inc.line, kLayering,
                     "upward include: " + layerNames[fc.layer] +
                         "/ must not include " + inc.target +
                         " (DAG: common -> sim -> workload -> "
                         "core -> cluster -> scenario)"});
            }
        }
    }
}

void
checkRawParse(const std::string &path, const FileClass &fc,
              const std::string &code, Emit findings)
{
    if (!fc.inSrc)
        return;
    for (const char *token :
         {"atof", "atoi", "atol", "atoll", "strtod", "strtof",
          "strtol", "strtoll", "strtoul", "strtoull", "stod", "stof",
          "stoi", "stol", "stoll", "stoul", "stoull", "sscanf"}) {
        for (std::size_t pos = findToken(code, token, 0);
             pos != std::string::npos;
             pos = findToken(code, token, pos + 1)) {
            const std::size_t after =
                skipSpace(code, pos + std::string(token).size());
            if (after >= code.size() || code[after] != '(')
                continue;
            if (memberQualified(code, pos))
                continue;
            findings.push_back(
                {path, lineOfOffset(code, pos), kRawParse,
                 std::string(token) +
                     "() accepts trailing junk, partial parses, or "
                     "inf/nan — use parseLongStrict/parseDoubleStrict "
                     "from common/strings.h"});
        }
    }
}

void
checkFloatBilling(const std::string &path, const FileClass &fc,
                  const std::string &code, Emit findings)
{
    if (!fc.inSrc || !isBillingFile(fc.basename))
        return;
    for (std::size_t pos = findToken(code, "float", 0);
         pos != std::string::npos;
         pos = findToken(code, "float", pos + 1)) {
        findings.push_back(
            {path, lineOfOffset(code, pos), kFloatBilling,
             "`float` in billing/pricing code — the currency type is "
             "double end to end (float rounding breaks conservation)"});
    }
}

bool
ruleEnabled(const Options &options, const std::string &rule)
{
    if (options.rules.empty())
        return true;
    return std::find(options.rules.begin(), options.rules.end(),
                     rule) != options.rules.end();
}

void
sortFindings(std::vector<Finding> &findings)
{
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
}

} // namespace

// ---------------------------------------------------------------- //
// Public entry points                                              //
// ---------------------------------------------------------------- //

const std::vector<RuleInfo> &
ruleCatalog()
{
    return catalog();
}

bool
knownRule(const std::string &name)
{
    for (const RuleInfo &rule : catalog()) {
        if (rule.name == name)
            return true;
    }
    return false;
}

bool
isTreeRule(const std::string &name)
{
    return name == kLockAnnotation || name == kLockOrder ||
           name == kIncludeGraph;
}

std::vector<Finding>
lintContent(const std::string &path, const std::string &content,
            const Options &options, int *suppressions)
{
    const FileClass fc = classify(path);
    const std::string code = stripCommentsAndStrings(content);
    const std::vector<std::string> rawLines = splitLines(content);
    const std::vector<std::string> strippedLines = splitLines(code);

    std::vector<Finding> findings;
    std::vector<Pragma> pragmas = collectPragmas(
        path, rawLines, strippedLines, kBadAllow, findings);

    if (ruleEnabled(options, kWallClock))
        checkWallClock(path, code, findings);
    if (ruleEnabled(options, kUnseededRng))
        checkUnseededRng(path, code, findings);
    if (ruleEnabled(options, kUnorderedDecl))
        checkUnorderedDecl(path, fc, code, findings);
    if (ruleEnabled(options, kUnorderedIter))
        checkUnorderedIter(path, code, findings);
    if (ruleEnabled(options, kLayering))
        checkLayering(path, fc, rawLines, findings);
    if (ruleEnabled(options, kRawParse))
        checkRawParse(path, fc, code, findings);
    if (ruleEnabled(options, kFloatBilling))
        checkFloatBilling(path, fc, code, findings);

    // Suppress: each pragma eats at most one finding of its rule on
    // its target line (first by position), so a line with two
    // distinct violations needs two pragmas.
    std::vector<Finding> kept;
    int suppressed = 0;
    for (Finding &finding : findings) {
        bool drop = false;
        for (Pragma &pragma : pragmas) {
            if (!pragma.used && pragma.rule == finding.rule &&
                pragma.targetLine == finding.line) {
                pragma.used = true;
                drop = true;
                ++suppressed;
                break;
            }
        }
        if (!drop)
            kept.push_back(std::move(finding));
    }
    for (const Pragma &pragma : pragmas) {
        // Pragmas naming a cross-file rule belong to the tree pass,
        // which re-collects them and judges staleness itself; a
        // single-file scan cannot know whether they are used.
        if (isTreeRule(pragma.rule))
            continue;
        if (!pragma.used && ruleEnabled(options, pragma.rule)) {
            kept.push_back(
                {path, pragma.pragmaLine, kStaleAllow,
                 "LITMUS-LINT-ALLOW(" + pragma.rule +
                     ") suppresses nothing — remove the stale pragma"});
        }
    }
    if (suppressions)
        *suppressions += suppressed;

    std::sort(kept.begin(), kept.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return kept;
}

Report
lintFiles(const std::vector<SourceFile> &files, const Options &options)
{
    for (const std::string &rule : options.rules) {
        if (!knownRule(rule))
            throw std::runtime_error("unknown rule '" + rule + "'");
    }

    Report report;
    for (const SourceFile &file : files) {
        ++report.filesScanned;
        std::vector<Finding> findings = lintContent(
            file.path, file.content, options, &report.suppressions);
        report.findings.insert(report.findings.end(),
                               findings.begin(), findings.end());
    }

    detail::runTreeAnalysis(files, options, report);

    sortFindings(report.findings);
    sortFindings(report.advisories);
    return report;
}

Report
runLint(const Options &options)
{
    const fs::path root(options.root);
    if (!fs::is_directory(root))
        throw std::runtime_error("lint root '" + options.root +
                                 "' is not a directory");

    std::vector<std::string> paths;
    for (const std::string &dir : options.dirs) {
        const fs::path base = root / dir;
        if (!fs::is_directory(base))
            continue;
        for (const auto &entry :
             fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            if (ext != ".h" && ext != ".cc" && ext != ".cpp" &&
                ext != ".hpp")
                continue;
            const std::string rel =
                fs::relative(entry.path(), root).generic_string();
            // The linter's own sources spell every banned token and
            // the pragma grammar literally (rule tables, messages,
            // docs); they are covered by their unit tests instead of
            // by self-scanning.
            if (rel.rfind("tools/lint/", 0) == 0)
                continue;
            paths.push_back(rel);
        }
    }
    // Directory iteration order is filesystem-dependent; the report
    // must not be.
    std::sort(paths.begin(), paths.end());

    std::vector<SourceFile> files;
    files.reserve(paths.size());
    for (const std::string &path : paths) {
        std::ifstream in(root / path, std::ios::binary);
        if (!in)
            throw std::runtime_error("cannot read '" + path + "'");
        std::ostringstream buffer;
        buffer << in.rdbuf();
        files.push_back({path, buffer.str()});
    }

    Options resolved = options;
    if (!resolved.lockOrderFile.empty() &&
        resolved.lockOrderExpected.empty()) {
        std::ifstream in(root / resolved.lockOrderFile,
                         std::ios::binary);
        if (in) {
            std::ostringstream buffer;
            buffer << in.rdbuf();
            resolved.lockOrderExpected = buffer.str();
        }
        // Unreadable/missing stays empty: the tree pass reports the
        // mismatch as a lock-order finding rather than aborting.
    }

    return lintFiles(files, resolved);
}

std::string
stripStalePragmas(const std::string &content,
                  const std::vector<int> &pragmaLines)
{
    const std::string code = stripCommentsAndStrings(content);
    const std::vector<std::string> rawLines = splitLines(content);
    const std::vector<std::string> strippedLines = splitLines(code);

    std::string out;
    out.reserve(content.size());
    for (std::size_t i = 0; i < rawLines.size(); ++i) {
        const int lineNo = static_cast<int>(i) + 1;
        const std::string &line = rawLines[i];
        const bool last = i + 1 == rawLines.size();
        const bool listed =
            std::find(pragmaLines.begin(), pragmaLines.end(),
                      lineNo) != pragmaLines.end();
        const std::size_t marker = line.find(kAllowMarker);
        if (!listed || marker == std::string::npos) {
            out += line;
            if (!last)
                out += '\n';
            continue;
        }
        // Code on the line (outside comments/strings) means the
        // pragma is a trailing comment: snip from its `//` to the
        // end, keeping the code. A bare pragma line is dropped whole.
        const std::string &codeLine = strippedLines[i];
        const bool bare =
            std::all_of(codeLine.begin(), codeLine.end(), [](char c) {
                return std::isspace(static_cast<unsigned char>(c));
            });
        if (bare)
            continue; // drop the line (and its newline)
        std::size_t cut = line.rfind("//", marker);
        if (cut == std::string::npos)
            cut = marker; // malformed; snip conservatively
        while (cut > 0 &&
               (line[cut - 1] == ' ' || line[cut - 1] == '\t'))
            --cut;
        out += line.substr(0, cut);
        if (!last)
            out += '\n';
    }
    return out;
}

std::string
toJson(const Report &report)
{
    const auto escape = [](const std::string &text) {
        std::string out;
        out.reserve(text.size());
        for (char c : text) {
            switch (c) {
            case '"':
                out += "\\\"";
                break;
            case '\\':
                out += "\\\\";
                break;
            case '\n':
                out += "\\n";
                break;
            case '\t':
                out += "\\t";
                break;
            default:
                out += c;
            }
        }
        return out;
    };
    const auto list = [&](const std::vector<Finding> &findings,
                          std::ostringstream &out) {
        for (std::size_t i = 0; i < findings.size(); ++i) {
            const Finding &f = findings[i];
            out << (i == 0 ? "" : ",") << "\n    {\"file\": \""
                << escape(f.file) << "\", \"line\": " << f.line
                << ", \"rule\": \"" << escape(f.rule)
                << "\", \"message\": \"" << escape(f.message) << "\"}";
        }
        out << (findings.empty() ? "]" : "\n  ]");
    };
    std::ostringstream out;
    out << "{\n  \"files_scanned\": " << report.filesScanned
        << ",\n  \"suppressions\": " << report.suppressions
        << ",\n  \"finding_count\": " << report.findings.size()
        << ",\n  \"findings\": [";
    list(report.findings, out);
    out << ",\n  \"advisory_count\": " << report.advisories.size()
        << ",\n  \"advisories\": [";
    list(report.advisories, out);
    out << "\n}\n";
    return out.str();
}

} // namespace litmus::lint
