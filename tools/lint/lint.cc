#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>

namespace fs = std::filesystem;

namespace litmus::lint
{

namespace
{

// ---------------------------------------------------------------- //
// Rule catalog                                                     //
// ---------------------------------------------------------------- //

constexpr const char *kWallClock = "wall-clock";
constexpr const char *kUnseededRng = "unseeded-rng";
constexpr const char *kUnorderedDecl = "unordered-decl";
constexpr const char *kUnorderedIter = "unordered-iter";
constexpr const char *kLayering = "layering";
constexpr const char *kRawParse = "raw-parse";
constexpr const char *kFloatBilling = "float-billing";
constexpr const char *kStaleAllow = "stale-allow";
constexpr const char *kBadAllow = "bad-allow";

const std::vector<RuleInfo> &
catalog()
{
    static const std::vector<RuleInfo> rules = {
        {kWallClock,
         "real-time clock use (system_clock/steady_clock/time()/...) "
         "— simulated time and seeded RNG are the only time sources"},
        {kUnseededRng,
         "rand()/srand()/std::random_device/default_random_engine "
         "anywhere, or std::mt19937 without an explicit seed, outside "
         "common/rng — all randomness flows from the experiment seed"},
        {kUnorderedDecl,
         "unordered_map/unordered_set declared in src/ without an "
         "audit annotation — confirm iteration order can never reach "
         "a report, billing total, or dispatch decision, then ALLOW"},
        {kUnorderedIter,
         "iteration over an unordered container — the visit order is "
         "implementation-defined and must not feed any output"},
        {kLayering,
         "#include edge that goes up the layer DAG common -> sim -> "
         "workload -> core -> cluster -> scenario, or any src/ "
         "include of apps//bench//tools//tests/"},
        {kRawParse,
         "lenient numeric parsing (atof/strtod/stod/...) in src/ — "
         "use the strict whole-string parsers in common/strings.h"},
        {kFloatBilling,
         "`float` in billing/pricing code — money and billed seconds "
         "are double end to end; float truncation breaks 1e-15 "
         "conservation"},
        {kStaleAllow,
         "LITMUS-LINT-ALLOW pragma that suppressed nothing — stale "
         "annotations rot into misdocumentation; remove it"},
        {kBadAllow,
         "malformed LITMUS-LINT-ALLOW pragma (unknown rule, missing "
         "reason, or bad syntax)"},
    };
    return rules;
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Blank out comments and string/char literals, preserving length and
 * newlines so offsets and line numbers in the stripped buffer match
 * the raw file. Rules then scan real code only; banned tokens inside
 * comments or log strings never fire.
 */
std::string
stripCommentsAndStrings(const std::string &raw)
{
    std::string out(raw);
    enum class State
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
    };
    State state = State::Code;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        const char c = raw[i];
        const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
        switch (state) {
        case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                out[i] = ' ';
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                out[i] = ' ';
            } else if (c == '"') {
                state = State::String;
            } else if (c == '\'') {
                state = State::Char;
            }
            break;
        case State::LineComment:
            if (c == '\n')
                state = State::Code;
            else
                out[i] = ' ';
            break;
        case State::BlockComment:
            if (c == '*' && next == '/') {
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
                state = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        case State::String:
        case State::Char: {
            const char quote = state == State::String ? '"' : '\'';
            if (c == '\\' && next != '\0') {
                out[i] = ' ';
                if (next != '\n')
                    out[i + 1] = ' ';
                ++i;
            } else if (c == quote) {
                state = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        }
        }
    }
    return out;
}

/** Split into lines (index 0 = line 1), keeping empty lines. */
std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string::size_type start = 0;
    while (start <= text.size()) {
        const auto nl = text.find('\n', start);
        if (nl == std::string::npos) {
            lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

int
lineOfOffset(const std::string &text, std::size_t offset)
{
    return 1 + static_cast<int>(
                   std::count(text.begin(), text.begin() + offset, '\n'));
}

/**
 * Find the next occurrence of @p token as a whole identifier at or
 * after @p from; npos when absent.
 */
std::size_t
findToken(const std::string &code, const std::string &token,
          std::size_t from)
{
    std::size_t pos = code.find(token, from);
    while (pos != std::string::npos) {
        const bool beginOk = pos == 0 || !isIdentChar(code[pos - 1]);
        const std::size_t end = pos + token.size();
        const bool endOk = end >= code.size() || !isIdentChar(code[end]);
        if (beginOk && endOk)
            return pos;
        pos = code.find(token, pos + 1);
    }
    return std::string::npos;
}

std::size_t
skipSpace(const std::string &code, std::size_t pos)
{
    while (pos < code.size() &&
           std::isspace(static_cast<unsigned char>(code[pos])))
        ++pos;
    return pos;
}

/** True when the identifier ending just before @p pos is qualified by
 *  `.`, `->`, or a non-std `::` — i.e. a member or foreign name. */
bool
memberQualified(const std::string &code, std::size_t pos)
{
    std::size_t i = pos;
    while (i > 0 &&
           std::isspace(static_cast<unsigned char>(code[i - 1])))
        --i;
    if (i == 0)
        return false;
    if (code[i - 1] == '.')
        return true;
    if (i >= 2 && code[i - 2] == '-' && code[i - 1] == '>')
        return true;
    if (i >= 2 && code[i - 2] == ':' && code[i - 1] == ':') {
        // std::time / std::clock are still the banned libc calls.
        std::size_t q = i - 2;
        std::size_t end = q;
        while (q > 0 && isIdentChar(code[q - 1]))
            --q;
        return code.compare(q, end - q, "std") != 0;
    }
    return false;
}

// ---------------------------------------------------------------- //
// Path classification                                              //
// ---------------------------------------------------------------- //

struct FileClass
{
    bool inSrc = false;
    int layer = -1; ///< rank in the DAG when inSrc, else -1
    std::string basename;
};

/** Layer rank; the DAG is the true dependency order of the tree. */
int
layerRank(const std::string &layer)
{
    static const std::map<std::string, int> ranks = {
        {"common", 0},  {"sim", 1},     {"workload", 2},
        {"core", 3},    {"cluster", 4}, {"scenario", 5},
    };
    const auto it = ranks.find(layer);
    return it == ranks.end() ? -1 : it->second;
}

FileClass
classify(const std::string &path)
{
    FileClass fc;
    fc.inSrc = path.rfind("src/", 0) == 0;
    if (fc.inSrc) {
        const auto slash = path.find('/', 4);
        if (slash != std::string::npos)
            fc.layer = layerRank(path.substr(4, slash - 4));
    }
    const auto slash = path.find_last_of('/');
    fc.basename =
        slash == std::string::npos ? path : path.substr(slash + 1);
    return fc;
}

bool
isRngHome(const std::string &path)
{
    return path == "src/common/rng.h" || path == "src/common/rng.cc";
}

bool
isBillingFile(const std::string &basename)
{
    for (const char *marker :
         {"billing", "pricing", "discount", "poppa", "probe",
          "calibration", "profile_store", "table_io"}) {
        if (basename.find(marker) != std::string::npos)
            return true;
    }
    return false;
}

// ---------------------------------------------------------------- //
// Suppression pragmas                                              //
// ---------------------------------------------------------------- //

struct Pragma
{
    int targetLine = 0; ///< line whose findings it may suppress
    int pragmaLine = 0; ///< where the pragma itself sits
    std::string rule;
    bool used = false;
};

constexpr const char *kAllowMarker = "LITMUS-LINT-ALLOW";

/**
 * Parse the pragmas in @p raw. A pragma on a line with code guards
 * that line; a pragma alone on its line guards the next line.
 * Malformed pragmas become findings immediately.
 */
std::vector<Pragma>
collectPragmas(const std::string &path,
               const std::vector<std::string> &rawLines,
               const std::vector<std::string> &strippedLines,
               std::vector<Finding> &findings)
{
    std::vector<Pragma> pragmas;
    for (std::size_t i = 0; i < rawLines.size(); ++i) {
        const std::string &line = rawLines[i];
        const int lineNo = static_cast<int>(i) + 1;
        std::size_t pos = line.find(kAllowMarker);
        while (pos != std::string::npos) {
            const std::size_t after = pos + std::string(kAllowMarker).size();
            const auto bad = [&](const std::string &why) {
                findings.push_back(
                    {path, lineNo, kBadAllow,
                     "malformed " + std::string(kAllowMarker) +
                         " pragma: " + why +
                         " — expected // LITMUS-LINT-ALLOW(rule): "
                         "reason"});
            };
            if (after >= line.size() || line[after] != '(') {
                bad("missing '(rule)'");
                break;
            }
            const auto close = line.find(')', after);
            if (close == std::string::npos) {
                bad("unterminated '(rule'");
                break;
            }
            const std::string rule =
                line.substr(after + 1, close - after - 1);
            if (!knownRule(rule)) {
                bad("unknown rule '" + rule + "'");
                break;
            }
            std::size_t rest = close + 1;
            if (rest >= line.size() || line[rest] != ':') {
                bad("missing ': reason'");
                break;
            }
            ++rest;
            while (rest < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[rest])))
                ++rest;
            if (rest >= line.size()) {
                bad("empty reason — the reason is the audit record");
                break;
            }
            Pragma pragma;
            pragma.pragmaLine = lineNo;
            pragma.rule = rule;
            // Alone on the line (no code survives stripping): guards
            // the next line. Otherwise guards its own line.
            const std::string &code = strippedLines[i];
            const bool bare =
                std::all_of(code.begin(), code.end(), [](char c) {
                    return std::isspace(static_cast<unsigned char>(c));
                });
            pragma.targetLine = bare ? lineNo + 1 : lineNo;
            pragmas.push_back(pragma);
            pos = line.find(kAllowMarker, close);
        }
    }
    return pragmas;
}

// ---------------------------------------------------------------- //
// Rules                                                            //
// ---------------------------------------------------------------- //

using Emit = std::vector<Finding> &;

void
checkWallClock(const std::string &path, const std::string &code,
               Emit findings)
{
    for (const char *token :
         {"system_clock", "steady_clock", "high_resolution_clock",
          "gettimeofday", "clock_gettime", "timespec_get"}) {
        for (std::size_t pos = findToken(code, token, 0);
             pos != std::string::npos;
             pos = findToken(code, token, pos + 1)) {
            findings.push_back(
                {path, lineOfOffset(code, pos), kWallClock,
                 std::string(token) +
                     " reads real time — results would change run to "
                     "run; use simulated time (Engine::now)"});
        }
    }
    // time(...) / clock(...) as free or std:: calls; members like
    // task.launchTime() or snapshot.clock are fine.
    for (const char *token : {"time", "clock"}) {
        for (std::size_t pos = findToken(code, token, 0);
             pos != std::string::npos;
             pos = findToken(code, token, pos + 1)) {
            const std::size_t after =
                skipSpace(code, pos + std::string(token).size());
            if (after >= code.size() || code[after] != '(')
                continue;
            if (memberQualified(code, pos))
                continue;
            findings.push_back(
                {path, lineOfOffset(code, pos), kWallClock,
                 std::string(token) +
                     "() reads the libc real-time clock — use "
                     "simulated time (Engine::now)"});
        }
    }
}

void
checkUnseededRng(const std::string &path, const std::string &code,
                 Emit findings)
{
    if (isRngHome(path))
        return;
    struct Banned
    {
        const char *token;
        bool call; ///< must be followed by '('
        const char *why;
    };
    for (const Banned &ban : {
             Banned{"rand", true,
                    "rand() is unseeded global state — draw from a "
                    "litmus::Rng owned by the experiment"},
             Banned{"srand", true,
                    "srand() is global seeding — seed a litmus::Rng "
                    "explicitly instead"},
             Banned{"random_device", false,
                    "std::random_device is nondeterministic by design "
                    "— derive streams from the experiment seed "
                    "(Rng::fork)"},
             Banned{"default_random_engine", false,
                    "std::default_random_engine varies by platform — "
                    "use litmus::Rng"},
             Banned{"random_shuffle", true,
                    "std::random_shuffle uses hidden global state — "
                    "use std::shuffle with a litmus::Rng"},
         }) {
        for (std::size_t pos = findToken(code, ban.token, 0);
             pos != std::string::npos;
             pos = findToken(code, ban.token, pos + 1)) {
            if (ban.call) {
                const std::size_t after = skipSpace(
                    code, pos + std::string(ban.token).size());
                if (after >= code.size() || code[after] != '(')
                    continue;
                if (memberQualified(code, pos))
                    continue;
            }
            findings.push_back(
                {path, lineOfOffset(code, pos), kUnseededRng, ban.why});
        }
    }
    // mt19937 with no initializer on its declaration line is seeded
    // with the fixed default — every run identical to every other
    // experiment's, defeating per-seed replication.
    for (const char *token : {"mt19937", "mt19937_64"}) {
        for (std::size_t pos = findToken(code, token, 0);
             pos != std::string::npos;
             pos = findToken(code, token, pos + 1)) {
            const std::size_t eol = code.find('\n', pos);
            const std::string rest = code.substr(
                pos + std::string(token).size(),
                eol == std::string::npos ? std::string::npos
                                         : eol - pos -
                                               std::string(token).size());
            if (rest.find('(') != std::string::npos ||
                rest.find('{') != std::string::npos)
                continue;
            findings.push_back(
                {path, lineOfOffset(code, pos), kUnseededRng,
                 std::string(token) +
                     " without an explicit seed initializer — seed "
                     "from the experiment (or use litmus::Rng)"});
        }
    }
}

/**
 * Names declared as unordered containers in this file: after the
 * template argument list closes, the next identifier (skipping
 * cv/ref/pointer noise, possibly on the next line) is the variable.
 */
std::vector<std::string>
unorderedNames(const std::string &code)
{
    std::vector<std::string> names;
    for (const char *token : {"unordered_map", "unordered_set"}) {
        for (std::size_t pos = findToken(code, token, 0);
             pos != std::string::npos;
             pos = findToken(code, token, pos + 1)) {
            std::size_t i =
                skipSpace(code, pos + std::string(token).size());
            if (i >= code.size() || code[i] != '<')
                continue;
            int depth = 0;
            for (; i < code.size(); ++i) {
                if (code[i] == '<')
                    ++depth;
                else if (code[i] == '>' && --depth == 0)
                    break;
            }
            if (i >= code.size())
                continue;
            ++i;
            for (;;) {
                i = skipSpace(code, i);
                if (i < code.size() &&
                    (code[i] == '*' || code[i] == '&')) {
                    ++i;
                    continue;
                }
                break;
            }
            std::size_t end = i;
            while (end < code.size() && isIdentChar(code[end]))
                ++end;
            if (end > i) {
                const std::string name = code.substr(i, end - i);
                if (name != "const")
                    names.push_back(name);
            }
        }
    }
    return names;
}

void
checkUnorderedDecl(const std::string &path, const FileClass &fc,
                   const std::string &code, Emit findings)
{
    if (!fc.inSrc)
        return;
    for (const char *token : {"unordered_map", "unordered_set"}) {
        for (std::size_t pos = findToken(code, token, 0);
             pos != std::string::npos;
             pos = findToken(code, token, pos + 1)) {
            // Only the declaration sites (token followed by '<');
            // #include <unordered_map> lines survive stripping but
            // have no template argument list.
            const std::size_t after =
                skipSpace(code, pos + std::string(token).size());
            if (after >= code.size() || code[after] != '<')
                continue;
            findings.push_back(
                {path, lineOfOffset(code, pos), kUnorderedDecl,
                 std::string(token) +
                     " in src/ needs an iteration-order audit — "
                     "annotate LITMUS-LINT-ALLOW(unordered-decl) with "
                     "why its order can never reach a report, billing "
                     "total, or dispatch decision (or use std::map)"});
        }
    }
}

void
checkUnorderedIter(const std::string &path, const std::string &code,
                   Emit findings)
{
    const std::vector<std::string> names = unorderedNames(code);
    if (names.empty())
        return;
    for (const std::string &name : names) {
        for (std::size_t pos = findToken(code, name, 0);
             pos != std::string::npos;
             pos = findToken(code, name, pos + 1)) {
            const std::size_t after = pos + name.size();
            bool iterates = false;
            const std::size_t next = skipSpace(code, after);
            // for (auto &x : name) / (... : m.name) / (... : *name):
            // the name sits in a range-for's range expression — walk
            // left across the expression to the ':' and confirm the
            // head opens with `for (`.
            {
                std::size_t i = pos;
                while (i > 0) {
                    const char c = code[i - 1];
                    if (isIdentChar(c) || c == '.' || c == '*' ||
                        c == '&' || c == '>' || c == '-' ||
                        std::isspace(static_cast<unsigned char>(c))) {
                        --i;
                        continue;
                    }
                    break;
                }
                if (i > 0 && code[i - 1] == ':' &&
                    (i < 2 || code[i - 2] != ':')) {
                    const std::size_t open = code.rfind('(', i - 1);
                    if (open != std::string::npos) {
                        std::size_t kw = open;
                        while (kw > 0 &&
                               std::isspace(static_cast<unsigned char>(
                                   code[kw - 1])))
                            --kw;
                        if (kw >= 3 &&
                            code.compare(kw - 3, 3, "for") == 0 &&
                            (kw == 3 || !isIdentChar(code[kw - 4])))
                            iterates = true;
                    }
                }
            }
            // name.begin() / name->begin() / cbegin / rbegin.
            if (!iterates) {
                std::size_t m = next;
                if (m < code.size() && code[m] == '.')
                    ++m;
                else if (m + 1 < code.size() && code[m] == '-' &&
                         code[m + 1] == '>')
                    m += 2;
                else
                    m = std::string::npos;
                if (m != std::string::npos) {
                    m = skipSpace(code, m);
                    for (const char *fn : {"begin", "cbegin", "rbegin"}) {
                        if (findToken(code, fn, m) == m) {
                            iterates = true;
                            break;
                        }
                    }
                }
            }
            if (iterates) {
                findings.push_back(
                    {path, lineOfOffset(code, pos), kUnorderedIter,
                     "iterating '" + name +
                         "', an unordered container — visit order is "
                         "implementation-defined; iterate a sorted "
                         "copy or prove the fold is order-independent "
                         "and ALLOW"});
            }
        }
    }
}

void
checkLayering(const std::string &path, const FileClass &fc,
              const std::vector<std::string> &rawLines, Emit findings)
{
    static const std::vector<std::string> layerNames = {
        "common", "sim", "workload", "core", "cluster", "scenario"};
    for (std::size_t i = 0; i < rawLines.size(); ++i) {
        const std::string &line = rawLines[i];
        const std::size_t hash = line.find_first_not_of(" \t");
        if (hash == std::string::npos || line[hash] != '#')
            continue;
        std::size_t p = skipSpace(line, hash + 1);
        if (line.compare(p, 7, "include") != 0)
            continue;
        p = skipSpace(line, p + 7);
        if (p >= line.size() || line[p] != '"')
            continue;
        const std::size_t close = line.find('"', p + 1);
        if (close == std::string::npos)
            continue;
        const std::string target = line.substr(p + 1, close - p - 1);
        const int lineNo = static_cast<int>(i) + 1;

        if (fc.inSrc) {
            for (const char *outside :
                 {"apps/", "bench/", "tools/", "tests/"}) {
                if (target.rfind(outside, 0) == 0) {
                    findings.push_back(
                        {path, lineNo, kLayering,
                         "src/ must not include " +
                             std::string(outside) +
                             " — the library cannot depend on its "
                             "consumers"});
                }
            }
            const auto slash = target.find('/');
            if (slash != std::string::npos && fc.layer >= 0) {
                const int targetLayer =
                    layerRank(target.substr(0, slash));
                if (targetLayer > fc.layer) {
                    findings.push_back(
                        {path, lineNo, kLayering,
                         "upward include: " + layerNames[fc.layer] +
                             "/ must not include " + target +
                             " (DAG: common -> sim -> workload -> "
                             "core -> cluster -> scenario)"});
                }
            }
        }
    }
}

void
checkRawParse(const std::string &path, const FileClass &fc,
              const std::string &code, Emit findings)
{
    if (!fc.inSrc)
        return;
    for (const char *token :
         {"atof", "atoi", "atol", "atoll", "strtod", "strtof",
          "strtol", "strtoll", "strtoul", "strtoull", "stod", "stof",
          "stoi", "stol", "stoll", "stoul", "stoull", "sscanf"}) {
        for (std::size_t pos = findToken(code, token, 0);
             pos != std::string::npos;
             pos = findToken(code, token, pos + 1)) {
            const std::size_t after =
                skipSpace(code, pos + std::string(token).size());
            if (after >= code.size() || code[after] != '(')
                continue;
            if (memberQualified(code, pos))
                continue;
            findings.push_back(
                {path, lineOfOffset(code, pos), kRawParse,
                 std::string(token) +
                     "() accepts trailing junk, partial parses, or "
                     "inf/nan — use parseLongStrict/parseDoubleStrict "
                     "from common/strings.h"});
        }
    }
}

void
checkFloatBilling(const std::string &path, const FileClass &fc,
                  const std::string &code, Emit findings)
{
    if (!fc.inSrc || !isBillingFile(fc.basename))
        return;
    for (std::size_t pos = findToken(code, "float", 0);
         pos != std::string::npos;
         pos = findToken(code, "float", pos + 1)) {
        findings.push_back(
            {path, lineOfOffset(code, pos), kFloatBilling,
             "`float` in billing/pricing code — the currency type is "
             "double end to end (float rounding breaks conservation)"});
    }
}

bool
ruleEnabled(const Options &options, const std::string &rule)
{
    if (options.rules.empty())
        return true;
    return std::find(options.rules.begin(), options.rules.end(),
                     rule) != options.rules.end();
}

} // namespace

// ---------------------------------------------------------------- //
// Public entry points                                              //
// ---------------------------------------------------------------- //

const std::vector<RuleInfo> &
ruleCatalog()
{
    return catalog();
}

bool
knownRule(const std::string &name)
{
    for (const RuleInfo &rule : catalog()) {
        if (rule.name == name)
            return true;
    }
    return false;
}

std::vector<Finding>
lintContent(const std::string &path, const std::string &content,
            const Options &options, int *suppressions)
{
    const FileClass fc = classify(path);
    const std::string code = stripCommentsAndStrings(content);
    const std::vector<std::string> rawLines = splitLines(content);
    const std::vector<std::string> strippedLines = splitLines(code);

    std::vector<Finding> findings;
    std::vector<Pragma> pragmas =
        collectPragmas(path, rawLines, strippedLines, findings);

    if (ruleEnabled(options, kWallClock))
        checkWallClock(path, code, findings);
    if (ruleEnabled(options, kUnseededRng))
        checkUnseededRng(path, code, findings);
    if (ruleEnabled(options, kUnorderedDecl))
        checkUnorderedDecl(path, fc, code, findings);
    if (ruleEnabled(options, kUnorderedIter))
        checkUnorderedIter(path, code, findings);
    if (ruleEnabled(options, kLayering))
        checkLayering(path, fc, rawLines, findings);
    if (ruleEnabled(options, kRawParse))
        checkRawParse(path, fc, code, findings);
    if (ruleEnabled(options, kFloatBilling))
        checkFloatBilling(path, fc, code, findings);

    // Suppress: each pragma eats at most one finding of its rule on
    // its target line (first by position), so a line with two
    // distinct violations needs two pragmas.
    std::vector<Finding> kept;
    int suppressed = 0;
    for (Finding &finding : findings) {
        bool drop = false;
        for (Pragma &pragma : pragmas) {
            if (!pragma.used && pragma.rule == finding.rule &&
                pragma.targetLine == finding.line) {
                pragma.used = true;
                drop = true;
                ++suppressed;
                break;
            }
        }
        if (!drop)
            kept.push_back(std::move(finding));
    }
    for (const Pragma &pragma : pragmas) {
        if (!pragma.used && ruleEnabled(options, pragma.rule)) {
            kept.push_back(
                {path, pragma.pragmaLine, kStaleAllow,
                 "LITMUS-LINT-ALLOW(" + pragma.rule +
                     ") suppresses nothing — remove the stale pragma"});
        }
    }
    if (suppressions)
        *suppressions += suppressed;

    std::sort(kept.begin(), kept.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return kept;
}

Report
runLint(const Options &options)
{
    for (const std::string &rule : options.rules) {
        if (!knownRule(rule))
            throw std::runtime_error("unknown rule '" + rule + "'");
    }
    const fs::path root(options.root);
    if (!fs::is_directory(root))
        throw std::runtime_error("lint root '" + options.root +
                                 "' is not a directory");

    Report report;
    std::vector<std::string> files;
    for (const std::string &dir : options.dirs) {
        const fs::path base = root / dir;
        if (!fs::is_directory(base))
            continue;
        for (const auto &entry :
             fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            if (ext != ".h" && ext != ".cc" && ext != ".cpp" &&
                ext != ".hpp")
                continue;
            const std::string rel =
                fs::relative(entry.path(), root).generic_string();
            // The linter's own sources spell every banned token and
            // the pragma grammar literally (rule tables, messages,
            // docs); they are covered by their unit tests instead of
            // by self-scanning.
            if (rel.rfind("tools/lint/", 0) == 0)
                continue;
            files.push_back(rel);
        }
    }
    // Directory iteration order is filesystem-dependent; the report
    // must not be.
    std::sort(files.begin(), files.end());

    for (const std::string &file : files) {
        std::ifstream in(root / file, std::ios::binary);
        if (!in)
            throw std::runtime_error("cannot read '" + file + "'");
        std::ostringstream buffer;
        buffer << in.rdbuf();
        ++report.filesScanned;
        std::vector<Finding> findings = lintContent(
            file, buffer.str(), options, &report.suppressions);
        report.findings.insert(report.findings.end(),
                               findings.begin(), findings.end());
    }
    return report;
}

std::string
toJson(const Report &report)
{
    const auto escape = [](const std::string &text) {
        std::string out;
        out.reserve(text.size());
        for (char c : text) {
            switch (c) {
            case '"':
                out += "\\\"";
                break;
            case '\\':
                out += "\\\\";
                break;
            case '\n':
                out += "\\n";
                break;
            case '\t':
                out += "\\t";
                break;
            default:
                out += c;
            }
        }
        return out;
    };
    std::ostringstream out;
    out << "{\n  \"files_scanned\": " << report.filesScanned
        << ",\n  \"suppressions\": " << report.suppressions
        << ",\n  \"finding_count\": " << report.findings.size()
        << ",\n  \"findings\": [";
    for (std::size_t i = 0; i < report.findings.size(); ++i) {
        const Finding &f = report.findings[i];
        out << (i == 0 ? "" : ",") << "\n    {\"file\": \""
            << escape(f.file) << "\", \"line\": " << f.line
            << ", \"rule\": \"" << escape(f.rule)
            << "\", \"message\": \"" << escape(f.message) << "\"}";
    }
    out << (report.findings.empty() ? "]" : "\n  ]") << "\n}\n";
    return out.str();
}

} // namespace litmus::lint
