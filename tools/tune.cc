// Scratch tuning harness (not installed): prints the headline shapes
// the suite calibration must hit before the benches are meaningful.
#include <iostream>

#include "common/text_table.h"
#include "core/experiment.h"
#include "workload/suite.h"

using namespace litmus;

int
main()
{
    pricing::ExperimentConfig cfg;
    cfg.coRunners = 26;
    cfg.layoutOnePerCore();
    cfg.repetitions = 3;
    cfg.warmup = 0.1;

    const auto result = pricing::runSlowdownExperiment(cfg);

    TextTable table({"function", "slowdown", "tPriv", "tShared",
                     "sharedShare"});
    for (const auto &row : result.rows) {
        table.addRow({row.name, TextTable::num(row.totalSlowdown),
                      TextTable::num(row.tPrivSlowdown),
                      TextTable::num(row.tSharedSlowdown),
                      TextTable::num(row.sharedShareSolo, 4)});
    }
    table.print(std::cout);
    std::cout << "\ngmean slowdown  " << result.gmeanTotalSlowdown
              << "  (paper 1.115)\n"
              << "gmean tPriv     " << result.gmeanPrivSlowdown
              << "  (paper ~1.04-1.053)\n"
              << "gmean tShared   " << result.gmeanSharedSlowdown
              << "  (paper ~2.81)\n";
    return 0;
}
