/**
 * @file
 * litmus-fleet: multi-machine serving front end.
 *
 * Simulates a fleet of identical machines behind a dispatcher, drives
 * it with open-loop Poisson traffic sampled from the Table 1 suite,
 * and prints per-machine serving rows plus the aggregated fleet
 * billing report. With --tables pointing at a calibration artifact
 * (from `litmus-sim calibrate`), cold invocations carry Litmus probes
 * and are charged the discounted Litmus price, so the report shows
 * fleet-wide revenue under fair pricing.
 */

#include <iostream>
#include <optional>

#include "cluster/cluster.h"
#include "common/arg_parser.h"
#include "common/config_reader.h"
#include "common/logging.h"
#include "common/text_table.h"
#include "core/table_io.h"

using namespace litmus;

namespace
{

/** Integer flag that must be >= @p floor (casts would hide a typo'd
 *  negative as a huge unsigned). */
long
intAtLeast(const ArgParser &args, const std::string &name, long floor)
{
    const long value = args.getInt(name);
    if (value < floor)
        fatal("--", name, " must be >= ", floor, ", got ", value);
    return value;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("litmus-fleet",
                   "Fleet-scale Litmus serving simulator");
    args.addOption("machines", "machines in the fleet", "4")
        .addOption("policy",
                   "dispatch policy: round-robin | least-loaded | "
                   "warmth-aware",
                   "warmth-aware")
        .addOption("rate", "fleet arrival rate (invocations/s)", "2000")
        .addOption("invocations", "total arrivals to serve", "10000")
        .addOption("seed", "trace and jitter seed", "1")
        .addOption("epoch-us", "dispatch epoch in microseconds", "1000")
        .addOption("keepalive", "warm-container keep-alive (s)", "10")
        .addOption("threads",
                   "worker threads (0 = one per machine)", "0")
        .addOption("preset", "machine preset: cascadelake | icelake",
                   "cascadelake")
        .addOption("machine", "key=value override file", "")
        .addOption("tables",
                   "calibration artifact: enables Litmus pricing", "")
        .addSwitch("exact-quantum",
                   "disable steady-state fast-forward and batched idle "
                   "epochs (bit-identical totals, slower; A/B "
                   "validation)");

    if (!args.parse(argc, argv)) {
        if (!args.errorText().empty())
            std::cerr << "error: " << args.errorText() << "\n\n";
        std::cerr << args.usage();
        return args.errorText().empty() ? 0 : 2;
    }

    cluster::ClusterConfig cfg;
    cfg.machines =
        static_cast<unsigned>(intAtLeast(args, "machines", 1));
    cfg.policy = cluster::policyByName(args.get("policy"));
    cfg.arrivalsPerSecond = args.getDouble("rate");
    cfg.invocations =
        static_cast<std::uint64_t>(intAtLeast(args, "invocations", 1));
    cfg.seed = static_cast<std::uint64_t>(intAtLeast(args, "seed", 0));
    cfg.epoch = args.getDouble("epoch-us") * 1e-6;
    cfg.keepAlive = args.getDouble("keepalive");
    cfg.threads =
        static_cast<unsigned>(intAtLeast(args, "threads", 0));
    cfg.exactQuantum = args.has("exact-quantum");
    cfg.machine = args.get("preset") == "icelake"
                      ? sim::MachineConfig::iceLake4314()
                      : sim::MachineConfig::cascadeLake5218();
    const std::string overridePath = args.get("machine");
    if (!overridePath.empty())
        applyMachineOverrides(cfg.machine,
                              ConfigReader::fromFile(overridePath));

    // Litmus pricing needs the calibration tables and probes on the
    // cold path; without --tables everything bills commercially.
    std::optional<pricing::LoadedTables> tables;
    std::optional<pricing::DiscountModel> model;
    const std::string tablesPath = args.get("tables");
    if (!tablesPath.empty()) {
        tables = pricing::loadTables(tablesPath);
        model.emplace(tables->congestion, tables->performance);
        cfg.discountModel = &*model;
        cfg.probes = true;
    }

    inform("serving ", cfg.invocations, " invocations at ",
           cfg.arrivalsPerSecond, "/s across ", cfg.machines,
           " machines (", cluster::policyName(cfg.policy), ")");
    cluster::Cluster fleet(cfg);
    const cluster::FleetReport &report = fleet.run();

    TextTable table({"machine", "dispatched", "cold", "warm",
                     "billed s", "commercial $", "litmus $",
                     "mean lat ms"});
    for (const cluster::MachineReport &m : report.machines) {
        table.addRow({std::to_string(m.index),
                      std::to_string(m.dispatched),
                      std::to_string(m.coldStarts),
                      std::to_string(m.warmStarts),
                      TextTable::num(m.billedCpuSeconds),
                      TextTable::num(m.commercialUsd, 6),
                      TextTable::num(m.litmusUsd, 6),
                      TextTable::num(1e3 * m.meanLatency)});
    }
    table.addRow({"fleet", std::to_string(report.dispatched),
                  std::to_string(report.coldStarts),
                  std::to_string(report.warmStarts),
                  TextTable::num(report.billedCpuSeconds),
                  TextTable::num(report.commercialUsd, 6),
                  TextTable::num(report.litmusUsd, 6),
                  TextTable::num(1e3 * report.meanLatency)});
    table.print(std::cout);

    std::cout << "throughput "
              << TextTable::num(report.throughput(), 0)
              << " inv/s  cold-start rate "
              << TextTable::num(100 * report.coldStartRate(), 1)
              << "%  fleet discount "
              << TextTable::num(100 * report.discount(), 1)
              << "%  makespan " << TextTable::num(report.makespan)
              << " s  rejected " << report.rejectedMemory << "\n";
    return 0;
}
