/**
 * @file
 * litmus-fleet: multi-machine serving front end.
 *
 * Simulates a fleet of machines behind a dispatcher — homogeneous
 * (--preset/--machines) or heterogeneous
 * (--fleet=cascade-5218:8,icelake-4314:8) — drives it with open-loop
 * Poisson traffic sampled from the Table 1 suite, and prints
 * per-machine serving rows plus the aggregated fleet billing report
 * with a per-machine-type breakdown.
 *
 * Litmus pricing needs one calibration profile per machine type:
 * --tables loads serialized profiles (comma-separated paths; each
 * binds to the machine type recorded inside it), --calibrate sweeps
 * every fleet type in-process instead (memoized via ProfileStore),
 * and --tables-out persists the active profiles so the next run can
 * skip the sweep. A profile round-tripped through --tables-out /
 * --tables reproduces in-process billing exactly.
 */

#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "cluster/cluster.h"
#include "common/arg_parser.h"
#include "common/logging.h"
#include "common/text_table.h"
#include "core/profile_store.h"
#include "core/table_io.h"
#include "sim/machine_catalog.h"

using namespace litmus;

namespace
{

/** Integer flag that must be >= @p floor (casts would hide a typo'd
 *  negative as a huge unsigned). */
long
intAtLeast(const ArgParser &args, const std::string &name, long floor)
{
    const long value = args.getInt(name);
    if (value < floor)
        fatal("--", name, " must be >= ", floor, ", got ", value);
    return value;
}

/** Split on a delimiter, dropping empty pieces. */
std::vector<std::string>
split(const std::string &text, char delim)
{
    std::vector<std::string> out;
    std::istringstream stream(text);
    std::string piece;
    while (std::getline(stream, piece, delim)) {
        if (!piece.empty())
            out.push_back(piece);
    }
    return out;
}

/** Parse "type:count,type:count,..." into machine groups. */
std::vector<cluster::MachineGroup>
parseFleetSpec(const std::string &spec)
{
    std::vector<cluster::MachineGroup> fleet;
    for (const std::string &piece : split(spec, ',')) {
        cluster::MachineGroup group;
        const auto colon = piece.find(':');
        group.machine = piece.substr(0, colon);
        if (colon != std::string::npos) {
            const std::string count = piece.substr(colon + 1);
            char *end = nullptr;
            const long parsed = std::strtol(count.c_str(), &end, 10);
            if (end != count.c_str() + count.size() || parsed < 1)
                fatal("--fleet: bad machine count '", count, "' in '",
                      piece, "' (want <type>:<count>)");
            group.count = static_cast<unsigned>(parsed);
        }
        fleet.push_back(group);
    }
    if (fleet.empty())
        fatal("--fleet: empty fleet spec");
    return fleet;
}

/** Output path for one type's profile: the plain path for a
 *  single-type fleet, "<stem>-<type><ext>" when several types are
 *  being written. */
std::string
profileOutPath(const std::string &path, const std::string &type,
               bool multiple)
{
    if (!multiple)
        return path;
    const auto slash = path.find_last_of('/');
    const auto dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path + "-" + type;
    return path.substr(0, dot) + "-" + type + path.substr(dot);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("litmus-fleet",
                   "Fleet-scale Litmus serving simulator");
    args.addOption("machines", "machines in the fleet", "4")
        .addOption("fleet",
                   "heterogeneous fleet spec, e.g. "
                   "cascade-5218:8,icelake-4314:8 (overrides "
                   "--machines/--preset)",
                   "")
        .addOption("policy",
                   "dispatch policy: round-robin | least-loaded | "
                   "warmth-aware | cost-aware",
                   "warmth-aware")
        .addOption("rate", "fleet arrival rate (invocations/s)", "2000")
        .addOption("invocations", "total arrivals to serve", "10000")
        .addOption("seed", "trace and jitter seed", "1")
        .addOption("epoch-us", "dispatch epoch in microseconds", "1000")
        .addOption("keepalive", "warm-container keep-alive (s)", "10")
        .addOption("threads",
                   "worker threads (0 = one per machine)", "0")
        .addOption("preset",
                   "machine type (catalog name) for a homogeneous "
                   "fleet",
                   "cascade-5218")
        .addOption("machine",
                   "key=value preset file registered into the catalog "
                   "(must set name=; becomes the homogeneous type)",
                   "")
        .addOption("tables",
                   "calibration profiles to load (comma-separated "
                   "paths): enables Litmus pricing",
                   "")
        .addOption("tables-out",
                   "write the active calibration profiles here "
                   "(one file per machine type)",
                   "")
        .addSwitch("calibrate",
                   "calibrate every fleet machine type in-process "
                   "(Litmus pricing without --tables)")
        .addSwitch("exact-quantum",
                   "disable steady-state fast-forward and batched idle "
                   "epochs (bit-identical totals, slower; A/B "
                   "validation)");

    if (!args.parse(argc, argv)) {
        if (!args.errorText().empty())
            std::cerr << "error: " << args.errorText() << "\n\n";
        std::cerr << args.usage();
        return args.errorText().empty() ? 0 : 2;
    }

    cluster::ClusterConfig cfg;
    const std::string fleetSpec = args.get("fleet");
    if (!fleetSpec.empty()) {
        cfg.fleet = parseFleetSpec(fleetSpec);
    } else {
        // Aliases ("cascadelake", "icelake", ...) resolve inside the
        // catalog.
        std::string preset = args.get("preset");
        const std::string overridePath = args.get("machine");
        if (!overridePath.empty())
            preset =
                sim::MachineCatalog::registerFromFile(overridePath)
                    .name;
        cfg.fleet = {{preset, static_cast<unsigned>(
                                  intAtLeast(args, "machines", 1))}};
    }
    cfg.policy = cluster::policyByName(args.get("policy"));
    cfg.arrivalsPerSecond = args.getDouble("rate");
    cfg.invocations =
        static_cast<std::uint64_t>(intAtLeast(args, "invocations", 1));
    cfg.seed = static_cast<std::uint64_t>(intAtLeast(args, "seed", 0));
    cfg.epoch = args.getDouble("epoch-us") * 1e-6;
    cfg.keepAlive = args.getDouble("keepalive");
    cfg.threads =
        static_cast<unsigned>(intAtLeast(args, "threads", 0));
    cfg.exactQuantum = args.has("exact-quantum");

    // ---- Litmus pricing: one profile + model per machine type ------
    // Profiles and models are borrowed by the cluster; keep them
    // alive here for the whole run.
    std::vector<pricing::ProfileStore::ProfilePtr> profiles;
    std::vector<std::unique_ptr<pricing::DiscountModel>> models;
    const auto bind = [&](pricing::ProfileStore::ProfilePtr profile) {
        if (profile->machine.empty())
            fatal("litmus-fleet: profile has no machine name (legacy "
                  "v1 artifact?) — recalibrate with --calibrate / "
                  "litmus-sim calibrate to produce a v2 profile");
        if (cfg.discountModels.contains(profile->machine))
            fatal("litmus-fleet: two profiles for machine type '",
                  profile->machine, "' — pass one per type");
        models.push_back(
            std::make_unique<pricing::DiscountModel>(*profile));
        cfg.discountModels[profile->machine] = models.back().get();
        profiles.push_back(std::move(profile));
    };

    const std::string tablesPaths = args.get("tables");
    for (const std::string &path : split(tablesPaths, ','))
        bind(std::make_shared<const pricing::CalibrationProfile>(
            pricing::loadProfile(path)));

    if (args.has("calibrate")) {
        for (const cluster::MachineGroup &group : cfg.fleet) {
            const std::string type =
                sim::MachineCatalog::get(group.machine).name;
            if (cfg.discountModels.contains(type))
                continue; // a loaded profile wins
            inform("calibrating ", type, " (dedicated sweep)...");
            bind(pricing::ProfileStore::instance().dedicated(type));
        }
    }
    cfg.probes = !cfg.discountModels.empty();

    const std::string tablesOut = args.get("tables-out");
    if (!tablesOut.empty()) {
        if (profiles.empty())
            fatal("--tables-out needs profiles to write; add "
                  "--calibrate or --tables");
        for (const auto &profile : profiles) {
            const std::string out = profileOutPath(
                tablesOut, profile->machine, profiles.size() > 1);
            pricing::saveProfile(out, *profile);
            inform("profile for ", profile->machine, " written to ",
                   out);
        }
    }

    std::string fleetDesc;
    for (const cluster::MachineGroup &group : cfg.fleet) {
        fleetDesc += (fleetDesc.empty() ? "" : ", ") + group.machine +
                     " x" + std::to_string(group.count);
    }
    inform("serving ", cfg.invocations, " invocations at ",
           cfg.arrivalsPerSecond, "/s across ", cfg.totalMachines(),
           " machines (", fleetDesc, "; ",
           cluster::policyName(cfg.policy), ")");
    cluster::Cluster fleet(cfg);
    const cluster::FleetReport &report = fleet.run();

    TextTable table({"machine", "type", "dispatched", "cold", "warm",
                     "billed s", "commercial $", "litmus $",
                     "mean lat ms"});
    for (const cluster::MachineReport &m : report.machines) {
        table.addRow({std::to_string(m.index), m.type,
                      std::to_string(m.dispatched),
                      std::to_string(m.coldStarts),
                      std::to_string(m.warmStarts),
                      TextTable::num(m.billedCpuSeconds),
                      TextTable::num(m.commercialUsd, 6),
                      TextTable::num(m.litmusUsd, 6),
                      TextTable::num(1e3 * m.meanLatency)});
    }
    for (const cluster::TypeReport &t : report.types) {
        table.addRow({"type", t.type, std::to_string(t.dispatched),
                      std::to_string(t.coldStarts),
                      std::to_string(t.warmStarts),
                      TextTable::num(t.billedCpuSeconds),
                      TextTable::num(t.commercialUsd, 6),
                      TextTable::num(t.litmusUsd, 6),
                      TextTable::num(100 * t.discount(), 1) + "% disc"});
    }
    table.addRow({"fleet", "", std::to_string(report.dispatched),
                  std::to_string(report.coldStarts),
                  std::to_string(report.warmStarts),
                  TextTable::num(report.billedCpuSeconds),
                  TextTable::num(report.commercialUsd, 6),
                  TextTable::num(report.litmusUsd, 6),
                  TextTable::num(1e3 * report.meanLatency)});
    table.print(std::cout);

    std::cout << "throughput "
              << TextTable::num(report.throughput(), 0)
              << " inv/s  cold-start rate "
              << TextTable::num(100 * report.coldStartRate(), 1)
              << "%  fleet discount "
              << TextTable::num(100 * report.discount(), 1)
              << "%  makespan " << TextTable::num(report.makespan)
              << " s  rejected " << report.rejectedMemory << "\n";
    return 0;
}
