/**
 * @file
 * litmus-fleet: multi-machine serving front end — a thin CLI shim
 * over the scenario layer.
 *
 * Every run is a ScenarioSpec executed by a ScenarioRunner. The spec
 * comes from --scenario=<file> (key=value, see examples/scenarios/),
 * from the flags below, or both: flags given explicitly on the
 * command line overlay the loaded file, so
 * `litmus_fleet --scenario=peak.scenario --seed 9` reruns a scenario
 * under a different seed. A flag invocation and the equivalent
 * scenario file produce bit-identical fleet reports.
 *
 * Traffic is pluggable (--traffic=poisson|diurnal|burst|trace|azure,
 * plus the model knobs); Litmus pricing needs one calibration profile
 * per
 * machine type: --tables loads serialized profiles, --calibrate
 * sweeps every fleet type in-process (memoized via ProfileStore), and
 * --tables-out persists the active profiles.
 */

#include <iostream>
#include <string>
#include <vector>

#include "common/arg_parser.h"
#include "common/logging.h"
#include "common/strings.h"
#include "scenario/scenario_runner.h"
#include "sim/machine_catalog.h"

using namespace litmus;

int
main(int argc, char **argv)
{
    ArgParser args("litmus-fleet",
                   "Fleet-scale Litmus serving simulator");
    args.addOption("scenario",
                   "scenario file (key=value) providing the base "
                   "spec; explicit flags overlay it",
                   "")
        .addOption("machines", "machines in the fleet", "4")
        .addOption("fleet",
                   "heterogeneous fleet spec, e.g. "
                   "cascade-5218:8,icelake-4314:8 (overrides "
                   "--machines/--preset)",
                   "")
        .addOption("policy",
                   "dispatch policy: round-robin | least-loaded | "
                   "warmth-aware | cost-aware",
                   "warmth-aware")
        .addOption("traffic",
                   "traffic model: poisson | diurnal | burst | trace "
                   "| azure",
                   "poisson")
        .addOption("rate", "fleet arrival rate (invocations/s)", "2000")
        .addOption("invocations",
                   "total arrivals to serve (0 = until --duration)",
                   "10000")
        .addOption("duration",
                   "stop generating arrivals at this simulated time "
                   "(s; 0 = until --invocations)",
                   "0")
        .addOption("trace-file",
                   "arrival trace CSV to replay (traffic=trace)", "")
        .addOption("trace-rate-scale",
                   "trace replay speedup: 2 = twice as fast", "1")
        .addOption("azure-file",
                   "Azure-dataset-shaped CSV to ingest "
                   "(traffic=azure)",
                   "")
        .addOption("azure-max-rows",
                   "ingest at most this many function rows "
                   "(0 = all; rows past the cap are never read)",
                   "0")
        .addOption("azure-rate-scale",
                   "azure replay speedup: 2 = twice as fast", "1")
        .addOption("arrivals",
                   "arrival delivery: streaming (bounded memory) | "
                   "upfront (materialize the whole trace; A/B "
                   "validation, bit-identical reports)",
                   "streaming")
        .addOption("seed", "trace and jitter seed", "1")
        .addOption("epoch-us", "dispatch epoch in microseconds", "1000")
        .addOption("keepalive", "warm-container keep-alive (s)", "10")
        .addOption("threads",
                   "worker threads (0 = one per machine)", "0")
        .addOption("sched",
                   "cluster scheduling backend: event (deterministic "
                   "event queue, idle machines cost zero) | epoch "
                   "(fixed-epoch oracle; bit-identical reports)",
                   "event")
        .addOption("preset",
                   "machine type (catalog name) for a homogeneous "
                   "fleet",
                   "cascade-5218")
        .addOption("machine",
                   "key=value preset file registered into the catalog "
                   "(must set name=; becomes the homogeneous type)",
                   "")
        .addOption("tables",
                   "calibration profiles to load (comma-separated "
                   "paths): enables Litmus pricing",
                   "")
        .addOption("tables-out",
                   "write the active calibration profiles here "
                   "(one file per machine type)",
                   "")
        .addOption("faults",
                   "fault campaign: comma-separated fault.* settings "
                   "without the prefix, e.g. "
                   "crash.mtbf=20,retry=backoff,billing=provider "
                   "(scripted lists use ';' between entries: "
                   "crash.at=0.5@1;2.0)",
                   "")
        .addSwitch("calibrate",
                   "calibrate every fleet machine type in-process "
                   "(Litmus pricing without --tables)")
        .addSwitch("exact-quantum",
                   "disable steady-state fast-forward and batched idle "
                   "epochs (bit-identical totals, slower; A/B "
                   "validation)");
    args.parseOrExit(argc, argv);

    const std::string scenarioPath = args.get("scenario");
    scenario::ScenarioSpec spec;
    if (!scenarioPath.empty())
        spec = scenario::ScenarioSpec::fromFile(scenarioPath);

    // Explicit flags overlay the (possibly file-provided) spec; an
    // unset flag never overrides the file, and with no file the flag
    // defaults equal the spec defaults, so the two paths agree.
    const auto overlay = [&](const char *flag, const char *key) {
        if (args.has(flag))
            spec.set(key, args.get(flag));
    };
    if (args.has("fleet")) {
        spec.set("fleet", args.get("fleet"));
    } else if (args.has("machines") || args.has("preset") ||
               args.has("machine")) {
        // Aliases ("cascadelake", "icelake", ...) resolve inside the
        // catalog; a preset file registers its machine type first.
        std::string preset;
        const std::string overridePath = args.get("machine");
        if (!overridePath.empty())
            preset = sim::MachineCatalog::registerFromFile(overridePath)
                         .name;
        else if (args.has("preset") || scenarioPath.empty())
            preset = args.get("preset");
        if (scenarioPath.empty()) {
            spec.fleet = {{preset,
                           static_cast<unsigned>(
                               args.getIntAtLeast("machines", 1))}};
        } else {
            // Overlay only the pieces the user actually gave onto the
            // file's fleet; never let an unset flag's default clobber
            // it, and refuse a partial override of a mixed fleet.
            if (spec.fleet.size() != 1)
                fatal("litmus-fleet: --machines/--preset/--machine "
                      "cannot partially override the heterogeneous "
                      "fleet in '", scenarioPath,
                      "' — pass --fleet=type:count,... instead");
            if (preset.empty())
                preset = spec.fleet.front().machine;
            const unsigned count =
                args.has("machines")
                    ? static_cast<unsigned>(
                          args.getIntAtLeast("machines", 1))
                    : spec.fleet.front().count;
            spec.fleet = {{preset, count}};
        }
    }
    overlay("policy", "policy");
    overlay("traffic", "traffic");
    overlay("rate", "rate");
    overlay("invocations", "invocations");
    overlay("duration", "duration");
    overlay("trace-file", "trace.path");
    overlay("trace-rate-scale", "trace.rate_scale");
    overlay("azure-file", "azure.path");
    overlay("azure-max-rows", "azure.max_rows");
    overlay("azure-rate-scale", "azure.rate_scale");
    overlay("arrivals", "arrivals");
    overlay("seed", "seed");
    overlay("epoch-us", "epoch_us");
    overlay("keepalive", "keepalive");
    overlay("threads", "threads");
    overlay("sched", "scheduler");
    overlay("tables", "tables");
    overlay("tables-out", "tables_out");
    if (args.has("faults")) {
        // One flag carries the whole campaign: each comma-separated
        // piece is a fault.* scenario key without the prefix, so
        // --faults=crash.mtbf=20,retry=drop ==
        // fault.crash.mtbf=20 + fault.retry=drop. Scripted lists use
        // ';' between entries because ',' separates pieces here.
        for (const std::string &piece :
             splitNonEmpty(args.get("faults"), ',')) {
            const auto eq = piece.find('=');
            if (eq == std::string::npos || eq == 0)
                fatal("litmus-fleet: --faults piece '", piece,
                      "' is not key=value (e.g. crash.mtbf=20)");
            spec.set("fault." + piece.substr(0, eq),
                     piece.substr(eq + 1));
        }
    }
    if (args.has("calibrate"))
        spec.calibrate = true;
    if (args.has("exact-quantum"))
        spec.exactQuantum = true;

    scenario::ScenarioRunner runner(std::move(spec));

    std::string fleetDesc;
    for (const cluster::MachineGroup &group : runner.spec().fleet) {
        fleetDesc += (fleetDesc.empty() ? "" : ", ") + group.machine +
                     " x" + std::to_string(group.count);
    }
    inform("serving ", runner.traffic().name(), " traffic across ",
           runner.clusterConfig().totalMachines(), " machines (",
           fleetDesc, "; ",
           cluster::policyName(runner.spec().policy), ")");

    const cluster::FleetReport &report = runner.run();
    scenario::printFleetReport(std::cout, report);
    return 0;
}
