/**
 * @file
 * litmus-sim: the command-line face of the library.
 *
 * Subcommands:
 *   calibrate  sweep CT-Gen/MB-Gen and write the tables artifact
 *   price      load tables, run a pricing experiment, print the rows
 *   slowdown   run the co-run slowdown experiment (no pricing)
 *   suite      list the Table 1 workload suite
 *   stats      run a churn scenario and dump engine statistics
 *   scenario   run a declarative fleet scenario file
 *              (litmus-sim scenario examples/scenarios/x.scenario)
 *
 * A machine override file (--machine my-fleet.conf, key=value) can
 * reshape the simulated server for any subcommand.
 */

#include <iostream>

#include "common/arg_parser.h"
#include "common/logging.h"
#include "common/text_table.h"
#include "core/calibration.h"
#include "core/experiment.h"
#include "core/table_io.h"
#include "scenario/scenario_runner.h"
#include "sim/engine.h"
#include "sim/machine_catalog.h"
#include "workload/invoker.h"
#include "workload/suite.h"

using namespace litmus;

namespace
{

sim::MachineConfig
machineFromArgs(const ArgParser &args)
{
    // Aliases ("cascadelake", "icelake", ...) resolve inside the
    // catalog.
    const std::string preset = args.get("preset");
    const std::string overridePath = args.get("machine");
    if (!overridePath.empty()) {
        // Registered so fleet specs and profiles can name it too.
        return sim::MachineCatalog::registerFromFile(overridePath);
    }
    return sim::MachineCatalog::get(preset);
}

int
cmdCalibrate(const ArgParser &args)
{
    pricing::CalibrationConfig cfg;
    cfg.machine = machineFromArgs(args);

    const long maxLevel = args.getIntAtLeast("max-level", 2);
    const long step = args.getIntAtLeast("level-step", 1);
    cfg.levels.clear();
    for (long level = 2; level <= maxLevel; level += step)
        cfg.levels.push_back(static_cast<unsigned>(level));

    const long sharing = args.getIntAtLeast("sharing-functions", 0);
    if (sharing > 0) {
        cfg.sharingFunctions = static_cast<unsigned>(sharing);
        const long poolCpus = args.getIntAtLeast("sharing-cpus", 1);
        for (long cpu = 0; cpu < poolCpus; ++cpu)
            cfg.sharingCpus.push_back(static_cast<unsigned>(cpu));
        cfg.generatorFirstCpu = static_cast<unsigned>(poolCpus);
    }

    inform("calibrating ", cfg.machine.name, " over ",
           cfg.levels.size(), " levels per generator");
    const auto profile = pricing::calibrate(cfg);

    const std::string out = args.get("output");
    pricing::saveProfile(out, profile);
    inform("profile for ", profile.machine, " written to ", out);
    return 0;
}

int
cmdPrice(const ArgParser &args)
{
    const auto profile = pricing::loadProfile(args.get("tables"));
    const pricing::DiscountModel model(profile);

    pricing::ExperimentConfig cfg;
    cfg.machine = machineFromArgs(args);
    cfg.coRunners =
        static_cast<unsigned>(args.getIntAtLeast("co-runners", 1));
    const long poolCpus = args.getIntAtLeast("pool-cpus", 0);
    if (poolCpus > 0)
        cfg.layoutPooled(static_cast<unsigned>(poolCpus));
    else
        cfg.layoutOnePerCore();
    cfg.repetitions =
        static_cast<unsigned>(args.getIntAtLeast("reps", 1));
    cfg.sharingFactor = args.getDouble("sharing-factor");
    if (args.has("turbo"))
        cfg.policy = sim::FrequencyPolicy::Turbo;

    const auto result = pricing::runPricingExperiment(cfg, model);

    TextTable table({"function", "litmus price", "ideal price",
                     "total error"});
    for (const auto &row : result.rows) {
        table.addRow({row.name, TextTable::num(row.litmusPrice),
                      TextTable::num(row.idealPrice),
                      TextTable::num(row.totalError)});
    }
    table.addRow({"gmean", TextTable::num(result.gmeanLitmusPrice),
                  TextTable::num(result.gmeanIdealPrice), ""});
    table.print(std::cout);
    std::cout << "litmus discount "
              << TextTable::num(100 * result.litmusDiscount(), 1)
              << "%  ideal "
              << TextTable::num(100 * result.idealDiscount(), 1)
              << "%\n";
    return 0;
}

int
cmdSlowdown(const ArgParser &args)
{
    pricing::ExperimentConfig cfg;
    cfg.machine = machineFromArgs(args);
    cfg.coRunners =
        static_cast<unsigned>(args.getIntAtLeast("co-runners", 1));
    const long poolCpus = args.getIntAtLeast("pool-cpus", 0);
    if (poolCpus > 0)
        cfg.layoutPooled(static_cast<unsigned>(poolCpus));
    else
        cfg.layoutOnePerCore();
    cfg.repetitions =
        static_cast<unsigned>(args.getIntAtLeast("reps", 1));

    const auto result = pricing::runSlowdownExperiment(cfg);
    TextTable table({"function", "slowdown", "Tpriv", "Tshared"});
    for (const auto &row : result.rows) {
        table.addRow({row.name, TextTable::num(row.totalSlowdown),
                      TextTable::num(row.tPrivSlowdown),
                      TextTable::num(row.tSharedSlowdown)});
    }
    table.addRow({"gmean", TextTable::num(result.gmeanTotalSlowdown),
                  TextTable::num(result.gmeanPrivSlowdown),
                  TextTable::num(result.gmeanSharedSlowdown)});
    table.print(std::cout);
    return 0;
}

int
cmdSuite(const ArgParser &)
{
    TextTable table({"function", "language", "role", "body Minstr",
                     "memory MiB"});
    for (const auto &spec : workload::table1Suite()) {
        table.addRow(
            {spec.name, workload::languageName(spec.language),
             spec.reference ? "reference*"
                            : (spec.testSet ? "test" : "pool"),
             TextTable::num(spec.bodyInstructions() / 1e6, 0),
             TextTable::num(static_cast<double>(spec.memoryFootprint) /
                                (1024.0 * 1024.0),
                            0)});
    }
    table.print(std::cout);
    return 0;
}

int
cmdStats(const ArgParser &args)
{
    const auto machine = machineFromArgs(args);
    sim::Engine engine(machine);
    StatsRegistry registry;
    engine.stats().registerWith(registry, "engine");

    workload::InvokerConfig icfg;
    icfg.placement = workload::InvokerConfig::Placement::Pooled;
    icfg.targetCount =
        static_cast<unsigned>(args.getIntAtLeast("co-runners", 1));
    const long stats_pool = args.getIntAtLeast("pool-cpus", 0);
    const long poolCpus =
        stats_pool > 0 ? stats_pool : machine.hwThreads();
    for (long cpu = 0; cpu < poolCpus; ++cpu)
        icfg.cpuPool.push_back(static_cast<unsigned>(cpu));
    workload::Invoker invoker(engine, icfg);
    engine.onCompletion(
        [&](sim::Task &task) { invoker.handleCompletion(task); });
    invoker.start();

    const double seconds = args.getDouble("seconds");
    inform("simulating ", seconds, " s of churn with ",
           icfg.targetCount, " co-running functions");
    engine.run(seconds);

    registry.dump(std::cout);
    std::cout << "invoker: launched " << invoker.launchedCount()
              << ", deferred " << invoker.deferredCount()
              << ", committed memory "
              << static_cast<double>(invoker.committedMemory()) / (1_GiB)
              << " GiB\n";
    return 0;
}

int
cmdScenario(const ArgParser &args)
{
    if (args.positionalCount() < 2)
        fatal("the scenario command needs a scenario file: "
              "litmus-sim scenario <file>");
    // --machine applies here like everywhere else: register the
    // custom preset first so the scenario's fleet spec can name it.
    const std::string overridePath = args.get("machine");
    if (!overridePath.empty())
        (void)sim::MachineCatalog::registerFromFile(overridePath);
    scenario::ScenarioSpec spec =
        scenario::ScenarioSpec::fromFile(args.positional("arg"));
    if (args.has("exact-quantum"))
        spec.exactQuantum = true;
    scenario::ScenarioRunner runner(std::move(spec));
    inform("running scenario with ", runner.traffic().name(),
           " traffic on ", runner.clusterConfig().totalMachines(),
           " machines");
    scenario::printFleetReport(std::cout, runner.run());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("litmus-sim",
                   "Litmus fair-pricing simulator for serverless "
                   "platforms");
    args.addPositional("command",
                       "calibrate | price | slowdown | suite | stats "
                       "| scenario")
        .addPositional("arg", "scenario file (scenario command)")
        .addOption("preset",
                   "machine type (catalog name, e.g. cascade-5218 | "
                   "icelake-4314)",
                   "cascade-5218")
        .addOption("machine",
                   "key=value preset file (base=/name= keys) "
                   "registered into the catalog",
                   "")
        .addOption("output", "tables output path (calibrate)",
                   "litmus-tables.txt")
        .addOption("tables", "tables artifact to load (price)",
                   "litmus-tables.txt")
        .addOption("max-level", "highest generator stress level", "26")
        .addOption("level-step", "stress level stride", "4")
        .addOption("sharing-functions",
                   "Method 2: churn population during calibration", "0")
        .addOption("sharing-cpus", "Method 2: CPUs in the sharing pool",
                   "5")
        .addOption("co-runners", "co-running function count", "26")
        .addOption("pool-cpus",
                   "share this many CPUs (0 = one per core)", "0")
        .addOption("reps", "invocations per test function", "3")
        .addOption("sharing-factor",
                   "Method 1 T_private calibration factor", "1.0")
        .addOption("seconds", "simulated churn duration (stats)", "1.0")
        .addSwitch("turbo", "unpin the CPU frequency")
        .addSwitch("exact-quantum",
                   "disable the steady-state fast-forward engine "
                   "(bit-identical output, slower; A/B validation)");

    args.parseOrExit(argc, argv);
    if (args.positionalCount() == 0) {
        std::cerr << args.usage();
        return 2;
    }

    // Applies to every engine the subcommands construct internally
    // (experiments, calibration sweeps, solo baselines).
    if (args.has("exact-quantum"))
        sim::Engine::setDefaultFastForward(false);

    const std::string command = args.positional("command");
    // Only the scenario command takes a second positional; keep the
    // old "unexpected argument" failure for everything else.
    if (command != "scenario" && args.positionalCount() > 1) {
        std::cerr << "error: unexpected argument '"
                  << args.positional("arg") << "' for command '"
                  << command << "'\n\n"
                  << args.usage();
        return 2;
    }
    if (command == "calibrate")
        return cmdCalibrate(args);
    if (command == "price")
        return cmdPrice(args);
    if (command == "slowdown")
        return cmdSlowdown(args);
    if (command == "suite")
        return cmdSuite(args);
    if (command == "stats")
        return cmdStats(args);
    if (command == "scenario")
        return cmdScenario(args);
    std::cerr << "error: unknown command '" << command << "'\n\n"
              << args.usage();
    return 2;
}
