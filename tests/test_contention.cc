/**
 * @file
 * Tests for the shared-resource contention solver: queue curve,
 * capacity-pressure miss model, and fixed-point behaviour.
 */

#include <gtest/gtest.h>

#include "sim/contention.h"
#include "sim/machine_catalog.h"

namespace litmus::sim
{
namespace
{

MachineConfig
cfg()
{
    return MachineCatalog::get("cascade-5218");
}

ResourceDemand
computeDemand()
{
    ResourceDemand d;
    d.cpi0 = 0.6;
    d.l2Mpki = 0.05;
    d.l3WorkingSet = 256_KiB;
    d.l3MissBase = 0.05;
    d.mlp = 2.0;
    return d;
}

ResourceDemand
memoryDemand()
{
    ResourceDemand d;
    d.cpi0 = 0.6;
    d.l2Mpki = 30.0;
    d.l3WorkingSet = 8_MiB;
    d.l3MissBase = 0.8;
    d.mlp = 8.0;
    return d;
}

TEST(QueueFactor, BoundsAndMonotonicity)
{
    const auto machine = cfg();
    const ContentionSolver solver(machine);
    EXPECT_DOUBLE_EQ(solver.queueFactor(0.0, 4.0), 1.0);
    EXPECT_DOUBLE_EQ(solver.queueFactor(1.0, 4.0), 4.0);
    EXPECT_DOUBLE_EQ(solver.queueFactor(2.0, 4.0), 4.0); // clamped
    double prev = 0.0;
    for (double u = 0.0; u <= 1.0; u += 0.05) {
        const double qf = solver.queueFactor(u, 4.0);
        EXPECT_GE(qf, prev);
        EXPECT_GE(qf, 1.0);
        EXPECT_LE(qf, 4.0);
        prev = qf;
    }
}

TEST(MissFraction, FullShareGivesBaseline)
{
    const auto machine = cfg();
    const ContentionSolver solver(machine);
    const auto d = memoryDemand();
    EXPECT_DOUBLE_EQ(
        solver.missFraction(d, static_cast<double>(d.l3WorkingSet)),
        d.l3MissBase);
    // More than the working set changes nothing.
    EXPECT_DOUBLE_EQ(
        solver.missFraction(d, 2.0 * static_cast<double>(d.l3WorkingSet)),
        d.l3MissBase);
}

TEST(MissFraction, ZeroShareGivesFullMiss)
{
    const auto machine = cfg();
    const ContentionSolver solver(machine);
    EXPECT_DOUBLE_EQ(solver.missFraction(memoryDemand(), 0.0), 1.0);
}

TEST(MissFraction, MonotoneInDeficit)
{
    const auto machine = cfg();
    const ContentionSolver solver(machine);
    const auto d = memoryDemand();
    const double ws = static_cast<double>(d.l3WorkingSet);
    double prev = 1.1;
    for (double share = 0.0; share <= ws; share += ws / 16) {
        const double m = solver.missFraction(d, share);
        EXPECT_LE(m, prev);
        EXPECT_GE(m, d.l3MissBase);
        EXPECT_LE(m, 1.0);
        prev = m;
    }
}

TEST(MissFraction, NoTrafficMeansNoMisses)
{
    const auto machine = cfg();
    const ContentionSolver solver(machine);
    ResourceDemand d = computeDemand();
    d.l2Mpki = 0.0;
    EXPECT_DOUBLE_EQ(solver.missFraction(d, 0.0), 0.0);
}

TEST(Solve, EmptyInputs)
{
    const auto machine = cfg();
    const ContentionSolver solver(machine);
    const auto result = solver.solve({}, machine.baseFrequency);
    EXPECT_TRUE(result.threads.empty());
    EXPECT_DOUBLE_EQ(result.shared.l3Utilization, 0.0);
    EXPECT_DOUBLE_EQ(result.shared.l3LatencyNs, machine.l3HitLatencyNs);
}

TEST(Solve, SingleComputeThreadNearBaseline)
{
    const auto machine = cfg();
    const ContentionSolver solver(machine);
    const auto result = solver.solve({{computeDemand(), {}}},
                                     machine.baseFrequency);
    ASSERT_EQ(result.threads.size(), 1u);
    EXPECT_LT(result.shared.l3Utilization, 0.01);
    EXPECT_LT(result.shared.memUtilization, 0.01);
    EXPECT_NEAR(result.threads[0].privateCpi, 0.6, 0.01);
    EXPECT_LT(result.threads[0].stallPerInstr, 0.01);
}

TEST(Solve, UtilizationGrowsWithThreads)
{
    const auto machine = cfg();
    const ContentionSolver solver(machine);
    double prevU = 0.0;
    for (unsigned n : {1u, 4u, 8u, 16u, 32u}) {
        std::vector<SolverInput> inputs(n,
                                        SolverInput{memoryDemand(), {}});
        const auto result = solver.solve(inputs, machine.baseFrequency);
        EXPECT_GE(result.shared.memUtilization, prevU);
        prevU = result.shared.memUtilization;
    }
    EXPECT_GT(prevU, 0.3);
}

TEST(Solve, LatenciesGrowWithLoad)
{
    const auto machine = cfg();
    const ContentionSolver solver(machine);
    const auto light = solver.solve({{memoryDemand(), {}}},
                                    machine.baseFrequency);
    std::vector<SolverInput> many(24, SolverInput{memoryDemand(), {}});
    const auto heavy = solver.solve(many, machine.baseFrequency);
    EXPECT_GT(heavy.shared.memLatencyNs, light.shared.memLatencyNs);
    EXPECT_GE(heavy.shared.l3LatencyNs, light.shared.l3LatencyNs);
    EXPECT_GT(heavy.threads[0].stallPerInstr,
              light.threads[0].stallPerInstr);
}

TEST(Solve, CapacityPressureRaisesMissFraction)
{
    const auto machine = cfg();
    const ContentionSolver solver(machine);
    const auto alone = solver.solve({{memoryDemand(), {}}},
                                    machine.baseFrequency);
    std::vector<SolverInput> crowd(20, SolverInput{memoryDemand(), {}});
    const auto crowded = solver.solve(crowd, machine.baseFrequency);
    EXPECT_GT(crowded.threads[0].l3MissFraction,
              alone.threads[0].l3MissFraction);
}

TEST(Solve, WarmthAndSmtInflatePrivateCpi)
{
    const auto machine = cfg();
    const ContentionSolver solver(machine);
    ThreadEnvironment env;
    env.warmthMult = 1.05;
    env.smtMult = 1.95;
    const auto result = solver.solve({{computeDemand(), env}},
                                     machine.baseFrequency);
    EXPECT_NEAR(result.threads[0].privateCpi, 0.6 * 1.05 * 1.95, 0.02);
}

TEST(Solve, ComputeThreadImmuneToCrowd)
{
    // The float-py property: a compute-bound thread's private CPI
    // barely moves even in a heavily congested machine.
    const auto machine = cfg();
    const ContentionSolver solver(machine);
    std::vector<SolverInput> inputs(30, SolverInput{memoryDemand(), {}});
    inputs.push_back({computeDemand(), {}});
    const auto result = solver.solve(inputs, machine.baseFrequency);
    const ThreadPerf &compute = result.threads.back();
    EXPECT_LT(compute.privateCpi, 0.6 * 1.01);
    EXPECT_LT(compute.stallPerInstr / compute.cpi(), 0.05);
}

TEST(Solve, FrequencyScalesStallCycles)
{
    // Same physical latency costs more cycles at a higher clock.
    const auto machine = cfg();
    const ContentionSolver solver(machine);
    const auto slow = solver.solve({{memoryDemand(), {}}}, 2.0e9);
    const auto fast = solver.solve({{memoryDemand(), {}}}, 4.0e9);
    EXPECT_GT(fast.threads[0].stallPerInstr,
              slow.threads[0].stallPerInstr * 1.5);
}

TEST(Solve, CtGenSignature)
{
    // CT-Gen-like load: high L3-path utilization, low DRAM pressure.
    const auto machine = cfg();
    const ContentionSolver solver(machine);
    ResourceDemand ct;
    ct.cpi0 = 0.55;
    ct.l2Mpki = 60.0;
    ct.l3WorkingSet = 640_KiB;
    ct.l3MissBase = 0.02;
    ct.mlp = 6.0;
    std::vector<SolverInput> inputs(24, SolverInput{ct, {}});
    const auto result = solver.solve(inputs, machine.baseFrequency);
    EXPECT_GT(result.shared.l3Utilization, 0.4);
    EXPECT_LT(result.shared.memUtilization, 0.25);
}

TEST(Solve, MbGenSignature)
{
    // MB-Gen-like load: DRAM saturated.
    const auto machine = cfg();
    const ContentionSolver solver(machine);
    ResourceDemand mb;
    mb.cpi0 = 0.55;
    mb.l2Mpki = 34.0;
    mb.l3WorkingSet = 8_MiB;
    mb.l3MissBase = 0.92;
    mb.mlp = 8.0;
    std::vector<SolverInput> inputs(24, SolverInput{mb, {}});
    const auto result = solver.solve(inputs, machine.baseFrequency);
    // Bounded-latency queuing self-throttles MB-Gen (its defining
    // Figure 1 behaviour), so utilization equilibrates below 1.
    EXPECT_GT(result.shared.memUtilization, 0.45);
}

TEST(ThreadPerf, CpiDecomposition)
{
    ThreadPerf perf;
    perf.privateCpi = 0.7;
    perf.stallPerInstr = 0.3;
    EXPECT_DOUBLE_EQ(perf.cpi(), 1.0);
    EXPECT_DOUBLE_EQ(perf.ipc(), 1.0);
}

/** Property sweep: stall per instruction is monotone in thread count. */
class StallMonotone : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(StallMonotone, MoreThreadsMoreStall)
{
    const auto machine = cfg();
    const ContentionSolver solver(machine);
    const unsigned n = GetParam();
    std::vector<SolverInput> small(n, SolverInput{memoryDemand(), {}});
    std::vector<SolverInput> large(n + 4,
                                   SolverInput{memoryDemand(), {}});
    const auto a = solver.solve(small, machine.baseFrequency);
    const auto b = solver.solve(large, machine.baseFrequency);
    EXPECT_LE(a.threads[0].stallPerInstr,
              b.threads[0].stallPerInstr * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(Counts, StallMonotone,
                         ::testing::Values(1u, 2u, 4u, 8u, 12u, 16u, 20u,
                                           24u));

TEST(ContentionMemo, HitReturnsBitIdenticalResult)
{
    const auto machine = cfg();
    const ContentionSolver solver(machine);
    ContentionMemo memo;
    std::vector<SolverInput> inputs(4, SolverInput{memoryDemand(), {}});

    const ContentionResult fresh =
        solver.solve(inputs, machine.baseFrequency, 1e6);
    const ContentionResult first =
        memo.solve(solver, inputs, machine.baseFrequency, 1e6);
    EXPECT_EQ(memo.misses(), 1u);
    EXPECT_EQ(memo.hits(), 0u);
    const ContentionResult second =
        memo.solve(solver, inputs, machine.baseFrequency, 1e6);
    EXPECT_EQ(memo.hits(), 1u);

    for (const ContentionResult *r : {&first, &second}) {
        EXPECT_EQ(r->shared.l3LatencyNs, fresh.shared.l3LatencyNs);
        EXPECT_EQ(r->shared.memLatencyNs, fresh.shared.memLatencyNs);
        EXPECT_EQ(r->shared.l3Utilization, fresh.shared.l3Utilization);
        EXPECT_EQ(r->shared.memUtilization,
                  fresh.shared.memUtilization);
        ASSERT_EQ(r->threads.size(), fresh.threads.size());
        for (std::size_t i = 0; i < fresh.threads.size(); ++i) {
            EXPECT_EQ(r->threads[i].privateCpi,
                      fresh.threads[i].privateCpi);
            EXPECT_EQ(r->threads[i].stallPerInstr,
                      fresh.threads[i].stallPerInstr);
            EXPECT_EQ(r->threads[i].l3MissFraction,
                      fresh.threads[i].l3MissFraction);
        }
    }
}

TEST(ContentionMemo, DistinguishesEveryKeyComponent)
{
    const auto machine = cfg();
    const ContentionSolver solver(machine);
    ContentionMemo memo;
    std::vector<SolverInput> inputs(2, SolverInput{memoryDemand(), {}});

    memo.solve(solver, inputs, machine.baseFrequency, 0.0);
    // Different frequency, waiting working set, environment, demand:
    // each must miss, never alias.
    memo.solve(solver, inputs, machine.turboFrequency, 0.0);
    memo.solve(solver, inputs, machine.baseFrequency, 5e6);
    inputs[0].env.warmthMult = 1.01;
    memo.solve(solver, inputs, machine.baseFrequency, 0.0);
    inputs[0].env.warmthMult = 1.0;
    inputs[1].demand.l2Mpki += 0.5;
    memo.solve(solver, inputs, machine.baseFrequency, 0.0);
    EXPECT_EQ(memo.misses(), 5u);
    EXPECT_EQ(memo.hits(), 0u);
}

TEST(ContentionMemo, BypassesItselfOnLowHitRate)
{
    const auto machine = cfg();
    const ContentionSolver solver(machine);
    ContentionMemo memo;
    std::vector<SolverInput> inputs(1, SolverInput{memoryDemand(), {}});
    // A stream of unique signatures (jittered fleet traffic) must trip
    // the hit-rate watchdog...
    for (int i = 0; i < 2100 && !memo.bypassed(); ++i) {
        inputs[0].demand.l2Mpki = 1.0 + 1e-4 * i;
        memo.solve(solver, inputs, machine.baseFrequency, 0.0);
    }
    EXPECT_TRUE(memo.bypassed());
    EXPECT_EQ(memo.size(), 0u);
    // ...and bypassed solves still return bit-identical results.
    inputs[0].demand.l2Mpki = 5.0;
    const ContentionResult fresh =
        solver.solve(inputs, machine.baseFrequency, 0.0);
    const ContentionResult &bypassed =
        memo.solve(solver, inputs, machine.baseFrequency, 0.0);
    EXPECT_EQ(bypassed.shared.memUtilization,
              fresh.shared.memUtilization);
    EXPECT_EQ(bypassed.threads[0].stallPerInstr,
              fresh.threads[0].stallPerInstr);
}

TEST(ContentionMemo, HighHitRateStaysEnabled)
{
    const auto machine = cfg();
    const ContentionSolver solver(machine);
    ContentionMemo memo;
    std::vector<SolverInput> inputs(1, SolverInput{memoryDemand(), {}});
    // Recurring signatures (the Table 1 suite shape) keep the memo on.
    for (int i = 0; i < 6000; ++i) {
        inputs[0].demand.l2Mpki = 1.0 + (i % 16);
        memo.solve(solver, inputs, machine.baseFrequency, 0.0);
    }
    EXPECT_FALSE(memo.bypassed());
    EXPECT_EQ(memo.misses(), 16u);
}

TEST(ContentionMemo, EvictsLeastRecentlyUsed)
{
    const auto machine = cfg();
    const ContentionSolver solver(machine);
    ContentionMemo memo(2);
    auto inputsAt = [&](double mpki) {
        std::vector<SolverInput> inputs(1,
                                        SolverInput{memoryDemand(), {}});
        inputs[0].demand.l2Mpki = mpki;
        return inputs;
    };
    memo.solve(solver, inputsAt(1.0), machine.baseFrequency, 0.0);
    memo.solve(solver, inputsAt(2.0), machine.baseFrequency, 0.0);
    // Touch 1.0 so 2.0 becomes the LRU entry, then insert a third.
    memo.solve(solver, inputsAt(1.0), machine.baseFrequency, 0.0);
    memo.solve(solver, inputsAt(3.0), machine.baseFrequency, 0.0);
    EXPECT_EQ(memo.size(), 2u);
    memo.solve(solver, inputsAt(1.0), machine.baseFrequency, 0.0);
    EXPECT_EQ(memo.hits(), 2u); // 1.0 survived
    memo.solve(solver, inputsAt(2.0), machine.baseFrequency, 0.0);
    EXPECT_EQ(memo.misses(), 4u); // 2.0 was evicted
}

} // namespace
} // namespace litmus::sim
