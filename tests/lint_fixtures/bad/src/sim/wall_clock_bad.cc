// Fixture: every real-time clock read must fire wall-clock.
#include <chrono>
#include <ctime>

double fixtureNow()
{
    auto stamp = std::chrono::system_clock::now();
    (void)stamp;
    return static_cast<double>(time(nullptr));
}
