// Fixture: lock-annotation — a raw std::mutex member, and a member
// touched under a lock without the matching annotation.
#include <mutex>

#include "common/mutex.h"

class RawCounter
{
  private:
    std::mutex legacy_mu_;
    long hits_ = 0;
};

class HalfGuarded
{
  public:
    void bump()
    {
        MutexLock lock(&mutex_);
        ++counter_;
    }

  private:
    Mutex mutex_;
    long counter_ = 0;
};
