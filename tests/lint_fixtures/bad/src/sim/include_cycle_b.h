// Fixture: include-graph — this header and include_cycle_a.h
#include "sim/include_cycle_a.h"

struct CycleB
{
    CycleA *peer = nullptr;
};
