// Fixture: nests beta_mu_ under alpha_mu_; lock_order_b.cc nests the
// other way around — together they cycle.
#include "sim/lock_order_pair.h"

void
OrderPair::touchBoth()
{
    MutexLock alpha(&alpha_mu_);
    ++alpha_;
    MutexLock beta(&beta_mu_);
    ++beta_;
}
