// Fixture: include-graph — this header and include_cycle_b.h
#include "sim/include_cycle_b.h"

struct CycleA
{
    CycleB *peer = nullptr;
};
