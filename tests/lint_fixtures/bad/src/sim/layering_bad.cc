// Fixture: upward and consumer includes from src/sim must fire.
#include "cluster/cluster.h"
#include "bench/harness.h"

int fixtureLayer()
{
    return 1;
}
