// Fixture: the reverse nesting of lock_order_a.cc — the cycle's
// other half.
#include "sim/lock_order_pair.h"

void
OrderPair::reverse()
{
    MutexLock beta(&beta_mu_);
    ++beta_;
    MutexLock alpha(&alpha_mu_);
    ++alpha_;
}
