// Fixture: unannotated unordered container in src/ must fire.
#ifndef FIXTURE_UNORDERED_DECL_BAD_H
#define FIXTURE_UNORDERED_DECL_BAD_H

#include <string>
#include <unordered_map>

struct FixtureIndex
{
    std::unordered_map<std::string, int> byName;
};

#endif // FIXTURE_UNORDERED_DECL_BAD_H
