// Fixture: `float` in a billing file must fire at every mention.
double fixtureRate(float scale)
{
    float rate = 0.25;
    return rate * scale;
}
