// Fixture: iterating an unordered container must fire per site.
#include <string>
#include <unordered_map>

int fixtureSum()
{
    // LITMUS-LINT-ALLOW(unordered-decl): this fixture isolates the iteration rule
    std::unordered_map<std::string, int> counts;
    int sum = 0;
    for (const auto &entry : counts)
        sum += entry.second;
    if (counts.begin() == counts.end())
        sum = -sum;
    return sum;
}
