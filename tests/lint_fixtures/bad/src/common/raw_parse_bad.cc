// Fixture: lenient numeric parsing in src/ must fire per call.
#include <cstdlib>
#include <string>

double fixtureParse(const std::string &text)
{
    return atof(text.c_str()) + std::stod(text);
}
