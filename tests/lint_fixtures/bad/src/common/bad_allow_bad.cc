// Fixture: malformed pragmas must fire bad-allow.
// LITMUS-LINT-ALLOW(not-a-rule): the rule name is unknown
// LITMUS-LINT-ALLOW(wall-clock)
int fixtureValue()
{
    return 7;
}
