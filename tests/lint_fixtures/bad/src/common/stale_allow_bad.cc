// Fixture: a pragma that suppresses nothing must fire stale-allow.
// LITMUS-LINT-ALLOW(wall-clock): claims a clock read that is not here
int fixtureValue()
{
    return 42;
}
