// Fixture: global or unseeded randomness must fire unseeded-rng.
#include <cstdlib>
#include <random>

int fixtureDraw()
{
    std::mt19937 twister;
    std::random_device entropy;
    return static_cast<int>(twister() + entropy()) + rand();
}
