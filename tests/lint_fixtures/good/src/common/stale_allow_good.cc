// Fixture: a pragma that suppresses a real finding is not stale.
#include <cstdlib>
#include <string>

double fixtureHeaderProbe(const std::string &text)
{
    // LITMUS-LINT-ALLOW(raw-parse): fixture exercises the bare-line pragma form
    return strtod(text.c_str(), nullptr);
}
