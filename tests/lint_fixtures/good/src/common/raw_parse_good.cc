// Fixture: numeric text goes through the strict whole-string parsers.
#include <optional>
#include <string>

namespace litmus
{
std::optional<double> parseDoubleStrict(const std::string &value);
}

double fixtureParse(const std::string &text)
{
    return litmus::parseDoubleStrict(text).value_or(0.0);
}
