// Fixture: the well-formed same-line pragma form.
#include <ctime>

long fixtureStamp()
{
    return time(nullptr); // LITMUS-LINT-ALLOW(wall-clock): fixture exercises the same-line pragma form
}
