// Fixture: money and billed seconds stay double end to end.
double fixtureRate(double scale)
{
    double rate = 0.25;
    return rate * scale;
}
