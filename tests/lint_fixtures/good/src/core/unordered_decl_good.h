// Fixture: an audited unordered container carries an ALLOW record.
#ifndef FIXTURE_UNORDERED_DECL_GOOD_H
#define FIXTURE_UNORDERED_DECL_GOOD_H

#include <string>
#include <unordered_map>

struct FixtureIndex
{
    // LITMUS-LINT-ALLOW(unordered-decl): lookup-only index; nothing iterates it
    std::unordered_map<std::string, int> byName;
};

#endif // FIXTURE_UNORDERED_DECL_GOOD_H
