// Fixture: order-independent fold, audited; reports use the sorted copy.
#include <map>
#include <string>
#include <unordered_map>

int fixtureSum()
{
    // LITMUS-LINT-ALLOW(unordered-decl): scratch counter; reports read the sorted copy below
    std::unordered_map<std::string, int> counts;
    // LITMUS-LINT-ALLOW(unordered-iter): std::map's range constructor re-sorts; visit order cannot reach output
    std::map<std::string, int> sorted(counts.begin(), counts.end());
    int sum = 0;
    for (const auto &entry : sorted)
        sum += entry.second;
    return sum;
}
