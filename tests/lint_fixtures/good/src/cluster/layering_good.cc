// Fixture: downward includes follow the layer DAG.
#include "common/rng.h"
#include "sim/engine.h"

int fixtureLayer()
{
    return 0;
}
