// Fixture: every generator is seeded from the experiment seed.
#include <random>

int fixtureDraw(unsigned seed)
{
    std::mt19937 twister(seed);
    return static_cast<int>(twister());
}
