// Fixture: a resolved project include that is genuinely used — no
// cycle, and no unused-include advisory.
#include "sim/lock_order_pair.h"

struct ChainUser
{
    OrderPair *pair = nullptr;
};
