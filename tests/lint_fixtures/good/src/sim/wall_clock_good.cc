// Fixture: simulated time is the only time source.
double fixtureNow(double simNow)
{
    return simNow;
}
