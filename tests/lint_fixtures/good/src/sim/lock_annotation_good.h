// Fixture: the discipline done right — annotated guarded member,
// exempt atomic, lock taken through the capability wrapper.
#include <atomic>

#include "common/mutex.h"

class FullyGuarded
{
  public:
    void bump()
    {
        MutexLock lock(&mutex_);
        ++counter_;
        ready_.store(true);
    }

  private:
    Mutex mutex_;
    long counter_ LITMUS_GUARDED_BY(mutex_) = 0;
    std::atomic<bool> ready_{false};
};
