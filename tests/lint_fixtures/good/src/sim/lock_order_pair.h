// Fixture: two capability members; the canonical order is alpha_mu_
// before beta_mu_. lock_order_ab.cc keeps that order everywhere.
#include "common/mutex.h"

class OrderPair
{
  public:
    void touchBoth();
    void touchAlpha();

  private:
    Mutex alpha_mu_;
    long alpha_ LITMUS_GUARDED_BY(alpha_mu_) = 0;
    Mutex beta_mu_;
    long beta_ LITMUS_GUARDED_BY(beta_mu_) = 0;
};
