// Fixture: every multi-lock path nests beta_mu_ under alpha_mu_ —
// one canonical order, no cycle.
#include "sim/lock_order_pair.h"

void
OrderPair::touchBoth()
{
    MutexLock alpha(&alpha_mu_);
    ++alpha_;
    MutexLock beta(&beta_mu_);
    ++beta_;
}

void
OrderPair::touchAlpha()
{
    MutexLock alpha(&alpha_mu_);
    ++alpha_;
}
