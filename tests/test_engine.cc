/**
 * @file
 * Tests for the quantum-stepped engine: accounting identities, probe
 * capture, completion callbacks, churn, and determinism.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/machine.h"
#include "workload/program.h"
#include "sim/machine_catalog.h"

namespace litmus::sim
{
namespace
{

using workload::Phase;
using workload::PhaseProgram;
using workload::ProgramTask;

MachineConfig
smallMachine(unsigned cores = 4)
{
    auto cfg = MachineCatalog::get("cascade-5218");
    cfg.cores = cores;
    return cfg;
}

Phase
simplePhase(double minstr, double cpi0 = 1.0, double mpki = 5.0)
{
    Phase p;
    p.name = "p";
    p.instructions = minstr * 1e6;
    p.demand.cpi0 = cpi0;
    p.demand.l2Mpki = mpki;
    p.demand.l3WorkingSet = 1_MiB;
    p.demand.l3MissBase = 0.2;
    p.demand.mlp = 4.0;
    return p;
}

std::unique_ptr<ProgramTask>
simpleTask(double minstr = 50, Instructions probe = Task::noProbe)
{
    return std::make_unique<ProgramTask>(
        "t", PhaseProgram({simplePhase(minstr)}), probe);
}

TEST(Engine, RunsTaskToCompletion)
{
    Engine engine(smallMachine());
    bool done = false;
    std::string name;
    engine.onCompletion([&](Task &t) {
        done = true;
        name = t.name();
    });
    Task &task = engine.add(simpleTask());
    engine.runUntilComplete(task);
    EXPECT_TRUE(done);
    EXPECT_EQ(name, "t");
    EXPECT_EQ(engine.taskCount(), 0u);
}

TEST(Engine, CounterIdentities)
{
    Engine engine(smallMachine());
    TaskCounters counters;
    engine.onCompletion([&](Task &t) { counters = t.counters(); });
    Task &task = engine.add(simpleTask(50));
    engine.runUntilComplete(task);

    EXPECT_NEAR(counters.instructions, 50e6, 1e3);
    // T_private + T_shared == cycles.
    EXPECT_NEAR(counters.privateCycles() + counters.stallSharedCycles,
                counters.cycles, 1e-3);
    // L2 misses match the demand: 5 MPKI over 50M instructions.
    EXPECT_NEAR(counters.l2Misses, 250e3, 1e3);
    // Solo: L3 misses = base fraction of L2 misses.
    EXPECT_NEAR(counters.l3Misses, 0.2 * counters.l2Misses,
                counters.l2Misses * 0.01);
}

TEST(Engine, SoloCpiMatchesModel)
{
    // cpi = cpi0 + mpki/1000 * avg_lat_cycles / mlp at base frequency.
    const auto cfg = smallMachine();
    const RunResult run = runSolo(cfg, [] { return simpleTask(50); });
    const double cpi = run.counters.cycles / run.counters.instructions;
    const double ghz = cfg.baseFrequency * 1e-9;
    const double avgLat =
        (0.8 * cfg.l3HitLatencyNs + 0.2 * cfg.memLatencyNs) * ghz;
    const double expected = 1.0 + 0.005 * avgLat / 4.0;
    EXPECT_NEAR(cpi, expected, expected * 0.02);
}

TEST(Engine, WallTimeMatchesCycles)
{
    const auto cfg = smallMachine();
    const RunResult run = runSolo(cfg, [] { return simpleTask(50); });
    // Alone on a fixed-frequency machine, wall time ~= cycles / freq
    // (quantum rounding adds at most one quantum).
    EXPECT_NEAR(run.wallTime, run.counters.cycles / cfg.baseFrequency,
                100e-6);
}

TEST(Engine, ProbeCapturesAtWindow)
{
    Engine engine(smallMachine());
    ProbeCapture probe;
    engine.onCompletion([&](Task &t) { probe = t.probe(); });
    Task &task = engine.add(simpleTask(50, 10e6));
    engine.runUntilComplete(task);

    ASSERT_TRUE(probe.started);
    ASSERT_TRUE(probe.complete);
    const TaskCounters window = probe.taskAtEnd.since(probe.taskAtStart);
    EXPECT_GE(window.instructions, 10e6);
    // Window closes promptly (within a quantum's worth of work).
    EXPECT_LT(window.instructions, 10e6 + 1e6);
    EXPECT_GT(probe.machineAtEnd.time, probe.machineAtStart.time);
}

TEST(Engine, NoProbeWhenDisabled)
{
    Engine engine(smallMachine());
    ProbeCapture probe;
    engine.onCompletion([&](Task &t) { probe = t.probe(); });
    Task &task = engine.add(simpleTask(20));
    engine.runUntilComplete(task);
    EXPECT_FALSE(probe.started);
    EXPECT_FALSE(probe.complete);
}

TEST(Engine, MultiPhaseTaskRetiresAllPhases)
{
    PhaseProgram program({simplePhase(5, 0.5, 0.0),
                          simplePhase(7, 2.0, 20.0),
                          simplePhase(3, 1.0, 1.0)});
    Engine engine(smallMachine());
    TaskCounters counters;
    engine.onCompletion([&](Task &t) { counters = t.counters(); });
    Task &task = engine.add(
        std::make_unique<ProgramTask>("multi", program));
    engine.runUntilComplete(task);
    EXPECT_NEAR(counters.instructions, 15e6, 1e3);
}

TEST(Engine, CompletionChurnKeepsPopulation)
{
    Engine engine(smallMachine());
    int launched = 0;
    engine.onCompletion([&](Task &) {
        if (launched < 3) {
            ++launched;
            engine.add(simpleTask(1));
        }
    });
    engine.add(simpleTask(1));
    engine.run(0.2);
    EXPECT_EQ(launched, 3);
    EXPECT_EQ(engine.taskCount(), 0u);
}

TEST(Engine, MultipleListenersAllCalled)
{
    Engine engine(smallMachine());
    int a = 0, b = 0;
    engine.onCompletion([&](Task &) { ++a; });
    engine.onCompletion([&](Task &) { ++b; });
    Task &task = engine.add(simpleTask(1));
    engine.runUntilComplete(task);
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 1);
}

TEST(Engine, QuantumObserverSeesSharedState)
{
    Engine engine(smallMachine());
    int calls = 0;
    double lastLat = 0;
    engine.onQuantum([&](Seconds, const SharedState &s) {
        ++calls;
        lastLat = s.l3LatencyNs;
    });
    engine.run(0.001);
    EXPECT_EQ(calls, 20); // 1 ms / 50 us
    EXPECT_GT(lastLat, 0.0);
}

TEST(Engine, TimeAdvances)
{
    Engine engine(smallMachine());
    EXPECT_DOUBLE_EQ(engine.now(), 0.0);
    engine.run(0.01);
    EXPECT_NEAR(engine.now(), 0.01, 1e-9);
    EXPECT_NEAR(engine.machineCounters().time, 0.01, 1e-9);
}

TEST(Engine, RunUntilCompleteCapFatal)
{
    Engine engine(smallMachine());
    Task &task = engine.add(std::make_unique<workload::EndlessTask>(
        "endless", ResourceDemand{}));
    EXPECT_EXIT(engine.runUntilComplete(task, 0.01),
                ::testing::ExitedWithCode(1), "did not finish");
}

TEST(Engine, AliveTracksOwnership)
{
    Engine engine(smallMachine());
    Task &task = engine.add(simpleTask(1));
    EXPECT_TRUE(engine.alive(task));
    EXPECT_TRUE(engine.aliveId(task.id()));
    const auto id = task.id();
    engine.runUntilCompleteId(id);
    EXPECT_FALSE(engine.aliveId(id));
}

TEST(Engine, LiveTasksView)
{
    Engine engine(smallMachine());
    engine.add(simpleTask(100));
    engine.add(simpleTask(100));
    EXPECT_EQ(engine.liveTasks().size(), 2u);
}

TEST(Engine, DeterministicAcrossRuns)
{
    auto runOnce = [] {
        Engine engine(smallMachine());
        TaskCounters counters;
        engine.onCompletion([&](Task &t) { counters = t.counters(); });
        Task &task = engine.add(simpleTask(30));
        engine.add(simpleTask(100)); // co-runner
        engine.runUntilComplete(task);
        return counters;
    };
    const TaskCounters a = runOnce();
    const TaskCounters b = runOnce();
    EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.stallSharedCycles, b.stallSharedCycles);
    EXPECT_DOUBLE_EQ(a.l3Misses, b.l3Misses);
}

TEST(Engine, CoRunnerSlowsSubjectDown)
{
    const auto cfg = smallMachine();
    const RunResult solo = runSolo(cfg, [] { return simpleTask(30); });

    Engine engine(cfg);
    TaskCounters counters;
    engine.onCompletion([&](Task &t) {
        if (t.name() == "t")
            counters = t.counters();
    });
    // Memory-hungry co-runners on the other cores.
    for (int i = 0; i < 3; ++i) {
        ResourceDemand d;
        d.cpi0 = 0.6;
        d.l2Mpki = 30.0;
        d.l3WorkingSet = 16_MiB;
        d.l3MissBase = 0.8;
        d.mlp = 8.0;
        engine.add(
            std::make_unique<workload::EndlessTask>("hog", d));
    }
    Task &task = engine.add(simpleTask(30));
    engine.runUntilComplete(task);

    EXPECT_GT(counters.cycles, solo.counters.cycles * 1.01);
    EXPECT_GT(counters.stallSharedCycles,
              solo.counters.stallSharedCycles * 1.2);
}

TEST(Engine, RunExecutesExactQuantumCounts)
{
    // run() counts quanta as an integer: exact multiples stay exact
    // and fractional durations round up to the covering quantum.
    Engine engine(smallMachine());
    engine.run(3 * 50e-6);
    EXPECT_EQ(engine.stats().quanta.value(), 3.0);
    engine.run(0.4 * 50e-6);
    EXPECT_EQ(engine.stats().quanta.value(), 4.0);
}

TEST(Engine, RunIsDriftFreeOverManyCalls)
{
    // Accumulated floating-point time drifts after many quanta; the
    // quantum count must not (a 1 ms run is exactly 20 quanta, every
    // time, no matter how far the clock has advanced).
    Engine engine(smallMachine());
    const int calls = 2500;
    for (int i = 0; i < calls; ++i)
        engine.run(1e-3);
    EXPECT_EQ(engine.stats().quanta.value(), 20.0 * calls);
}

TEST(Engine, QuantumCountsComeFromIntegerTicks)
{
    // Quantum counts are computed on integer nanosecond ticks, so
    // exact and near-exact quantum multiples never gain or lose a
    // quantum to floating-point representation error, no matter how
    // the duration was produced.
    const Seconds q = 50e-6;
    Engine engine(smallMachine());
    EXPECT_EQ(engine.quantaForDuration(0.0), 0u);
    EXPECT_EQ(engine.quantaForDuration(q), 1u);
    EXPECT_EQ(engine.quantaForDuration(3 * q), 3u);
    // Near-exact from below and above: both snap to the multiple.
    EXPECT_EQ(engine.quantaForDuration(q * (1.0 - 1e-12)), 1u);
    EXPECT_EQ(engine.quantaForDuration(q * (1.0 + 1e-12)), 1u);
    EXPECT_EQ(engine.quantaForDuration(1000 * q * (1.0 - 1e-13)),
              1000u);
    // A fractional remainder still rounds up to the covering quantum.
    EXPECT_EQ(engine.quantaForDuration(2.5 * q), 3u);
    // Accumulated sums that drift below the exact multiple stay exact:
    // 20 * 50us accumulated in floating point is not exactly 1ms.
    Seconds accumulated = 0;
    for (int i = 0; i < 20; ++i)
        accumulated += q;
    EXPECT_EQ(engine.quantaForDuration(accumulated), 20u);
    // Multi-epoch batches (k * epoch) are exact for any k.
    for (std::uint64_t k : {1ull, 7ull, 1000ull, 123456ull})
        EXPECT_EQ(engine.quantaForDuration(
                      static_cast<double>(k) * 1e-3),
                  k * 20u);
}

TEST(Engine, RunQuantaExecutesExactCount)
{
    Engine engine(smallMachine());
    engine.runQuanta(7);
    EXPECT_EQ(engine.stats().quanta.value(), 7.0);
    EXPECT_NEAR(engine.now(), 7 * 50e-6, 1e-12);
}

TEST(Engine, RejectsFractionalNanosecondQuantum)
{
    // 2.5 ns would silently round to a 3 ns tick and shortchange
    // every run() by 17%; the constructor must refuse instead.
    EXPECT_EXIT(Engine(smallMachine(), FrequencyPolicy::Fixed, 2.5e-9),
                ::testing::ExitedWithCode(1), "whole number");
}

TEST(Engine, ObserverSeesBusySocketNotIdleOne)
{
    // Regression: with sockets > 1, an idle later socket used to
    // overwrite the busy earlier one in the per-quantum observer state
    // (0 >= 0 for a workload with no DRAM traffic). The L3-only load
    // below runs on socket 0; socket 1 stays idle.
    auto cfg = MachineCatalog::get("cascade-5218-dual");
    Engine engine(cfg);
    for (unsigned cpu = 0; cpu < 4; ++cpu) {
        ResourceDemand d;
        d.cpi0 = 0.6;
        d.l2Mpki = 25.0;
        d.l3WorkingSet = 1_MiB;
        d.l3MissBase = 0.0; // all L2 misses hit the L3: no DRAM traffic
        d.mlp = 4.0;
        auto task =
            std::make_unique<workload::EndlessTask>("l3hog", d);
        task->setAffinity({cpu});
        engine.add(std::move(task));
    }
    double observedL3 = 0;
    engine.onQuantum([&](Seconds, const SharedState &s) {
        observedL3 = s.l3Utilization;
    });
    engine.run(0.002);
    EXPECT_GT(observedL3, 0.01);
}

TEST(Engine, RejectsNullTask)
{
    Engine engine(smallMachine());
    EXPECT_EXIT(engine.add(nullptr), ::testing::ExitedWithCode(1),
                "null");
}

TEST(Engine, SmtSiblingInflatesCpi)
{
    auto cfg = smallMachine(2);
    cfg.smtWays = 2;
    // Solo on the machine (no sibling).
    const RunResult solo = runSolo(cfg, [] { return simpleTask(20); });

    Engine engine(cfg);
    TaskCounters counters;
    engine.onCompletion([&](Task &t) {
        if (t.name() == "t")
            counters = t.counters();
    });
    auto sibling = std::make_unique<workload::EndlessTask>(
        "sib", ResourceDemand{});
    sibling->setAffinity({1}); // core 0, way 1
    engine.add(std::move(sibling));
    auto subject = simpleTask(20);
    subject->setAffinity({0}); // core 0, way 0
    Task &task = engine.add(std::move(subject));
    engine.runUntilComplete(task);

    const double soloCpi =
        solo.counters.cycles / solo.counters.instructions;
    const double smtCpi = counters.cycles / counters.instructions;
    EXPECT_GT(smtCpi, soloCpi * 1.5);
}

} // namespace
} // namespace litmus::sim
