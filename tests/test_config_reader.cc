/**
 * @file
 * Tests for the key=value configuration reader and machine overrides.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/config_reader.h"
#include "sim/machine_catalog.h"

namespace litmus
{
namespace
{

TEST(ConfigReader, ParsesBasics)
{
    const auto cfg = ConfigReader::fromString(
        "a = 1\n"
        "b=hello   # trailing comment\n"
        "# full comment line\n"
        "\n"
        "c = 2.5\n");
    EXPECT_TRUE(cfg.contains("a"));
    EXPECT_EQ(cfg.getInt("a", 0), 1);
    EXPECT_EQ(cfg.get("b"), "hello");
    EXPECT_DOUBLE_EQ(cfg.getDouble("c", 0), 2.5);
    EXPECT_EQ(cfg.keys().size(), 3u);
}

TEST(ConfigReader, FallbacksWhenMissing)
{
    const auto cfg = ConfigReader::fromString("x = 1\n");
    EXPECT_EQ(cfg.getInt("nope", 7), 7);
    EXPECT_DOUBLE_EQ(cfg.getDouble("nope", 1.25), 1.25);
    EXPECT_EQ(cfg.getString("nope", "d"), "d");
    EXPECT_TRUE(cfg.getBool("nope", true));
}

TEST(ConfigReader, BoolSpellings)
{
    const auto cfg = ConfigReader::fromString(
        "a = true\nb = off\nc = YES\nd = 0\n");
    EXPECT_TRUE(cfg.getBool("a", false));
    EXPECT_FALSE(cfg.getBool("b", true));
    EXPECT_TRUE(cfg.getBool("c", false));
    EXPECT_FALSE(cfg.getBool("d", true));
}

TEST(ConfigReader, MalformedLineFatal)
{
    EXPECT_EXIT(ConfigReader::fromString("not a pair\n"),
                ::testing::ExitedWithCode(1), "key=value");
}

TEST(ConfigReader, MalformedLineReportsLineNumber)
{
    EXPECT_EXIT(ConfigReader::fromString("a = 1\n\n# note\nbroken\n"),
                ::testing::ExitedWithCode(1), "line 4");
}

TEST(ConfigReader, EmptyKeyFatal)
{
    EXPECT_EXIT(ConfigReader::fromString("= orphan value\n"),
                ::testing::ExitedWithCode(1), "empty key");
}

TEST(ConfigReader, CommentedEqualsIsMalformed)
{
    // The comment strips the '=', leaving a bare token.
    EXPECT_EXIT(ConfigReader::fromString("cores # = 4\n"),
                ::testing::ExitedWithCode(1), "key=value");
}

TEST(ConfigReader, EmptyValueIsAllowed)
{
    const auto cfg = ConfigReader::fromString("k =\n");
    EXPECT_TRUE(cfg.contains("k"));
    EXPECT_EQ(cfg.get("k"), "");
}

TEST(ConfigReader, TrailingGarbageIntFatal)
{
    const auto cfg = ConfigReader::fromString("x = 12abc\n");
    EXPECT_EXIT((void)cfg.getInt("x", 0), ::testing::ExitedWithCode(1),
                "integer");
}

TEST(ConfigReader, MalformedDoubleFatal)
{
    const auto cfg = ConfigReader::fromString("x = 1.5ghz\n");
    EXPECT_EXIT((void)cfg.getDouble("x", 0),
                ::testing::ExitedWithCode(1), "number");
}

TEST(ConfigReader, MalformedBoolFatal)
{
    const auto cfg = ConfigReader::fromString("x = maybe\n");
    EXPECT_EXIT((void)cfg.getBool("x", false),
                ::testing::ExitedWithCode(1), "boolean");
}

TEST(ConfigReader, FromFileRoundTrip)
{
    const std::string path =
        ::testing::TempDir() + "config_reader_roundtrip.conf";
    {
        std::ofstream out(path);
        out << "# fleet override\ncores = 48\nbase_ghz = 3.0\n";
    }
    const auto cfg = ConfigReader::fromFile(path);
    std::remove(path.c_str());
    EXPECT_EQ(cfg.getInt("cores", 0), 48);
    EXPECT_DOUBLE_EQ(cfg.getDouble("base_ghz", 0), 3.0);
}

TEST(ConfigReader, MalformedNumberFatal)
{
    const auto cfg = ConfigReader::fromString("x = abc\n");
    EXPECT_EXIT((void)cfg.getInt("x", 0), ::testing::ExitedWithCode(1),
                "integer");
}

TEST(ConfigReader, MissingKeyFatal)
{
    const ConfigReader cfg;
    EXPECT_EXIT((void)cfg.get("ghost"), ::testing::ExitedWithCode(1),
                "missing key");
}

TEST(ConfigReader, MissingFileFatal)
{
    EXPECT_EXIT(ConfigReader::fromFile("/nonexistent/path.conf"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(ConfigReader, SetOverrides)
{
    ConfigReader cfg;
    cfg.set("k", "1");
    cfg.set("k", "2");
    EXPECT_EQ(cfg.getInt("k", 0), 2);
    EXPECT_EQ(cfg.keys().size(), 1u);
}

TEST(MachineOverrides, AppliesRecognizedKeys)
{
    auto machine = sim::MachineCatalog::get("cascade-5218");
    const auto cfg = ConfigReader::fromString(
        "cores = 48\n"
        "base_ghz = 3.0\n"
        "l3_capacity_mib = 60\n"
        "mem_service_rate = 2.4\n"
        "residency_factor = 0.1\n"
        "time_slice_ms = 2\n"
        "memory_capacity_gib = 512\n");
    applyMachineOverrides(machine, cfg);
    EXPECT_EQ(machine.cores, 48u);
    EXPECT_DOUBLE_EQ(machine.baseFrequency, 3.0e9);
    EXPECT_EQ(machine.l3Capacity, 60_MiB);
    EXPECT_DOUBLE_EQ(machine.memServiceRate, 2.4);
    EXPECT_DOUBLE_EQ(machine.residencyFactor, 0.1);
    EXPECT_DOUBLE_EQ(machine.timeSlice, 2e-3);
    EXPECT_EQ(machine.memoryCapacity, 512_GiB);
}

TEST(MachineOverrides, UnknownKeyFatal)
{
    auto machine = sim::MachineCatalog::get("cascade-5218");
    const auto cfg = ConfigReader::fromString("coresss = 2\n");
    EXPECT_EXIT(applyMachineOverrides(machine, cfg),
                ::testing::ExitedWithCode(1), "unknown key");
}

TEST(MachineOverrides, InvalidResultFatal)
{
    auto machine = sim::MachineCatalog::get("cascade-5218");
    const auto cfg = ConfigReader::fromString("cores = 0\n");
    EXPECT_EXIT(applyMachineOverrides(machine, cfg),
                ::testing::ExitedWithCode(1), "cores");
}

} // namespace
} // namespace litmus
