/**
 * @file
 * Tests for the machine presets and their validation.
 */

#include <gtest/gtest.h>

#include "sim/machine_catalog.h"

namespace litmus::sim
{
namespace
{

TEST(MachineConfig, CascadeLakePreset)
{
    const auto cfg = MachineCatalog::get("cascade-5218");
    EXPECT_EQ(cfg.cores, 32u);
    EXPECT_EQ(cfg.smtWays, 1u);
    EXPECT_EQ(cfg.hwThreads(), 32u);
    EXPECT_DOUBLE_EQ(cfg.baseFrequency, 2.8e9);
    EXPECT_EQ(cfg.l3Capacity, 44_MiB);
    EXPECT_EQ(cfg.memoryCapacity, 384_GiB);
    EXPECT_NO_FATAL_FAILURE(cfg.validate());
}

TEST(MachineConfig, IceLakePreset)
{
    const auto cfg = MachineCatalog::get("icelake-4314");
    EXPECT_EQ(cfg.cores, 16u);
    EXPECT_DOUBLE_EQ(cfg.baseFrequency, 2.4e9);
    EXPECT_EQ(cfg.l3Capacity, 24_MiB);
    EXPECT_EQ(cfg.memoryCapacity, 128_GiB);
}

TEST(MachineConfig, PresetsDiffer)
{
    const auto cl = MachineCatalog::get("cascade-5218");
    const auto il = MachineCatalog::get("icelake-4314");
    EXPECT_NE(cl.name, il.name);
    EXPECT_GT(cl.l3ServiceRate, il.l3ServiceRate);
    EXPECT_GT(cl.memServiceRate, il.memServiceRate);
}

TEST(MachineConfig, SmtDoublesHwThreads)
{
    auto cfg = MachineCatalog::get("cascade-5218");
    cfg.smtWays = 2;
    EXPECT_EQ(cfg.hwThreads(), 64u);
    EXPECT_NO_FATAL_FAILURE(cfg.validate());
}

TEST(MachineConfig, RejectsZeroCores)
{
    auto cfg = MachineCatalog::get("cascade-5218");
    cfg.cores = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "cores");
}

TEST(MachineConfig, RejectsBadSmt)
{
    auto cfg = MachineCatalog::get("cascade-5218");
    cfg.smtWays = 3;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "smtWays");
}

TEST(MachineConfig, RejectsInvertedLatencies)
{
    auto cfg = MachineCatalog::get("cascade-5218");
    cfg.memLatencyNs = cfg.l3HitLatencyNs / 2;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "latencies");
}

TEST(MachineConfig, RejectsBadTurbo)
{
    auto cfg = MachineCatalog::get("cascade-5218");
    cfg.turboFrequency = cfg.baseFrequency / 2;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "frequency");
}

TEST(MachineConfig, RejectsBadQueueModel)
{
    auto cfg = MachineCatalog::get("cascade-5218");
    cfg.l3QueueMax = 0.5;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "queue");
}

TEST(MachineConfig, RejectsNegativeWarmth)
{
    auto cfg = MachineCatalog::get("cascade-5218");
    cfg.warmthMaxPenalty = -0.1;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "warmth");
}

TEST(MachineConfig, RejectsZeroTimeSlice)
{
    auto cfg = MachineCatalog::get("cascade-5218");
    cfg.timeSlice = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "timeSlice");
}

} // namespace
} // namespace litmus::sim
