/**
 * @file
 * Tests for Litmus-probe reading and slowdown computation.
 */

#include <gtest/gtest.h>

#include "core/litmus_probe.h"
#include "sim/machine.h"
#include "workload/function_model.h"
#include "workload/suite.h"
#include "sim/machine_catalog.h"

namespace litmus::pricing
{
namespace
{

sim::ProbeCapture
syntheticCapture()
{
    sim::ProbeCapture cap;
    cap.started = true;
    cap.complete = true;
    cap.taskAtStart.instructions = 0;
    cap.taskAtStart.cycles = 0;
    cap.taskAtEnd.instructions = 10e6;
    cap.taskAtEnd.cycles = 15e6;
    cap.taskAtEnd.stallSharedCycles = 5e6;
    cap.machineAtStart.l3Misses = 1000;
    cap.machineAtStart.time = 0.0;
    cap.machineAtEnd.l3Misses = 601000;
    cap.machineAtEnd.time = 3e-3;
    return cap;
}

TEST(ReadProbe, ExtractsPerInstructionComponents)
{
    const ProbeReading r = readProbe(syntheticCapture());
    EXPECT_DOUBLE_EQ(r.instructions, 10e6);
    EXPECT_DOUBLE_EQ(r.privCpi, 1.0);
    EXPECT_DOUBLE_EQ(r.sharedCpi, 0.5);
    EXPECT_DOUBLE_EQ(r.totalCpi(), 1.5);
    // 600k misses over 3000 us.
    EXPECT_DOUBLE_EQ(r.machineL3MissPerUs, 200.0);
    EXPECT_TRUE(r.valid());
}

TEST(ReadProbe, IncompleteFatal)
{
    sim::ProbeCapture cap = syntheticCapture();
    cap.complete = false;
    EXPECT_EXIT(readProbe(cap), ::testing::ExitedWithCode(1),
                "incomplete");
}

TEST(SlowdownOf, ComponentRatios)
{
    ProbeReading base;
    base.privCpi = 0.8;
    base.sharedCpi = 0.2;
    base.instructions = 1e6;
    ProbeReading congested;
    congested.privCpi = 0.88;
    congested.sharedCpi = 0.5;
    congested.instructions = 1e6;
    const ProbeSlowdown s = slowdownOf(congested, base);
    EXPECT_NEAR(s.priv, 1.1, 1e-12);
    EXPECT_NEAR(s.shared, 2.5, 1e-12);
    EXPECT_NEAR(s.total, 1.38, 1e-12);
}

TEST(SlowdownOf, DegenerateBaselineFatal)
{
    ProbeReading base;
    base.privCpi = 1.0;
    base.sharedCpi = 0.0; // degenerate
    base.instructions = 1e6;
    ProbeReading reading = base;
    EXPECT_EXIT(slowdownOf(reading, base), ::testing::ExitedWithCode(1),
                "degenerate");
}

TEST(Probe, EndToEndSoloCapture)
{
    // A real function run alone: probe covers the startup window and
    // the slowdown against itself is exactly 1.
    const auto cfg = sim::MachineCatalog::get("cascade-5218");
    const auto &spec = workload::functionByName("aes-py");
    const auto run = sim::runSolo(
        cfg, [&] { return workload::makeNominalInvocation(spec, true); });
    ASSERT_TRUE(run.probe.complete);
    const ProbeReading reading = readProbe(run.probe);
    EXPECT_GE(reading.instructions,
              workload::probeWindow(spec.language));
    EXPECT_GT(reading.privCpi, 0.0);
    EXPECT_GT(reading.sharedCpi, 0.0);
    const ProbeSlowdown self = slowdownOf(reading, reading);
    EXPECT_DOUBLE_EQ(self.priv, 1.0);
    EXPECT_DOUBLE_EQ(self.shared, 1.0);
}

TEST(Probe, SameLanguageFunctionsProbeAlike)
{
    // Two different Python functions must produce nearly identical
    // probe readings (the startup is shared) — the core Litmus
    // assumption.
    const auto cfg = sim::MachineCatalog::get("cascade-5218");
    auto readFor = [&](const char *name) {
        const auto run = sim::runSolo(cfg, [&] {
            return workload::makeNominalInvocation(
                workload::functionByName(name), true);
        });
        return readProbe(run.probe);
    };
    const ProbeReading a = readFor("float-py");
    const ProbeReading b = readFor("pager-py");
    EXPECT_NEAR(a.privCpi, b.privCpi, a.privCpi * 0.01);
    EXPECT_NEAR(a.sharedCpi, b.sharedCpi, a.sharedCpi * 0.02);
}

} // namespace
} // namespace litmus::pricing
