/**
 * @file
 * Tests for the pricing engine and billing ledger.
 */

#include <gtest/gtest.h>

#include "core/billing.h"

namespace litmus::pricing
{
namespace
{

using workload::GeneratorKind;
using workload::Language;

/** Minimal synthetic model (same tables as test_discount_model). */
DiscountModel
makeModel()
{
    CongestionTable congestion;
    PerformanceTable performance;
    for (Language lang : workload::allLanguages()) {
        ProbeReading base;
        base.privCpi = 0.7;
        base.sharedCpi = 0.2;
        base.instructions = 45e6;
        base.machineL3MissPerUs = 1.0;
        congestion.setBaseline(lang, base);
    }
    for (unsigned level : {2u, 4u, 6u, 8u}) {
        const double x = 1.0 + 0.05 * level;
        for (Language lang : workload::allLanguages()) {
            CongestionEntry e;
            e.privSlowdown = 1.0 + 0.005 * level;
            e.sharedSlowdown = x;
            e.totalSlowdown = x;
            e.l3MissPerUs = 10.0 * x;
            congestion.add(lang, GeneratorKind::CtGen, level, e);
            e.l3MissPerUs = 1000.0 * x;
            congestion.add(lang, GeneratorKind::MbGen, level, e);
        }
        PerformanceEntry p;
        p.privSlowdown = 1.0 + 0.005 * level;
        p.sharedSlowdown = x;
        p.totalSlowdown = x;
        performance.add(GeneratorKind::CtGen, level, p);
        performance.add(GeneratorKind::MbGen, level, p);
    }
    return DiscountModel(congestion, performance);
}

sim::TaskCounters
counters(double instr, double priv_cpi, double shared_cpi)
{
    sim::TaskCounters c;
    c.instructions = instr;
    c.stallSharedCycles = instr * shared_cpi;
    c.cycles = instr * (priv_cpi + shared_cpi);
    return c;
}

ProbeReading
probe(double priv_slow, double shared_slow, double l3)
{
    ProbeReading r;
    r.privCpi = 0.7 * priv_slow;
    r.sharedCpi = 0.2 * shared_slow;
    r.instructions = 45e6;
    r.machineL3MissPerUs = l3;
    return r;
}

TEST(PricingEngine, CommercialIsMeasuredCycles)
{
    const DiscountModel model = makeModel();
    const PricingEngine pricer(model);
    SoloBaseline solo{0.8, 0.2};
    const auto q = pricer.quote(counters(1e8, 0.9, 0.4),
                                probe(1.02, 1.3, 15.0),
                                Language::Python, solo);
    EXPECT_DOUBLE_EQ(q.commercial, 1e8 * 1.3);
}

TEST(PricingEngine, IdealUsesSoloCpi)
{
    const DiscountModel model = makeModel();
    const PricingEngine pricer(model);
    SoloBaseline solo{0.8, 0.2};
    const auto q = pricer.quote(counters(1e8, 0.9, 0.4),
                                probe(1.02, 1.3, 15.0),
                                Language::Python, solo);
    EXPECT_DOUBLE_EQ(q.idealPriv, 0.8e8);
    EXPECT_DOUBLE_EQ(q.idealShared, 0.2e8);
    EXPECT_DOUBLE_EQ(q.ideal, 1.0e8);
    EXPECT_NEAR(q.idealNormalized(), 1.0 / 1.3, 1e-9);
}

TEST(PricingEngine, LitmusAppliesComponentRates)
{
    const DiscountModel model = makeModel();
    const PricingEngine pricer(model);
    SoloBaseline solo{0.8, 0.2};
    const auto q = pricer.quote(counters(1e8, 0.9, 0.4),
                                probe(1.02, 1.3, 15.0),
                                Language::Python, solo);
    EXPECT_NEAR(q.litmusPriv, q.estimate.rPrivate * 0.9e8, 1.0);
    EXPECT_NEAR(q.litmusShared, q.estimate.rShared * 0.4e8, 1.0);
    EXPECT_DOUBLE_EQ(q.litmus, q.litmusPriv + q.litmusShared);
    // With discounts on, the Litmus price undercuts commercial.
    EXPECT_LT(q.litmus, q.commercial);
}

TEST(PricingEngine, ErrorDecomposition)
{
    const DiscountModel model = makeModel();
    const PricingEngine pricer(model);
    SoloBaseline solo{0.8, 0.2};
    const auto q = pricer.quote(counters(1e8, 0.9, 0.4),
                                probe(1.02, 1.3, 15.0),
                                Language::Python, solo);
    EXPECT_NEAR(q.privError() + q.sharedError(), q.totalError(), 1e-12);
    EXPECT_NEAR(q.totalError(), (q.litmus - q.ideal) / q.ideal, 1e-12);
}

TEST(PricingEngine, RejectsEmptyCounters)
{
    const DiscountModel model = makeModel();
    const PricingEngine pricer(model);
    SoloBaseline solo{0.8, 0.2};
    EXPECT_EXIT(pricer.quote(sim::TaskCounters{},
                             probe(1.0, 1.0, 10.0), Language::Python,
                             solo),
                ::testing::ExitedWithCode(1), "instructions");
}

TEST(PricingEngine, RejectsBadSharingFactor)
{
    const DiscountModel model = makeModel();
    EXPECT_EXIT(PricingEngine(model, -1.0),
                ::testing::ExitedWithCode(1), "sharing");
}

TEST(BillingLedger, ChargesGbSeconds)
{
    const DiscountModel model = makeModel();
    const PricingEngine pricer(model);
    SoloBaseline solo{0.8, 0.2};
    const auto c = counters(1e9, 0.9, 0.4);
    const auto q = pricer.quote(c, probe(1.02, 1.3, 15.0),
                                Language::Python, solo);

    BillingConfig bcfg;
    bcfg.billingFrequency = 2.8e9;
    BillingLedger ledger(bcfg);
    const BillRecord &rec =
        ledger.record("tenant-a", "aes-py", c, q, 1_GiB);

    const double seconds = c.cycles / 2.8e9;
    EXPECT_NEAR(rec.cpuSeconds, seconds, 1e-12);
    EXPECT_NEAR(rec.commercialUsd,
                seconds * 1.0 * bcfg.usdPerGiBSecond, 1e-15);
    EXPECT_NEAR(rec.litmusUsd,
                rec.commercialUsd * q.litmusNormalized(), 1e-15);
    EXPECT_GT(rec.discount(), 0.0);
}

TEST(BillingLedger, AggregatesAcrossRecords)
{
    const DiscountModel model = makeModel();
    const PricingEngine pricer(model);
    SoloBaseline solo{0.8, 0.2};
    BillingLedger ledger;
    for (int i = 0; i < 3; ++i) {
        const auto c = counters(1e9, 0.9, 0.4);
        const auto q = pricer.quote(c, probe(1.02, 1.3, 15.0),
                                    Language::Python, solo);
        ledger.record("tenant-a", "fn", c, q, 512_MiB);
    }
    EXPECT_EQ(ledger.records().size(), 3u);
    EXPECT_NEAR(ledger.totalLitmusUsd(),
                ledger.records()[0].litmusUsd * 3, 1e-12);
    EXPECT_GT(ledger.aggregateDiscount(), 0.0);
    EXPECT_LT(ledger.aggregateDiscount(), 1.0);
}

TEST(BillingLedger, TenantFilter)
{
    const DiscountModel model = makeModel();
    const PricingEngine pricer(model);
    SoloBaseline solo{0.8, 0.2};
    BillingLedger ledger;
    const auto c = counters(1e8, 0.9, 0.4);
    const auto q = pricer.quote(c, probe(1.02, 1.3, 15.0),
                                Language::Python, solo);
    ledger.record("a", "f1", c, q, 256_MiB);
    ledger.record("b", "f2", c, q, 256_MiB);
    ledger.record("a", "f3", c, q, 256_MiB);
    EXPECT_EQ(ledger.tenantRecords("a").size(), 2u);
    EXPECT_EQ(ledger.tenantRecords("b").size(), 1u);
    EXPECT_TRUE(ledger.tenantRecords("c").empty());
}

TEST(BillingLedger, RejectsBadConfig)
{
    BillingConfig cfg;
    cfg.usdPerGiBSecond = 0.0;
    EXPECT_EXIT({ BillingLedger ledger(cfg); }, 
                ::testing::ExitedWithCode(1), "rates");
}

TEST(BillingLedger, EmptyAggregates)
{
    const BillingLedger ledger;
    EXPECT_DOUBLE_EQ(ledger.totalCommercialUsd(), 0.0);
    EXPECT_DOUBLE_EQ(ledger.aggregateDiscount(), 0.0);
}

} // namespace
} // namespace litmus::pricing
