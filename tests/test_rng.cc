/**
 * @file
 * Unit and property tests for the deterministic random generator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"

namespace litmus
{
namespace
{

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += a() == b();
    EXPECT_LT(equal, 5);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng rng(0);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 100; ++i)
        seen.insert(rng());
    EXPECT_GT(seen.size(), 95u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.5);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.5);
    }
}

TEST(Rng, UniformMeanConverges)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow)
{
    Rng rng(13);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng rng(17);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(19);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const auto v = rng.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(23);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianShifted)
{
    Rng rng(29);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, JitterCentersOnOne)
{
    Rng rng(31);
    double logSum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double j = rng.jitter(0.02);
        EXPECT_GT(j, 0.9);
        EXPECT_LT(j, 1.1);
        logSum += std::log(j);
    }
    EXPECT_NEAR(logSum / n, 0.0, 0.005);
}

TEST(Rng, JitterZeroSpreadIsIdentity)
{
    Rng rng(37);
    EXPECT_EQ(rng.jitter(0.0), 1.0);
    EXPECT_EQ(rng.jitter(-1.0), 1.0);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(41);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(3.0);
    EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ChanceFrequency)
{
    Rng rng(43);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(47);
    Rng child = parent.fork();
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += parent() == child();
    EXPECT_LT(equal, 5);
}

/** Property sweep: basic sanity across many seeds. */
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngSeedSweep, UniformBoundsAndVariety)
{
    Rng rng(GetParam());
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 256; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        seen.insert(rng());
    }
    EXPECT_GT(seen.size(), 250u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 2ull, 42ull,
                                           0xdeadbeefull, ~0ull,
                                           0x123456789abcdefull));

} // namespace
} // namespace litmus
