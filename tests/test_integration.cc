/**
 * @file
 * Integration tests: the full Litmus pipeline — calibrate, fit the
 * discount model, and price functions inside a churning population —
 * on a reduced configuration so the suite stays fast.
 */

#include <gtest/gtest.h>

#include "common/stats.h"
#include "core/experiment.h"

namespace litmus::pricing
{
namespace
{

/** Shared one-time pipeline state (calibration is the slow part). */
class Pipeline : public ::testing::Test
{
  protected:
    static const DiscountModel &model()
    {
        static const DiscountModel m = [] {
            CalibrationConfig cfg;
            cfg.levels = {4, 10, 16, 22};
            cfg.referencePool = {
                &workload::functionByName("thum-py"),
                &workload::functionByName("bfs-py"),
                &workload::functionByName("cur-nj"),
                &workload::functionByName("profile-go"),
            };
            cfg.warmup = 0.03;
            const CalibrationProfile r = calibrate(cfg);
            return DiscountModel(r.congestion, r.performance);
        }();
        return m;
    }

    static const ExperimentResult &result()
    {
        static const ExperimentResult r = [] {
            ExperimentConfig cfg;
            cfg.coRunners = 12;
            cfg.layoutOnePerCore();
            cfg.subjects = {&workload::functionByName("aes-py"),
                            &workload::functionByName("float-py"),
                            &workload::functionByName("pager-py"),
                            &workload::functionByName("rate-go")};
            cfg.repetitions = 3;
            cfg.warmup = 0.08;
            return runPricingExperiment(cfg, model());
        }();
        return r;
    }
};

TEST_F(Pipeline, PricesAreDiscountsNotSurcharges)
{
    for (const auto &row : result().rows) {
        EXPECT_LE(row.litmusPrice, 1.0 + 1e-9) << row.name;
        EXPECT_GT(row.litmusPrice, 0.5) << row.name;
        EXPECT_LE(row.idealPrice, 1.0 + 1e-9) << row.name;
    }
}

TEST_F(Pipeline, LitmusTracksIdealClosely)
{
    // The headline property: the suite-level discount from Litmus
    // pricing sits within ~3 percentage points of the ideal discount.
    EXPECT_NEAR(result().litmusDiscount(), result().idealDiscount(),
                0.03);
    // And each function's price is within 10% of its ideal price.
    for (const auto &row : result().rows)
        EXPECT_NEAR(row.litmusPrice, row.idealPrice, 0.10) << row.name;
}

TEST_F(Pipeline, CongestionProducesRealDiscounts)
{
    EXPECT_GT(result().idealDiscount(), 0.01);
    EXPECT_GT(result().litmusDiscount(), 0.01);
}

TEST_F(Pipeline, FloatPyOverCompensated)
{
    // The paper's incentive discussion: compute-bound functions get
    // more discount than their own slowdown justifies (negative total
    // error), because the machine-wide congestion rate is applied.
    const auto &floatRow = result().row("float-py");
    EXPECT_LT(floatRow.litmusPrice, 1.0);
    EXPECT_LE(floatRow.totalError, 0.02);
}

TEST_F(Pipeline, ErrorDecompositionConsistent)
{
    for (const auto &row : result().rows) {
        EXPECT_NEAR(row.privError + row.sharedError, row.totalError,
                    1e-9)
            << row.name;
    }
}

TEST_F(Pipeline, PredictionsAreSlowdowns)
{
    for (const auto &row : result().rows) {
        EXPECT_GE(row.predictedPriv, 1.0) << row.name;
        EXPECT_GE(row.predictedShared, 1.0) << row.name;
    }
}

TEST_F(Pipeline, AggregatesConsistent)
{
    std::vector<double> lit;
    for (const auto &row : result().rows)
        lit.push_back(row.litmusPrice);
    EXPECT_NEAR(result().gmeanLitmusPrice, gmean(lit), 1e-12);
}

TEST(PipelineDeterminism, SameSeedSameResult)
{
    CalibrationConfig ccfg;
    ccfg.levels = {6, 18};
    ccfg.referencePool = {&workload::functionByName("gzip-py"),
                          &workload::functionByName("aes-go")};
    ccfg.warmup = 0.02;
    const CalibrationProfile cal = calibrate(ccfg);
    const DiscountModel model(cal.congestion, cal.performance);

    auto runOnce = [&] {
        ExperimentConfig cfg;
        cfg.coRunners = 6;
        cfg.layoutOnePerCore();
        cfg.subjects = {&workload::functionByName("aes-py")};
        cfg.repetitions = 2;
        cfg.warmup = 0.03;
        cfg.seed = 77;
        return runPricingExperiment(cfg, model);
    };
    const auto a = runOnce();
    const auto b = runOnce();
    EXPECT_DOUBLE_EQ(a.rows[0].litmusPrice, b.rows[0].litmusPrice);
    EXPECT_DOUBLE_EQ(a.rows[0].idealPrice, b.rows[0].idealPrice);
}

TEST(PipelineMethod1, SharingFactorImprovesSharedEnvironment)
{
    // Method 1 (Section 7.2): in a temporally shared environment,
    // dividing the observed private slowdown by the Figure 14 factor
    // and refunding it must *increase* the granted discount.
    CalibrationConfig ccfg;
    ccfg.levels = {6, 18};
    ccfg.referencePool = {&workload::functionByName("gzip-py"),
                          &workload::functionByName("cur-nj")};
    ccfg.warmup = 0.02;
    const CalibrationProfile cal = calibrate(ccfg);
    const DiscountModel model(cal.congestion, cal.performance);

    auto run = [&](double factor) {
        ExperimentConfig cfg;
        cfg.coRunners = 20; // pooled over 4 cpus: 5 per cpu
        cfg.layoutPooled(4);
        cfg.subjects = {&workload::functionByName("aes-py")};
        cfg.repetitions = 2;
        cfg.warmup = 0.08;
        cfg.sharingFactor = factor;
        return runPricingExperiment(cfg, model);
    };
    const auto plain = run(1.0);
    const auto method1 = run(1.017); // warmth(5) ~ 1.017
    EXPECT_LT(method1.gmeanLitmusPrice, plain.gmeanLitmusPrice);
}

} // namespace
} // namespace litmus::pricing
