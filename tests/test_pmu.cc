/**
 * @file
 * Tests for PMU counter blocks.
 */

#include <gtest/gtest.h>

#include "sim/pmu.h"

namespace litmus::sim
{
namespace
{

TEST(TaskCounters, PrivateCyclesIdentity)
{
    TaskCounters c;
    c.cycles = 100;
    c.stallSharedCycles = 30;
    EXPECT_DOUBLE_EQ(c.privateCycles(), 70.0);
}

TEST(TaskCounters, Add)
{
    TaskCounters a, b;
    a.instructions = 10;
    a.cycles = 20;
    a.l2Misses = 2;
    b.instructions = 5;
    b.cycles = 7;
    b.l3Misses = 1;
    b.contextSwitches = 3;
    a.add(b);
    EXPECT_DOUBLE_EQ(a.instructions, 15.0);
    EXPECT_DOUBLE_EQ(a.cycles, 27.0);
    EXPECT_DOUBLE_EQ(a.l2Misses, 2.0);
    EXPECT_DOUBLE_EQ(a.l3Misses, 1.0);
    EXPECT_EQ(a.contextSwitches, 3u);
}

TEST(TaskCounters, Since)
{
    TaskCounters early, late;
    early.instructions = 100;
    early.cycles = 150;
    early.stallSharedCycles = 10;
    late.instructions = 300;
    late.cycles = 500;
    late.stallSharedCycles = 60;
    late.contextSwitches = 2;
    const TaskCounters d = late.since(early);
    EXPECT_DOUBLE_EQ(d.instructions, 200.0);
    EXPECT_DOUBLE_EQ(d.cycles, 350.0);
    EXPECT_DOUBLE_EQ(d.stallSharedCycles, 50.0);
    EXPECT_EQ(d.contextSwitches, 2u);
}

TEST(TaskCounters, SinceReversedPanics)
{
    TaskCounters early, late;
    late.instructions = 10;
    late.cycles = 10;
    EXPECT_DEATH((void)early.since(late), "newer");
}

TEST(MachineCounters, Since)
{
    MachineCounters a, b;
    a.l3Misses = 100;
    a.l3Accesses = 200;
    a.time = 1.0;
    b.l3Misses = 400;
    b.l3Accesses = 900;
    b.time = 2.0;
    const MachineCounters d = b.since(a);
    EXPECT_DOUBLE_EQ(d.l3Misses, 300.0);
    EXPECT_DOUBLE_EQ(d.l3Accesses, 700.0);
    EXPECT_DOUBLE_EQ(d.time, 1.0);
}

TEST(MachineCounters, MissRatePerUs)
{
    MachineCounters c;
    c.l3Misses = 500.0;
    c.time = 1e-3; // 1 ms = 1000 us
    EXPECT_DOUBLE_EQ(c.l3MissRatePerUs(), 0.5);
}

TEST(MachineCounters, MissRateZeroTime)
{
    MachineCounters c;
    c.l3Misses = 500.0;
    EXPECT_DOUBLE_EQ(c.l3MissRatePerUs(), 0.0);
}

} // namespace
} // namespace litmus::sim
