/**
 * @file
 * Tests for unit literals.
 */

#include <gtest/gtest.h>

#include "common/units.h"

namespace litmus
{
namespace
{

TEST(Units, SizeLiterals)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(1_MiB, 1024u * 1024u);
    EXPECT_EQ(2_GiB, 2ull * 1024 * 1024 * 1024);
    EXPECT_EQ(44_MiB, 44ull << 20);
}

TEST(Units, InstructionLiteral)
{
    EXPECT_DOUBLE_EQ(45_Minstr, 45e6);
    EXPECT_DOUBLE_EQ(1_Minstr, 1e6);
}

TEST(Units, TimeLiterals)
{
    EXPECT_DOUBLE_EQ(50_us, 50e-6);
    EXPECT_DOUBLE_EQ(5_ms, 5e-3);
}

TEST(Units, FrequencyLiterals)
{
    EXPECT_DOUBLE_EQ(2.8_GHz, 2.8e9);
    EXPECT_DOUBLE_EQ(3_GHz, 3e9);
}

} // namespace
} // namespace litmus
