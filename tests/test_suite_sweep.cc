/**
 * @file
 * Parameterized sweep over all 27 Table 1 functions: per-function solo
 * invariants every workload model must satisfy regardless of its
 * calibrated parameters.
 */

#include <gtest/gtest.h>

#include "core/litmus_probe.h"
#include "sim/machine.h"
#include "workload/suite.h"
#include "sim/machine_catalog.h"

namespace litmus::workload
{
namespace
{

class SuiteSweep : public ::testing::TestWithParam<std::string>
{
  protected:
    static const FunctionSpec &spec()
    {
        return functionByName(
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->value_param());
    }
};

TEST_P(SuiteSweep, SoloRunInvariants)
{
    const auto cfg = sim::MachineCatalog::get("cascade-5218");
    const FunctionSpec &fn = functionByName(GetParam());

    const sim::RunResult run = sim::runSolo(
        cfg, [&] { return makeNominalInvocation(fn, true); });
    const sim::TaskCounters &c = run.counters;

    // Retired exactly the nominal program.
    EXPECT_NEAR(c.instructions, fn.nominalProgram().totalInstructions(),
                1e3);

    // Accounting identity.
    EXPECT_NEAR(c.privateCycles() + c.stallSharedCycles, c.cycles, 1e-3);
    EXPECT_GE(c.stallSharedCycles, 0.0);

    // CPI plausible for a serverless function.
    const double cpi = c.cycles / c.instructions;
    EXPECT_GT(cpi, 0.3);
    EXPECT_LT(cpi, 3.0);

    // L3 misses cannot exceed L2 misses.
    EXPECT_LE(c.l3Misses, c.l2Misses + 1e-6);

    // The Litmus probe closed inside the startup.
    ASSERT_TRUE(run.probe.complete);
    const sim::TaskCounters window =
        run.probe.taskAtEnd.since(run.probe.taskAtStart);
    EXPECT_LE(window.instructions,
              startupProgram(fn.language).totalInstructions() + 1e6);

    // The probe reading is well-formed.
    const pricing::ProbeReading reading =
        pricing::readProbe(run.probe);
    EXPECT_GT(reading.privCpi, 0.0);
    EXPECT_GT(reading.sharedCpi, 0.0);

    // Solo shared share stays in a sane band.
    const double share = c.stallSharedCycles / c.cycles;
    EXPECT_GE(share, 0.0);
    EXPECT_LT(share, 0.5);
}

TEST_P(SuiteSweep, JitteredInvocationsDifferSlightly)
{
    const FunctionSpec &fn = functionByName(GetParam());
    Rng a(1), b(2);
    const auto ta = makeInvocation(fn, a);
    const auto tb = makeInvocation(fn, b);
    const double ia = ta->program().totalInstructions();
    const double ib = tb->program().totalInstructions();
    // Different draws, but within a few percent of each other.
    EXPECT_NEAR(ia, ib, 0.1 * ia);
    // Startup phases are never jittered: the probe substrate is
    // bit-identical.
    const auto &startup = startupProgram(fn.language);
    for (std::size_t i = 0; i < startup.size(); ++i) {
        EXPECT_DOUBLE_EQ(ta->program().phases()[i].instructions,
                         startup.phases()[i].instructions);
        EXPECT_DOUBLE_EQ(ta->program().phases()[i].demand.l2Mpki,
                         startup.phases()[i].demand.l2Mpki);
    }
}

std::vector<std::string>
allNames()
{
    std::vector<std::string> names;
    for (const FunctionSpec &spec : table1Suite())
        names.push_back(spec.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllFunctions, SuiteSweep, ::testing::ValuesIn(allNames()),
    [](const ::testing::TestParamInfo<std::string> &param) {
        std::string name = param.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace litmus::workload
