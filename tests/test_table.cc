/**
 * @file
 * Tests for the interpolating lookup table.
 */

#include <gtest/gtest.h>

#include "common/table.h"

namespace litmus
{
namespace
{

InterpTable
makeTable()
{
    InterpTable t;
    t.add(1, 10);
    t.add(3, 30);
    t.add(7, 50);
    return t;
}

TEST(InterpTable, SizeAndRange)
{
    const auto t = makeTable();
    EXPECT_EQ(t.size(), 3u);
    EXPECT_FALSE(t.empty());
    EXPECT_DOUBLE_EQ(t.minKey(), 1.0);
    EXPECT_DOUBLE_EQ(t.maxKey(), 7.0);
}

TEST(InterpTable, ExactKeys)
{
    const auto t = makeTable();
    EXPECT_DOUBLE_EQ(t.at(1), 10.0);
    EXPECT_DOUBLE_EQ(t.at(3), 30.0);
    EXPECT_DOUBLE_EQ(t.at(7), 50.0);
}

TEST(InterpTable, InterpolatesBetweenKeys)
{
    const auto t = makeTable();
    EXPECT_DOUBLE_EQ(t.at(2), 20.0);
    EXPECT_DOUBLE_EQ(t.at(5), 40.0);
}

TEST(InterpTable, ClampsOutsideRange)
{
    const auto t = makeTable();
    EXPECT_DOUBLE_EQ(t.at(0), 10.0);
    EXPECT_DOUBLE_EQ(t.at(100), 50.0);
}

TEST(InterpTable, InverseLookup)
{
    const auto t = makeTable();
    EXPECT_DOUBLE_EQ(t.keyFor(10), 1.0);
    EXPECT_DOUBLE_EQ(t.keyFor(20), 2.0);
    EXPECT_DOUBLE_EQ(t.keyFor(40), 5.0);
    EXPECT_DOUBLE_EQ(t.keyFor(50), 7.0);
}

TEST(InterpTable, InverseClamps)
{
    const auto t = makeTable();
    EXPECT_DOUBLE_EQ(t.keyFor(5), 1.0);
    EXPECT_DOUBLE_EQ(t.keyFor(500), 7.0);
}

TEST(InterpTable, SingleEntry)
{
    InterpTable t;
    t.add(4, 44);
    EXPECT_DOUBLE_EQ(t.at(0), 44.0);
    EXPECT_DOUBLE_EQ(t.at(9), 44.0);
    EXPECT_DOUBLE_EQ(t.keyFor(123), 4.0);
}

TEST(InterpTable, RejectsNonIncreasingKeys)
{
    InterpTable t;
    t.add(1, 1);
    EXPECT_EXIT(t.add(1, 2), ::testing::ExitedWithCode(1), "increasing");
    EXPECT_EXIT(t.add(0, 2), ::testing::ExitedWithCode(1), "increasing");
}

TEST(InterpTable, EmptyTableFatal)
{
    const InterpTable t;
    EXPECT_TRUE(t.empty());
    EXPECT_EXIT(t.at(1), ::testing::ExitedWithCode(1), "empty");
    EXPECT_EXIT(t.minKey(), ::testing::ExitedWithCode(1), "empty");
}

TEST(InterpTable, RawSeriesExposed)
{
    const auto t = makeTable();
    EXPECT_EQ(t.keys().size(), 3u);
    EXPECT_EQ(t.values().size(), 3u);
    EXPECT_DOUBLE_EQ(t.values()[1], 30.0);
}

} // namespace
} // namespace litmus
