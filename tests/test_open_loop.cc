/**
 * @file
 * Tests for the open-loop (Poisson arrival) workload driver.
 */

#include <gtest/gtest.h>

#include "workload/open_loop.h"
#include "workload/suite.h"
#include "sim/machine_catalog.h"

namespace litmus::workload
{
namespace
{

sim::MachineConfig
machine()
{
    return sim::MachineCatalog::get("cascade-5218");
}

OpenLoopConfig
baseConfig(double rate = 200.0)
{
    OpenLoopConfig cfg;
    cfg.arrivalsPerSecond = rate;
    for (unsigned cpu = 0; cpu < 16; ++cpu)
        cfg.cpuPool.push_back(cpu);
    cfg.seed = 11;
    return cfg;
}

TEST(OpenLoop, ValidatesConfig)
{
    sim::Engine engine(machine());
    OpenLoopConfig bad = baseConfig();
    bad.arrivalsPerSecond = 0;
    EXPECT_EXIT(OpenLoopInvoker(engine, bad),
                ::testing::ExitedWithCode(1), "rate");
    bad = baseConfig();
    bad.cpuPool.clear();
    EXPECT_EXIT(OpenLoopInvoker(engine, bad),
                ::testing::ExitedWithCode(1), "cpuPool");
}

TEST(OpenLoop, ArrivalCountTracksRate)
{
    sim::Engine engine(machine());
    OpenLoopInvoker driver(engine, baseConfig(400.0));
    engine.onCompletion(
        [&](sim::Task &task) { driver.handleCompletion(task); });
    driver.start();
    engine.run(0.5); // expect ~200 arrivals
    EXPECT_GT(driver.arrivals(), 140u);
    EXPECT_LT(driver.arrivals(), 280u);
    EXPECT_EQ(driver.launched(), driver.arrivals());
}

TEST(OpenLoop, StartTwiceFatal)
{
    sim::Engine engine(machine());
    OpenLoopInvoker driver(engine, baseConfig());
    driver.start();
    EXPECT_EXIT(driver.start(), ::testing::ExitedWithCode(1), "twice");
}

TEST(OpenLoop, ConcurrencyCapRejects)
{
    sim::Engine engine(machine());
    OpenLoopConfig cfg = baseConfig(2000.0);
    cfg.maxConcurrent = 4;
    OpenLoopInvoker driver(engine, cfg);
    engine.onCompletion(
        [&](sim::Task &task) { driver.handleCompletion(task); });
    driver.start();
    engine.run(0.3);
    EXPECT_LE(driver.liveCount(), 4u);
    EXPECT_GT(driver.rejectedConcurrency(), 0u);
}

TEST(OpenLoop, MemoryAdmissionRejects)
{
    auto cfg = machine();
    cfg.memoryCapacity = 2_GiB;
    sim::Engine engine(cfg);
    OpenLoopConfig ocfg = baseConfig(2000.0);
    ocfg.functionPool = {&functionByName("recogn-py")}; // 1 GiB each
    OpenLoopInvoker driver(engine, ocfg);
    engine.onCompletion(
        [&](sim::Task &task) { driver.handleCompletion(task); });
    driver.start();
    engine.run(0.2);
    EXPECT_LE(driver.committedMemory(), cfg.memoryCapacity);
    EXPECT_GT(driver.rejectedMemory(), 0u);
}

TEST(OpenLoop, CompletionsReleaseMemory)
{
    sim::Engine engine(machine());
    OpenLoopInvoker driver(engine, baseConfig(50.0));
    engine.onCompletion(
        [&](sim::Task &task) { driver.handleCompletion(task); });
    driver.start();
    engine.run(1.2);
    // Arrivals have completed by now (functions are ~100-500 ms);
    // committed memory must match the currently live set.
    EXPECT_GT(driver.arrivals(), 20u);
    EXPECT_LT(driver.liveCount(), driver.launched());
    if (driver.liveCount() == 0) {
        EXPECT_EQ(driver.committedMemory(), 0u);
    }
}

TEST(OpenLoop, BurstinessCreatesLoadSwings)
{
    // The point of the open loop: concurrency fluctuates.
    sim::Engine engine(machine());
    OpenLoopInvoker driver(engine, baseConfig(150.0));
    engine.onCompletion(
        [&](sim::Task &task) { driver.handleCompletion(task); });
    driver.start();
    unsigned minLive = 1000, maxLive = 0;
    for (int i = 0; i < 40; ++i) {
        engine.run(0.025);
        minLive = std::min(minLive, driver.liveCount());
        maxLive = std::max(maxLive, driver.liveCount());
    }
    EXPECT_GT(maxLive, minLive + 3);
}

TEST(OpenLoop, DeterministicPerSeed)
{
    auto runOnce = [] {
        sim::Engine engine(machine());
        OpenLoopInvoker driver(engine, baseConfig(300.0));
        engine.onCompletion(
            [&](sim::Task &task) { driver.handleCompletion(task); });
        driver.start();
        engine.run(0.3);
        return driver.arrivals();
    };
    EXPECT_EQ(runOnce(), runOnce());
}

} // namespace
} // namespace litmus::workload
