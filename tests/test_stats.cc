/**
 * @file
 * Tests for summary statistics.
 */

#include <gtest/gtest.h>

#include "common/stats.h"

namespace litmus
{
namespace
{

TEST(Mean, Basics)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({-5, 5}), 0.0);
}

TEST(Gmean, Basics)
{
    EXPECT_DOUBLE_EQ(gmean({4, 1}), 2.0);
    EXPECT_DOUBLE_EQ(gmean({3, 3, 3}), 3.0);
    EXPECT_NEAR(gmean({1, 2, 4, 8}), 2.8284271, 1e-6);
}

TEST(Gmean, RejectsNonPositive)
{
    EXPECT_EXIT(gmean({1.0, 0.0}), ::testing::ExitedWithCode(1), "gmean");
    EXPECT_EXIT(gmean({}), ::testing::ExitedWithCode(1), "gmean");
}

TEST(Gmean, BelowArithmeticMean)
{
    // AM-GM inequality on a spread-out series.
    const std::vector<double> xs = {1.0, 2.0, 9.0, 0.5};
    EXPECT_LT(gmean(xs), mean(xs));
}

TEST(Stddev, Basics)
{
    EXPECT_DOUBLE_EQ(stddev({5, 5, 5}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({1}), 0.0);
    EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-12);
}

TEST(MinMax, Basics)
{
    EXPECT_DOUBLE_EQ(minOf({3, 1, 2}), 1.0);
    EXPECT_DOUBLE_EQ(maxOf({3, 1, 2}), 3.0);
    EXPECT_EXIT(minOf({}), ::testing::ExitedWithCode(1), "minOf");
}

TEST(Percentile, Interpolates)
{
    std::vector<double> xs = {10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
    EXPECT_DOUBLE_EQ(percentile({7}, 50), 7.0);
}

TEST(Percentile, RejectsBadInput)
{
    EXPECT_EXIT(percentile({}, 50), ::testing::ExitedWithCode(1),
                "percentile");
    EXPECT_EXIT(percentile({1.0}, 101), ::testing::ExitedWithCode(1),
                "percentile");
}

TEST(MeanAbs, Basics)
{
    EXPECT_DOUBLE_EQ(meanAbs({-1, 1, -3, 3}), 2.0);
    EXPECT_DOUBLE_EQ(meanAbs({}), 0.0);
}

TEST(GmeanAbs, IgnoresZeros)
{
    EXPECT_DOUBLE_EQ(gmeanAbs({-4, 0.0, 1}), 2.0);
    EXPECT_DOUBLE_EQ(gmeanAbs({0.0, 0.0}), 0.0);
}

TEST(Ratio, Elementwise)
{
    const auto r = ratio({2, 9}, {4, 3});
    ASSERT_EQ(r.size(), 2u);
    EXPECT_DOUBLE_EQ(r[0], 0.5);
    EXPECT_DOUBLE_EQ(r[1], 3.0);
}

TEST(Ratio, RejectsMismatchAndZero)
{
    EXPECT_EXIT(ratio({1}, {1, 2}), ::testing::ExitedWithCode(1),
                "ratio");
    EXPECT_EXIT(ratio({1}, {0}), ::testing::ExitedWithCode(1), "ratio");
}

TEST(OnlineStats, MatchesBatch)
{
    const std::vector<double> xs = {3, 1, 4, 1, 5, 9, 2, 6};
    OnlineStats s;
    for (double x : xs)
        s.add(x);
    EXPECT_EQ(s.count(), xs.size());
    EXPECT_NEAR(s.mean(), mean(xs), 1e-12);
    EXPECT_NEAR(s.stddev(), stddev(xs), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, EmptyIsZero)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MergeEqualsConcatenation)
{
    OnlineStats a, b, whole;
    const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7};
    for (std::size_t i = 0; i < xs.size(); ++i) {
        (i < 3 ? a : b).add(xs[i]);
        whole.add(xs[i]);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-12);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty)
{
    OnlineStats a, empty;
    a.add(2.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(OnlineStats, ResetClears)
{
    OnlineStats s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

} // namespace
} // namespace litmus
