/**
 * @file
 * Tests for console/CSV table rendering.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/text_table.h"

namespace litmus
{
namespace
{

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "2"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, RowCount)
{
    TextTable t({"x"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, RejectsMismatchedRow)
{
    TextTable t({"a", "b"});
    EXPECT_EXIT(t.addRow({"only-one"}), ::testing::ExitedWithCode(1),
                "cells");
}

TEST(TextTable, RejectsEmptyHeader)
{
    EXPECT_EXIT(TextTable({}), ::testing::ExitedWithCode(1), "column");
}

TEST(TextTable, NumFormatting)
{
    EXPECT_EQ(TextTable::num(1.23456, 3), "1.235");
    EXPECT_EQ(TextTable::num(2.0, 1), "2.0");
    EXPECT_EQ(TextTable::num(-0.5, 2), "-0.50");
}

TEST(TextTable, CsvPlain)
{
    TextTable t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, CsvQuotesSpecialCharacters)
{
    TextTable t({"a"});
    t.addRow({"has,comma"});
    t.addRow({"has\"quote"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("\"has,comma\""), std::string::npos);
    EXPECT_NE(os.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(Banner, ContainsTitle)
{
    std::ostringstream os;
    printBanner(os, "My Title");
    EXPECT_NE(os.str().find("My Title"), std::string::npos);
    EXPECT_NE(os.str().find("===="), std::string::npos);
}

} // namespace
} // namespace litmus
