/**
 * @file
 * Tests for the POPPA sampling baseline.
 */

#include <gtest/gtest.h>

#include "core/poppa.h"
#include "workload/program.h"
#include "sim/machine_catalog.h"

namespace litmus::pricing
{
namespace
{

sim::MachineConfig
machine(unsigned cores = 4)
{
    auto cfg = sim::MachineCatalog::get("cascade-5218");
    cfg.cores = cores;
    return cfg;
}

std::unique_ptr<workload::EndlessTask>
hog(const std::string &name)
{
    sim::ResourceDemand d;
    d.cpi0 = 0.6;
    d.l2Mpki = 30.0;
    d.l3WorkingSet = 16_MiB;
    d.l3MissBase = 0.8;
    d.mlp = 8.0;
    return std::make_unique<workload::EndlessTask>(name, d);
}

TEST(Poppa, RejectsBadConfig)
{
    sim::Engine engine(machine());
    PoppaConfig bad;
    bad.sampleWindow = bad.samplePeriod * 2;
    EXPECT_EXIT(PoppaSampler(engine, bad), ::testing::ExitedWithCode(1),
                "window");
}

TEST(Poppa, CollectsSamplesAndOverhead)
{
    sim::Engine engine(machine());
    PoppaConfig cfg;
    cfg.samplePeriod = 10e-3;
    cfg.sampleWindow = 2e-3;
    PoppaSampler sampler(engine, cfg);

    const auto &a = engine.add(hog("a"));
    const auto &b = engine.add(hog("b"));
    engine.run(0.2);

    EXPECT_GT(sampler.windowsOpened(), 5u);
    EXPECT_GT(sampler.sampleCount(a.id()) + sampler.sampleCount(b.id()),
              5u);
    // Each window stalls one co-runner for its whole length.
    EXPECT_NEAR(sampler.stallOverhead(),
                static_cast<double>(sampler.windowsOpened()) * 2e-3,
                4e-3);
}

TEST(Poppa, EstimatesSoloCpiUnderInterference)
{
    // Solo CPI of the victim demand on an idle machine.
    const auto cfg = machine();
    sim::Engine soloEngine(cfg);
    const auto &soloTask = soloEngine.add(hog("solo"));
    soloEngine.run(0.05);
    const double soloCpi = soloTask.counters().cycles /
                           soloTask.counters().instructions;

    // Crowded machine with a sampler.
    sim::Engine engine(cfg);
    PoppaConfig pcfg;
    pcfg.samplePeriod = 8e-3;
    pcfg.sampleWindow = 2e-3;
    PoppaSampler sampler(engine, pcfg);
    const auto &victim = engine.add(hog("victim"));
    for (int i = 0; i < 3; ++i)
        engine.add(hog("co" + std::to_string(i)));
    engine.run(0.4);

    const double crowdedCpi = victim.counters().cycles /
                              victim.counters().instructions;
    const double estimate = sampler.estimatedSoloCpi(victim.id());
    ASSERT_GT(sampler.sampleCount(victim.id()), 2u);
    // The sampled estimate must sit near the true solo CPI, clearly
    // below the crowded CPI.
    EXPECT_GT(crowdedCpi, soloCpi * 1.03);
    EXPECT_NEAR(estimate, soloCpi, soloCpi * 0.15);
}

TEST(Poppa, PriceFallsBackToCommercial)
{
    sim::Engine engine(machine());
    PoppaSampler sampler(engine, PoppaConfig{});
    sim::TaskCounters c;
    c.instructions = 1e6;
    c.cycles = 2e6;
    // Task id 999 never sampled: price == commercial cycles.
    EXPECT_DOUBLE_EQ(sampler.price(c, 999), 2e6);
}

TEST(Poppa, PriceDiscountsWhenSampled)
{
    sim::Engine engine(machine());
    PoppaConfig cfg;
    cfg.samplePeriod = 8e-3;
    cfg.sampleWindow = 2e-3;
    PoppaSampler sampler(engine, cfg);
    const auto &victim = engine.add(hog("victim"));
    for (int i = 0; i < 3; ++i)
        engine.add(hog("co" + std::to_string(i)));
    engine.run(0.3);
    ASSERT_GT(sampler.sampleCount(victim.id()), 0u);
    const double price =
        sampler.price(victim.counters(), victim.id());
    EXPECT_LT(price, victim.counters().cycles);
    EXPECT_GT(price, 0.0);
}

TEST(Poppa, NoSamplingWithSingleTask)
{
    sim::Engine engine(machine());
    PoppaConfig cfg;
    cfg.samplePeriod = 5e-3;
    cfg.sampleWindow = 1e-3;
    PoppaSampler sampler(engine, cfg);
    engine.add(hog("only"));
    engine.run(0.1);
    EXPECT_EQ(sampler.windowsOpened(), 0u);
    EXPECT_DOUBLE_EQ(sampler.stallOverhead(), 0.0);
}

} // namespace
} // namespace litmus::pricing
