/**
 * @file
 * Tests for the statistics registry.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats_registry.h"
#include "sim/engine.h"
#include "workload/program.h"
#include "sim/machine_catalog.h"

namespace litmus
{
namespace
{

TEST(CounterStat, Accumulates)
{
    CounterStat c("hits", "hit count");
    c.add();
    c.add(2.5);
    EXPECT_DOUBLE_EQ(c.value(), 3.5);
    c.reset();
    EXPECT_DOUBLE_EQ(c.value(), 0.0);
}

TEST(AverageStat, TracksMoments)
{
    AverageStat a("lat", "latency");
    a.sample(1.0);
    a.sample(3.0);
    EXPECT_DOUBLE_EQ(a.accumulator().mean(), 2.0);
    EXPECT_DOUBLE_EQ(a.accumulator().min(), 1.0);
    EXPECT_DOUBLE_EQ(a.accumulator().max(), 3.0);
    EXPECT_NE(a.render().find("n=2"), std::string::npos);
}

TEST(HistogramStat, BucketsAndEdges)
{
    HistogramStat h("dist", "distribution", 0.0, 10.0, 5);
    h.sample(-1.0); // underflow
    h.sample(0.0);  // bucket 0
    h.sample(1.9);  // bucket 0
    h.sample(5.0);  // bucket 2
    h.sample(9.99); // bucket 4
    h.sample(10.0); // overflow
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.total(), 6u);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
}

TEST(HistogramStat, RejectsBadRange)
{
    EXPECT_EXIT(HistogramStat("h", "x", 5.0, 5.0, 4),
                ::testing::ExitedWithCode(1), "hi must exceed");
    EXPECT_EXIT(HistogramStat("h", "x", 0.0, 1.0, 0),
                ::testing::ExitedWithCode(1), "buckets");
}

TEST(StatsRegistry, DumpGroupsEntries)
{
    CounterStat a("a", "first"), b("b", "second");
    StatsRegistry registry;
    registry.add("grp", a);
    registry.add("grp", b);
    a.add(7);
    std::ostringstream os;
    registry.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("grp:"), std::string::npos);
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_EQ(registry.size(), 2u);
}

TEST(StatsRegistry, CsvDump)
{
    CounterStat a("a", "first");
    StatsRegistry registry;
    registry.add("grp", a);
    std::ostringstream os;
    registry.dumpCsv(os);
    EXPECT_NE(os.str().find("group,name,value"), std::string::npos);
    EXPECT_NE(os.str().find("grp,a"), std::string::npos);
}

TEST(StatsRegistry, DuplicateFatal)
{
    CounterStat a("a", "x"), dup("a", "y");
    StatsRegistry registry;
    registry.add("grp", a);
    EXPECT_EXIT(registry.add("grp", dup),
                ::testing::ExitedWithCode(1), "duplicate");
}

TEST(StatsRegistry, ResetAll)
{
    CounterStat a("a", "x");
    StatsRegistry registry;
    registry.add("grp", a);
    a.add(5);
    registry.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
}

TEST(EngineStats, PopulatedByRuns)
{
    auto cfg = sim::MachineCatalog::get("cascade-5218");
    cfg.cores = 4;
    sim::Engine engine(cfg);
    StatsRegistry registry;
    engine.stats().registerWith(registry, "engine");

    workload::Phase phase;
    phase.name = "p";
    phase.instructions = 5e6;
    phase.demand.cpi0 = 1.0;
    phase.demand.l2Mpki = 5.0;
    phase.demand.l3WorkingSet = 1_MiB;
    phase.demand.l3MissBase = 0.2;
    phase.demand.mlp = 4.0;
    sim::Task &task = engine.add(std::make_unique<workload::ProgramTask>(
        "t", workload::PhaseProgram({phase})));
    engine.runUntilComplete(task);

    EXPECT_GT(engine.stats().quanta.value(), 0.0);
    EXPECT_DOUBLE_EQ(engine.stats().completions.value(), 1.0);
    EXPECT_NEAR(engine.stats().instructions.value(), 5e6, 1e3);
    EXPECT_GT(engine.stats().frequencyGhz.accumulator().mean(), 1.0);
    // 8 simulation stats + 3 fast-forward diagnostics.
    EXPECT_EQ(registry.size(), 11u);
    EXPECT_GT(engine.stats().solves.value(), 0.0);
}

} // namespace
} // namespace litmus
