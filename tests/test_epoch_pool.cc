/**
 * @file
 * EpochPool barrier tests.
 *
 * The pool's barrier handoff is the one place in the tree where data
 * crosses threads through atomics (Batch::pending release-decrement /
 * acquire-load — see the ordering audit in epoch_pool.h). These tests
 * hammer that handoff so the TSan job in CI exercises it: every write
 * a job makes must be visible to the caller when run() returns, over
 * many epochs, at several thread counts, including the inline
 * single-thread path.
 */

#include "cluster/epoch_pool.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "sim/machine.h"
#include "sim/machine_catalog.h"
#include "workload/program.h"

namespace
{

using litmus::cluster::EpochPool;

TEST(EpochPool, RunsEveryJobExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 4u}) {
        EpochPool pool(threads);
        std::vector<int> hits(64, 0);
        std::vector<std::function<void()>> jobs;
        for (std::size_t i = 0; i < hits.size(); ++i)
            jobs.push_back([&hits, i] { ++hits[i]; });
        pool.run(jobs);
        for (std::size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i], 1) << "job " << i << " with "
                                  << threads << " thread(s)";
    }
}

TEST(EpochPool, BarrierPublishesJobWritesToTheCaller)
{
    // Plain (non-atomic) per-job writes, read back by the caller
    // right after run() returns. Any missing release/acquire pairing
    // in the handoff shows up here as a torn read — and as a TSan
    // race in the sanitizer matrix.
    EpochPool pool(4);
    constexpr std::size_t kJobs = 128;
    constexpr int kEpochs = 200;
    std::vector<std::uint64_t> cells(kJobs, 0);
    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < kJobs; ++i)
        jobs.push_back([&cells, i] { cells[i] += i + 1; });
    for (int epoch = 1; epoch <= kEpochs; ++epoch) {
        pool.run(jobs);
        const std::uint64_t sum =
            std::accumulate(cells.begin(), cells.end(),
                            std::uint64_t{0});
        ASSERT_EQ(sum, static_cast<std::uint64_t>(epoch) * kJobs *
                           (kJobs + 1) / 2)
            << "epoch " << epoch;
    }
}

TEST(EpochPool, ReusesWorkersAcrossHeterogeneousEpochs)
{
    // Batches of varying size, including empty and single-job ones
    // (the inline path), against the same parked workers. A worker
    // oversleeping an epoch must not claim from a later batch.
    EpochPool pool(3);
    std::atomic<int> counter{0};
    for (int epoch = 0; epoch < 100; ++epoch) {
        const std::size_t size = epoch % 7;
        std::vector<std::function<void()>> jobs(
            size, [&counter] {
                counter.fetch_add(1, std::memory_order_relaxed);
            });
        pool.run(jobs);
    }
    int expected = 0;
    for (int epoch = 0; epoch < 100; ++epoch)
        expected += epoch % 7;
    EXPECT_EQ(counter.load(), expected);
}

TEST(EpochPool, SurvivesMidBarrierCrash)
{
    // The cluster's crash handling calls Engine::killAllTasks at an
    // epoch barrier — between pool.run calls, while the workers are
    // parked. The pool must keep scheduling the same job list, the
    // crashed engine's clock must stay in lockstep with its peers
    // (engines step while down; they are never recreated), and the
    // engine must accept new work after the restart.
    using litmus::sim::Engine;
    using litmus::workload::PhaseProgram;
    using litmus::workload::ProgramTask;

    auto machine = litmus::sim::MachineCatalog::get("cascade-5218");
    machine.cores = 4;
    Engine a(machine);
    Engine b(machine);

    const auto task = [] {
        litmus::workload::Phase p;
        p.name = "p";
        p.instructions = 5e6;
        p.demand.cpi0 = 1.0;
        p.demand.l2Mpki = 5.0;
        p.demand.l3WorkingSet = 1 << 20;
        p.demand.l3MissBase = 0.2;
        p.demand.mlp = 4.0;
        return std::make_unique<ProgramTask>("t", PhaseProgram({p}));
    };
    a.add(task());
    b.add(task());

    EpochPool pool(2);
    const double epoch = 1e-3;
    std::vector<std::function<void()>> jobs = {
        [&a, epoch] { a.run(epoch); },
        [&b, epoch] { b.run(epoch); }};
    pool.run(jobs);

    // Crash engine A at the barrier: its task dies mid-flight with
    // partial counters; no completion callback fires.
    const auto corpses = a.killAllTasks();
    ASSERT_EQ(corpses.size(), 1u);
    EXPECT_GT(corpses[0]->counters().cycles, 0.0);
    EXPECT_EQ(a.taskCount(), 0u);

    // The pool keeps running both engines; the idle (down) engine's
    // clock advances in lockstep with the busy one.
    pool.run(jobs);
    EXPECT_DOUBLE_EQ(a.now(), b.now());

    // Restart: the crashed engine accepts new work and both engines
    // drain under the pool.
    a.add(task());
    for (int i = 0; i < 1000 && (a.taskCount() || b.taskCount()); ++i)
        pool.run(jobs);
    EXPECT_EQ(a.taskCount(), 0u);
    EXPECT_EQ(b.taskCount(), 0u);
    EXPECT_DOUBLE_EQ(a.now(), b.now());
}

} // namespace
