/**
 * @file
 * Tests for phases, phase programs, and the program task.
 */

#include <gtest/gtest.h>

#include "workload/program.h"

namespace litmus::workload
{
namespace
{

Phase
phase(const char *name, double minstr)
{
    Phase p;
    p.name = name;
    p.instructions = minstr * 1e6;
    p.demand.cpi0 = 1.0;
    return p;
}

TEST(Phase, ValidateRejectsEmpty)
{
    Phase p = phase("x", 0);
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(1),
                "instructions");
}

TEST(Phase, JitterPerturbsWithinBounds)
{
    Rng rng(5);
    const Phase base = phase("x", 100);
    for (int i = 0; i < 100; ++i) {
        const Phase j = jitterPhase(base, rng, 0.02, 0.02);
        EXPECT_GT(j.instructions, base.instructions * 0.9);
        EXPECT_LT(j.instructions, base.instructions * 1.1);
    }
}

TEST(Phase, JitterPreservesOtherFields)
{
    Rng rng(5);
    Phase base = phase("x", 100);
    base.demand.l3WorkingSet = 3_MiB;
    base.demand.mlp = 4.0;
    const Phase j = jitterPhase(base, rng, 0.02, 0.02);
    EXPECT_EQ(j.name, base.name);
    EXPECT_EQ(j.demand.l3WorkingSet, base.demand.l3WorkingSet);
    EXPECT_DOUBLE_EQ(j.demand.mlp, base.demand.mlp);
}

TEST(PhaseProgram, TotalInstructions)
{
    const PhaseProgram p({phase("a", 10), phase("b", 20)});
    EXPECT_DOUBLE_EQ(p.totalInstructions(), 30e6);
    EXPECT_EQ(p.size(), 2u);
}

TEST(PhaseProgram, AppendBuilder)
{
    PhaseProgram p;
    EXPECT_TRUE(p.empty());
    p.append(phase("a", 5)).append(phase("b", 5));
    EXPECT_EQ(p.size(), 2u);
}

TEST(PhaseProgram, ThenConcatenates)
{
    const PhaseProgram a({phase("a", 10)});
    const PhaseProgram b({phase("b", 20)});
    const PhaseProgram c = a.then(b);
    EXPECT_EQ(c.size(), 2u);
    EXPECT_DOUBLE_EQ(c.totalInstructions(), 30e6);
    EXPECT_EQ(c.phases()[0].name, "a");
    EXPECT_EQ(c.phases()[1].name, "b");
}

TEST(ProgramTask, WalksPhases)
{
    ProgramTask task("t", PhaseProgram({phase("a", 1), phase("b", 2)}));
    EXPECT_EQ(task.phaseIndex(), 0u);
    EXPECT_DOUBLE_EQ(task.remainingInPhase(), 1e6);
    task.retire(0.4e6);
    EXPECT_EQ(task.phaseIndex(), 0u);
    EXPECT_DOUBLE_EQ(task.remainingInPhase(), 0.6e6);
    task.retire(0.6e6);
    EXPECT_EQ(task.phaseIndex(), 1u);
    EXPECT_FALSE(task.finished());
    task.retire(2e6);
    EXPECT_TRUE(task.finished());
}

TEST(ProgramTask, RetireAcrossBoundary)
{
    ProgramTask task("t", PhaseProgram({phase("a", 1), phase("b", 2)}));
    // A single retire crossing a phase boundary carries the remainder.
    task.retire(1.5e6);
    EXPECT_EQ(task.phaseIndex(), 1u);
    EXPECT_NEAR(task.remainingInPhase(), 1.5e6, 1.0);
}

TEST(ProgramTask, EmptyProgramFatal)
{
    EXPECT_EXIT(ProgramTask("t", PhaseProgram{}),
                ::testing::ExitedWithCode(1), "empty");
}

TEST(ProgramTask, DemandAfterFinishPanics)
{
    ProgramTask task("t", PhaseProgram({phase("a", 1)}));
    task.retire(1e6);
    ASSERT_TRUE(task.finished());
    EXPECT_DEATH((void)task.demand(), "completion");
}

TEST(ProgramTask, DemandTracksPhase)
{
    Phase a = phase("a", 1);
    a.demand.l2Mpki = 1.0;
    Phase b = phase("b", 1);
    b.demand.l2Mpki = 9.0;
    ProgramTask task("t", PhaseProgram({a, b}));
    EXPECT_DOUBLE_EQ(task.demand().l2Mpki, 1.0);
    task.retire(1e6);
    EXPECT_DOUBLE_EQ(task.demand().l2Mpki, 9.0);
}

} // namespace
} // namespace litmus::workload
