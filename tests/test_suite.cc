/**
 * @file
 * Tests for the Table 1 benchmark suite.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/calibration.h"
#include "workload/suite.h"
#include "sim/machine_catalog.h"

namespace litmus::workload
{
namespace
{

TEST(Suite, TwentySevenFunctions)
{
    EXPECT_EQ(table1Suite().size(), 27u);
    EXPECT_EQ(allFunctions().size(), 27u);
}

TEST(Suite, ThirteenReferences)
{
    EXPECT_EQ(referenceSet().size(), 13u);
}

TEST(Suite, FourteenTestFunctions)
{
    EXPECT_EQ(testSet().size(), 14u);
}

TEST(Suite, ReferenceAndTestDisjoint)
{
    for (const FunctionSpec &spec : table1Suite())
        EXPECT_FALSE(spec.reference && spec.testSet) << spec.name;
}

TEST(Suite, UniqueNames)
{
    std::set<std::string> names;
    for (const FunctionSpec &spec : table1Suite())
        names.insert(spec.name);
    EXPECT_EQ(names.size(), 27u);
}

TEST(Suite, AllThreeLanguagesPresent)
{
    std::set<Language> langs;
    for (const FunctionSpec &spec : table1Suite())
        langs.insert(spec.language);
    EXPECT_EQ(langs.size(), 3u);
}

TEST(Suite, SuffixMatchesLanguage)
{
    for (const FunctionSpec &spec : table1Suite()) {
        const std::string suffix = languageSuffix(spec.language);
        ASSERT_GT(spec.name.size(), suffix.size());
        EXPECT_EQ(spec.name.substr(spec.name.size() - suffix.size()),
                  suffix)
            << spec.name;
    }
}

TEST(Suite, AllSpecsValidate)
{
    for (const FunctionSpec &spec : table1Suite())
        EXPECT_NO_FATAL_FAILURE(spec.validate());
}

TEST(Suite, MemoryIntensiveSetMatchesPaper)
{
    const auto set = memoryIntensiveSet();
    EXPECT_EQ(set.size(), 8u);
    std::set<std::string> names;
    for (const FunctionSpec *spec : set)
        names.insert(spec->name);
    EXPECT_TRUE(names.contains("thum-py"));
    EXPECT_TRUE(names.contains("geo-go"));
    EXPECT_TRUE(names.contains("bfs-py"));
}

TEST(Suite, ByNameLookup)
{
    EXPECT_EQ(functionByName("pager-py").language, Language::Python);
    EXPECT_TRUE(functionByName("fib-nj").reference);
    EXPECT_EXIT(functionByName("nope"), ::testing::ExitedWithCode(1),
                "unknown function");
}

TEST(Suite, TriplicatedFunctions)
{
    // Authen, Fibonacci and AES exist in all three languages.
    for (const char *base : {"auth", "fib", "aes"}) {
        for (const char *suffix : {"-py", "-nj", "-go"}) {
            const std::string name = std::string(base) + suffix;
            EXPECT_NO_FATAL_FAILURE(functionByName(name)) << name;
        }
    }
}

TEST(Suite, NominalProgramStartsWithStartup)
{
    const FunctionSpec &spec = functionByName("aes-py");
    const PhaseProgram program = spec.nominalProgram();
    EXPECT_EQ(program.phases().front().name,
              startupProgram(Language::Python).phases().front().name);
    EXPECT_DOUBLE_EQ(
        program.totalInstructions(),
        startupProgram(Language::Python).totalInstructions() +
            spec.bodyInstructions());
}

TEST(Suite, SoloSharedShareCharacterization)
{
    // The calibrated suite must reproduce the paper's Figure 4
    // structure: float-py nearly all-private, graph workloads heavy on
    // shared time.
    const auto machine = sim::MachineCatalog::get("cascade-5218");
    const auto share = [&](const char *name) {
        const auto solo = pricing::measureSoloBaseline(
            machine, functionByName(name));
        return solo.sharedCpi / solo.totalCpi();
    };
    EXPECT_LT(share("float-py"), 0.02);
    EXPECT_GT(share("pager-py"), 0.08);
    EXPECT_GT(share("fib-nj"), 0.08);
    EXPECT_GT(share("pager-py"), share("float-py") * 5);
    EXPECT_LT(share("fib-go"), 0.05);
}

TEST(Suite, MemoryFootprintsReasonable)
{
    for (const FunctionSpec &spec : table1Suite()) {
        EXPECT_GE(spec.memoryFootprint, 128_MiB) << spec.name;
        EXPECT_LE(spec.memoryFootprint, 1024_MiB) << spec.name;
    }
}

} // namespace
} // namespace litmus::workload
