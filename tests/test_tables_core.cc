/**
 * @file
 * Tests for the congestion and performance tables.
 */

#include <gtest/gtest.h>

#include "core/congestion_table.h"
#include "core/performance_table.h"

namespace litmus::pricing
{
namespace
{

using workload::GeneratorKind;
using workload::Language;

ProbeReading
baselineReading()
{
    ProbeReading r;
    r.privCpi = 0.7;
    r.sharedCpi = 0.15;
    r.instructions = 45e6;
    r.machineL3MissPerUs = 1.0;
    return r;
}

CongestionEntry
entry(double priv, double shared, double total, double l3)
{
    CongestionEntry e;
    e.privSlowdown = priv;
    e.sharedSlowdown = shared;
    e.totalSlowdown = total;
    e.l3MissPerUs = l3;
    return e;
}

TEST(CongestionTable, BaselineRoundTrip)
{
    CongestionTable t;
    t.setBaseline(Language::Python, baselineReading());
    EXPECT_DOUBLE_EQ(t.baseline(Language::Python).privCpi, 0.7);
}

TEST(CongestionTable, MissingBaselineFatal)
{
    const CongestionTable t;
    EXPECT_EXIT(t.baseline(Language::Go), ::testing::ExitedWithCode(1),
                "baseline");
}

TEST(CongestionTable, AddAndInterpolate)
{
    CongestionTable t;
    t.add(Language::Python, GeneratorKind::CtGen, 2,
          entry(1.01, 1.2, 1.05, 10));
    t.add(Language::Python, GeneratorKind::CtGen, 6,
          entry(1.05, 1.6, 1.15, 30));
    const CongestionEntry mid =
        t.at(Language::Python, GeneratorKind::CtGen, 4);
    EXPECT_NEAR(mid.privSlowdown, 1.03, 1e-12);
    EXPECT_NEAR(mid.sharedSlowdown, 1.4, 1e-12);
    EXPECT_NEAR(mid.l3MissPerUs, 20.0, 1e-12);
}

TEST(CongestionTable, ClampsOutsideLevels)
{
    CongestionTable t;
    t.add(Language::Python, GeneratorKind::CtGen, 2,
          entry(1.01, 1.2, 1.05, 10));
    t.add(Language::Python, GeneratorKind::CtGen, 6,
          entry(1.05, 1.6, 1.15, 30));
    EXPECT_DOUBLE_EQ(
        t.at(Language::Python, GeneratorKind::CtGen, 0).privSlowdown,
        1.01);
    EXPECT_DOUBLE_EQ(
        t.at(Language::Python, GeneratorKind::CtGen, 99).privSlowdown,
        1.05);
}

TEST(CongestionTable, SeriesAccessors)
{
    CongestionTable t;
    t.add(Language::Go, GeneratorKind::MbGen, 2,
          entry(1.01, 1.5, 1.1, 100));
    t.add(Language::Go, GeneratorKind::MbGen, 4,
          entry(1.02, 1.9, 1.2, 300));
    EXPECT_EQ(t.levels(Language::Go, GeneratorKind::MbGen).size(), 2u);
    EXPECT_DOUBLE_EQ(
        t.sharedSeries(Language::Go, GeneratorKind::MbGen)[1], 1.9);
    EXPECT_DOUBLE_EQ(t.l3Series(Language::Go, GeneratorKind::MbGen)[0],
                     100.0);
    EXPECT_TRUE(t.populated(Language::Go, GeneratorKind::MbGen));
    EXPECT_FALSE(t.populated(Language::Go, GeneratorKind::CtGen));
}

TEST(CongestionTable, RejectsNonIncreasingLevels)
{
    CongestionTable t;
    t.add(Language::Python, GeneratorKind::CtGen, 4,
          entry(1, 1, 1, 1));
    EXPECT_EXIT(t.add(Language::Python, GeneratorKind::CtGen, 4,
                      entry(1, 1, 1, 1)),
                ::testing::ExitedWithCode(1), "increase");
}

TEST(CongestionTable, MissingSeriesFatal)
{
    const CongestionTable t;
    EXPECT_EXIT((void)t.levels(Language::Python, GeneratorKind::CtGen),
                ::testing::ExitedWithCode(1), "no series");
}

TEST(PerformanceTable, AddAndAccess)
{
    PerformanceTable t;
    PerformanceEntry e;
    e.privSlowdown = 1.02;
    e.sharedSlowdown = 1.8;
    e.totalSlowdown = 1.12;
    t.add(GeneratorKind::CtGen, 2, e);
    e.sharedSlowdown = 2.4;
    t.add(GeneratorKind::CtGen, 6, e);
    EXPECT_EQ(t.levels(GeneratorKind::CtGen).size(), 2u);
    EXPECT_DOUBLE_EQ(t.sharedSeries(GeneratorKind::CtGen)[1], 2.4);
    EXPECT_TRUE(t.populated(GeneratorKind::CtGen));
    EXPECT_FALSE(t.populated(GeneratorKind::MbGen));
}

TEST(PerformanceTable, RejectsNonIncreasingLevels)
{
    PerformanceTable t;
    t.add(GeneratorKind::MbGen, 5, PerformanceEntry{});
    EXPECT_EXIT(t.add(GeneratorKind::MbGen, 3, PerformanceEntry{}),
                ::testing::ExitedWithCode(1), "increase");
}

TEST(PerformanceTable, MissingSeriesFatal)
{
    const PerformanceTable t;
    EXPECT_EXIT((void)t.levels(GeneratorKind::CtGen),
                ::testing::ExitedWithCode(1), "no series");
}

} // namespace
} // namespace litmus::pricing
