/**
 * @file
 * Tests for the discount model on hand-built synthetic tables, where
 * every prediction can be checked in closed form.
 */

#include <gtest/gtest.h>

#include "core/discount_model.h"

namespace litmus::pricing
{
namespace
{

using workload::GeneratorKind;
using workload::Language;

/**
 * Synthetic world: startup slowdowns equal reference slowdowns under
 * CT-Gen; under MB-Gen references slow twice as much as startups.
 * CT produces 10 L3 misses/us per unit slowdown above 1; MB produces
 * 1000.
 */
void
fillTables(CongestionTable &congestion, PerformanceTable &performance)
{
    for (Language lang : workload::allLanguages()) {
        ProbeReading base;
        base.privCpi = 0.7;
        base.sharedCpi = 0.2;
        base.instructions = 45e6;
        base.machineL3MissPerUs = 1.0;
        congestion.setBaseline(lang, base);
    }

    for (unsigned level : {2u, 4u, 6u, 8u}) {
        const double x = 1.0 + 0.05 * level; // startup slowdown
        for (Language lang : workload::allLanguages()) {
            CongestionEntry ct;
            ct.privSlowdown = 1.0 + 0.005 * level;
            ct.sharedSlowdown = x;
            ct.totalSlowdown = x;
            ct.l3MissPerUs = 10.0 * (1.0 + 0.05 * level);
            congestion.add(lang, GeneratorKind::CtGen, level, ct);

            CongestionEntry mb = ct;
            mb.l3MissPerUs = 1000.0 * (1.0 + 0.05 * level);
            congestion.add(lang, GeneratorKind::MbGen, level, mb);
        }
        PerformanceEntry pct;
        pct.privSlowdown = 1.0 + 0.005 * level;
        pct.sharedSlowdown = x;
        pct.totalSlowdown = x;
        performance.add(GeneratorKind::CtGen, level, pct);

        PerformanceEntry pmb;
        pmb.privSlowdown = 1.0 + 0.01 * level;
        pmb.sharedSlowdown = 1.0 + 2.0 * (x - 1.0);
        pmb.totalSlowdown = 1.0 + 2.0 * (x - 1.0);
        performance.add(GeneratorKind::MbGen, level, pmb);
    }
}

DiscountModel
makeModel()
{
    CongestionTable congestion;
    PerformanceTable performance;
    fillTables(congestion, performance);
    return DiscountModel(congestion, performance);
}

ProbeReading
observation(double priv_slow, double shared_slow, double l3)
{
    ProbeReading r;
    r.privCpi = 0.7 * priv_slow;
    r.sharedCpi = 0.2 * shared_slow;
    r.instructions = 45e6;
    r.machineL3MissPerUs = l3;
    return r;
}

TEST(DiscountModel, Figure9FitsRecovered)
{
    const DiscountModel model = makeModel();
    // CT: reference shared slowdown == startup shared slowdown.
    const LinearFit &ct = model.perfFit(
        Language::Python, GeneratorKind::CtGen, Component::Shared);
    EXPECT_NEAR(ct.slope(), 1.0, 1e-9);
    EXPECT_NEAR(ct.intercept(), 0.0, 1e-9);
    EXPECT_NEAR(ct.r2(), 1.0, 1e-9);
    // MB: slope 2, intercept -1.
    const LinearFit &mb = model.perfFit(
        Language::Python, GeneratorKind::MbGen, Component::Shared);
    EXPECT_NEAR(mb.slope(), 2.0, 1e-9);
    EXPECT_NEAR(mb.intercept(), -1.0, 1e-9);
}

TEST(DiscountModel, CtLikeObservationUsesCtPrediction)
{
    const DiscountModel model = makeModel();
    // Startup slowed 1.2x, machine misses match the CT line.
    const auto est = model.estimate(observation(1.01, 1.2, 12.0),
                                    Language::Python);
    EXPECT_LT(est.blendWeight, 0.05);
    EXPECT_NEAR(est.predictedShared, 1.2, 0.02);
    EXPECT_NEAR(est.rShared, 1.0 / 1.2, 0.02);
}

TEST(DiscountModel, MbLikeObservationUsesMbPrediction)
{
    const DiscountModel model = makeModel();
    const auto est = model.estimate(observation(1.02, 1.2, 1200.0),
                                    Language::Python);
    EXPECT_GT(est.blendWeight, 0.95);
    // MB reference shared slowdown at startup 1.2 is 1.4.
    EXPECT_NEAR(est.predictedShared, 1.4, 0.02);
}

TEST(DiscountModel, MidwayObservationBlends)
{
    const DiscountModel model = makeModel();
    // Geometric midpoint of 12 and 1200 is 120.
    const auto est = model.estimate(observation(1.015, 1.2, 120.0),
                                    Language::Python);
    EXPECT_NEAR(est.blendWeight, 0.5, 0.05);
    EXPECT_NEAR(est.predictedShared, 1.3, 0.03);
}

TEST(DiscountModel, RatesNeverExceedOne)
{
    const DiscountModel model = makeModel();
    // An uncontended observation must not produce a surcharge.
    const auto est = model.estimate(observation(1.0, 1.0, 1.0),
                                    Language::Python);
    EXPECT_LE(est.rPrivate, 1.0);
    EXPECT_LE(est.rShared, 1.0);
    EXPECT_GE(est.predictedPriv, 1.0);
    EXPECT_GE(est.predictedShared, 1.0);
}

TEST(DiscountModel, SharingFactorRefundsPrivateTime)
{
    const DiscountModel model = makeModel();
    const auto plain = model.estimate(observation(1.025, 1.2, 12.0),
                                      Language::Python, 1.0);
    const auto adjusted = model.estimate(observation(1.025, 1.2, 12.0),
                                         Language::Python, 1.025);
    // Method 1 invariant: the final rate exactly refunds both the
    // predicted congestion slowdown and the sharing inflation.
    EXPECT_NEAR(adjusted.rPrivate * 1.025 * adjusted.predictedPriv, 1.0,
                1e-9);
    EXPECT_LE(adjusted.rPrivate, plain.rPrivate + 1e-3);
}

TEST(DiscountModel, InvalidSharingFactorFatal)
{
    const DiscountModel model = makeModel();
    EXPECT_EXIT(model.estimate(observation(1.1, 1.2, 10.0),
                               Language::Python, 0.0),
                ::testing::ExitedWithCode(1), "sharing factor");
}

TEST(DiscountModel, ObservedSlowdownsReported)
{
    const DiscountModel model = makeModel();
    const auto est = model.estimate(observation(1.05, 1.5, 100.0),
                                    Language::Python);
    EXPECT_NEAR(est.observed.priv, 1.05, 1e-9);
    EXPECT_NEAR(est.observed.shared, 1.5, 1e-9);
}

TEST(DiscountModel, PerLanguageBaselines)
{
    const DiscountModel model = makeModel();
    for (Language lang : workload::allLanguages())
        EXPECT_TRUE(model.baseline(lang).valid());
}

TEST(DiscountModel, MissingTableFatal)
{
    CongestionTable congestion;
    PerformanceTable performance;
    // Only baselines, no series.
    for (Language lang : workload::allLanguages()) {
        ProbeReading base;
        base.privCpi = 0.7;
        base.sharedCpi = 0.2;
        base.instructions = 1e6;
        congestion.setBaseline(lang, base);
    }
    EXPECT_EXIT(DiscountModel(congestion, performance),
                ::testing::ExitedWithCode(1), "missing");
}

TEST(DiscountModel, L3FitExposed)
{
    const DiscountModel model = makeModel();
    const LogFit &fit =
        model.l3Fit(Language::Python, GeneratorKind::CtGen);
    // slowdown = 1 + 0.05*level and misses = 10*(1+0.05*level):
    // slowdown = misses/10, i.e. y = 0.1 * x — not a log law, but the
    // fit must still be monotone increasing over the data range.
    EXPECT_GT(fit.b(), 0.0);
}

/** Property: bigger observed slowdowns never shrink the discount. */
class MonotoneDiscount : public ::testing::TestWithParam<double>
{
};

TEST_P(MonotoneDiscount, DiscountGrowsWithCongestion)
{
    const DiscountModel model = makeModel();
    const double s = GetParam();
    const auto lo =
        model.estimate(observation(1.0 + 0.01 * s, 1.0 + 0.2 * s, 50.0),
                       Language::Python);
    const auto hi = model.estimate(
        observation(1.0 + 0.012 * s, 1.0 + 0.3 * s, 50.0),
        Language::Python);
    EXPECT_LE(hi.rShared, lo.rShared + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Severities, MonotoneDiscount,
                         ::testing::Values(0.5, 1.0, 1.5, 2.0, 2.5));

} // namespace
} // namespace litmus::pricing
