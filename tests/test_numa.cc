/**
 * @file
 * Tests for the explicit dual-socket (NUMA) machine model: per-socket
 * shared domains with cross-socket isolation.
 */

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "sim/machine.h"
#include "workload/suite.h"
#include "sim/machine_catalog.h"

namespace litmus::sim
{
namespace
{

std::unique_ptr<workload::EndlessTask>
hog(const std::string &name)
{
    ResourceDemand d;
    d.cpi0 = 0.6;
    d.l2Mpki = 30.0;
    d.l3WorkingSet = 16_MiB;
    d.l3MissBase = 0.8;
    d.mlp = 8.0;
    return std::make_unique<workload::EndlessTask>(name, d);
}

/** Subject CPI with hogs pinned to the given CPUs. */
double
subjectCpiWithHogs(const MachineConfig &cfg,
                   const std::vector<unsigned> &hog_cpus)
{
    Engine engine(cfg);
    for (unsigned cpu : hog_cpus) {
        auto task = hog("hog" + std::to_string(cpu));
        task->setAffinity({cpu});
        engine.add(std::move(task));
    }
    TaskCounters counters;
    engine.onCompletion([&](Task &t) {
        if (t.name() == "subject")
            counters = t.counters();
    });
    const auto &spec = workload::functionByName("pager-py");
    auto subject = workload::makeNominalInvocation(spec, false);
    auto named = std::make_unique<workload::ProgramTask>(
        "subject", subject->program());
    named->setAffinity({0}); // socket 0, core 0
    Task &handle = engine.add(std::move(named));
    engine.runUntilComplete(handle);
    return counters.cycles / counters.instructions;
}

TEST(Numa, PresetGeometry)
{
    const auto cfg = MachineCatalog::get("cascade-5218-dual");
    EXPECT_EQ(cfg.sockets, 2u);
    EXPECT_EQ(cfg.coresPerSocket(), 16u);
    EXPECT_EQ(cfg.hwThreadsPerSocket(), 16u);
    EXPECT_EQ(cfg.socketOf(0), 0u);
    EXPECT_EQ(cfg.socketOf(15), 0u);
    EXPECT_EQ(cfg.socketOf(16), 1u);
    EXPECT_EQ(cfg.socketOf(31), 1u);
    EXPECT_EQ(cfg.l3Capacity, 22_MiB);
    EXPECT_NO_FATAL_FAILURE(cfg.validate());
}

TEST(Numa, SocketOfWithSmt)
{
    auto cfg = MachineCatalog::get("cascade-5218-dual");
    cfg.smtWays = 2; // 64 hw threads, 32 per socket
    EXPECT_EQ(cfg.hwThreadsPerSocket(), 32u);
    EXPECT_EQ(cfg.socketOf(31), 0u);
    EXPECT_EQ(cfg.socketOf(32), 1u);
}

TEST(Numa, RejectsUnevenSplit)
{
    auto cfg = MachineCatalog::get("cascade-5218");
    cfg.sockets = 3; // 32 % 3 != 0
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "sockets");
}

TEST(Numa, RemoteSocketHogsDoNotInterfere)
{
    // The headline NUMA property: a subject on socket 0 is isolated
    // from hogs on socket 1, but not from hogs on its own socket.
    const auto cfg = MachineCatalog::get("cascade-5218-dual");

    const double alone = subjectCpiWithHogs(cfg, {});
    std::vector<unsigned> remote, local;
    for (unsigned i = 0; i < 8; ++i) {
        remote.push_back(16 + i); // socket 1
        local.push_back(1 + i);   // socket 0
    }
    const double withRemote = subjectCpiWithHogs(cfg, remote);
    const double withLocal = subjectCpiWithHogs(cfg, local);

    EXPECT_NEAR(withRemote, alone, alone * 0.005);
    EXPECT_GT(withLocal, alone * 1.05);
}

TEST(Numa, SingleSocketFoldedEquivalence)
{
    // With sockets=1 the refactored engine must behave exactly like
    // the original single-domain machine.
    const auto cfg = MachineCatalog::get("cascade-5218");
    std::vector<unsigned> local;
    for (unsigned i = 1; i <= 8; ++i)
        local.push_back(i);
    const double a = subjectCpiWithHogs(cfg, local);
    const double b = subjectCpiWithHogs(cfg, local);
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GT(a, subjectCpiWithHogs(cfg, {}));
}

TEST(Numa, PerSocketCapacityIsSmaller)
{
    // The dual model gives each socket only 22 MiB: a big-footprint
    // subject suffers more from same-socket neighbours than on the
    // folded 44 MiB domain with identical co-location.
    const auto folded = MachineCatalog::get("cascade-5218");
    const auto dual = MachineCatalog::get("cascade-5218-dual");
    std::vector<unsigned> local;
    for (unsigned i = 1; i <= 8; ++i)
        local.push_back(i);
    EXPECT_GT(subjectCpiWithHogs(dual, local),
              subjectCpiWithHogs(folded, local) * 0.999);
}

TEST(Numa, PricingPipelineRunsOnDualSocket)
{
    // End-to-end: calibrate and price entirely on the dual-socket
    // machine (generators behind the subject stay on socket 0, spill
    // to socket 1 at higher levels — both domains exercised).
    pricing::CalibrationConfig ccfg;
    ccfg.machine = MachineCatalog::get("cascade-5218-dual");
    ccfg.levels = {4, 10, 16};
    ccfg.referencePool = {&workload::functionByName("thum-py"),
                          &workload::functionByName("profile-go")};
    ccfg.warmup = 0.03;
    const auto cal = pricing::calibrate(ccfg);
    const pricing::DiscountModel model(cal.congestion,
                                       cal.performance);

    pricing::ExperimentConfig cfg;
    cfg.machine = ccfg.machine;
    cfg.coRunners = 12;
    cfg.layoutOnePerCore();
    cfg.subjects = {&workload::functionByName("aes-py")};
    cfg.repetitions = 2;
    cfg.warmup = 0.05;
    const auto result = pricing::runPricingExperiment(cfg, model);
    EXPECT_GT(result.litmusDiscount(), 0.0);
    EXPECT_NEAR(result.litmusDiscount(), result.idealDiscount(), 0.05);
}

} // namespace
} // namespace litmus::sim
