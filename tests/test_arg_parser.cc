/**
 * @file
 * Tests for the command-line argument parser.
 */

#include <gtest/gtest.h>

#include "common/arg_parser.h"

namespace litmus
{
namespace
{

ArgParser
makeParser()
{
    ArgParser p("tool", "test tool");
    p.addPositional("command", "what to do")
        .addOption("count", "how many", "5")
        .addOption("name", "a name", "default")
        .addOption("rate", "a rate", "1.5")
        .addSwitch("verbose", "talk more");
    return p;
}

bool
parse(ArgParser &p, std::vector<const char *> args)
{
    args.insert(args.begin(), "tool");
    return p.parse(static_cast<int>(args.size()), args.data());
}

TEST(ArgParser, DefaultsApply)
{
    auto p = makeParser();
    ASSERT_TRUE(parse(p, {"run"}));
    EXPECT_EQ(p.get("count"), "5");
    EXPECT_EQ(p.getInt("count"), 5);
    EXPECT_DOUBLE_EQ(p.getDouble("rate"), 1.5);
    EXPECT_FALSE(p.has("verbose"));
    EXPECT_EQ(p.positional("command"), "run");
}

TEST(ArgParser, SpaceSeparatedValues)
{
    auto p = makeParser();
    ASSERT_TRUE(parse(p, {"run", "--count", "12", "--name", "abc"}));
    EXPECT_EQ(p.getInt("count"), 12);
    EXPECT_EQ(p.get("name"), "abc");
}

TEST(ArgParser, EqualsSeparatedValues)
{
    auto p = makeParser();
    ASSERT_TRUE(parse(p, {"run", "--count=42", "--rate=2.25"}));
    EXPECT_EQ(p.getInt("count"), 42);
    EXPECT_DOUBLE_EQ(p.getDouble("rate"), 2.25);
}

TEST(ArgParser, SwitchDetection)
{
    auto p = makeParser();
    ASSERT_TRUE(parse(p, {"run", "--verbose"}));
    EXPECT_TRUE(p.has("verbose"));
}

TEST(ArgParser, UnknownFlagFails)
{
    auto p = makeParser();
    EXPECT_FALSE(parse(p, {"run", "--bogus"}));
    EXPECT_NE(p.errorText().find("unknown flag"), std::string::npos);
}

TEST(ArgParser, MissingValueFails)
{
    auto p = makeParser();
    EXPECT_FALSE(parse(p, {"run", "--count"}));
    EXPECT_NE(p.errorText().find("needs a value"), std::string::npos);
}

TEST(ArgParser, SwitchWithValueFails)
{
    auto p = makeParser();
    EXPECT_FALSE(parse(p, {"run", "--verbose=yes"}));
}

TEST(ArgParser, ExtraPositionalFails)
{
    auto p = makeParser();
    EXPECT_FALSE(parse(p, {"run", "again"}));
}

TEST(ArgParser, HelpReturnsFalseWithoutError)
{
    auto p = makeParser();
    EXPECT_FALSE(parse(p, {"--help"}));
    EXPECT_TRUE(p.errorText().empty());
}

TEST(ArgParser, MalformedIntFatal)
{
    auto p = makeParser();
    ASSERT_TRUE(parse(p, {"run", "--count", "abc"}));
    EXPECT_EXIT((void)p.getInt("count"), ::testing::ExitedWithCode(1),
                "integer");
}

TEST(ArgParser, MissingPositionalFatal)
{
    auto p = makeParser();
    ASSERT_TRUE(parse(p, {}));
    EXPECT_EQ(p.positionalCount(), 0u);
    EXPECT_EXIT((void)p.positional("command"),
                ::testing::ExitedWithCode(1), "missing");
}

TEST(ArgParser, UsageMentionsEverything)
{
    const auto p = makeParser();
    const std::string usage = p.usage();
    EXPECT_NE(usage.find("--count"), std::string::npos);
    EXPECT_NE(usage.find("--verbose"), std::string::npos);
    EXPECT_NE(usage.find("<command>"), std::string::npos);
    EXPECT_NE(usage.find("--help"), std::string::npos);
}

TEST(ArgParser, DuplicateDeclarationFatal)
{
    ArgParser p("tool", "x");
    p.addOption("a", "first");
    EXPECT_EXIT(p.addOption("a", "second"),
                ::testing::ExitedWithCode(1), "duplicate");
}

TEST(ArgParser, GetIntAtLeastEnforcesTheFloor)
{
    auto p = makeParser();
    ASSERT_TRUE(parse(p, {"run", "--count", "3"}));
    EXPECT_EQ(p.getIntAtLeast("count", 1), 3);
    EXPECT_EQ(p.getIntAtLeast("count", 3), 3);
    EXPECT_EXIT((void)p.getIntAtLeast("count", 4),
                ::testing::ExitedWithCode(1), "must be >= 4");
}

TEST(ArgParser, ParseOrExitExitsOnHelpAndErrors)
{
    auto help = makeParser();
    std::vector<const char *> helpArgs = {"tool", "--help"};
    EXPECT_EXIT(help.parseOrExit(2, helpArgs.data()),
                ::testing::ExitedWithCode(0), "");
    auto bad = makeParser();
    std::vector<const char *> badArgs = {"tool", "--bogus"};
    EXPECT_EXIT(bad.parseOrExit(2, badArgs.data()),
                ::testing::ExitedWithCode(2), "unknown flag");
    auto good = makeParser();
    std::vector<const char *> goodArgs = {"tool", "run"};
    good.parseOrExit(2, goodArgs.data());
    EXPECT_EQ(good.positional("command"), "run");
}

} // namespace
} // namespace litmus
