/**
 * @file
 * Differential suite for the event-driven cluster core: the event
 * scheduler must reproduce the fixed-epoch oracle bit-for-bit —
 * every FleetReport field, every per-machine slice, every billing
 * ledger record — across traffic models, mixed fleets, chaos
 * campaigns, and worker-thread counts.
 *
 * The epoch backend is kept alive precisely to serve as this oracle:
 * any divergence here means the event queue dispatched, harvested,
 * or accumulated in a different order than the epoch march, which
 * would silently move billing totals.
 */

#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "scenario/scenario_runner.h"
#include "sim/machine_catalog.h"

namespace litmus
{
namespace
{

std::string
writeTempFile(const std::string &name, const std::string &text)
{
    const std::string path = ::testing::TempDir() + name;
    std::ofstream file(path);
    file << text;
    return path;
}

/** One backend's complete observable outcome. */
struct RunOutcome
{
    cluster::FleetReport report;
    /** Per-machine ledger records (copied out of the cluster). */
    std::vector<std::vector<pricing::BillRecord>> ledgers;
};

RunOutcome
runWith(scenario::ScenarioSpec spec, cluster::SchedulerBackend sched,
        unsigned threads = 1)
{
    spec.scheduler = sched;
    spec.threads = threads;
    scenario::ScenarioRunner runner(std::move(spec));
    RunOutcome out;
    out.report = runner.run();
    for (std::size_t m = 0; m < out.report.machines.size(); ++m)
        out.ledgers.push_back(
            runner.cluster().ledger(static_cast<unsigned>(m)).records());
    return out;
}

/**
 * Bit-exact comparison of everything a run reports. SchedulerCounters
 * are deliberately excluded — the two backends take different
 * barriers by design; that is the entire point.
 */
void
expectIdentical(const RunOutcome &a, const RunOutcome &b)
{
    const cluster::FleetReport &x = a.report;
    const cluster::FleetReport &y = b.report;
    EXPECT_EQ(x.arrivals, y.arrivals);
    EXPECT_EQ(x.dispatched, y.dispatched);
    EXPECT_EQ(x.rejectedMemory, y.rejectedMemory);
    EXPECT_EQ(x.completions, y.completions);
    EXPECT_EQ(x.coldStarts, y.coldStarts);
    EXPECT_EQ(x.warmStarts, y.warmStarts);
    EXPECT_EQ(x.billedCpuSeconds, y.billedCpuSeconds);
    EXPECT_EQ(x.commercialUsd, y.commercialUsd);
    EXPECT_EQ(x.litmusUsd, y.litmusUsd);
    EXPECT_EQ(x.meanLatency, y.meanLatency);
    EXPECT_EQ(x.makespan, y.makespan);
    EXPECT_EQ(x.crashes, y.crashes);
    EXPECT_EQ(x.killedInvocations, y.killedInvocations);
    EXPECT_EQ(x.retries, y.retries);
    EXPECT_EQ(x.abandoned, y.abandoned);
    EXPECT_EQ(x.lostCpuSeconds, y.lostCpuSeconds);
    EXPECT_EQ(x.absorbedCpuSeconds, y.absorbedCpuSeconds);
    EXPECT_EQ(x.absorbedUsd, y.absorbedUsd);
    EXPECT_TRUE(cluster::identicalTotals(x, y));

    ASSERT_EQ(x.machines.size(), y.machines.size());
    for (std::size_t i = 0; i < x.machines.size(); ++i) {
        const cluster::MachineReport &m = x.machines[i];
        const cluster::MachineReport &n = y.machines[i];
        EXPECT_EQ(m.type, n.type) << "machine " << i;
        EXPECT_EQ(m.dispatched, n.dispatched) << "machine " << i;
        EXPECT_EQ(m.coldStarts, n.coldStarts) << "machine " << i;
        EXPECT_EQ(m.warmStarts, n.warmStarts) << "machine " << i;
        EXPECT_EQ(m.completions, n.completions) << "machine " << i;
        EXPECT_EQ(m.billedCpuSeconds, n.billedCpuSeconds)
            << "machine " << i;
        EXPECT_EQ(m.commercialUsd, n.commercialUsd) << "machine " << i;
        EXPECT_EQ(m.litmusUsd, n.litmusUsd) << "machine " << i;
        EXPECT_EQ(m.meanLatency, n.meanLatency) << "machine " << i;
        EXPECT_EQ(m.quanta, n.quanta) << "machine " << i;
        EXPECT_EQ(m.crashes, n.crashes) << "machine " << i;
        EXPECT_EQ(m.killedInvocations, n.killedInvocations)
            << "machine " << i;
        EXPECT_EQ(m.lostCpuSeconds, n.lostCpuSeconds) << "machine " << i;
        EXPECT_EQ(m.absorbedCpuSeconds, n.absorbedCpuSeconds)
            << "machine " << i;
        EXPECT_EQ(m.absorbedUsd, n.absorbedUsd) << "machine " << i;
    }

    ASSERT_EQ(x.types.size(), y.types.size());
    for (std::size_t i = 0; i < x.types.size(); ++i) {
        const cluster::TypeReport &t = x.types[i];
        const cluster::TypeReport &u = y.types[i];
        EXPECT_EQ(t.type, u.type);
        EXPECT_EQ(t.machines, u.machines) << t.type;
        EXPECT_EQ(t.dispatched, u.dispatched) << t.type;
        EXPECT_EQ(t.coldStarts, u.coldStarts) << t.type;
        EXPECT_EQ(t.warmStarts, u.warmStarts) << t.type;
        EXPECT_EQ(t.billedCpuSeconds, u.billedCpuSeconds) << t.type;
        EXPECT_EQ(t.commercialUsd, u.commercialUsd) << t.type;
        EXPECT_EQ(t.litmusUsd, u.litmusUsd) << t.type;
    }

    ASSERT_EQ(a.ledgers.size(), b.ledgers.size());
    for (std::size_t m = 0; m < a.ledgers.size(); ++m) {
        ASSERT_EQ(a.ledgers[m].size(), b.ledgers[m].size())
            << "ledger " << m;
        for (std::size_t r = 0; r < a.ledgers[m].size(); ++r) {
            const pricing::BillRecord &p = a.ledgers[m][r];
            const pricing::BillRecord &q = b.ledgers[m][r];
            EXPECT_EQ(p.function, q.function)
                << "ledger " << m << " record " << r;
            EXPECT_EQ(p.tenant, q.tenant)
                << "ledger " << m << " record " << r;
            EXPECT_EQ(p.cpuSeconds, q.cpuSeconds)
                << "ledger " << m << " record " << r;
            EXPECT_EQ(p.commercialUsd, q.commercialUsd)
                << "ledger " << m << " record " << r;
            EXPECT_EQ(p.litmusUsd, q.litmusUsd)
                << "ledger " << m << " record " << r;
        }
    }
}

/** fig22-style base: small warmth-aware fleet, test-set functions. */
scenario::ScenarioSpec
baseSpec(const std::string &extra = "")
{
    return scenario::ScenarioSpec::fromString(
        "fleet = cascade-5218:3\n"
        "policy = warmth-aware\n"
        "rate = 1500\n"
        "invocations = 400\n"
        "keepalive = 0.05\n"
        "functions = test\n"
        "seed = 11\n" +
        extra);
}

// ---- traffic models --------------------------------------------------

TEST(EventCoreDifferential, PoissonBitIdentical)
{
    const auto spec = baseSpec();
    expectIdentical(runWith(spec, cluster::SchedulerBackend::Event),
                    runWith(spec, cluster::SchedulerBackend::Epoch));
}

TEST(EventCoreDifferential, DiurnalBitIdentical)
{
    // fig24-style load swing: deep idle troughs exercise the event
    // core's idle fast-forward against the oracle's floor jump.
    const auto spec = baseSpec("traffic = diurnal\n"
                               "diurnal.period = 0.4\n"
                               "diurnal.amplitude = 0.95\n");
    expectIdentical(runWith(spec, cluster::SchedulerBackend::Event),
                    runWith(spec, cluster::SchedulerBackend::Epoch));
}

TEST(EventCoreDifferential, BurstBitIdentical)
{
    const auto spec = baseSpec("traffic = burst\n"
                               "burst.on = 0.05\n"
                               "burst.off = 0.2\n"
                               "burst.idle_fraction = 0.02\n");
    expectIdentical(runWith(spec, cluster::SchedulerBackend::Event),
                    runWith(spec, cluster::SchedulerBackend::Epoch));
}

TEST(EventCoreDifferential, TraceReplayBitIdentical)
{
    // Includes a t=0 arrival (due before the first barrier) and long
    // gaps — the two shapes that force the oracle's conservative idle
    // jump to be reproduced exactly.
    const std::string tracePath = writeTempFile(
        "event_core_trace.csv", "0.0,float-py\n"
                                "0.001,aes-go\n"
                                "0.13,\n"
                                "0.50,float-py\n"
                                "0.5001,aes-go\n"
                                "1.75,\n");
    const auto spec = baseSpec("traffic = trace\n"
                               "trace.path = " + tracePath + "\n");
    expectIdentical(runWith(spec, cluster::SchedulerBackend::Event),
                    runWith(spec, cluster::SchedulerBackend::Epoch));
}

// ---- fleets ----------------------------------------------------------

TEST(EventCoreDifferential, MixedFleetBitIdentical)
{
    // Heterogeneous types share one quantum grid; per-type billing
    // slices must match record for record.
    const auto spec = scenario::ScenarioSpec::fromString(
        "fleet = cascade-5218:2,icelake-4314:2\n"
        "policy = cost-aware\n"
        "rate = 2000\n"
        "invocations = 500\n"
        "keepalive = 0.1\n"
        "functions = test\n"
        "seed = 3\n");
    expectIdentical(runWith(spec, cluster::SchedulerBackend::Event),
                    runWith(spec, cluster::SchedulerBackend::Epoch));
}

// ---- chaos -----------------------------------------------------------

TEST(EventCoreDifferential, ChaosProviderAbsorbsBitIdentical)
{
    // fig25-style campaign: stochastic crashes with backoff retries.
    // Restart transitions, kill/retry accounting, and absorbed-work
    // conservation all must survive the backend swap.
    const auto spec = baseSpec("fault.crash.mtbf = 0.4\n"
                               "fault.crash.restart = 0.05\n"
                               "fault.retry = backoff\n"
                               "fault.retry.max = 3\n"
                               "fault.retry.backoff = 0.02\n"
                               "fault.billing = provider-absorbs\n"
                               "fault.seed = 5\n");
    expectIdentical(runWith(spec, cluster::SchedulerBackend::Event),
                    runWith(spec, cluster::SchedulerBackend::Epoch));
}

TEST(EventCoreDifferential, ChaosTenantPaysScriptedBitIdentical)
{
    // Scripted crashes and slowdowns at fixed times under tenant-pays
    // billing: fault events must fire at the same barrier in both
    // backends even when the fleet is wholly idle around them.
    const auto spec = baseSpec("fault.crash.at = 0.05@0;0.11@2\n"
                               "fault.crash.restart = 0.04\n"
                               "fault.slow.at = 0.08@1\n"
                               "fault.slow.duration = 0.06\n"
                               "fault.slow.factor = 0.5\n"
                               "fault.retry = retry-once\n"
                               "fault.billing = tenant-pays\n");
    expectIdentical(runWith(spec, cluster::SchedulerBackend::Event),
                    runWith(spec, cluster::SchedulerBackend::Epoch));
}

// ---- threads ---------------------------------------------------------

TEST(EventCoreDifferential, ThreadCountInvariant)
{
    const auto spec = baseSpec();
    const RunOutcome serial =
        runWith(spec, cluster::SchedulerBackend::Event, 1);
    for (unsigned threads : {4u, 16u}) {
        expectIdentical(
            serial,
            runWith(spec, cluster::SchedulerBackend::Event, threads));
        expectIdentical(
            serial,
            runWith(spec, cluster::SchedulerBackend::Epoch, threads));
    }
}

// ---- counters --------------------------------------------------------

TEST(EventCoreCounters, EventCoreSkipsIdleWork)
{
    // A sparse trace leaves the fleet idle for long stretches: the
    // event core must elide idle quanta and barriers while the epoch
    // oracle takes every grid barrier; the shared-path event counters
    // must agree between backends.
    const std::string tracePath = writeTempFile(
        "event_core_sparse.csv", "0.01,float-py\n"
                                 "0.8,aes-go\n"
                                 "1.9,float-py\n");
    const auto spec = baseSpec("traffic = trace\n"
                               "trace.path = " + tracePath + "\n");
    const RunOutcome event =
        runWith(spec, cluster::SchedulerBackend::Event);
    const RunOutcome epoch =
        runWith(spec, cluster::SchedulerBackend::Epoch);
    expectIdentical(event, epoch);

    EXPECT_EQ(event.report.sched.scheduler, "event");
    EXPECT_EQ(epoch.report.sched.scheduler, "epoch");
    EXPECT_GT(event.report.sched.idleQuantaSkipped, 0u);
    EXPECT_EQ(epoch.report.sched.idleQuantaSkipped, 0u);
    EXPECT_LE(event.report.sched.barriers, epoch.report.sched.barriers);
    EXPECT_EQ(event.report.sched.barriers +
                  event.report.sched.barriersElided,
              epoch.report.sched.barriers +
                  epoch.report.sched.barriersElided);
    EXPECT_EQ(event.report.sched.eventsArrival,
              epoch.report.sched.eventsArrival);
    EXPECT_EQ(event.report.sched.eventsRetry,
              epoch.report.sched.eventsRetry);
    EXPECT_EQ(event.report.sched.eventsFault,
              epoch.report.sched.eventsFault);
}

// ---- quantum agreement (config-time validation) ----------------------

TEST(EventCoreQuantum, MismatchedFleetQuantumIsFatal)
{
    // A type with a different engine quantum cannot share the fleet's
    // integer tick grid; the cluster must refuse at validate() time
    // with a message naming both types.
    const std::string path = writeTempFile(
        "event_core_coarse.conf", "base = icelake-4314\n"
                                  "name = coarse-4314\n"
                                  "quantum_us = 100\n");
    sim::MachineCatalog::registerFromFile(path);
    cluster::ClusterConfig cfg;
    cfg.fleet = {{"cascade-5218", 1}, {"coarse-4314", 1}};
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "same quantum");
}

TEST(EventCoreQuantum, QuantumMustBeWholeNanoseconds)
{
    auto cfg = sim::MachineCatalog::get("cascade-5218");
    cfg.quantum = 2.5e-9;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "whole number");
}

} // namespace
} // namespace litmus
