/**
 * @file
 * Tests for the scenario layer: pluggable traffic models (empirical
 * rate, seed determinism, trace replay exactness, malformed input),
 * declarative scenario specs, and the ScenarioRunner's bit-exact
 * equivalence with the legacy fleet path.
 */

#include <cmath>
#include <fstream>
#include <limits>

#include <gtest/gtest.h>

#include "scenario/scenario_runner.h"
#include "sim/machine_catalog.h"
#include "workload/suite.h"

namespace litmus::scenario
{
namespace
{

using cluster::Invocation;
using workload::FunctionSpec;

std::vector<const FunctionSpec *>
onePool()
{
    return {&workload::functionByName("float-py")};
}

std::vector<Invocation>
generate(const TrafficSpec &spec, std::uint64_t seed = 42)
{
    Rng rng(seed);
    return makeTrafficModel(spec)->generate(rng, onePool());
}

/** Measured mean arrival rate over the generated span. */
double
empiricalRate(const std::vector<Invocation> &trace)
{
    EXPECT_FALSE(trace.empty());
    const Seconds span = trace.back().arrival;
    return span > 0 ? static_cast<double>(trace.size()) / span : 0.0;
}

std::string
writeTempFile(const std::string &name, const std::string &text)
{
    const std::string path = ::testing::TempDir() + name;
    std::ofstream file(path);
    file << text;
    return path;
}

// ---- empirical rate per model ----------------------------------------

TEST(TrafficModels, PoissonHitsConfiguredRate)
{
    TrafficSpec spec;
    spec.arrivalsPerSecond = 1000;
    spec.invocations = 20000;
    const auto trace = generate(spec);
    ASSERT_EQ(trace.size(), spec.invocations);
    EXPECT_NEAR(empiricalRate(trace), 1000.0, 50.0);
}

TEST(TrafficModels, DiurnalHitsMeanRateAndModulates)
{
    TrafficSpec spec;
    spec.model = "diurnal";
    spec.arrivalsPerSecond = 1000;
    spec.invocations = 20000;
    spec.diurnalPeriod = 1.0;
    spec.diurnalAmplitude = 1.0;
    const auto trace = generate(spec);
    ASSERT_EQ(trace.size(), spec.invocations);
    // Thinning preserves the long-run mean rate...
    EXPECT_NEAR(empiricalRate(trace), 1000.0, 60.0);
    // ...while the instantaneous rate follows the sinusoid: the
    // quarter-period around the peak must dwarf the trough.
    std::uint64_t peak = 0, trough = 0;
    for (const Invocation &inv : trace) {
        const double phase =
            inv.arrival / spec.diurnalPeriod -
            std::floor(inv.arrival / spec.diurnalPeriod);
        if (phase >= 0.15 && phase < 0.35)
            ++peak;
        if (phase >= 0.65 && phase < 0.85)
            ++trough;
    }
    EXPECT_GT(peak, 8 * std::max<std::uint64_t>(trough, 1));
}

TEST(TrafficModels, BurstHitsMeanRateAndClusters)
{
    TrafficSpec spec;
    spec.model = "burst";
    spec.arrivalsPerSecond = 1000;
    spec.invocations = 20000;
    spec.burstOn = 0.05;
    spec.burstOff = 0.15;
    const auto trace = generate(spec);
    ASSERT_EQ(trace.size(), spec.invocations);
    // Long-run mean is solved to match the configured rate.
    EXPECT_NEAR(empiricalRate(trace), 1000.0, 120.0);
    // With no idle trickle the on-state rate is (on+off)/on = 4x the
    // mean, so inter-arrival gaps are far burstier than Poisson: the
    // median gap must sit well below the mean gap.
    std::vector<double> gaps;
    for (std::size_t i = 1; i < trace.size(); ++i)
        gaps.push_back(trace[i].arrival - trace[i - 1].arrival);
    std::sort(gaps.begin(), gaps.end());
    const double median = gaps[gaps.size() / 2];
    const double mean = trace.back().arrival / gaps.size();
    EXPECT_LT(median, 0.5 * mean);
}

TEST(TrafficModels, DurationStopsTheStream)
{
    TrafficSpec spec;
    spec.arrivalsPerSecond = 1000;
    spec.invocations = 0;
    spec.duration = 2.0;
    const auto trace = generate(spec);
    EXPECT_NEAR(static_cast<double>(trace.size()), 2000.0, 200.0);
    EXPECT_LT(trace.back().arrival, 2.0);
}

// ---- determinism ------------------------------------------------------

TEST(TrafficModels, SameSeedSameTraceEveryModel)
{
    const std::string tracePath = writeTempFile(
        "det_trace.csv", "0.01,float-py\n0.02,\n0.05,aes-go\n");
    for (const std::string model :
         {"poisson", "diurnal", "burst", "trace"}) {
        TrafficSpec spec;
        spec.model = model;
        spec.arrivalsPerSecond = 2000;
        spec.invocations = 500;
        spec.tracePath = tracePath;
        const auto a = generate(spec, 7);
        const auto b = generate(spec, 7);
        ASSERT_EQ(a.size(), b.size()) << model;
        for (std::size_t i = 0; i < a.size(); ++i) {
            // Bit-exact timestamps and identical function choices.
            EXPECT_EQ(a[i].arrival, b[i].arrival) << model;
            EXPECT_EQ(a[i].spec, b[i].spec) << model;
            EXPECT_EQ(a[i].seq, i) << model;
        }
        if (model != "trace") {
            const auto c = generate(spec, 8);
            EXPECT_NE(a.front().arrival, c.front().arrival) << model;
        }
    }
}

TEST(TrafficModels, ArrivalsAreNondecreasing)
{
    for (const std::string model : {"poisson", "diurnal", "burst"}) {
        TrafficSpec spec;
        spec.model = model;
        spec.arrivalsPerSecond = 5000;
        spec.invocations = 3000;
        const auto trace = generate(spec);
        for (std::size_t i = 1; i < trace.size(); ++i)
            ASSERT_GE(trace[i].arrival, trace[i - 1].arrival) << model;
    }
}

// ---- trace replay -----------------------------------------------------

TEST(TraceReplay, ExactTimestampsAndNames)
{
    const std::string path = writeTempFile("replay.csv",
                                           "# recorded log\n"
                                           "arrival_seconds,function\n"
                                           "0.5,float-py\n"
                                           "1.0,\n"
                                           "2.25,aes-go\n");
    TrafficSpec spec;
    spec.model = "trace";
    spec.tracePath = path;
    spec.traceRateScale = 2.0;
    const auto trace = generate(spec);
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace[0].arrival, 0.5 / 2.0);
    EXPECT_EQ(trace[1].arrival, 1.0 / 2.0);
    EXPECT_EQ(trace[2].arrival, 2.25 / 2.0);
    EXPECT_EQ(trace[0].spec->name, "float-py");
    // The empty function field samples the (one-entry) pool.
    EXPECT_EQ(trace[1].spec->name, "float-py");
    EXPECT_EQ(trace[2].spec->name, "aes-go");
    EXPECT_EQ(trace[2].seq, 2u);
}

TEST(TraceReplay, RowAndDurationCaps)
{
    const std::string path = writeTempFile(
        "caps.csv", "0.1,float-py\n0.2,float-py\n0.3,float-py\n");
    TrafficSpec spec;
    spec.model = "trace";
    spec.tracePath = path;
    spec.invocations = 2;
    EXPECT_EQ(generate(spec).size(), 2u);
    spec.invocations = 0;
    spec.duration = 0.3;
    const auto byDuration = generate(spec);
    ASSERT_EQ(byDuration.size(), 2u);
    EXPECT_LT(byDuration.back().arrival, 0.3);
}

TEST(TraceReplayDeath, MalformedTraces)
{
    TrafficSpec spec;
    spec.model = "trace";
    spec.tracePath = "/nonexistent/trace.csv";
    EXPECT_EXIT((void)makeTrafficModel(spec),
                ::testing::ExitedWithCode(1), "cannot read");

    spec.tracePath =
        writeTempFile("bad_stamp.csv", "0.1,float-py\noops,aes-go\n");
    EXPECT_EXIT((void)makeTrafficModel(spec),
                ::testing::ExitedWithCode(1), "bad arrival timestamp");

    spec.tracePath = writeTempFile(
        "out_of_order.csv", "0.2,float-py\n0.1,float-py\n");
    EXPECT_EXIT((void)makeTrafficModel(spec),
                ::testing::ExitedWithCode(1), "out of order");

    spec.tracePath =
        writeTempFile("neg.csv", "-0.5,float-py\n0.1,float-py\n");
    EXPECT_EXIT((void)makeTrafficModel(spec),
                ::testing::ExitedWithCode(1), "negative arrival");

    spec.tracePath =
        writeTempFile("unknown_fn.csv", "0.1,frobnicate-py\n");
    EXPECT_EXIT((void)makeTrafficModel(spec),
                ::testing::ExitedWithCode(1), "frobnicate-py");

    spec.tracePath = writeTempFile("empty.csv", "# nothing here\n");
    EXPECT_EXIT((void)makeTrafficModel(spec),
                ::testing::ExitedWithCode(1), "no arrivals");

    // strtod parses "nan"/"inf", but NaN would defeat the ordering
    // checks downstream — non-finite timestamps are malformed, even
    // on the first row, where the header allowance only covers
    // fields strtod can make nothing of.
    spec.tracePath = writeTempFile(
        "nan.csv", "nan,float-py\n0.1,float-py\n");
    EXPECT_EXIT((void)makeTrafficModel(spec),
                ::testing::ExitedWithCode(1), "bad arrival timestamp");
    spec.tracePath =
        writeTempFile("inf.csv", "0.1,float-py\ninf,float-py\n");
    EXPECT_EXIT((void)makeTrafficModel(spec),
                ::testing::ExitedWithCode(1), "bad arrival timestamp");
    spec.tracePath = writeTempFile(
        "units.csv", "0.5s,float-py\n1.0s,float-py\n");
    EXPECT_EXIT((void)makeTrafficModel(spec),
                ::testing::ExitedWithCode(1), "bad arrival timestamp");
}

TEST(TraceReplay, PaddedColumnsParse)
{
    // Space-padded timestamp columns (common in exported logs) must
    // parse like the trimmed function field does.
    const std::string path = writeTempFile(
        "padded.csv", "0.1 ,float-py\n0.2\t, aes-go \n");
    TrafficSpec spec;
    spec.model = "trace";
    spec.tracePath = path;
    const auto trace = generate(spec);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0].arrival, 0.1);
    EXPECT_EQ(trace[1].spec->name, "aes-go");
}

// ---- registry ---------------------------------------------------------

TEST(TrafficRegistry, BuiltinsPresentAndUnknownFatal)
{
    const auto names = trafficModelNames();
    for (const char *expected :
         {"burst", "diurnal", "poisson", "trace"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end());
    }
    TrafficSpec spec;
    spec.model = "fractal";
    EXPECT_EXIT((void)makeTrafficModel(spec),
                ::testing::ExitedWithCode(1),
                "unknown traffic model 'fractal'");
}

TEST(TrafficRegistry, CustomModelsPlugIn)
{
    class EveryMillisecond final : public TrafficModel
    {
      public:
        std::string name() const override { return "metronome"; }
        std::vector<Invocation>
        generate(Rng &rng,
                 const std::vector<const FunctionSpec *> &pool)
            const override
        {
            std::vector<Invocation> out;
            for (std::uint64_t i = 0; i < 100; ++i) {
                Invocation inv;
                inv.spec = pool[rng.below(pool.size())];
                inv.arrival = 1e-3 * static_cast<double>(i + 1);
                inv.seq = i;
                out.push_back(inv);
            }
            return out;
        }
    };
    registerTrafficModel("metronome", [](const TrafficSpec &) {
        return std::make_unique<EveryMillisecond>();
    });
    TrafficSpec spec;
    spec.model = "metronome";
    const auto trace = generate(spec);
    ASSERT_EQ(trace.size(), 100u);
    EXPECT_EQ(trace.front().arrival, 1e-3);
    EXPECT_EXIT(registerTrafficModel("metronome",
                                     [](const TrafficSpec &) {
                                         return std::unique_ptr<
                                             TrafficModel>();
                                     }),
                ::testing::ExitedWithCode(1), "already registered");
}

// ---- traffic spec validation ------------------------------------------

TEST(TrafficSpecDeath, RejectsNonsense)
{
    TrafficSpec spec;
    spec.arrivalsPerSecond = -1;
    EXPECT_EXIT(spec.validate(), ::testing::ExitedWithCode(1),
                "arrival rate must be positive");
    spec = TrafficSpec{};
    spec.invocations = 0;
    spec.duration = 0;
    EXPECT_EXIT(spec.validate(), ::testing::ExitedWithCode(1),
                "stop condition");
    spec = TrafficSpec{};
    spec.duration = std::numeric_limits<double>::infinity();
    EXPECT_EXIT(spec.validate(), ::testing::ExitedWithCode(1),
                "duration must be finite");
    spec = TrafficSpec{};
    spec.arrivalsPerSecond =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_EXIT(spec.validate(), ::testing::ExitedWithCode(1),
                "arrival rate must be positive and finite");
    spec = TrafficSpec{};
    spec.diurnalAmplitude = 1.5;
    EXPECT_EXIT(spec.validate(), ::testing::ExitedWithCode(1),
                "diurnal.amplitude");
    spec = TrafficSpec{};
    spec.burstOn = 0;
    EXPECT_EXIT(spec.validate(), ::testing::ExitedWithCode(1),
                "burst.on");
    spec = TrafficSpec{};
    spec.burstIdleFraction = 2;
    EXPECT_EXIT(spec.validate(), ::testing::ExitedWithCode(1),
                "burst.idle_fraction");
    spec = TrafficSpec{};
    spec.model = "trace";
    EXPECT_EXIT(spec.validate(), ::testing::ExitedWithCode(1),
                "trace.path");
}

// ---- scenario specs ---------------------------------------------------

TEST(ScenarioSpec, ParsesEveryKey)
{
    const ScenarioSpec spec = ScenarioSpec::fromString(
        "# a scenario\n"
        "fleet = cascade-5218:2,icelake-4314:3\n"
        "policy = cost-aware\n"
        "traffic = burst\n"
        "rate = 1234.5\n"
        "invocations = 777\n"
        "duration = 9\n"
        "burst.on = 0.25\n"
        "burst.off = 0.75\n"
        "burst.idle_fraction = 0.1\n"
        "functions = float-py,aes-go\n"
        "seed = 99\n"
        "epoch_us = 500\n"
        "keepalive = 5\n"
        "threads = 3\n"
        "exact_quantum = yes\n"
        "drain_cap = 120\n"
        "sharing_factor = 1.5\n"
        "probes = true\n");
    ASSERT_EQ(spec.fleet.size(), 2u);
    EXPECT_EQ(spec.fleet[0].machine, "cascade-5218");
    EXPECT_EQ(spec.fleet[1].count, 3u);
    EXPECT_EQ(spec.policy, cluster::DispatchPolicy::CostAware);
    EXPECT_EQ(spec.traffic.model, "burst");
    EXPECT_DOUBLE_EQ(spec.traffic.arrivalsPerSecond, 1234.5);
    EXPECT_EQ(spec.traffic.invocations, 777u);
    EXPECT_DOUBLE_EQ(spec.traffic.duration, 9.0);
    EXPECT_DOUBLE_EQ(spec.traffic.burstOn, 0.25);
    EXPECT_DOUBLE_EQ(spec.traffic.burstIdleFraction, 0.1);
    EXPECT_EQ(spec.functionPool().size(), 2u);
    EXPECT_EQ(spec.seed, 99u);
    EXPECT_DOUBLE_EQ(spec.epoch, 500e-6);
    EXPECT_EQ(spec.threads, 3u);
    EXPECT_TRUE(spec.exactQuantum);
    ASSERT_TRUE(spec.probes.has_value());
    EXPECT_TRUE(*spec.probes);
    spec.validate();
}

TEST(ScenarioSpec, TraceDropsTheDefaultArrivalCap)
{
    // A replay scenario that never mentions `invocations` must play
    // the whole file, not truncate at the generative 10000 default.
    EXPECT_EQ(ScenarioSpec::fromString("traffic = trace\n"
                                       "trace.path = x.csv\n")
                  .traffic.invocations,
              0u);
    // An explicit cap survives in either key order.
    EXPECT_EQ(ScenarioSpec::fromString("invocations = 500\n"
                                       "traffic = trace\n")
                  .traffic.invocations,
              500u);
    EXPECT_EQ(ScenarioSpec::fromString("traffic = trace\n"
                                       "invocations = 500\n")
                  .traffic.invocations,
              500u);
}

TEST(ScenarioSpec, BuilderChainsAndNamedSetsResolve)
{
    ScenarioSpec spec;
    spec.set("traffic", "diurnal").set("rate", "3000");
    EXPECT_EQ(spec.traffic.model, "diurnal");
    EXPECT_DOUBLE_EQ(spec.traffic.arrivalsPerSecond, 3000.0);
    EXPECT_EQ(ScenarioSpec().set("functions", "test").functionPool(),
              workload::testSet());
    EXPECT_EQ(ScenarioSpec().functionPool(), workload::allFunctions());
}

TEST(ScenarioSpecDeath, MalformedScenarios)
{
    EXPECT_EXIT((void)ScenarioSpec::fromString("warp_speed = 9\n"),
                ::testing::ExitedWithCode(1),
                "unknown scenario key 'warp_speed'");
    EXPECT_EXIT((void)ScenarioSpec::fromString("rate = fast\n"),
                ::testing::ExitedWithCode(1),
                "expects a finite number");
    EXPECT_EXIT((void)ScenarioSpec::fromString("duration = inf\n"),
                ::testing::ExitedWithCode(1),
                "expects a finite number");
    EXPECT_EXIT((void)ScenarioSpec::fromString("invocations = -4\n"),
                ::testing::ExitedWithCode(1), "must be >= 0");
    EXPECT_EXIT((void)ScenarioSpec::fromString("calibrate = maybe\n"),
                ::testing::ExitedWithCode(1), "expects a boolean");
    EXPECT_EXIT((void)ScenarioSpec::fromString("fleet = cascade:zero\n"),
                ::testing::ExitedWithCode(1), "bad machine count");
    EXPECT_EXIT((void)ScenarioSpec::fromString("functions = nope-py\n")
                    .functionPool(),
                ::testing::ExitedWithCode(1), "nope-py");
    EXPECT_EXIT((void)ScenarioSpec::fromFile("/nonexistent.scenario"),
                ::testing::ExitedWithCode(1), "");
}

// ---- runner equivalence with the legacy fleet path --------------------

/** An 8-core cut of the Cascade Lake preset, registered once so
 *  fleet specs can name it. */
const std::string &
testMachine()
{
    static const std::string name = [] {
        sim::MachineConfig cfg =
            sim::MachineCatalog::get("cascade-5218");
        cfg.name = "scenario-test-cascade-8";
        cfg.cores = 8;
        sim::MachineCatalog::registerPreset(cfg);
        return cfg.name;
    }();
    return name;
}

TEST(ScenarioRunner, PoissonModelMatchesLegacyClusterBitExactly)
{
    // The legacy path: ClusterConfig's built-in inline Poisson source.
    cluster::ClusterConfig cfg;
    cfg.fleet = {{testMachine(), 2}};
    cfg.policy = cluster::DispatchPolicy::WarmthAware;
    cfg.arrivalsPerSecond = 4000;
    cfg.invocations = 120;
    cfg.functionPool = onePool();
    cfg.seed = 11;
    cfg.threads = 1;
    cluster::Cluster legacy(cfg);
    const cluster::FleetReport &legacyReport = legacy.run();

    // The scenario path: the same knobs through the poisson plugin.
    TrafficSpec traffic;
    traffic.arrivalsPerSecond = cfg.arrivalsPerSecond;
    traffic.invocations = cfg.invocations;
    const auto model = makeTrafficModel(traffic);
    cfg.traffic = model.get();
    cluster::Cluster viaModel(cfg);
    EXPECT_TRUE(cluster::identicalTotals(legacyReport, viaModel.run()));
}

TEST(ScenarioRunner, FileAndBuilderSpecsProduceIdenticalReports)
{
    const std::string text = "fleet = " + testMachine() +
                             ":2\n"
                             "policy = warmth-aware\n"
                             "traffic = burst\n"
                             "rate = 4000\n"
                             "invocations = 80\n"
                             "burst.on = 0.01\n"
                             "burst.off = 0.03\n"
                             "functions = float-py\n"
                             "seed = 5\n"
                             "threads = 1\n";
    ScenarioRunner fromFile(ScenarioSpec::fromString(text));

    ScenarioSpec built;
    built.set("fleet", testMachine() + ":2")
        .set("policy", "warmth-aware")
        .set("traffic", "burst")
        .set("rate", "4000")
        .set("invocations", "80")
        .set("burst.on", "0.01")
        .set("burst.off", "0.03")
        .set("functions", "float-py")
        .set("seed", "5")
        .set("threads", "1");
    ScenarioRunner fromBuilder(std::move(built));

    EXPECT_TRUE(cluster::identicalTotals(fromFile.run(), fromBuilder.run()));
    EXPECT_EQ(fromFile.traffic().name(), "burst");
}

TEST(ScenarioRunner, ThreadedRunsAreDeterministicPerModel)
{
    const std::string tracePath = writeTempFile(
        "runner_trace.csv",
        "0.001,float-py\n0.004,\n0.02,float-py\n0.05,\n0.09,\n");
    for (const std::string model :
         {"poisson", "diurnal", "burst", "trace"}) {
        ScenarioSpec spec;
        spec.fleet = {{testMachine(), 2}};
        spec.traffic.model = model;
        spec.traffic.arrivalsPerSecond = 4000;
        spec.traffic.invocations = 60;
        spec.traffic.diurnalPeriod = 0.01;
        spec.traffic.burstOn = 0.005;
        spec.traffic.burstOff = 0.015;
        spec.traffic.tracePath = tracePath;
        spec.functions = "float-py";
        spec.seed = 13;
        spec.threads = 1;
        ScenarioRunner serial(spec);
        spec.threads = 4;
        ScenarioRunner threaded(spec);
        EXPECT_TRUE(cluster::identicalTotals(serial.run(), threaded.run()))
            << model;
    }
}

} // namespace
} // namespace litmus::scenario
