/**
 * @file
 * Tests for the fleet serving layer: dispatch policies, open-loop
 * fan-in, warm-container reuse, billing conservation, and determinism
 * of the threaded epoch runner.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "core/calibration.h"
#include "workload/suite.h"

namespace litmus::cluster
{
namespace
{

using workload::FunctionSpec;
using workload::GeneratorKind;
using workload::Language;

/** Small fast functions (Go startup is the shortest) for fleet runs. */
const std::vector<FunctionSpec> &
tinySuite()
{
    static const std::vector<FunctionSpec> suite = [] {
        std::vector<FunctionSpec> fns;
        for (const char *name : {"alpha-go", "beta-go"}) {
            FunctionSpec spec;
            spec.name = name;
            spec.language = Language::Go;
            workload::Phase body;
            body.name = "body";
            body.instructions = 3_Minstr;
            body.demand.cpi0 = 0.8;
            body.demand.l2Mpki = 4.0;
            body.demand.l3WorkingSet = 2_MiB;
            body.demand.l3MissBase = 0.2;
            body.demand.mlp = 4.0;
            spec.body = {body};
            spec.memoryFootprint = 256_MiB;
            fns.push_back(spec);
        }
        return fns;
    }();
    return suite;
}

std::vector<const FunctionSpec *>
tinyPool()
{
    std::vector<const FunctionSpec *> pool;
    for (const FunctionSpec &spec : tinySuite())
        pool.push_back(&spec);
    return pool;
}

ClusterConfig
smallFleet(unsigned machines, DispatchPolicy policy,
           std::uint64_t invocations = 200)
{
    ClusterConfig cfg;
    cfg.machines = machines;
    cfg.policy = policy;
    cfg.machine = sim::MachineConfig::cascadeLake5218();
    cfg.machine.cores = 8;
    cfg.arrivalsPerSecond = 4000;
    cfg.invocations = invocations;
    cfg.functionPool = tinyPool();
    cfg.seed = 11;
    cfg.threads = 1;
    return cfg;
}

TEST(DispatchPolicyNames, RoundTripAndAliases)
{
    for (DispatchPolicy policy : allPolicies())
        EXPECT_EQ(policyByName(policyName(policy)), policy);
    EXPECT_EQ(policyByName("rr"), DispatchPolicy::RoundRobin);
    EXPECT_EQ(policyByName("ll"), DispatchPolicy::LeastLoaded);
    EXPECT_EQ(policyByName("warmth"), DispatchPolicy::WarmthAware);
    EXPECT_EXIT(policyByName("fastest"), ::testing::ExitedWithCode(1),
                "unknown dispatch policy");
}

TEST(ClusterConfig, ValidateCatchesNonsense)
{
    ClusterConfig cfg;
    cfg.machines = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "machine");
    cfg = ClusterConfig{};
    cfg.arrivalsPerSecond = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "rate");
    cfg = ClusterConfig{};
    cfg.invocations = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "invocation");
    cfg = ClusterConfig{};
    cfg.epoch = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "epoch");
}

std::vector<MachineSnapshot>
snapshots(const std::vector<unsigned> &loads)
{
    std::vector<MachineSnapshot> out;
    for (unsigned i = 0; i < loads.size(); ++i) {
        MachineSnapshot snap;
        snap.index = i;
        snap.liveTasks = loads[i];
        snap.memoryCapacity = 1_GiB;
        out.push_back(snap);
    }
    return out;
}

Invocation
arrival(const FunctionSpec &spec)
{
    Invocation inv;
    inv.spec = &spec;
    return inv;
}

TEST(Dispatcher, RoundRobinCycles)
{
    auto rr = makeDispatcher(DispatchPolicy::RoundRobin);
    const auto machines = snapshots({5, 0, 0});
    const Invocation inv = arrival(tinySuite()[0]);
    EXPECT_EQ(rr->pick(inv, machines), 0u);
    EXPECT_EQ(rr->pick(inv, machines), 1u);
    EXPECT_EQ(rr->pick(inv, machines), 2u);
    EXPECT_EQ(rr->pick(inv, machines), 0u);
}

TEST(Dispatcher, LeastLoadedPicksMinWithStableTies)
{
    auto ll = makeDispatcher(DispatchPolicy::LeastLoaded);
    const Invocation inv = arrival(tinySuite()[0]);
    EXPECT_EQ(ll->pick(inv, snapshots({3, 1, 2})), 1u);
    // Ties go to the lowest index.
    EXPECT_EQ(ll->pick(inv, snapshots({2, 1, 1})), 1u);
    EXPECT_EQ(ll->pick(inv, snapshots({0, 0, 0})), 0u);
}

TEST(Dispatcher, WarmthAwarePrefersWarmThenFallsBack)
{
    auto warmth = makeDispatcher(DispatchPolicy::WarmthAware);
    const Invocation inv = arrival(tinySuite()[0]);

    std::unordered_map<std::string, std::deque<Seconds>> warm;
    warm[tinySuite()[0].name].push_back(1.0);

    // Machine 2 is warm for the function: chosen despite higher load.
    auto machines = snapshots({1, 0, 4});
    machines[2].warmIdle = &warm;
    EXPECT_EQ(warmth->pick(inv, machines), 2u);
    EXPECT_EQ(machines[2].warmIdleFor(inv.spec->name), 1u);

    // Warm for a different function only: fall back to least-loaded.
    const Invocation other = arrival(tinySuite()[1]);
    EXPECT_EQ(warmth->pick(other, machines), 1u);

    // Cold fleet: least-loaded.
    EXPECT_EQ(warmth->pick(inv, snapshots({2, 2, 1})), 2u);
}

TEST(Cluster, ServesAllArrivalsAndReports)
{
    Cluster fleet(smallFleet(3, DispatchPolicy::LeastLoaded));
    const FleetReport &report = fleet.run();

    EXPECT_EQ(report.arrivals, 200u);
    EXPECT_EQ(report.dispatched, 200u);
    EXPECT_EQ(report.completions, 200u);
    EXPECT_EQ(report.coldStarts + report.warmStarts,
              report.dispatched);
    EXPECT_EQ(report.rejectedMemory, 0u);
    EXPECT_GT(report.makespan, 0.0);
    EXPECT_GT(report.meanLatency, 0.0);
    EXPECT_GT(report.billedCpuSeconds, 0.0);

    ASSERT_EQ(report.machines.size(), 3u);
    std::uint64_t dispatched = 0, completions = 0;
    for (const MachineReport &m : report.machines) {
        dispatched += m.dispatched;
        completions += m.completions;
        EXPECT_GT(m.quanta, 0.0);
    }
    EXPECT_EQ(dispatched, report.dispatched);
    EXPECT_EQ(completions, report.completions);

    // Every machine drained.
    for (unsigned i = 0; i < 3; ++i)
        EXPECT_EQ(fleet.engine(i).taskCount(), 0u);
}

TEST(Cluster, BilledTimeConservedAcrossAggregation)
{
    Cluster fleet(smallFleet(4, DispatchPolicy::WarmthAware, 300));
    const FleetReport &report = fleet.run();

    // Fleet billed time is accumulated independently of the ledgers;
    // the two aggregations must agree.
    const Seconds perMachine = report.sumMachineBilledSeconds();
    EXPECT_NEAR(report.billedCpuSeconds, perMachine,
                1e-9 * report.billedCpuSeconds);

    // And the ledgers are the machine reports' source of truth.
    double commercial = 0;
    for (unsigned i = 0; i < 4; ++i)
        commercial += fleet.ledger(i).totalCommercialUsd();
    EXPECT_DOUBLE_EQ(commercial, report.commercialUsd);
}

/** Totals that must be bit-identical between equivalent runs. */
struct Totals
{
    Seconds billed;
    std::uint64_t cold;
    std::uint64_t completions;
    double commercial;
    double latency;
    Seconds makespan;
};

Totals
totalsOf(const FleetReport &report)
{
    return {report.billedCpuSeconds, report.coldStarts,
            report.completions,      report.commercialUsd,
            report.meanLatency,      report.makespan};
}

void
expectIdentical(const Totals &a, const Totals &b)
{
    EXPECT_EQ(a.billed, b.billed);
    EXPECT_EQ(a.cold, b.cold);
    EXPECT_EQ(a.completions, b.completions);
    EXPECT_EQ(a.commercial, b.commercial);
    EXPECT_EQ(a.latency, b.latency);
    EXPECT_EQ(a.makespan, b.makespan);
}

TEST(Cluster, FixedSeedReproducesIdenticalTotals)
{
    Cluster a(smallFleet(3, DispatchPolicy::WarmthAware));
    Cluster b(smallFleet(3, DispatchPolicy::WarmthAware));
    expectIdentical(totalsOf(a.run()), totalsOf(b.run()));
}

TEST(Cluster, ThreadedRunnerMatchesSerialBitExactly)
{
    auto serialCfg = smallFleet(4, DispatchPolicy::LeastLoaded, 300);
    serialCfg.threads = 1;
    auto threadedCfg = serialCfg;
    threadedCfg.threads = 4;

    Cluster serial(serialCfg);
    Cluster threaded(threadedCfg);
    expectIdentical(totalsOf(serial.run()), totalsOf(threaded.run()));
}

TEST(Cluster, WarmthAwareBeatsRoundRobinOnColdStarts)
{
    // Identical traffic (same seed/trace); only the routing differs.
    Cluster rr(smallFleet(4, DispatchPolicy::RoundRobin, 400));
    Cluster warmth(smallFleet(4, DispatchPolicy::WarmthAware, 400));
    const std::uint64_t rrCold = rr.run().coldStarts;
    const std::uint64_t warmthCold = warmth.run().coldStarts;
    EXPECT_LT(warmthCold, rrCold);
}

TEST(Cluster, ZeroKeepAliveMeansEveryStartIsCold)
{
    auto cfg = smallFleet(2, DispatchPolicy::WarmthAware);
    cfg.keepAlive = 0;
    Cluster fleet(cfg);
    const FleetReport &report = fleet.run();
    EXPECT_EQ(report.warmStarts, 0u);
    EXPECT_EQ(report.coldStarts, report.dispatched);
}

TEST(Cluster, WarmInvocationSkipsStartup)
{
    Rng rng(1);
    const FunctionSpec &spec = tinySuite()[0];
    const auto cold = workload::makeInvocation(spec, rng);
    const auto warm = workload::makeWarmInvocation(spec, rng);
    EXPECT_LT(warm->program().totalInstructions(),
              cold->program().totalInstructions());
    // Warm containers skip the startup, so there is no probe substrate.
    EXPECT_EQ(warm->probeWindow(), sim::Task::noProbe);
    EXPECT_GT(cold->probeWindow(), 0.0);
}

TEST(Cluster, AccessorsGuardAgainstMisuse)
{
    Cluster fleet(smallFleet(2, DispatchPolicy::RoundRobin));
    EXPECT_EXIT(fleet.report(), ::testing::ExitedWithCode(1),
                "not completed");
    EXPECT_EXIT(fleet.engine(7), ::testing::ExitedWithCode(1),
                "no machine");
    // Pre-run ledgers/engines would read as zero revenue; refuse.
    EXPECT_EXIT(fleet.ledger(0), ::testing::ExitedWithCode(1),
                "not completed");
    EXPECT_EXIT(fleet.engine(0), ::testing::ExitedWithCode(1),
                "not completed");
}

/** Synthetic discount model (same construction as test_pricing). */
pricing::DiscountModel
syntheticModel()
{
    pricing::CongestionTable congestion;
    pricing::PerformanceTable performance;
    for (Language lang : workload::allLanguages()) {
        pricing::ProbeReading base;
        // Far below any simulated startup CPI, so observed slowdowns
        // land above 1 and the (clamped) rates actually discount.
        base.privCpi = 0.2;
        base.sharedCpi = 0.05;
        base.instructions = 45e6;
        base.machineL3MissPerUs = 1.0;
        congestion.setBaseline(lang, base);
    }
    for (unsigned level : {2u, 4u, 6u, 8u}) {
        const double x = 1.0 + 0.05 * level;
        for (Language lang : workload::allLanguages()) {
            pricing::CongestionEntry e;
            e.privSlowdown = 1.0 + 0.005 * level;
            e.sharedSlowdown = x;
            e.totalSlowdown = x;
            e.l3MissPerUs = 10.0 * x;
            congestion.add(lang, GeneratorKind::CtGen, level, e);
            e.l3MissPerUs = 1000.0 * x;
            congestion.add(lang, GeneratorKind::MbGen, level, e);
        }
        pricing::PerformanceEntry p;
        p.privSlowdown = 1.0 + 0.005 * level;
        p.sharedSlowdown = x;
        p.totalSlowdown = x;
        performance.add(GeneratorKind::CtGen, level, p);
        performance.add(GeneratorKind::MbGen, level, p);
    }
    return pricing::DiscountModel(congestion, performance);
}

TEST(Cluster, DiscountModelPricesColdProbedInvocations)
{
    const pricing::DiscountModel model = syntheticModel();
    auto cfg = smallFleet(2, DispatchPolicy::WarmthAware);
    cfg.discountModel = &model;
    cfg.probes = true;
    Cluster fleet(cfg);
    const FleetReport &report = fleet.run();
    ASSERT_GT(report.coldStarts, 0u);
    ASSERT_GT(report.warmStarts, 0u);

    bool discounted = false;
    for (unsigned i = 0; i < 2; ++i) {
        for (const pricing::BillRecord &rec :
             fleet.ledger(i).records()) {
            EXPECT_GT(rec.commercialUsd, 0.0);
            if (rec.litmusUsd != rec.commercialUsd)
                discounted = true;
        }
    }
    // At least the cold, probed invocations went through the model.
    EXPECT_TRUE(discounted);

    // Conservation holds under Litmus pricing too.
    EXPECT_NEAR(report.billedCpuSeconds,
                report.sumMachineBilledSeconds(),
                1e-9 * report.billedCpuSeconds);
}

} // namespace
} // namespace litmus::cluster
