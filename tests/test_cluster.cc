/**
 * @file
 * Tests for the fleet serving layer: dispatch policies, open-loop
 * fan-in, warm-container reuse, billing conservation, and determinism
 * of the threaded epoch runner.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "core/calibration.h"
#include "workload/suite.h"
#include "sim/machine_catalog.h"

namespace litmus::cluster
{
namespace
{

using workload::FunctionSpec;
using workload::GeneratorKind;
using workload::Language;

/** Small fast functions (Go startup is the shortest) for fleet runs. */
const std::vector<FunctionSpec> &
tinySuite()
{
    static const std::vector<FunctionSpec> suite = [] {
        std::vector<FunctionSpec> fns;
        for (const char *name : {"alpha-go", "beta-go"}) {
            FunctionSpec spec;
            spec.name = name;
            spec.language = Language::Go;
            workload::Phase body;
            body.name = "body";
            body.instructions = 3_Minstr;
            body.demand.cpi0 = 0.8;
            body.demand.l2Mpki = 4.0;
            body.demand.l3WorkingSet = 2_MiB;
            body.demand.l3MissBase = 0.2;
            body.demand.mlp = 4.0;
            spec.body = {body};
            spec.memoryFootprint = 256_MiB;
            fns.push_back(spec);
        }
        return fns;
    }();
    return suite;
}

std::vector<const FunctionSpec *>
tinyPool()
{
    std::vector<const FunctionSpec *> pool;
    for (const FunctionSpec &spec : tinySuite())
        pool.push_back(&spec);
    return pool;
}

/** An 8-core cut of the Cascade Lake preset, registered once so fleet
 *  specs can name it. */
const std::string &
testMachine()
{
    static const std::string name = [] {
        sim::MachineConfig cfg =
            sim::MachineCatalog::get("cascade-5218");
        cfg.name = "test-cascade-8";
        cfg.cores = 8;
        sim::MachineCatalog::registerPreset(cfg);
        return cfg.name;
    }();
    return name;
}

ClusterConfig
smallFleet(unsigned machines, DispatchPolicy policy,
           std::uint64_t invocations = 200)
{
    ClusterConfig cfg;
    cfg.fleet = {{testMachine(), machines}};
    cfg.policy = policy;
    cfg.arrivalsPerSecond = 4000;
    cfg.invocations = invocations;
    cfg.functionPool = tinyPool();
    cfg.seed = 11;
    cfg.threads = 1;
    return cfg;
}

TEST(DispatchPolicyNames, RoundTripAndAliases)
{
    for (DispatchPolicy policy : allPolicies())
        EXPECT_EQ(policyByName(policyName(policy)), policy);
    EXPECT_EQ(policyByName("rr"), DispatchPolicy::RoundRobin);
    EXPECT_EQ(policyByName("ll"), DispatchPolicy::LeastLoaded);
    EXPECT_EQ(policyByName("warmth"), DispatchPolicy::WarmthAware);
    EXPECT_EXIT(policyByName("fastest"), ::testing::ExitedWithCode(1),
                "unknown dispatch policy");
}

TEST(ClusterConfig, ValidateCatchesNonsense)
{
    ClusterConfig cfg;
    cfg.fleet.clear();
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "fleet spec is empty");
    cfg = ClusterConfig{};
    cfg.fleet = {{"cascade-5218", 0}};
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "zero machines");
    cfg = ClusterConfig{};
    cfg.fleet = {{"pentium-133", 2}};
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "unknown machine 'pentium-133'");
    cfg = ClusterConfig{};
    cfg.functionPool.clear();
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "functionPool is empty");
    cfg = ClusterConfig{};
    cfg.arrivalsPerSecond = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "rate");
    cfg = ClusterConfig{};
    cfg.invocations = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "invocation");
    cfg = ClusterConfig{};
    cfg.epoch = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "epoch");
}

std::vector<MachineSnapshot>
snapshots(const std::vector<unsigned> &loads)
{
    std::vector<MachineSnapshot> out;
    for (unsigned i = 0; i < loads.size(); ++i) {
        MachineSnapshot snap;
        snap.index = i;
        snap.liveTasks = loads[i];
        snap.memoryCapacity = 1_GiB;
        out.push_back(snap);
    }
    return out;
}

Invocation
arrival(const FunctionSpec &spec)
{
    Invocation inv;
    inv.spec = &spec;
    return inv;
}

TEST(Dispatcher, RoundRobinCycles)
{
    auto rr = makeDispatcher(DispatchPolicy::RoundRobin);
    const auto machines = snapshots({5, 0, 0});
    const Invocation inv = arrival(tinySuite()[0]);
    EXPECT_EQ(rr->pick(inv, machines), 0u);
    EXPECT_EQ(rr->pick(inv, machines), 1u);
    EXPECT_EQ(rr->pick(inv, machines), 2u);
    EXPECT_EQ(rr->pick(inv, machines), 0u);
}

TEST(Dispatcher, LeastLoadedPicksMinWithStableTies)
{
    auto ll = makeDispatcher(DispatchPolicy::LeastLoaded);
    const Invocation inv = arrival(tinySuite()[0]);
    EXPECT_EQ(ll->pick(inv, snapshots({3, 1, 2})), 1u);
    // Ties go to the lowest index.
    EXPECT_EQ(ll->pick(inv, snapshots({2, 1, 1})), 1u);
    EXPECT_EQ(ll->pick(inv, snapshots({0, 0, 0})), 0u);
}

TEST(Dispatcher, CostAwareWeighsSpeedAgainstCrowding)
{
    auto cost = makeDispatcher(DispatchPolicy::CostAware);
    const Invocation inv = arrival(tinySuite()[0]);

    // A fast 2-core machine vs. a slow 2-core machine.
    auto machines = snapshots({0, 0});
    machines[0].cores = 2;
    machines[0].baseFrequency = 2.8e9;
    machines[1].cores = 2;
    machines[1].baseFrequency = 2.4e9;
    // Both idle: the faster clock wins.
    EXPECT_EQ(cost->pick(inv, machines), 0u);

    // Crowd the fast machine until time-sharing eats its clock edge:
    // at 4 live tasks on 2 cores the next task runs at (5/2)/2.8GHz,
    // worse than idle 1/2.4GHz on the slow machine.
    machines[0].liveTasks = 4;
    EXPECT_EQ(cost->pick(inv, machines), 1u);

    // Mild crowding that still beats the slow machine: 1 live task on
    // 2 cores leaves a free core, so the fast machine keeps winning.
    machines[0].liveTasks = 1;
    EXPECT_EQ(cost->pick(inv, machines), 0u);

    // Ties go to the lowest index.
    machines[0].baseFrequency = machines[1].baseFrequency;
    machines[0].liveTasks = 0;
    EXPECT_EQ(cost->pick(inv, machines), 0u);
}

TEST(Dispatcher, PolicyNamesIncludeCostAware)
{
    EXPECT_EQ(policyByName("cost"), DispatchPolicy::CostAware);
    EXPECT_EQ(policyByName("cost-aware"), DispatchPolicy::CostAware);
    EXPECT_EQ(policyName(DispatchPolicy::CostAware), "cost-aware");
    EXPECT_EQ(allPolicies().size(), 4u);
}

TEST(Dispatcher, WarmthAwarePrefersWarmThenFallsBack)
{
    auto warmth = makeDispatcher(DispatchPolicy::WarmthAware);
    const Invocation inv = arrival(tinySuite()[0]);

    std::unordered_map<std::string, std::deque<Seconds>> warm;
    warm[tinySuite()[0].name].push_back(1.0);

    // Machine 2 is warm for the function: chosen despite higher load.
    auto machines = snapshots({1, 0, 4});
    machines[2].warmIdle = &warm;
    EXPECT_EQ(warmth->pick(inv, machines), 2u);
    EXPECT_EQ(machines[2].warmIdleFor(inv.spec->name), 1u);

    // Warm for a different function only: fall back to least-loaded.
    const Invocation other = arrival(tinySuite()[1]);
    EXPECT_EQ(warmth->pick(other, machines), 1u);

    // Cold fleet: least-loaded.
    EXPECT_EQ(warmth->pick(inv, snapshots({2, 2, 1})), 2u);
}

TEST(Cluster, ServesAllArrivalsAndReports)
{
    Cluster fleet(smallFleet(3, DispatchPolicy::LeastLoaded));
    const FleetReport &report = fleet.run();

    EXPECT_EQ(report.arrivals, 200u);
    EXPECT_EQ(report.dispatched, 200u);
    EXPECT_EQ(report.completions, 200u);
    EXPECT_EQ(report.coldStarts + report.warmStarts,
              report.dispatched);
    EXPECT_EQ(report.rejectedMemory, 0u);
    EXPECT_GT(report.makespan, 0.0);
    EXPECT_GT(report.meanLatency, 0.0);
    EXPECT_GT(report.billedCpuSeconds, 0.0);

    ASSERT_EQ(report.machines.size(), 3u);
    std::uint64_t dispatched = 0, completions = 0;
    for (const MachineReport &m : report.machines) {
        dispatched += m.dispatched;
        completions += m.completions;
        EXPECT_GT(m.quanta, 0.0);
    }
    EXPECT_EQ(dispatched, report.dispatched);
    EXPECT_EQ(completions, report.completions);

    // Every machine drained.
    for (unsigned i = 0; i < 3; ++i)
        EXPECT_EQ(fleet.engine(i).taskCount(), 0u);
}

TEST(Cluster, BilledTimeConservedAcrossAggregation)
{
    Cluster fleet(smallFleet(4, DispatchPolicy::WarmthAware, 300));
    const FleetReport &report = fleet.run();

    // Fleet billed time is accumulated independently of the ledgers;
    // the two aggregations must agree.
    const Seconds perMachine = report.sumMachineBilledSeconds();
    EXPECT_NEAR(report.billedCpuSeconds, perMachine,
                1e-9 * report.billedCpuSeconds);

    // And the ledgers are the machine reports' source of truth.
    double commercial = 0;
    for (unsigned i = 0; i < 4; ++i)
        commercial += fleet.ledger(i).totalCommercialUsd();
    EXPECT_DOUBLE_EQ(commercial, report.commercialUsd);
}

/** Totals that must be bit-identical between equivalent runs. */
struct Totals
{
    Seconds billed;
    std::uint64_t cold;
    std::uint64_t completions;
    double commercial;
    double latency;
    Seconds makespan;
};

Totals
totalsOf(const FleetReport &report)
{
    return {report.billedCpuSeconds, report.coldStarts,
            report.completions,      report.commercialUsd,
            report.meanLatency,      report.makespan};
}

void
expectIdentical(const Totals &a, const Totals &b)
{
    EXPECT_EQ(a.billed, b.billed);
    EXPECT_EQ(a.cold, b.cold);
    EXPECT_EQ(a.completions, b.completions);
    EXPECT_EQ(a.commercial, b.commercial);
    EXPECT_EQ(a.latency, b.latency);
    EXPECT_EQ(a.makespan, b.makespan);
}

TEST(Cluster, FixedSeedReproducesIdenticalTotals)
{
    Cluster a(smallFleet(3, DispatchPolicy::WarmthAware));
    Cluster b(smallFleet(3, DispatchPolicy::WarmthAware));
    expectIdentical(totalsOf(a.run()), totalsOf(b.run()));
}

TEST(Cluster, ThreadedRunnerMatchesSerialBitExactly)
{
    auto serialCfg = smallFleet(4, DispatchPolicy::LeastLoaded, 300);
    serialCfg.threads = 1;
    auto threadedCfg = serialCfg;
    threadedCfg.threads = 4;

    Cluster serial(serialCfg);
    Cluster threaded(threadedCfg);
    expectIdentical(totalsOf(serial.run()), totalsOf(threaded.run()));
}

TEST(Cluster, WarmthAwareBeatsRoundRobinOnColdStarts)
{
    // Identical traffic (same seed/trace); only the routing differs.
    Cluster rr(smallFleet(4, DispatchPolicy::RoundRobin, 400));
    Cluster warmth(smallFleet(4, DispatchPolicy::WarmthAware, 400));
    const std::uint64_t rrCold = rr.run().coldStarts;
    const std::uint64_t warmthCold = warmth.run().coldStarts;
    EXPECT_LT(warmthCold, rrCold);
}

TEST(Cluster, ZeroKeepAliveMeansEveryStartIsCold)
{
    auto cfg = smallFleet(2, DispatchPolicy::WarmthAware);
    cfg.keepAlive = 0;
    Cluster fleet(cfg);
    const FleetReport &report = fleet.run();
    EXPECT_EQ(report.warmStarts, 0u);
    EXPECT_EQ(report.coldStarts, report.dispatched);
}

TEST(Cluster, WarmInvocationSkipsStartup)
{
    Rng rng(1);
    const FunctionSpec &spec = tinySuite()[0];
    const auto cold = workload::makeInvocation(spec, rng);
    const auto warm = workload::makeWarmInvocation(spec, rng);
    EXPECT_LT(warm->program().totalInstructions(),
              cold->program().totalInstructions());
    // Warm containers skip the startup, so there is no probe substrate.
    EXPECT_EQ(warm->probeWindow(), sim::Task::noProbe);
    EXPECT_GT(cold->probeWindow(), 0.0);
}

TEST(Cluster, AccessorsGuardAgainstMisuse)
{
    Cluster fleet(smallFleet(2, DispatchPolicy::RoundRobin));
    EXPECT_EXIT(fleet.report(), ::testing::ExitedWithCode(1),
                "not completed");
    EXPECT_EXIT(fleet.engine(7), ::testing::ExitedWithCode(1),
                "no machine");
    // Pre-run ledgers/engines would read as zero revenue; refuse.
    EXPECT_EXIT(fleet.ledger(0), ::testing::ExitedWithCode(1),
                "not completed");
    EXPECT_EXIT(fleet.engine(0), ::testing::ExitedWithCode(1),
                "not completed");
}

/** Synthetic calibration profile (same tables as test_pricing);
 *  machine name empty = wildcard unless the caller sets one. */
pricing::CalibrationProfile
syntheticProfile(const std::string &machine = "")
{
    pricing::CalibrationProfile profile;
    profile.machine = machine;
    pricing::CongestionTable &congestion = profile.congestion;
    pricing::PerformanceTable &performance = profile.performance;
    for (Language lang : workload::allLanguages()) {
        pricing::ProbeReading base;
        // Far below any simulated startup CPI, so observed slowdowns
        // land above 1 and the (clamped) rates actually discount.
        base.privCpi = 0.2;
        base.sharedCpi = 0.05;
        base.instructions = 45e6;
        base.machineL3MissPerUs = 1.0;
        congestion.setBaseline(lang, base);
    }
    for (unsigned level : {2u, 4u, 6u, 8u}) {
        const double x = 1.0 + 0.05 * level;
        for (Language lang : workload::allLanguages()) {
            pricing::CongestionEntry e;
            e.privSlowdown = 1.0 + 0.005 * level;
            e.sharedSlowdown = x;
            e.totalSlowdown = x;
            e.l3MissPerUs = 10.0 * x;
            congestion.add(lang, GeneratorKind::CtGen, level, e);
            e.l3MissPerUs = 1000.0 * x;
            congestion.add(lang, GeneratorKind::MbGen, level, e);
        }
        pricing::PerformanceEntry p;
        p.privSlowdown = 1.0 + 0.005 * level;
        p.sharedSlowdown = x;
        p.totalSlowdown = x;
        performance.add(GeneratorKind::CtGen, level, p);
        performance.add(GeneratorKind::MbGen, level, p);
    }
    return profile;
}

/** Synthetic discount model (wildcard machine). */
pricing::DiscountModel
syntheticModel()
{
    return pricing::DiscountModel(syntheticProfile());
}

TEST(Cluster, DiscountModelPricesColdProbedInvocations)
{
    const pricing::DiscountModel model = syntheticModel();
    auto cfg = smallFleet(2, DispatchPolicy::WarmthAware);
    cfg.discountModels[testMachine()] = &model;
    cfg.probes = true;
    Cluster fleet(cfg);
    const FleetReport &report = fleet.run();
    ASSERT_GT(report.coldStarts, 0u);
    ASSERT_GT(report.warmStarts, 0u);

    bool discounted = false;
    for (unsigned i = 0; i < 2; ++i) {
        for (const pricing::BillRecord &rec :
             fleet.ledger(i).records()) {
            EXPECT_GT(rec.commercialUsd, 0.0);
            if (rec.litmusUsd != rec.commercialUsd)
                discounted = true;
        }
    }
    // At least the cold, probed invocations went through the model.
    EXPECT_TRUE(discounted);

    // Conservation holds under Litmus pricing too.
    EXPECT_NEAR(report.billedCpuSeconds,
                report.sumMachineBilledSeconds(),
                1e-9 * report.billedCpuSeconds);
}

/** A slow 8-core Ice Lake cut for mixed fleets. */
const std::string &
testIcelake()
{
    static const std::string name = [] {
        sim::MachineConfig cfg =
            sim::MachineCatalog::get("icelake-4314");
        cfg.name = "test-icelake-8";
        cfg.cores = 8;
        sim::MachineCatalog::registerPreset(cfg);
        return cfg.name;
    }();
    return name;
}

ClusterConfig
mixedFleet(DispatchPolicy policy, std::uint64_t invocations = 300)
{
    ClusterConfig cfg = smallFleet(2, policy, invocations);
    cfg.fleet = {{testMachine(), 2}, {testIcelake(), 2}};
    return cfg;
}

TEST(Cluster, HeterogeneousFleetReportsPerTypeBreakdown)
{
    Cluster fleet(mixedFleet(DispatchPolicy::LeastLoaded));
    const FleetReport &report = fleet.run();

    // Machines are indexed group by group, each bound to its type.
    ASSERT_EQ(report.machines.size(), 4u);
    EXPECT_EQ(report.machines[0].type, testMachine());
    EXPECT_EQ(report.machines[1].type, testMachine());
    EXPECT_EQ(report.machines[2].type, testIcelake());
    EXPECT_EQ(report.machines[3].type, testIcelake());

    ASSERT_EQ(report.types.size(), 2u);
    EXPECT_EQ(report.types[0].type, testMachine());
    EXPECT_EQ(report.types[1].type, testIcelake());
    EXPECT_EQ(report.types[0].machines, 2u);
    EXPECT_EQ(report.types[1].machines, 2u);

    // The type breakdown loses nothing: counts exactly, money and
    // billed seconds to association error.
    std::uint64_t dispatched = 0, completions = 0;
    Seconds billed = 0;
    double commercial = 0;
    for (const TypeReport &t : report.types) {
        dispatched += t.dispatched;
        completions += t.completions;
        billed += t.billedCpuSeconds;
        commercial += t.commercialUsd;
        EXPECT_GT(t.dispatched, 0u);
    }
    EXPECT_EQ(dispatched, report.dispatched);
    EXPECT_EQ(completions, report.completions);
    EXPECT_NEAR(billed, report.billedCpuSeconds,
                1e-9 * report.billedCpuSeconds);
    EXPECT_NEAR(commercial, report.commercialUsd,
                1e-12 + 1e-9 * report.commercialUsd);
}

TEST(Cluster, HeterogeneousThreadedRunnerIsDeterministic)
{
    auto serialCfg = mixedFleet(DispatchPolicy::CostAware);
    serialCfg.threads = 1;
    auto threadedCfg = serialCfg;
    threadedCfg.threads = 4;
    Cluster serial(serialCfg);
    Cluster threaded(threadedCfg);
    expectIdentical(totalsOf(serial.run()), totalsOf(threaded.run()));
}

TEST(Cluster, CostAwareShiftsLoadTowardFasterMachines)
{
    // Same trace; cost-aware must put more work on the higher-clock
    // cascade cut than blind rotation does.
    Cluster rr(mixedFleet(DispatchPolicy::RoundRobin, 400));
    Cluster cost(mixedFleet(DispatchPolicy::CostAware, 400));
    const std::uint64_t rrCascade = rr.run().types[0].dispatched;
    const std::uint64_t costCascade = cost.run().types[0].dispatched;
    EXPECT_GT(costCascade, rrCascade);
}

TEST(Cluster, PerTypeDiscountModelsPriceOnlyTheirType)
{
    const pricing::DiscountModel model = syntheticModel();
    auto cfg = mixedFleet(DispatchPolicy::LeastLoaded);
    cfg.discountModels[testMachine()] = &model; // icelake unpriced
    cfg.probes = true;
    Cluster fleet(cfg);
    const FleetReport &report = fleet.run();

    ASSERT_EQ(report.types.size(), 2u);
    ASSERT_GT(report.types[0].coldStarts, 0u);
    // The modelled type discounts; the bare type bills commercially.
    EXPECT_LT(report.types[0].litmusUsd, report.types[0].commercialUsd);
    EXPECT_EQ(report.types[1].litmusUsd, report.types[1].commercialUsd);
}

TEST(Cluster, DiscountModelMachineMismatchIsFatal)
{
    // A profile calibrated on the cascade cut must not be bound to
    // the icelake group.
    const pricing::DiscountModel model(syntheticProfile(testMachine()));
    auto cfg = mixedFleet(DispatchPolicy::LeastLoaded);
    cfg.discountModels[testIcelake()] = &model;
    EXPECT_EXIT(Cluster{cfg}, ::testing::ExitedWithCode(1),
                "calibrated on");
}

TEST(Cluster, AliasFleetSpecBindsCanonicallyKeyedModels)
{
    // Fleet spec spelled with an alias, model keyed by the canonical
    // name: the machines must still bind (and discount).
    const pricing::DiscountModel model = syntheticModel();
    auto cfg = smallFleet(2, DispatchPolicy::WarmthAware);
    cfg.fleet = {{"icelake", 2}}; // alias of icelake-4314
    cfg.discountModels["icelake-4314"] = &model;
    cfg.probes = true;
    Cluster fleet(cfg);
    const FleetReport &report = fleet.run();
    ASSERT_EQ(report.types.size(), 1u);
    EXPECT_EQ(report.types[0].type, "icelake-4314");
    EXPECT_LT(report.types[0].litmusUsd,
              report.types[0].commercialUsd);
}

TEST(Cluster, SplitTypeGroupsMergeIntoOneTypeReport)
{
    // The same type in two non-adjacent groups gets one merged row.
    auto cfg = mixedFleet(DispatchPolicy::RoundRobin);
    cfg.fleet = {{testMachine(), 1},
                 {testIcelake(), 2},
                 {testMachine(), 1}};
    Cluster fleet(cfg);
    const FleetReport &report = fleet.run();
    ASSERT_EQ(report.types.size(), 2u);
    EXPECT_EQ(report.types[0].type, testMachine());
    EXPECT_EQ(report.types[0].machines, 2u);
    EXPECT_EQ(report.types[1].type, testIcelake());
    EXPECT_EQ(report.types[1].machines, 2u);
}

TEST(Cluster, DiscountModelForAbsentTypeIsFatal)
{
    const pricing::DiscountModel model = syntheticModel();
    auto cfg = smallFleet(2, DispatchPolicy::LeastLoaded);
    cfg.discountModels["cascade-5218"] = &model; // not in the fleet
    EXPECT_EXIT(Cluster{cfg}, ::testing::ExitedWithCode(1),
                "not in the fleet spec");
}

TEST(Cluster, DuplicateModelsUnderAliasAndCanonicalNameAreFatal)
{
    const pricing::DiscountModel a = syntheticModel();
    const pricing::DiscountModel b = syntheticModel();
    auto cfg = smallFleet(2, DispatchPolicy::LeastLoaded);
    cfg.fleet = {{"icelake-4314", 2}};
    cfg.discountModels["icelake-4314"] = &a;
    cfg.discountModels["icelake"] = &b; // same type, different model
    EXPECT_EXIT(Cluster{cfg}, ::testing::ExitedWithCode(1),
                "two discount models");
}

} // namespace
} // namespace litmus::cluster
