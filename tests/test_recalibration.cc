/**
 * @file
 * Tests for the recalibration advisor on a synthetic model.
 */

#include <gtest/gtest.h>

#include "core/recalibration.h"

namespace litmus::pricing
{
namespace
{

using workload::GeneratorKind;
using workload::Language;

/** Same synthetic tables as the discount-model tests. */
DiscountModel
makeModel()
{
    CongestionTable congestion;
    PerformanceTable performance;
    for (Language lang : workload::allLanguages()) {
        ProbeReading base;
        base.privCpi = 0.7;
        base.sharedCpi = 0.2;
        base.instructions = 45e6;
        base.machineL3MissPerUs = 1.0;
        congestion.setBaseline(lang, base);
    }
    for (unsigned level : {2u, 4u, 6u, 8u}) {
        const double x = 1.0 + 0.05 * level; // totals up to 1.4
        for (Language lang : workload::allLanguages()) {
            CongestionEntry e;
            e.privSlowdown = 1.0 + 0.005 * level;
            e.sharedSlowdown = x;
            e.totalSlowdown = x;
            e.l3MissPerUs = 10.0 * x;
            congestion.add(lang, GeneratorKind::CtGen, level, e);
            e.l3MissPerUs = 1000.0 * x;
            congestion.add(lang, GeneratorKind::MbGen, level, e);
        }
        PerformanceEntry p;
        p.privSlowdown = 1.0 + 0.005 * level;
        p.sharedSlowdown = x;
        p.totalSlowdown = x;
        performance.add(GeneratorKind::CtGen, level, p);
        performance.add(GeneratorKind::MbGen, level, p);
    }
    return DiscountModel(congestion, performance);
}

ProbeReading
reading(double total_slowdown, double l3)
{
    // Split: small private inflation, the rest on shared.
    ProbeReading r;
    r.privCpi = 0.7 * 1.01;
    r.sharedCpi = 0.9 * total_slowdown - r.privCpi;
    r.instructions = 45e6;
    r.machineL3MissPerUs = l3;
    return r;
}

TEST(Recalibration, ConfigValidation)
{
    const DiscountModel model = makeModel();
    RecalibrationConfig bad;
    bad.minReadings = 100;
    bad.windowSize = 10;
    EXPECT_EXIT(RecalibrationAdvisor(model, bad),
                ::testing::ExitedWithCode(1), "minReadings");
    bad = RecalibrationConfig{};
    bad.outOfRangeTolerance = 1.5;
    EXPECT_EXIT(RecalibrationAdvisor(model, bad),
                ::testing::ExitedWithCode(1), "tolerance");
}

TEST(Recalibration, InsufficientDataAtFirst)
{
    const DiscountModel model = makeModel();
    RecalibrationAdvisor advisor(model);
    EXPECT_EQ(advisor.advice(),
              RecalibrationAdvice::InsufficientData);
    advisor.observe(reading(1.2, 150.0), Language::Python);
    EXPECT_EQ(advisor.advice(),
              RecalibrationAdvice::InsufficientData);
}

TEST(Recalibration, HealthyInsideEnvelope)
{
    const DiscountModel model = makeModel();
    RecalibrationAdvisor advisor(model);
    for (int i = 0; i < 32; ++i)
        advisor.observe(reading(1.2, 150.0), Language::Python);
    EXPECT_EQ(advisor.advice(), RecalibrationAdvice::TablesHealthy);
    EXPECT_LT(advisor.outOfRangeFraction(), 0.1);
    EXPECT_LT(advisor.unbracketedFraction(), 0.1);
}

TEST(Recalibration, FlagsCongestionBeyondSweep)
{
    const DiscountModel model = makeModel();
    RecalibrationAdvisor advisor(model);
    // Tables only swept totals up to 1.4; feed 2.2x slowdowns.
    for (int i = 0; i < 32; ++i)
        advisor.observe(reading(2.2, 150.0), Language::Python);
    EXPECT_EQ(advisor.advice(),
              RecalibrationAdvice::SweepHigherLevels);
    EXPECT_GT(advisor.outOfRangeFraction(), 0.5);
}

TEST(Recalibration, FlagsUnbracketedL3Signature)
{
    const DiscountModel model = makeModel();
    RecalibrationAdvisor advisor(model);
    // In-range slowdown but an L3 rate far above the MB envelope.
    for (int i = 0; i < 32; ++i)
        advisor.observe(reading(1.2, 5e6), Language::Python);
    EXPECT_EQ(advisor.advice(),
              RecalibrationAdvice::GeneratorsDontBracket);
    EXPECT_GT(advisor.unbracketedFraction(), 0.5);
}

TEST(Recalibration, WindowSlides)
{
    const DiscountModel model = makeModel();
    RecalibrationConfig cfg;
    cfg.windowSize = 16;
    cfg.minReadings = 8;
    RecalibrationAdvisor advisor(model, cfg);
    // Old bad readings age out once good ones fill the window.
    for (int i = 0; i < 16; ++i)
        advisor.observe(reading(2.2, 150.0), Language::Python);
    EXPECT_EQ(advisor.advice(),
              RecalibrationAdvice::SweepHigherLevels);
    for (int i = 0; i < 16; ++i)
        advisor.observe(reading(1.2, 150.0), Language::Python);
    EXPECT_EQ(advisor.advice(), RecalibrationAdvice::TablesHealthy);
    EXPECT_EQ(advisor.readingCount(), 16u);
}

TEST(Recalibration, AdviceNames)
{
    EXPECT_EQ(RecalibrationAdvisor::adviceName(
                  RecalibrationAdvice::TablesHealthy),
              "tables-healthy");
    EXPECT_EQ(RecalibrationAdvisor::adviceName(
                  RecalibrationAdvice::SweepHigherLevels),
              "sweep-higher-levels");
}

} // namespace
} // namespace litmus::pricing
