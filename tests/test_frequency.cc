/**
 * @file
 * Tests for the DVFS governor.
 */

#include <gtest/gtest.h>

#include "sim/frequency_governor.h"
#include "sim/machine_catalog.h"

namespace litmus::sim
{
namespace
{

TEST(Fixed, AlwaysBaseFrequency)
{
    const auto cfg = MachineCatalog::get("cascade-5218");
    const FrequencyGovernor gov(cfg, FrequencyPolicy::Fixed);
    for (unsigned active : {0u, 1u, 8u, 16u, 32u})
        EXPECT_DOUBLE_EQ(gov.frequency(active), cfg.baseFrequency);
}

TEST(Turbo, SingleCorePeak)
{
    const auto cfg = MachineCatalog::get("cascade-5218");
    const FrequencyGovernor gov(cfg, FrequencyPolicy::Turbo);
    EXPECT_DOUBLE_EQ(gov.frequency(1), cfg.turboFrequency);
    EXPECT_DOUBLE_EQ(gov.frequency(0), cfg.turboFrequency);
}

TEST(Turbo, AllCoreBase)
{
    const auto cfg = MachineCatalog::get("cascade-5218");
    const FrequencyGovernor gov(cfg, FrequencyPolicy::Turbo);
    EXPECT_DOUBLE_EQ(gov.frequency(cfg.cores), cfg.baseFrequency);
    EXPECT_DOUBLE_EQ(gov.frequency(cfg.cores / 2), cfg.baseFrequency);
}

TEST(Turbo, MonotoneNonIncreasing)
{
    const auto cfg = MachineCatalog::get("cascade-5218");
    const FrequencyGovernor gov(cfg, FrequencyPolicy::Turbo);
    double prev = gov.frequency(1);
    for (unsigned active = 2; active <= cfg.cores; ++active) {
        const double f = gov.frequency(active);
        EXPECT_LE(f, prev);
        EXPECT_GE(f, cfg.baseFrequency);
        EXPECT_LE(f, cfg.turboFrequency);
        prev = f;
    }
}

TEST(Turbo, PolicyAccessor)
{
    const auto cfg = MachineCatalog::get("cascade-5218");
    const FrequencyGovernor gov(cfg, FrequencyPolicy::Turbo);
    EXPECT_EQ(gov.policy(), FrequencyPolicy::Turbo);
}

} // namespace
} // namespace litmus::sim
