/**
 * @file
 * Tests for the regression models backing the discount estimation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/regression.h"
#include "common/rng.h"

namespace litmus
{
namespace
{

TEST(LinearFit, RecoversExactLine)
{
    const std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(2.5 * x - 1.0);
    const auto fit = LinearFit::fit(xs, ys);
    EXPECT_NEAR(fit.slope(), 2.5, 1e-12);
    EXPECT_NEAR(fit.intercept(), -1.0, 1e-12);
    EXPECT_NEAR(fit.r2(), 1.0, 1e-12);
    EXPECT_EQ(fit.sampleCount(), xs.size());
}

TEST(LinearFit, PredictAndInvertRoundTrip)
{
    const LinearFit fit(3.0, 2.0);
    EXPECT_DOUBLE_EQ(fit.predict(4.0), 14.0);
    EXPECT_DOUBLE_EQ(fit.invert(14.0), 4.0);
    for (double x : {-5.0, 0.0, 1.7, 100.0})
        EXPECT_NEAR(fit.invert(fit.predict(x)), x, 1e-9);
}

TEST(LinearFit, InvertFlatLineFatal)
{
    const LinearFit fit(0.0, 1.0);
    EXPECT_EXIT(fit.invert(1.0), ::testing::ExitedWithCode(1), "invert");
}

TEST(LinearFit, R2DropsWithNoise)
{
    Rng rng(99);
    std::vector<double> xs, clean, noisy;
    for (int i = 0; i < 50; ++i) {
        xs.push_back(i);
        clean.push_back(2.0 * i + 1.0);
        noisy.push_back(2.0 * i + 1.0 + rng.gaussian(0, 10.0));
    }
    EXPECT_GT(LinearFit::fit(xs, clean).r2(),
              LinearFit::fit(xs, noisy).r2());
    EXPECT_GT(LinearFit::fit(xs, noisy).r2(), 0.8);
}

TEST(LinearFit, RejectsDegenerateInput)
{
    EXPECT_EXIT(LinearFit::fit({1}, {1}), ::testing::ExitedWithCode(1),
                "two samples");
    EXPECT_EXIT(LinearFit::fit({1, 2}, {1}), ::testing::ExitedWithCode(1),
                "size mismatch");
    EXPECT_EXIT(LinearFit::fit({3, 3, 3}, {1, 2, 3}),
                ::testing::ExitedWithCode(1), "degenerate");
}

TEST(LogFit, RecoversExactCurve)
{
    // y = 2 + 0.5 ln x
    std::vector<double> xs, ys;
    for (double x : {1.0, 3.0, 10.0, 50.0, 400.0}) {
        xs.push_back(x);
        ys.push_back(2.0 + 0.5 * std::log(x));
    }
    const auto fit = LogFit::fit(xs, ys);
    EXPECT_NEAR(fit.a(), 2.0, 1e-9);
    EXPECT_NEAR(fit.b(), 0.5, 1e-9);
    EXPECT_NEAR(fit.r2(), 1.0, 1e-9);
}

TEST(LogFit, PredictInvertRoundTrip)
{
    const LogFit fit(1.0, 0.25);
    for (double x : {0.5, 1.0, 10.0, 1e4})
        EXPECT_NEAR(fit.invert(fit.predict(x)), x, x * 1e-9);
}

TEST(LogFit, RejectsNonPositiveX)
{
    EXPECT_EXIT(LogFit::fit({0.0, 1.0}, {1, 2}),
                ::testing::ExitedWithCode(1), "positive");
    const LogFit fit(1.0, 1.0);
    EXPECT_EXIT(fit.predict(0.0), ::testing::ExitedWithCode(1),
                "positive");
}

TEST(LogBlendWeight, Extremes)
{
    EXPECT_DOUBLE_EQ(logBlendWeight(1.0, 10.0, 1000.0), 0.0);
    EXPECT_DOUBLE_EQ(logBlendWeight(10.0, 10.0, 1000.0), 0.0);
    EXPECT_DOUBLE_EQ(logBlendWeight(1000.0, 10.0, 1000.0), 1.0);
    EXPECT_DOUBLE_EQ(logBlendWeight(5000.0, 10.0, 1000.0), 1.0);
}

TEST(LogBlendWeight, GeometricMidpoint)
{
    // The paper's Figure 10 example: 100 misses midway between 10 and
    // 1000 on a log scale.
    EXPECT_NEAR(logBlendWeight(100.0, 10.0, 1000.0), 0.5, 1e-12);
}

TEST(LogBlendWeight, SwappedBoundsHandled)
{
    EXPECT_NEAR(logBlendWeight(100.0, 1000.0, 10.0), 0.5, 1e-12);
}

TEST(LogBlendWeight, DegenerateBoundsClampLow)
{
    // When the bounds collapse, the low clamp wins (v <= lo).
    EXPECT_DOUBLE_EQ(logBlendWeight(10.0, 10.0, 10.0 + 1e-15), 0.0);
}

TEST(LogBlendWeight, RejectsNonPositive)
{
    EXPECT_EXIT(logBlendWeight(0.0, 1.0, 2.0),
                ::testing::ExitedWithCode(1), "positive");
}

TEST(Lerp, Basics)
{
    EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.0), 2.0);
    EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 2.0), 6.0); // extrapolates
}

/** Property: blend weight is monotone in v. */
class BlendMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(BlendMonotone, MonotoneInObservation)
{
    const double lo = 5.0, hi = 5000.0;
    const double v = GetParam();
    const double w = logBlendWeight(v, lo, hi);
    const double wNext = logBlendWeight(v * 1.5, lo, hi);
    EXPECT_GE(wNext, w);
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BlendMonotone,
                         ::testing::Values(1.0, 5.0, 20.0, 100.0, 800.0,
                                           4000.0, 9000.0));

/** Property: linear fits recover arbitrary slopes from noisy data. */
class FitRecovery : public ::testing::TestWithParam<double>
{
};

TEST_P(FitRecovery, SlopeWithinTolerance)
{
    const double slope = GetParam();
    Rng rng(static_cast<std::uint64_t>(slope * 1000) + 5);
    std::vector<double> xs, ys;
    for (int i = 0; i < 200; ++i) {
        const double x = rng.uniform(0, 10);
        xs.push_back(x);
        ys.push_back(slope * x + 3.0 + rng.gaussian(0, 0.05));
    }
    const auto fit = LinearFit::fit(xs, ys);
    EXPECT_NEAR(fit.slope(), slope, 0.02);
    EXPECT_NEAR(fit.intercept(), 3.0, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Slopes, FitRecovery,
                         ::testing::Values(-2.0, -0.5, 0.1, 1.0, 3.0,
                                           10.0));

} // namespace
} // namespace litmus
