/**
 * @file
 * Tests for the task abstraction and demand validation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "workload/program.h"

namespace litmus::sim
{
namespace
{

TEST(ResourceDemand, ValidDefaults)
{
    ResourceDemand d;
    EXPECT_NO_FATAL_FAILURE(d.validate());
}

TEST(ResourceDemand, RejectsBadCpi)
{
    ResourceDemand d;
    d.cpi0 = 0.0;
    EXPECT_EXIT(d.validate(), ::testing::ExitedWithCode(1), "cpi0");
}

TEST(ResourceDemand, RejectsNegativeMpki)
{
    ResourceDemand d;
    d.l2Mpki = -1.0;
    EXPECT_EXIT(d.validate(), ::testing::ExitedWithCode(1), "l2Mpki");
}

TEST(ResourceDemand, RejectsBadMissBase)
{
    ResourceDemand d;
    d.l3MissBase = 1.5;
    EXPECT_EXIT(d.validate(), ::testing::ExitedWithCode(1),
                "l3MissBase");
}

TEST(ResourceDemand, RejectsBadMlp)
{
    ResourceDemand d;
    d.mlp = 0.5;
    EXPECT_EXIT(d.validate(), ::testing::ExitedWithCode(1), "mlp");
}

TEST(Task, IdentityAndAffinity)
{
    workload::EndlessTask task("gen", ResourceDemand{});
    EXPECT_EQ(task.name(), "gen");
    EXPECT_TRUE(task.affinity().empty());
    task.setAffinity({3, 4});
    ASSERT_EQ(task.affinity().size(), 2u);
    EXPECT_EQ(task.affinity()[0], 3u);
    task.setId(42);
    EXPECT_EQ(task.id(), 42u);
}

TEST(Task, ProbeWindowDefaultsOff)
{
    workload::EndlessTask task("gen", ResourceDemand{});
    EXPECT_DOUBLE_EQ(task.probeWindow(), Task::noProbe);
    EXPECT_FALSE(task.probe().started);
}

TEST(EndlessTask, NeverFinishes)
{
    workload::EndlessTask task("gen", ResourceDemand{});
    EXPECT_FALSE(task.finished());
    task.retire(1e12);
    EXPECT_FALSE(task.finished());
    EXPECT_TRUE(std::isinf(task.remainingInPhase()));
}

} // namespace
} // namespace litmus::sim
