/**
 * @file
 * Round-trip tests for the calibration-table serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/discount_model.h"
#include "core/table_io.h"

namespace litmus::pricing
{
namespace
{

using workload::GeneratorKind;
using workload::Language;

/** A small but fully populated pair of tables. */
void
fill(CongestionTable &congestion, PerformanceTable &performance)
{
    for (Language lang : workload::allLanguages()) {
        ProbeReading base;
        base.privCpi = 0.71;
        base.sharedCpi = 0.19;
        base.instructions = 45e6;
        base.machineL3MissPerUs = 2.5;
        congestion.setBaseline(lang, base);
        for (GeneratorKind gen :
             {GeneratorKind::CtGen, GeneratorKind::MbGen}) {
            for (unsigned level : {2u, 8u, 14u}) {
                CongestionEntry e;
                e.privSlowdown = 1.0 + 0.01 * level;
                e.sharedSlowdown = 1.0 + 0.1 * level;
                e.totalSlowdown = 1.0 + 0.02 * level;
                e.l3MissPerUs =
                    (gen == GeneratorKind::MbGen ? 100.0 : 5.0) * level;
                congestion.add(lang, gen, level, e);
            }
        }
    }
    for (GeneratorKind gen :
         {GeneratorKind::CtGen, GeneratorKind::MbGen}) {
        for (unsigned level : {2u, 8u, 14u}) {
            PerformanceEntry p;
            p.privSlowdown = 1.0 + 0.012 * level;
            p.sharedSlowdown = 1.0 + 0.09 * level;
            p.totalSlowdown = 1.0 + 0.025 * level;
            performance.add(gen, level, p);
        }
    }
}

TEST(TableIo, RoundTripPreservesEverything)
{
    CongestionTable congestion;
    PerformanceTable performance;
    fill(congestion, performance);

    std::stringstream stream;
    saveTables(stream, congestion, performance);
    const LoadedTables loaded = loadTables(stream);

    for (Language lang : workload::allLanguages()) {
        const ProbeReading &a = congestion.baseline(lang);
        const ProbeReading &b = loaded.congestion.baseline(lang);
        EXPECT_DOUBLE_EQ(a.privCpi, b.privCpi);
        EXPECT_DOUBLE_EQ(a.sharedCpi, b.sharedCpi);
        EXPECT_DOUBLE_EQ(a.machineL3MissPerUs, b.machineL3MissPerUs);

        for (GeneratorKind gen :
             {GeneratorKind::CtGen, GeneratorKind::MbGen}) {
            EXPECT_EQ(congestion.levels(lang, gen),
                      loaded.congestion.levels(lang, gen));
            EXPECT_EQ(congestion.sharedSeries(lang, gen),
                      loaded.congestion.sharedSeries(lang, gen));
            EXPECT_EQ(congestion.l3Series(lang, gen),
                      loaded.congestion.l3Series(lang, gen));
        }
    }
    for (GeneratorKind gen :
         {GeneratorKind::CtGen, GeneratorKind::MbGen}) {
        EXPECT_EQ(performance.levels(gen),
                  loaded.performance.levels(gen));
        EXPECT_EQ(performance.totalSeries(gen),
                  loaded.performance.totalSeries(gen));
    }
}

TEST(TableIo, LoadedTablesBuildAModel)
{
    CongestionTable congestion;
    PerformanceTable performance;
    fill(congestion, performance);
    std::stringstream stream;
    saveTables(stream, congestion, performance);
    const LoadedTables loaded = loadTables(stream);

    const DiscountModel original(congestion, performance);
    const DiscountModel reloaded(loaded.congestion,
                                 loaded.performance);

    ProbeReading reading;
    reading.privCpi = 0.71 * 1.05;
    reading.sharedCpi = 0.19 * 1.4;
    reading.instructions = 45e6;
    reading.machineL3MissPerUs = 120.0;
    const auto a = original.estimate(reading, Language::Python);
    const auto b = reloaded.estimate(reading, Language::Python);
    EXPECT_DOUBLE_EQ(a.rPrivate, b.rPrivate);
    EXPECT_DOUBLE_EQ(a.rShared, b.rShared);
    EXPECT_DOUBLE_EQ(a.blendWeight, b.blendWeight);
}

TEST(TableIo, FileRoundTrip)
{
    CongestionTable congestion;
    PerformanceTable performance;
    fill(congestion, performance);
    const std::string path = "/tmp/litmus_test_tables.txt";
    saveTables(path, congestion, performance);
    const LoadedTables loaded = loadTables(path);
    EXPECT_TRUE(loaded.performance.populated(GeneratorKind::MbGen));
}

TEST(TableIo, BadHeaderFatal)
{
    std::stringstream stream("not-litmus v9\n");
    EXPECT_EXIT(loadTables(stream), ::testing::ExitedWithCode(1),
                "bad header");
}

TEST(TableIo, MalformedRowFatal)
{
    std::stringstream stream(
        "litmus-tables v1\ncongestion python ct 2 1.0\n");
    EXPECT_EXIT(loadTables(stream), ::testing::ExitedWithCode(1),
                "malformed");
}

TEST(TableIo, UnknownRecordFatal)
{
    std::stringstream stream("litmus-tables v1\nwhatever 1 2 3\n");
    EXPECT_EXIT(loadTables(stream), ::testing::ExitedWithCode(1),
                "unknown record");
}

TEST(TableIo, MissingFileFatal)
{
    EXPECT_EXIT(loadTables("/nonexistent/tables.txt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace litmus::pricing
