/**
 * @file
 * Round-trip tests for the calibration-profile serialization: v2
 * round-trips (machine name and baselines included), legacy v1
 * parsing, and malformed-input death tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/discount_model.h"
#include "core/table_io.h"

namespace litmus::pricing
{
namespace
{

using workload::GeneratorKind;
using workload::Language;

/** A small but fully populated profile. */
CalibrationProfile
sampleProfile()
{
    CalibrationProfile profile;
    profile.machine = "cascade-5218";
    for (Language lang : workload::allLanguages()) {
        ProbeReading base;
        base.privCpi = 0.71;
        base.sharedCpi = 0.19;
        base.instructions = 45e6;
        base.machineL3MissPerUs = 2.5;
        profile.congestion.setBaseline(lang, base);
        for (GeneratorKind gen :
             {GeneratorKind::CtGen, GeneratorKind::MbGen}) {
            for (unsigned level : {2u, 8u, 14u}) {
                CongestionEntry e;
                e.privSlowdown = 1.0 + 0.01 * level;
                e.sharedSlowdown = 1.0 + 0.1 * level;
                e.totalSlowdown = 1.0 + 0.02 * level;
                e.l3MissPerUs =
                    (gen == GeneratorKind::MbGen ? 100.0 : 5.0) * level;
                profile.congestion.add(lang, gen, level, e);
            }
        }
    }
    for (GeneratorKind gen :
         {GeneratorKind::CtGen, GeneratorKind::MbGen}) {
        for (unsigned level : {2u, 8u, 14u}) {
            PerformanceEntry p;
            p.privSlowdown = 1.0 + 0.012 * level;
            p.sharedSlowdown = 1.0 + 0.09 * level;
            p.totalSlowdown = 1.0 + 0.025 * level;
            profile.performance.add(gen, level, p);
        }
    }
    // Awkward doubles on purpose: the round-trip must be bit-exact.
    profile.referenceSolo["gzip-py"] = {0.123456789012345678, 0.1 / 3};
    profile.referenceSolo["mst-go"] = {1.0 / 7, 2.0 / 9};
    return profile;
}

TEST(TableIo, V2RoundTripPreservesEverything)
{
    const CalibrationProfile profile = sampleProfile();

    std::stringstream stream;
    saveProfile(stream, profile);
    const CalibrationProfile loaded = loadProfile(stream);

    EXPECT_EQ(loaded.machine, "cascade-5218");

    for (Language lang : workload::allLanguages()) {
        const ProbeReading &a = profile.congestion.baseline(lang);
        const ProbeReading &b = loaded.congestion.baseline(lang);
        EXPECT_EQ(a.privCpi, b.privCpi);
        EXPECT_EQ(a.sharedCpi, b.sharedCpi);
        EXPECT_EQ(a.instructions, b.instructions);
        EXPECT_EQ(a.machineL3MissPerUs, b.machineL3MissPerUs);

        for (GeneratorKind gen :
             {GeneratorKind::CtGen, GeneratorKind::MbGen}) {
            EXPECT_EQ(profile.congestion.levels(lang, gen),
                      loaded.congestion.levels(lang, gen));
            EXPECT_EQ(profile.congestion.privSeries(lang, gen),
                      loaded.congestion.privSeries(lang, gen));
            EXPECT_EQ(profile.congestion.sharedSeries(lang, gen),
                      loaded.congestion.sharedSeries(lang, gen));
            EXPECT_EQ(profile.congestion.l3Series(lang, gen),
                      loaded.congestion.l3Series(lang, gen));
        }
    }
    for (GeneratorKind gen :
         {GeneratorKind::CtGen, GeneratorKind::MbGen}) {
        EXPECT_EQ(profile.performance.levels(gen),
                  loaded.performance.levels(gen));
        EXPECT_EQ(profile.performance.totalSeries(gen),
                  loaded.performance.totalSeries(gen));
    }

    // Solo baselines travel with the profile, bit-exactly.
    ASSERT_EQ(loaded.referenceSolo.size(), 2u);
    EXPECT_EQ(loaded.referenceSolo.at("gzip-py").privCpi,
              profile.referenceSolo.at("gzip-py").privCpi);
    EXPECT_EQ(loaded.referenceSolo.at("gzip-py").sharedCpi,
              profile.referenceSolo.at("gzip-py").sharedCpi);
    EXPECT_EQ(loaded.referenceSolo.at("mst-go").privCpi,
              profile.referenceSolo.at("mst-go").privCpi);
}

TEST(TableIo, LoadedProfileBuildsAnIdenticalModel)
{
    const CalibrationProfile profile = sampleProfile();
    std::stringstream stream;
    saveProfile(stream, profile);
    const CalibrationProfile loaded = loadProfile(stream);

    const DiscountModel original(profile);
    const DiscountModel reloaded(loaded);
    EXPECT_EQ(original.machine(), reloaded.machine());

    ProbeReading reading;
    reading.privCpi = 0.71 * 1.05;
    reading.sharedCpi = 0.19 * 1.4;
    reading.instructions = 45e6;
    reading.machineL3MissPerUs = 120.0;
    const auto a = original.estimate(reading, Language::Python);
    const auto b = reloaded.estimate(reading, Language::Python);
    EXPECT_EQ(a.rPrivate, b.rPrivate);
    EXPECT_EQ(a.rShared, b.rShared);
    EXPECT_EQ(a.blendWeight, b.blendWeight);
}

TEST(TableIo, FileRoundTrip)
{
    const CalibrationProfile profile = sampleProfile();
    const std::string path = "/tmp/litmus_test_tables.txt";
    saveProfile(path, profile);
    const CalibrationProfile loaded = loadProfile(path);
    EXPECT_EQ(loaded.machine, profile.machine);
    EXPECT_TRUE(loaded.performance.populated(GeneratorKind::MbGen));
}

TEST(TableIo, HandWrittenV1StillLoads)
{
    // A legacy artifact: no machine, no solo records. It must parse,
    // carry an empty (wildcard) machine name, and hold the rows.
    std::string text = "litmus-tables v1\n";
    for (const char *lang : {"python", "nodejs", "go"}) {
        text += std::string("baseline ") + lang +
                " 0.7 0.2 45000000 2.5\n";
        for (const char *gen : {"ct", "mb"}) {
            text += std::string("congestion ") + lang + " " + gen +
                    " 2 1.02 1.2 1.04 10\n";
            text += std::string("congestion ") + lang + " " + gen +
                    " 8 1.08 1.8 1.16 40\n";
        }
    }
    for (const char *gen : {"ct", "mb"}) {
        text += std::string("performance ") + gen +
                " 2 1.024 1.18 1.05\n";
        text += std::string("performance ") + gen +
                " 8 1.096 1.72 1.2\n";
    }

    std::stringstream stream(text);
    const CalibrationProfile loaded = loadProfile(stream);
    EXPECT_TRUE(loaded.machine.empty());
    EXPECT_TRUE(loaded.referenceSolo.empty());
    EXPECT_EQ(loaded.congestion.levels(Language::Go,
                                       GeneratorKind::MbGen),
              (std::vector<double>{2, 8}));
    // Wildcard artifacts price any machine.
    EXPECT_NO_FATAL_FAILURE(loaded.requireMachine("icelake-4314"));
}

TEST(TableIo, V1RejectsV2Records)
{
    std::stringstream machineInV1(
        "litmus-tables v1\nmachine cascade-5218\n");
    EXPECT_EXIT(loadProfile(machineInV1),
                ::testing::ExitedWithCode(1), "v1");
    std::stringstream soloInV1(
        "litmus-tables v1\nsolo gzip-py 0.5 0.25\n");
    EXPECT_EXIT(loadProfile(soloInV1), ::testing::ExitedWithCode(1),
                "v1");
}

TEST(TableIo, BadHeaderFatal)
{
    std::stringstream stream("not-litmus v9\n");
    EXPECT_EXIT(loadProfile(stream), ::testing::ExitedWithCode(1),
                "bad header");
    std::stringstream v3("litmus-tables v3\n");
    EXPECT_EXIT(loadProfile(v3), ::testing::ExitedWithCode(1),
                "bad header");
}

TEST(TableIo, TruncatedRowsFatal)
{
    std::stringstream congestion(
        "litmus-tables v1\ncongestion python ct 2 1.0\n");
    EXPECT_EXIT(loadProfile(congestion), ::testing::ExitedWithCode(1),
                "malformed congestion row on line 2");
    std::stringstream baseline("litmus-tables v2\nbaseline go 0.7\n");
    EXPECT_EXIT(loadProfile(baseline), ::testing::ExitedWithCode(1),
                "malformed baseline on line 2");
    std::stringstream solo("litmus-tables v2\nsolo gzip-py 0.5\n");
    EXPECT_EXIT(loadProfile(solo), ::testing::ExitedWithCode(1),
                "malformed solo baseline on line 2");
    std::stringstream machine("litmus-tables v2\nmachine\n");
    EXPECT_EXIT(loadProfile(machine), ::testing::ExitedWithCode(1),
                "malformed machine record on line 2");
    std::stringstream performance(
        "litmus-tables v2\nperformance mb 2 1.0 1.1\n");
    EXPECT_EXIT(loadProfile(performance),
                ::testing::ExitedWithCode(1),
                "malformed performance row on line 2");
}

TEST(TableIo, GarbledFieldsFatal)
{
    // Numbers where tokens should be and vice versa.
    std::stringstream badLang(
        "litmus-tables v2\nbaseline fortran 0.7 0.2 45e6 2.5\n");
    EXPECT_EXIT(loadProfile(badLang), ::testing::ExitedWithCode(1),
                "unknown language");
    std::stringstream badGen(
        "litmus-tables v2\nperformance turbo 2 1.0 1.1 1.2\n");
    EXPECT_EXIT(loadProfile(badGen), ::testing::ExitedWithCode(1),
                "unknown generator");
    std::stringstream badNumber(
        "litmus-tables v2\n"
        "congestion python ct two 1.0 1.1 1.2 10\n");
    EXPECT_EXIT(loadProfile(badNumber), ::testing::ExitedWithCode(1),
                "malformed congestion row");
}

TEST(TableIo, UnknownRecordFatal)
{
    std::stringstream stream("litmus-tables v2\nwhatever 1 2 3\n");
    EXPECT_EXIT(loadProfile(stream), ::testing::ExitedWithCode(1),
                "unknown record");
}

TEST(TableIo, MissingFileFatal)
{
    EXPECT_EXIT(loadProfile("/nonexistent/tables.txt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TableIo, ProfileMachineMismatchFatal)
{
    const CalibrationProfile profile = sampleProfile();
    EXPECT_NO_FATAL_FAILURE(profile.requireMachine("cascade-5218"));
    EXPECT_NO_FATAL_FAILURE(profile.requireMachine(""));
    EXPECT_EXIT(profile.requireMachine("icelake-4314"),
                ::testing::ExitedWithCode(1),
                "calibrated on 'cascade-5218'");

    const DiscountModel model(profile);
    EXPECT_EQ(model.machine(), "cascade-5218");
    EXPECT_EXIT(model.requireMachine("icelake-4314"),
                ::testing::ExitedWithCode(1),
                "calibrated on 'cascade-5218'");
}

} // namespace
} // namespace litmus::pricing
