/**
 * @file
 * litmus-lint rule tests.
 *
 * Two layers:
 *  - fixture scans: tests/lint_fixtures/{bad,good} are miniature src/
 *    trees with one failing and one passing file per rule; the bad
 *    tree must produce exactly the expected (file, line, rule)
 *    triples and the good tree must be spotless.
 *  - lintContent unit tests: pragma mechanics (one pragma suppresses
 *    exactly one finding, bare-line targeting, stale/malformed
 *    pragmas), comment/string stripping, and member-call exemptions.
 *  - cross-file rule tests: the fixture trees double as miniature
 *    whole-program scans (lock-annotation, lock-order cycles and the
 *    canonical-order file, include-graph exports), plus the
 *    --fix-stale rewriting engine.
 *
 * The fixture root is injected by CMake as LITMUS_LINT_FIXTURE_DIR.
 */

#include "lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace
{

using litmus::lint::Finding;
using litmus::lint::Options;
using litmus::lint::Report;
using litmus::lint::runLint;

/** Options scanning one fixture tree ("bad" or "good"). */
Options
fixtureOptions(const std::string &tree)
{
    Options options;
    options.root = std::string(LITMUS_LINT_FIXTURE_DIR) + "/" + tree;
    options.dirs = {"src"};
    return options;
}

/** Findings as sorted "file:line:rule" triples for whole-tree diffs. */
std::vector<std::string>
triples(const std::vector<Finding> &findings)
{
    std::vector<std::string> out;
    for (const Finding &f : findings)
        out.push_back(f.file + ":" + std::to_string(f.line) + ":" +
                      f.rule);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<Finding>
lintOne(const std::string &path, const std::string &content,
        int *suppressions = nullptr)
{
    return litmus::lint::lintContent(path, content, Options{},
                                     suppressions);
}

// ---------------------------------------------------------------- //
// Fixture trees                                                    //
// ---------------------------------------------------------------- //

TEST(LintFixtures, BadTreeFiresEveryRuleAtTheExpectedLocation)
{
    const Report report = runLint(fixtureOptions("bad"));
    const std::vector<std::string> expected = {
        "src/common/bad_allow_bad.cc:2:bad-allow",
        "src/common/bad_allow_bad.cc:3:bad-allow",
        "src/common/raw_parse_bad.cc:7:raw-parse",
        "src/common/raw_parse_bad.cc:7:raw-parse",
        "src/common/stale_allow_bad.cc:2:stale-allow",
        "src/core/billing_float_bad.cc:2:float-billing",
        "src/core/billing_float_bad.cc:4:float-billing",
        "src/core/unordered_decl_bad.h:10:unordered-decl",
        "src/core/unordered_iter_bad.cc:10:unordered-iter",
        "src/core/unordered_iter_bad.cc:12:unordered-iter",
        "src/sim/include_cycle_a.h:2:include-graph",
        "src/sim/include_cycle_b.h:2:include-graph",
        "src/sim/layering_bad.cc:2:layering",
        "src/sim/layering_bad.cc:3:layering",
        "src/sim/lock_annotation_bad.h:10:lock-annotation",
        "src/sim/lock_annotation_bad.h:20:lock-annotation",
        "src/sim/lock_order_a.cc:10:lock-order",
        "src/sim/lock_order_b.cc:10:lock-order",
        "src/sim/wall_clock_bad.cc:7:wall-clock",
        "src/sim/wall_clock_bad.cc:9:wall-clock",
        "src/workload/unseeded_rng_bad.cc:7:unseeded-rng",
        "src/workload/unseeded_rng_bad.cc:8:unseeded-rng",
        "src/workload/unseeded_rng_bad.cc:9:unseeded-rng",
    };
    EXPECT_EQ(triples(report.findings), expected);
    EXPECT_EQ(report.filesScanned, 15);
    // The iteration fixture ALLOWs its declaration to isolate the
    // iteration rule.
    EXPECT_EQ(report.suppressions, 1);
}

TEST(LintFixtures, GoodTreeIsCleanAndEveryPragmaIsUsed)
{
    const Report report = runLint(fixtureOptions("good"));
    EXPECT_TRUE(report.clean()) << litmus::lint::toJson(report);
    EXPECT_EQ(report.filesScanned, 13);
    // The discipline fixtures are clean cross-file too: no unused
    // includes, and the lock graph orders alpha_mu_ before beta_mu_.
    EXPECT_TRUE(report.advisories.empty());
    // decl 1 + iter-fixture 2 + stale-allow 1 + bad-allow 1: a stale
    // or malformed pragma in a good file would surface as a finding.
    EXPECT_EQ(report.suppressions, 5);
}

TEST(LintFixtures, EveryCatalogRuleHasAFailingFixture)
{
    const Report report = runLint(fixtureOptions("bad"));
    for (const litmus::lint::RuleInfo &rule :
         litmus::lint::ruleCatalog()) {
        const bool fired = std::any_of(
            report.findings.begin(), report.findings.end(),
            [&](const Finding &f) { return f.rule == rule.name; });
        EXPECT_TRUE(fired) << "no failing fixture for rule '"
                           << rule.name << "'";
    }
}

TEST(LintFixtures, RuleFilterScopesTheScan)
{
    Options options = fixtureOptions("bad");
    options.rules = {"wall-clock"};
    const Report report = runLint(options);
    // The pragma rules always run: a filter narrows the scan, it
    // must not hide rotting annotations.
    const std::vector<std::string> expected = {
        "src/common/bad_allow_bad.cc:2:bad-allow",
        "src/common/bad_allow_bad.cc:3:bad-allow",
        "src/common/stale_allow_bad.cc:2:stale-allow",
        "src/sim/wall_clock_bad.cc:7:wall-clock",
        "src/sim/wall_clock_bad.cc:9:wall-clock",
    };
    EXPECT_EQ(triples(report.findings), expected);
}

TEST(LintFixtures, UnknownRuleFilterThrows)
{
    Options options = fixtureOptions("good");
    options.rules = {"no-such-rule"};
    EXPECT_THROW(runLint(options), std::runtime_error);
}

// ---------------------------------------------------------------- //
// Pragma mechanics                                                 //
// ---------------------------------------------------------------- //

TEST(LintPragmas, OnePragmaSuppressesExactlyOneFinding)
{
    // Two float declarations on one line, one pragma: one finding
    // must survive.
    int suppressions = 0;
    const auto findings = lintOne(
        "src/core/billing_fixture.cc",
        "float a; float b; // LITMUS-LINT-ALLOW(float-billing): one\n",
        &suppressions);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "float-billing");
    EXPECT_EQ(findings[0].line, 1);
    EXPECT_EQ(suppressions, 1);

    // A second pragma clears the line.
    suppressions = 0;
    const auto clean = lintOne(
        "src/core/billing_fixture.cc",
        "// LITMUS-LINT-ALLOW(float-billing): first of two\n"
        "float a; float b; // LITMUS-LINT-ALLOW(float-billing): two\n",
        &suppressions);
    EXPECT_TRUE(clean.empty());
    EXPECT_EQ(suppressions, 2);
}

TEST(LintPragmas, BareLinePragmaGuardsTheNextLine)
{
    const auto findings = lintOne(
        "src/core/billing_fixture.cc",
        "// LITMUS-LINT-ALLOW(float-billing): guards the next line\n"
        "float a;\n");
    EXPECT_TRUE(findings.empty());

    // ...and only the next line.
    const auto tooFar = lintOne(
        "src/core/billing_fixture.cc",
        "// LITMUS-LINT-ALLOW(float-billing): line 2 is blank\n"
        "\n"
        "float a;\n");
    ASSERT_EQ(tooFar.size(), 2u);
    EXPECT_EQ(triples(tooFar),
              (std::vector<std::string>{
                  "src/core/billing_fixture.cc:1:stale-allow",
                  "src/core/billing_fixture.cc:3:float-billing"}));
}

TEST(LintPragmas, WrongRulePragmaIsStaleAndSuppressesNothing)
{
    const auto findings = lintOne(
        "src/core/billing_fixture.cc",
        "float a; // LITMUS-LINT-ALLOW(wall-clock): wrong rule\n");
    EXPECT_EQ(triples(findings),
              (std::vector<std::string>{
                  "src/core/billing_fixture.cc:1:float-billing",
                  "src/core/billing_fixture.cc:1:stale-allow"}));
}

TEST(LintPragmas, MalformedPragmasAreFindings)
{
    const auto missingReason = lintOne(
        "src/common/fixture.cc",
        "// LITMUS-LINT-ALLOW(wall-clock)\n");
    ASSERT_EQ(missingReason.size(), 1u);
    EXPECT_EQ(missingReason[0].rule, "bad-allow");

    const auto unknownRule = lintOne(
        "src/common/fixture.cc",
        "// LITMUS-LINT-ALLOW(flux-capacitor): nope\n");
    ASSERT_EQ(unknownRule.size(), 1u);
    EXPECT_EQ(unknownRule[0].rule, "bad-allow");

    const auto emptyReason = lintOne(
        "src/common/fixture.cc",
        "// LITMUS-LINT-ALLOW(wall-clock):   \n");
    ASSERT_EQ(emptyReason.size(), 1u);
    EXPECT_EQ(emptyReason[0].rule, "bad-allow");
}

// ---------------------------------------------------------------- //
// Stripping and exemptions                                         //
// ---------------------------------------------------------------- //

TEST(LintStripping, CommentsAndStringsNeverFire)
{
    const auto findings = lintOne(
        "src/sim/fixture.cc",
        "// rand() and system_clock in a comment\n"
        "/* strtod(text) in a block comment */\n"
        "const char *msg = \"rand() inside a string literal\";\n");
    EXPECT_TRUE(findings.empty()) << triples(findings)[0];
}

TEST(LintStripping, LineNumbersSurviveMultiLineConstructs)
{
    const auto findings = lintOne(
        "src/sim/fixture.cc",
        "/* a block comment\n"
        "   spanning three\n"
        "   lines */\n"
        "float ignored; // not a billing file\n"
        "double now = time(nullptr);\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "wall-clock");
    EXPECT_EQ(findings[0].line, 5);
}

TEST(LintExemptions, MemberCallsNamedLikeBannedFunctionsAreFine)
{
    const auto findings = lintOne(
        "src/sim/fixture.cc",
        "double fixture(const Task &task, Snapshot *snap)\n"
        "{\n"
        "    return task.time() + snap->clock() + sched::time(0);\n"
        "}\n");
    EXPECT_TRUE(findings.empty()) << triples(findings)[0];

    // std:: qualification is still the banned libc call.
    const auto stdCall = lintOne("src/sim/fixture.cc",
                                 "long t = std::time(nullptr);\n");
    ASSERT_EQ(stdCall.size(), 1u);
    EXPECT_EQ(stdCall[0].rule, "wall-clock");
}

TEST(LintExemptions, RulesAreScopedToSrc)
{
    // raw-parse, unordered-decl, and float-billing are src/-only
    // invariants; tools and bench may parse leniently.
    const auto findings = lintOne(
        "tools/report/billing_fixture.cc",
        "std::unordered_map<int, float> m;\n"
        "double d = atof(\"1.5\");\n");
    EXPECT_TRUE(findings.empty()) << triples(findings)[0];
}

TEST(LintExemptions, RngHomeMayNameTheBannedTokens)
{
    const auto findings = lintOne(
        "src/common/rng.h", "std::mt19937_64 engine_;\n");
    EXPECT_TRUE(findings.empty());
}

TEST(LintLayering, DownwardAndSameLayerIncludesPass)
{
    const auto findings = lintOne(
        "src/scenario/fixture.cc",
        "#include \"cluster/cluster.h\"\n"
        "#include \"common/rng.h\"\n"
        "#include \"scenario/spec.h\"\n");
    EXPECT_TRUE(findings.empty());
}

TEST(LintLayering, UpwardIncludeNamesBothEnds)
{
    const auto findings = lintOne(
        "src/common/fixture.cc",
        "#include \"scenario/spec.h\"\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "layering");
    EXPECT_NE(findings[0].message.find("common/"), std::string::npos);
    EXPECT_NE(findings[0].message.find("scenario/spec.h"),
              std::string::npos);
}

// ---------------------------------------------------------------- //
// Cross-file rules                                                 //
// ---------------------------------------------------------------- //

TEST(LintTree, LockOrderCycleNamesBothMutexes)
{
    const Report report = runLint(fixtureOptions("bad"));
    const auto it = std::find_if(
        report.findings.begin(), report.findings.end(),
        [](const Finding &f) {
            return f.rule == "lock-order" &&
                   f.file == "src/sim/lock_order_a.cc";
        });
    ASSERT_NE(it, report.findings.end());
    EXPECT_NE(it->message.find("alpha_mu_"), std::string::npos);
    EXPECT_NE(it->message.find("beta_mu_"), std::string::npos);
}

TEST(LintTree, GoodTreeLockOrderPutsAlphaBeforeBeta)
{
    const Report report = runLint(fixtureOptions("good"));
    const std::string &text = report.lockOrderText;
    const auto alpha = text.find("OrderPair::alpha_mu_");
    const auto beta = text.find("OrderPair::beta_mu_");
    ASSERT_NE(alpha, std::string::npos) << text;
    ASSERT_NE(beta, std::string::npos) << text;
    EXPECT_LT(alpha, beta) << text;
    // The nesting that forced the order is recorded as a comment.
    EXPECT_NE(
        text.find("-> src/sim/lock_order_pair.h:OrderPair::beta_mu_"),
        std::string::npos)
        << text;
}

TEST(LintTree, LockOrderFileMismatchIsAFinding)
{
    Options options = fixtureOptions("good");
    options.lockOrderFile = "tools/lint/lock_order.txt";
    options.lockOrderExpected = "stale content\n";
    const Report stale = runLint(options);
    const auto t = triples(stale.findings);
    EXPECT_NE(std::find(t.begin(), t.end(),
                        "tools/lint/lock_order.txt:1:lock-order"),
              t.end());

    // With the derived order as the expected content, the scan is
    // clean again.
    options.lockOrderExpected = stale.lockOrderText;
    EXPECT_TRUE(runLint(options).clean());
}

TEST(LintTree, IncludeGraphExportsResolvedEdges)
{
    const Report report = runLint(fixtureOptions("good"));
    EXPECT_NE(report.includeGraphJson.find(
                  "\"from\": \"src/sim/include_chain.h\""),
              std::string::npos);
    EXPECT_NE(report.includeGraphJson.find(
                  "\"to\": \"src/sim/lock_order_pair.h\""),
              std::string::npos);
    EXPECT_NE(report.includeGraphDot.find(
                  "\"src/sim/include_chain.h\" -> "
                  "\"src/sim/lock_order_pair.h\""),
              std::string::npos);
}

TEST(LintTree, TreeRulePragmasBelongToTreeScans)
{
    // lintContent neither applies nor stales a cross-file pragma.
    const auto findings = lintOne(
        "src/sim/fixture.h",
        "// LITMUS-LINT-ALLOW(lock-annotation): fixture\n"
        "std::mutex mu_;\n");
    EXPECT_TRUE(findings.empty()) << triples(findings)[0];

    // The tree pass applies it...
    using litmus::lint::SourceFile;
    const std::vector<SourceFile> suppressed = {
        {"src/sim/one.h",
         "class Legacy\n"
         "{\n"
         "    // LITMUS-LINT-ALLOW(lock-annotation): audited fixture\n"
         "    std::mutex mu_;\n"
         "};\n"}};
    const Report ok = litmus::lint::lintFiles(suppressed, Options{});
    EXPECT_TRUE(ok.clean()) << litmus::lint::toJson(ok);
    EXPECT_EQ(ok.suppressions, 1);

    // ...and stales it when it suppresses nothing.
    const std::vector<SourceFile> unused = {
        {"src/sim/one.h",
         "// LITMUS-LINT-ALLOW(lock-order): nothing here\n"
         "int x = 0;\n"}};
    const Report stale = litmus::lint::lintFiles(unused, Options{});
    EXPECT_EQ(triples(stale.findings),
              (std::vector<std::string>{
                  "src/sim/one.h:1:stale-allow"}));
}

// ---------------------------------------------------------------- //
// --fix-stale engine                                               //
// ---------------------------------------------------------------- //

TEST(LintFixStale, StripsBareAndTrailingPragmasIdempotently)
{
    const std::string content =
        "// LITMUS-LINT-ALLOW(wall-clock): stale bare line\n"
        "double x = 1.0; // LITMUS-LINT-ALLOW(float-billing): bill\n"
        "double y = 2.0;\n";
    const std::string fixed =
        litmus::lint::stripStalePragmas(content, {1, 2});
    EXPECT_EQ(fixed, "double x = 1.0;\ndouble y = 2.0;\n");
    // Idempotent: stripping the result again is a no-op...
    EXPECT_EQ(litmus::lint::stripStalePragmas(fixed, {1, 2}), fixed);
    // ...and the fix leaves nothing for the linter to stale.
    EXPECT_TRUE(lintOne("src/sim/fixture.cc", fixed).empty());
}

TEST(LintFixStale, LinesWithoutPragmasAreLeftAlone)
{
    const std::string content =
        "double x = 1.0;\n"
        "double y = 2.0; // a plain comment stays\n";
    EXPECT_EQ(litmus::lint::stripStalePragmas(content, {1, 2}),
              content);
}

// ---------------------------------------------------------------- //
// Report plumbing                                                  //
// ---------------------------------------------------------------- //

TEST(LintReport, JsonCarriesTotalsAndEscapes)
{
    const Report report = runLint(fixtureOptions("bad"));
    const std::string json = litmus::lint::toJson(report);
    EXPECT_NE(json.find("\"files_scanned\": 15"), std::string::npos);
    EXPECT_NE(json.find("\"finding_count\": 23"), std::string::npos);
    EXPECT_NE(json.find("\"suppressions\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"rule\": \"wall-clock\""),
              std::string::npos);
    // Messages quote code (`float`): the backtick passes, but any
    // embedded quote must be escaped.
    EXPECT_EQ(json.find("\\\"`"), std::string::npos);
}

TEST(LintReport, CatalogAndKnownRuleAgree)
{
    const auto &rules = litmus::lint::ruleCatalog();
    ASSERT_EQ(rules.size(), 12u);
    for (const auto &rule : rules) {
        EXPECT_TRUE(litmus::lint::knownRule(rule.name));
        EXPECT_FALSE(rule.description.empty());
    }
    EXPECT_FALSE(litmus::lint::knownRule("flux-capacitor"));
}

} // namespace
