/**
 * @file
 * Tests for the invoker's population maintenance and placement modes.
 */

#include <gtest/gtest.h>

#include "workload/invoker.h"
#include "workload/suite.h"
#include "sim/machine_catalog.h"

namespace litmus::workload
{
namespace
{

sim::MachineConfig
machine()
{
    return sim::MachineCatalog::get("cascade-5218");
}

TEST(Invoker, LaunchesInitialPopulation)
{
    sim::Engine engine(machine());
    InvokerConfig cfg;
    cfg.targetCount = 6;
    cfg.cpuPool = {1, 2, 3, 4, 5, 6};
    Invoker invoker(engine, cfg);
    invoker.start();
    EXPECT_EQ(invoker.liveCount(), 6u);
    EXPECT_EQ(engine.taskCount(), 6u);
    EXPECT_EQ(invoker.launchedCount(), 6u);
}

TEST(Invoker, OnePerCorePinsDistinctCpus)
{
    sim::Engine engine(machine());
    InvokerConfig cfg;
    cfg.placement = InvokerConfig::Placement::OnePerCore;
    cfg.targetCount = 4;
    cfg.cpuPool = {2, 3, 4, 5};
    Invoker invoker(engine, cfg);
    invoker.start();
    for (unsigned cpu : {2u, 3u, 4u, 5u})
        EXPECT_NE(engine.scheduler().runningOn(cpu), nullptr);
    EXPECT_EQ(engine.scheduler().runningOn(0), nullptr);
}

TEST(Invoker, PooledSharesCpus)
{
    sim::Engine engine(machine());
    InvokerConfig cfg;
    cfg.placement = InvokerConfig::Placement::Pooled;
    cfg.targetCount = 10;
    cfg.cpuPool = {0, 1};
    Invoker invoker(engine, cfg);
    invoker.start();
    EXPECT_EQ(engine.scheduler().queueLength(0) +
                  engine.scheduler().queueLength(1),
              10u);
}

TEST(Invoker, MaintainsPopulationUnderChurn)
{
    sim::Engine engine(machine());
    InvokerConfig cfg;
    cfg.targetCount = 8;
    cfg.cpuPool = {0, 1, 2, 3, 4, 5, 6, 7};
    cfg.seed = 3;
    Invoker invoker(engine, cfg);
    engine.onCompletion(
        [&](sim::Task &task) { invoker.handleCompletion(task); });
    invoker.start();
    engine.run(0.5);
    EXPECT_EQ(invoker.liveCount(), 8u);
    EXPECT_EQ(engine.taskCount(), 8u);
    // Functions are ~100 ms: after 0.5 s several finished and were
    // replaced.
    EXPECT_GT(invoker.launchedCount(), 12u);
}

TEST(Invoker, OwnershipTracking)
{
    sim::Engine engine(machine());
    InvokerConfig cfg;
    cfg.targetCount = 2;
    cfg.cpuPool = {0, 1};
    Invoker invoker(engine, cfg);
    invoker.start();
    auto tasks = engine.liveTasks();
    ASSERT_EQ(tasks.size(), 2u);
    EXPECT_TRUE(invoker.owns(*tasks[0]));

    // A foreign task is not owned and not respawned.
    sim::ResourceDemand d;
    auto foreign = std::make_unique<EndlessTask>("foreign", d);
    sim::Task &handle = engine.add(std::move(foreign));
    EXPECT_FALSE(invoker.owns(handle));
    EXPECT_FALSE(invoker.handleCompletion(handle));
}

TEST(Invoker, ReplacementInheritsFreedCore)
{
    sim::Engine engine(machine());
    InvokerConfig cfg;
    cfg.placement = InvokerConfig::Placement::OnePerCore;
    cfg.targetCount = 3;
    cfg.cpuPool = {4, 5, 6};
    cfg.seed = 11;
    Invoker invoker(engine, cfg);
    engine.onCompletion(
        [&](sim::Task &task) { invoker.handleCompletion(task); });
    invoker.start();
    engine.run(0.6);
    // Population still pinned one per core on exactly the pool CPUs.
    EXPECT_EQ(invoker.liveCount(), 3u);
    for (unsigned cpu : {4u, 5u, 6u})
        EXPECT_EQ(engine.scheduler().queueLength(cpu), 1u);
}

TEST(Invoker, ValidatesConfiguration)
{
    sim::Engine engine(machine());
    InvokerConfig noCpus;
    noCpus.cpuPool.clear();
    EXPECT_EXIT(Invoker(engine, noCpus), ::testing::ExitedWithCode(1),
                "cpuPool");

    InvokerConfig tooMany;
    tooMany.placement = InvokerConfig::Placement::OnePerCore;
    tooMany.targetCount = 5;
    tooMany.cpuPool = {0, 1};
    EXPECT_EXIT(Invoker(engine, tooMany), ::testing::ExitedWithCode(1),
                "OnePerCore");
}

TEST(Invoker, StartTwiceFatal)
{
    sim::Engine engine(machine());
    InvokerConfig cfg;
    cfg.targetCount = 1;
    cfg.cpuPool = {0};
    Invoker invoker(engine, cfg);
    invoker.start();
    EXPECT_EXIT(invoker.start(), ::testing::ExitedWithCode(1), "twice");
}

TEST(Invoker, CustomFunctionPool)
{
    sim::Engine engine(machine());
    InvokerConfig cfg;
    cfg.targetCount = 4;
    cfg.cpuPool = {0, 1, 2, 3};
    cfg.functionPool = {&functionByName("float-py")};
    Invoker invoker(engine, cfg);
    invoker.start();
    for (sim::Task *task : engine.liveTasks())
        EXPECT_EQ(task->name(), "float-py");
}

TEST(Invoker, DeterministicSelectionPerSeed)
{
    auto namesFor = [](std::uint64_t seed) {
        sim::Engine engine(machine());
        InvokerConfig cfg;
        cfg.targetCount = 6;
        cfg.cpuPool = {0, 1, 2, 3, 4, 5};
        cfg.seed = seed;
        Invoker invoker(engine, cfg);
        invoker.start();
        std::vector<std::string> names;
        for (sim::Task *task : engine.liveTasks())
            names.push_back(task->name());
        return names;
    };
    EXPECT_EQ(namesFor(7), namesFor(7));
    EXPECT_NE(namesFor(7), namesFor(8));
}

} // namespace
} // namespace litmus::workload
