/**
 * @file
 * Tests for CT-Gen and MB-Gen: per-thread demands, pinning, and the
 * Figure 1 signatures.
 */

#include <gtest/gtest.h>

#include "sim/machine.h"
#include "workload/traffic_gen.h"
#include "sim/machine_catalog.h"

namespace litmus::workload
{
namespace
{

TEST(TrafficGen, Names)
{
    EXPECT_EQ(generatorName(GeneratorKind::CtGen), "CT-Gen");
    EXPECT_EQ(generatorName(GeneratorKind::MbGen), "MB-Gen");
}

TEST(TrafficGen, CtThreadMostlyHitsL3)
{
    const auto d = generatorThreadDemand(GeneratorKind::CtGen);
    EXPECT_LT(d.l3MissBase, 0.1);
    EXPECT_GT(d.l2Mpki, 30.0);
    EXPECT_LT(d.l3WorkingSet, 2_MiB);
}

TEST(TrafficGen, MbThreadStreamsThroughMemory)
{
    const auto d = generatorThreadDemand(GeneratorKind::MbGen);
    EXPECT_GT(d.l3MissBase, 0.8);
    EXPECT_GT(d.l3WorkingSet, 4_MiB);
    // Figure 1: MB-Gen issues fewer L2 misses than CT-Gen.
    EXPECT_LT(d.l2Mpki, generatorThreadDemand(GeneratorKind::CtGen).l2Mpki);
}

TEST(TrafficGen, SpawnPinsOnePerCpu)
{
    const auto cfg = sim::MachineCatalog::get("cascade-5218");
    sim::Engine engine(cfg);
    const auto handles =
        spawnGenerator(engine, GeneratorKind::CtGen, 5, 3);
    ASSERT_EQ(handles.size(), 5u);
    for (unsigned i = 0; i < 5; ++i) {
        ASSERT_EQ(handles[i]->affinity().size(), 1u);
        EXPECT_EQ(handles[i]->affinity()[0], 3 + i);
        EXPECT_EQ(engine.scheduler().runningOn(3 + i), handles[i]);
    }
}

TEST(TrafficGen, SpawnRejectsOverflow)
{
    auto cfg = sim::MachineCatalog::get("cascade-5218");
    cfg.cores = 4;
    sim::Engine engine(cfg);
    EXPECT_EXIT(spawnGenerator(engine, GeneratorKind::CtGen, 4, 1),
                ::testing::ExitedWithCode(1), "exceeds");
}

/**
 * Figure 1 signature test: machine-wide L3 misses are far higher
 * under MB-Gen than CT-Gen at the same level, and CT-Gen's L2-miss
 * traffic grows with its thread count.
 */
TEST(TrafficGen, Figure1Signatures)
{
    const auto cfg = sim::MachineCatalog::get("cascade-5218");

    auto measure = [&](GeneratorKind kind, unsigned level) {
        sim::Engine engine(cfg);
        spawnGenerator(engine, kind, level, 0);
        engine.run(0.02);
        return engine.machineCounters();
    };

    const auto ct8 = measure(GeneratorKind::CtGen, 8);
    const auto mb8 = measure(GeneratorKind::MbGen, 8);

    // MB misses the L3 orders of magnitude more than CT.
    EXPECT_GT(mb8.l3Misses, 10 * ct8.l3Misses);
    // CT produces more L2-miss traffic (L3 accesses) than MB, which is
    // self-throttled on DRAM.
    EXPECT_GT(ct8.l3Accesses, mb8.l3Accesses);

    // Traffic grows with level for both generators.
    const auto ct2 = measure(GeneratorKind::CtGen, 2);
    const auto mb2 = measure(GeneratorKind::MbGen, 2);
    EXPECT_GT(ct8.l3Accesses, 2 * ct2.l3Accesses);
    EXPECT_GT(mb8.l3Misses, 2 * mb2.l3Misses);
}

TEST(TrafficGen, LevelsProduceIncreasingCongestion)
{
    // A fixed probe-like subject slows down monotonically (within
    // tolerance) as the MB-Gen level rises.
    const auto cfg = sim::MachineCatalog::get("cascade-5218");
    sim::ResourceDemand probeDemand;
    probeDemand.cpi0 = 0.6;
    probeDemand.l2Mpki = 15.0;
    probeDemand.l3WorkingSet = 3_MiB;
    probeDemand.l3MissBase = 0.3;
    probeDemand.mlp = 8.0;

    double prevCpi = 0.0;
    for (unsigned level : {2u, 10u, 20u, 30u}) {
        sim::Engine engine(cfg);
        spawnGenerator(engine, GeneratorKind::MbGen, level, 1);
        engine.run(0.01); // warm
        workload::Phase phase;
        phase.name = "probe";
        phase.instructions = 20e6;
        phase.demand = probeDemand;
        sim::TaskCounters counters;
        engine.onCompletion(
            [&](sim::Task &t) { counters = t.counters(); });
        auto task = std::make_unique<ProgramTask>(
            "probe", PhaseProgram({phase}));
        task->setAffinity({0});
        sim::Task &handle = engine.add(std::move(task));
        engine.runUntilComplete(handle);
        const double cpi = counters.cycles / counters.instructions;
        EXPECT_GT(cpi, prevCpi * 0.999) << "level " << level;
        prevCpi = cpi;
    }
}

} // namespace
} // namespace litmus::workload
