/**
 * @file
 * Tests for the experiment harness on small configurations.
 */

#include <gtest/gtest.h>

#include "core/experiment.h"

namespace litmus::pricing
{
namespace
{

ExperimentConfig
smallConfig()
{
    ExperimentConfig cfg;
    cfg.coRunners = 6;
    cfg.layoutOnePerCore();
    cfg.subjects = {&workload::functionByName("aes-py"),
                    &workload::functionByName("float-py"),
                    &workload::functionByName("pager-py")};
    cfg.repetitions = 2;
    cfg.warmup = 0.05;
    return cfg;
}

TEST(ExperimentConfig, LayoutOnePerCore)
{
    ExperimentConfig cfg;
    cfg.coRunners = 4;
    cfg.layoutOnePerCore();
    EXPECT_EQ(cfg.subjectCpus, std::vector<unsigned>{0});
    EXPECT_EQ(cfg.coRunnerCpus, (std::vector<unsigned>{1, 2, 3, 4}));
    EXPECT_EQ(cfg.placement,
              workload::InvokerConfig::Placement::OnePerCore);
}

TEST(ExperimentConfig, LayoutPooled)
{
    ExperimentConfig cfg;
    cfg.layoutPooled(3);
    EXPECT_EQ(cfg.coRunnerCpus, (std::vector<unsigned>{0, 1, 2}));
    EXPECT_EQ(cfg.subjectCpus, cfg.coRunnerCpus);
    EXPECT_EQ(cfg.placement, workload::InvokerConfig::Placement::Pooled);
}

TEST(ExperimentConfig, ValidateCatchesMissingLayout)
{
    ExperimentConfig cfg;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "layout");
}

TEST(ExperimentConfig, ValidateCatchesBadCpu)
{
    ExperimentConfig cfg;
    cfg.layoutOnePerCore();
    cfg.subjectCpus = {999};
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(EnvOr, ParsesAndValidates)
{
    ::unsetenv("LITMUS_TEST_KNOB");
    EXPECT_EQ(envOr("LITMUS_TEST_KNOB", 7u), 7u);
    ::setenv("LITMUS_TEST_KNOB", "12", 1);
    EXPECT_EQ(envOr("LITMUS_TEST_KNOB", 7u), 12u);
    ::setenv("LITMUS_TEST_KNOB", "-3", 1);
    EXPECT_EXIT(envOr("LITMUS_TEST_KNOB", 7u),
                ::testing::ExitedWithCode(1), "positive");
    ::unsetenv("LITMUS_TEST_KNOB");
}

TEST(EnvOr, RejectsZeroRepsWithClearError)
{
    // The bench knob everyone actually sets: LITMUS_REPS=0 must die
    // with the "positive integer" message, not loop zero times.
    ::setenv("LITMUS_REPS", "0", 1);
    EXPECT_EXIT(envOr("LITMUS_REPS", 5u),
                ::testing::ExitedWithCode(1),
                "LITMUS_REPS must be a positive integer");
    ::unsetenv("LITMUS_REPS");
}

TEST(SlowdownExperiment, ProducesSaneRows)
{
    const auto result = runSlowdownExperiment(smallConfig());
    ASSERT_EQ(result.rows.size(), 3u);
    for (const auto &row : result.rows) {
        EXPECT_GT(row.totalSlowdown, 0.99) << row.name;
        EXPECT_LT(row.totalSlowdown, 2.0) << row.name;
        EXPECT_GE(row.tSharedSlowdown, 0.9) << row.name;
        EXPECT_EQ(row.invocations, 2u);
    }
    // float-py is the least affected subject.
    EXPECT_LT(result.row("float-py").totalSlowdown,
              result.row("pager-py").totalSlowdown);
    EXPECT_GT(result.gmeanTotalSlowdown, 1.0);
}

TEST(SlowdownExperiment, RowLookupFatalOnUnknown)
{
    const auto result = runSlowdownExperiment(smallConfig());
    EXPECT_EXIT(result.row("nope"), ::testing::ExitedWithCode(1),
                "no row");
}

TEST(SlowdownExperiment, SharedShareMatchesBaseline)
{
    const auto result = runSlowdownExperiment(smallConfig());
    EXPECT_LT(result.row("float-py").sharedShareSolo, 0.02);
    EXPECT_GT(result.row("pager-py").sharedShareSolo, 0.08);
}

TEST(SlowdownExperiment, DefaultSubjectsAreTestSet)
{
    ExperimentConfig cfg = smallConfig();
    cfg.subjects.clear();
    cfg.repetitions = 1;
    const auto result = runSlowdownExperiment(cfg);
    EXPECT_EQ(result.rows.size(), workload::testSet().size());
}

} // namespace
} // namespace litmus::pricing
