/**
 * @file
 * Tests for the OS scheduler: placement, rotation, warmth model,
 * rebalancing, freezing, and SMT sibling detection.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/os_scheduler.h"
#include "workload/program.h"
#include "sim/machine_catalog.h"

namespace litmus::sim
{
namespace
{

std::unique_ptr<workload::EndlessTask>
makeTask(const std::string &name)
{
    ResourceDemand d;
    d.cpi0 = 1.0;
    return std::make_unique<workload::EndlessTask>(name, d);
}

MachineConfig
smallMachine(unsigned cores = 4, unsigned smt = 1)
{
    auto cfg = MachineCatalog::get("cascade-5218");
    cfg.cores = cores;
    cfg.smtWays = smt;
    return cfg;
}

TEST(Scheduler, PlacesOnLeastLoadedCpu)
{
    const auto cfg = smallMachine();
    OsScheduler sched(cfg);
    auto a = makeTask("a"), b = makeTask("b"), c = makeTask("c");
    sched.add(a.get());
    sched.add(b.get());
    sched.add(c.get());
    // Three tasks over four CPUs: no CPU holds two.
    unsigned busy = 0;
    for (unsigned cpu = 0; cpu < 4; ++cpu)
        busy += sched.runningOn(cpu) != nullptr;
    EXPECT_EQ(busy, 3u);
}

TEST(Scheduler, RespectsAffinity)
{
    const auto cfg = smallMachine();
    OsScheduler sched(cfg);
    auto a = makeTask("a");
    a->setAffinity({2});
    sched.add(a.get());
    EXPECT_EQ(sched.runningOn(2), a.get());
    EXPECT_EQ(sched.runningOn(0), nullptr);
}

TEST(Scheduler, RejectsOutOfRangeAffinity)
{
    const auto cfg = smallMachine();
    OsScheduler sched(cfg);
    auto a = makeTask("a");
    a->setAffinity({99});
    EXPECT_EXIT(sched.add(a.get()), ::testing::ExitedWithCode(1),
                "affinity");
}

TEST(Scheduler, RotatesOnSliceExpiry)
{
    const auto cfg = smallMachine(1);
    OsScheduler sched(cfg);
    auto a = makeTask("a"), b = makeTask("b");
    sched.add(a.get());
    sched.add(b.get());
    EXPECT_EQ(sched.runningOn(0), a.get());
    sched.tick(cfg.timeSlice); // slice expires
    EXPECT_EQ(sched.runningOn(0), b.get());
    EXPECT_EQ(b->counters().contextSwitches, 1u);
    EXPECT_GT(sched.consumePendingSwitchCycles(0), 0.0);
    // Consumed: second read is zero.
    EXPECT_DOUBLE_EQ(sched.consumePendingSwitchCycles(0), 0.0);
}

TEST(Scheduler, NoRotationWhenAlone)
{
    const auto cfg = smallMachine(1);
    OsScheduler sched(cfg);
    auto a = makeTask("a");
    sched.add(a.get());
    sched.tick(cfg.timeSlice * 3);
    EXPECT_EQ(sched.runningOn(0), a.get());
    EXPECT_EQ(a->counters().contextSwitches, 0u);
}

TEST(Scheduler, RemoveRunningPromotesNext)
{
    const auto cfg = smallMachine(1);
    OsScheduler sched(cfg);
    auto a = makeTask("a"), b = makeTask("b");
    sched.add(a.get());
    sched.add(b.get());
    sched.remove(a.get());
    EXPECT_EQ(sched.runningOn(0), b.get());
    EXPECT_EQ(sched.totalTasks(), 1u);
}

TEST(Scheduler, RemoveUnknownPanics)
{
    const auto cfg = smallMachine(1);
    OsScheduler sched(cfg);
    auto a = makeTask("a");
    EXPECT_DEATH(sched.remove(a.get()), "not queued");
}

TEST(Scheduler, WarmthCurveShape)
{
    // Figure 14: 1.0 alone, ~1.024 at 10 co-runners, saturating ~1.028
    // past 20.
    const auto cfg = smallMachine();
    OsScheduler sched(cfg);
    EXPECT_DOUBLE_EQ(sched.warmthForCount(0), 1.0);
    EXPECT_DOUBLE_EQ(sched.warmthForCount(1), 1.0);
    EXPECT_NEAR(sched.warmthForCount(10), 1.024, 0.002);
    EXPECT_NEAR(sched.warmthForCount(25), 1.028, 0.001);
    // Logarithmic-ish: increments shrink.
    const double d1 = sched.warmthForCount(2) - sched.warmthForCount(1);
    const double d9 =
        sched.warmthForCount(10) - sched.warmthForCount(9);
    EXPECT_GT(d1, d9);
}

TEST(Scheduler, WarmthAppliesPerCpuQueue)
{
    const auto cfg = smallMachine(1);
    OsScheduler sched(cfg);
    auto a = makeTask("a"), b = makeTask("b"), c = makeTask("c");
    sched.add(a.get());
    EXPECT_DOUBLE_EQ(sched.warmthMult(0), 1.0);
    sched.add(b.get());
    sched.add(c.get());
    EXPECT_DOUBLE_EQ(sched.warmthMult(0), sched.warmthForCount(3));
}

TEST(Scheduler, RebalanceFillsIdleCpu)
{
    const auto cfg = smallMachine(2);
    OsScheduler sched(cfg);
    auto a = makeTask("a"), b = makeTask("b"), c = makeTask("c");
    sched.add(a.get()); // cpu 0
    sched.add(b.get()); // cpu 1
    sched.add(c.get()); // cpu 0 or 1 (queue of 2)
    // Remove the task that ran alone; the waiting task should migrate.
    Task *aloneTask = sched.queueLength(0) == 1 ? a.get() : b.get();
    sched.remove(aloneTask);
    EXPECT_EQ(sched.queueLength(0), 1u);
    EXPECT_EQ(sched.queueLength(1), 1u);
}

TEST(Scheduler, RebalanceHonoursAffinity)
{
    const auto cfg = smallMachine(2);
    OsScheduler sched(cfg);
    auto a = makeTask("a"), b = makeTask("b"), c = makeTask("c");
    a->setAffinity({0});
    b->setAffinity({0});
    c->setAffinity({0});
    sched.add(a.get());
    sched.add(b.get());
    sched.add(c.get());
    // CPU 1 idle but nothing may move there.
    EXPECT_EQ(sched.queueLength(1), 0u);
    EXPECT_EQ(sched.queueLength(0), 3u);
}

TEST(Scheduler, FrozenTaskSkipped)
{
    const auto cfg = smallMachine(1);
    OsScheduler sched(cfg);
    auto a = makeTask("a"), b = makeTask("b");
    sched.add(a.get());
    sched.add(b.get());
    sched.setFrozen(a.get(), true);
    EXPECT_TRUE(sched.isFrozen(a.get()));
    EXPECT_EQ(sched.runningOn(0), b.get());
    sched.setFrozen(a.get(), false);
    EXPECT_EQ(sched.runningOn(0), a.get());
}

TEST(Scheduler, AllFrozenMeansIdle)
{
    const auto cfg = smallMachine(1);
    OsScheduler sched(cfg);
    auto a = makeTask("a");
    sched.add(a.get());
    sched.setFrozen(a.get(), true);
    EXPECT_EQ(sched.runningOn(0), nullptr);
    EXPECT_EQ(sched.activeCores(), 0u);
}

TEST(Scheduler, ActiveCoresCountsBusyCores)
{
    const auto cfg = smallMachine(4);
    OsScheduler sched(cfg);
    EXPECT_EQ(sched.activeCores(), 0u);
    auto a = makeTask("a"), b = makeTask("b");
    sched.add(a.get());
    sched.add(b.get());
    EXPECT_EQ(sched.activeCores(), 2u);
}

TEST(Scheduler, SmtSiblingDetection)
{
    const auto cfg = smallMachine(2, 2); // 2 cores x 2 ways = 4 cpus
    OsScheduler sched(cfg);
    auto a = makeTask("a"), b = makeTask("b");
    a->setAffinity({0}); // core 0 way 0
    b->setAffinity({1}); // core 0 way 1
    sched.add(a.get());
    EXPECT_FALSE(sched.siblingBusy(0));
    sched.add(b.get());
    EXPECT_TRUE(sched.siblingBusy(0));
    EXPECT_TRUE(sched.siblingBusy(1));
    EXPECT_FALSE(sched.siblingBusy(2));
}

TEST(Scheduler, SmtDisabledNeverSibling)
{
    const auto cfg = smallMachine(2, 1);
    OsScheduler sched(cfg);
    auto a = makeTask("a"), b = makeTask("b");
    sched.add(a.get());
    sched.add(b.get());
    EXPECT_FALSE(sched.siblingBusy(0));
    EXPECT_FALSE(sched.siblingBusy(1));
}

TEST(Scheduler, ActiveCoresWithSmtCountsPhysical)
{
    const auto cfg = smallMachine(2, 2);
    OsScheduler sched(cfg);
    auto a = makeTask("a"), b = makeTask("b");
    a->setAffinity({0});
    b->setAffinity({1}); // same physical core
    sched.add(a.get());
    sched.add(b.get());
    EXPECT_EQ(sched.activeCores(), 1u);
}

} // namespace
} // namespace litmus::sim
