/**
 * @file
 * Tests for the machine-preset catalog: built-in presets, aliases,
 * custom registration (programmatic and from key=value files), and
 * the unknown-name error path.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "sim/machine_catalog.h"

namespace litmus::sim
{
namespace
{

TEST(MachineCatalog, CascadePreset)
{
    const auto cfg = MachineCatalog::get("cascade-5218");
    EXPECT_EQ(cfg.name, "cascade-5218");
    EXPECT_EQ(cfg.cores, 32u);
    EXPECT_EQ(cfg.smtWays, 1u);
    EXPECT_EQ(cfg.hwThreads(), 32u);
    EXPECT_DOUBLE_EQ(cfg.baseFrequency, 2.8e9);
    EXPECT_EQ(cfg.l3Capacity, 44_MiB);
    EXPECT_EQ(cfg.memoryCapacity, 384_GiB);
    EXPECT_NO_FATAL_FAILURE(cfg.validate());
}

TEST(MachineCatalog, CascadeDualPreset)
{
    const auto folded = MachineCatalog::get("cascade-5218");
    const auto dual = MachineCatalog::get("cascade-5218-dual");
    EXPECT_EQ(dual.sockets, 2u);
    EXPECT_EQ(dual.coresPerSocket(), 16u);
    EXPECT_EQ(dual.l3Capacity, folded.l3Capacity / 2);
    EXPECT_DOUBLE_EQ(dual.memServiceRate, folded.memServiceRate / 2);
}

TEST(MachineCatalog, IceLakePreset)
{
    const auto cfg = MachineCatalog::get("icelake-4314");
    EXPECT_EQ(cfg.name, "icelake-4314");
    EXPECT_EQ(cfg.cores, 16u);
    EXPECT_DOUBLE_EQ(cfg.baseFrequency, 2.4e9);
    EXPECT_EQ(cfg.l3Capacity, 24_MiB);
    EXPECT_EQ(cfg.memoryCapacity, 128_GiB);
}

TEST(MachineCatalog, PresetsDiffer)
{
    const auto cl = MachineCatalog::get("cascade-5218");
    const auto il = MachineCatalog::get("icelake-4314");
    EXPECT_NE(cl.name, il.name);
    EXPECT_GT(cl.l3ServiceRate, il.l3ServiceRate);
    EXPECT_GT(cl.memServiceRate, il.memServiceRate);
}

TEST(MachineCatalog, AliasesResolveToCanonicalPresets)
{
    EXPECT_EQ(MachineCatalog::get("cascadelake").name,
              "cascade-5218");
    EXPECT_EQ(MachineCatalog::get("xeon-gold-5218").name,
              "cascade-5218");
    EXPECT_EQ(MachineCatalog::get("xeon-gold-5218-dual").name,
              "cascade-5218-dual");
    EXPECT_EQ(MachineCatalog::get("icelake").name, "icelake-4314");
    EXPECT_EQ(MachineCatalog::get("xeon-silver-4314").name,
              "icelake-4314");
}

TEST(MachineCatalog, HasAndNames)
{
    EXPECT_TRUE(MachineCatalog::has("cascade-5218"));
    EXPECT_TRUE(MachineCatalog::has("icelake"));
    EXPECT_FALSE(MachineCatalog::has("itanium-9000"));

    const auto names = MachineCatalog::names();
    EXPECT_GE(names.size(), 3u);
    // Canonical names only — aliases are lookup sugar.
    EXPECT_NE(std::find(names.begin(), names.end(), "cascade-5218"),
              names.end());
    EXPECT_EQ(std::find(names.begin(), names.end(), "cascadelake"),
              names.end());
}

TEST(MachineCatalog, UnknownNameListsCatalog)
{
    EXPECT_EXIT(MachineCatalog::get("itanium-9000"),
                ::testing::ExitedWithCode(1),
                "unknown machine 'itanium-9000'.*cascade-5218");
}

TEST(MachineCatalog, RegisterCustomPreset)
{
    MachineConfig cfg = MachineCatalog::get("cascade-5218");
    cfg.name = "catalog-test-64";
    cfg.cores = 64;
    MachineCatalog::registerPreset(cfg, {"ct64"});

    EXPECT_EQ(MachineCatalog::get("catalog-test-64").cores, 64u);
    EXPECT_EQ(MachineCatalog::get("ct64").cores, 64u);

    // Re-registering replaces (idempotent for test fixtures), and
    // aliases follow the replacement instead of serving stale copies.
    cfg.cores = 48;
    MachineCatalog::registerPreset(cfg);
    EXPECT_EQ(MachineCatalog::get("catalog-test-64").cores, 48u);
    EXPECT_EQ(MachineCatalog::get("ct64").cores, 48u);
}

TEST(MachineCatalog, RejectsNonTokenNames)
{
    // Names travel through fleet specs and profile records, so
    // whitespace and the spec separators are refused.
    MachineConfig cfg = MachineCatalog::get("cascade-5218");
    cfg.name = "big node";
    EXPECT_EXIT(MachineCatalog::registerPreset(cfg),
                ::testing::ExitedWithCode(1), "whitespace");
    cfg.name = "a:b";
    EXPECT_EXIT(MachineCatalog::registerPreset(cfg),
                ::testing::ExitedWithCode(1), "whitespace");
}

TEST(MachineCatalog, RegisterPresetRejectsInvalid)
{
    MachineConfig cfg = MachineCatalog::get("cascade-5218");
    cfg.name = "broken";
    cfg.cores = 0;
    EXPECT_EXIT(MachineCatalog::registerPreset(cfg),
                ::testing::ExitedWithCode(1), "cores");
    cfg = MachineCatalog::get("cascade-5218");
    cfg.name.clear();
    EXPECT_EXIT(MachineCatalog::registerPreset(cfg),
                ::testing::ExitedWithCode(1), "no name");
}

TEST(MachineCatalog, RegisterFromFile)
{
    const std::string path = "/tmp/litmus_test_preset.conf";
    {
        std::ofstream out(path);
        out << "# a trimmed Ice Lake for the edge\n"
            << "base = icelake-4314\n"
            << "name = edge-4314\n"
            << "cores = 8\n"
            << "memory_capacity_gib = 64\n";
    }
    const MachineConfig cfg = MachineCatalog::registerFromFile(path);
    EXPECT_EQ(cfg.name, "edge-4314");
    EXPECT_EQ(cfg.cores, 8u);
    EXPECT_EQ(cfg.memoryCapacity, 64_GiB);
    // The base preset's other fields carried over.
    EXPECT_DOUBLE_EQ(cfg.baseFrequency, 2.4e9);
    EXPECT_EQ(MachineCatalog::get("edge-4314").cores, 8u);
    std::remove(path.c_str());
}

TEST(MachineCatalog, RegisterFromFileRequiresName)
{
    const std::string path = "/tmp/litmus_test_preset_noname.conf";
    {
        std::ofstream out(path);
        out << "cores = 8\n";
    }
    EXPECT_EXIT(MachineCatalog::registerFromFile(path),
                ::testing::ExitedWithCode(1), "must set name");
    std::remove(path.c_str());
}

TEST(MachineCatalog, RegisterFromFileRejectsUnknownBase)
{
    const std::string path = "/tmp/litmus_test_preset_badbase.conf";
    {
        std::ofstream out(path);
        out << "base = vax-11\nname = whatever\n";
    }
    EXPECT_EXIT(MachineCatalog::registerFromFile(path),
                ::testing::ExitedWithCode(1), "unknown machine");
    std::remove(path.c_str());
}

} // namespace
} // namespace litmus::sim
