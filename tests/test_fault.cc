/**
 * @file
 * Tests for fault injection: the compiled fault schedule, the
 * cluster's crash/slowdown/blindness handling, retry-policy billing
 * semantics, and the scenario-level fault.* surface.
 *
 * Suite names start with Fault/Chaos so the CI ThreadSanitizer job's
 * test filter picks them up alongside the other concurrency suites.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/config_reader.h"
#include "scenario/scenario.h"
#include "sim/machine_catalog.h"
#include "workload/suite.h"

namespace litmus::cluster
{
namespace
{

using workload::FunctionSpec;
using workload::Language;

/** Small fast functions (Go startup is the shortest) for fleet runs. */
const std::vector<FunctionSpec> &
tinySuite()
{
    static const std::vector<FunctionSpec> suite = [] {
        std::vector<FunctionSpec> fns;
        for (const char *name : {"alpha-go", "beta-go"}) {
            FunctionSpec spec;
            spec.name = name;
            spec.language = Language::Go;
            workload::Phase body;
            body.name = "body";
            body.instructions = 3_Minstr;
            body.demand.cpi0 = 0.8;
            body.demand.l2Mpki = 4.0;
            body.demand.l3WorkingSet = 2_MiB;
            body.demand.l3MissBase = 0.2;
            body.demand.mlp = 4.0;
            spec.body = {body};
            spec.memoryFootprint = 256_MiB;
            fns.push_back(spec);
        }
        return fns;
    }();
    return suite;
}

std::vector<const FunctionSpec *>
tinyPool()
{
    std::vector<const FunctionSpec *> pool;
    for (const FunctionSpec &spec : tinySuite())
        pool.push_back(&spec);
    return pool;
}

/** An 8-core cut of the Cascade Lake preset, registered once so fleet
 *  specs can name it. */
const std::string &
testMachine()
{
    static const std::string name = [] {
        sim::MachineConfig cfg =
            sim::MachineCatalog::get("cascade-5218");
        cfg.name = "test-fault-cascade-8";
        cfg.cores = 8;
        sim::MachineCatalog::registerPreset(cfg);
        return cfg.name;
    }();
    return name;
}

ClusterConfig
smallFleet(unsigned machines, std::uint64_t invocations = 400)
{
    ClusterConfig cfg;
    cfg.fleet = {{testMachine(), machines}};
    cfg.policy = DispatchPolicy::LeastLoaded;
    cfg.arrivalsPerSecond = 4000;
    cfg.invocations = invocations;
    cfg.functionPool = tinyPool();
    cfg.seed = 11;
    cfg.threads = 1;
    return cfg;
}

/** A crash campaign that reliably kills in-flight work on the 0.1 s
 *  trace smallFleet(2) generates: stochastic crashes every ~25 ms per
 *  machine plus two scripted ones pinned mid-trace. */
ClusterConfig
crashFleet(RetryPolicy retry,
           FaultBilling billing = FaultBilling::ProviderAbsorbs)
{
    ClusterConfig cfg = smallFleet(2);
    cfg.faults.crashMtbf = 0.025;
    cfg.faults.restartDelay = 0.004;
    cfg.faults.crashAt = {{0.025, 0}, {0.06, 1}};
    cfg.faults.retry = retry;
    cfg.faults.retryMax = 4;
    cfg.faults.retryBackoff = 0.002;
    cfg.faults.billing = billing;
    return cfg;
}

FaultSpec
stochasticSpec()
{
    FaultSpec spec;
    spec.seed = 42;
    spec.crashMtbf = 2.0;
    spec.restartDelay = 0.5;
    spec.slowMtbf = 1.5;
    spec.slowDuration = 0.4;
    spec.slowFactor = 0.6;
    spec.blindMtbf = 1.8;
    spec.blindDuration = 0.3;
    return spec;
}

bool
sameEvents(const FaultPlan &a, const FaultPlan &b)
{
    if (a.events().size() != b.events().size())
        return false;
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        const FaultEvent &x = a.events()[i];
        const FaultEvent &y = b.events()[i];
        if (x.at != y.at || x.kind != y.kind ||
            x.machine != y.machine || x.factor != y.factor)
            return false;
    }
    return true;
}

double
relErr(double measured, double expected)
{
    const double mag = std::abs(expected);
    return mag > 0 ? std::abs(measured - expected) / mag
                   : std::abs(measured);
}

// ---------------------------------------------------------------------
// The compiled schedule.
// ---------------------------------------------------------------------

TEST(FaultPlan, PolicyAndBillingNamesRoundTrip)
{
    for (RetryPolicy policy :
         {RetryPolicy::Drop, RetryPolicy::RetryOnce,
          RetryPolicy::RetryBackoff})
        EXPECT_EQ(retryPolicyByName(retryPolicyName(policy)), policy);
    EXPECT_EQ(retryPolicyByName("once"), RetryPolicy::RetryOnce);
    EXPECT_EQ(retryPolicyByName("backoff"), RetryPolicy::RetryBackoff);
    EXPECT_EXIT(retryPolicyByName("pray"),
                ::testing::ExitedWithCode(1), "unknown retry policy");

    for (FaultBilling billing :
         {FaultBilling::TenantPays, FaultBilling::ProviderAbsorbs})
        EXPECT_EQ(faultBillingByName(faultBillingName(billing)),
                  billing);
    EXPECT_EQ(faultBillingByName("tenant"), FaultBilling::TenantPays);
    EXPECT_EQ(faultBillingByName("provider"),
              FaultBilling::ProviderAbsorbs);
    EXPECT_EXIT(faultBillingByName("split"),
                ::testing::ExitedWithCode(1),
                "unknown fault billing mode");
}

TEST(FaultPlan, ScriptedFaultParsing)
{
    // Both separators: ';' (the CLI form, ',' splits --faults pieces)
    // and ',' (the scenario-file form); machine defaults to 0.
    for (const char *listing : {"0.5@1;2.0", "0.5@1,2.0"}) {
        const auto faults =
            parseScriptedFaults("fault.crash.at", listing);
        ASSERT_EQ(faults.size(), 2u);
        EXPECT_DOUBLE_EQ(faults[0].at, 0.5);
        EXPECT_EQ(faults[0].machine, 1u);
        EXPECT_DOUBLE_EQ(faults[1].at, 2.0);
        EXPECT_EQ(faults[1].machine, 0u);
    }
    EXPECT_TRUE(parseScriptedFaults("fault.crash.at", "").empty());
    EXPECT_EXIT(parseScriptedFaults("fault.crash.at", "abc"),
                ::testing::ExitedWithCode(1), "bad fault time");
    EXPECT_EXIT(parseScriptedFaults("fault.crash.at", "0.5@x"),
                ::testing::ExitedWithCode(1), "bad machine index");
}

TEST(FaultPlan, ValidateCatchesNonsense)
{
    FaultSpec spec;
    spec.crashMtbf = -1;
    EXPECT_EXIT(spec.validate(), ::testing::ExitedWithCode(1),
                "fault.crash.mtbf");
    spec = FaultSpec{};
    spec.crashMtbf = 1;
    spec.restartDelay = 0;
    EXPECT_EXIT(spec.validate(), ::testing::ExitedWithCode(1),
                "fault.crash.restart");
    spec = FaultSpec{};
    spec.slowMtbf = 1;
    spec.slowFactor = 1.5;
    EXPECT_EXIT(spec.validate(), ::testing::ExitedWithCode(1),
                "fault.slow.factor");
    spec = FaultSpec{};
    spec.blindMtbf = 1;
    spec.blindDuration = 0;
    EXPECT_EXIT(spec.validate(), ::testing::ExitedWithCode(1),
                "fault.blind.duration");
    spec = FaultSpec{};
    spec.retry = RetryPolicy::RetryBackoff;
    spec.retryMax = 1;
    EXPECT_EXIT(spec.validate(), ::testing::ExitedWithCode(1),
                "fault.retry.max");
}

TEST(FaultPlan, CompileIsReplayIdentical)
{
    const FaultSpec spec = stochasticSpec();
    const FaultPlan a = FaultPlan::compile(spec, 4, 10.0, 11);
    const FaultPlan b = FaultPlan::compile(spec, 4, 10.0, 11);
    EXPECT_FALSE(a.empty());
    EXPECT_TRUE(sameEvents(a, b));

    // A different fault seed moves the schedule.
    FaultSpec reseeded = spec;
    reseeded.seed = 43;
    EXPECT_FALSE(
        sameEvents(a, FaultPlan::compile(reseeded, 4, 10.0, 11)));
}

TEST(FaultPlan, EventsSortedAndEveryCrashPairsWithARestart)
{
    const FaultSpec spec = stochasticSpec();
    const FaultPlan plan = FaultPlan::compile(spec, 3, 10.0, 11);
    ASSERT_FALSE(plan.empty());

    std::size_t crashes = 0;
    for (std::size_t i = 0; i < plan.events().size(); ++i) {
        const FaultEvent &ev = plan.events()[i];
        if (i > 0) {
            EXPECT_LE(plan.events()[i - 1].at, ev.at);
        }
        // Start events are generated inside the horizon; only the
        // matching restart / window-end may land past it.
        if (ev.kind == FaultKind::Crash ||
            ev.kind == FaultKind::SlowStart ||
            ev.kind == FaultKind::BlindStart) {
            EXPECT_LT(ev.at, 10.0);
        }
        if (ev.kind != FaultKind::Crash)
            continue;
        ++crashes;
        // The machine's restart is scheduled exactly restartDelay
        // later.
        bool restarted = false;
        for (const FaultEvent &later : plan.events())
            if (later.kind == FaultKind::Restart &&
                later.machine == ev.machine &&
                later.at == ev.at + spec.restartDelay)
                restarted = true;
        EXPECT_TRUE(restarted)
            << "crash at " << ev.at << " on machine " << ev.machine
            << " has no restart";
    }
    EXPECT_GT(crashes, 0u);
}

TEST(FaultPlan, FaultClassesDrawIndependentStreams)
{
    // Enabling slowdown windows must not move the crash schedule:
    // each machine and fault class draws from its own Rng stream.
    FaultSpec crashOnly;
    crashOnly.seed = 42;
    crashOnly.crashMtbf = 2.0;
    crashOnly.restartDelay = 0.5;
    const FaultPlan a = FaultPlan::compile(crashOnly, 3, 10.0, 11);

    const FaultPlan b =
        FaultPlan::compile(stochasticSpec(), 3, 10.0, 11);

    const auto crashesOf = [](const FaultPlan &plan) {
        std::vector<FaultEvent> out;
        for (const FaultEvent &ev : plan.events())
            if (ev.kind == FaultKind::Crash)
                out.push_back(ev);
        return out;
    };
    const auto crashesA = crashesOf(a);
    const auto crashesB = crashesOf(b);
    ASSERT_FALSE(crashesA.empty());
    ASSERT_EQ(crashesA.size(), crashesB.size());
    for (std::size_t i = 0; i < crashesA.size(); ++i) {
        EXPECT_EQ(crashesA[i].at, crashesB[i].at);
        EXPECT_EQ(crashesA[i].machine, crashesB[i].machine);
    }
}

TEST(FaultPlan, SeedDerivationIsStableAndDistinct)
{
    FaultSpec spec;
    // An explicit fault seed wins.
    spec.seed = 7;
    EXPECT_EQ(deriveFaultSeed(spec, 11), 7u);
    // Unset derives from the scenario seed: stable, but not the
    // scenario seed itself (the traffic generator owns that stream).
    spec.seed = 0;
    const std::uint64_t derived = deriveFaultSeed(spec, 11);
    EXPECT_EQ(deriveFaultSeed(spec, 11), derived);
    EXPECT_NE(derived, 11u);
    EXPECT_NE(deriveFaultSeed(spec, 12), derived);
}

TEST(FaultPlan, ScriptedMachineOutOfRangeIsFatal)
{
    FaultSpec spec;
    spec.crashAt = {{0.5, 7}};
    EXPECT_EXIT(FaultPlan::compile(spec, 2, 10.0, 11),
                ::testing::ExitedWithCode(1), "names machine");
}

// ---------------------------------------------------------------------
// The cluster under fire.
// ---------------------------------------------------------------------

TEST(FaultCluster, TotalsIdenticalAcrossThreadCounts)
{
    ClusterConfig base = crashFleet(RetryPolicy::RetryBackoff);
    base.faults.slowMtbf = 0.03;
    base.faults.slowDuration = 0.01;
    base.faults.slowFactor = 0.6;
    base.faults.blindMtbf = 0.03;
    base.faults.blindDuration = 0.008;

    ClusterConfig serialCfg = base;
    serialCfg.threads = 1;
    Cluster serial(serialCfg);
    const FleetReport &reference = serial.run();
    EXPECT_GT(reference.crashes, 0u);
    EXPECT_GT(reference.killedInvocations, 0u);

    for (unsigned threads : {4u, 16u}) {
        ClusterConfig cfg = base;
        cfg.threads = threads;
        Cluster threaded(cfg);
        EXPECT_TRUE(identicalTotals(reference, threaded.run()))
            << threads << " threads diverged from serial";
    }
}

TEST(FaultCluster, ConservationHoldsThroughCrashes)
{
    Cluster fleet(crashFleet(RetryPolicy::RetryBackoff));
    const FleetReport &report = fleet.run();
    ASSERT_GT(report.killedInvocations, 0u);

    // Every cycle any engine retired is billed or absorbed; the
    // independently accumulated fleet totals match the per-machine
    // ledger and absorption sums.
    EXPECT_LE(relErr(report.billedCpuSeconds +
                         report.absorbedCpuSeconds,
                     report.sumMachineBilledSeconds() +
                         report.sumMachineAbsorbedSeconds()),
              1e-6);
    EXPECT_LE(relErr(report.lostCpuSeconds,
                     report.sumMachineLostSeconds()),
              1e-6);

    // Every arrival reaches exactly one terminal state.
    EXPECT_EQ(report.completions + report.abandoned +
                  report.rejectedMemory,
              report.arrivals);
}

TEST(FaultCluster, DropAbandonsEveryKilledInvocation)
{
    Cluster fleet(crashFleet(RetryPolicy::Drop));
    const FleetReport &report = fleet.run();
    ASSERT_GT(report.killedInvocations, 0u);
    EXPECT_EQ(report.retries, 0u);
    EXPECT_EQ(report.abandoned, report.killedInvocations);
    EXPECT_EQ(report.completions + report.abandoned +
                  report.rejectedMemory,
              report.arrivals);
}

TEST(FaultCluster, RetryOnceRetriesEachKillAtMostOnce)
{
    Cluster fleet(crashFleet(RetryPolicy::RetryOnce));
    const FleetReport &report = fleet.run();
    ASSERT_GT(report.killedInvocations, 0u);
    EXPECT_GT(report.retries, 0u);
    // Each kill is retried (first kill) or abandoned (second kill).
    EXPECT_EQ(report.retries + report.abandoned,
              report.killedInvocations);
}

TEST(FaultCluster, BillingModesSplitOneTotal)
{
    // Billing mode changes who pays, never what runs: the tenant-pays
    // twin of a provider-absorbs campaign executes the identical
    // schedule, so its billed seconds equal the provider's billed +
    // absorbed, and the provider twin's ledger never contains the
    // destroyed work.
    Cluster provider(crashFleet(RetryPolicy::RetryBackoff,
                                FaultBilling::ProviderAbsorbs));
    const FleetReport &absorbs = provider.run();
    Cluster tenant(crashFleet(RetryPolicy::RetryBackoff,
                              FaultBilling::TenantPays));
    const FleetReport &pays = tenant.run();

    ASSERT_GT(absorbs.killedInvocations, 0u);
    EXPECT_EQ(pays.killedInvocations, absorbs.killedInvocations);
    EXPECT_EQ(pays.absorbedCpuSeconds, 0.0);
    EXPECT_EQ(pays.absorbedUsd, 0.0);
    EXPECT_GT(absorbs.absorbedCpuSeconds, 0.0);
    EXPECT_LE(relErr(pays.billedCpuSeconds,
                     absorbs.billedCpuSeconds +
                         absorbs.absorbedCpuSeconds),
              1e-6);
    EXPECT_LE(relErr(pays.commercialUsd,
                     absorbs.commercialUsd + absorbs.absorbedUsd),
              1e-6);
}

TEST(FaultCluster, CrashClearsWarmContainers)
{
    // Same trace with and without one mid-trace crash on the only
    // machine: the crash wipes the warm pool (and the keep-alive
    // expiry tracker with it), so the run sees extra cold starts it
    // would not otherwise pay.
    ClusterConfig calm = smallFleet(1);
    Cluster baseline(calm);
    const FleetReport &warm = baseline.run();
    EXPECT_EQ(warm.crashes, 0u);
    EXPECT_GT(warm.warmStarts, 0u);

    ClusterConfig crashed = smallFleet(1);
    crashed.faults.crashAt = {{0.05, 0}};
    crashed.faults.restartDelay = 0.002;
    crashed.faults.retry = RetryPolicy::RetryOnce;
    Cluster fleet(crashed);
    const FleetReport &report = fleet.run();
    EXPECT_EQ(report.crashes, 1u);
    EXPECT_GT(report.coldStarts, warm.coldStarts);
    EXPECT_EQ(report.completions + report.abandoned +
                  report.rejectedMemory,
              report.arrivals);
}

TEST(FaultCluster, BlindMachineReceivesNoDispatches)
{
    // Machine 1 is blind from the first barrier through the whole
    // run: up, but invisible to the dispatcher. Every arrival lands
    // on machine 0 and the fleet still drains.
    ClusterConfig cfg = smallFleet(2, 200);
    cfg.faults.blindAt = {{0.0, 1}};
    cfg.faults.blindDuration = 1e6;
    Cluster fleet(cfg);
    const FleetReport &report = fleet.run();
    EXPECT_EQ(report.machines[1].dispatched, 0u);
    EXPECT_EQ(report.machines[0].dispatched, report.dispatched);
    EXPECT_EQ(report.completions, report.arrivals);
    EXPECT_EQ(report.crashes, 0u);
}

TEST(FaultCluster, SlowWindowStretchesServiceTime)
{
    // A whole-run 0.5x slowdown window on the only machine doubles
    // service times: latency and makespan stretch, nothing is lost.
    ClusterConfig calm = smallFleet(1, 200);
    Cluster baseline(calm);
    const FleetReport &fast = baseline.run();

    ClusterConfig cfg = smallFleet(1, 200);
    cfg.faults.slowAt = {{0.0, 0}};
    cfg.faults.slowDuration = 1e6;
    cfg.faults.slowFactor = 0.5;
    Cluster fleet(cfg);
    const FleetReport &slow = fleet.run();

    EXPECT_EQ(slow.completions, slow.arrivals);
    EXPECT_GT(slow.meanLatency, fast.meanLatency * 1.2);
    EXPECT_GT(slow.makespan, fast.makespan);
}

TEST(FaultCluster, RestartRevivesAndFleetDrains)
{
    // Crash the only machine early; arrivals during the outage wait,
    // the restart revives dispatch, and the whole trace still reaches
    // a terminal state.
    ClusterConfig cfg = smallFleet(1, 200);
    cfg.faults.crashAt = {{0.01, 0}};
    cfg.faults.restartDelay = 0.02;
    cfg.faults.retry = RetryPolicy::RetryBackoff;
    cfg.faults.retryMax = 4;
    cfg.faults.retryBackoff = 0.002;
    Cluster fleet(cfg);
    const FleetReport &report = fleet.run();
    EXPECT_EQ(report.crashes, 1u);
    EXPECT_GT(report.completions, 0u);
    EXPECT_EQ(report.completions + report.abandoned +
                  report.rejectedMemory,
              report.arrivals);
    EXPECT_GE(report.makespan, 0.01 + 0.02);
}

// ---------------------------------------------------------------------
// The scenario surface.
// ---------------------------------------------------------------------

TEST(FaultScenario, FaultKeysRoundTrip)
{
    const scenario::ScenarioSpec spec =
        scenario::ScenarioSpec::fromString(
            "fleet = cascade-5218:2\n"
            "fault.seed = 99\n"
            "fault.crash.mtbf = 6\n"
            "fault.crash.restart = 2\n"
            "fault.crash.at = 0.5@1,2.0\n"
            "fault.slow.mtbf = 4\n"
            "fault.slow.duration = 1.5\n"
            "fault.slow.factor = 0.6\n"
            "fault.blind.mtbf = 5\n"
            "fault.blind.duration = 1\n"
            "fault.retry = retry-backoff\n"
            "fault.retry.max = 4\n"
            "fault.retry.backoff = 0.25\n"
            "fault.billing = tenant-pays\n");
    EXPECT_EQ(spec.fault.seed, 99u);
    EXPECT_DOUBLE_EQ(spec.fault.crashMtbf, 6.0);
    EXPECT_DOUBLE_EQ(spec.fault.restartDelay, 2.0);
    ASSERT_EQ(spec.fault.crashAt.size(), 2u);
    EXPECT_DOUBLE_EQ(spec.fault.crashAt[0].at, 0.5);
    EXPECT_EQ(spec.fault.crashAt[0].machine, 1u);
    EXPECT_DOUBLE_EQ(spec.fault.slowMtbf, 4.0);
    EXPECT_DOUBLE_EQ(spec.fault.slowDuration, 1.5);
    EXPECT_DOUBLE_EQ(spec.fault.slowFactor, 0.6);
    EXPECT_DOUBLE_EQ(spec.fault.blindMtbf, 5.0);
    EXPECT_DOUBLE_EQ(spec.fault.blindDuration, 1.0);
    EXPECT_EQ(spec.fault.retry, RetryPolicy::RetryBackoff);
    EXPECT_EQ(spec.fault.retryMax, 4u);
    EXPECT_DOUBLE_EQ(spec.fault.retryBackoff, 0.25);
    EXPECT_EQ(spec.fault.billing, FaultBilling::TenantPays);
    EXPECT_TRUE(spec.fault.enabled());
    spec.fault.validate();
}

TEST(FaultScenario, EveryKnownKeyIsSettable)
{
    // set() and the file parser share one schema: every advertised
    // key must be applicable programmatically with a sane value.
    const auto valueFor = [](const std::string &key) -> std::string {
        if (key.size() > 3 &&
            key.compare(key.size() - 3, 3, ".at") == 0)
            return "0.5@0";
        if (key == "fault.retry")
            return "drop";
        if (key == "fault.billing")
            return "tenant-pays";
        if (key == "fault.retry.max")
            return "2";
        if (key == "fault.slow.factor" ||
            key == "burst.idle_fraction" ||
            key == "diurnal.amplitude" || key == "burst.on" ||
            key == "burst.off")
            return "0.5";
        if (key == "fleet")
            return "cascade-5218:1";
        if (key == "functions")
            return "all";
        if (key == "policy")
            return "round-robin";
        if (key == "scheduler")
            return "event";
        if (key == "traffic")
            return "poisson";
        if (key == "trace.path")
            return "trace.csv";
        if (key == "azure.path")
            return "azure.csv";
        if (key == "arrivals")
            return "streaming";
        if (key == "tables")
            return "t.profile";
        if (key == "tables_out")
            return "t-out";
        return "1";
    };
    scenario::ScenarioSpec spec;
    for (const std::string &key :
         scenario::ScenarioSpec::knownKeys())
        spec.set(key, valueFor(key));
}

TEST(FaultScenario, UnknownKeyPointsAtFileAndLine)
{
    const std::string path = "test_fault_typo.scenario";
    {
        std::ofstream out(path);
        out << "fleet = cascade-5218:1\n"
            << "seed  = 3\n"
            << "fault.crash.mtfb = 6\n";
    }
    EXPECT_EXIT(scenario::ScenarioSpec::fromFile(path),
                ::testing::ExitedWithCode(1),
                "test_fault_typo\\.scenario:3: unknown scenario key "
                "'fault\\.crash\\.mtfb'");
    std::remove(path.c_str());
}

TEST(FaultScenario, UnknownKeyFromStringStillFatals)
{
    EXPECT_EXIT(
        scenario::ScenarioSpec::fromString("fault.crsh.mtbf = 6\n"),
        ::testing::ExitedWithCode(1),
        "unknown scenario key 'fault\\.crsh\\.mtbf'");
}

TEST(FaultScenario, ConfigReaderWhereLocatesDefinitions)
{
    ConfigReader config = ConfigReader::fromString(
        "a = 1\n"
        "\n"
        "# comment\n"
        "b = 2\n",
        "demo.conf");
    EXPECT_EQ(config.lineOf("a"), 1);
    EXPECT_EQ(config.lineOf("b"), 4);
    EXPECT_EQ(config.where("a"), "demo.conf:1");
    EXPECT_EQ(config.where("b"), "demo.conf:4");
    // Programmatic overrides have no line; the source still names
    // the origin.
    config.set("c", "3");
    EXPECT_EQ(config.lineOf("c"), 0);
    EXPECT_EQ(config.where("c"), "demo.conf");
    // In-memory text with no source: nothing to point at.
    ConfigReader anonymous = ConfigReader::fromString("a = 1\n");
    EXPECT_EQ(anonymous.where("missing"), "");
    EXPECT_EQ(anonymous.where("a"), "<config>:1");
}

// ---------------------------------------------------------------------
// Threaded chaos smoke (runs under the CI ThreadSanitizer filter).
// ---------------------------------------------------------------------

TEST(ChaosSmoke, ThreadedChaosRunIsDeterministic)
{
    ClusterConfig base = crashFleet(RetryPolicy::RetryBackoff);
    base.faults.slowMtbf = 0.03;
    base.faults.slowDuration = 0.01;
    base.faults.slowFactor = 0.6;
    base.faults.blindMtbf = 0.03;
    base.faults.blindDuration = 0.008;
    base.threads = 4;

    Cluster first(base);
    const FleetReport &a = first.run();
    Cluster second(base);
    const FleetReport &b = second.run();
    EXPECT_TRUE(identicalTotals(a, b));
    EXPECT_GT(a.killedInvocations, 0u);
    EXPECT_LE(relErr(a.billedCpuSeconds + a.absorbedCpuSeconds,
                     a.sumMachineBilledSeconds() +
                         a.sumMachineAbsorbedSeconds()),
              1e-6);
}

} // namespace
} // namespace litmus::cluster
