/**
 * @file
 * Tests for the memoized profile store: calibrate-once semantics,
 * concurrent request coalescing, put/find, and the dedicated-sweep
 * entry point.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/profile_store.h"

namespace litmus::pricing
{
namespace
{

/** A cheap synthetic profile (no simulation). */
CalibrationProfile
syntheticProfile(const std::string &machine)
{
    CalibrationProfile profile;
    profile.machine = machine;
    profile.referenceSolo["probe-fn"] = {0.5, 0.25};
    return profile;
}

TEST(ProfileStore, GetOrCalibrateMemoizes)
{
    ProfileStore &store = ProfileStore::instance();
    store.clear();

    int calls = 0;
    const auto produce = [&calls] {
        ++calls;
        return syntheticProfile("memo-test");
    };
    const auto first = store.getOrCalibrate("memo", produce);
    const auto second = store.getOrCalibrate("memo", produce);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(first.get(), second.get()); // same shared artifact
    EXPECT_EQ(first->machine, "memo-test");

    // A different key calibrates independently.
    store.getOrCalibrate("memo2", produce);
    EXPECT_EQ(calls, 2);
}

TEST(ProfileStore, ConcurrentRequestsCalibrateOnce)
{
    ProfileStore &store = ProfileStore::instance();
    store.clear();

    std::atomic<int> calls{0};
    const auto produce = [&calls] {
        calls.fetch_add(1);
        // Long enough that every thread arrives mid-calibration.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return syntheticProfile("concurrent");
    };

    std::vector<std::thread> threads;
    std::vector<ProfileStore::ProfilePtr> results(8);
    for (unsigned i = 0; i < results.size(); ++i) {
        threads.emplace_back([&, i] {
            results[i] = store.getOrCalibrate("concurrent", produce);
        });
    }
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(calls.load(), 1);
    for (const auto &result : results) {
        ASSERT_TRUE(result);
        EXPECT_EQ(result.get(), results[0].get());
    }
}

TEST(ProfileStore, PutFindClear)
{
    ProfileStore &store = ProfileStore::instance();
    store.clear();

    EXPECT_EQ(store.find("artifact"), nullptr);
    store.put("artifact", syntheticProfile("put-machine"));
    const auto found = store.find("artifact");
    ASSERT_TRUE(found);
    EXPECT_EQ(found->machine, "put-machine");

    // put replaces.
    store.put("artifact", syntheticProfile("put-machine-v2"));
    EXPECT_EQ(store.find("artifact")->machine, "put-machine-v2");

    store.clear();
    EXPECT_EQ(store.find("artifact"), nullptr);
}

TEST(ProfileStore, DedicatedCalibratesRealProfileOnce)
{
    // A tiny registered machine keeps the real calibration sweep
    // cheap: 4 cores -> a single stress level.
    sim::MachineConfig tiny = sim::MachineCatalog::get("cascade-5218");
    tiny.name = "store-test-4";
    tiny.cores = 4;
    sim::MachineCatalog::registerPreset(tiny);

    ProfileStore &store = ProfileStore::instance();
    store.clear();
    const auto profile = store.dedicated("store-test-4");
    ASSERT_TRUE(profile);
    EXPECT_EQ(profile->machine, "store-test-4");
    EXPECT_FALSE(profile->referenceSolo.empty());
    for (workload::Language lang : workload::allLanguages()) {
        EXPECT_GT(profile->congestion.baseline(lang).privCpi, 0.0);
    }

    // Second request: the cached artifact, not a new sweep.
    EXPECT_EQ(store.dedicated("store-test-4").get(), profile.get());
}

TEST(ProfileStore, DedicatedRejectsUnknownMachine)
{
    EXPECT_EXIT(ProfileStore::instance().dedicated("not-a-machine"),
                ::testing::ExitedWithCode(1), "unknown machine");
}

} // namespace
} // namespace litmus::pricing
