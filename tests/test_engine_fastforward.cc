/**
 * @file
 * Differential tests for the steady-state fast-forward engine.
 *
 * The fast-forward core must be *bit-identical* to exact quantum
 * stepping: every task counter, every engine statistic, every
 * per-quantum observer sample, and every fleet billing total has to
 * match to the last bit at any seed. These tests run randomized
 * workloads — mixed phase programs, oversubscribed CPUs (slice
 * rotations), probes, SMT, dual sockets, POPPA freezing, completion
 * churn — through both modes and compare everything with exact
 * equality, then check the fast path actually engages (a replay rate
 * of zero would make the equivalence vacuous).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "core/poppa.h"
#include "sim/engine.h"
#include "workload/program.h"
#include "sim/machine_catalog.h"

namespace litmus::sim
{
namespace
{

using workload::Phase;
using workload::PhaseProgram;
using workload::ProgramTask;

/** One per-quantum observer sample, captured bit-for-bit. */
struct Sample
{
    Seconds now = 0;
    double l3LatencyNs = 0;
    double memLatencyNs = 0;
    double l3Utilization = 0;
    double memUtilization = 0;
};

/** Everything a differential run captures. */
struct Capture
{
    std::vector<TaskCounters> completions;
    std::vector<Seconds> completionTimes;
    std::vector<TaskCounters> survivors; // live tasks at the end
    std::vector<Sample> samples;
    MachineCounters machine;
    Seconds finalNow = 0;
    double statQuanta = 0;
    double statCompletions = 0;
    double statInstructions = 0;
    double l3UtilMean = 0;
    double memUtilMean = 0;
    double runningMean = 0;
    double freqMean = 0;
    double ffQuanta = 0;
    double solves = 0;
};

Phase
randomPhase(Rng &rng)
{
    Phase p;
    p.name = "p";
    p.instructions = rng.uniform(0.2e6, 30e6);
    p.demand.cpi0 = rng.uniform(0.4, 2.5);
    p.demand.l2Mpki = rng.chance(0.2) ? 0.0 : rng.uniform(0.1, 35.0);
    p.demand.l3WorkingSet =
        static_cast<Bytes>(rng.uniform(64.0 * 1024, 24e6));
    p.demand.l3MissBase = rng.uniform(0.0, 0.9);
    p.demand.mlp = rng.uniform(1.0, 8.0);
    return p;
}

std::unique_ptr<ProgramTask>
randomTask(Rng &rng, unsigned hw_threads, int index)
{
    std::vector<Phase> phases;
    const int count = static_cast<int>(rng.range(1, 4));
    for (int i = 0; i < count; ++i)
        phases.push_back(randomPhase(rng));
    const Instructions probe =
        rng.chance(0.3) ? Instructions(2e6) : Task::noProbe;
    // Built by append: GCC 12's -O3 -Wrestrict false-positives on the
    // operator+ temporary chain.
    std::string name = "t";
    name += std::to_string(index);
    auto task = std::make_unique<ProgramTask>(
        std::move(name), PhaseProgram(std::move(phases)), probe);
    if (rng.chance(0.5)) {
        // Pin to a small pool so CPUs oversubscribe and slices rotate.
        task->setAffinity({static_cast<unsigned>(
            rng.below(std::max(1u, hw_threads / 2)))});
    }
    return task;
}

/**
 * Run one randomized workload in the given mode and capture every
 * observable output bit-for-bit.
 */
Capture
runWorkload(std::uint64_t seed, bool fast_forward)
{
    Rng rng(seed);

    MachineConfig cfg = rng.chance(0.25)
                            ? MachineCatalog::get("cascade-5218-dual")
                            : MachineCatalog::get("cascade-5218");
    if (cfg.sockets == 1) {
        cfg.cores = static_cast<unsigned>(rng.range(2, 6));
        if (rng.chance(0.3))
            cfg.smtWays = 2;
    }
    const FrequencyPolicy policy =
        rng.chance(0.3) ? FrequencyPolicy::Turbo : FrequencyPolicy::Fixed;

    Engine engine(cfg, policy);
    engine.setFastForward(fast_forward);

    Capture cap;
    engine.onCompletion([&](Task &t) {
        cap.completions.push_back(t.counters());
        cap.completionTimes.push_back(t.completionTime());
    });
    engine.onQuantum([&](Seconds now, const SharedState &s) {
        cap.samples.push_back({now, s.l3LatencyNs, s.memLatencyNs,
                               s.l3Utilization, s.memUtilization});
    });

    // Interleave batches of task launches with run segments whose
    // durations are deliberately awkward (non-multiples of the
    // quantum) so phase boundaries land mid-run.
    const int waves = static_cast<int>(rng.range(2, 4));
    int index = 0;
    for (int wave = 0; wave < waves; ++wave) {
        const int launches = static_cast<int>(rng.range(1, 5));
        for (int i = 0; i < launches; ++i)
            engine.add(randomTask(rng, cfg.hwThreads(), index++));
        engine.run(rng.uniform(0.8e-3, 12e-3));
    }
    engine.runUntilIdle();
    engine.run(1.1e-3); // trailing idle stretch exercises idle replay

    for (Task *t : engine.liveTasks())
        cap.survivors.push_back(t->counters());
    cap.machine = engine.machineCounters();
    cap.finalNow = engine.now();
    const EngineStats &st = engine.stats();
    cap.statQuanta = st.quanta.value();
    cap.statCompletions = st.completions.value();
    cap.statInstructions = st.instructions.value();
    cap.l3UtilMean = st.l3Utilization.accumulator().mean();
    cap.memUtilMean = st.memUtilization.accumulator().mean();
    cap.runningMean = st.runningThreads.accumulator().mean();
    cap.freqMean = st.frequencyGhz.accumulator().mean();
    cap.ffQuanta = st.ffQuanta.value();
    cap.solves = st.solves.value();
    return cap;
}

void
expectSameCounters(const TaskCounters &a, const TaskCounters &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stallSharedCycles, b.stallSharedCycles);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.l3Misses, b.l3Misses);
    EXPECT_EQ(a.contextSwitches, b.contextSwitches);
}

void
expectBitIdentical(const Capture &exact, const Capture &fast)
{
    ASSERT_EQ(exact.completions.size(), fast.completions.size());
    for (std::size_t i = 0; i < exact.completions.size(); ++i) {
        expectSameCounters(exact.completions[i], fast.completions[i]);
        EXPECT_EQ(exact.completionTimes[i], fast.completionTimes[i]);
    }
    ASSERT_EQ(exact.survivors.size(), fast.survivors.size());
    for (std::size_t i = 0; i < exact.survivors.size(); ++i)
        expectSameCounters(exact.survivors[i], fast.survivors[i]);

    ASSERT_EQ(exact.samples.size(), fast.samples.size());
    for (std::size_t i = 0; i < exact.samples.size(); ++i) {
        EXPECT_EQ(exact.samples[i].now, fast.samples[i].now);
        EXPECT_EQ(exact.samples[i].l3LatencyNs,
                  fast.samples[i].l3LatencyNs);
        EXPECT_EQ(exact.samples[i].memLatencyNs,
                  fast.samples[i].memLatencyNs);
        EXPECT_EQ(exact.samples[i].l3Utilization,
                  fast.samples[i].l3Utilization);
        EXPECT_EQ(exact.samples[i].memUtilization,
                  fast.samples[i].memUtilization);
    }

    EXPECT_EQ(exact.machine.l3Accesses, fast.machine.l3Accesses);
    EXPECT_EQ(exact.machine.l3Misses, fast.machine.l3Misses);
    EXPECT_EQ(exact.machine.time, fast.machine.time);
    EXPECT_EQ(exact.finalNow, fast.finalNow);
    EXPECT_EQ(exact.statQuanta, fast.statQuanta);
    EXPECT_EQ(exact.statCompletions, fast.statCompletions);
    EXPECT_EQ(exact.statInstructions, fast.statInstructions);
    EXPECT_EQ(exact.l3UtilMean, fast.l3UtilMean);
    EXPECT_EQ(exact.memUtilMean, fast.memUtilMean);
    EXPECT_EQ(exact.runningMean, fast.runningMean);
    EXPECT_EQ(exact.freqMean, fast.freqMean);
}

TEST(EngineFastForward, RandomizedDifferentialBitIdentical)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const Capture exact = runWorkload(seed, false);
        const Capture fast = runWorkload(seed, true);
        expectBitIdentical(exact, fast);
        // Exact mode must never replay; fast mode must actually fast-
        // forward a meaningful share of quanta or the equivalence
        // above proves nothing.
        EXPECT_EQ(exact.ffQuanta, 0.0);
        EXPECT_GT(fast.ffQuanta, 0.2 * fast.statQuanta);
        // And fewer quanta solved means the solver left the hot loop.
        EXPECT_LT(fast.solves, exact.solves);
    }
}

TEST(EngineFastForward, SteadyWorkloadReplaysAlmostEverything)
{
    auto cfg = MachineCatalog::get("cascade-5218");
    cfg.cores = 8;
    Engine engine(cfg);
    for (int i = 0; i < 8; ++i) {
        ResourceDemand d;
        d.cpi0 = 0.8 + 0.1 * i;
        d.l2Mpki = 2.0 * i;
        d.l3WorkingSet = 2_MiB;
        d.l3MissBase = 0.1;
        d.mlp = 4.0;
        std::string name = "gen";
        name += std::to_string(i);
        engine.add(std::make_unique<workload::EndlessTask>(
            std::move(name), d));
    }
    engine.run(0.5);
    const EngineStats &st = engine.stats();
    EXPECT_EQ(st.quanta.value(), 10000.0);
    // One solve to build the plan, replay from there on.
    EXPECT_GT(st.ffQuanta.value(), 0.99 * st.quanta.value());
    // Simulated time is conserved exactly through the replay path.
    EXPECT_NEAR(engine.now(), 0.5, 1e-9);
}

TEST(EngineFastForward, PoppaSamplingIdenticalAcrossModes)
{
    // POPPA freezes co-runners mid-run — the harshest scheduler-
    // mutation pattern an observer can produce. Estimates and stall
    // overhead must not depend on the engine mode.
    auto runPoppa = [](bool ff) {
        auto cfg = MachineCatalog::get("cascade-5218");
        cfg.cores = 4;
        Engine engine(cfg);
        engine.setFastForward(ff);
        pricing::PoppaSampler sampler(engine,
                                      pricing::PoppaConfig{5e-3, 1e-3});
        std::vector<std::uint64_t> ids;
        for (int i = 0; i < 4; ++i) {
            ResourceDemand d;
            d.cpi0 = 1.0;
            d.l2Mpki = 5.0 + i;
            d.l3WorkingSet = 1_MiB;
            d.l3MissBase = 0.2;
            d.mlp = 4.0;
            std::string name = "g";
            name += std::to_string(i);
            Task &t = engine.add(std::make_unique<workload::EndlessTask>(
                std::move(name), d));
            ids.push_back(t.id());
        }
        engine.run(0.08);
        std::vector<double> estimates;
        for (std::uint64_t id : ids)
            estimates.push_back(sampler.estimatedSoloCpi(id));
        return std::tuple(estimates, sampler.stallOverhead(),
                          sampler.windowsOpened(),
                          engine.stats().ffQuanta.value());
    };
    const auto [estExact, stallExact, winExact, ffExact] =
        runPoppa(false);
    const auto [estFast, stallFast, winFast, ffFast] = runPoppa(true);
    EXPECT_EQ(estExact, estFast);
    EXPECT_EQ(stallExact, stallFast);
    EXPECT_EQ(winExact, winFast);
    EXPECT_EQ(ffExact, 0.0);
    EXPECT_GT(ffFast, 0.0);
}

class ClusterDifferential : public ::testing::TestWithParam<Seconds>
{
};

TEST_P(ClusterDifferential, TotalsIdenticalAcrossModes)
{
    // The whole fleet path: Poisson arrivals, warm pools, keep-alive
    // expiry, epoch batching. Billing and serving totals must be
    // bit-identical with and without fast-forward (which also covers
    // the cluster's batched idle-epoch stepping). The second epoch
    // parameter is deliberately not a whole number of quanta: each
    // epoch then advances more than cfg.epoch, and the idle batch must
    // be computed against the covering-quantum span or fast mode
    // overshoots arrivals that exact mode dispatches earlier.
    auto runFleet = [](bool exact, Seconds epoch) {
        cluster::ClusterConfig cfg;
        cfg.fleet = {{"cascade-5218", 2}};
        cfg.policy = cluster::DispatchPolicy::WarmthAware;
        cfg.arrivalsPerSecond = 400.0;
        cfg.invocations = 300;
        cfg.keepAlive = 0.05; // short: exercises expiry sweeps
        cfg.seed = 11;
        cfg.threads = 1;
        cfg.epoch = epoch;
        cfg.exactQuantum = exact;
        cluster::Cluster fleet(cfg);
        return fleet.run();
    };
    const cluster::FleetReport exact = runFleet(true, GetParam());
    const cluster::FleetReport fast = runFleet(false, GetParam());
    EXPECT_EQ(exact.billedCpuSeconds, fast.billedCpuSeconds);
    EXPECT_EQ(exact.commercialUsd, fast.commercialUsd);
    EXPECT_EQ(exact.litmusUsd, fast.litmusUsd);
    EXPECT_EQ(exact.completions, fast.completions);
    EXPECT_EQ(exact.coldStarts, fast.coldStarts);
    EXPECT_EQ(exact.warmStarts, fast.warmStarts);
    EXPECT_EQ(exact.rejectedMemory, fast.rejectedMemory);
    EXPECT_EQ(exact.makespan, fast.makespan);
    EXPECT_EQ(exact.meanLatency, fast.meanLatency);
    ASSERT_EQ(exact.machines.size(), fast.machines.size());
    for (std::size_t i = 0; i < exact.machines.size(); ++i) {
        EXPECT_EQ(exact.machines[i].billedCpuSeconds,
                  fast.machines[i].billedCpuSeconds);
        EXPECT_EQ(exact.machines[i].dispatched,
                  fast.machines[i].dispatched);
        EXPECT_EQ(exact.machines[i].quanta, fast.machines[i].quanta);
    }
}

INSTANTIATE_TEST_SUITE_P(Epochs, ClusterDifferential,
                         ::testing::Values(1e-3, 130e-6));

TEST(EngineFastForward, ExactQuantumFlagDisablesReplay)
{
    auto cfg = MachineCatalog::get("cascade-5218");
    cfg.cores = 2;
    Engine engine(cfg);
    engine.setFastForward(false);
    EXPECT_FALSE(engine.fastForward());
    engine.add(std::make_unique<workload::EndlessTask>(
        "g", ResourceDemand{}));
    engine.run(0.01);
    EXPECT_EQ(engine.stats().ffQuanta.value(), 0.0);

    // Re-enabling picks the fast path back up mid-run.
    engine.setFastForward(true);
    engine.run(0.01);
    EXPECT_GT(engine.stats().ffQuanta.value(), 0.0);
}

TEST(EngineFastForward, DefaultFlagAppliesToNewEngines)
{
    ASSERT_TRUE(Engine::defaultFastForward());
    Engine::setDefaultFastForward(false);
    {
        auto cfg = MachineCatalog::get("cascade-5218");
        cfg.cores = 2;
        Engine engine(cfg);
        EXPECT_FALSE(engine.fastForward());
    }
    Engine::setDefaultFastForward(true);
    auto cfg = MachineCatalog::get("cascade-5218");
    cfg.cores = 2;
    Engine engine(cfg);
    EXPECT_TRUE(engine.fastForward());
}

} // namespace
} // namespace litmus::sim
