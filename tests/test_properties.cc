/**
 * @file
 * Cross-module property sweeps: pricing and simulation invariants
 * that must hold across seeds, population sizes, machines, and probe
 * windows. These are the "no matter how you configure it" guarantees
 * a provider relies on.
 */

#include <gtest/gtest.h>

#include "common/stats.h"
#include "core/experiment.h"
#include "sim/machine_catalog.h"

namespace litmus::pricing
{
namespace
{

/** One shared small calibration (slow part) reused by every sweep. */
const DiscountModel &
sharedModel()
{
    static const DiscountModel model = [] {
        CalibrationConfig cfg;
        cfg.levels = {4, 10, 16, 22};
        cfg.referencePool = {&workload::functionByName("thum-py"),
                             &workload::functionByName("bfs-py"),
                             &workload::functionByName("cur-nj"),
                             &workload::functionByName("aes-go")};
        cfg.warmup = 0.03;
        const CalibrationProfile result = calibrate(cfg);
        return DiscountModel(result.congestion, result.performance);
    }();
    return model;
}

/** Pricing invariants must hold for any seed. */
class SeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, PricingInvariants)
{
    ExperimentConfig cfg;
    cfg.coRunners = 8;
    cfg.layoutOnePerCore();
    cfg.subjects = {&workload::functionByName("aes-py"),
                    &workload::functionByName("geo-go")};
    cfg.repetitions = 2;
    cfg.warmup = 0.05;
    cfg.seed = GetParam();
    const auto result = runPricingExperiment(cfg, sharedModel());

    for (const auto &row : result.rows) {
        // Discounts, never surcharges; and never free.
        EXPECT_LE(row.litmusPrice, 1.0 + 1e-9) << row.name;
        EXPECT_GT(row.litmusPrice, 0.3) << row.name;
        EXPECT_LE(row.idealPrice, 1.0 + 1e-9) << row.name;
        EXPECT_GT(row.idealPrice, 0.3) << row.name;
        // Predictions are slowdowns.
        EXPECT_GE(row.predictedPriv, 1.0) << row.name;
        EXPECT_GE(row.predictedShared, 1.0) << row.name;
        // Error decomposition holds.
        EXPECT_NEAR(row.privError + row.sharedError, row.totalError,
                    1e-9)
            << row.name;
        // Litmus stays within 10% of ideal per function.
        EXPECT_NEAR(row.litmusPrice, row.idealPrice, 0.10) << row.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1ull, 7ull, 42ull, 1234ull,
                                           0xfeedull));

/** More co-runners never means a smaller ideal discount (monotone
 *  congestion), within a small tolerance for churn randomness. */
class PopulationSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PopulationSweep, CongestionGrowsWithPopulation)
{
    const unsigned n = GetParam();
    auto run = [&](unsigned count) {
        ExperimentConfig cfg;
        cfg.coRunners = count;
        cfg.layoutOnePerCore();
        cfg.subjects = {&workload::functionByName("pager-py")};
        cfg.repetitions = 2;
        cfg.warmup = 0.05;
        return runSlowdownExperiment(cfg).gmeanTotalSlowdown;
    };
    EXPECT_GE(run(n + 8), run(n) - 0.02) << "population " << n;
}

INSTANTIATE_TEST_SUITE_P(Counts, PopulationSweep,
                         ::testing::Values(2u, 8u, 14u, 20u));

/** Probe windows: any length inside the startup produces a usable,
 *  bounded estimate. */
class WindowSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(WindowSweep, EstimatesStayBounded)
{
    ExperimentConfig cfg;
    cfg.coRunners = 8;
    cfg.layoutOnePerCore();
    cfg.subjects = {&workload::functionByName("auth-go"),
                    &workload::functionByName("chame-py")};
    cfg.repetitions = 1;
    cfg.warmup = 0.05;
    cfg.probeWindowOverride = GetParam();
    const auto result = runPricingExperiment(cfg, sharedModel());
    for (const auto &row : result.rows) {
        EXPECT_GT(row.litmusPrice, 0.5) << row.name;
        EXPECT_LE(row.litmusPrice, 1.0 + 1e-9) << row.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(3e6, 8e6, 20e6, 45e6, 80e6));

/** The Ice Lake preset supports the whole pipeline too. */
TEST(MachineSweep, IceLakePipeline)
{
    CalibrationConfig ccfg;
    ccfg.machine = sim::MachineCatalog::get("icelake-4314");
    ccfg.levels = {4, 8, 12};
    ccfg.referencePool = {&workload::functionByName("gzip-py"),
                          &workload::functionByName("profile-go")};
    ccfg.warmup = 0.03;
    const CalibrationProfile cal = calibrate(ccfg);
    const DiscountModel model(cal.congestion, cal.performance);

    ExperimentConfig cfg;
    cfg.machine = ccfg.machine;
    cfg.coRunners = 10;
    cfg.layoutOnePerCore();
    cfg.subjects = {&workload::functionByName("rate-go")};
    cfg.repetitions = 2;
    cfg.warmup = 0.05;
    const auto result = runPricingExperiment(cfg, model);
    EXPECT_GT(result.litmusDiscount(), 0.0);
    EXPECT_NEAR(result.litmusDiscount(), result.idealDiscount(), 0.05);
}

/** Memory admission: a tiny machine defers launches instead of
 *  overcommitting. */
TEST(MemoryAdmission, DefersWhenFull)
{
    auto machine = sim::MachineCatalog::get("cascade-5218");
    machine.memoryCapacity = 2_GiB; // room for only a few functions

    sim::Engine engine(machine);
    workload::InvokerConfig icfg;
    icfg.placement = workload::InvokerConfig::Placement::Pooled;
    icfg.targetCount = 30;
    icfg.cpuPool = {0, 1, 2, 3};
    icfg.functionPool = {&workload::functionByName("recogn-py")}; // 1 GiB
    workload::Invoker invoker(engine, icfg);
    engine.onCompletion(
        [&](sim::Task &task) { invoker.handleCompletion(task); });
    invoker.start();

    EXPECT_LE(invoker.committedMemory(), machine.memoryCapacity);
    EXPECT_LE(invoker.liveCount(), 2u);
    EXPECT_GT(invoker.deferredCount(), 0u);
}

TEST(MemoryAdmission, DisabledAllowsOvercommit)
{
    auto machine = sim::MachineCatalog::get("cascade-5218");
    machine.memoryCapacity = 2_GiB;

    sim::Engine engine(machine);
    workload::InvokerConfig icfg;
    icfg.placement = workload::InvokerConfig::Placement::Pooled;
    icfg.targetCount = 10;
    icfg.cpuPool = {0, 1};
    icfg.functionPool = {&workload::functionByName("recogn-py")};
    icfg.enforceMemoryCapacity = false;
    workload::Invoker invoker(engine, icfg);
    invoker.start();
    EXPECT_EQ(invoker.liveCount(), 10u);
    EXPECT_GT(invoker.committedMemory(), machine.memoryCapacity);
}

TEST(MemoryAdmission, BackfillsSmallerFunctions)
{
    auto machine = sim::MachineCatalog::get("cascade-5218");
    machine.memoryCapacity = 3_GiB;

    sim::Engine engine(machine);
    workload::InvokerConfig icfg;
    icfg.placement = workload::InvokerConfig::Placement::Pooled;
    icfg.targetCount = 16;
    icfg.cpuPool = {0, 1, 2, 3};
    // Mixed pool: 1 GiB recogn-py and 128 MiB fib-py; the placer
    // should keep admitting small functions once the big ones fill
    // memory.
    icfg.functionPool = {&workload::functionByName("recogn-py"),
                         &workload::functionByName("fib-py")};
    icfg.seed = 5;
    workload::Invoker invoker(engine, icfg);
    invoker.start();
    EXPECT_LE(invoker.committedMemory(), machine.memoryCapacity);
    EXPECT_GE(invoker.liveCount(), 8u);
}

} // namespace
} // namespace litmus::pricing
