/**
 * @file
 * Differential and contract suite for streaming arrival generation:
 * lazily pulled arrivals must reproduce the materialized-upfront
 * oracle bit-for-bit — every FleetReport field, every per-machine
 * ledger record — for every built-in model (poisson / diurnal /
 * burst / trace / azure), at every thread count, on both scheduler
 * backends, and under a chaos campaign.
 *
 * Also covers the ArrivalStream contract itself (peek/next, seq
 * numbering, flow counters, ordering and null-spec enforcement, the
 * mutual open()/generate() defaults), the azure-dataset ingester
 * (bucket sampling, suite mapping, caps), and the new scenario keys.
 */

#include <algorithm>
#include <cmath>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/traffic_source.h"
#include "scenario/azure_trace.h"
#include "scenario/scenario_runner.h"

namespace litmus
{
namespace
{

using cluster::ArrivalStream;
using cluster::Invocation;
using workload::FunctionSpec;

std::string
writeTempFile(const std::string &name, const std::string &text)
{
    const std::string path = ::testing::TempDir() + name;
    std::ofstream file(path);
    file << text;
    return path;
}

std::vector<const FunctionSpec *>
onePool()
{
    return {&workload::functionByName("float-py")};
}

/** Drain a stream into a vector (upfront-shaped, for comparisons). */
std::vector<Invocation>
drain(ArrivalStream &stream)
{
    std::vector<Invocation> out;
    Invocation inv;
    while (stream.next(inv))
        out.push_back(inv);
    return out;
}

// ---- streaming vs upfront differential -------------------------------

/** One run's complete observable outcome (test_event_core's harness,
 *  pointed at the delivery-mode axis instead of the backend axis). */
struct RunOutcome
{
    cluster::FleetReport report;
    std::vector<std::vector<pricing::BillRecord>> ledgers;
};

RunOutcome
runWith(scenario::ScenarioSpec spec, bool upfront, unsigned threads,
        cluster::SchedulerBackend sched =
            cluster::SchedulerBackend::Event)
{
    spec.upfrontArrivals = upfront;
    spec.threads = threads;
    spec.scheduler = sched;
    scenario::ScenarioRunner runner(std::move(spec));
    RunOutcome out;
    out.report = runner.run();
    for (std::size_t m = 0; m < out.report.machines.size(); ++m)
        out.ledgers.push_back(
            runner.cluster().ledger(static_cast<unsigned>(m)).records());
    return out;
}

/** Bit-exact comparison of everything a run reports. The arrival-flow
 *  counters are deliberately excluded: the two delivery modes buffer
 *  differently by design — that is the entire point. */
void
expectIdentical(const RunOutcome &a, const RunOutcome &b)
{
    const cluster::FleetReport &x = a.report;
    const cluster::FleetReport &y = b.report;
    EXPECT_EQ(x.arrivals, y.arrivals);
    EXPECT_EQ(x.dispatched, y.dispatched);
    EXPECT_EQ(x.rejectedMemory, y.rejectedMemory);
    EXPECT_EQ(x.completions, y.completions);
    EXPECT_EQ(x.coldStarts, y.coldStarts);
    EXPECT_EQ(x.warmStarts, y.warmStarts);
    EXPECT_EQ(x.billedCpuSeconds, y.billedCpuSeconds);
    EXPECT_EQ(x.commercialUsd, y.commercialUsd);
    EXPECT_EQ(x.litmusUsd, y.litmusUsd);
    EXPECT_EQ(x.meanLatency, y.meanLatency);
    EXPECT_EQ(x.makespan, y.makespan);
    EXPECT_EQ(x.crashes, y.crashes);
    EXPECT_EQ(x.killedInvocations, y.killedInvocations);
    EXPECT_EQ(x.retries, y.retries);
    EXPECT_EQ(x.abandoned, y.abandoned);
    EXPECT_EQ(x.lostCpuSeconds, y.lostCpuSeconds);
    EXPECT_EQ(x.absorbedCpuSeconds, y.absorbedCpuSeconds);
    EXPECT_EQ(x.absorbedUsd, y.absorbedUsd);
    EXPECT_TRUE(cluster::identicalTotals(x, y));

    ASSERT_EQ(x.machines.size(), y.machines.size());
    for (std::size_t i = 0; i < x.machines.size(); ++i) {
        const cluster::MachineReport &m = x.machines[i];
        const cluster::MachineReport &n = y.machines[i];
        EXPECT_EQ(m.dispatched, n.dispatched) << "machine " << i;
        EXPECT_EQ(m.coldStarts, n.coldStarts) << "machine " << i;
        EXPECT_EQ(m.warmStarts, n.warmStarts) << "machine " << i;
        EXPECT_EQ(m.completions, n.completions) << "machine " << i;
        EXPECT_EQ(m.billedCpuSeconds, n.billedCpuSeconds)
            << "machine " << i;
        EXPECT_EQ(m.commercialUsd, n.commercialUsd) << "machine " << i;
        EXPECT_EQ(m.litmusUsd, n.litmusUsd) << "machine " << i;
        EXPECT_EQ(m.meanLatency, n.meanLatency) << "machine " << i;
        EXPECT_EQ(m.quanta, n.quanta) << "machine " << i;
        EXPECT_EQ(m.crashes, n.crashes) << "machine " << i;
        EXPECT_EQ(m.killedInvocations, n.killedInvocations)
            << "machine " << i;
    }

    ASSERT_EQ(a.ledgers.size(), b.ledgers.size());
    for (std::size_t m = 0; m < a.ledgers.size(); ++m) {
        ASSERT_EQ(a.ledgers[m].size(), b.ledgers[m].size())
            << "ledger " << m;
        for (std::size_t r = 0; r < a.ledgers[m].size(); ++r) {
            const pricing::BillRecord &p = a.ledgers[m][r];
            const pricing::BillRecord &q = b.ledgers[m][r];
            EXPECT_EQ(p.function, q.function)
                << "ledger " << m << " record " << r;
            EXPECT_EQ(p.tenant, q.tenant)
                << "ledger " << m << " record " << r;
            EXPECT_EQ(p.cpuSeconds, q.cpuSeconds)
                << "ledger " << m << " record " << r;
            EXPECT_EQ(p.commercialUsd, q.commercialUsd)
                << "ledger " << m << " record " << r;
            EXPECT_EQ(p.litmusUsd, q.litmusUsd)
                << "ledger " << m << " record " << r;
        }
    }
}

/** The full delivery-mode matrix for one spec: streaming must equal
 *  upfront at 1 and 16 threads, survive 4/16-thread streaming, and
 *  agree with the epoch oracle while streaming. */
void
checkStreamingMatrix(const scenario::ScenarioSpec &spec)
{
    const RunOutcome serial = runWith(spec, false, 1);
    EXPECT_EQ(serial.report.arrivalFlow.mode, "streaming");
    const RunOutcome upfront = runWith(spec, true, 1);
    EXPECT_EQ(upfront.report.arrivalFlow.mode, "upfront");
    expectIdentical(serial, upfront);
    expectIdentical(serial, runWith(spec, false, 4));
    expectIdentical(serial, runWith(spec, false, 16));
    expectIdentical(serial, runWith(spec, true, 16));
    expectIdentical(serial, runWith(spec, false, 1,
                                    cluster::SchedulerBackend::Epoch));
}

scenario::ScenarioSpec
baseSpec(const std::string &extra = "")
{
    return scenario::ScenarioSpec::fromString(
        "fleet = cascade-5218:3\n"
        "policy = warmth-aware\n"
        "rate = 1500\n"
        "invocations = 400\n"
        "keepalive = 0.05\n"
        "functions = test\n"
        "seed = 11\n" +
        extra);
}

std::string
smallAzureCsv(const std::string &name, std::uint64_t seed)
{
    scenario::AzureTraceGenSpec gen;
    gen.functions = 200;
    gen.minutes = 3;
    gen.invocationsPerMinute = 150.0;
    gen.seed = seed;
    const std::string path = ::testing::TempDir() + name;
    scenario::writeAzureShapedCsv(path, gen);
    return path;
}

TEST(StreamingDifferential, PoissonMatrix)
{
    checkStreamingMatrix(baseSpec());
}

TEST(StreamingDifferential, DiurnalMatrix)
{
    checkStreamingMatrix(baseSpec("traffic = diurnal\n"
                                  "diurnal.period = 0.4\n"
                                  "diurnal.amplitude = 0.95\n"));
}

TEST(StreamingDifferential, BurstMatrix)
{
    checkStreamingMatrix(baseSpec("traffic = burst\n"
                                  "burst.on = 0.05\n"
                                  "burst.off = 0.2\n"
                                  "burst.idle_fraction = 0.02\n"));
}

TEST(StreamingDifferential, TraceMatrix)
{
    const std::string tracePath = writeTempFile(
        "streaming_trace.csv", "0.0,float-py\n"
                               "0.001,aes-go\n"
                               "0.13,\n"
                               "0.50,float-py\n"
                               "0.5001,aes-go\n"
                               "1.75,\n");
    checkStreamingMatrix(baseSpec("traffic = trace\n"
                                  "trace.path = " + tracePath + "\n"));
}

TEST(StreamingDifferential, AzureMatrix)
{
    const std::string path = smallAzureCsv("streaming_azure.csv", 5);
    checkStreamingMatrix(baseSpec("traffic = azure\n"
                                  "azure.path = " + path + "\n"));
}

TEST(StreamingDifferential, ChaosOverlap)
{
    // Crashes + backoff retries while arrivals stream in: retry
    // re-dispatches interleave with lazily pulled arrivals, and the
    // stochastic fault schedule must come out identical because both
    // modes report the same horizon hint.
    const auto spec = baseSpec("fault.crash.mtbf = 0.4\n"
                               "fault.crash.restart = 0.05\n"
                               "fault.retry = backoff\n"
                               "fault.retry.max = 3\n"
                               "fault.retry.backoff = 0.02\n"
                               "fault.billing = provider-absorbs\n"
                               "fault.seed = 5\n");
    checkStreamingMatrix(spec);
}

TEST(StreamingDifferential, AzureChaosOverlap)
{
    const std::string path =
        smallAzureCsv("streaming_azure_chaos.csv", 6);
    checkStreamingMatrix(
        baseSpec("traffic = azure\n"
                 "azure.path = " + path + "\n"
                 "fault.crash.mtbf = 40\n"
                 "fault.crash.restart = 2\n"
                 "fault.retry = retry-once\n"));
}

// ---- the ArrivalStream contract --------------------------------------

scenario::TrafficSpec
poissonSpec(std::uint64_t invocations = 50)
{
    scenario::TrafficSpec spec;
    spec.arrivalsPerSecond = 1000;
    spec.invocations = invocations;
    return spec;
}

TEST(StreamingContract, PeekDoesNotConsume)
{
    Rng rng(42);
    const auto model = scenario::makeTrafficModel(poissonSpec());
    const auto stream = model->open(rng, onePool());
    const Invocation *head = stream->peek();
    ASSERT_NE(head, nullptr);
    const Seconds first = head->arrival;
    EXPECT_EQ(stream->peek(), head); // stable across repeated peeks
    EXPECT_EQ(stream->pulled(), 0u);
    Invocation inv;
    ASSERT_TRUE(stream->next(inv));
    EXPECT_EQ(inv.arrival, first);
    EXPECT_EQ(inv.seq, 0u);
    EXPECT_EQ(stream->pulled(), 1u);
}

TEST(StreamingContract, CountersAndSequenceNumbers)
{
    Rng rng(42);
    const auto model = scenario::makeTrafficModel(poissonSpec());
    const auto stream = model->open(rng, onePool());
    const auto trace = drain(*stream);
    ASSERT_EQ(trace.size(), 50u);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(trace[i].seq, i);
        ASSERT_NE(trace[i].spec, nullptr);
        if (i > 0) {
            EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
        }
    }
    EXPECT_EQ(stream->pulled(), 50u);
    EXPECT_EQ(stream->generated(), 50u);
    // A native generative stream holds one lookahead slot, never the
    // trace — the bound the whole streaming path exists to provide.
    EXPECT_EQ(stream->bufferedMax(), 1u);
    EXPECT_EQ(stream->peek(), nullptr);
    Invocation inv;
    EXPECT_FALSE(stream->next(inv));
}

TEST(StreamingContract, ReplayStreamReportsUpfrontCost)
{
    std::vector<Invocation> trace(3);
    const auto pool = onePool();
    for (std::size_t i = 0; i < trace.size(); ++i) {
        trace[i].spec = pool[0];
        trace[i].arrival = 0.5 * static_cast<double>(i);
    }
    const auto stream = cluster::replayStream(trace, "canned");
    EXPECT_EQ(stream->model(), "canned");
    EXPECT_EQ(stream->bufferedMax(), 3u);
    EXPECT_EQ(stream->horizonHint(), 1.0);
    EXPECT_EQ(drain(*stream).size(), 3u);
}

TEST(StreamingContract, GenerateIsTheStreamDrainedForEveryModel)
{
    const std::string tracePath = writeTempFile(
        "shim_oracle_trace.csv", "0.01,float-py\n0.02,\n0.05,\n");
    const std::string azurePath =
        smallAzureCsv("shim_oracle_azure.csv", 7);
    for (const std::string model :
         {"poisson", "diurnal", "burst", "trace", "azure"}) {
        scenario::TrafficSpec spec;
        spec.model = model;
        spec.arrivalsPerSecond = 2000;
        spec.invocations = 300;
        spec.diurnalPeriod = 0.05;
        spec.burstOn = 0.01;
        spec.burstOff = 0.03;
        spec.tracePath = tracePath;
        spec.azurePath = azurePath;
        const auto traffic = scenario::makeTrafficModel(spec);
        Rng upfrontRng(9);
        const auto upfront = traffic->generate(upfrontRng, onePool());
        Rng streamRng(9);
        const auto stream = traffic->open(streamRng, onePool());
        const auto streamed = drain(*stream);
        ASSERT_EQ(upfront.size(), streamed.size()) << model;
        for (std::size_t i = 0; i < upfront.size(); ++i) {
            EXPECT_EQ(upfront[i].arrival, streamed[i].arrival)
                << model << " arrival " << i;
            EXPECT_EQ(upfront[i].spec, streamed[i].spec)
                << model << " arrival " << i;
            EXPECT_EQ(upfront[i].seq, streamed[i].seq)
                << model << " arrival " << i;
        }
    }
}

/** A legacy-style model: generate() only, no open() override. */
class GenerateOnly final : public scenario::TrafficModel
{
  public:
    std::string name() const override { return "generate-only"; }
    std::vector<Invocation>
    generate(Rng &rng,
             const std::vector<const FunctionSpec *> &pool)
        const override
    {
        std::vector<Invocation> out;
        for (std::uint64_t i = 0; i < 100; ++i) {
            Invocation inv;
            inv.spec = pool[rng.below(pool.size())];
            inv.arrival = 0.5 * static_cast<double>(i + 1);
            inv.seq = i;
            out.push_back(inv);
        }
        return out;
    }
};

TEST(StreamingContract, GenerateOnlyModelsStreamViaTheAdapter)
{
    GenerateOnly model;
    Rng rng(3);
    const auto stream = model.open(rng, onePool());
    ASSERT_NE(stream, nullptr);
    // The adapter pays the honest upfront cost and knows the exact
    // horizon (the fault-plan fallback for custom models).
    EXPECT_EQ(stream->bufferedMax(), 100u);
    EXPECT_EQ(stream->horizonHint(), 50.0);
    EXPECT_EQ(drain(*stream).size(), 100u);
}

TEST(StreamingContractDeath, ImplementingNeitherIsFatal)
{
    class Neither final : public scenario::TrafficModel
    {
      public:
        std::string name() const override { return "neither"; }
    };
    Neither model;
    Rng rng(1);
    EXPECT_EXIT((void)model.open(rng, onePool()),
                ::testing::ExitedWithCode(1), "implements neither");
    EXPECT_EXIT((void)model.generate(rng, onePool()),
                ::testing::ExitedWithCode(1), "implements neither");
}

/** A broken stream for contract-enforcement death tests. */
class BrokenStream final : public ArrivalStream
{
  public:
    BrokenStream(bool nullSpec,
                 const std::vector<const FunctionSpec *> &pool)
        : ArrivalStream("broken"), nullSpec_(nullSpec), pool_(pool)
    {
    }

  protected:
    bool produce(Invocation &out) override
    {
        ++calls_;
        out.spec = nullSpec_ ? nullptr : pool_[0];
        // Second arrival travels back in time.
        out.arrival = calls_ == 1 ? 1.0 : 0.5;
        return calls_ <= 2;
    }

  private:
    bool nullSpec_;
    std::vector<const FunctionSpec *> pool_;
    unsigned calls_ = 0;
};

TEST(StreamingContractDeath, BaseEnforcesOrderAndSpecs)
{
    const auto pool = onePool();
    EXPECT_EXIT(
        {
            BrokenStream stream(true, pool);
            (void)stream.peek();
        },
        ::testing::ExitedWithCode(1), "without a function spec");
    EXPECT_EXIT(
        {
            BrokenStream stream(false, pool);
            Invocation inv;
            stream.next(inv);
            stream.next(inv);
        },
        ::testing::ExitedWithCode(1), "out-of-order arrivals");
}

TEST(StreamingContract, ArrivalSeedIsItsOwnStreamFamily)
{
    // Jitter uses the raw seed, faults substream #1, arrivals
    // substream #2 — colliding families would entangle the draws and
    // break the streaming/upfront differential.
    EXPECT_NE(cluster::deriveArrivalSeed(11), 11u);
    EXPECT_NE(cluster::deriveArrivalSeed(11),
              cluster::deriveArrivalSeed(12));
}

// ---- the azure ingester ----------------------------------------------

std::vector<const FunctionSpec *>
twoPool()
{
    return {&workload::functionByName("float-py"),
            &workload::functionByName("aes-go")};
}

std::vector<Invocation>
azureArrivals(const std::string &path, std::uint64_t seed = 42,
              scenario::TrafficSpec spec = {})
{
    spec.model = "azure";
    spec.azurePath = path;
    spec.invocations = 0;
    Rng rng(seed);
    return scenario::makeTrafficModel(spec)->generate(rng, twoPool());
}

TEST(StreamingAzure, SuiteNamedRowsPinTheirFunction)
{
    const std::string path = writeTempFile(
        "azure_pin.csv",
        "HashOwner,HashApp,HashFunction,Trigger,1,2,3\n"
        "aaaa,bbbb,float-py,http,2,0,1\n");
    const auto arrivals = azureArrivals(path);
    ASSERT_EQ(arrivals.size(), 3u);
    for (const Invocation &inv : arrivals)
        EXPECT_EQ(inv.spec->name, "float-py");
    // Column 1 is minute [0, 60); column 3 is minute [120, 180).
    EXPECT_LT(arrivals[1].arrival, 60.0);
    EXPECT_GE(arrivals[2].arrival, 120.0);
    EXPECT_LT(arrivals[2].arrival, 180.0);
}

TEST(StreamingAzure, OpaqueRowsSpreadOverThePoolStably)
{
    const std::string path = writeTempFile(
        "azure_hash.csv",
        "HashOwner,HashApp,HashFunction,Trigger,1\n"
        "aaaa,bbbb,cccc,http,3\n");
    const auto a = azureArrivals(path);
    const auto b = azureArrivals(path);
    ASSERT_EQ(a.size(), 3u);
    // All three invocations of one row share the identity-hashed
    // function, and the mapping is stable across runs.
    EXPECT_EQ(a[0].spec, a[1].spec);
    EXPECT_EQ(a[0].spec, a[2].spec);
    EXPECT_EQ(a[0].spec, b[0].spec);
}

TEST(StreamingAzure, RateScaleCompressesTime)
{
    const std::string path = writeTempFile(
        "azure_scale.csv",
        "HashOwner,HashApp,HashFunction,Trigger,1,2\n"
        "aaaa,bbbb,float-py,http,0,4\n");
    scenario::TrafficSpec scaled;
    scaled.azureRateScale = 2.0;
    const auto arrivals = azureArrivals(path, 42, scaled);
    ASSERT_EQ(arrivals.size(), 4u);
    // Minute [60, 120) replayed twice as fast lands in [30, 60).
    for (const Invocation &inv : arrivals) {
        EXPECT_GE(inv.arrival, 30.0);
        EXPECT_LT(inv.arrival, 60.0);
    }
}

TEST(StreamingAzure, RowCapStopsTheParse)
{
    const std::string path = writeTempFile(
        "azure_cap.csv",
        "HashOwner,HashApp,HashFunction,Trigger,1\n"
        "aaaa,bbbb,float-py,http,2\n"
        "cccc,dddd,aes-go,timer,5\n");
    scenario::TrafficSpec capped;
    capped.azureMaxRows = 1;
    const auto arrivals = azureArrivals(path, 42, capped);
    ASSERT_EQ(arrivals.size(), 2u); // second row never parsed
    EXPECT_EQ(arrivals[0].spec->name, "float-py");
}

TEST(StreamingAzure, InvocationsAndDurationCapEmission)
{
    const std::string path = writeTempFile(
        "azure_emit_cap.csv",
        "HashOwner,HashApp,HashFunction,Trigger,1,2\n"
        "aaaa,bbbb,float-py,http,3,3\n");
    scenario::TrafficSpec byCount;
    byCount.model = "azure";
    byCount.azurePath = path;
    byCount.invocations = 2;
    Rng rng(1);
    EXPECT_EQ(scenario::makeTrafficModel(byCount)
                  ->generate(rng, twoPool())
                  .size(),
              2u);
    scenario::TrafficSpec byTime;
    byTime.duration = 60.0; // first minute only
    const auto arrivals = azureArrivals(path, 42, byTime);
    EXPECT_EQ(arrivals.size(), 3u);
    EXPECT_LT(arrivals.back().arrival, 60.0);
}

TEST(StreamingAzure, GeneratorRoundTripServesEveryInvocation)
{
    scenario::AzureTraceGenSpec gen;
    gen.functions = 40;
    gen.minutes = 4;
    gen.invocationsPerMinute = 50.0;
    gen.seed = 9;
    const std::string path = ::testing::TempDir() + "azure_round.csv";
    const std::uint64_t total =
        scenario::writeAzureShapedCsv(path, gen);
    ASSERT_GT(total, 0u);
    const auto arrivals = azureArrivals(path);
    EXPECT_EQ(arrivals.size(), total);
    // Same generator knobs + seed produce the identical file.
    const std::string again = ::testing::TempDir() + "azure_round2.csv";
    EXPECT_EQ(scenario::writeAzureShapedCsv(again, gen), total);
}

TEST(StreamingAzure, BuffersOneMinuteAtATime)
{
    const std::string path = smallAzureCsv("azure_buffer.csv", 8);
    scenario::TrafficSpec spec;
    spec.model = "azure";
    spec.azurePath = path;
    spec.invocations = 0;
    const auto model = scenario::makeTrafficModel(spec);
    Rng rng(42);
    const auto stream = model->open(rng, twoPool());
    const auto arrivals = drain(*stream);
    ASSERT_GT(arrivals.size(), 0u);
    // The stream's resident peak is one minute bucket, not the trace.
    EXPECT_LT(stream->bufferedMax(), arrivals.size());
    std::uint64_t worstMinute = 0;
    for (std::size_t i = 0; i < arrivals.size();) {
        const double minute = std::floor(arrivals[i].arrival / 60.0);
        std::uint64_t inMinute = 0;
        while (i < arrivals.size() &&
               std::floor(arrivals[i].arrival / 60.0) == minute) {
            ++inMinute;
            ++i;
        }
        worstMinute = std::max(worstMinute, inMinute);
    }
    EXPECT_EQ(stream->bufferedMax(), worstMinute);
}

TEST(StreamingAzureDeath, MalformedTraces)
{
    scenario::TrafficSpec spec;
    spec.model = "azure";
    spec.azurePath = "/nonexistent/azure.csv";
    EXPECT_EXIT((void)scenario::makeTrafficModel(spec),
                ::testing::ExitedWithCode(1), "cannot read");

    spec.azurePath = writeTempFile(
        "azure_no_rows.csv",
        "HashOwner,HashApp,HashFunction,Trigger,1\n");
    EXPECT_EXIT((void)scenario::makeTrafficModel(spec),
                ::testing::ExitedWithCode(1), "no function rows");

    spec.azurePath = writeTempFile(
        "azure_all_zero.csv",
        "HashOwner,HashApp,HashFunction,Trigger,1,2\n"
        "aaaa,bbbb,cccc,http,0,0\n");
    EXPECT_EXIT((void)scenario::makeTrafficModel(spec),
                ::testing::ExitedWithCode(1), "no invocations");

    spec.azurePath = writeTempFile(
        "azure_ragged.csv",
        "HashOwner,HashApp,HashFunction,Trigger,1,2\n"
        "aaaa,bbbb,cccc,http,1,2\n"
        "dddd,eeee,ffff,http,1\n");
    EXPECT_EXIT((void)scenario::makeTrafficModel(spec),
                ::testing::ExitedWithCode(1), "count columns");

    spec.azurePath = writeTempFile(
        "azure_bad_count.csv",
        "HashOwner,HashApp,HashFunction,Trigger,1,2\n"
        "aaaa,bbbb,cccc,http,1,-3\n");
    EXPECT_EXIT((void)scenario::makeTrafficModel(spec),
                ::testing::ExitedWithCode(1), "bad invocation count");

    scenario::TrafficSpec missing;
    missing.model = "azure";
    EXPECT_EXIT(missing.validate(), ::testing::ExitedWithCode(1),
                "azure.path");
    missing.azurePath = "x.csv";
    missing.azureRateScale = 0;
    EXPECT_EXIT(missing.validate(), ::testing::ExitedWithCode(1),
                "azure.rate_scale");
}

// ---- the new scenario keys -------------------------------------------

TEST(StreamingScenarioKeys, AzureAndArrivalsKeysParse)
{
    const scenario::ScenarioSpec spec =
        scenario::ScenarioSpec::fromString("traffic = azure\n"
                                           "azure.path = day.csv\n"
                                           "azure.max_rows = 1000\n"
                                           "azure.rate_scale = 2.5\n"
                                           "arrivals = upfront\n");
    EXPECT_EQ(spec.traffic.model, "azure");
    EXPECT_EQ(spec.traffic.azurePath, "day.csv");
    EXPECT_EQ(spec.traffic.azureMaxRows, 1000u);
    EXPECT_DOUBLE_EQ(spec.traffic.azureRateScale, 2.5);
    EXPECT_TRUE(spec.upfrontArrivals);
    // Like trace, an azure replay with no explicit cap plays the
    // whole file instead of truncating at the generative default.
    EXPECT_EQ(spec.traffic.invocations, 0u);

    EXPECT_FALSE(scenario::ScenarioSpec::fromString(
                     "arrivals = streaming\n")
                     .upfrontArrivals);
    EXPECT_EQ(scenario::ScenarioSpec::fromString("invocations = 70\n"
                                                 "traffic = azure\n")
                  .traffic.invocations,
              70u);
}

TEST(StreamingScenarioKeys, RelativeAzurePathResolvesAgainstFile)
{
    const std::string path = writeTempFile(
        "streaming_keys.scenario", "traffic = azure\n"
                                   "azure.path = day.csv\n");
    const scenario::ScenarioSpec spec =
        scenario::ScenarioSpec::fromFile(path);
    EXPECT_EQ(spec.traffic.azurePath, ::testing::TempDir() + "day.csv");
}

TEST(StreamingScenarioKeysDeath, BadArrivalsValueIsFatal)
{
    EXPECT_EXIT(
        (void)scenario::ScenarioSpec::fromString("arrivals = eager\n"),
        ::testing::ExitedWithCode(1), "streaming");
}

} // namespace
} // namespace litmus
