/**
 * @file
 * Tests for the provider calibration procedure (small sweeps so the
 * test stays fast).
 */

#include <gtest/gtest.h>

#include "core/calibration.h"
#include "sim/machine_catalog.h"

namespace litmus::pricing
{
namespace
{

using workload::GeneratorKind;
using workload::Language;

CalibrationConfig
smallConfig()
{
    CalibrationConfig cfg;
    cfg.levels = {4, 12, 20};
    // Two reference functions keep the sweep quick.
    cfg.referencePool = {&workload::functionByName("thum-py"),
                         &workload::functionByName("fib-go")};
    cfg.warmup = 0.02;
    return cfg;
}

TEST(Calibration, ValidatesConfig)
{
    CalibrationConfig cfg = smallConfig();
    cfg.levels = {};
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "levels");

    cfg = smallConfig();
    cfg.levels = {4, 4};
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "increase");

    cfg = smallConfig();
    cfg.levels = {40};
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "fit");

    cfg = smallConfig();
    cfg.sharingFunctions = 10;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "sharing");
}

TEST(Calibration, MeasureSoloBaseline)
{
    const auto machine = sim::MachineCatalog::get("cascade-5218");
    const SoloBaseline solo = measureSoloBaseline(
        machine, workload::functionByName("aes-py"));
    EXPECT_GT(solo.privCpi, 0.3);
    EXPECT_LT(solo.privCpi, 2.0);
    EXPECT_GT(solo.sharedCpi, 0.0);
    EXPECT_LT(solo.sharedCpi, solo.privCpi);
    EXPECT_DOUBLE_EQ(solo.totalCpi(), solo.privCpi + solo.sharedCpi);
}

class CalibrationFixture : public ::testing::Test
{
  protected:
    static const CalibrationProfile &result()
    {
        static const CalibrationProfile r = calibrate(smallConfig());
        return r;
    }
};

TEST_F(CalibrationFixture, BaselinesForAllLanguages)
{
    for (Language lang : workload::allLanguages()) {
        const ProbeReading &base = result().congestion.baseline(lang);
        EXPECT_TRUE(base.valid());
        EXPECT_GT(base.privCpi, 0.0);
        EXPECT_GT(base.sharedCpi, 0.0);
    }
}

TEST_F(CalibrationFixture, TablesPopulatedForBothGenerators)
{
    for (GeneratorKind gen :
         {GeneratorKind::CtGen, GeneratorKind::MbGen}) {
        EXPECT_TRUE(result().performance.populated(gen));
        for (Language lang : workload::allLanguages())
            EXPECT_TRUE(result().congestion.populated(lang, gen));
    }
}

TEST_F(CalibrationFixture, SlowdownsExceedOneAndGrow)
{
    for (GeneratorKind gen :
         {GeneratorKind::CtGen, GeneratorKind::MbGen}) {
        const auto &shared =
            result().congestion.sharedSeries(Language::Python, gen);
        EXPECT_GT(shared.front(), 1.0);
        EXPECT_GT(shared.back(), shared.front());
        const auto &perfTotal = result().performance.totalSeries(gen);
        EXPECT_GE(perfTotal.back(), perfTotal.front());
    }
}

TEST_F(CalibrationFixture, MbStressesSharedTimeMoreThanCt)
{
    // Figure 5 structure: MB-Gen slows T_shared far more than CT-Gen
    // at matched levels.
    const auto &ct = result().congestion.sharedSeries(
        Language::Python, GeneratorKind::CtGen);
    const auto &mb = result().congestion.sharedSeries(
        Language::Python, GeneratorKind::MbGen);
    ASSERT_EQ(ct.size(), mb.size());
    EXPECT_GT(mb.back(), ct.back());
}

TEST_F(CalibrationFixture, MbProducesFarMoreL3Misses)
{
    const auto &ct = result().congestion.l3Series(
        Language::Python, GeneratorKind::CtGen);
    const auto &mb = result().congestion.l3Series(
        Language::Python, GeneratorKind::MbGen);
    EXPECT_GT(mb.back(), 5.0 * ct.back());
}

TEST_F(CalibrationFixture, PrivateSlowdownsStaySmall)
{
    // Figure 5: T_private slowdowns are percent-level, not multiples.
    for (GeneratorKind gen :
         {GeneratorKind::CtGen, GeneratorKind::MbGen}) {
        for (double v : result().congestion.privSeries(
                 Language::Python, gen)) {
            EXPECT_GT(v, 0.98);
            EXPECT_LT(v, 1.4);
        }
    }
}

TEST_F(CalibrationFixture, ReferenceSoloRecorded)
{
    EXPECT_EQ(result().referenceSolo.size(), 2u);
    EXPECT_TRUE(result().referenceSolo.contains("thum-py"));
}

} // namespace
} // namespace litmus::pricing
