/**
 * @file
 * Tests for the language-runtime startup models (the probe substrate).
 */

#include <gtest/gtest.h>

#include "sim/machine.h"
#include "workload/runtime_startup.h"
#include "sim/machine_catalog.h"

namespace litmus::workload
{
namespace
{

TEST(Startup, AllLanguagesListed)
{
    EXPECT_EQ(allLanguages().size(), 3u);
}

TEST(Startup, Suffixes)
{
    EXPECT_EQ(languageSuffix(Language::Python), "py");
    EXPECT_EQ(languageSuffix(Language::NodeJs), "nj");
    EXPECT_EQ(languageSuffix(Language::Go), "go");
    EXPECT_EQ(languageName(Language::Python), "Python");
}

TEST(Startup, ProgramsNonEmptyAndValid)
{
    for (Language lang : allLanguages()) {
        const PhaseProgram &p = startupProgram(lang);
        EXPECT_GE(p.size(), 3u) << languageName(lang);
        for (const Phase &phase : p.phases())
            EXPECT_NO_FATAL_FAILURE(phase.validate());
    }
}

TEST(Startup, ProbeWindowWithinStartup)
{
    for (Language lang : allLanguages()) {
        EXPECT_LT(probeWindow(lang),
                  startupProgram(lang).totalInstructions())
            << languageName(lang);
        EXPECT_GT(probeWindow(lang), 0.0);
    }
}

TEST(Startup, PythonWindowMatchesPaper)
{
    // Section 7.1: the first 45 million instructions.
    EXPECT_DOUBLE_EQ(probeWindow(Language::Python), 45e6);
}

TEST(Startup, ProgramsAreSingletons)
{
    // Same-language startups must be identical — the property the
    // Litmus test leans on.
    EXPECT_EQ(&startupProgram(Language::Python),
              &startupProgram(Language::Python));
}

TEST(Startup, RelativeDurations)
{
    // Figure 6: Node.js startup is by far the longest, Go the
    // shortest; measure solo durations on the reference machine.
    const auto cfg = sim::MachineCatalog::get("cascade-5218");
    std::map<Language, Seconds> wall;
    for (Language lang : allLanguages()) {
        const auto run = sim::runSolo(cfg, [&] {
            return std::make_unique<ProgramTask>("s",
                                                 startupProgram(lang));
        });
        wall[lang] = run.wallTime;
    }
    EXPECT_GT(wall[Language::NodeJs], 3 * wall[Language::Python]);
    EXPECT_GT(wall[Language::Python], 2 * wall[Language::Go]);
    // Rough absolute scale (paper: ~19 ms / ~97 ms / ~6 ms).
    EXPECT_NEAR(wall[Language::Python], 19e-3, 12e-3);
    EXPECT_NEAR(wall[Language::NodeJs], 97e-3, 50e-3);
    EXPECT_NEAR(wall[Language::Go], 6e-3, 5e-3);
}

TEST(Startup, MemoryHeavyPrefix)
{
    // The probe window must cover memory-intensive phases: average
    // MPKI over the window should be substantial.
    for (Language lang : allLanguages()) {
        const PhaseProgram &p = startupProgram(lang);
        const Instructions window = probeWindow(lang);
        Instructions seen = 0;
        double weightedMpki = 0;
        for (const Phase &phase : p.phases()) {
            if (seen >= window)
                break;
            const Instructions take =
                std::min(phase.instructions, window - seen);
            weightedMpki += take * phase.demand.l2Mpki;
            seen += take;
        }
        EXPECT_GT(weightedMpki / window, 8.0) << languageName(lang);
    }
}

} // namespace
} // namespace litmus::workload
