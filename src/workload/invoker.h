/**
 * @file
 * The invoker: keeps a constant population of co-running functions.
 *
 * Sections 4 and 7 maintain N co-running functions by launching a new
 * randomly selected function whenever one finishes. The invoker
 * reproduces that churn with two placement modes:
 *
 *  - OnePerCore (Section 7.1): each function is pinned to its own CPU;
 *    a replacement inherits the freed CPU.
 *  - Pooled (Section 7.2): functions share a CPU pool and may run on
 *    any CPU in it (temporal sharing via the OS scheduler).
 */

#ifndef LITMUS_WORKLOAD_INVOKER_H
#define LITMUS_WORKLOAD_INVOKER_H

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "sim/engine.h"
#include "workload/function_model.h"

namespace litmus::workload
{

/** Invoker configuration. */
struct InvokerConfig
{
    /** Placement of co-runner functions. */
    enum class Placement
    {
        OnePerCore,
        Pooled,
    };

    Placement placement = Placement::OnePerCore;

    /** Number of co-running functions to maintain. */
    unsigned targetCount = 26;

    /**
     * CPUs available to co-runners. In OnePerCore mode there must be
     * at least targetCount of them; in Pooled mode the whole list is
     * every task's affinity.
     */
    std::vector<unsigned> cpuPool;

    /** Sampling pool (defaults to the whole Table 1 suite). */
    std::vector<const FunctionSpec *> functionPool;

    /** Co-runners don't need probes; enable for full-platform demos. */
    bool probes = false;

    /**
     * Enforce the machine's main-memory capacity: a function whose
     * footprint does not fit is deferred until completions free
     * memory (the paper's experiments were sized by exactly this
     * limit — Section 7.2 and the Ice Lake setup).
     */
    bool enforceMemoryCapacity = true;

    /** Seed for function selection and jitter. */
    std::uint64_t seed = 1;
};

/**
 * Maintains the co-runner population inside an engine.
 *
 * The experiment harness owns the engine's completion callback and
 * must forward co-runner completions to handleCompletion().
 */
class Invoker
{
  public:
    Invoker(sim::Engine &engine, InvokerConfig cfg);

    /** Launch the initial population. */
    void start();

    /** True if the invoker launched this task. */
    bool owns(const sim::Task &task) const;

    /**
     * Notify that a task completed. If it was a co-runner, a freshly
     * sampled replacement is launched (same CPU in OnePerCore mode).
     * @return true when the task belonged to the invoker.
     */
    bool handleCompletion(sim::Task &task);

    /** Number of co-runners currently live. */
    unsigned liveCount() const
    {
        return static_cast<unsigned>(owned_.size());
    }

    /** Total functions launched so far (initial + churn). */
    std::uint64_t launchedCount() const { return launched_; }

    /** Memory currently committed to live co-runners (bytes). */
    Bytes committedMemory() const { return committedMemory_; }

    /** Launches deferred (so far) because memory was full. */
    std::uint64_t deferredCount() const { return deferred_; }

    const InvokerConfig &config() const { return cfg_; }

  private:
    /** Launch one sampled function on the given CPUs. */
    void launch(std::vector<unsigned> affinity);

    sim::Engine &engine_;
    InvokerConfig cfg_;
    Rng rng_;
    /** Live co-runners: task id -> affinity and committed memory. */
    struct Owned
    {
        std::vector<unsigned> affinity;
        Bytes memory;
    };
    // LITMUS-LINT-ALLOW(unordered-decl): task-id keyed ownership lookup only; never iterated (relaunch decisions key off completions, in completion order)
    std::unordered_map<std::uint64_t, Owned> owned_;
    std::uint64_t launched_ = 0;
    std::uint64_t deferred_ = 0;
    Bytes committedMemory_ = 0;
};

} // namespace litmus::workload

#endif // LITMUS_WORKLOAD_INVOKER_H
