#include "workload/phase.h"

#include "common/logging.h"

namespace litmus::workload
{

void
Phase::validate() const
{
    if (instructions <= 0)
        fatal("Phase ", name, ": instructions must be positive");
    demand.validate();
}

Phase
jitterPhase(const Phase &phase, Rng &rng, double inst_rel, double mem_rel)
{
    Phase out = phase;
    out.instructions = phase.instructions * rng.jitter(inst_rel);
    out.demand.l2Mpki = phase.demand.l2Mpki * rng.jitter(mem_rel);
    return out;
}

} // namespace litmus::workload
