/**
 * @file
 * Open-loop invocation: Poisson arrivals instead of fixed concurrency.
 *
 * The paper's evaluation holds the co-running count constant (a
 * closed loop). Production FaaS traffic is an arrival process: bursts
 * overcrowd the machine and quiet spells drain it — exactly the
 * "transient traffic jams" Section 5 argues the Litmus test must
 * catch. The OpenLoopInvoker drives the simulator with exponential
 * inter-arrival times, subject to a concurrency cap and the machine's
 * memory capacity, so experiments can study pricing under realistic
 * load swings.
 */

#ifndef LITMUS_WORKLOAD_OPEN_LOOP_H
#define LITMUS_WORKLOAD_OPEN_LOOP_H

#include <unordered_map>

#include "common/rng.h"
#include "sim/engine.h"
#include "workload/function_model.h"

namespace litmus::workload
{

/** Open-loop driver configuration. */
struct OpenLoopConfig
{
    /** Mean arrival rate in invocations per second. */
    double arrivalsPerSecond = 100.0;

    /** CPUs arrivals may use (pooled placement). */
    std::vector<unsigned> cpuPool;

    /** Sampling pool (defaults to the whole Table 1 suite). */
    std::vector<const FunctionSpec *> functionPool;

    /** Hard concurrency cap (0 = unlimited). Arrivals beyond it are
     *  rejected, like a platform's concurrency limit. */
    unsigned maxConcurrent = 0;

    /** Enforce the machine's memory capacity on admission. */
    bool enforceMemoryCapacity = true;

    /** Attach Litmus probes to invocations. */
    bool probes = false;

    std::uint64_t seed = 1;
};

/**
 * Poisson-arrival workload driver.
 *
 * Attach it to an engine, call start(), and forward completions to
 * handleCompletion() (same contract as the closed-loop Invoker).
 * Arrivals fire from the engine's quantum callback, so resolution is
 * one quantum (50 us by default).
 */
class OpenLoopInvoker
{
  public:
    OpenLoopInvoker(sim::Engine &engine, OpenLoopConfig cfg);

    /** Begin generating arrivals (registers the quantum hook). */
    void start();

    /** True if this driver launched the task. */
    bool owns(const sim::Task &task) const;

    /** Forward completions; returns true when the task was ours. */
    bool handleCompletion(sim::Task &task);

    /** @name Telemetry @{ */
    unsigned liveCount() const
    {
        return static_cast<unsigned>(live_.size());
    }
    std::uint64_t arrivals() const { return arrivals_; }
    std::uint64_t launched() const { return launched_; }
    std::uint64_t rejectedConcurrency() const { return rejectedCap_; }
    std::uint64_t rejectedMemory() const { return rejectedMemory_; }
    Bytes committedMemory() const { return committedMemory_; }
    /** @} */

    const OpenLoopConfig &config() const { return cfg_; }

  private:
    /** Fire arrivals whose time has come. */
    void onQuantum(Seconds now);

    /** Admit and launch one sampled invocation. */
    void admit();

    sim::Engine &engine_;
    OpenLoopConfig cfg_;
    Rng rng_;
    bool started_ = false;
    Seconds nextArrival_ = 0;
    // LITMUS-LINT-ALLOW(unordered-decl): task-id keyed lookup/erase only; never iterated, so order cannot leak into admission or billing
    std::unordered_map<std::uint64_t, Bytes> live_;
    std::uint64_t arrivals_ = 0;
    std::uint64_t launched_ = 0;
    std::uint64_t rejectedCap_ = 0;
    std::uint64_t rejectedMemory_ = 0;
    Bytes committedMemory_ = 0;
};

} // namespace litmus::workload

#endif // LITMUS_WORKLOAD_OPEN_LOOP_H
