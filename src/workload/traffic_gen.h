/**
 * @file
 * CT-Gen and MB-Gen: the calibration traffic generators of Section 3.
 *
 * CT-Gen stresses the path from the cores to the L3: its threads miss
 * the L2 constantly but hit the L3 (small per-thread footprints), so
 * aggregate traffic saturates the L3 access bandwidth without
 * consuming DRAM bandwidth. MB-Gen streams through memory: nearly all
 * of its L2 misses also miss the L3, hammering DRAM bandwidth and
 * evicting co-runners' L3 blocks; its own L2-miss rate is lower than
 * CT-Gen's because it throttles itself on DRAM (Figure 1).
 *
 * Both are multi-threaded; the stress level (1..cores-1) is the number
 * of threads, each pinned to its own core.
 */

#ifndef LITMUS_WORKLOAD_TRAFFIC_GEN_H
#define LITMUS_WORKLOAD_TRAFFIC_GEN_H

#include <memory>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "workload/program.h"

namespace litmus::workload
{

/** The two calibration generators. */
enum class GeneratorKind
{
    CtGen, // core-to-L3 traffic: L2 misses that hit L3
    MbGen, // memory-bandwidth traffic: L3-missing streams
};

/** Display name: "CT-Gen" / "MB-Gen". */
std::string generatorName(GeneratorKind kind);

/** Demand of a single generator thread. */
sim::ResourceDemand generatorThreadDemand(GeneratorKind kind);

/** Build one endless generator thread task (unpinned). */
std::unique_ptr<EndlessTask> makeGeneratorThread(GeneratorKind kind,
                                                 unsigned index);

/**
 * Spawn @p level generator threads into the engine, pinned one per
 * CPU starting from @p first_cpu. Returns non-owning handles (the
 * engine owns the tasks; generator threads never finish on their own).
 */
std::vector<sim::Task *> spawnGenerator(sim::Engine &engine,
                                        GeneratorKind kind,
                                        unsigned level,
                                        unsigned first_cpu);

} // namespace litmus::workload

#endif // LITMUS_WORKLOAD_TRAFFIC_GEN_H
