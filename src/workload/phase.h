/**
 * @file
 * Execution phases: a named resource demand plus an instruction budget.
 *
 * Workloads are modelled as phase programs. A phase captures a stretch
 * of execution with stable behaviour (an import burst, a compute loop,
 * a streaming pass); the simulator treats each phase's demand as
 * constant and switches at retirement boundaries.
 */

#ifndef LITMUS_WORKLOAD_PHASE_H
#define LITMUS_WORKLOAD_PHASE_H

#include <string>

#include "common/rng.h"
#include "common/units.h"
#include "sim/task.h"

namespace litmus::workload
{

/** One phase of a phase program. */
struct Phase
{
    /** Diagnostic name, e.g. "import-site" or "body". */
    std::string name;

    /** Instructions the phase retires. */
    Instructions instructions = 0;

    /** Resource demand while the phase runs. */
    sim::ResourceDemand demand;

    /** Sanity checks; fatal() on nonsense. */
    void validate() const;
};

/**
 * Apply per-invocation jitter to a phase: instruction count and memory
 * intensity wobble a little run to run (inputs differ, allocators
 * place data differently). Demand jitter is kept small so calibration
 * tables remain meaningful.
 *
 * @param phase    the nominal phase
 * @param rng      per-task random stream
 * @param inst_rel relative spread of the instruction count
 * @param mem_rel  relative spread of l2Mpki
 */
Phase jitterPhase(const Phase &phase, Rng &rng, double inst_rel,
                  double mem_rel);

} // namespace litmus::workload

#endif // LITMUS_WORKLOAD_PHASE_H
