/**
 * @file
 * Phase programs and the task that executes them.
 *
 * A PhaseProgram is the static description of a workload (a sequence
 * of phases); ProgramTask is the schedulable instantiation that walks
 * through it, optionally applying per-invocation jitter.
 */

#ifndef LITMUS_WORKLOAD_PROGRAM_H
#define LITMUS_WORKLOAD_PROGRAM_H

#include <string>
#include <vector>

#include "workload/phase.h"

namespace litmus::workload
{

/** Immutable sequence of phases. */
class PhaseProgram
{
  public:
    PhaseProgram() = default;

    /** Build from phases; validates each. */
    explicit PhaseProgram(std::vector<Phase> phases);

    /** Append a phase (builder style). */
    PhaseProgram &append(Phase phase);

    const std::vector<Phase> &phases() const { return phases_; }
    std::size_t size() const { return phases_.size(); }
    bool empty() const { return phases_.empty(); }

    /** Total instructions across all phases. */
    Instructions totalInstructions() const;

    /** Concatenate two programs (startup + body). */
    PhaseProgram then(const PhaseProgram &next) const;

  private:
    std::vector<Phase> phases_;
};

/**
 * Task that executes a phase program to completion.
 */
class ProgramTask : public sim::Task
{
  public:
    /**
     * @param name         display name
     * @param program      phases to execute (jitter already applied by
     *                     the caller when desired)
     * @param probe_window Litmus-probe window in instructions (0 = off)
     */
    ProgramTask(std::string name, PhaseProgram program,
                Instructions probe_window = sim::Task::noProbe);

    const sim::ResourceDemand &demand() const override;
    Instructions remainingInPhase() const override;
    void retire(Instructions n) override;
    bool finished() const override;

    /** Index of the phase currently executing. */
    std::size_t phaseIndex() const { return index_; }

    const PhaseProgram &program() const { return program_; }

  private:
    PhaseProgram program_;
    std::size_t index_ = 0;
    Instructions retiredInPhase_ = 0;
};

/**
 * Endless task repeating a single demand forever (traffic-generator
 * threads). finished() is always false; experiments bound it by time.
 */
class EndlessTask : public sim::Task
{
  public:
    EndlessTask(std::string name, sim::ResourceDemand demand);

    const sim::ResourceDemand &demand() const override { return demand_; }
    Instructions remainingInPhase() const override;
    void retire(Instructions n) override;
    bool finished() const override { return false; }

  private:
    sim::ResourceDemand demand_;
};

} // namespace litmus::workload

#endif // LITMUS_WORKLOAD_PROGRAM_H
