/**
 * @file
 * The Table 1 benchmark suite: 27 serverless functions from SeBS,
 * FunctionBench, DeathStarBench Hotel Reservation, Online Boutique,
 * and the AWS authorizer samples, in Python / Node.js / Go.
 *
 * Thirteen functions (the paper's asterisks) form the provider's
 * reference set used to build performance tables; fourteen form the
 * evaluation test set shown on the x-axis of Figures 11-21.
 *
 * Demand parameters are calibrated so the suite reproduces the
 * paper's observable distributions: compute-bound members (float-py)
 * spend >99.9% of their time on private resources, graph workloads
 * (pager/mst/bfs) leanheavily on the shared domain, and the suite
 * gmean slowdown with 26 co-runners lands near the paper's 11.5%.
 */

#ifndef LITMUS_WORKLOAD_SUITE_H
#define LITMUS_WORKLOAD_SUITE_H

#include <vector>

#include "workload/function_model.h"

namespace litmus::workload
{

/** All 27 functions of Table 1, in the paper's listing order. */
const std::vector<FunctionSpec> &table1Suite();

/** The 13 reference functions (Table 1 asterisks). */
std::vector<const FunctionSpec *> referenceSet();

/** The 14 test functions shown in Figures 11-13 and 15-21. */
std::vector<const FunctionSpec *> testSet();

/**
 * The eight memory-intensive functions Section 8 uses to create heavy
 * congestion (Figure 17).
 */
std::vector<const FunctionSpec *> memoryIntensiveSet();

/** Lookup by name; fatal() if absent. */
const FunctionSpec &functionByName(const std::string &name);

/** Non-fatal lookup: nullptr when no suite member has this name
 *  (heuristic mappers — e.g. the azure trace ingester — probe names
 *  that usually aren't suite functions). */
const FunctionSpec *findFunction(const std::string &name);

/** Pointers to every suite member (co-runner sampling pool). */
std::vector<const FunctionSpec *> allFunctions();

} // namespace litmus::workload

#endif // LITMUS_WORKLOAD_SUITE_H
