#include "workload/traffic_gen.h"

#include "common/logging.h"
#include "common/units.h"

namespace litmus::workload
{

std::string
generatorName(GeneratorKind kind)
{
    return kind == GeneratorKind::CtGen ? "CT-Gen" : "MB-Gen";
}

sim::ResourceDemand
generatorThreadDemand(GeneratorKind kind)
{
    sim::ResourceDemand d;
    if (kind == GeneratorKind::CtGen) {
        // Pointer-chase sized to overflow L2 but sit comfortably in
        // the L3: every access is an L2 miss / L3 hit.
        d.cpi0 = 0.55;
        d.l2Mpki = 60.0;
        d.l3WorkingSet = 640_KiB;
        d.l3MissBase = 0.02;
        d.mlp = 6.0;
    } else {
        // Streaming writes over a buffer far larger than the L3:
        // nearly every L2 miss is an L3 miss; the per-thread footprint
        // also evicts co-runners' blocks.
        d.cpi0 = 0.55;
        d.l2Mpki = 34.0;
        d.l3WorkingSet = 8_MiB;
        d.l3MissBase = 0.92;
        d.mlp = 8.0;
    }
    return d;
}

std::unique_ptr<EndlessTask>
makeGeneratorThread(GeneratorKind kind, unsigned index)
{
    const std::string name = (kind == GeneratorKind::CtGen ? "ctgen-"
                                                           : "mbgen-") +
                             std::to_string(index);
    return std::make_unique<EndlessTask>(name,
                                         generatorThreadDemand(kind));
}

std::vector<sim::Task *>
spawnGenerator(sim::Engine &engine, GeneratorKind kind, unsigned level,
               unsigned first_cpu)
{
    const unsigned cpus = engine.scheduler().cpuCount();
    if (first_cpu + level > cpus) {
        fatal("spawnGenerator: level ", level, " starting at cpu ",
              first_cpu, " exceeds machine size ", cpus);
    }
    std::vector<sim::Task *> handles;
    handles.reserve(level);
    for (unsigned i = 0; i < level; ++i) {
        auto thread = makeGeneratorThread(kind, i);
        thread->setAffinity({first_cpu + i});
        handles.push_back(&engine.add(std::move(thread)));
    }
    return handles;
}

} // namespace litmus::workload
