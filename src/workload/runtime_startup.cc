#include "workload/runtime_startup.h"

#include "common/logging.h"
#include "common/units.h"

namespace litmus::workload
{

namespace
{

/** Helper to build a phase tersely. */
Phase
phase(const char *name, double minstr, double cpi0, double mpki,
      double ws_mib, double miss_base, double mlp)
{
    Phase p;
    p.name = name;
    p.instructions = minstr * 1e6;
    p.demand.cpi0 = cpi0;
    p.demand.l2Mpki = mpki;
    p.demand.l3WorkingSet = static_cast<Bytes>(ws_mib * 1024 * 1024);
    p.demand.l3MissBase = miss_base;
    p.demand.mlp = mlp;
    return p;
}

/**
 * CPython startup: interpreter bring-up, core and site imports (the
 * memory-read bursts of Figure 6's Python panel), bytecode
 * compilation, and first-execution warm-up. Roughly 60M instructions,
 * ~19 ms solo at 2.8 GHz.
 */
PhaseProgram
buildPythonStartup()
{
    // Startup loads overlap heavily (streamed images, prefetched
    // libraries), so MLP is high: the startup is memory-*traffic*
    // heavy without dominating the stall budget of long functions.
    return PhaseProgram({
        phase("py-interp-init", 5.0, 0.95, 15.0, 2.0, 0.32, 10.0),
        phase("py-import-core", 11.0, 0.75, 19.0, 3.2, 0.35, 10.0),
        phase("py-import-site", 13.0, 0.62, 16.0, 3.6, 0.30, 10.0),
        phase("py-compile", 14.0, 0.42, 8.0, 2.0, 0.20, 10.0),
        phase("py-exec-init", 10.0, 0.36, 5.0, 1.5, 0.15, 10.0),
        phase("py-gc-warm", 7.0, 0.52, 10.0, 2.2, 0.25, 10.0),
    });
}

/**
 * Node.js startup: V8 snapshot load, builtin module registration,
 * CommonJS resolution and JIT warm-up. The longest startup of the
 * three (~97 ms in Figure 6), with sustained memory traffic.
 */
PhaseProgram
buildNodeStartup()
{
    return PhaseProgram({
        phase("nj-v8-init", 32.0, 0.85, 13.0, 2.6, 0.30, 10.0),
        phase("nj-snapshot", 54.0, 0.70, 18.0, 4.0, 0.38, 10.0),
        phase("nj-builtins", 79.0, 0.58, 15.0, 4.4, 0.32, 10.0),
        phase("nj-resolve", 94.0, 0.62, 14.0, 3.6, 0.30, 10.0),
        phase("nj-jit-warm", 83.0, 0.40, 6.0, 2.4, 0.18, 10.0),
        phase("nj-event-loop", 50.0, 0.50, 9.0, 2.4, 0.24, 10.0),
    });
}

/**
 * Go startup: statically linked binaries boot fast (~6 ms); runtime
 * init, allocator/scheduler setup, and package init() blocks.
 */
PhaseProgram
buildGoStartup()
{
    return PhaseProgram({
        phase("go-rt-init", 4.0, 0.62, 12.0, 1.8, 0.30, 10.0),
        phase("go-alloc-init", 6.0, 0.48, 9.0, 2.0, 0.26, 10.0),
        phase("go-pkg-init", 8.0, 0.40, 6.0, 1.6, 0.20, 10.0),
    });
}

} // namespace

std::string
languageSuffix(Language lang)
{
    switch (lang) {
      case Language::Python:
        return "py";
      case Language::NodeJs:
        return "nj";
      case Language::Go:
        return "go";
    }
    panic("languageSuffix: bad language");
}

std::string
languageName(Language lang)
{
    switch (lang) {
      case Language::Python:
        return "Python";
      case Language::NodeJs:
        return "Node.js";
      case Language::Go:
        return "Go";
    }
    panic("languageName: bad language");
}

const std::vector<Language> &
allLanguages()
{
    static const std::vector<Language> langs = {
        Language::Python, Language::NodeJs, Language::Go};
    return langs;
}

const PhaseProgram &
startupProgram(Language lang)
{
    static const PhaseProgram python = buildPythonStartup();
    static const PhaseProgram node = buildNodeStartup();
    static const PhaseProgram go = buildGoStartup();
    switch (lang) {
      case Language::Python:
        return python;
      case Language::NodeJs:
        return node;
      case Language::Go:
        return go;
    }
    panic("startupProgram: bad language");
}

Instructions
probeWindow(Language lang)
{
    switch (lang) {
      case Language::Python:
        return 45_Minstr;
      case Language::NodeJs:
        return 45_Minstr;
      case Language::Go:
        return 12_Minstr;
    }
    panic("probeWindow: bad language");
}

} // namespace litmus::workload
