/**
 * @file
 * Serverless function models: spec (static description) and task
 * factory (per-invocation instantiation with jitter).
 *
 * A FunctionSpec describes one Table 1 benchmark: its language (which
 * fixes its startup program and probe window), the demand of its body
 * phases, and its memory footprint for billing. makeInvocation() turns
 * a spec into a schedulable task for one invocation.
 */

#ifndef LITMUS_WORKLOAD_FUNCTION_MODEL_H
#define LITMUS_WORKLOAD_FUNCTION_MODEL_H

#include <memory>
#include <string>
#include <vector>

#include "workload/runtime_startup.h"

namespace litmus::workload
{

/** Static description of one serverless function. */
struct FunctionSpec
{
    /** Benchmark name with language suffix, e.g. "pager-py". */
    std::string name;

    Language language = Language::Python;

    /** Table 1 asterisk: member of the provider's reference set. */
    bool reference = false;

    /** Member of the evaluation test set (x-axis of Figures 11-21). */
    bool testSet = false;

    /** Body phases, executed after the language startup. */
    std::vector<Phase> body;

    /** Allocated memory for billing (pay-as-you-go GB-seconds). */
    Bytes memoryFootprint = 256_MiB;

    /** Total body instructions. */
    Instructions bodyInstructions() const;

    /** Startup + body as one program (no jitter). */
    PhaseProgram nominalProgram() const;

    void validate() const;
};

/** Per-invocation options. */
struct InvocationOptions
{
    /** Capture the Litmus probe over the startup window. */
    bool withProbe = true;

    /**
     * Override the probe window length in instructions (0 = the
     * language default). Used by the probe-length ablation; must not
     * exceed the startup length or the probe loses its common
     * substrate.
     */
    Instructions probeWindow = 0;

    /** Relative jitter of phase instruction counts. */
    double instructionJitter = 0.015;

    /** Relative jitter of memory intensity. */
    double memoryJitter = 0.02;
};

/**
 * Instantiate one invocation of the function as a schedulable task.
 *
 * The startup phases are never jittered (they are the probe substrate
 * and must stay consistent across invocations); body phases receive
 * small per-invocation jitter from @p rng.
 */
std::unique_ptr<ProgramTask> makeInvocation(const FunctionSpec &spec,
                                            Rng &rng,
                                            const InvocationOptions &opts =
                                                InvocationOptions{});

/**
 * Build the jitter-free invocation used for solo baselines so T_solo
 * is deterministic.
 */
std::unique_ptr<ProgramTask> makeNominalInvocation(
    const FunctionSpec &spec, bool with_probe = true);

/**
 * Instantiate a warm-start invocation: the runtime is already
 * initialized (a kept-alive container), so the language startup — and
 * with it the Litmus probe, whose substrate is the startup — is
 * skipped. Only the jittered body phases run.
 */
std::unique_ptr<ProgramTask> makeWarmInvocation(const FunctionSpec &spec,
                                                Rng &rng,
                                                const InvocationOptions &opts =
                                                    InvocationOptions{});

} // namespace litmus::workload

#endif // LITMUS_WORKLOAD_FUNCTION_MODEL_H
