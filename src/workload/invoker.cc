#include "workload/invoker.h"

#include "common/logging.h"
#include "workload/suite.h"

namespace litmus::workload
{

Invoker::Invoker(sim::Engine &engine, InvokerConfig cfg)
    : engine_(engine), cfg_(std::move(cfg)), rng_(cfg_.seed)
{
    if (cfg_.functionPool.empty())
        cfg_.functionPool = allFunctions();
    if (cfg_.cpuPool.empty())
        fatal("Invoker: empty cpuPool");
    if (cfg_.placement == InvokerConfig::Placement::OnePerCore &&
        cfg_.cpuPool.size() < cfg_.targetCount) {
        fatal("Invoker: OnePerCore needs >= targetCount CPUs (",
              cfg_.cpuPool.size(), " < ", cfg_.targetCount, ")");
    }
}

void
Invoker::start()
{
    if (!owned_.empty())
        fatal("Invoker::start called twice");
    for (unsigned i = 0; i < cfg_.targetCount; ++i) {
        if (cfg_.placement == InvokerConfig::Placement::OnePerCore)
            launch({cfg_.cpuPool[i]});
        else
            launch(cfg_.cpuPool);
    }
}

bool
Invoker::owns(const sim::Task &task) const
{
    return owned_.contains(task.id());
}

bool
Invoker::handleCompletion(sim::Task &task)
{
    const auto it = owned_.find(task.id());
    if (it == owned_.end())
        return false;
    std::vector<unsigned> affinity = std::move(it->second.affinity);
    committedMemory_ -= it->second.memory;
    owned_.erase(it);
    launch(std::move(affinity));
    return true;
}

void
Invoker::launch(std::vector<unsigned> affinity)
{
    const Bytes capacity = engine_.config().memoryCapacity;

    // Sample a function; when the memory limit is enforced, resample a
    // few times for one that fits, preferring smaller footprints the
    // way a real placer backfills.
    const FunctionSpec *spec = nullptr;
    for (int attempt = 0; attempt < 8; ++attempt) {
        const FunctionSpec *candidate =
            cfg_.functionPool[rng_.below(cfg_.functionPool.size())];
        if (!cfg_.enforceMemoryCapacity ||
            committedMemory_ + candidate->memoryFootprint <= capacity) {
            spec = candidate;
            break;
        }
    }
    if (!spec) {
        // Machine memory full: defer this slot until completions free
        // capacity (the next completion retries via launch()).
        ++deferred_;
        return;
    }

    InvocationOptions opts;
    opts.withProbe = cfg_.probes;
    auto task = makeInvocation(*spec, rng_, opts);
    task->setAffinity(affinity);
    sim::Task &handle = engine_.add(std::move(task));
    committedMemory_ += spec->memoryFootprint;
    owned_.emplace(handle.id(),
                   Owned{std::move(affinity), spec->memoryFootprint});
    ++launched_;
}

} // namespace litmus::workload
