#include <algorithm>

#include "workload/function_model.h"

#include "common/logging.h"

namespace litmus::workload
{

Instructions
FunctionSpec::bodyInstructions() const
{
    Instructions total = 0;
    for (const Phase &phase : body)
        total += phase.instructions;
    return total;
}

PhaseProgram
FunctionSpec::nominalProgram() const
{
    PhaseProgram program = startupProgram(language);
    for (const Phase &phase : body)
        program.append(phase);
    return program;
}

void
FunctionSpec::validate() const
{
    if (name.empty())
        fatal("FunctionSpec: empty name");
    if (body.empty())
        fatal("FunctionSpec ", name, ": needs at least one body phase");
    for (const Phase &phase : body)
        phase.validate();
    if (memoryFootprint == 0)
        fatal("FunctionSpec ", name, ": zero memory footprint");
}

std::unique_ptr<ProgramTask>
makeInvocation(const FunctionSpec &spec, Rng &rng,
               const InvocationOptions &opts)
{
    spec.validate();
    PhaseProgram program = startupProgram(spec.language);
    for (const Phase &phase : spec.body) {
        program.append(jitterPhase(phase, rng, opts.instructionJitter,
                                   opts.memoryJitter));
    }
    Instructions window = sim::Task::noProbe;
    if (opts.withProbe) {
        window = opts.probeWindow > 0 ? opts.probeWindow
                                      : probeWindow(spec.language);
        // The probe is only meaningful over the common startup prefix.
        window = std::min(
            window,
            startupProgram(spec.language).totalInstructions() * 0.9);
    }
    return std::make_unique<ProgramTask>(spec.name, std::move(program),
                                         window);
}

std::unique_ptr<ProgramTask>
makeWarmInvocation(const FunctionSpec &spec, Rng &rng,
                   const InvocationOptions &opts)
{
    spec.validate();
    PhaseProgram program;
    for (const Phase &phase : spec.body) {
        program.append(jitterPhase(phase, rng, opts.instructionJitter,
                                   opts.memoryJitter));
    }
    return std::make_unique<ProgramTask>(spec.name, std::move(program),
                                         sim::Task::noProbe);
}

std::unique_ptr<ProgramTask>
makeNominalInvocation(const FunctionSpec &spec, bool with_probe)
{
    spec.validate();
    const Instructions window =
        with_probe ? probeWindow(spec.language) : sim::Task::noProbe;
    return std::make_unique<ProgramTask>(spec.name,
                                         spec.nominalProgram(), window);
}

} // namespace litmus::workload
