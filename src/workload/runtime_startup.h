/**
 * @file
 * Language-runtime startup models (the substrate of the Litmus test).
 *
 * Section 6 observes that functions written in the same language have
 * nearly identical startup phases (Figure 6): Python spends ~19 ms in
 * interpreter init / imports / compilation, Node.js ~97 ms, Go ~6 ms,
 * all with bursts of memory reads while loading images and libraries.
 * These programs reproduce that structure: every function of a given
 * language begins with the same startup phase program, making the
 * startup a consistent congestion probe.
 */

#ifndef LITMUS_WORKLOAD_RUNTIME_STARTUP_H
#define LITMUS_WORKLOAD_RUNTIME_STARTUP_H

#include <string>

#include "workload/program.h"

namespace litmus::workload
{

/** Language runtimes used by the Table 1 suite. */
enum class Language
{
    Python,
    NodeJs,
    Go,
};

/** Short suffix used in function names ("py", "nj", "go"). */
std::string languageSuffix(Language lang);

/** Display name ("Python", "Node.js", "Go"). */
std::string languageName(Language lang);

/** All modelled languages, in a stable order. */
const std::vector<Language> &allLanguages();

/**
 * The startup phase program for a language. Identical for every
 * function of that language (the property the Litmus test exploits).
 */
const PhaseProgram &startupProgram(Language lang);

/**
 * Litmus-probe window for the language: the instruction count over
 * which startup slowdown and machine L3 misses are measured. The
 * paper uses the first 45M instructions of the Python startup
 * (Section 7.1); Go's startup is shorter, so its window is smaller.
 */
Instructions probeWindow(Language lang);

} // namespace litmus::workload

#endif // LITMUS_WORKLOAD_RUNTIME_STARTUP_H
