#include "workload/program.h"

#include "common/logging.h"

namespace litmus::workload
{

PhaseProgram::PhaseProgram(std::vector<Phase> phases)
    : phases_(std::move(phases))
{
    for (const Phase &phase : phases_)
        phase.validate();
}

PhaseProgram &
PhaseProgram::append(Phase phase)
{
    phase.validate();
    phases_.push_back(std::move(phase));
    return *this;
}

Instructions
PhaseProgram::totalInstructions() const
{
    Instructions total = 0;
    for (const Phase &phase : phases_)
        total += phase.instructions;
    return total;
}

PhaseProgram
PhaseProgram::then(const PhaseProgram &next) const
{
    std::vector<Phase> combined = phases_;
    combined.insert(combined.end(), next.phases_.begin(),
                    next.phases_.end());
    return PhaseProgram(std::move(combined));
}

ProgramTask::ProgramTask(std::string name, PhaseProgram program,
                         Instructions probe_window)
    : Task(std::move(name), probe_window), program_(std::move(program))
{
    if (program_.empty())
        fatal("ProgramTask ", this->name(), ": empty program");
}

const sim::ResourceDemand &
ProgramTask::demand() const
{
    if (finished())
        panic("ProgramTask::demand after completion");
    return program_.phases()[index_].demand;
}

Instructions
ProgramTask::remainingInPhase() const
{
    if (finished())
        return 0;
    return program_.phases()[index_].instructions - retiredInPhase_;
}

void
ProgramTask::retire(Instructions n)
{
    if (finished())
        panic("ProgramTask::retire after completion");
    retiredInPhase_ += n;
    while (index_ < program_.size() &&
           retiredInPhase_ >= program_.phases()[index_].instructions -
                                  1e-6) {
        retiredInPhase_ -= program_.phases()[index_].instructions;
        if (retiredInPhase_ < 0)
            retiredInPhase_ = 0;
        ++index_;
    }
}

bool
ProgramTask::finished() const
{
    return index_ >= program_.size();
}

EndlessTask::EndlessTask(std::string name, sim::ResourceDemand demand)
    : Task(std::move(name)), demand_(demand)
{
    demand_.validate();
}

Instructions
EndlessTask::remainingInPhase() const
{
    return sim::endlessPhase;
}

void
EndlessTask::retire(Instructions)
{
    // Endless work: nothing to track.
}

} // namespace litmus::workload
