#include "workload/open_loop.h"

#include "common/logging.h"
#include "workload/suite.h"

namespace litmus::workload
{

OpenLoopInvoker::OpenLoopInvoker(sim::Engine &engine, OpenLoopConfig cfg)
    : engine_(engine), cfg_(std::move(cfg)), rng_(cfg_.seed)
{
    if (cfg_.arrivalsPerSecond <= 0)
        fatal("OpenLoopInvoker: arrival rate must be positive");
    if (cfg_.cpuPool.empty())
        fatal("OpenLoopInvoker: empty cpuPool");
    if (cfg_.functionPool.empty())
        cfg_.functionPool = allFunctions();
}

void
OpenLoopInvoker::start()
{
    if (started_)
        fatal("OpenLoopInvoker::start called twice");
    started_ = true;
    nextArrival_ =
        engine_.now() + rng_.exponential(1.0 / cfg_.arrivalsPerSecond);
    engine_.onQuantum(
        [this](Seconds now, const sim::SharedState &) { onQuantum(now); });
}

bool
OpenLoopInvoker::owns(const sim::Task &task) const
{
    return live_.contains(task.id());
}

bool
OpenLoopInvoker::handleCompletion(sim::Task &task)
{
    const auto it = live_.find(task.id());
    if (it == live_.end())
        return false;
    committedMemory_ -= it->second;
    live_.erase(it);
    return true;
}

void
OpenLoopInvoker::onQuantum(Seconds now)
{
    while (now >= nextArrival_) {
        ++arrivals_;
        admit();
        nextArrival_ +=
            rng_.exponential(1.0 / cfg_.arrivalsPerSecond);
    }
}

void
OpenLoopInvoker::admit()
{
    if (cfg_.maxConcurrent > 0 &&
        live_.size() >= cfg_.maxConcurrent) {
        ++rejectedCap_;
        return;
    }

    const FunctionSpec &spec =
        *cfg_.functionPool[rng_.below(cfg_.functionPool.size())];

    if (cfg_.enforceMemoryCapacity &&
        committedMemory_ + spec.memoryFootprint >
            engine_.config().memoryCapacity) {
        ++rejectedMemory_;
        return;
    }

    InvocationOptions opts;
    opts.withProbe = cfg_.probes;
    auto task = makeInvocation(spec, rng_, opts);
    task->setAffinity(cfg_.cpuPool);
    sim::Task &handle = engine_.add(std::move(task));
    committedMemory_ += spec.memoryFootprint;
    live_.emplace(handle.id(), spec.memoryFootprint);
    ++launched_;
}

} // namespace litmus::workload
