#include "workload/suite.h"

#include <unordered_map>

#include "common/logging.h"

namespace litmus::workload
{

namespace
{

/** Role of a suite member in the evaluation. */
enum class Role
{
    Ref,  // reference set (Table 1 asterisk)
    Test, // evaluation test set (Figure 11 x-axis)
    Pool, // co-runner pool only
};

/**
 * Build one spec with a single body phase.
 *
 * @param name      suite name with language suffix
 * @param lang      runtime language
 * @param role      reference / test / pool
 * @param minstr    body length in millions of instructions
 * @param cpi0      base private CPI of the body
 * @param mpki      L2 misses per kilo-instruction
 * @param ws_mib    L3 working set (MiB)
 * @param miss_base fraction of L2 misses missing L3 at full share
 * @param mlp       memory-level parallelism
 * @param mem_mib   billing memory footprint (MiB)
 */
FunctionSpec
fn(const char *name, Language lang, Role role, double minstr,
   double cpi0, double mpki, double ws_mib, double miss_base, double mlp,
   unsigned mem_mib)
{
    FunctionSpec spec;
    spec.name = name;
    spec.language = lang;
    spec.reference = role == Role::Ref;
    spec.testSet = role == Role::Test;

    Phase body;
    body.name = "body";
    body.instructions = minstr * 1e6;
    body.demand.cpi0 = cpi0;
    body.demand.l2Mpki = mpki;
    body.demand.l3WorkingSet =
        static_cast<Bytes>(ws_mib * 1024.0 * 1024.0);
    body.demand.l3MissBase = miss_base;
    body.demand.mlp = mlp;
    spec.body.push_back(std::move(body));

    spec.memoryFootprint = static_cast<Bytes>(mem_mib) * 1024 * 1024;
    spec.validate();
    return spec;
}

/** One body phase for the multi-phase specs. */
Phase
bodyPhase(const char *name, double minstr, double cpi0, double mpki,
          double ws_mib, double miss_base, double mlp)
{
    Phase p;
    p.name = name;
    p.instructions = minstr * 1e6;
    p.demand.cpi0 = cpi0;
    p.demand.l2Mpki = mpki;
    p.demand.l3WorkingSet = static_cast<Bytes>(ws_mib * 1024.0 * 1024.0);
    p.demand.l3MissBase = miss_base;
    p.demand.mlp = mlp;
    p.validate();
    return p;
}

/** Build a spec with an explicit multi-phase body. */
FunctionSpec
fnMulti(const char *name, Language lang, Role role,
        std::vector<Phase> body, unsigned mem_mib)
{
    FunctionSpec spec;
    spec.name = name;
    spec.language = lang;
    spec.reference = role == Role::Ref;
    spec.testSet = role == Role::Test;
    spec.body = std::move(body);
    spec.memoryFootprint = static_cast<Bytes>(mem_mib) * 1024 * 1024;
    spec.validate();
    return spec;
}

std::vector<FunctionSpec>
buildSuite()
{
    using L = Language;
    using R = Role;
    std::vector<FunctionSpec> suite;

    // Body parameters are chosen so each function's solo shared-time
    // share (stall cycles / total cycles) matches its paper
    // characterization: graph workloads 12-18%, streaming 7-10%,
    // light services 3-6%, float-py essentially zero.

    // ---- Python ------------------------------------------------------
    // AES encryption: keyed rounds over small state; mild memory use.
    suite.push_back(fn("aes-py", L::Python, R::Test,
                       160, 0.72, 1.6, 2.0, 0.18, 4.0, 256));
    // Recursive Fibonacci: call-stack bound, cache friendly.
    suite.push_back(fn("fib-py", L::Python, R::Ref,
                       120, 0.62, 0.66, 1.0, 0.08, 3.0, 128));
    // SeBS dynamic HTML rendering: template expansion, allocation heavy.
    suite.push_back(fn("dyn-py", L::Python, R::Test,
                       140, 0.78, 2.8, 3.5, 0.22, 4.0, 256));
    // SeBS thumbnailer: decode -> resize -> encode pipeline phases.
    suite.push_back(fnMulti(
        "thum-py", L::Python, R::Ref,
        {bodyPhase("decode", 70, 0.90, 3.2, 4.5, 0.50, 6.0),
         bodyPhase("resize", 100, 0.75, 1.8, 3.0, 0.45, 5.0),
         bodyPhase("encode", 50, 0.78, 1.6, 2.0, 0.40, 4.5)},
        512));
    // SeBS compression: dictionary passes over the input buffer.
    suite.push_back(fn("compre-py", L::Python, R::Test,
                       260, 0.75, 1.6, 3.0, 0.50, 5.0, 512));
    // SeBS image recognition: streaming model load, then cache-warm
    // inference, then light post-processing.
    suite.push_back(fnMulti(
        "recogn-py", L::Python, R::Test,
        {bodyPhase("load-model", 80, 0.85, 4.0, 6.0, 0.60, 6.0),
         bodyPhase("inference", 280, 0.66, 1.1, 6.0, 0.20, 3.5),
         bodyPhase("postprocess", 40, 0.60, 0.8, 1.0, 0.15, 3.0)},
        1024));
    // SeBS graph pagerank: pointer chasing over a large graph — the
    // paper's most congestion-sensitive function.
    suite.push_back(fn("pager-py", L::Python, R::Test,
                       300, 0.66, 2.8, 9.0, 0.30, 3.2, 512));
    // SeBS graph MST.
    suite.push_back(fn("mst-py", L::Python, R::Test,
                       260, 0.68, 2.8, 8.0, 0.25, 3.4, 512));
    // SeBS graph BFS.
    suite.push_back(fn("bfs-py", L::Python, R::Ref,
                       240, 0.66, 2.6, 8.5, 0.28, 3.2, 512));
    // SeBS DNA visualization: sequence windows + rendering buffers.
    suite.push_back(fn("visual-py", L::Python, R::Ref,
                       320, 0.74, 1.9, 5.0, 0.35, 4.0, 512));
    // AWS Lambda authorizer: token parse + HMAC check.
    suite.push_back(fn("auth-py", L::Python, R::Ref,
                       90, 0.70, 1.3, 1.8, 0.20, 4.0, 128));
    // FunctionBench chameleon templating.
    suite.push_back(fn("chame-py", L::Python, R::Test,
                       180, 0.76, 1.7, 3.0, 0.25, 4.0, 256));
    // FunctionBench float operations: pure compute, negligible memory
    // traffic (the paper's 99.96% T_private example).
    suite.push_back(fn("float-py", L::Python, R::Test,
                       1200, 0.55, 0.012, 0.25, 0.05, 2.0, 128));
    // FunctionBench gzip: read -> compress -> write phases.
    suite.push_back(fnMulti(
        "gzip-py", L::Python, R::Ref,
        {bodyPhase("read", 40, 0.80, 2.5, 3.5, 0.70, 8.0),
         bodyPhase("compress", 170, 0.70, 1.3, 3.0, 0.50, 4.5),
         bodyPhase("write", 30, 0.75, 1.2, 1.5, 0.60, 6.0)},
        256));
    // FunctionBench random disk I/O: page-cache misses everywhere.
    suite.push_back(fn("randDisk-py", L::Python, R::Ref,
                       200, 0.85, 1.6, 7.0, 0.60, 3.0, 512));
    // FunctionBench sequential disk I/O: buffered streaming.
    suite.push_back(fn("seqDisk-py", L::Python, R::Test,
                       220, 0.80, 2.0, 4.5, 0.65, 6.0, 512));

    // ---- Node.js -----------------------------------------------------
    suite.push_back(fn("aes-nj", L::NodeJs, R::Ref,
                       200, 0.68, 1.6, 3.0, 0.25, 4.0, 256));
    suite.push_back(fn("auth-nj", L::NodeJs, R::Test,
                       110, 0.72, 2.0, 3.0, 0.22, 4.0, 128));
    // Fibonacci in Node: JIT deopt churn + GC makes it memory heavy
    // (the paper singles fib-nj out as shared-resource reliant).
    suite.push_back(fn("fib-nj", L::NodeJs, R::Ref,
                       150, 0.60, 2.7, 8.0, 0.30, 3.0, 256));
    // Online Boutique currency service.
    suite.push_back(fn("cur-nj", L::NodeJs, R::Ref,
                       130, 0.74, 2.1, 4.0, 0.28, 4.0, 256));
    // Online Boutique payment service.
    suite.push_back(fn("pay-nj", L::NodeJs, R::Test,
                       140, 0.73, 1.9, 3.5, 0.25, 4.0, 256));

    // ---- Go ----------------------------------------------------------
    suite.push_back(fn("aes-go", L::Go, R::Ref,
                       180, 0.50, 0.8, 1.8, 0.20, 4.5, 128));
    suite.push_back(fn("auth-go", L::Go, R::Test,
                       100, 0.52, 1.0, 2.0, 0.22, 4.5, 128));
    suite.push_back(fn("fib-go", L::Go, R::Ref,
                       140, 0.45, 0.3, 0.7, 0.10, 3.0, 128));
    // Hotel Reservation geo service: spatial index walks.
    suite.push_back(fn("geo-go", L::Go, R::Test,
                       160, 0.55, 1.9, 5.0, 0.30, 4.0, 256));
    // Hotel Reservation profile service.
    suite.push_back(fn("profile-go", L::Go, R::Ref,
                       170, 0.56, 1.7, 4.5, 0.28, 4.0, 256));
    // Hotel Reservation rate service.
    suite.push_back(fn("rate-go", L::Go, R::Test,
                       150, 0.54, 1.4, 3.5, 0.26, 4.0, 256));

    return suite;
}

} // namespace

const std::vector<FunctionSpec> &
table1Suite()
{
    static const std::vector<FunctionSpec> suite = buildSuite();
    return suite;
}

std::vector<const FunctionSpec *>
referenceSet()
{
    std::vector<const FunctionSpec *> out;
    for (const FunctionSpec &spec : table1Suite()) {
        if (spec.reference)
            out.push_back(&spec);
    }
    return out;
}

std::vector<const FunctionSpec *>
testSet()
{
    std::vector<const FunctionSpec *> out;
    for (const FunctionSpec &spec : table1Suite()) {
        if (spec.testSet)
            out.push_back(&spec);
    }
    return out;
}

std::vector<const FunctionSpec *>
memoryIntensiveSet()
{
    // Section 8: aes-py, compre-py, thum-py, bfs-py, auth-py, fib-go,
    // geo-go, profile-go.
    static const char *names[] = {"aes-py", "compre-py", "thum-py",
                                  "bfs-py", "auth-py", "fib-go",
                                  "geo-go", "profile-go"};
    std::vector<const FunctionSpec *> out;
    for (const char *name : names)
        out.push_back(&functionByName(name));
    return out;
}

const FunctionSpec *
findFunction(const std::string &name)
{
    static const auto index = [] {
        // LITMUS-LINT-ALLOW(unordered-decl): name->spec lookup index only; suite order everywhere comes from table1Suite()'s vector
        std::unordered_map<std::string, const FunctionSpec *> map;
        for (const FunctionSpec &spec : table1Suite())
            map.emplace(spec.name, &spec);
        return map;
    }();
    const auto it = index.find(name);
    return it == index.end() ? nullptr : it->second;
}

const FunctionSpec &
functionByName(const std::string &name)
{
    const FunctionSpec *spec = findFunction(name);
    if (!spec)
        fatal("functionByName: unknown function '", name, "'");
    return *spec;
}

std::vector<const FunctionSpec *>
allFunctions()
{
    std::vector<const FunctionSpec *> out;
    for (const FunctionSpec &spec : table1Suite())
        out.push_back(&spec);
    return out;
}

} // namespace litmus::workload
