#include "sim/frequency_governor.h"

#include <algorithm>

namespace litmus::sim
{

FrequencyGovernor::FrequencyGovernor(const MachineConfig &cfg,
                                     FrequencyPolicy policy)
    : cfg_(cfg), policy_(policy)
{
}

Hertz
FrequencyGovernor::frequency(unsigned active_cores) const
{
    if (policy_ == FrequencyPolicy::Fixed || active_cores <= 1) {
        return policy_ == FrequencyPolicy::Fixed ? cfg_.baseFrequency
                                                 : cfg_.turboFrequency;
    }

    // Turbo ladder: linear license decay from the single-core peak to
    // the base frequency once half the cores are active; base beyond.
    const unsigned knee = std::max(1u, cfg_.cores / 2);
    if (active_cores >= knee)
        return cfg_.baseFrequency;
    const double t = static_cast<double>(active_cores - 1) /
                     static_cast<double>(knee - 1 == 0 ? 1 : knee - 1);
    return cfg_.turboFrequency +
           t * (cfg_.baseFrequency - cfg_.turboFrequency);
}

} // namespace litmus::sim
