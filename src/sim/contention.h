/**
 * @file
 * Shared-resource contention model.
 *
 * Once per quantum the solver takes every running hardware thread's
 * demand and computes a self-consistent operating point of the shared
 * domain:
 *
 *  - the L3 access path (CT-Gen's target): aggregate L2-miss traffic
 *    vs. L3 service bandwidth gives a queuing multiplier on L3 hit
 *    latency;
 *  - L3 capacity: threads receive occupancy shares proportional to
 *    their working sets; a thread squeezed below its working set sees
 *    an elevated L3 miss fraction (MB-Gen's eviction effect);
 *  - DRAM bandwidth (MB-Gen's target): aggregate L3-miss traffic vs.
 *    memory service bandwidth gives a queuing multiplier on memory
 *    latency.
 *
 * The fixed point is found by damped iteration: faster threads create
 * more traffic, which raises latencies, which slows threads down.
 */

#ifndef LITMUS_SIM_CONTENTION_H
#define LITMUS_SIM_CONTENTION_H

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "sim/machine_config.h"
#include "sim/task.h"

namespace litmus::sim
{

/** Per-thread multipliers the scheduler decides before solving. */
struct ThreadEnvironment
{
    /** Cache-warmth CPI inflation from temporal sharing (>= 1). */
    double warmthMult = 1.0;

    /** SMT sibling-activity CPI inflation (>= 1). */
    double smtMult = 1.0;
};

/** One running hardware thread as seen by the solver. */
struct SolverInput
{
    ResourceDemand demand;
    ThreadEnvironment env;
};

/** Shared-domain operating point, identical for all threads. */
struct SharedState
{
    /** Effective L3 hit latency in ns after queuing. */
    double l3LatencyNs = 0.0;

    /** Effective DRAM latency in ns after queuing. */
    double memLatencyNs = 0.0;

    /** Utilization of the L3 access path in [0, maxUtilization]. */
    double l3Utilization = 0.0;

    /** Utilization of DRAM bandwidth in [0, maxUtilization]. */
    double memUtilization = 0.0;

    /** Sum of all running threads' L3 working sets (bytes). */
    double totalWorkingSet = 0.0;
};

/** Per-thread outcome of the solve. */
struct ThreadPerf
{
    /** Effective private CPI (cpi0 x warmth x smt x coupling). */
    double privateCpi = 0.0;

    /** Shared-domain stall cycles per instruction. */
    double stallPerInstr = 0.0;

    /** L3 miss fraction of this thread's L2 misses, in [0,1]. */
    double l3MissFraction = 0.0;

    /** Total effective CPI. */
    double cpi() const { return privateCpi + stallPerInstr; }

    /** Instructions per cycle. */
    double ipc() const { return 1.0 / cpi(); }
};

/** Complete solver result for a quantum. */
struct ContentionResult
{
    SharedState shared;
    std::vector<ThreadPerf> threads;
};

/**
 * Analytic fixed-point solver for the shared domain.
 *
 * Stateless apart from the configuration; one instance per Machine.
 */
class ContentionSolver
{
  public:
    explicit ContentionSolver(const MachineConfig &cfg);

    /**
     * Solve the operating point for the given running threads.
     * @param inputs one entry per running hardware thread
     * @param frequency current core clock (traffic scales with it)
     * @param waiting_working_set summed L3 working sets (bytes) of
     *        runnable-but-switched-out tasks; scaled by the config's
     *        residencyFactor it pressures the capacity shares
     */
    ContentionResult solve(const std::vector<SolverInput> &inputs,
                           Hertz frequency,
                           double waiting_working_set = 0.0) const;

    /**
     * Recompute a single thread's perf against a fixed shared state
     * (used when a task changes phase mid-quantum).
     */
    ThreadPerf threadPerf(const ResourceDemand &demand,
                          const ThreadEnvironment &env,
                          const SharedState &shared,
                          Hertz frequency) const;

    /**
     * Queuing-delay multiplier at utilization u (clamped to [0,1]):
     * qf(u) = 1 + (qmax - 1) * u^gamma. Smooth, 1 at u=0, saturating
     * at qmax when the resource is fully utilized.
     */
    double queueFactor(double u, double qmax) const;

    /**
     * L3 miss fraction for a demand given its capacity share.
     * Exposed for unit tests of the capacity-pressure curve.
     */
    double missFraction(const ResourceDemand &demand,
                        double shareBytes) const;

  private:
    const MachineConfig &cfg_;
};

/**
 * LRU memo of solved contention fixed points.
 *
 * The solver is a pure function of (thread demands, environments,
 * frequency, waiting working set) — the *phase signature* of the
 * co-running tasks. Repeated co-run patterns dominate both the Table 1
 * suite and the fleet path, so memoizing the iterative solve removes it
 * from the hot loop entirely. Keys are built from the exact bit
 * patterns of every input, so a hit returns a result bit-identical to
 * a fresh solve and the memo can never change simulation output.
 *
 * Keys grow with the co-run width (7 words per thread), so on traffic
 * whose signatures rarely repeat — per-invocation jitter makes every
 * fleet arrival unique — hashing can cost more than the hits save.
 * The memo watches its own hit rate and permanently bypasses itself
 * when, after a warm-up, hits stay under ~20% of lookups; the bypass
 * only changes *where* the solve runs, never its result.
 *
 * Concurrency discipline: the memo is deliberately unsynchronized —
 * no mutex, no capability annotation. Each Machine owns exactly one
 * memo, each machine is advanced by exactly one EpochPool job per
 * epoch, and the pool's barrier (see cluster/epoch_pool.h) orders one
 * epoch's accesses before the next. The memo is thread-*confined*,
 * not thread-safe; sharing one instance across concurrently-advancing
 * machines would be a data race.
 */
class ContentionMemo
{
  public:
    /** @param capacity distinct phase signatures kept (LRU beyond). */
    explicit ContentionMemo(std::size_t capacity = 1024);

    /**
     * Solve via the memo; falls through to @p solver on a miss.
     * The returned reference stays valid until the next solve() call.
     */
    const ContentionResult &solve(const ContentionSolver &solver,
                                  const std::vector<SolverInput> &inputs,
                                  Hertz frequency,
                                  double waiting_working_set);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** True once the hit-rate watchdog has switched the memo off. */
    bool bypassed() const { return bypassed_; }

  private:
    /** Bit patterns of every solver input, in a fixed layout. */
    using Key = std::vector<std::uint64_t>;

    struct KeyHash
    {
        std::size_t operator()(const Key &key) const;
    };

    /** Build the lookup key into @p key (reused buffer, no alloc). */
    static void makeKey(Key &key,
                        const std::vector<SolverInput> &inputs,
                        Hertz frequency, double waiting_working_set);

    std::size_t capacity_;
    Key keyBuffer_;
    std::list<std::pair<Key, ContentionResult>> entries_; // MRU first
    // LITMUS-LINT-ALLOW(unordered-decl): keyed lookup only; LRU/eviction order lives in entries_ (std::list), and hits are bit-identical to fresh solves
    std::unordered_map<Key, decltype(entries_)::iterator, KeyHash> index_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    bool bypassed_ = false;
    /** Holds the result of a bypassed (direct) solve. */
    ContentionResult bypassResult_;
};

} // namespace litmus::sim

#endif // LITMUS_SIM_CONTENTION_H
