/**
 * @file
 * Shared-resource contention model.
 *
 * Once per quantum the solver takes every running hardware thread's
 * demand and computes a self-consistent operating point of the shared
 * domain:
 *
 *  - the L3 access path (CT-Gen's target): aggregate L2-miss traffic
 *    vs. L3 service bandwidth gives a queuing multiplier on L3 hit
 *    latency;
 *  - L3 capacity: threads receive occupancy shares proportional to
 *    their working sets; a thread squeezed below its working set sees
 *    an elevated L3 miss fraction (MB-Gen's eviction effect);
 *  - DRAM bandwidth (MB-Gen's target): aggregate L3-miss traffic vs.
 *    memory service bandwidth gives a queuing multiplier on memory
 *    latency.
 *
 * The fixed point is found by damped iteration: faster threads create
 * more traffic, which raises latencies, which slows threads down.
 */

#ifndef LITMUS_SIM_CONTENTION_H
#define LITMUS_SIM_CONTENTION_H

#include <vector>

#include "sim/machine_config.h"
#include "sim/task.h"

namespace litmus::sim
{

/** Per-thread multipliers the scheduler decides before solving. */
struct ThreadEnvironment
{
    /** Cache-warmth CPI inflation from temporal sharing (>= 1). */
    double warmthMult = 1.0;

    /** SMT sibling-activity CPI inflation (>= 1). */
    double smtMult = 1.0;
};

/** One running hardware thread as seen by the solver. */
struct SolverInput
{
    ResourceDemand demand;
    ThreadEnvironment env;
};

/** Shared-domain operating point, identical for all threads. */
struct SharedState
{
    /** Effective L3 hit latency in ns after queuing. */
    double l3LatencyNs = 0.0;

    /** Effective DRAM latency in ns after queuing. */
    double memLatencyNs = 0.0;

    /** Utilization of the L3 access path in [0, maxUtilization]. */
    double l3Utilization = 0.0;

    /** Utilization of DRAM bandwidth in [0, maxUtilization]. */
    double memUtilization = 0.0;

    /** Sum of all running threads' L3 working sets (bytes). */
    double totalWorkingSet = 0.0;
};

/** Per-thread outcome of the solve. */
struct ThreadPerf
{
    /** Effective private CPI (cpi0 x warmth x smt x coupling). */
    double privateCpi = 0.0;

    /** Shared-domain stall cycles per instruction. */
    double stallPerInstr = 0.0;

    /** L3 miss fraction of this thread's L2 misses, in [0,1]. */
    double l3MissFraction = 0.0;

    /** Total effective CPI. */
    double cpi() const { return privateCpi + stallPerInstr; }

    /** Instructions per cycle. */
    double ipc() const { return 1.0 / cpi(); }
};

/** Complete solver result for a quantum. */
struct ContentionResult
{
    SharedState shared;
    std::vector<ThreadPerf> threads;
};

/**
 * Analytic fixed-point solver for the shared domain.
 *
 * Stateless apart from the configuration; one instance per Machine.
 */
class ContentionSolver
{
  public:
    explicit ContentionSolver(const MachineConfig &cfg);

    /**
     * Solve the operating point for the given running threads.
     * @param inputs one entry per running hardware thread
     * @param frequency current core clock (traffic scales with it)
     * @param waiting_working_set summed L3 working sets (bytes) of
     *        runnable-but-switched-out tasks; scaled by the config's
     *        residencyFactor it pressures the capacity shares
     */
    ContentionResult solve(const std::vector<SolverInput> &inputs,
                           Hertz frequency,
                           double waiting_working_set = 0.0) const;

    /**
     * Recompute a single thread's perf against a fixed shared state
     * (used when a task changes phase mid-quantum).
     */
    ThreadPerf threadPerf(const ResourceDemand &demand,
                          const ThreadEnvironment &env,
                          const SharedState &shared,
                          Hertz frequency) const;

    /**
     * Queuing-delay multiplier at utilization u (clamped to [0,1]):
     * qf(u) = 1 + (qmax - 1) * u^gamma. Smooth, 1 at u=0, saturating
     * at qmax when the resource is fully utilized.
     */
    double queueFactor(double u, double qmax) const;

    /**
     * L3 miss fraction for a demand given its capacity share.
     * Exposed for unit tests of the capacity-pressure curve.
     */
    double missFraction(const ResourceDemand &demand,
                        double shareBytes) const;

  private:
    const MachineConfig &cfg_;
};

} // namespace litmus::sim

#endif // LITMUS_SIM_CONTENTION_H
