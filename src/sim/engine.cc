#include "sim/engine.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace litmus::sim
{

void
EngineStats::registerWith(StatsRegistry &registry,
                          const std::string &group)
{
    registry.add(group, quanta);
    registry.add(group, completions);
    registry.add(group, instructions);
    registry.add(group, l3Utilization);
    registry.add(group, memUtilization);
    registry.add(group, runningThreads);
    registry.add(group, frequencyGhz);
}

Engine::Engine(const MachineConfig &cfg, FrequencyPolicy policy,
               Seconds quantum)
    : cfg_(cfg),
      solver_(cfg_),
      governor_(cfg_, policy),
      scheduler_(cfg_),
      quantum_(quantum),
      lastFrequency_(cfg_.baseFrequency)
{
    cfg_.validate();
    if (quantum_ <= 0)
        fatal("Engine: quantum must be positive");
}

Task &
Engine::add(std::unique_ptr<Task> task)
{
    if (!task)
        fatal("Engine::add: null task");
    task->setId(nextTaskId_++);
    task->setLaunchTime(now_);
    if (task->probeWindow() > 0) {
        ProbeCapture &probe = task->probe();
        probe.started = true;
        probe.taskAtStart = task->counters();
        probe.machineAtStart = machine_;
    }
    Task &ref = *task;
    scheduler_.add(task.get());
    liveIds_.insert(ref.id());
    tasks_.push_back(std::move(task));
    return ref;
}

bool
Engine::alive(const Task &task) const
{
    return aliveId(task.id());
}

bool
Engine::aliveId(std::uint64_t id) const
{
    return liveIds_.contains(id);
}

std::vector<Task *>
Engine::liveTasks()
{
    std::vector<Task *> out;
    out.reserve(tasks_.size());
    for (const auto &t : tasks_)
        out.push_back(t.get());
    return out;
}

void
Engine::run(Seconds duration)
{
    if (duration < 0)
        fatal("Engine::run: negative duration");
    // Count quanta as an integer: accumulated floating-point time
    // drifts after millions of quanta and would drop or add a whole
    // quantum against an absolute end-time comparison. The epsilon
    // keeps exact multiples (duration == n * quantum) at n quanta.
    const auto quanta = static_cast<std::uint64_t>(
        std::ceil(duration / quantum_ - 1e-9));
    for (std::uint64_t i = 0; i < quanta; ++i)
        step();
}

void
Engine::runUntilComplete(const Task &task, Seconds cap)
{
    runUntilCompleteId(task.id(), cap);
}

void
Engine::runUntilCompleteId(std::uint64_t id, Seconds cap)
{
    const Seconds end = now_ + cap;
    while (aliveId(id)) {
        if (now_ >= end)
            fatal("Engine::runUntilCompleteId: task ", id,
                  " did not finish within ", cap, " simulated seconds");
        step();
    }
}

void
Engine::runUntilIdle(Seconds cap)
{
    const Seconds end = now_ + cap;
    while (!tasks_.empty()) {
        if (now_ >= end)
            fatal("Engine::runUntilIdle: tasks still live after ", cap,
                  " simulated seconds");
        step();
    }
}

void
Engine::step()
{
    const Seconds dt = quantum_;
    const unsigned cpus = scheduler_.cpuCount();

    const Hertz freq = governor_.frequency(scheduler_.activeCores());
    lastFrequency_ = freq;

    // Gather running threads and solve each socket's shared domain
    // independently (sockets == 1 for the default presets).
    unsigned totalRunning = 0;
    SharedState observedState; // hottest-domain view for observers
    observedState.l3LatencyNs = cfg_.l3HitLatencyNs;
    observedState.memLatencyNs = cfg_.memLatencyNs;

    const unsigned perSocket = cfg_.hwThreadsPerSocket();
    for (unsigned socket = 0; socket < cfg_.sockets; ++socket) {
        const unsigned cpuBegin = socket * perSocket;
        const unsigned cpuEnd = std::min(cpuBegin + perSocket, cpus);

        std::vector<unsigned> runningCpus;
        std::vector<Task *> runningTasks;
        std::vector<SolverInput> inputs;
        runningCpus.reserve(cpuEnd - cpuBegin);
        runningTasks.reserve(cpuEnd - cpuBegin);
        inputs.reserve(cpuEnd - cpuBegin);

        for (unsigned cpu = cpuBegin; cpu < cpuEnd; ++cpu) {
            Task *task = scheduler_.runningOn(cpu);
            if (!task || task->finished())
                continue;
            SolverInput input;
            input.demand = task->demand();
            input.env.warmthMult = scheduler_.warmthMult(cpu);
            input.env.smtMult = scheduler_.siblingBusy(cpu)
                                    ? cfg_.smtCpiMultiplier
                                    : 1.0;
            runningCpus.push_back(cpu);
            runningTasks.push_back(task);
            inputs.push_back(input);
        }

        const ContentionResult solved = solver_.solve(
            inputs, freq,
            scheduler_.waitingWorkingSet(cpuBegin, cpuEnd));

        for (std::size_t i = 0; i < runningTasks.size(); ++i) {
            advanceTask(*runningTasks[i], runningCpus[i],
                        solved.threads[i], solved.shared, freq, dt);
        }

        totalRunning += static_cast<unsigned>(runningTasks.size());
        // Hottest-domain view: strictly hotter sockets win (an idle
        // later socket must not overwrite a busy earlier one at equal
        // DRAM utilization); ties break on L3-path utilization, and
        // socket 0 seeds the view so single-socket behaviour is
        // unchanged.
        if (socket == 0 ||
            solved.shared.memUtilization >
                observedState.memUtilization ||
            (solved.shared.memUtilization ==
                 observedState.memUtilization &&
             solved.shared.l3Utilization >
                 observedState.l3Utilization)) {
            observedState = solved.shared;
        }
        stats_.l3Utilization.sample(solved.shared.l3Utilization);
        stats_.memUtilization.sample(solved.shared.memUtilization);
    }

    scheduler_.tick(dt);
    now_ += dt;
    machine_.time = now_;

    stats_.quanta.add();
    stats_.runningThreads.sample(static_cast<double>(totalRunning));
    stats_.frequencyGhz.sample(freq * 1e-9);

    for (const auto &cb : quantumCbs_)
        cb(now_, observedState);

    reapFinished();
}

void
Engine::advanceTask(Task &task, unsigned cpu, const ThreadPerf &perf,
                    const SharedState &shared, Hertz freq, Seconds dt)
{
    TaskCounters &tc = task.counters();
    Cycles cyclesLeft = freq * dt;

    // Context-switch cost burns cycles without retiring instructions;
    // it lands in T_private (cycles - stalls grows).
    const Cycles switchCost = scheduler_.consumePendingSwitchCycles(cpu);
    if (switchCost > 0) {
        const Cycles burned = std::min(switchCost, cyclesLeft);
        tc.cycles += burned;
        cyclesLeft -= burned;
    }

    ThreadPerf current = perf;
    const ResourceDemand *currentDemand = &task.demand();

    while (cyclesLeft > 1e-9 && !task.finished()) {
        const ResourceDemand &d = task.demand();
        if (&d != currentDemand) {
            // Phase changed mid-quantum: recompute against the same
            // shared state (the fixed point lags one quantum, which is
            // fine at 50 us).
            current = solver_.threadPerf(d, ThreadEnvironment{
                                                scheduler_.warmthMult(cpu),
                                                scheduler_.siblingBusy(cpu)
                                                    ? cfg_.smtCpiMultiplier
                                                    : 1.0},
                                         shared, freq);
            currentDemand = &d;
        }

        const double cpi = current.cpi();
        const Instructions possible = cyclesLeft / cpi;
        const Instructions step =
            std::min(possible, task.remainingInPhase());
        if (step <= 0) {
            // Defensive: an empty phase must still terminate the loop.
            task.retire(0);
            break;
        }

        const Cycles used = step * cpi;
        const double l2Miss = step * d.l2Mpki / 1000.0;
        const double l3Miss = l2Miss * current.l3MissFraction;

        tc.instructions += step;
        tc.cycles += used;
        tc.stallSharedCycles += step * current.stallPerInstr;
        tc.l2Misses += l2Miss;
        tc.l3Misses += l3Miss;

        machine_.l3Accesses += l2Miss;
        machine_.l3Misses += l3Miss;

        cyclesLeft -= used;
        task.retire(step);
        updateProbe(task);
    }
}

void
Engine::updateProbe(Task &task)
{
    if (task.probeWindow() <= 0)
        return;
    ProbeCapture &probe = task.probe();
    if (probe.complete || !probe.started)
        return;
    const TaskCounters delta = task.counters().since(probe.taskAtStart);
    if (delta.instructions >= task.probeWindow()) {
        probe.taskAtEnd = task.counters();
        probe.machineAtEnd = machine_;
        // The machine counter advances continuously but machine_.time
        // is only updated at quantum end; stamp a consistent time.
        probe.machineAtEnd.time = now_;
        probe.complete = true;
    }
}

void
Engine::reapFinished()
{
    for (std::size_t i = 0; i < tasks_.size();) {
        Task *task = tasks_[i].get();
        if (!task->finished()) {
            ++i;
            continue;
        }
        task->setCompletionTime(now_);
        stats_.completions.add();
        stats_.instructions.add(task->counters().instructions);
        scheduler_.remove(task);
        liveIds_.erase(task->id());
        // Move ownership out before the callback so the callback may
        // add new tasks (invoker churn) without invalidating iterators.
        std::unique_ptr<Task> owned = std::move(tasks_[i]);
        tasks_.erase(tasks_.begin() + static_cast<std::ptrdiff_t>(i));
        for (const auto &cb : completionCbs_)
            cb(*owned);
    }
}

} // namespace litmus::sim
