#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace litmus::sim
{

namespace
{

/**
 * Hottest-domain ordering for the observer view: strictly hotter DRAM
 * wins, ties break on L3-path utilization. Shared between the exact
 * per-quantum view and the replay plan's predicted view — they must
 * never diverge.
 */
bool
hotterDomain(const SharedState &candidate, const SharedState &current)
{
    return candidate.memUtilization > current.memUtilization ||
           (candidate.memUtilization == current.memUtilization &&
            candidate.l3Utilization > current.l3Utilization);
}

} // namespace

bool Engine::defaultFastForward_ = true;

void
Engine::setDefaultFastForward(bool enabled)
{
    defaultFastForward_ = enabled;
}

bool
Engine::defaultFastForward()
{
    return defaultFastForward_;
}

void
EngineStats::registerWith(StatsRegistry &registry,
                          const std::string &group)
{
    registry.add(group, quanta);
    registry.add(group, completions);
    registry.add(group, instructions);
    registry.add(group, l3Utilization);
    registry.add(group, memUtilization);
    registry.add(group, runningThreads);
    registry.add(group, frequencyGhz);
    registry.add(group, ffQuanta);
    registry.add(group, solves);
    registry.add(group, solveMemoHits);
    registry.add(group, skippedQuanta);
}

Engine::Engine(const MachineConfig &cfg, FrequencyPolicy policy,
               Seconds quantum)
    : cfg_(cfg),
      solver_(cfg_),
      governor_(cfg_, policy),
      scheduler_(cfg_),
      quantum_(quantum > 0 ? quantum : cfg_.quantum),
      quantumNs_(std::llround(quantum_ * 1e9)),
      lastFrequency_(cfg_.baseFrequency),
      fastForward_(defaultFastForward_)
{
    cfg_.validate();
    if (quantum_ <= 0)
        fatal("Engine: quantum must be positive");
    if (quantumNs_ <= 0)
        fatal("Engine: quantum must be at least 1 ns (tick accounting)");
    // The tick grid silently miscounts if the quantum is not a whole
    // number of nanoseconds (2.5 ns would round to 3 and shortchange
    // every run); refuse rather than drift.
    if (std::abs(quantum_ * 1e9 - static_cast<double>(quantumNs_)) >
        1e-3)
        fatal("Engine: quantum ", quantum_,
              " s is not a whole number of nanoseconds");
}

void
Engine::setFastForward(bool enabled)
{
    fastForward_ = enabled;
    plan_.valid = false;
}

Task &
Engine::add(std::unique_ptr<Task> task)
{
    if (!task)
        fatal("Engine::add: null task");
    task->setId(nextTaskId_++);
    task->setLaunchTime(now_);
    if (task->probeWindow() > 0) {
        ProbeCapture &probe = task->probe();
        probe.started = true;
        probe.taskAtStart = task->counters();
        probe.machineAtStart = machine_;
    }
    Task &ref = *task;
    scheduler_.add(task.get()); // bumps the scheduler version
    liveIds_.insert(ref.id());
    tasks_.push_back(std::move(task));
    return ref;
}

bool
Engine::alive(const Task &task) const
{
    return aliveId(task.id());
}

bool
Engine::aliveId(std::uint64_t id) const
{
    return liveIds_.contains(id);
}

std::vector<Task *>
Engine::liveTasks()
{
    std::vector<Task *> out;
    out.reserve(tasks_.size());
    for (const auto &t : tasks_)
        out.push_back(t.get());
    return out;
}

std::vector<std::unique_ptr<Task>>
Engine::killAllTasks()
{
    for (const auto &task : tasks_) {
        scheduler_.remove(task.get()); // bumps the scheduler version
        liveIds_.erase(task->id());
    }
    // The version bump already fences stale replays, but the plan
    // holds raw Task pointers into the corpses we are about to hand
    // out — drop it outright.
    plan_.valid = false;
    std::vector<std::unique_ptr<Task>> corpses = std::move(tasks_);
    tasks_.clear();
    return corpses;
}

void
Engine::setSpeedFactor(double factor)
{
    if (!(factor > 0))
        fatal("Engine::setSpeedFactor: factor must be positive, got ",
              factor);
    if (factor == speedFactor_)
        return;
    speedFactor_ = factor;
    // The plan's deltas were solved at the old frequency.
    plan_.valid = false;
}

std::uint64_t
Engine::quantaForDuration(Seconds duration) const
{
    if (duration < 0)
        fatal("Engine::run: negative duration");
    // Integer nanosecond ticks end-to-end: float division against an
    // absolute quantum drifts after millions of quanta and can drop or
    // add a whole quantum for durations that are exact (or near-exact)
    // quantum multiples. llround() snaps the duration to the tick grid
    // and the ceiling is then exact integer arithmetic.
    if (duration * 1e9 > 9.0e18)
        fatal("Engine::run: duration ", duration,
              " s overflows tick accounting");
    const std::int64_t durationNs = std::llround(duration * 1e9);
    return static_cast<std::uint64_t>((durationNs + quantumNs_ - 1) /
                                      quantumNs_);
}

void
Engine::run(Seconds duration)
{
    runQuanta(quantaForDuration(duration));
}

void
Engine::runQuanta(std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n; ++i)
        step();
}

void
Engine::runUntilComplete(const Task &task, Seconds cap)
{
    runUntilCompleteId(task.id(), cap);
}

void
Engine::runUntilCompleteId(std::uint64_t id, Seconds cap)
{
    const Seconds end = now_ + cap;
    while (aliveId(id)) {
        if (now_ >= end)
            fatal("Engine::runUntilCompleteId: task ", id,
                  " did not finish within ", cap, " simulated seconds");
        step();
    }
}

void
Engine::runUntilIdle(Seconds cap)
{
    const Seconds end = now_ + cap;
    while (!tasks_.empty()) {
        if (now_ >= end)
            fatal("Engine::runUntilIdle: tasks still live after ", cap,
                  " simulated seconds");
        step();
    }
}

void
Engine::step()
{
    // Counted before execution so completion callbacks fired inside
    // this quantum read the 1-based tick the completion belongs to.
    ++tickCount_;
    if (tryReplayQuantum())
        return;
    fullStep();
}

void
Engine::skipIdleQuanta(std::uint64_t n, Seconds clock)
{
    if (n == 0)
        return;
    if (!tasks_.empty())
        fatal("Engine::skipIdleQuanta: ", tasks_.size(),
              " tasks still live — only wholly idle machines may skip");
    if (!quantumCbs_.empty())
        fatal("Engine::skipIdleQuanta: per-quantum observers are "
              "registered; they would miss ", n, " callbacks");
    // Plausibility only — the caller's canonical clock accumulated the
    // same fadd sequence this engine would have, so the two agree to
    // bit-identity when the protocol is followed; a gross mismatch
    // means the caller skipped to the wrong tick. The tolerance must
    // cover the drift between the caller's n sequential fadds and the
    // single multiply here: each fadd near time t rounds by up to
    // t*eps, so a day-long trace's multi-second idle skip legitimately
    // accumulates several microseconds of divergence.
    const Seconds expected =
        now_ + static_cast<double>(n) * quantum_;
    const Seconds driftBound =
        static_cast<double>(n) * std::abs(expected) *
        std::numeric_limits<double>::epsilon();
    if (std::abs(clock - expected) > 1e-6 + driftBound)
        fatal("Engine::skipIdleQuanta: clock ", clock,
              " is not ", n, " quanta ahead of now ", now_);
    now_ = clock;
    machine_.time = now_;
    tickCount_ += n;
    stats_.skippedQuanta.add(n);
}

const ContentionResult &
Engine::memoSolve(const std::vector<SolverInput> &inputs, Hertz freq,
                  double waiting_working_set)
{
    const std::uint64_t hitsBefore = solveMemo_.hits();
    const ContentionResult &solved =
        solveMemo_.solve(solver_, inputs, freq, waiting_working_set);
    stats_.solves.add();
    if (solveMemo_.hits() != hitsBefore)
        stats_.solveMemoHits.add();
    return solved;
}

bool
Engine::tryReplayQuantum()
{
    if (!fastForward_ || !plan_.valid)
        return false;
    // Topology check first: it also guards the Task pointers below
    // (reaping a task removes it from the scheduler, bumping the
    // version, so a stale plan never dereferences a dead task).
    if (plan_.schedVersion != scheduler_.version()) {
        plan_.valid = false;
        return false;
    }
    for (const PlannedThread &t : plan_.threads) {
        // The phase must be the same one the plan was solved for and
        // must have strictly more than one quantum of work left, so
        // the replayed quantum cannot straddle a phase boundary (the
        // exact path would re-split it mid-quantum).
        if (&t.task->demand() != t.demand ||
            !(t.task->remainingInPhase() > t.stepInstr))
            return false;
    }

    // Replay: the identical additions, in the identical order, as one
    // exact quantum — nothing below may diverge from fullStep().
    bool sawFinish = false;
    for (const PlannedSocket &s : plan_.sockets) {
        for (std::size_t i = s.threadBegin; i < s.threadEnd; ++i) {
            const PlannedThread &t = plan_.threads[i];
            TaskCounters &tc = t.task->counters();
            tc.instructions += t.stepInstr;
            tc.cycles += t.usedCycles;
            tc.stallSharedCycles += t.stallCycles;
            tc.l2Misses += t.l2Misses;
            tc.l3Misses += t.l3Misses;
            machine_.l3Accesses += t.l2Misses;
            machine_.l3Misses += t.l3Misses;
            t.task->retire(t.stepInstr);
            updateProbe(*t.task);
            // The phase headroom check above leaves work in the phase,
            // but ProgramTask advances within a small retirement
            // tolerance of the boundary — the task may have just
            // finished exactly as it would under exact stepping.
            if (t.task->finished())
                sawFinish = true;
        }
        stats_.l3Utilization.sample(s.l3Utilization);
        stats_.memUtilization.sample(s.memUtilization);
    }

    scheduler_.tick(quantum_); // may rotate; the version bump then
                               // sends the next quantum down fullStep
    now_ += quantum_;
    machine_.time = now_;

    stats_.quanta.add();
    stats_.ffQuanta.add();
    stats_.runningThreads.sample(plan_.runningSample);
    stats_.frequencyGhz.sample(plan_.freqGhzSample);

    if (!quantumCbs_.empty()) {
        for (const auto &cb : quantumCbs_)
            cb(now_, plan_.observedState);
    }

    if (sawFinish)
        plan_.valid = false;
    if (sawFinish || !quantumCbs_.empty())
        reapFinished();
    return true;
}

void
Engine::fullStep()
{
    const Seconds dt = quantum_;
    const unsigned cpus = scheduler_.cpuCount();

    // speedFactor_ models transient machine-wide degradation
    // (thermal / co-tenant interference): fewer cycles per quantum,
    // so the same work takes longer and bills the same. It feeds the
    // contention solve (and the memo key) like any frequency change.
    const Hertz freq =
        governor_.frequency(scheduler_.activeCores()) * speedFactor_;
    lastFrequency_ = freq;

    // Gather running threads and solve each socket's shared domain
    // independently (sockets == 1 for the default presets).
    unsigned totalRunning = 0;
    SharedState observedState; // hottest-domain view for observers
    observedState.l3LatencyNs = cfg_.l3HitLatencyNs;
    observedState.memLatencyNs = cfg_.memLatencyNs;
    // What the *next* quantum's observers will see if the plan holds
    // (differs from observedState only across a transition lookahead).
    SharedState planObserved = observedState;

    // Plan capture: the per-quantum deltas a *clean* steady quantum
    // would apply (this quantum itself may differ — pending switch
    // cycles, a mid-quantum phase split — without spoiling the plan;
    // validity is re-checked against the tasks every replay).
    plan_.valid = false;
    plan_.threads.clear();
    plan_.sockets.clear();
    bool steady = fastForward_;
    bool anyFinished = false;
    const Cycles cyclesFull = freq * dt;

    const unsigned perSocket = cfg_.hwThreadsPerSocket();
    for (unsigned socket = 0; socket < cfg_.sockets; ++socket) {
        const unsigned cpuBegin = socket * perSocket;
        const unsigned cpuEnd = std::min(cpuBegin + perSocket, cpus);

        std::vector<unsigned> &runningCpus = scratchCpus_;
        std::vector<Task *> &runningTasks = scratchTasks_;
        std::vector<const ResourceDemand *> &runningDemands =
            scratchDemands_;
        std::vector<SolverInput> &inputs = scratchInputs_;
        runningCpus.clear();
        runningTasks.clear();
        runningDemands.clear();
        inputs.clear();

        for (unsigned cpu = cpuBegin; cpu < cpuEnd; ++cpu) {
            Task *task = scheduler_.runningOn(cpu);
            if (!task || task->finished())
                continue;
            SolverInput input;
            input.demand = task->demand();
            input.env.warmthMult = scheduler_.warmthMult(cpu);
            input.env.smtMult = scheduler_.siblingBusy(cpu)
                                    ? cfg_.smtCpiMultiplier
                                    : 1.0;
            runningCpus.push_back(cpu);
            runningTasks.push_back(task);
            runningDemands.push_back(&task->demand());
            inputs.push_back(input);
        }

        const double waitingWs =
            scheduler_.waitingWorkingSet(cpuBegin, cpuEnd);
        // The memo returns a result bit-identical to a fresh solve;
        // exact-quantum mode bypasses it so --exact-quantum times the
        // true baseline.
        ContentionResult freshSolve;
        if (!fastForward_) {
            freshSolve = solver_.solve(inputs, freq, waitingWs);
            stats_.solves.add();
        }
        const ContentionResult &solved =
            fastForward_ ? memoSolve(inputs, freq, waitingWs)
                         : freshSolve;

        for (std::size_t i = 0; i < runningTasks.size(); ++i) {
            advanceTask(*runningTasks[i], runningCpus[i],
                        solved.threads[i], solved.shared, freq, dt);
            if (runningTasks[i]->finished())
                anyFinished = true;
        }

        // The memo reference dies at the next memo call (the
        // transition lookahead below may be one); copy what outlives
        // this point.
        const SharedState solvedShared = solved.shared;

        if (steady) {
            // A phase change this quantum normally costs two full
            // steps: this one (the split quantum) and the next (the
            // re-solve that rebuilds the plan). The lookahead collapses
            // that to one: re-solve the socket against the *new* phase
            // signature now — everything else the next quantum's solve
            // would read (environments, frequency, waiting working
            // set) is unchanged while the scheduler version holds, and
            // the plan is version-guarded, so the lookahead result is
            // exactly the solve the next exact quantum would perform.
            bool phaseChanged = false;
            for (std::size_t i = 0; i < runningTasks.size(); ++i) {
                if (runningTasks[i]->finished()) {
                    steady = false;
                    break;
                }
                if (&runningTasks[i]->demand() != runningDemands[i])
                    phaseChanged = true;
            }
            const ContentionResult *planSolve = &solved;
            if (steady && phaseChanged) {
                for (std::size_t i = 0; i < runningTasks.size(); ++i) {
                    runningDemands[i] = &runningTasks[i]->demand();
                    inputs[i].demand = *runningDemands[i];
                }
                planSolve = &memoSolve(inputs, freq, waitingWs);
            }

            if (steady) {
                PlannedSocket ps;
                ps.threadBegin = plan_.threads.size();
                for (std::size_t i = 0; i < runningTasks.size(); ++i) {
                    const ThreadPerf &perf = planSolve->threads[i];
                    const double cpi = perf.cpi();
                    PlannedThread pt;
                    pt.task = runningTasks[i];
                    pt.demand = runningDemands[i];
                    // Exactly the operations advanceTask applies in a
                    // clean single-split quantum, precomputed once.
                    pt.stepInstr = cyclesFull / cpi;
                    pt.usedCycles = pt.stepInstr * cpi;
                    pt.stallCycles = pt.stepInstr * perf.stallPerInstr;
                    pt.l2Misses = pt.stepInstr *
                                  runningDemands[i]->l2Mpki / 1000.0;
                    pt.l3Misses = pt.l2Misses * perf.l3MissFraction;
                    // Guard the single-split assumption: the residue
                    // the exact path would see after one split must
                    // fall below its loop epsilon, or replay is not
                    // representative.
                    if (!(pt.stepInstr > 0) ||
                        cyclesFull - pt.usedCycles > 1e-9) {
                        steady = false;
                        break;
                    }
                    plan_.threads.push_back(pt);
                }
                ps.threadEnd = plan_.threads.size();
                ps.l3Utilization = planSolve->shared.l3Utilization;
                ps.memUtilization = planSolve->shared.memUtilization;
                plan_.sockets.push_back(ps);
                // The replayed quanta observe what the next exact
                // quantum's hottest-domain scan would see: the
                // lookahead state where a phase changed, this
                // quantum's (identical, deterministic) solve where
                // none did.
                if (socket == 0 ||
                    hotterDomain(planSolve->shared, planObserved))
                    planObserved = planSolve->shared;
            }
        }

        totalRunning += static_cast<unsigned>(runningTasks.size());
        // Hottest-domain view: strictly hotter sockets win (an idle
        // later socket must not overwrite a busy earlier one at equal
        // DRAM utilization), and socket 0 seeds the view so
        // single-socket behaviour is unchanged.
        if (socket == 0 || hotterDomain(solvedShared, observedState))
            observedState = solvedShared;
        stats_.l3Utilization.sample(solvedShared.l3Utilization);
        stats_.memUtilization.sample(solvedShared.memUtilization);
    }

    if (steady) {
        plan_.runningSample = static_cast<double>(totalRunning);
        plan_.freqGhzSample = freq * 1e-9;
        plan_.observedState = planObserved;
        // Captured before tick(): a rotation in this quantum bumps the
        // version and correctly invalidates the plan.
        plan_.schedVersion = scheduler_.version();
        plan_.valid = true;
    }

    scheduler_.tick(dt);
    now_ += dt;
    machine_.time = now_;

    stats_.quanta.add();
    stats_.runningThreads.sample(static_cast<double>(totalRunning));
    stats_.frequencyGhz.sample(freq * 1e-9);

    if (!quantumCbs_.empty()) {
        for (const auto &cb : quantumCbs_)
            cb(now_, observedState);
    }

    // Only tasks that ran can finish — except through a quantum
    // observer reaching into the engine, so observers keep the
    // unconditional reap.
    if (anyFinished || !quantumCbs_.empty())
        reapFinished();
}

void
Engine::advanceTask(Task &task, unsigned cpu, const ThreadPerf &perf,
                    const SharedState &shared, Hertz freq, Seconds dt)
{
    TaskCounters &tc = task.counters();
    Cycles cyclesLeft = freq * dt;

    // Context-switch cost burns cycles without retiring instructions;
    // it lands in T_private (cycles - stalls grows).
    const Cycles switchCost = scheduler_.consumePendingSwitchCycles(cpu);
    if (switchCost > 0) {
        const Cycles burned = std::min(switchCost, cyclesLeft);
        tc.cycles += burned;
        cyclesLeft -= burned;
    }

    ThreadPerf current = perf;
    const ResourceDemand *currentDemand = &task.demand();

    while (cyclesLeft > 1e-9 && !task.finished()) {
        const ResourceDemand &d = task.demand();
        if (&d != currentDemand) {
            // Phase changed mid-quantum: recompute against the same
            // shared state (the fixed point lags one quantum, which is
            // fine at 50 us).
            current = solver_.threadPerf(d, ThreadEnvironment{
                                                scheduler_.warmthMult(cpu),
                                                scheduler_.siblingBusy(cpu)
                                                    ? cfg_.smtCpiMultiplier
                                                    : 1.0},
                                         shared, freq);
            currentDemand = &d;
        }

        const double cpi = current.cpi();
        const Instructions possible = cyclesLeft / cpi;
        const Instructions step =
            std::min(possible, task.remainingInPhase());
        if (step <= 0) {
            // Defensive: an empty phase must still terminate the loop.
            task.retire(0);
            break;
        }

        const Cycles used = step * cpi;
        const double l2Miss = step * d.l2Mpki / 1000.0;
        const double l3Miss = l2Miss * current.l3MissFraction;

        tc.instructions += step;
        tc.cycles += used;
        tc.stallSharedCycles += step * current.stallPerInstr;
        tc.l2Misses += l2Miss;
        tc.l3Misses += l3Miss;

        machine_.l3Accesses += l2Miss;
        machine_.l3Misses += l3Miss;

        cyclesLeft -= used;
        task.retire(step);
        updateProbe(task);
    }
}

void
Engine::updateProbe(Task &task)
{
    if (task.probeWindow() <= 0)
        return;
    ProbeCapture &probe = task.probe();
    if (probe.complete || !probe.started)
        return;
    const TaskCounters delta = task.counters().since(probe.taskAtStart);
    if (delta.instructions >= task.probeWindow()) {
        probe.taskAtEnd = task.counters();
        probe.machineAtEnd = machine_;
        // The machine counter advances continuously but machine_.time
        // is only updated at quantum end; stamp a consistent time.
        probe.machineAtEnd.time = now_;
        probe.complete = true;
    }
}

void
Engine::reapFinished()
{
    for (std::size_t i = 0; i < tasks_.size();) {
        Task *task = tasks_[i].get();
        if (!task->finished()) {
            ++i;
            continue;
        }
        task->setCompletionTime(now_);
        stats_.completions.add();
        stats_.instructions.add(task->counters().instructions);
        scheduler_.remove(task); // bumps the scheduler version
        liveIds_.erase(task->id());
        // Move ownership out before the callback so the callback may
        // add new tasks (invoker churn) without invalidating iterators.
        std::unique_ptr<Task> owned = std::move(tasks_[i]);
        tasks_.erase(tasks_.begin() + static_cast<std::ptrdiff_t>(i));
        for (const auto &cb : completionCbs_)
            cb(*owned);
    }
}

} // namespace litmus::sim
