/**
 * @file
 * Quantum-stepped simulation engine.
 *
 * Each quantum (default 50 us) the engine asks the scheduler which task
 * runs on every hardware thread, solves the shared-domain contention
 * fixed point once, then advances each running task — splitting the
 * quantum at phase boundaries so short startup sub-phases stay sharp.
 * PMU counters, probe windows, completion callbacks, and machine-wide
 * uncore counters are all maintained here.
 */

#ifndef LITMUS_SIM_ENGINE_H
#define LITMUS_SIM_ENGINE_H

#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/stats_registry.h"
#include "sim/contention.h"
#include "sim/frequency_governor.h"
#include "sim/machine_config.h"
#include "sim/os_scheduler.h"
#include "sim/pmu.h"
#include "sim/task.h"

namespace litmus::sim
{

/** Per-engine statistics, registrable with a StatsRegistry. */
struct EngineStats
{
    CounterStat quanta{"quanta", "simulated quanta executed"};
    CounterStat completions{"completions", "tasks run to completion"};
    CounterStat instructions{"instructions",
                             "total instructions retired"};
    AverageStat l3Utilization{"l3_utilization",
                              "per-quantum L3 access-path utilization"};
    AverageStat memUtilization{"mem_utilization",
                               "per-quantum DRAM bandwidth utilization"};
    AverageStat runningThreads{"running_threads",
                               "hardware threads busy per quantum"};
    AverageStat frequencyGhz{"frequency_ghz",
                             "per-quantum core frequency"};

    /** Register every member under the given group. */
    void registerWith(StatsRegistry &registry, const std::string &group);
};

/**
 * The simulation engine; owns all live tasks.
 */
class Engine
{
  public:
    /** Called when a task finishes, before it is destroyed. */
    using CompletionCallback = std::function<void(Task &)>;

    /** Called once per quantum with the solved shared state. */
    using QuantumObserver =
        std::function<void(Seconds now, const SharedState &state)>;

    Engine(const MachineConfig &cfg,
           FrequencyPolicy policy = FrequencyPolicy::Fixed,
           Seconds quantum = 50e-6);

    /** Add a task; the engine takes ownership. Returns a handle. */
    Task &add(std::unique_ptr<Task> task);

    /** Register a completion listener (multiple consumers chain). */
    void onCompletion(CompletionCallback cb)
    {
        completionCbs_.push_back(std::move(cb));
    }

    /** Register a per-quantum observer (POPPA sampler, timelines). */
    void onQuantum(QuantumObserver cb)
    {
        quantumCbs_.push_back(std::move(cb));
    }

    /** Advance simulated time by the given duration. */
    void run(Seconds duration);

    /**
     * Advance until the given task completes (or the time cap is hit;
     * then fatal(), because every experiment must terminate).
     */
    void runUntilComplete(const Task &task, Seconds cap = 600.0);

    /** Advance until the task with the given id completes. */
    void runUntilCompleteId(std::uint64_t id, Seconds cap = 600.0);

    /** Advance until no live tasks remain (respects the cap). */
    void runUntilIdle(Seconds cap = 600.0);

    /** Current simulated time. */
    Seconds now() const { return now_; }

    /** Machine-wide uncore counters. */
    const MachineCounters &machineCounters() const { return machine_; }

    /** Scheduler access (freezing for POPPA, queue inspection). */
    OsScheduler &scheduler() { return scheduler_; }
    const OsScheduler &scheduler() const { return scheduler_; }

    /** Configuration this engine simulates. */
    const MachineConfig &config() const { return cfg_; }

    /** Contention solver (shared with calibration tooling). */
    const ContentionSolver &solver() const { return solver_; }

    /** Frequency used in the most recent quantum. */
    Hertz currentFrequency() const { return lastFrequency_; }

    /** Number of live tasks. */
    std::size_t taskCount() const { return tasks_.size(); }

    /** True while the task is still owned by the engine. */
    bool alive(const Task &task) const;

    /** True while a task with the given id is owned by the engine. */
    bool aliveId(std::uint64_t id) const;

    /** Non-owning view of every live task (POPPA victim selection). */
    std::vector<Task *> liveTasks();

    /** Run statistics (utilizations, completions, ...). */
    EngineStats &stats() { return stats_; }
    const EngineStats &stats() const { return stats_; }

  private:
    /** Execute one quantum. */
    void step();

    /** Advance one running task through (up to) the quantum. */
    void advanceTask(Task &task, unsigned cpu, const ThreadPerf &perf,
                     const SharedState &shared, Hertz freq, Seconds dt);

    /** Close probe windows that the advance crossed. */
    void updateProbe(Task &task);

    /** Destroy finished tasks, invoking callbacks. */
    void reapFinished();

    const MachineConfig cfg_;
    ContentionSolver solver_;
    FrequencyGovernor governor_;
    OsScheduler scheduler_;
    Seconds quantum_;
    Seconds now_ = 0;
    Hertz lastFrequency_;
    MachineCounters machine_;
    std::vector<std::unique_ptr<Task>> tasks_;
    /** Ids of live tasks, so alive checks in run loops stay O(1). */
    std::unordered_set<std::uint64_t> liveIds_;
    std::vector<CompletionCallback> completionCbs_;
    std::vector<QuantumObserver> quantumCbs_;
    std::uint64_t nextTaskId_ = 1;
    EngineStats stats_;
};

} // namespace litmus::sim

#endif // LITMUS_SIM_ENGINE_H
