/**
 * @file
 * Quantum-stepped simulation engine with a steady-state fast-forward
 * core.
 *
 * Each quantum (default 50 us) the engine asks the scheduler which task
 * runs on every hardware thread, solves the shared-domain contention
 * fixed point once, then advances each running task — splitting the
 * quantum at phase boundaries so short startup sub-phases stay sharp.
 * PMU counters, probe windows, completion callbacks, and machine-wide
 * uncore counters are all maintained here.
 *
 * Long steady phases and idle stretches dominate real traces, so the
 * engine does not recompute what cannot have changed: a full step
 * captures a *replay plan* (the solved per-thread quantum deltas), and
 * while the scheduler topology, every running task's phase, and the
 * phase headroom are unchanged, subsequent quanta replay the cached
 * deltas — same additions, same order, same per-quantum observer
 * callbacks — so every statistic, counter, and billing input stays
 * bit-identical to exact quantum stepping while skipping the scheduler
 * scans and the iterative contention solve. Re-solves that do happen
 * are served from a ContentionMemo keyed on the co-running phase
 * signature. setFastForward(false) (the apps' --exact-quantum flag)
 * restores the original path for A/B validation.
 */

#ifndef LITMUS_SIM_ENGINE_H
#define LITMUS_SIM_ENGINE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/stats_registry.h"
#include "sim/contention.h"
#include "sim/frequency_governor.h"
#include "sim/machine_config.h"
#include "sim/os_scheduler.h"
#include "sim/pmu.h"
#include "sim/task.h"

namespace litmus::sim
{

/** Per-engine statistics, registrable with a StatsRegistry. */
struct EngineStats
{
    CounterStat quanta{"quanta", "simulated quanta executed"};
    CounterStat completions{"completions", "tasks run to completion"};
    CounterStat instructions{"instructions",
                             "total instructions retired"};
    AverageStat l3Utilization{"l3_utilization",
                              "per-quantum L3 access-path utilization"};
    AverageStat memUtilization{"mem_utilization",
                               "per-quantum DRAM bandwidth utilization"};
    AverageStat runningThreads{"running_threads",
                               "hardware threads busy per quantum"};
    AverageStat frequencyGhz{"frequency_ghz",
                             "per-quantum core frequency"};
    /** @name Fast-forward diagnostics (never affect simulation output)
     *  @{ */
    CounterStat ffQuanta{"ff_quanta",
                         "quanta advanced by steady-state replay"};
    CounterStat solves{"solves",
                       "contention solve requests (incl. memo hits)"};
    CounterStat solveMemoHits{"solve_memo_hits",
                              "contention solves served from the memo"};
    CounterStat skippedQuanta{"skipped_quanta",
                              "idle quanta elided by skipIdleQuanta"};
    /** @} */

    /** Register every member under the given group. */
    void registerWith(StatsRegistry &registry, const std::string &group);
};

/**
 * The simulation engine; owns all live tasks.
 */
class Engine
{
  public:
    /** Called when a task finishes, before it is destroyed. */
    using CompletionCallback = std::function<void(Task &)>;

    /** Called once per quantum with the solved shared state. */
    using QuantumObserver =
        std::function<void(Seconds now, const SharedState &state)>;

    /**
     * @param quantum stepping quantum; 0 (the default) takes the
     *     quantum from @p cfg so presets control it fleet-wide.
     */
    Engine(const MachineConfig &cfg,
           FrequencyPolicy policy = FrequencyPolicy::Fixed,
           Seconds quantum = 0);

    /** Add a task; the engine takes ownership. Returns a handle. */
    Task &add(std::unique_ptr<Task> task);

    /** Register a completion listener (multiple consumers chain). */
    void onCompletion(CompletionCallback cb)
    {
        completionCbs_.push_back(std::move(cb));
    }

    /** Register a per-quantum observer (POPPA sampler, timelines). */
    void onQuantum(QuantumObserver cb)
    {
        quantumCbs_.push_back(std::move(cb));
    }

    /** Advance simulated time by the given duration. */
    void run(Seconds duration);

    /** Advance exactly @p n quanta. */
    void runQuanta(std::uint64_t n);

    /**
     * Quanta covering @p duration, computed on integer nanosecond
     * ticks end-to-end so exact quantum multiples never gain or lose a
     * quantum to floating-point drift, no matter how the duration was
     * produced (k * epoch, accumulated sums, ...).
     */
    std::uint64_t quantaForDuration(Seconds duration) const;

    /**
     * Advance until the given task completes (or the time cap is hit;
     * then fatal(), because every experiment must terminate).
     */
    void runUntilComplete(const Task &task, Seconds cap = 600.0);

    /** Advance until the task with the given id completes. */
    void runUntilCompleteId(std::uint64_t id, Seconds cap = 600.0);

    /** Advance until no live tasks remain (respects the cap). */
    void runUntilIdle(Seconds cap = 600.0);

    /** Current simulated time. */
    Seconds now() const { return now_; }

    /** Quantum length this engine steps by. */
    Seconds quantum() const { return quantum_; }

    /**
     * Quanta this engine has lived through: executed steps plus idle
     * quanta elided by skipIdleQuanta(). During a quantum's step() the
     * count already includes that quantum (1-based), so completion
     * callbacks read the tick the completion belongs to.
     */
    std::uint64_t tickCount() const { return tickCount_; }

    /**
     * Elide @p n wholly idle quanta in O(1): no live tasks means a
     * step touches nothing task-visible except the clock, so the
     * engine jumps straight to @p clock — the *caller's* canonical
     * clock for the destination tick, assigned (not accumulated) so an
     * idle machine lands on bit-identical time as one that stepped
     * every quantum against the same shared fadd sequence. fatal() if
     * tasks are live or per-quantum observers are registered (those
     * would have fired n times). Counted in stats().skippedQuanta, not
     * quanta.
     */
    void skipIdleQuanta(std::uint64_t n, Seconds clock);

    /** Machine-wide uncore counters. */
    const MachineCounters &machineCounters() const { return machine_; }

    /** Scheduler access (freezing for POPPA, queue inspection). */
    OsScheduler &scheduler() { return scheduler_; }
    const OsScheduler &scheduler() const { return scheduler_; }

    /** Configuration this engine simulates. */
    const MachineConfig &config() const { return cfg_; }

    /** Contention solver (shared with calibration tooling). */
    const ContentionSolver &solver() const { return solver_; }

    /** Frequency used in the most recent quantum. */
    Hertz currentFrequency() const { return lastFrequency_; }

    /** Number of live tasks. */
    std::size_t taskCount() const { return tasks_.size(); }

    /** True while the task is still owned by the engine. */
    bool alive(const Task &task) const;

    /** True while a task with the given id is owned by the engine. */
    bool aliveId(std::uint64_t id) const;

    /** Non-owning view of every live task (POPPA victim selection). */
    std::vector<Task *> liveTasks();

    /**
     * Kill every live task without invoking completion callbacks — a
     * machine crash with state loss, not an orderly finish. Ownership
     * of the corpses transfers to the caller, which can read the
     * partial counters (the work the crash destroyed) for failure
     * billing. The scheduler is emptied and the replay plan dropped;
     * the engine keeps running (its clock is monotone through the
     * crash) and accepts new tasks after the restart.
     */
    std::vector<std::unique_ptr<Task>> killAllTasks();

    /** @name Machine speed degradation @{ */
    /**
     * Scale the effective core frequency (transient thermal or
     * co-tenant slowdown windows): 0.5 runs every subsequent quantum
     * at half clock. Takes effect at the next quantum; call only
     * between quanta (the cluster applies it at epoch barriers).
     */
    void setSpeedFactor(double factor);
    double speedFactor() const { return speedFactor_; }
    /** @} */

    /** Run statistics (utilizations, completions, ...). */
    EngineStats &stats() { return stats_; }
    const EngineStats &stats() const { return stats_; }

    /** @name Steady-state fast-forward control @{ */
    /**
     * Enable or disable the fast-forward core for this engine.
     * Output is bit-identical either way; disabling exists as an A/B
     * escape hatch (--exact-quantum) and for baseline timing.
     */
    void setFastForward(bool enabled);
    bool fastForward() const { return fastForward_; }

    /**
     * Process-wide default applied to newly constructed engines, so
     * command-line front ends can flip every engine an experiment
     * creates internally without threading a flag through each config.
     */
    static void setDefaultFastForward(bool enabled);
    static bool defaultFastForward();
    /** @} */

  private:
    /** One running thread's precomputed steady-quantum deltas. */
    struct PlannedThread
    {
        Task *task = nullptr;
        /** Phase identity: demand() must still return this object. */
        const ResourceDemand *demand = nullptr;
        Instructions stepInstr = 0;
        Cycles usedCycles = 0;
        Cycles stallCycles = 0;
        double l2Misses = 0;
        double l3Misses = 0;
    };

    /** Per-socket slice of the plan plus its stat samples. */
    struct PlannedSocket
    {
        std::size_t threadBegin = 0;
        std::size_t threadEnd = 0;
        double l3Utilization = 0;
        double memUtilization = 0;
    };

    /**
     * Everything needed to replay one steady quantum without touching
     * the scheduler or the solver. Built by fullStep(), valid while
     * the scheduler version is unchanged and every planned task stays
     * in its phase with more than one quantum of headroom.
     */
    struct FastForwardPlan
    {
        bool valid = false;
        std::uint64_t schedVersion = 0;
        double runningSample = 0;
        double freqGhzSample = 0;
        SharedState observedState;
        std::vector<PlannedThread> threads;
        std::vector<PlannedSocket> sockets;
    };

    /** Execute one quantum (replay when possible, full otherwise). */
    void step();

    /** The exact quantum step; rebuilds the replay plan as it goes. */
    void fullStep();

    /** Replay one steady quantum off the plan. False: plan not valid. */
    bool tryReplayQuantum();

    /** Memoized solve plus the solve/hit stat bookkeeping. */
    const ContentionResult &
    memoSolve(const std::vector<SolverInput> &inputs, Hertz freq,
              double waiting_working_set);

    /** Advance one running task through (up to) the quantum. */
    void advanceTask(Task &task, unsigned cpu, const ThreadPerf &perf,
                     const SharedState &shared, Hertz freq, Seconds dt);

    /** Close probe windows that the advance crossed. */
    void updateProbe(Task &task);

    /** Destroy finished tasks, invoking callbacks. */
    void reapFinished();

    const MachineConfig cfg_;
    ContentionSolver solver_;
    ContentionMemo solveMemo_;
    FrequencyGovernor governor_;
    OsScheduler scheduler_;
    Seconds quantum_;
    /** Quantum in integer nanosecond ticks (run() accounting). */
    std::int64_t quantumNs_;
    Seconds now_ = 0;
    /** Lifetime quanta: stepped + skipped (see tickCount()). */
    std::uint64_t tickCount_ = 0;
    Hertz lastFrequency_;
    MachineCounters machine_;
    std::vector<std::unique_ptr<Task>> tasks_;
    /** Ids of live tasks, so alive checks in run loops stay O(1). */
    // LITMUS-LINT-ALLOW(unordered-decl): O(1) liveness membership only; never iterated — task visit order comes from tasks_, not this set
    std::unordered_set<std::uint64_t> liveIds_;
    std::vector<CompletionCallback> completionCbs_;
    std::vector<QuantumObserver> quantumCbs_;
    std::uint64_t nextTaskId_ = 1;
    EngineStats stats_;
    /** Effective-frequency multiplier (slowdown windows; 1 = nominal). */
    double speedFactor_ = 1.0;
    bool fastForward_;
    FastForwardPlan plan_;

    /** @name fullStep() scratch space (reused, hot path) @{ */
    std::vector<unsigned> scratchCpus_;
    std::vector<Task *> scratchTasks_;
    std::vector<const ResourceDemand *> scratchDemands_;
    std::vector<SolverInput> scratchInputs_;
    /** @} */

    static bool defaultFastForward_;
};

} // namespace litmus::sim

#endif // LITMUS_SIM_ENGINE_H
