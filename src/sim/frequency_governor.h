/**
 * @file
 * DVFS policy: fixed-frequency (provider-pinned) or turbo.
 *
 * Section 3 pins all cores at 2.8 GHz because commercial vCPUs expose a
 * single fixed frequency; Section 8 re-runs with Intel-Turbo-like
 * behaviour where the chip clocks higher when few cores are active.
 * The governor is chip-wide, matching how the paper discusses it.
 */

#ifndef LITMUS_SIM_FREQUENCY_GOVERNOR_H
#define LITMUS_SIM_FREQUENCY_GOVERNOR_H

#include "sim/machine_config.h"

namespace litmus::sim
{

/** Governor policy selector. */
enum class FrequencyPolicy
{
    /** Always run at MachineConfig::baseFrequency. */
    Fixed,

    /** Turbo ladder keyed by the number of active cores. */
    Turbo,
};

/**
 * Chip-wide frequency governor.
 *
 * The turbo ladder interpolates between the single-core turbo peak and
 * the all-core base frequency, mirroring how Cascade Lake bins its
 * turbo licenses by active core count.
 */
class FrequencyGovernor
{
  public:
    FrequencyGovernor(const MachineConfig &cfg, FrequencyPolicy policy);

    /** Frequency to use for a quantum with the given active cores. */
    Hertz frequency(unsigned active_cores) const;

    FrequencyPolicy policy() const { return policy_; }

  private:
    const MachineConfig &cfg_;
    FrequencyPolicy policy_;
};

} // namespace litmus::sim

#endif // LITMUS_SIM_FREQUENCY_GOVERNOR_H
