#include "sim/machine_catalog.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/config_reader.h"
#include "common/logging.h"
#include "common/mutex.h"

namespace litmus::sim
{

namespace
{

/** Dual-socket Xeon Gold 5218 folded into one domain, Section 3. */
MachineConfig
cascade5218()
{
    MachineConfig cfg;
    cfg.name = "cascade-5218";
    cfg.cores = 32;
    cfg.smtWays = 1;
    cfg.baseFrequency = 2.8_GHz;
    cfg.turboFrequency = 3.9_GHz;
    cfg.l3Capacity = 44_MiB;
    cfg.l3HitLatencyNs = 14.3;
    cfg.memLatencyNs = 71.0;
    cfg.l3ServiceRate = 5.6;
    cfg.memServiceRate = 1.95;
    cfg.memoryCapacity = 384_GiB;
    return cfg;
}

/**
 * The same server with both sockets modelled explicitly: cores 0-15
 * on socket 0, 16-31 on socket 1, each with its own 22 MiB L3 and
 * half the bandwidth pools. Cross-socket isolation is perfect in this
 * model (no coherence traffic).
 */
MachineConfig
cascade5218Dual()
{
    MachineConfig cfg = cascade5218();
    cfg.name = "cascade-5218-dual";
    cfg.sockets = 2;
    cfg.l3Capacity = 22_MiB;
    cfg.l3ServiceRate /= 2.0;
    cfg.memServiceRate /= 2.0;
    return cfg;
}

/** Xeon Silver 4314 domain (Ice Lake), Section 8. */
MachineConfig
icelake4314()
{
    MachineConfig cfg;
    cfg.name = "icelake-4314";
    cfg.cores = 16;
    cfg.smtWays = 1;
    cfg.baseFrequency = 2.4_GHz;
    cfg.turboFrequency = 3.4_GHz;
    cfg.l3Capacity = 24_MiB;
    // Ice Lake: slightly slower L3, better memory subsystem per core.
    cfg.l3HitLatencyNs = 17.0;
    cfg.memLatencyNs = 75.0;
    cfg.l3ServiceRate = 3.2;
    cfg.memServiceRate = 1.35;
    cfg.memoryCapacity = 128_GiB;
    return cfg;
}

struct Registry
{
    Mutex mutex;

    /** Canonical name -> preset. */
    std::map<std::string, MachineConfig> presets
        LITMUS_GUARDED_BY(mutex);

    /** Alias -> canonical name. Indirect, so replacing a preset
     *  updates its aliases too. */
    std::map<std::string, std::string> aliases
        LITMUS_GUARDED_BY(mutex);

    /** Canonical names, in registration order. */
    std::vector<std::string> canonical LITMUS_GUARDED_BY(mutex);

    Registry()
    {
        // Construction is single-threaded (function-local static),
        // but add() requires the capability, so take it — uncontended
        // and it keeps the annotations suppression-free.
        MutexLock lock(&mutex);
        add(cascade5218(), {"cascadelake", "xeon-gold-5218"});
        add(cascade5218Dual(), {"xeon-gold-5218-dual"});
        add(icelake4314(), {"icelake", "xeon-silver-4314"});
    }

    /** Resolve canonical-or-alias; nullptr when unknown. */
    const MachineConfig *lookup(const std::string &name) const
        LITMUS_REQUIRES(mutex)
    {
        auto it = presets.find(name);
        if (it == presets.end()) {
            const auto alias = aliases.find(name);
            if (alias == aliases.end())
                return nullptr;
            it = presets.find(alias->second);
        }
        return it == presets.end() ? nullptr : &it->second;
    }

    /** Register under cfg.name + aliases. */
    void add(const MachineConfig &cfg,
             const std::vector<std::string> &alias_names)
        LITMUS_REQUIRES(mutex)
    {
        cfg.validate();
        requireToken(cfg.name);
        if (!presets.contains(cfg.name))
            canonical.push_back(cfg.name);
        presets[cfg.name] = cfg;
        for (const std::string &alias : alias_names) {
            requireToken(alias);
            aliases[alias] = cfg.name;
        }
    }

    /** Names travel through fleet specs ("type:count,...") and v2
     *  profile records, so they must be single clean tokens. */
    static void requireToken(const std::string &name)
    {
        if (name.empty())
            fatal("MachineCatalog: preset has no name");
        if (name.find_first_of(" \t\n\r:,") != std::string::npos)
            fatal("MachineCatalog: preset name '", name,
                  "' may not contain whitespace, ':' or ','");
    }
};

Registry &
registry()
{
    static Registry instance;
    return instance;
}

} // namespace

MachineConfig
MachineCatalog::get(const std::string &name)
{
    Registry &reg = registry();
    MutexLock lock(&reg.mutex);
    const MachineConfig *preset = reg.lookup(name);
    if (!preset) {
        std::ostringstream known;
        for (std::size_t i = 0; i < reg.canonical.size(); ++i)
            known << (i ? ", " : "") << reg.canonical[i];
        fatal("MachineCatalog: unknown machine '", name,
              "' (catalog: ", known.str(), ")");
    }
    return *preset;
}

bool
MachineCatalog::has(const std::string &name)
{
    Registry &reg = registry();
    MutexLock lock(&reg.mutex);
    return reg.lookup(name) != nullptr;
}

void
MachineCatalog::registerPreset(const MachineConfig &cfg,
                               const std::vector<std::string> &aliases)
{
    Registry &reg = registry();
    MutexLock lock(&reg.mutex);
    reg.add(cfg, aliases);
}

MachineConfig
MachineCatalog::registerFromFile(const std::string &path)
{
    const ConfigReader file = ConfigReader::fromFile(path);
    MachineConfig cfg = get(file.getString("base", "cascade-5218"));

    // applyMachineOverrides treats unknown keys as typos; `base` is
    // ours, so hand it a copy without that key.
    ConfigReader overrides;
    for (const std::string &key : file.keys()) {
        if (key != "base")
            overrides.set(key, file.get(key));
    }
    applyMachineOverrides(cfg, overrides);

    if (!file.contains("name"))
        fatal("MachineCatalog: preset file '", path,
              "' must set name = <preset-name>");
    registerPreset(cfg);
    return cfg;
}

std::vector<std::string>
MachineCatalog::names()
{
    Registry &reg = registry();
    MutexLock lock(&reg.mutex);
    std::vector<std::string> out = reg.canonical;
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace litmus::sim
