/**
 * @file
 * OS CPU scheduler: per-CPU round-robin queues with affinity,
 * slice-expiry rotation, idle rebalancing, and the temporal-sharing
 * cost model (context-switch cycles + cache-warmth CPI inflation).
 *
 * Section 7.2 relaxes the one-function-per-core assumption: functions
 * temporally share CPUs, and the switching overhead — which the paper
 * shows grows logarithmically with the co-runner count and saturates
 * around 20 (Figure 14) — predominantly inflates T_private.
 */

#ifndef LITMUS_SIM_OS_SCHEDULER_H
#define LITMUS_SIM_OS_SCHEDULER_H

#include <deque>
#include <unordered_set>
#include <vector>

#include "sim/machine_config.h"
#include "sim/task.h"

namespace litmus::sim
{

/**
 * Non-owning scheduler over the machine's hardware threads.
 *
 * CPU indices are hardware-thread indices: cpu = core * smtWays + way.
 */
class OsScheduler
{
  public:
    explicit OsScheduler(const MachineConfig &cfg);

    /** Place a task on the least-loaded CPU its affinity allows. */
    void add(Task *task);

    /** Remove a task (completion); triggers idle rebalancing. */
    void remove(Task *task);

    /** Task currently running on cpu, or nullptr when idle. */
    Task *runningOn(unsigned cpu) const;

    /**
     * Advance slice accounting by dt; rotates expired slices and
     * accrues pending context-switch cycles for switched-in tasks.
     */
    void tick(Seconds dt);

    /**
     * Context-switch cycles waiting to be charged to the task running
     * on cpu; the engine consumes them (they burn cycles without
     * retiring instructions).
     */
    Cycles consumePendingSwitchCycles(unsigned cpu);

    /** Runnable tasks sharing cpu (including the running one). */
    unsigned queueLength(unsigned cpu) const;

    /**
     * Cache-warmth CPI multiplier for the task running on cpu:
     * 1 + maxPenalty * (1 - exp(-rate * (n - 1))) for n co-runners.
     */
    double warmthMult(unsigned cpu) const;

    /** Physical cores with at least one running task. */
    unsigned activeCores() const;

    /** True when the SMT sibling of cpu is running a task. */
    bool siblingBusy(unsigned cpu) const;

    /** @name POPPA sampling support @{ */
    /**
     * Freeze / unfreeze a task: a frozen task stays queued but is
     * skipped by runningOn(), modelling the co-runner stall that
     * POPPA-style sampling requires.
     */
    void setFrozen(Task *task, bool frozen);
    bool isFrozen(const Task *task) const;
    /** @} */

    /** Total runnable tasks across all CPUs. */
    unsigned totalTasks() const;

    /**
     * Summed L3 working sets (bytes) of queued tasks that are *not*
     * currently running — the cache-residue input to the contention
     * solver's capacity model.
     */
    double waitingWorkingSet() const;

    /** Same, restricted to CPUs in [cpu_begin, cpu_end). */
    double waitingWorkingSet(unsigned cpu_begin, unsigned cpu_end) const;

    unsigned cpuCount() const { return static_cast<unsigned>(cpus_.size()); }

    /** Expose the warmth curve itself (Figure 14 bench). */
    double warmthForCount(unsigned co_runners) const;

    /**
     * Topology version: bumped by every mutation that can change what
     * runs where (add, remove, freeze, slice rotation, rebalancing).
     * While it is unchanged, runningOn()/warmthMult()/siblingBusy()/
     * waitingWorkingSet() all return the same answers, which is what
     * lets the engine fast-forward steady stretches without re-asking.
     */
    std::uint64_t version() const { return version_; }

  private:
    struct CpuState
    {
        std::deque<Task *> queue;
        Seconds sliceUsed = 0;
        Cycles pendingSwitchCycles = 0;
    };

    /** CPUs the task may use (affinity or all). */
    std::vector<unsigned> allowedCpus(const Task *task) const;

    /** Move one waiting task onto an idle CPU when possible. */
    void rebalance();

    const MachineConfig &cfg_;
    std::vector<CpuState> cpus_;
    // LITMUS-LINT-ALLOW(unordered-decl): membership queries only (contains/insert/erase); never iterated, so its order cannot reach any output
    std::unordered_set<const Task *> frozen_;
    std::uint64_t version_ = 0;
    /** CPUs with >= 2 queued tasks (tick() fast-path bookkeeping). */
    unsigned crowdedCpus_ = 0;
};

} // namespace litmus::sim

#endif // LITMUS_SIM_OS_SCHEDULER_H
