#include "sim/task.h"

#include "common/logging.h"

namespace litmus::sim
{

void
ResourceDemand::validate() const
{
    if (cpi0 <= 0.0)
        fatal("ResourceDemand: cpi0 must be positive, got ", cpi0);
    if (l2Mpki < 0.0)
        fatal("ResourceDemand: l2Mpki must be non-negative");
    if (l3MissBase < 0.0 || l3MissBase > 1.0)
        fatal("ResourceDemand: l3MissBase must be in [0,1], got ",
              l3MissBase);
    if (mlp < 1.0)
        fatal("ResourceDemand: mlp must be >= 1, got ", mlp);
}

Task::Task(std::string name, Instructions probe_window)
    : name_(std::move(name)), probeWindow_(probe_window)
{
    if (probe_window < 0)
        fatal("Task: negative probe window");
}

} // namespace litmus::sim
