#include "sim/machine.h"

#include "common/logging.h"

namespace litmus::sim
{

RunResult
runSolo(const MachineConfig &cfg,
        const std::function<std::unique_ptr<Task>()> &make,
        FrequencyPolicy policy)
{
    Engine engine(cfg, policy);
    RunResult result;
    engine.onCompletion([&](Task &task) {
        result.counters = task.counters();
        result.probe = task.probe();
        result.wallTime = task.completionTime() - task.launchTime();
    });
    Task &task = engine.add(make());
    engine.runUntilComplete(task);
    return result;
}

} // namespace litmus::sim
