/**
 * @file
 * Machine configuration presets for the contention simulator.
 *
 * The paper evaluates on two Intel servers: a dual-socket Xeon Gold
 * 5218 (Cascade Lake, 32 cores total, 2x22 MiB L3, 384 GiB) and a Xeon
 * Silver 4314 (Ice Lake, 16 cores, 24 MiB L3, 128 GiB). We model each
 * machine as a single shared-resource domain: all cores share one L3
 * capacity pool, one L3 access-bandwidth pool, and one DRAM bandwidth
 * pool. Latencies are specified in nanoseconds and bandwidths in
 * events per nanosecond so DVFS changes interact with memory the same
 * way they do on hardware (a faster core waits more cycles for DRAM).
 */

#ifndef LITMUS_SIM_MACHINE_CONFIG_H
#define LITMUS_SIM_MACHINE_CONFIG_H

#include <string>

#include "common/units.h"

namespace litmus::sim
{

/**
 * Static description of the simulated server.
 *
 * All tunables that shape contention live here so experiments can vary
 * them (the sensitivity studies in Section 8 swap whole presets).
 * Named presets live in MachineCatalog (sim/machine_catalog.h); this
 * struct is the value type they resolve to.
 */
struct MachineConfig
{
    /**
     * Preset name, e.g. "cascade-5218". Doubles as the machine *type*
     * in heterogeneous fleets: calibration profiles record it, and a
     * profile only prices machines whose name matches.
     */
    std::string name;

    /** Physical cores across all sockets. */
    unsigned cores = 32;

    /**
     * Shared-resource domains (sockets). Each socket owns its own L3
     * capacity pool, L3 access bandwidth, and memory bandwidth (the
     * per-domain fields below); cores are split evenly across
     * sockets, consecutive core indices per socket. The default
     * presets fold the paper's dual-socket testbed into one domain;
     * the "cascade-5218-dual" preset models the sockets explicitly.
     */
    unsigned sockets = 1;

    /** Hardware threads per core (1 = SMT disabled, as on Lambda). */
    unsigned smtWays = 1;

    /** Nominal fixed frequency (the paper pins 2.8 GHz). */
    Hertz baseFrequency = 2.8_GHz;

    /** Peak single-core turbo frequency. */
    Hertz turboFrequency = 3.9_GHz;

    /** @name Shared-domain geometry and timing @{ */
    /** Shared L3 capacity of the domain. */
    Bytes l3Capacity = 44_MiB;

    /** Uncontended L3 hit latency (ns). */
    double l3HitLatencyNs = 14.3;

    /** Uncontended DRAM access latency (ns). */
    double memLatencyNs = 71.0;

    /** L3 access service bandwidth (accesses per ns, whole domain). */
    double l3ServiceRate = 5.6;

    /** DRAM line service bandwidth (64B lines per ns, whole domain). */
    double memServiceRate = 1.95;

    /**
     * Queuing model: latency multiplier saturates smoothly as
     * utilization approaches 1, qf(u) = 1 + (qmax - 1) * u^gamma.
     * Bounded on purpose: a saturated DRAM bus raises latency a few
     * fold, it does not diverge (requests throttle the producers).
     */
    double l3QueueMax = 4.5;
    double memQueueMax = 3.2;
    double queueGamma = 2.0;

    /** Exponent of the L3 capacity-pressure miss curve. */
    double capacityMissExponent = 0.42;

    /**
     * Fraction of a *waiting* (runnable but switched-out) task's L3
     * working set that still occupies the cache and pressures the
     * running tasks' shares. Temporal sharing packs many functions'
     * residue into the L3 — the effect that makes Section 7.2's
     * shared environments markedly more congested than one-per-core.
     */
    double residencyFactor = 0.25;
    /** @} */

    /** @name Private-resource coupling @{ */
    /**
     * Strength of the second-order effect where a busy uncore slightly
     * lengthens private-resource time (TLB walks, prefetch drop, L2
     * queue occupancy). Scaled by the task's own memory intensity so
     * compute-bound functions stay unaffected (float-py in the paper
     * sees a 0.05% total slowdown while the suite average is ~4%),
     * and capped so traffic-generator extremes stay plausible.
     */
    double privateCouplingL3 = 0.30;
    double privateCouplingMem = 0.32;

    /** Memory intensity (L2 MPKI) at which the coupling saturates. */
    double couplingSaturationMpki = 2.5;

    /** Upper bound on the coupling inflation (fraction of cpi0). */
    double privateCouplingMax = 0.15;
    /** @} */

    /** @name SMT @{ */
    /**
     * Per-thread CPI multiplier when the SMT sibling is active: both
     * threads share issue slots and private caches.
     */
    double smtCpiMultiplier = 1.95;
    /** @} */

    /** @name OS scheduling @{ */
    /** Round-robin time slice for oversubscribed CPUs. */
    Seconds timeSlice = 5_ms;

    /** Direct cost of a context switch, charged as private cycles. */
    Cycles contextSwitchCycles = 6000;

    /**
     * Cache-warmth CPI inflation from temporal sharing, following the
     * logarithmic saturating shape of Figure 14:
     *   warmth(n) = 1 + warmthMaxPenalty * (1 - exp(-warmthRate*(n-1)))
     * for n co-runners on the CPU; ~1.025 at n=10, flat past ~20.
     */
    double warmthMaxPenalty = 0.028;
    double warmthRate = 0.22;
    /** @} */

    /** Main memory capacity (bounds admission in the invoker). */
    Bytes memoryCapacity = 384_GiB;

    /**
     * Simulation quantum for engines built from this preset (whole
     * nanoseconds; validate() enforces it). The cluster requires every
     * machine type in one fleet to agree on this value — the dispatch
     * epoch is a whole number of quanta and the fleet clock lives on
     * that shared grid — and fatal()s at config time otherwise.
     */
    Seconds quantum = 50e-6;

    /** Total hardware threads (scheduling targets). */
    unsigned hwThreads() const { return cores * smtWays; }

    /** Cores per socket. */
    unsigned coresPerSocket() const { return cores / sockets; }

    /** Hardware threads per socket. */
    unsigned hwThreadsPerSocket() const
    {
        return coresPerSocket() * smtWays;
    }

    /** Socket owning a hardware-thread index. */
    unsigned socketOf(unsigned cpu) const
    {
        return (cpu / smtWays) / coresPerSocket();
    }

    /** Abort with fatal() if any field is inconsistent. */
    void validate() const;
};

} // namespace litmus::sim

namespace litmus
{
class ConfigReader;
} // namespace litmus

namespace litmus::sim
{

/**
 * Apply recognized key=value overrides onto a machine config (unknown
 * keys are fatal() so typos surface immediately). Recognized keys:
 * name, cores, smt_ways, base_ghz, turbo_ghz, l3_capacity_mib,
 * l3_hit_latency_ns, mem_latency_ns, l3_service_rate,
 * mem_service_rate, l3_queue_max, mem_queue_max, queue_gamma,
 * capacity_miss_exponent, residency_factor, coupling_l3,
 * coupling_mem, coupling_saturation_mpki, coupling_max,
 * smt_cpi_multiplier, time_slice_ms, context_switch_cycles,
 * warmth_max_penalty, warmth_rate, memory_capacity_gib, quantum_us.
 *
 * Lives in the sim layer (not with ConfigReader in common/): it
 * writes sim::MachineConfig, and common/ must not reach up the DAG.
 */
void applyMachineOverrides(MachineConfig &machine,
                           const ConfigReader &config);

} // namespace litmus::sim

#endif // LITMUS_SIM_MACHINE_CONFIG_H
