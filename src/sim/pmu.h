/**
 * @file
 * Performance monitoring: per-task and machine-wide counters.
 *
 * Litmus pricing reads four hardware events (Section 5.2): retired
 * instructions, unhalted cycles, cycles stalled on L2 misses
 * (cycle_activity.stalls_l2_miss — this *is* T_shared), and L3 misses.
 * The simulator defines the same counters with identical semantics:
 *   T_shared  = stallSharedCycles
 *   T_private = cycles - stallSharedCycles
 */

#ifndef LITMUS_SIM_PMU_H
#define LITMUS_SIM_PMU_H

#include "common/units.h"

namespace litmus::sim
{

/**
 * Counter block accrued while a task executes (the per-process view
 * Linux perf would report).
 */
struct TaskCounters
{
    Instructions instructions = 0;
    Cycles cycles = 0;
    /** Cycles stalled waiting on the shared domain (T_shared). */
    Cycles stallSharedCycles = 0;
    double l2Misses = 0;
    double l3Misses = 0;
    std::uint64_t contextSwitches = 0;

    /** Cycles on private resources (T_private). */
    Cycles privateCycles() const { return cycles - stallSharedCycles; }

    /** Accumulate another block (used when merging quanta). */
    void add(const TaskCounters &other);

    /** Difference since a snapshot; other must be an earlier state. */
    TaskCounters since(const TaskCounters &earlier) const;
};

/**
 * Machine-wide counters (the uncore view): total L3 traffic and misses
 * plus elapsed wall-clock time, used by the Litmus probe to observe the
 * crowdedness of shared resources beyond the probing task itself.
 */
struct MachineCounters
{
    double l3Accesses = 0;
    double l3Misses = 0;
    Seconds time = 0;

    MachineCounters since(const MachineCounters &earlier) const;

    /** Machine L3 miss rate in misses per microsecond of wall time. */
    double l3MissRatePerUs() const;
};

} // namespace litmus::sim

#endif // LITMUS_SIM_PMU_H
