/**
 * @file
 * Machine facade: convenience entry point for the most common
 * experiment motion — running one task alone on an otherwise idle
 * machine (the paper's T_solo baselines that every normalized figure
 * divides by).
 *
 * Runs amid co-runners are orchestrated by the experiment harness in
 * the pricing library, which owns the engine's completion callback.
 */

#ifndef LITMUS_SIM_MACHINE_H
#define LITMUS_SIM_MACHINE_H

#include <functional>
#include <memory>

#include "sim/engine.h"

namespace litmus::sim
{

/** Result of running a task to completion. */
struct RunResult
{
    TaskCounters counters;
    ProbeCapture probe;
    Seconds wallTime = 0;

    /** On-CPU time in seconds at the given frequency. */
    Seconds cpuTime(Hertz freq) const { return counters.cycles / freq; }
};

/**
 * Run a freshly built task alone on an idle machine and return its
 * counters.
 *
 * @param cfg machine to simulate
 * @param make factory producing the task (called exactly once)
 * @param policy frequency policy for the baseline run
 */
RunResult runSolo(const MachineConfig &cfg,
                  const std::function<std::unique_ptr<Task>()> &make,
                  FrequencyPolicy policy = FrequencyPolicy::Fixed);

} // namespace litmus::sim

#endif // LITMUS_SIM_MACHINE_H
