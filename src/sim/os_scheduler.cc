#include "sim/os_scheduler.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace litmus::sim
{

OsScheduler::OsScheduler(const MachineConfig &cfg) : cfg_(cfg)
{
    cpus_.resize(cfg.hwThreads());
}

std::vector<unsigned>
OsScheduler::allowedCpus(const Task *task) const
{
    if (!task->affinity().empty()) {
        for (unsigned cpu : task->affinity()) {
            if (cpu >= cpus_.size())
                fatal("Task ", task->name(), " affinity cpu ", cpu,
                      " exceeds machine size ", cpus_.size());
        }
        return task->affinity();
    }
    std::vector<unsigned> all(cpus_.size());
    for (unsigned i = 0; i < cpus_.size(); ++i)
        all[i] = i;
    return all;
}

void
OsScheduler::add(Task *task)
{
    const auto allowed = allowedCpus(task);
    unsigned best = allowed.front();
    for (unsigned cpu : allowed) {
        if (cpus_[cpu].queue.size() < cpus_[best].queue.size())
            best = cpu;
    }
    cpus_[best].queue.push_back(task);
    if (cpus_[best].queue.size() == 2)
        ++crowdedCpus_;
    ++version_;
}

void
OsScheduler::remove(Task *task)
{
    for (auto &cpu : cpus_) {
        auto it = std::find(cpu.queue.begin(), cpu.queue.end(), task);
        if (it != cpu.queue.end()) {
            const bool wasRunning = it == cpu.queue.begin();
            cpu.queue.erase(it);
            if (cpu.queue.size() == 1)
                --crowdedCpus_;
            // The slice resets as soon as the CPU stops being
            // oversubscribed. Deliberate semantics (and the invariant
            // that lets an uncrowded tick() be a no-op): previously a
            // partially consumed slice could carry over if the queue
            // refilled before the next tick, rotating the new pair
            // early.
            if (wasRunning || cpu.queue.size() < 2)
                cpu.sliceUsed = 0;
            frozen_.erase(task);
            ++version_;
            rebalance();
            return;
        }
    }
    panic("OsScheduler::remove: task ", task->name(), " not queued");
}

Task *
OsScheduler::runningOn(unsigned cpu) const
{
    if (cpu >= cpus_.size())
        panic("OsScheduler::runningOn: cpu ", cpu, " out of range");
    const std::deque<Task *> &queue = cpus_[cpu].queue;
    // Freezing is rare (POPPA windows only); skip the per-entry hash
    // probes on the hot path when nothing is frozen.
    if (frozen_.empty())
        return queue.empty() ? nullptr : queue.front();
    for (Task *task : queue) {
        if (!frozen_.contains(task))
            return task;
    }
    return nullptr;
}

void
OsScheduler::tick(Seconds dt)
{
    // With no oversubscribed CPU the loop below is a pure no-op
    // (every sliceUsed is already 0 by the eager resets), so the
    // common uncrowded case costs O(1) per quantum.
    if (crowdedCpus_ == 0)
        return;
    for (auto &cpu : cpus_) {
        if (cpu.queue.size() < 2) {
            cpu.sliceUsed = 0;
            continue;
        }
        cpu.sliceUsed += dt;
        if (cpu.sliceUsed >= cfg_.timeSlice) {
            cpu.sliceUsed = 0;
            Task *old = cpu.queue.front();
            cpu.queue.pop_front();
            cpu.queue.push_back(old);
            Task *incoming = cpu.queue.front();
            if (incoming != old) {
                incoming->counters().contextSwitches += 1;
                cpu.pendingSwitchCycles += cfg_.contextSwitchCycles;
            }
            ++version_;
        }
    }
}

Cycles
OsScheduler::consumePendingSwitchCycles(unsigned cpu)
{
    const Cycles pending = cpus_[cpu].pendingSwitchCycles;
    cpus_[cpu].pendingSwitchCycles = 0;
    return pending;
}

unsigned
OsScheduler::queueLength(unsigned cpu) const
{
    return static_cast<unsigned>(cpus_[cpu].queue.size());
}

double
OsScheduler::warmthForCount(unsigned co_runners) const
{
    if (co_runners <= 1)
        return 1.0;
    const double n = static_cast<double>(co_runners);
    return 1.0 + cfg_.warmthMaxPenalty *
                     (1.0 - std::exp(-cfg_.warmthRate * (n - 1.0)));
}

double
OsScheduler::warmthMult(unsigned cpu) const
{
    return warmthForCount(queueLength(cpu));
}

unsigned
OsScheduler::activeCores() const
{
    unsigned active = 0;
    for (unsigned core = 0; core < cfg_.cores; ++core) {
        for (unsigned way = 0; way < cfg_.smtWays; ++way) {
            if (runningOn(core * cfg_.smtWays + way)) {
                ++active;
                break;
            }
        }
    }
    return active;
}

bool
OsScheduler::siblingBusy(unsigned cpu) const
{
    if (cfg_.smtWays < 2)
        return false;
    const unsigned core = cpu / cfg_.smtWays;
    const unsigned way = cpu % cfg_.smtWays;
    const unsigned sibling = core * cfg_.smtWays + (way ^ 1u);
    return runningOn(sibling) != nullptr;
}

void
OsScheduler::setFrozen(Task *task, bool frozen)
{
    const bool changed = frozen ? frozen_.insert(task).second
                                : frozen_.erase(task) > 0;
    if (changed)
        ++version_;
}

bool
OsScheduler::isFrozen(const Task *task) const
{
    return frozen_.contains(task);
}

double
OsScheduler::waitingWorkingSet() const
{
    return waitingWorkingSet(0, static_cast<unsigned>(cpus_.size()));
}

double
OsScheduler::waitingWorkingSet(unsigned cpu_begin,
                               unsigned cpu_end) const
{
    double total = 0.0;
    cpu_end = std::min(cpu_end, static_cast<unsigned>(cpus_.size()));
    for (unsigned cpu = cpu_begin; cpu < cpu_end; ++cpu) {
        const Task *running = runningOn(cpu);
        for (const Task *task : cpus_[cpu].queue) {
            if (task != running && !task->finished()) {
                total += static_cast<double>(
                    task->demand().l3WorkingSet);
            }
        }
    }
    return total;
}

unsigned
OsScheduler::totalTasks() const
{
    unsigned total = 0;
    for (const auto &cpu : cpus_)
        total += static_cast<unsigned>(cpu.queue.size());
    return total;
}

void
OsScheduler::rebalance()
{
    // Move one *waiting* task from the longest queue onto each idle CPU
    // that its affinity allows. One pass is enough; completions call
    // this every time.
    for (unsigned cpu = 0; cpu < cpus_.size(); ++cpu) {
        if (!cpus_[cpu].queue.empty())
            continue;
        Task *candidate = nullptr;
        unsigned fromCpu = 0;
        std::size_t fromLen = 1; // need a queue with >= 2 tasks
        for (unsigned other = 0; other < cpus_.size(); ++other) {
            if (other == cpu || cpus_[other].queue.size() <= fromLen)
                continue;
            // Waiting tasks only (skip the running front).
            for (std::size_t k = 1; k < cpus_[other].queue.size(); ++k) {
                Task *t = cpus_[other].queue[k];
                const auto &aff = t->affinity();
                const bool ok =
                    aff.empty() ||
                    std::find(aff.begin(), aff.end(), cpu) != aff.end();
                if (ok) {
                    candidate = t;
                    fromCpu = other;
                    fromLen = cpus_[other].queue.size();
                    break;
                }
            }
        }
        if (candidate) {
            auto &q = cpus_[fromCpu].queue;
            q.erase(std::find(q.begin(), q.end(), candidate));
            if (q.size() == 1) {
                --crowdedCpus_;
                cpus_[fromCpu].sliceUsed = 0;
            }
            cpus_[cpu].queue.push_back(candidate);
            ++version_;
        }
    }
}

} // namespace litmus::sim
