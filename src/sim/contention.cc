#include "sim/contention.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"

namespace litmus::sim
{

ContentionSolver::ContentionSolver(const MachineConfig &cfg) : cfg_(cfg)
{
}

double
ContentionSolver::queueFactor(double u, double qmax) const
{
    const double capped = std::clamp(u, 0.0, 1.0);
    return 1.0 + (qmax - 1.0) * std::pow(capped, cfg_.queueGamma);
}

double
ContentionSolver::missFraction(const ResourceDemand &demand,
                               double shareBytes) const
{
    if (demand.l2Mpki <= 0.0)
        return 0.0;
    const double ws = static_cast<double>(demand.l3WorkingSet);
    double capacityMiss = 0.0;
    if (ws > 0.0 && shareBytes < ws) {
        const double deficit = 1.0 - shareBytes / ws;
        capacityMiss = std::pow(deficit, cfg_.capacityMissExponent);
    }
    const double m =
        demand.l3MissBase + (1.0 - demand.l3MissBase) * capacityMiss;
    return std::clamp(m, 0.0, 1.0);
}

ThreadPerf
ContentionSolver::threadPerf(const ResourceDemand &demand,
                             const ThreadEnvironment &env,
                             const SharedState &shared,
                             Hertz frequency) const
{
    const double cyclesPerNs = frequency * 1e-9;

    ThreadPerf perf;

    // Capacity share: proportional occupancy. When the machine's total
    // demand fits, everyone gets their working set; otherwise shares
    // shrink proportionally (a streaming co-runner evicts neighbours).
    const double ws = static_cast<double>(demand.l3WorkingSet);
    const double l3 = static_cast<double>(cfg_.l3Capacity);
    double share = ws;
    if (shared.totalWorkingSet > l3 && shared.totalWorkingSet > 0.0)
        share = l3 * ws / shared.totalWorkingSet;
    perf.l3MissFraction = missFraction(demand, share);

    // Shared-domain stall per instruction, in cycles at the current
    // frequency (latencies are physical ns; a faster clock waits more
    // cycles for the same DRAM access).
    const double missPerInstr = demand.l2Mpki / 1000.0;
    const double m = perf.l3MissFraction;
    const double avgLatNs = (1.0 - m) * shared.l3LatencyNs +
                            m * shared.memLatencyNs;
    perf.stallPerInstr =
        missPerInstr * avgLatNs * cyclesPerNs / demand.mlp;

    // Private CPI with warmth, SMT, and the uncore-coupling term that
    // scales with the task's own memory intensity (capped so generator
    // extremes stay plausible).
    const double intensity =
        std::min(1.0, demand.l2Mpki / cfg_.couplingSaturationMpki);
    const double rawCoupling =
        intensity * (cfg_.privateCouplingL3 * shared.l3Utilization +
                     cfg_.privateCouplingMem * shared.memUtilization);
    const double coupling =
        1.0 + std::min(rawCoupling, cfg_.privateCouplingMax);
    perf.privateCpi =
        demand.cpi0 * env.warmthMult * env.smtMult * coupling;

    return perf;
}

ContentionResult
ContentionSolver::solve(const std::vector<SolverInput> &inputs,
                        Hertz frequency,
                        double waiting_working_set) const
{
    ContentionResult result;
    result.threads.resize(inputs.size());

    SharedState &shared = result.shared;
    shared.l3LatencyNs = cfg_.l3HitLatencyNs;
    shared.memLatencyNs = cfg_.memLatencyNs;

    // Cache residue of switched-out co-located functions competes for
    // capacity alongside the running threads' working sets.
    shared.totalWorkingSet =
        cfg_.residencyFactor * std::max(0.0, waiting_working_set);
    for (const auto &input : inputs)
        shared.totalWorkingSet +=
            static_cast<double>(input.demand.l3WorkingSet);

    if (inputs.empty())
        return result;

    const double ghz = frequency * 1e-9; // cycles per ns

    // Damped fixed-point iteration. Three rounds are enough: traffic
    // rates move latencies which move rates; the damping factor keeps
    // the loop stable even at saturation.
    constexpr int iterations = 4;
    constexpr double damping = 0.6;

    double uL3 = 0.0;
    double uMem = 0.0;

    for (int iter = 0; iter < iterations; ++iter) {
        shared.l3Utilization = uL3;
        shared.memUtilization = uMem;
        shared.l3LatencyNs =
            cfg_.l3HitLatencyNs * queueFactor(uL3, cfg_.l3QueueMax);
        shared.memLatencyNs =
            cfg_.memLatencyNs * queueFactor(uMem, cfg_.memQueueMax);

        double l3AccessPerNs = 0.0;
        double memLinesPerNs = 0.0;

        for (std::size_t i = 0; i < inputs.size(); ++i) {
            result.threads[i] = threadPerf(inputs[i].demand,
                                           inputs[i].env, shared,
                                           frequency);
            const ThreadPerf &perf = result.threads[i];
            // Instructions per ns this thread retires at the current
            // operating point.
            const double ipns = ghz / perf.cpi();
            const double missesPerNs =
                ipns * inputs[i].demand.l2Mpki / 1000.0;
            l3AccessPerNs += missesPerNs;
            memLinesPerNs += missesPerNs * perf.l3MissFraction;
        }

        const double newUL3 =
            std::min(l3AccessPerNs / cfg_.l3ServiceRate, 1.0);
        const double newUMem =
            std::min(memLinesPerNs / cfg_.memServiceRate, 1.0);

        uL3 = damping * newUL3 + (1.0 - damping) * uL3;
        uMem = damping * newUMem + (1.0 - damping) * uMem;
    }

    shared.l3Utilization = uL3;
    shared.memUtilization = uMem;
    shared.l3LatencyNs =
        cfg_.l3HitLatencyNs * queueFactor(uL3, cfg_.l3QueueMax);
    shared.memLatencyNs =
        cfg_.memLatencyNs * queueFactor(uMem, cfg_.memQueueMax);

    for (std::size_t i = 0; i < inputs.size(); ++i) {
        result.threads[i] = threadPerf(inputs[i].demand, inputs[i].env,
                                       shared, frequency);
    }

    return result;
}

ContentionMemo::ContentionMemo(std::size_t capacity)
    : capacity_(capacity)
{
    if (capacity_ == 0)
        fatal("ContentionMemo: capacity must be positive");
}

std::size_t
ContentionMemo::KeyHash::operator()(const Key &key) const
{
    // FNV-1a over the packed bit patterns.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::uint64_t word : key) {
        h ^= word;
        h *= 0x100000001b3ull;
    }
    return static_cast<std::size_t>(h);
}

void
ContentionMemo::makeKey(Key &key,
                        const std::vector<SolverInput> &inputs,
                        Hertz frequency, double waiting_working_set)
{
    const auto bits = [](double v) {
        return std::bit_cast<std::uint64_t>(v);
    };
    key.clear();
    key.reserve(2 + 7 * inputs.size());
    key.push_back(bits(frequency));
    key.push_back(bits(waiting_working_set));
    for (const SolverInput &in : inputs) {
        key.push_back(bits(in.demand.cpi0));
        key.push_back(bits(in.demand.l2Mpki));
        key.push_back(in.demand.l3WorkingSet);
        key.push_back(bits(in.demand.l3MissBase));
        key.push_back(bits(in.demand.mlp));
        key.push_back(bits(in.env.warmthMult));
        key.push_back(bits(in.env.smtMult));
    }
}

// Runs unsynchronized by design: the memo is confined to the single
// EpochPool job advancing its machine (see the class comment), so no
// lock is taken here and none of the members carry LITMUS_GUARDED_BY.
const ContentionResult &
ContentionMemo::solve(const ContentionSolver &solver,
                      const std::vector<SolverInput> &inputs,
                      Hertz frequency, double waiting_working_set)
{
    if (bypassed_) {
        ++misses_;
        bypassResult_ =
            solver.solve(inputs, frequency, waiting_working_set);
        return bypassResult_;
    }

    makeKey(keyBuffer_, inputs, frequency, waiting_working_set);
    const auto it = index_.find(keyBuffer_);
    if (it != index_.end()) {
        ++hits_;
        entries_.splice(entries_.begin(), entries_, it->second);
        return entries_.front().second;
    }
    ++misses_;

    // Hit-rate watchdog: once warm, a memo that hits on fewer than
    // ~20% of lookups costs more in key hashing than it saves in
    // skipped solves (per-invocation jitter makes fleet signatures
    // nearly unique). Bypass permanently; results are unchanged.
    constexpr std::uint64_t warmupMisses = 2048;
    if (misses_ >= warmupMisses && hits_ * 5 < misses_) {
        bypassed_ = true;
        entries_.clear();
        index_.clear();
        bypassResult_ =
            solver.solve(inputs, frequency, waiting_working_set);
        return bypassResult_;
    }

    entries_.emplace_front(keyBuffer_,
                           solver.solve(inputs, frequency,
                                        waiting_working_set));
    index_.emplace(entries_.front().first, entries_.begin());
    if (entries_.size() > capacity_) {
        index_.erase(entries_.back().first);
        entries_.pop_back();
    }
    return entries_.front().second;
}

} // namespace litmus::sim
