#include "sim/machine_config.h"

#include "common/logging.h"

namespace litmus::sim
{

void
MachineConfig::validate() const
{
    if (cores == 0)
        fatal("MachineConfig: cores must be positive");
    if (sockets == 0 || cores % sockets != 0)
        fatal("MachineConfig: cores (", cores,
              ") must divide evenly across sockets (", sockets, ")");
    if (smtWays == 0 || smtWays > 2)
        fatal("MachineConfig: smtWays must be 1 or 2, got ", smtWays);
    if (baseFrequency <= 0 || turboFrequency < baseFrequency)
        fatal("MachineConfig: bad frequency range");
    if (l3Capacity == 0)
        fatal("MachineConfig: l3Capacity must be positive");
    if (l3HitLatencyNs <= 0 || memLatencyNs <= l3HitLatencyNs)
        fatal("MachineConfig: latencies must satisfy 0 < L3 < mem");
    if (l3ServiceRate <= 0 || memServiceRate <= 0)
        fatal("MachineConfig: service rates must be positive");
    if (l3QueueMax < 1 || memQueueMax < 1 || queueGamma <= 0)
        fatal("MachineConfig: queue model parameters out of range");
    if (capacityMissExponent <= 0)
        fatal("MachineConfig: capacityMissExponent must be positive");
    if (residencyFactor < 0 || residencyFactor > 1)
        fatal("MachineConfig: residencyFactor must be in [0,1]");
    if (privateCouplingL3 < 0 || privateCouplingMem < 0 ||
        privateCouplingMax < 0) {
        fatal("MachineConfig: coupling parameters must be non-negative");
    }
    if (smtCpiMultiplier < 1)
        fatal("MachineConfig: smtCpiMultiplier must be >= 1");
    if (timeSlice <= 0)
        fatal("MachineConfig: timeSlice must be positive");
    if (warmthMaxPenalty < 0 || warmthRate < 0)
        fatal("MachineConfig: warmth parameters must be non-negative");
}

} // namespace litmus::sim
