#include "sim/machine_config.h"

#include <cmath>

#include "common/config_reader.h"
#include "common/logging.h"

namespace litmus::sim
{

void
MachineConfig::validate() const
{
    if (cores == 0)
        fatal("MachineConfig: cores must be positive");
    if (sockets == 0 || cores % sockets != 0)
        fatal("MachineConfig: cores (", cores,
              ") must divide evenly across sockets (", sockets, ")");
    if (smtWays == 0 || smtWays > 2)
        fatal("MachineConfig: smtWays must be 1 or 2, got ", smtWays);
    if (baseFrequency <= 0 || turboFrequency < baseFrequency)
        fatal("MachineConfig: bad frequency range");
    if (l3Capacity == 0)
        fatal("MachineConfig: l3Capacity must be positive");
    if (l3HitLatencyNs <= 0 || memLatencyNs <= l3HitLatencyNs)
        fatal("MachineConfig: latencies must satisfy 0 < L3 < mem");
    if (l3ServiceRate <= 0 || memServiceRate <= 0)
        fatal("MachineConfig: service rates must be positive");
    if (l3QueueMax < 1 || memQueueMax < 1 || queueGamma <= 0)
        fatal("MachineConfig: queue model parameters out of range");
    if (capacityMissExponent <= 0)
        fatal("MachineConfig: capacityMissExponent must be positive");
    if (residencyFactor < 0 || residencyFactor > 1)
        fatal("MachineConfig: residencyFactor must be in [0,1]");
    if (privateCouplingL3 < 0 || privateCouplingMem < 0 ||
        privateCouplingMax < 0) {
        fatal("MachineConfig: coupling parameters must be non-negative");
    }
    if (smtCpiMultiplier < 1)
        fatal("MachineConfig: smtCpiMultiplier must be >= 1");
    if (timeSlice <= 0)
        fatal("MachineConfig: timeSlice must be positive");
    if (warmthMaxPenalty < 0 || warmthRate < 0)
        fatal("MachineConfig: warmth parameters must be non-negative");
    const double quantumNs = quantum * 1e9;
    if (quantum <= 0 || quantumNs < 1 ||
        std::abs(quantumNs - std::round(quantumNs)) > 1e-6) {
        fatal("MachineConfig: quantum must be a positive whole number "
              "of nanoseconds, got ",
              quantum, " s");
    }
}

void
applyMachineOverrides(MachineConfig &machine,
                      const ConfigReader &config)
{
    for (const std::string &key : config.keys()) {
        if (key == "name") {
            machine.name = config.get(key);
        } else if (key == "cores") {
            machine.cores =
                static_cast<unsigned>(config.getInt(key, 0));
        } else if (key == "smt_ways") {
            machine.smtWays =
                static_cast<unsigned>(config.getInt(key, 1));
        } else if (key == "base_ghz") {
            machine.baseFrequency = config.getDouble(key, 0) * 1e9;
        } else if (key == "turbo_ghz") {
            machine.turboFrequency = config.getDouble(key, 0) * 1e9;
        } else if (key == "l3_capacity_mib") {
            machine.l3Capacity = static_cast<Bytes>(
                config.getDouble(key, 0) * 1024.0 * 1024.0);
        } else if (key == "l3_hit_latency_ns") {
            machine.l3HitLatencyNs = config.getDouble(key, 0);
        } else if (key == "mem_latency_ns") {
            machine.memLatencyNs = config.getDouble(key, 0);
        } else if (key == "l3_service_rate") {
            machine.l3ServiceRate = config.getDouble(key, 0);
        } else if (key == "mem_service_rate") {
            machine.memServiceRate = config.getDouble(key, 0);
        } else if (key == "l3_queue_max") {
            machine.l3QueueMax = config.getDouble(key, 0);
        } else if (key == "mem_queue_max") {
            machine.memQueueMax = config.getDouble(key, 0);
        } else if (key == "queue_gamma") {
            machine.queueGamma = config.getDouble(key, 0);
        } else if (key == "capacity_miss_exponent") {
            machine.capacityMissExponent = config.getDouble(key, 0);
        } else if (key == "residency_factor") {
            machine.residencyFactor = config.getDouble(key, 0);
        } else if (key == "coupling_l3") {
            machine.privateCouplingL3 = config.getDouble(key, 0);
        } else if (key == "coupling_mem") {
            machine.privateCouplingMem = config.getDouble(key, 0);
        } else if (key == "coupling_saturation_mpki") {
            machine.couplingSaturationMpki = config.getDouble(key, 0);
        } else if (key == "coupling_max") {
            machine.privateCouplingMax = config.getDouble(key, 0);
        } else if (key == "smt_cpi_multiplier") {
            machine.smtCpiMultiplier = config.getDouble(key, 0);
        } else if (key == "time_slice_ms") {
            machine.timeSlice = config.getDouble(key, 0) * 1e-3;
        } else if (key == "context_switch_cycles") {
            machine.contextSwitchCycles = config.getDouble(key, 0);
        } else if (key == "warmth_max_penalty") {
            machine.warmthMaxPenalty = config.getDouble(key, 0);
        } else if (key == "warmth_rate") {
            machine.warmthRate = config.getDouble(key, 0);
        } else if (key == "memory_capacity_gib") {
            machine.memoryCapacity = static_cast<Bytes>(
                config.getDouble(key, 0) * 1024.0 * 1024.0 * 1024.0);
        } else if (key == "quantum_us") {
            machine.quantum = config.getDouble(key, 0) * 1e-6;
        } else {
            fatal("applyMachineOverrides: unknown key '", key, "'");
        }
    }
    machine.validate();
}

} // namespace litmus::sim
