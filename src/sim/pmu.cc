#include "sim/pmu.h"

#include "common/logging.h"

namespace litmus::sim
{

void
TaskCounters::add(const TaskCounters &other)
{
    instructions += other.instructions;
    cycles += other.cycles;
    stallSharedCycles += other.stallSharedCycles;
    l2Misses += other.l2Misses;
    l3Misses += other.l3Misses;
    contextSwitches += other.contextSwitches;
}

TaskCounters
TaskCounters::since(const TaskCounters &earlier) const
{
    TaskCounters d;
    d.instructions = instructions - earlier.instructions;
    d.cycles = cycles - earlier.cycles;
    d.stallSharedCycles = stallSharedCycles - earlier.stallSharedCycles;
    d.l2Misses = l2Misses - earlier.l2Misses;
    d.l3Misses = l3Misses - earlier.l3Misses;
    d.contextSwitches = contextSwitches - earlier.contextSwitches;
    if (d.instructions < 0 || d.cycles < 0)
        panic("TaskCounters::since: snapshot is newer than current state");
    return d;
}

MachineCounters
MachineCounters::since(const MachineCounters &earlier) const
{
    MachineCounters d;
    d.l3Accesses = l3Accesses - earlier.l3Accesses;
    d.l3Misses = l3Misses - earlier.l3Misses;
    d.time = time - earlier.time;
    if (d.time < 0)
        panic("MachineCounters::since: snapshot is newer than now");
    return d;
}

double
MachineCounters::l3MissRatePerUs() const
{
    if (time <= 0)
        return 0.0;
    return l3Misses / (time * 1e6);
}

} // namespace litmus::sim
