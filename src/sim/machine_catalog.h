/**
 * @file
 * Name -> machine-preset registry.
 *
 * The paper calibrates and prices on two concrete servers; a
 * heterogeneous fleet mixes generations, so machine descriptions are
 * first-class named artifacts rather than hard-wired factory calls.
 * Every app, bench, and test resolves a MachineConfig through this
 * catalog, and fleet specs ("cascade-5218:8,icelake-4314:8") are
 * strings of catalog names — adding a new generation is one
 * registerPreset() call or one key=value file, never a recompile of
 * the call sites.
 *
 * Built-in presets (canonical name first, then aliases):
 *
 *  - "cascade-5218"      (cascadelake, xeon-gold-5218): dual-socket
 *    Xeon Gold 5218 folded into one domain, Section 3;
 *  - "cascade-5218-dual" (xeon-gold-5218-dual): the same server with
 *    both sockets modelled explicitly;
 *  - "icelake-4314"      (icelake, xeon-silver-4314): Xeon Silver
 *    4314, Section 8.
 *
 * The registry is process-wide and thread-safe; lookups copy the
 * preset so callers can tweak fields freely.
 */

#ifndef LITMUS_SIM_MACHINE_CATALOG_H
#define LITMUS_SIM_MACHINE_CATALOG_H

#include <string>
#include <vector>

#include "sim/machine_config.h"

namespace litmus::sim
{

class MachineCatalog
{
  public:
    /** Preset by name or alias; fatal() listing the catalog when
     *  unknown. The returned config is a copy. */
    static MachineConfig get(const std::string &name);

    /** True when @p name resolves (canonical or alias). */
    static bool has(const std::string &name);

    /**
     * Register (or replace) a custom preset under cfg.name plus any
     * extra aliases. The config is validated first. Replacing a
     * built-in is allowed — experiments that reshape a preset
     * re-register it under a new name instead of mutating shared
     * state.
     */
    static void registerPreset(const MachineConfig &cfg,
                               const std::vector<std::string> &aliases = {});

    /**
     * Parse a key=value preset file (applyMachineOverrides keys, plus
     * `base = <preset>` selecting the starting preset, default
     * "cascade-5218") and register it. The file must set `name`;
     * returns the registered config.
     */
    static MachineConfig registerFromFile(const std::string &path);

    /** Canonical preset names, sorted (error messages, --help). */
    static std::vector<std::string> names();
};

} // namespace litmus::sim

#endif // LITMUS_SIM_MACHINE_CATALOG_H
