/**
 * @file
 * The schedulable unit of work and its resource demand description.
 *
 * A Task tells the simulator, for its current execution phase, how it
 * uses the machine: base private CPI, L2-miss traffic into the shared
 * domain, L3 footprint, streaming behaviour, and memory-level
 * parallelism. Concrete tasks (serverless functions, traffic-generator
 * threads) are defined in the workload library.
 */

#ifndef LITMUS_SIM_TASK_H
#define LITMUS_SIM_TASK_H

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/pmu.h"

namespace litmus::sim
{

/**
 * Instantaneous resource demand of a task phase.
 *
 * These five parameters fully determine how the contention solver
 * treats the thread during a quantum.
 */
struct ResourceDemand
{
    /** Base cycles per instruction on private resources (core+L1+L2). */
    double cpi0 = 1.0;

    /** L2 misses per kilo-instruction: traffic into the shared domain. */
    double l2Mpki = 0.0;

    /** Bytes the phase wants resident in the shared L3. */
    Bytes l3WorkingSet = 0;

    /**
     * Fraction of L2 misses that miss the L3 even with a full-capacity
     * share (streaming / compulsory misses).
     */
    double l3MissBase = 0.0;

    /** Memory-level parallelism: overlapping misses divide the stall. */
    double mlp = 1.0;

    /** Sanity-check ranges; fatal() on nonsense. */
    void validate() const;
};

/**
 * Snapshot pair captured around the Litmus-probe window (the first N
 * startup instructions). Raw counters only; interpretation lives in
 * the pricing library.
 */
struct ProbeCapture
{
    bool started = false;
    bool complete = false;
    TaskCounters taskAtStart;
    TaskCounters taskAtEnd;
    MachineCounters machineAtStart;
    MachineCounters machineAtEnd;
};

/**
 * Abstract schedulable task.
 *
 * The engine drives a task by querying demand(), asking how many
 * instructions remain in the current phase, and retiring instructions.
 * Ownership: the Engine owns tasks via unique_ptr; observers hold
 * non-owning pointers that stay valid until completion callbacks run.
 */
class Task
{
  public:
    /** Marker for "no probe" windows. */
    static constexpr Instructions noProbe = 0;

    /**
     * @param name display name, e.g. "pager-py" or "ctgen-7"
     * @param probe_window instructions after which the probe snapshot
     *        closes (0 disables probing; traffic generators use 0)
     */
    Task(std::string name, Instructions probe_window = noProbe);

    virtual ~Task() = default;

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    /** Demand of the current phase. Undefined once finished(). */
    virtual const ResourceDemand &demand() const = 0;

    /** Instructions left in the current phase (infinity for endless). */
    virtual Instructions remainingInPhase() const = 0;

    /** Retire n instructions; may advance to the next phase. */
    virtual void retire(Instructions n) = 0;

    /** True when the task has no more work. */
    virtual bool finished() const = 0;

    /** @name Identity and placement @{ */
    const std::string &name() const { return name_; }

    std::uint64_t id() const { return id_; }
    void setId(std::uint64_t id) { id_ = id; }

    /**
     * CPUs this task may run on (hardware-thread indices). Empty means
     * "any CPU".
     */
    const std::vector<unsigned> &affinity() const { return affinity_; }
    void setAffinity(std::vector<unsigned> cpus) { affinity_ = std::move(cpus); }
    /** @} */

    /** @name Accounting (filled by the engine) @{ */
    TaskCounters &counters() { return counters_; }
    const TaskCounters &counters() const { return counters_; }

    Seconds launchTime() const { return launchTime_; }
    Seconds completionTime() const { return completionTime_; }
    void setLaunchTime(Seconds t) { launchTime_ = t; }
    void setCompletionTime(Seconds t) { completionTime_ = t; }
    /** @} */

    /** @name Litmus probe window @{ */
    Instructions probeWindow() const { return probeWindow_; }
    ProbeCapture &probe() { return probe_; }
    const ProbeCapture &probe() const { return probe_; }
    /** @} */

  private:
    std::string name_;
    std::uint64_t id_ = 0;
    std::vector<unsigned> affinity_;
    TaskCounters counters_;
    Instructions probeWindow_;
    ProbeCapture probe_;
    Seconds launchTime_ = 0;
    Seconds completionTime_ = 0;
};

/** Infinity marker for endless phases (traffic generators). */
constexpr Instructions endlessPhase =
    std::numeric_limits<Instructions>::infinity();

} // namespace litmus::sim

#endif // LITMUS_SIM_TASK_H
