/**
 * @file
 * Billing ledger: turns price quotes into pay-as-you-go dollar
 * charges (execution time x allocated memory x unit rate) and keeps
 * per-tenant records — the user-facing surface of the library.
 */

#ifndef LITMUS_CORE_BILLING_H
#define LITMUS_CORE_BILLING_H

#include <string>
#include <vector>

#include "core/pricing_model.h"

namespace litmus::pricing
{

/** One billed invocation. */
struct BillRecord
{
    std::string function;
    std::string tenant;

    /** Billed on-CPU duration (seconds, from cycles at billing freq). */
    Seconds cpuSeconds = 0;

    /** Allocated memory in GiB. */
    double memoryGiB = 0;

    /** The three-way quote behind the charge. */
    PriceQuote quote;

    /** Final charges in USD. */
    double commercialUsd = 0;
    double litmusUsd = 0;

    /** Discount granted, as a fraction of the commercial charge. */
    double discount() const
    {
        return commercialUsd > 0
                   ? 1.0 - litmusUsd / commercialUsd
                   : 0.0;
    }
};

/** Ledger configuration. */
struct BillingConfig
{
    /** Unit rate in USD per GiB-second (AWS Lambda x86 list price). */
    double usdPerGiBSecond = 0.0000166667;

    /** Frequency used to convert cycles into billed seconds. */
    Hertz billingFrequency = 2.8e9;
};

/**
 * Accumulates bill records and provides tenant/aggregate summaries.
 */
class BillingLedger
{
  public:
    explicit BillingLedger(BillingConfig cfg = BillingConfig{});

    /**
     * Record one invocation.
     *
     * @param tenant    billing account
     * @param function  function name
     * @param counters  execution counters
     * @param quote     three-way price quote for the invocation
     * @param memory    allocated memory in bytes
     */
    const BillRecord &record(const std::string &tenant,
                             const std::string &function,
                             const sim::TaskCounters &counters,
                             const PriceQuote &quote, Bytes memory);

    const std::vector<BillRecord> &records() const { return records_; }

    /** Total commercial / Litmus charges across all records (USD). */
    double totalCommercialUsd() const;
    double totalLitmusUsd() const;

    /** Aggregate discount fraction across the ledger. */
    double aggregateDiscount() const;

    /** Records belonging to one tenant. */
    std::vector<const BillRecord *>
    tenantRecords(const std::string &tenant) const;

    const BillingConfig &config() const { return cfg_; }

  private:
    BillingConfig cfg_;
    std::vector<BillRecord> records_;
};

} // namespace litmus::pricing

#endif // LITMUS_CORE_BILLING_H
