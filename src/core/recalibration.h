/**
 * @file
 * Recalibration advisor — operationalizing Section 7.2's observation
 * that tables must match the environment they price.
 *
 * The paper shows Method 1 (stale dedicated-core tables) undershoots
 * by ~3 percentage points while Method 2 (tables rebuilt for the
 * sharing level) is near-ideal, and that reusing 10-per-core tables
 * at 15-per-core stays acceptable only because switching overhead
 * saturates. A production deployment therefore needs to notice when
 * live probe readings drift outside what its tables can explain. The
 * RecalibrationAdvisor watches the stream of Litmus-test readings and
 * raises advice when:
 *
 *  - readings systematically exceed the calibrated slowdown range
 *    (congestion beyond the swept levels), or
 *  - the observed L3-miss signature no longer falls between the
 *    CT-Gen and MB-Gen envelopes (a workload mix the generators do
 *    not bracket), or
 *  - too many estimates clamp at the no-discount floor while probes
 *    report real slowdown (tables built for a quieter machine).
 */

#ifndef LITMUS_CORE_RECALIBRATION_H
#define LITMUS_CORE_RECALIBRATION_H

#include <deque>

#include "core/discount_model.h"

namespace litmus::pricing
{

/** Advisor verdict over the recent probe window. */
enum class RecalibrationAdvice
{
    /** Tables explain the observed readings. */
    TablesHealthy,

    /** Not enough readings accumulated yet. */
    InsufficientData,

    /** Congestion consistently beyond the calibrated range. */
    SweepHigherLevels,

    /** L3 signature outside the generator envelopes. */
    GeneratorsDontBracket,
};

/** Advisor configuration. */
struct RecalibrationConfig
{
    /** Sliding window of recent readings to judge. */
    std::size_t windowSize = 64;

    /** Minimum readings before judging. */
    std::size_t minReadings = 16;

    /**
     * Fraction of readings allowed beyond the calibrated slowdown
     * range before advising a re-sweep.
     */
    double outOfRangeTolerance = 0.25;

    /**
     * Multiplicative margin on the generator L3 envelopes before an
     * observation counts as un-bracketed.
     */
    double envelopeMargin = 2.0;
};

/**
 * Watches probe readings against a calibrated model.
 *
 * Borrowes the model; feed it every Litmus-test reading and poll
 * advice() periodically (e.g. each billing epoch).
 */
class RecalibrationAdvisor
{
  public:
    RecalibrationAdvisor(const DiscountModel &model,
                         RecalibrationConfig cfg = RecalibrationConfig{});

    /** Record one runtime probe reading. */
    void observe(const ProbeReading &reading, workload::Language lang);

    /** Verdict over the current window. */
    RecalibrationAdvice advice() const;

    /** Fraction of windowed readings beyond the calibrated range. */
    double outOfRangeFraction() const;

    /** Fraction of windowed readings outside the L3 envelopes. */
    double unbracketedFraction() const;

    /** Number of readings currently in the window. */
    std::size_t readingCount() const { return window_.size(); }

    /** Human-readable advice string. */
    static std::string adviceName(RecalibrationAdvice advice);

  private:
    struct Observation
    {
        bool beyondRange = false;
        bool unbracketed = false;
    };

    const DiscountModel &model_;
    RecalibrationConfig cfg_;
    std::deque<Observation> window_;
};

} // namespace litmus::pricing

#endif // LITMUS_CORE_RECALIBRATION_H
