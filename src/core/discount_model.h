/**
 * @file
 * The discount model (Section 6, Step 3; Figures 9 and 10).
 *
 * Built from the congestion and performance tables, the model holds,
 * per language and per traffic generator:
 *
 *  - linear fits mapping startup component slowdowns to reference
 *    component slowdowns (Figure 9), and
 *  - logarithmic fits relating the machine L3 miss rate to the startup
 *    total slowdown (Figure 10a).
 *
 * At runtime a Litmus test yields the startup slowdown plus the
 * observed L3 miss rate; the model inverts the log fits to find where
 * between the CT-Gen and MB-Gen extremes the machine sits, blends the
 * two linear predictions logarithmically, and emits per-component
 * charging rates R = 1 / predicted_slowdown.
 */

#ifndef LITMUS_CORE_DISCOUNT_MODEL_H
#define LITMUS_CORE_DISCOUNT_MODEL_H

#include <map>

#include "common/regression.h"
#include "core/calibration.h"

namespace litmus::pricing
{

/** Time components the model prices separately. */
enum class Component
{
    Private,
    Shared,
    Total,
};

/** Result of one discount estimation. */
struct DiscountEstimate
{
    /** Charging rates in (0, 1]; price = R * T per component. */
    double rPrivate = 1.0;
    double rShared = 1.0;

    /** Predicted reference slowdowns behind the rates. */
    double predictedPriv = 1.0;
    double predictedShared = 1.0;
    double predictedTotal = 1.0;

    /** 0 = CT-Gen-like congestion, 1 = MB-Gen-like. */
    double blendWeight = 0.0;

    /** The observed startup slowdowns the estimate started from. */
    ProbeSlowdown observed;
};

/** The calibrated Litmus discount model. */
class DiscountModel
{
  public:
    using Language = workload::Language;
    using GeneratorKind = workload::GeneratorKind;

    /**
     * Fit the model from a calibration profile — the normal path.
     * The profile's machine type is retained and enforced wherever
     * the model prices a concrete machine (requireMachine).
     */
    explicit DiscountModel(const CalibrationProfile &profile);

    /**
     * Fit from loose tables (synthetic-table tests and ablations).
     * The machine type is left empty, which matches any machine.
     * Requires both generators populated in both tables for every
     * language.
     */
    DiscountModel(const CongestionTable &congestion,
                  const PerformanceTable &performance);

    /** Machine type the backing profile was calibrated on ("" =
     *  loose tables, matches anything). */
    const std::string &machine() const { return machine_; }

    /** fatal() when this model's profile was calibrated on a
     *  different machine type than @p machine_name. */
    void requireMachine(const std::string &machine_name) const;

    /**
     * Estimate discounts from one Litmus test.
     *
     * @param reading        the runtime probe reading
     * @param lang           language of the probed startup
     * @param sharing_factor Method 1 calibration: expected T_private
     *        inflation from temporal sharing (1 = dedicated cores).
     *        The observed private slowdown is deflated by this factor
     *        before the congestion lookup, and the factor is refunded
     *        in the private charging rate.
     */
    DiscountEstimate estimate(const ProbeReading &reading, Language lang,
                              double sharing_factor = 1.0) const;

    /** Startup baseline the runtime probes compare against. */
    const ProbeReading &baseline(Language lang) const;

    /** Figure 9 fits: startup slowdown -> reference slowdown. */
    const LinearFit &perfFit(Language lang, GeneratorKind gen,
                             Component comp) const;

    /** Figure 10a fits: machine L3 miss rate -> startup slowdown. */
    const LogFit &l3Fit(Language lang, GeneratorKind gen) const;

    /**
     * Largest startup total slowdown the calibration sweep covered
     * for the language (max across both generators) — observations
     * beyond this are extrapolated, which the recalibration advisor
     * watches for.
     */
    double maxCalibratedTotal(Language lang) const;

  private:
    struct PerLangGen
    {
        LinearFit priv;
        LinearFit shared;
        LinearFit total;
        LogFit l3;
        double minTotal = 1.0;
        double maxTotal = 1.0;
    };

    using Key = std::pair<Language, GeneratorKind>;

    const PerLangGen &fits(Language lang, GeneratorKind gen) const;

    std::map<Key, PerLangGen> fits_;
    std::map<Language, ProbeReading> baselines_;
    std::string machine_;
};

} // namespace litmus::pricing

#endif // LITMUS_CORE_DISCOUNT_MODEL_H
