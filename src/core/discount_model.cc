#include "core/discount_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace litmus::pricing
{

DiscountModel::DiscountModel(const CalibrationProfile &profile)
    : DiscountModel(profile.congestion, profile.performance)
{
    machine_ = profile.machine;
}

void
DiscountModel::requireMachine(const std::string &machine_name) const
{
    requireMachineMatch(machine_, machine_name, "DiscountModel");
}

DiscountModel::DiscountModel(const CongestionTable &congestion,
                             const PerformanceTable &performance)
{
    for (Language lang : workload::allLanguages()) {
        baselines_[lang] = congestion.baseline(lang);
        for (GeneratorKind gen :
             {GeneratorKind::CtGen, GeneratorKind::MbGen}) {
            if (!congestion.populated(lang, gen))
                fatal("DiscountModel: congestion table missing ",
                      workload::languageName(lang), " / ",
                      workload::generatorName(gen));
            if (!performance.populated(gen))
                fatal("DiscountModel: performance table missing ",
                      workload::generatorName(gen));

            PerLangGen f;
            // x: startup slowdowns at each level (congestion table);
            // y: reference slowdowns at the same level (perf table).
            f.priv = LinearFit::fit(congestion.privSeries(lang, gen),
                                    performance.privSeries(gen));
            f.shared =
                LinearFit::fit(congestion.sharedSeries(lang, gen),
                               performance.sharedSeries(gen));
            f.total = LinearFit::fit(congestion.totalSeries(lang, gen),
                                     performance.totalSeries(gen));
            f.l3 = LogFit::fit(congestion.l3Series(lang, gen),
                               congestion.totalSeries(lang, gen));

            const auto &totals = congestion.totalSeries(lang, gen);
            f.minTotal = *std::min_element(totals.begin(), totals.end());
            f.maxTotal = *std::max_element(totals.begin(), totals.end());

            fits_.emplace(Key{lang, gen}, std::move(f));
        }
    }
}

const DiscountModel::PerLangGen &
DiscountModel::fits(Language lang, GeneratorKind gen) const
{
    const auto it = fits_.find({lang, gen});
    if (it == fits_.end())
        panic("DiscountModel: missing fits");
    return it->second;
}

const ProbeReading &
DiscountModel::baseline(Language lang) const
{
    const auto it = baselines_.find(lang);
    if (it == baselines_.end())
        fatal("DiscountModel: no baseline for ",
              workload::languageName(lang));
    return it->second;
}

const LinearFit &
DiscountModel::perfFit(Language lang, GeneratorKind gen,
                       Component comp) const
{
    const PerLangGen &f = fits(lang, gen);
    switch (comp) {
      case Component::Private:
        return f.priv;
      case Component::Shared:
        return f.shared;
      case Component::Total:
        return f.total;
    }
    panic("DiscountModel::perfFit: bad component");
}

const LogFit &
DiscountModel::l3Fit(Language lang, GeneratorKind gen) const
{
    return fits(lang, gen).l3;
}

double
DiscountModel::maxCalibratedTotal(Language lang) const
{
    return std::max(fits(lang, GeneratorKind::CtGen).maxTotal,
                    fits(lang, GeneratorKind::MbGen).maxTotal);
}

DiscountEstimate
DiscountModel::estimate(const ProbeReading &reading, Language lang,
                        double sharing_factor) const
{
    if (sharing_factor <= 0)
        fatal("DiscountModel::estimate: sharing factor must be positive");

    DiscountEstimate est;
    est.observed = slowdownOf(reading, baseline(lang));

    // Method 1 calibration: remove the expected temporal-sharing
    // inflation from the observation before consulting tables built in
    // a dedicated environment (Section 7.2, Method 1).
    ProbeSlowdown s = est.observed;
    s.priv /= sharing_factor;
    s.total = s.total / sharing_factor; // dominated by T_private

    const PerLangGen &ct = fits(lang, GeneratorKind::CtGen);
    const PerLangGen &mb = fits(lang, GeneratorKind::MbGen);

    // Locate the machine between the two generator extremes using the
    // observed machine L3 miss rate (Figure 10). The log fits give the
    // L3 rate each generator would produce at this startup slowdown.
    const double stCt = std::clamp(s.total, ct.minTotal, ct.maxTotal);
    const double stMb = std::clamp(s.total, mb.minTotal, mb.maxTotal);
    const double l3Ct = std::max(1e-3, ct.l3.invert(stCt));
    const double l3Mb = std::max(1e-3, mb.l3.invert(stMb));
    const double observedL3 = std::max(1e-3, reading.machineL3MissPerUs);
    est.blendWeight = logBlendWeight(observedL3, l3Ct, l3Mb);

    // Blend the per-generator predictions of reference slowdown.
    auto blend = [&](const LinearFit &fct, const LinearFit &fmb,
                     double x) {
        const double yc = fct.predict(x);
        const double ym = fmb.predict(x);
        return std::max(1.0, lerp(yc, ym, est.blendWeight));
    };

    est.predictedPriv = blend(ct.priv, mb.priv, s.priv);
    est.predictedShared = blend(ct.shared, mb.shared, s.shared);
    est.predictedTotal = blend(ct.total, mb.total, s.total);

    // Refund the sharing inflation on private time (Method 1 treats
    // temporal sharing as an additional discount factor).
    est.rPrivate = 1.0 / (est.predictedPriv * sharing_factor);
    est.rShared = 1.0 / est.predictedShared;
    return est;
}

} // namespace litmus::pricing
