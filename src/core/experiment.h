/**
 * @file
 * Experiment harness: the common motion behind Figures 2-4 and 11-21.
 *
 * Every evaluation runs the same loop: maintain a churning population
 * of co-running functions, launch each test function repeatedly into
 * that population, price each invocation three ways (commercial /
 * Litmus / ideal), and aggregate per-function rows plus suite gmeans.
 * The bench binaries configure this harness and print its rows.
 */

#ifndef LITMUS_CORE_EXPERIMENT_H
#define LITMUS_CORE_EXPERIMENT_H

#include <optional>
#include <string>

#include "core/billing.h"
#include "core/pricing_model.h"
#include "workload/invoker.h"

namespace litmus::pricing
{

/** Configuration of one pricing experiment. */
struct ExperimentConfig
{
    sim::MachineConfig machine = sim::MachineCatalog::get("cascade-5218");
    sim::FrequencyPolicy policy = sim::FrequencyPolicy::Fixed;

    /** Co-runner population maintained by the invoker. */
    unsigned coRunners = 26;
    workload::InvokerConfig::Placement placement =
        workload::InvokerConfig::Placement::OnePerCore;

    /** CPUs the co-runners use. */
    std::vector<unsigned> coRunnerCpus;

    /** CPUs the test function may use (its own core, or the pool). */
    std::vector<unsigned> subjectCpus;

    /** Sampling pool for co-runners (defaults to the whole suite). */
    std::vector<const workload::FunctionSpec *> coRunnerPool;

    /** Functions to measure (defaults to the paper's test set). */
    std::vector<const workload::FunctionSpec *> subjects;

    /** Invocations per test function (the paper runs 30). */
    unsigned repetitions = 6;

    /** Method 1 sharing factor (1 = off / Method 2). */
    double sharingFactor = 1.0;

    /** Probe window override in instructions (0 = language default). */
    Instructions probeWindowOverride = 0;

    /** Simulated warmup before the first measurement. */
    Seconds warmup = 0.15;

    std::uint64_t seed = 42;

    /**
     * Convenience: fill coRunnerCpus/subjectCpus for the two standard
     * layouts. OnePerCore: subject on CPU 0, co-runners on 1..N.
     * Pooled: both share CPUs [0, pool_cpus).
     */
    void layoutOnePerCore();
    void layoutPooled(unsigned pool_cpus);

    void validate() const;
};

/** Per-test-function aggregate (one row of Figures 11-13). */
struct FunctionRow
{
    std::string name;

    /** Mean normalized prices (commercial = 1). */
    double litmusPrice = 1.0;
    double idealPrice = 1.0;

    /** Figure 12 weighted error rates. */
    double privError = 0.0;
    double sharedError = 0.0;
    double totalError = 0.0;

    /** Figure 13: measured component slowdowns (per instruction). */
    double tPrivSlowdown = 1.0;
    double tSharedSlowdown = 1.0;

    /** Mean Litmus-predicted component slowdowns (discount lines). */
    double predictedPriv = 1.0;
    double predictedShared = 1.0;

    /** Mean total execution slowdown (Figure 2). */
    double totalSlowdown = 1.0;

    /** Fraction of solo execution spent on shared resources (Fig 4). */
    double sharedShareSolo = 0.0;

    unsigned invocations = 0;
};

/** Whole-experiment result. */
struct ExperimentResult
{
    std::vector<FunctionRow> rows;

    /** Gmean normalized prices across rows. */
    double gmeanLitmusPrice = 1.0;
    double gmeanIdealPrice = 1.0;

    /** Discounts (1 - price). */
    double litmusDiscount() const { return 1.0 - gmeanLitmusPrice; }
    double idealDiscount() const { return 1.0 - gmeanIdealPrice; }

    /** Gmean of per-row |total error| (Figure 12 "abs geomean"). */
    double absGmeanError = 0.0;

    /** Gmean component slowdowns across rows (Figure 3 summary). */
    double gmeanPrivSlowdown = 1.0;
    double gmeanSharedSlowdown = 1.0;
    double gmeanTotalSlowdown = 1.0;

    const FunctionRow &row(const std::string &name) const;
};

/**
 * Run a pricing experiment against a calibrated model.
 *
 * Solo baselines for the subjects are measured internally (always at
 * the fixed-frequency policy, as the paper's normalization does).
 */
ExperimentResult runPricingExperiment(const ExperimentConfig &cfg,
                                      const DiscountModel &model);

/**
 * Slowdown-only variant for Figures 2-4 (no pricing model needed):
 * same population motion, reports the measured slowdown columns only.
 */
ExperimentResult runSlowdownExperiment(const ExperimentConfig &cfg);

/** Read an unsigned override from the environment (bench knobs). */
unsigned envOr(const char *name, unsigned fallback);

} // namespace litmus::pricing

#endif // LITMUS_CORE_EXPERIMENT_H
