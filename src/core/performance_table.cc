#include "core/performance_table.h"

#include "common/logging.h"

namespace litmus::pricing
{

void
PerformanceTable::add(GeneratorKind gen, unsigned level,
                      const PerformanceEntry &entry)
{
    Series &s = series_[gen];
    if (!s.levels.empty() && level <= s.levels.back())
        fatal("PerformanceTable::add: levels must increase (", level,
              " after ", s.levels.back(), ")");
    s.levels.push_back(level);
    s.priv.push_back(entry.privSlowdown);
    s.shared.push_back(entry.sharedSlowdown);
    s.total.push_back(entry.totalSlowdown);
}

const PerformanceTable::Series &
PerformanceTable::seriesFor(GeneratorKind gen) const
{
    const auto it = series_.find(gen);
    if (it == series_.end())
        fatal("PerformanceTable: no series for ",
              workload::generatorName(gen));
    return it->second;
}

const std::vector<double> &
PerformanceTable::levels(GeneratorKind gen) const
{
    return seriesFor(gen).levels;
}

const std::vector<double> &
PerformanceTable::privSeries(GeneratorKind gen) const
{
    return seriesFor(gen).priv;
}

const std::vector<double> &
PerformanceTable::sharedSeries(GeneratorKind gen) const
{
    return seriesFor(gen).shared;
}

const std::vector<double> &
PerformanceTable::totalSeries(GeneratorKind gen) const
{
    return seriesFor(gen).total;
}

bool
PerformanceTable::populated(GeneratorKind gen) const
{
    const auto it = series_.find(gen);
    return it != series_.end() && it->second.levels.size() >= 2;
}

} // namespace litmus::pricing
