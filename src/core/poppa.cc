#include "core/poppa.h"

#include "common/logging.h"

namespace litmus::pricing
{

PoppaSampler::PoppaSampler(sim::Engine &engine, PoppaConfig cfg)
    : engine_(engine), cfg_(cfg), nextSample_(engine.now() + cfg.samplePeriod)
{
    if (cfg_.samplePeriod <= 0 || cfg_.sampleWindow <= 0 ||
        cfg_.sampleWindow >= cfg_.samplePeriod) {
        fatal("PoppaSampler: need 0 < window < period");
    }
    engine_.onQuantum(
        [this](Seconds now, const sim::SharedState &) { onQuantum(now); });
}

void
PoppaSampler::onQuantum(Seconds now)
{
    if (windowOpen_) {
        if (now < windowEnd_)
            return;
        // Close the window: read the victim's delta and unfreeze.
        auto tasks = engine_.liveTasks();
        sim::Task *victim = nullptr;
        for (sim::Task *task : tasks) {
            if (task->id() == victimId_)
                victim = task;
            engine_.scheduler().setFrozen(task, false);
        }
        if (victim) {
            const sim::TaskCounters delta =
                victim->counters().since(victimAtOpen_);
            if (delta.instructions > 1000) {
                Estimate &est = estimates_[victimId_];
                est.cpiSum += delta.cycles / delta.instructions;
                est.samples += 1;
            }
        }
        // Overhead: every frozen task lost the window.
        stallOverhead_ += cfg_.sampleWindow *
                          static_cast<double>(
                              tasks.empty() ? 0 : tasks.size() - 1);
        windowOpen_ = false;
        nextSample_ = now + cfg_.samplePeriod;
        return;
    }

    if (now < nextSample_)
        return;

    // Open a window on the next victim.
    auto tasks = engine_.liveTasks();
    if (tasks.size() < 2) {
        nextSample_ = now + cfg_.samplePeriod;
        return;
    }
    rrCursor_ = (rrCursor_ + 1) % tasks.size();
    sim::Task *victim = tasks[rrCursor_];
    for (sim::Task *task : tasks) {
        if (task != victim)
            engine_.scheduler().setFrozen(task, true);
    }
    victimId_ = victim->id();
    victimAtOpen_ = victim->counters();
    windowOpen_ = true;
    windowEnd_ = now + cfg_.sampleWindow;
    ++windows_;
}

double
PoppaSampler::estimatedSoloCpi(std::uint64_t task_id) const
{
    const auto it = estimates_.find(task_id);
    if (it == estimates_.end() || it->second.samples == 0)
        return 0.0;
    return it->second.cpiSum / it->second.samples;
}

unsigned
PoppaSampler::sampleCount(std::uint64_t task_id) const
{
    const auto it = estimates_.find(task_id);
    return it == estimates_.end() ? 0 : it->second.samples;
}

double
PoppaSampler::price(const sim::TaskCounters &counters,
                    std::uint64_t task_id) const
{
    const double soloCpi = estimatedSoloCpi(task_id);
    if (soloCpi <= 0.0)
        return counters.cycles; // never sampled: commercial price
    return std::min<double>(counters.cycles,
                            soloCpi * counters.instructions);
}

} // namespace litmus::pricing
