#include "core/recalibration.h"

#include <algorithm>

#include "common/logging.h"

namespace litmus::pricing
{

using workload::GeneratorKind;
using workload::Language;

RecalibrationAdvisor::RecalibrationAdvisor(const DiscountModel &model,
                                           RecalibrationConfig cfg)
    : model_(model), cfg_(cfg)
{
    if (cfg_.windowSize == 0 || cfg_.minReadings == 0 ||
        cfg_.minReadings > cfg_.windowSize) {
        fatal("RecalibrationAdvisor: need 0 < minReadings <= "
              "windowSize");
    }
    if (cfg_.outOfRangeTolerance <= 0 || cfg_.outOfRangeTolerance >= 1)
        fatal("RecalibrationAdvisor: tolerance must be in (0,1)");
    if (cfg_.envelopeMargin < 1)
        fatal("RecalibrationAdvisor: envelopeMargin must be >= 1");
}

void
RecalibrationAdvisor::observe(const ProbeReading &reading, Language lang)
{
    const ProbeSlowdown s = slowdownOf(reading, model_.baseline(lang));

    Observation obs;

    // Beyond the calibrated slowdown range? Anything past the sweep's
    // maximum is linear extrapolation the tables never validated.
    obs.beyondRange = s.total > model_.maxCalibratedTotal(lang) * 1.05;

    // Outside the generator L3 envelopes (with margin)?
    const double l3Ct =
        std::max(1e-3, model_.l3Fit(lang, GeneratorKind::CtGen)
                           .invert(std::max(1.001, s.total)));
    const double l3Mb =
        std::max(1e-3, model_.l3Fit(lang, GeneratorKind::MbGen)
                           .invert(std::max(1.001, s.total)));
    const double lo = std::min(l3Ct, l3Mb) / cfg_.envelopeMargin;
    const double hi = std::max(l3Ct, l3Mb) * cfg_.envelopeMargin;
    const double observed = std::max(1e-3, reading.machineL3MissPerUs);
    obs.unbracketed = observed < lo || observed > hi;

    window_.push_back(obs);
    while (window_.size() > cfg_.windowSize)
        window_.pop_front();
}

double
RecalibrationAdvisor::outOfRangeFraction() const
{
    if (window_.empty())
        return 0.0;
    std::size_t count = 0;
    for (const Observation &obs : window_)
        count += obs.beyondRange;
    return static_cast<double>(count) /
           static_cast<double>(window_.size());
}

double
RecalibrationAdvisor::unbracketedFraction() const
{
    if (window_.empty())
        return 0.0;
    std::size_t count = 0;
    for (const Observation &obs : window_)
        count += obs.unbracketed;
    return static_cast<double>(count) /
           static_cast<double>(window_.size());
}

RecalibrationAdvice
RecalibrationAdvisor::advice() const
{
    if (window_.size() < cfg_.minReadings)
        return RecalibrationAdvice::InsufficientData;
    if (outOfRangeFraction() > cfg_.outOfRangeTolerance)
        return RecalibrationAdvice::SweepHigherLevels;
    if (unbracketedFraction() > cfg_.outOfRangeTolerance)
        return RecalibrationAdvice::GeneratorsDontBracket;
    return RecalibrationAdvice::TablesHealthy;
}

std::string
RecalibrationAdvisor::adviceName(RecalibrationAdvice advice)
{
    switch (advice) {
      case RecalibrationAdvice::TablesHealthy:
        return "tables-healthy";
      case RecalibrationAdvice::InsufficientData:
        return "insufficient-data";
      case RecalibrationAdvice::SweepHigherLevels:
        return "sweep-higher-levels";
      case RecalibrationAdvice::GeneratorsDontBracket:
        return "generators-dont-bracket";
    }
    panic("adviceName: bad advice");
}

} // namespace litmus::pricing
