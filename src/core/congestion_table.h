/**
 * @file
 * The congestion table (Figure 5, left).
 *
 * For each language startup and each traffic generator, the table maps
 * stress levels to the startup's component slowdowns and the machine
 * L3 miss rate observed during the probe window. It also stores the
 * congestion-free baseline reading of each startup — the denominator
 * runtime probes are compared against.
 */

#ifndef LITMUS_CORE_CONGESTION_TABLE_H
#define LITMUS_CORE_CONGESTION_TABLE_H

#include <map>

#include "common/table.h"
#include "core/litmus_probe.h"
#include "workload/traffic_gen.h"

namespace litmus::pricing
{

/** One congestion-table cell: startup behaviour at a stress level. */
struct CongestionEntry
{
    double privSlowdown = 1.0;
    double sharedSlowdown = 1.0;
    double totalSlowdown = 1.0;
    double l3MissPerUs = 0.0;
};

/**
 * Provider-built congestion table.
 *
 * Keyed by (language, generator); rows are stress levels. Series are
 * exposed both as interpolating tables and as raw vectors for the
 * regression fits.
 */
class CongestionTable
{
  public:
    using Language = workload::Language;
    using GeneratorKind = workload::GeneratorKind;

    /** Store the congestion-free baseline reading for a language. */
    void setBaseline(Language lang, const ProbeReading &reading);

    /** Baseline for a language; fatal() if missing. */
    const ProbeReading &baseline(Language lang) const;

    /** Add one measured cell; levels must arrive increasing. */
    void add(Language lang, GeneratorKind gen, unsigned level,
             const CongestionEntry &entry);

    /** Entry at a (possibly fractional) level, interpolated. */
    CongestionEntry at(Language lang, GeneratorKind gen,
                       double level) const;

    /** Stress levels recorded for (lang, gen). */
    const std::vector<double> &levels(Language lang,
                                      GeneratorKind gen) const;

    /** Raw slowdown series aligned with levels(). */
    const std::vector<double> &privSeries(Language lang,
                                          GeneratorKind gen) const;
    const std::vector<double> &sharedSeries(Language lang,
                                            GeneratorKind gen) const;
    const std::vector<double> &totalSeries(Language lang,
                                           GeneratorKind gen) const;
    const std::vector<double> &l3Series(Language lang,
                                        GeneratorKind gen) const;

    /** True when (lang, gen) has at least two rows. */
    bool populated(Language lang, GeneratorKind gen) const;

  private:
    struct Series
    {
        std::vector<double> levels;
        std::vector<double> priv;
        std::vector<double> shared;
        std::vector<double> total;
        std::vector<double> l3;
    };

    using Key = std::pair<Language, GeneratorKind>;

    const Series &seriesFor(Language lang, GeneratorKind gen) const;

    std::map<Key, Series> series_;
    std::map<Language, ProbeReading> baselines_;
};

} // namespace litmus::pricing

#endif // LITMUS_CORE_CONGESTION_TABLE_H
