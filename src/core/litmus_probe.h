/**
 * @file
 * The Litmus test: interpreting a probe capture.
 *
 * Every function invocation carries a probe window over its language
 * startup (Section 6, Step 1). The raw capture — task counters and
 * machine uncore counters at the window edges — is turned into a
 * ProbeReading: per-instruction private/shared time and the machine
 * L3 miss rate, the three observables the pricing model consumes.
 */

#ifndef LITMUS_CORE_LITMUS_PROBE_H
#define LITMUS_CORE_LITMUS_PROBE_H

#include "sim/task.h"
#include "workload/runtime_startup.h"

namespace litmus::pricing
{

/** Observables extracted from one Litmus test. */
struct ProbeReading
{
    /** Private-resource cycles per instruction over the window. */
    double privCpi = 0.0;

    /** Shared-domain stall cycles per instruction over the window. */
    double sharedCpi = 0.0;

    /** Instructions the window covered. */
    Instructions instructions = 0;

    /** Machine-wide L3 misses per microsecond during the window. */
    double machineL3MissPerUs = 0.0;

    /** Total cycles per instruction. */
    double totalCpi() const { return privCpi + sharedCpi; }

    /** True when the reading carries data. */
    bool valid() const { return instructions > 0; }
};

/**
 * Slowdown of a probe reading relative to the congestion-free
 * baseline reading of the same language startup.
 */
struct ProbeSlowdown
{
    double priv = 1.0;
    double shared = 1.0;
    double total = 1.0;
};

/**
 * Extract a reading from a completed capture.
 * fatal() if the capture never completed (function shorter than the
 * probe window would be a workload-model bug).
 */
ProbeReading readProbe(const sim::ProbeCapture &capture);

/** Convenience: read the probe off a task. */
ProbeReading readProbe(const sim::Task &task);

/** Component-wise slowdown of @p reading against @p baseline. */
ProbeSlowdown slowdownOf(const ProbeReading &reading,
                         const ProbeReading &baseline);

} // namespace litmus::pricing

#endif // LITMUS_CORE_LITMUS_PROBE_H
