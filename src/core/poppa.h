/**
 * @file
 * POPPA-style sampling baseline (Breslow et al., SC'13).
 *
 * The prior approach Litmus argues against: to learn a task's solo
 * performance, periodically *stall every co-running task* and let one
 * victim run alone for a short window; the victim's CPI during the
 * window estimates its uncontended CPI. Accurate pricing needs
 * frequent samples, and every sample stalls the whole machine — the
 * overhead Litmus eliminates. This implementation exists to quantify
 * that trade-off (ablation bench).
 */

#ifndef LITMUS_CORE_POPPA_H
#define LITMUS_CORE_POPPA_H

#include <cstdint>
#include <map>
#include <vector>

#include "sim/engine.h"

namespace litmus::pricing
{

/** Sampler configuration. */
struct PoppaConfig
{
    /** Time between samples (machine-wide). */
    Seconds samplePeriod = 20e-3;

    /** Length of each solo window. */
    Seconds sampleWindow = 2e-3;
};

/**
 * Shim-based sampler attached to a simulation engine.
 *
 * Victims rotate round-robin over live tasks. While a window is open,
 * every other task is frozen; the victim's counters over the window
 * give one solo-CPI sample. Estimated solo CPI of a task is the mean
 * of its samples.
 */
class PoppaSampler
{
  public:
    PoppaSampler(sim::Engine &engine, PoppaConfig cfg);

    /** Solo-CPI estimate for a task; 0 when never sampled. */
    double estimatedSoloCpi(std::uint64_t task_id) const;

    /** Samples collected for a task. */
    unsigned sampleCount(std::uint64_t task_id) const;

    /** Total task-seconds of co-runner stall the sampling caused. */
    Seconds stallOverhead() const { return stallOverhead_; }

    /** Total solo windows opened. */
    std::uint64_t windowsOpened() const { return windows_; }

    /**
     * POPPA's discounted price for an execution: estimated solo CPI
     * times retired instructions (cycles), or the commercial price
     * when the task was never sampled.
     */
    double price(const sim::TaskCounters &counters,
                 std::uint64_t task_id) const;

  private:
    /** Per-quantum hook: open/close windows, accrue samples. */
    void onQuantum(Seconds now);

    struct Estimate
    {
        double cpiSum = 0.0;
        unsigned samples = 0;
    };

    sim::Engine &engine_;
    PoppaConfig cfg_;
    Seconds nextSample_;
    bool windowOpen_ = false;
    Seconds windowEnd_ = 0;
    std::uint64_t victimId_ = 0;
    sim::TaskCounters victimAtOpen_;
    std::size_t rrCursor_ = 0;
    std::map<std::uint64_t, Estimate> estimates_;
    Seconds stallOverhead_ = 0;
    std::uint64_t windows_ = 0;
};

} // namespace litmus::pricing

#endif // LITMUS_CORE_POPPA_H
