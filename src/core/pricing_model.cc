#include "core/pricing_model.h"

#include "common/logging.h"

namespace litmus::pricing
{

PricingEngine::PricingEngine(const DiscountModel &model,
                             double sharing_factor)
    : model_(model), sharingFactor_(sharing_factor)
{
    if (sharing_factor <= 0)
        fatal("PricingEngine: sharing factor must be positive");
}

PriceQuote
quoteWithEstimate(const sim::TaskCounters &counters,
                  const DiscountEstimate &estimate)
{
    PriceQuote q;
    q.estimate = estimate;

    const double tPriv = counters.privateCycles();
    const double tShared = counters.stallSharedCycles;

    q.commercial = tPriv + tShared;

    q.litmusPriv = estimate.rPrivate * tPriv;
    q.litmusShared = estimate.rShared * tShared;
    q.litmus = q.litmusPriv + q.litmusShared;

    // No oracle here: the ideal lane mirrors commercial until a solo
    // baseline overwrites it.
    q.ideal = q.commercial;
    q.idealPriv = tPriv;
    q.idealShared = tShared;

    return q;
}

PriceQuote
PricingEngine::quote(const sim::TaskCounters &counters,
                     const ProbeReading &probe, workload::Language lang,
                     const SoloBaseline &solo) const
{
    if (counters.instructions <= 0)
        fatal("PricingEngine::quote: no instructions retired");

    PriceQuote q = quoteWithEstimate(
        counters, model_.estimate(probe, lang, sharingFactor_));

    // Ideal: what this invocation would have cost alone — solo CPI
    // times the instructions it actually retired.
    q.idealPriv = solo.privCpi * counters.instructions;
    q.idealShared = solo.sharedCpi * counters.instructions;
    q.ideal = q.idealPriv + q.idealShared;

    return q;
}

} // namespace litmus::pricing
