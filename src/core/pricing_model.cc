#include "core/pricing_model.h"

#include "common/logging.h"

namespace litmus::pricing
{

PricingEngine::PricingEngine(const DiscountModel &model,
                             double sharing_factor)
    : model_(model), sharingFactor_(sharing_factor)
{
    if (sharing_factor <= 0)
        fatal("PricingEngine: sharing factor must be positive");
}

PriceQuote
PricingEngine::quote(const sim::TaskCounters &counters,
                     const ProbeReading &probe, workload::Language lang,
                     const SoloBaseline &solo) const
{
    if (counters.instructions <= 0)
        fatal("PricingEngine::quote: no instructions retired");

    PriceQuote q;
    q.estimate = model_.estimate(probe, lang, sharingFactor_);

    const double tPriv = counters.privateCycles();
    const double tShared = counters.stallSharedCycles;

    q.commercial = tPriv + tShared;

    q.litmusPriv = q.estimate.rPrivate * tPriv;
    q.litmusShared = q.estimate.rShared * tShared;
    q.litmus = q.litmusPriv + q.litmusShared;

    // Ideal: what this invocation would have cost alone — solo CPI
    // times the instructions it actually retired.
    q.idealPriv = solo.privCpi * counters.instructions;
    q.idealShared = solo.sharedCpi * counters.instructions;
    q.ideal = q.idealPriv + q.idealShared;

    return q;
}

} // namespace litmus::pricing
