#include "core/experiment.h"

#include <cstdlib>

#include "common/logging.h"
#include "common/stats.h"
#include "common/strings.h"
#include "core/calibration.h"

namespace litmus::pricing
{

void
ExperimentConfig::layoutOnePerCore()
{
    placement = workload::InvokerConfig::Placement::OnePerCore;
    subjectCpus = {0};
    coRunnerCpus.clear();
    for (unsigned i = 1; i <= coRunners; ++i)
        coRunnerCpus.push_back(i);
}

void
ExperimentConfig::layoutPooled(unsigned pool_cpus)
{
    placement = workload::InvokerConfig::Placement::Pooled;
    coRunnerCpus.clear();
    for (unsigned i = 0; i < pool_cpus; ++i)
        coRunnerCpus.push_back(i);
    subjectCpus = coRunnerCpus;
}

void
ExperimentConfig::validate() const
{
    machine.validate();
    if (coRunnerCpus.empty() || subjectCpus.empty())
        fatal("ExperimentConfig: call layoutOnePerCore()/layoutPooled()"
              " or set CPU lists explicitly");
    if (repetitions == 0)
        fatal("ExperimentConfig: repetitions must be positive");
    for (unsigned cpu : coRunnerCpus) {
        if (cpu >= machine.hwThreads())
            fatal("ExperimentConfig: co-runner cpu ", cpu,
                  " out of range");
    }
    for (unsigned cpu : subjectCpus) {
        if (cpu >= machine.hwThreads())
            fatal("ExperimentConfig: subject cpu ", cpu, " out of range");
    }
}

const FunctionRow &
ExperimentResult::row(const std::string &name) const
{
    for (const FunctionRow &r : rows) {
        if (r.name == name)
            return r;
    }
    fatal("ExperimentResult::row: no row named '", name, "'");
}

unsigned
envOr(const char *name, unsigned fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    // Whole-string parse: "8x" used to silently read as 8; a typoed
    // env knob should fail loudly, not quietly misconfigure a bench.
    const std::optional<long> parsed = parseLongStrict(value);
    if (!parsed || *parsed <= 0)
        fatal("envOr: ", name, " must be a positive integer, got '",
              value, "'");
    return static_cast<unsigned>(*parsed);
}

namespace
{

using workload::FunctionSpec;

/** Shared implementation of both experiment flavours. */
ExperimentResult
runExperiment(const ExperimentConfig &cfg, const DiscountModel *model)
{
    cfg.validate();

    std::vector<const FunctionSpec *> subjects = cfg.subjects;
    if (subjects.empty())
        subjects = workload::testSet();

    // Solo baselines (per-instruction, deterministic nominal runs).
    std::map<std::string, SoloBaseline> solo;
    for (const FunctionSpec *spec : subjects) {
        solo[spec->name] = measureSoloBaseline(
            cfg.machine, *spec, sim::FrequencyPolicy::Fixed);
    }

    // Population engine.
    sim::Engine engine(cfg.machine, cfg.policy);

    workload::InvokerConfig icfg;
    icfg.placement = cfg.placement;
    icfg.targetCount = cfg.coRunners;
    icfg.cpuPool = cfg.coRunnerCpus;
    icfg.functionPool = cfg.coRunnerPool;
    icfg.seed = cfg.seed;
    workload::Invoker invoker(engine, icfg);

    sim::TaskCounters lastCounters;
    sim::ProbeCapture lastProbe;
    bool captured = false;
    engine.onCompletion([&](sim::Task &task) {
        if (invoker.handleCompletion(task))
            return;
        lastCounters = task.counters();
        lastProbe = task.probe();
        captured = true;
    });

    invoker.start();
    engine.run(cfg.warmup);

    std::optional<PricingEngine> pricer;
    if (model)
        pricer.emplace(*model, cfg.sharingFactor);

    ExperimentResult result;
    Rng rng(cfg.seed ^ 0x5afe5eedull);

    for (const FunctionSpec *spec : subjects) {
        const SoloBaseline &base = solo.at(spec->name);

        std::vector<double> litmusN, idealN, privErr, sharedErr,
            totalErr, tPriv, tShared, predPriv, predShared, totalSlow;

        for (unsigned rep = 0; rep < cfg.repetitions; ++rep) {
            workload::InvocationOptions opts;
            opts.withProbe = true;
            opts.probeWindow = cfg.probeWindowOverride;
            auto task = workload::makeInvocation(*spec, rng, opts);
            task->setAffinity(cfg.subjectCpus);
            captured = false;
            sim::Task &handle = engine.add(std::move(task));
            engine.runUntilCompleteId(handle.id());
            if (!captured)
                panic("experiment: subject completion not captured");

            const double privCpi =
                lastCounters.privateCycles() / lastCounters.instructions;
            const double sharedCpi = lastCounters.stallSharedCycles /
                                     lastCounters.instructions;

            tPriv.push_back(privCpi / base.privCpi);
            tShared.push_back(sharedCpi / base.sharedCpi);
            totalSlow.push_back((privCpi + sharedCpi) / base.totalCpi());

            if (pricer) {
                const ProbeReading probe = readProbe(lastProbe);
                const PriceQuote q = pricer->quote(
                    lastCounters, probe, spec->language, base);
                litmusN.push_back(q.litmusNormalized());
                idealN.push_back(q.idealNormalized());
                privErr.push_back(q.privError());
                sharedErr.push_back(q.sharedError());
                totalErr.push_back(q.totalError());
                predPriv.push_back(q.estimate.predictedPriv *
                                   pricer->sharingFactor());
                predShared.push_back(q.estimate.predictedShared);
            }
        }

        FunctionRow row;
        row.name = spec->name;
        row.invocations = cfg.repetitions;
        row.tPrivSlowdown = gmean(tPriv);
        row.tSharedSlowdown = gmean(tShared);
        row.totalSlowdown = gmean(totalSlow);
        row.sharedShareSolo = base.sharedCpi / base.totalCpi();
        if (pricer) {
            row.litmusPrice = gmean(litmusN);
            row.idealPrice = gmean(idealN);
            row.privError = mean(privErr);
            row.sharedError = mean(sharedErr);
            row.totalError = mean(totalErr);
            row.predictedPriv = gmean(predPriv);
            row.predictedShared = gmean(predShared);
        }
        result.rows.push_back(std::move(row));
    }

    // Suite aggregates.
    std::vector<double> lit, idl, absErr, priv, shared, total;
    for (const FunctionRow &row : result.rows) {
        lit.push_back(row.litmusPrice);
        idl.push_back(row.idealPrice);
        absErr.push_back(row.totalError);
        priv.push_back(row.tPrivSlowdown);
        shared.push_back(row.tSharedSlowdown);
        total.push_back(row.totalSlowdown);
    }
    if (model) {
        result.gmeanLitmusPrice = gmean(lit);
        result.gmeanIdealPrice = gmean(idl);
        result.absGmeanError = gmeanAbs(absErr);
    }
    result.gmeanPrivSlowdown = gmean(priv);
    result.gmeanSharedSlowdown = gmean(shared);
    result.gmeanTotalSlowdown = gmean(total);
    return result;
}

} // namespace

ExperimentResult
runPricingExperiment(const ExperimentConfig &cfg,
                     const DiscountModel &model)
{
    // A model fitted on one machine generation quietly misprices
    // another; refuse the mismatch up front.
    model.requireMachine(cfg.machine.name);
    return runExperiment(cfg, &model);
}

ExperimentResult
runSlowdownExperiment(const ExperimentConfig &cfg)
{
    return runExperiment(cfg, nullptr);
}

} // namespace litmus::pricing
