#include "core/table_io.h"

#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

#include "common/logging.h"

namespace litmus::pricing
{

namespace
{

using workload::GeneratorKind;
using workload::Language;

const char *
langToken(Language lang)
{
    return lang == Language::Python
               ? "python"
               : (lang == Language::NodeJs ? "nodejs" : "go");
}

Language
langFromToken(const std::string &token)
{
    if (token == "python")
        return Language::Python;
    if (token == "nodejs")
        return Language::NodeJs;
    if (token == "go")
        return Language::Go;
    fatal("table_io: unknown language '", token, "'");
}

const char *
genToken(GeneratorKind gen)
{
    return gen == GeneratorKind::CtGen ? "ct" : "mb";
}

GeneratorKind
genFromToken(const std::string &token)
{
    if (token == "ct")
        return GeneratorKind::CtGen;
    if (token == "mb")
        return GeneratorKind::MbGen;
    fatal("table_io: unknown generator '", token, "'");
}

} // namespace

void
saveTables(std::ostream &os, const CongestionTable &congestion,
           const PerformanceTable &performance)
{
    os << "litmus-tables v1\n";
    os << std::setprecision(17);

    for (Language lang : workload::allLanguages()) {
        const ProbeReading &base = congestion.baseline(lang);
        os << "baseline " << langToken(lang) << ' ' << base.privCpi
           << ' ' << base.sharedCpi << ' ' << base.instructions << ' '
           << base.machineL3MissPerUs << '\n';
    }

    for (Language lang : workload::allLanguages()) {
        for (GeneratorKind gen :
             {GeneratorKind::CtGen, GeneratorKind::MbGen}) {
            const auto &levels = congestion.levels(lang, gen);
            const auto &priv = congestion.privSeries(lang, gen);
            const auto &shared = congestion.sharedSeries(lang, gen);
            const auto &total = congestion.totalSeries(lang, gen);
            const auto &l3 = congestion.l3Series(lang, gen);
            for (std::size_t i = 0; i < levels.size(); ++i) {
                os << "congestion " << langToken(lang) << ' '
                   << genToken(gen) << ' ' << levels[i] << ' '
                   << priv[i] << ' ' << shared[i] << ' ' << total[i]
                   << ' ' << l3[i] << '\n';
            }
        }
    }

    for (GeneratorKind gen :
         {GeneratorKind::CtGen, GeneratorKind::MbGen}) {
        const auto &levels = performance.levels(gen);
        const auto &priv = performance.privSeries(gen);
        const auto &shared = performance.sharedSeries(gen);
        const auto &total = performance.totalSeries(gen);
        for (std::size_t i = 0; i < levels.size(); ++i) {
            os << "performance " << genToken(gen) << ' ' << levels[i]
               << ' ' << priv[i] << ' ' << shared[i] << ' ' << total[i]
               << '\n';
        }
    }
}

void
saveTables(const std::string &path, const CongestionTable &congestion,
           const PerformanceTable &performance)
{
    std::ofstream out(path);
    if (!out)
        fatal("saveTables: cannot write '", path, "'");
    saveTables(out, congestion, performance);
}

LoadedTables
loadTables(std::istream &is)
{
    std::string header;
    if (!std::getline(is, header) || header != "litmus-tables v1")
        fatal("loadTables: bad header '", header, "'");

    LoadedTables out;
    std::string line;
    int lineNo = 1;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        std::istringstream fields(line);
        std::string kind;
        fields >> kind;
        if (kind == "baseline") {
            std::string lang;
            ProbeReading base;
            fields >> lang >> base.privCpi >> base.sharedCpi >>
                base.instructions >> base.machineL3MissPerUs;
            if (!fields)
                fatal("loadTables: malformed baseline on line ", lineNo);
            out.congestion.setBaseline(langFromToken(lang), base);
        } else if (kind == "congestion") {
            std::string lang, gen;
            double level;
            CongestionEntry entry;
            fields >> lang >> gen >> level >> entry.privSlowdown >>
                entry.sharedSlowdown >> entry.totalSlowdown >>
                entry.l3MissPerUs;
            if (!fields)
                fatal("loadTables: malformed congestion row on line ",
                      lineNo);
            out.congestion.add(langFromToken(lang), genFromToken(gen),
                               static_cast<unsigned>(level), entry);
        } else if (kind == "performance") {
            std::string gen;
            double level;
            PerformanceEntry entry;
            fields >> gen >> level >> entry.privSlowdown >>
                entry.sharedSlowdown >> entry.totalSlowdown;
            if (!fields)
                fatal("loadTables: malformed performance row on line ",
                      lineNo);
            out.performance.add(genFromToken(gen),
                                static_cast<unsigned>(level), entry);
        } else {
            fatal("loadTables: unknown record '", kind, "' on line ",
                  lineNo);
        }
    }
    return out;
}

LoadedTables
loadTables(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("loadTables: cannot open '", path, "'");
    return loadTables(in);
}

} // namespace litmus::pricing
