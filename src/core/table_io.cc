#include "core/table_io.h"

#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

#include "common/logging.h"

namespace litmus::pricing
{

namespace
{

using workload::GeneratorKind;
using workload::Language;

const char *
langToken(Language lang)
{
    return lang == Language::Python
               ? "python"
               : (lang == Language::NodeJs ? "nodejs" : "go");
}

Language
langFromToken(const std::string &token)
{
    if (token == "python")
        return Language::Python;
    if (token == "nodejs")
        return Language::NodeJs;
    if (token == "go")
        return Language::Go;
    fatal("table_io: unknown language '", token, "'");
}

const char *
genToken(GeneratorKind gen)
{
    return gen == GeneratorKind::CtGen ? "ct" : "mb";
}

GeneratorKind
genFromToken(const std::string &token)
{
    if (token == "ct")
        return GeneratorKind::CtGen;
    if (token == "mb")
        return GeneratorKind::MbGen;
    fatal("table_io: unknown generator '", token, "'");
}

} // namespace

void
saveProfile(std::ostream &os, const CalibrationProfile &profile)
{
    os << "litmus-tables v2\n";
    // max_digits10: a decimal round-trip reproduces the exact double,
    // so a reloaded profile prices bit-identically.
    os << std::setprecision(17);

    if (!profile.machine.empty()) {
        // The record is whitespace-tokenized on load; a name with
        // spaces would silently truncate there, so refuse it here.
        if (profile.machine.find_first_of(" \t\n\r") !=
            std::string::npos)
            fatal("saveProfile: machine name '", profile.machine,
                  "' contains whitespace and would not round-trip");
        os << "machine " << profile.machine << '\n';
    }

    const CongestionTable &congestion = profile.congestion;
    const PerformanceTable &performance = profile.performance;

    for (Language lang : workload::allLanguages()) {
        const ProbeReading &base = congestion.baseline(lang);
        os << "baseline " << langToken(lang) << ' ' << base.privCpi
           << ' ' << base.sharedCpi << ' ' << base.instructions << ' '
           << base.machineL3MissPerUs << '\n';
    }

    for (const auto &[name, solo] : profile.referenceSolo) {
        os << "solo " << name << ' ' << solo.privCpi << ' '
           << solo.sharedCpi << '\n';
    }

    for (Language lang : workload::allLanguages()) {
        for (GeneratorKind gen :
             {GeneratorKind::CtGen, GeneratorKind::MbGen}) {
            const auto &levels = congestion.levels(lang, gen);
            const auto &priv = congestion.privSeries(lang, gen);
            const auto &shared = congestion.sharedSeries(lang, gen);
            const auto &total = congestion.totalSeries(lang, gen);
            const auto &l3 = congestion.l3Series(lang, gen);
            for (std::size_t i = 0; i < levels.size(); ++i) {
                os << "congestion " << langToken(lang) << ' '
                   << genToken(gen) << ' ' << levels[i] << ' '
                   << priv[i] << ' ' << shared[i] << ' ' << total[i]
                   << ' ' << l3[i] << '\n';
            }
        }
    }

    for (GeneratorKind gen :
         {GeneratorKind::CtGen, GeneratorKind::MbGen}) {
        const auto &levels = performance.levels(gen);
        const auto &priv = performance.privSeries(gen);
        const auto &shared = performance.sharedSeries(gen);
        const auto &total = performance.totalSeries(gen);
        for (std::size_t i = 0; i < levels.size(); ++i) {
            os << "performance " << genToken(gen) << ' ' << levels[i]
               << ' ' << priv[i] << ' ' << shared[i] << ' ' << total[i]
               << '\n';
        }
    }
}

void
saveProfile(const std::string &path, const CalibrationProfile &profile)
{
    std::ofstream out(path);
    if (!out)
        fatal("saveProfile: cannot write '", path, "'");
    saveProfile(out, profile);
}

CalibrationProfile
loadProfile(std::istream &is)
{
    std::string header;
    if (!std::getline(is, header) ||
        (header != "litmus-tables v1" && header != "litmus-tables v2"))
        fatal("loadProfile: bad header '", header,
              "' (want litmus-tables v1 | v2)");
    const bool v2 = header == "litmus-tables v2";

    CalibrationProfile out;
    std::string line;
    int lineNo = 1;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        std::istringstream fields(line);
        std::string kind;
        fields >> kind;
        if (kind == "machine") {
            if (!v2)
                fatal("loadProfile: 'machine' record in a v1 file on "
                      "line ", lineNo);
            fields >> out.machine;
            if (!fields || out.machine.empty())
                fatal("loadProfile: malformed machine record on line ",
                      lineNo);
        } else if (kind == "baseline") {
            std::string lang;
            ProbeReading base;
            fields >> lang >> base.privCpi >> base.sharedCpi >>
                base.instructions >> base.machineL3MissPerUs;
            if (!fields)
                fatal("loadProfile: malformed baseline on line ",
                      lineNo);
            out.congestion.setBaseline(langFromToken(lang), base);
        } else if (kind == "solo") {
            if (!v2)
                fatal("loadProfile: 'solo' record in a v1 file on "
                      "line ", lineNo);
            std::string name;
            SoloBaseline solo;
            fields >> name >> solo.privCpi >> solo.sharedCpi;
            if (!fields)
                fatal("loadProfile: malformed solo baseline on line ",
                      lineNo);
            out.referenceSolo[name] = solo;
        } else if (kind == "congestion") {
            std::string lang, gen;
            double level;
            CongestionEntry entry;
            fields >> lang >> gen >> level >> entry.privSlowdown >>
                entry.sharedSlowdown >> entry.totalSlowdown >>
                entry.l3MissPerUs;
            if (!fields)
                fatal("loadProfile: malformed congestion row on line ",
                      lineNo);
            out.congestion.add(langFromToken(lang), genFromToken(gen),
                               static_cast<unsigned>(level), entry);
        } else if (kind == "performance") {
            std::string gen;
            double level;
            PerformanceEntry entry;
            fields >> gen >> level >> entry.privSlowdown >>
                entry.sharedSlowdown >> entry.totalSlowdown;
            if (!fields)
                fatal("loadProfile: malformed performance row on line ",
                      lineNo);
            out.performance.add(genFromToken(gen),
                                static_cast<unsigned>(level), entry);
        } else {
            fatal("loadProfile: unknown record '", kind, "' on line ",
                  lineNo);
        }
    }
    return out;
}

CalibrationProfile
loadProfile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("loadProfile: cannot open '", path, "'");
    return loadProfile(in);
}

} // namespace litmus::pricing
