/**
 * @file
 * Provider-side offline calibration (Section 6, Steps 1 and 2).
 *
 * The Calibrator fills the congestion and performance tables by
 * simulating the provider's procedure: stress the machine with CT-Gen
 * and MB-Gen at a range of levels; at each level run the language
 * startups (congestion table) and the reference functions
 * (performance table); normalize everything against congestion-free
 * solo runs.
 *
 * Method 2 of Section 7.2 is the same procedure with a temporal-
 * sharing environment present: a population of functions shares a
 * small CPU pool with the subject while the generators stress the
 * remaining cores.
 */

#ifndef LITMUS_CORE_CALIBRATION_H
#define LITMUS_CORE_CALIBRATION_H

#include <map>
#include <string>

#include "core/congestion_table.h"
#include "core/performance_table.h"
#include "workload/invoker.h"
#include "workload/suite.h"

namespace litmus::pricing
{

/** Solo per-component CPI of a whole function (ideal-price oracle). */
struct SoloBaseline
{
    double privCpi = 0.0;
    double sharedCpi = 0.0;

    double totalCpi() const { return privCpi + sharedCpi; }
};

/** Calibration configuration. */
struct CalibrationConfig
{
    sim::MachineConfig machine = sim::MachineConfig::cascadeLake5218();
    sim::FrequencyPolicy policy = sim::FrequencyPolicy::Fixed;

    /** Stress levels to record (strictly increasing). */
    std::vector<unsigned> levels = {2, 4, 6, 8, 10, 12, 14,
                                    16, 18, 20, 22, 24, 26};

    /** CPU the subject runs on in dedicated (Method-agnostic) mode. */
    unsigned subjectCpu = 0;

    /** First CPU assigned to generator threads. */
    unsigned generatorFirstCpu = 1;

    /**
     * Temporal-sharing environment (Method 2): when positive, this
     * many functions churn on sharingCpus, and the subject joins that
     * pool instead of owning subjectCpu.
     */
    unsigned sharingFunctions = 0;
    std::vector<unsigned> sharingCpus;

    /** Reference functions (defaults to the Table 1 asterisks). */
    std::vector<const workload::FunctionSpec *> referencePool;

    /** Subject-measurement repetitions per cell (averaged). */
    unsigned repetitions = 1;

    /**
     * Probe window override in instructions (0 = language defaults).
     * Must match the runtime probes that will consult these tables.
     */
    Instructions probeWindowOverride = 0;

    /** Simulated warmup before measuring each cell. */
    Seconds warmup = 0.08;

    std::uint64_t seed = 7;

    void validate() const;
};

/** Everything calibration produces. */
struct CalibrationResult
{
    CongestionTable congestion;
    PerformanceTable performance;

    /** Solo baselines of the reference functions (diagnostics). */
    std::map<std::string, SoloBaseline> referenceSolo;
};

/**
 * Measure the solo baseline of a function spec on a machine (runs it
 * alone, no jitter).
 */
SoloBaseline measureSoloBaseline(const sim::MachineConfig &machine,
                                 const workload::FunctionSpec &spec,
                                 sim::FrequencyPolicy policy =
                                     sim::FrequencyPolicy::Fixed);

/** Run the full calibration procedure. */
CalibrationResult calibrate(const CalibrationConfig &cfg);

} // namespace litmus::pricing

#endif // LITMUS_CORE_CALIBRATION_H
