/**
 * @file
 * Provider-side offline calibration (Section 6, Steps 1 and 2).
 *
 * The Calibrator fills the congestion and performance tables by
 * simulating the provider's procedure: stress the machine with CT-Gen
 * and MB-Gen at a range of levels; at each level run the language
 * startups (congestion table) and the reference functions
 * (performance table); normalize everything against congestion-free
 * solo runs.
 *
 * Method 2 of Section 7.2 is the same procedure with a temporal-
 * sharing environment present: a population of functions shares a
 * small CPU pool with the subject while the generators stress the
 * remaining cores.
 */

#ifndef LITMUS_CORE_CALIBRATION_H
#define LITMUS_CORE_CALIBRATION_H

#include <map>
#include <string>

#include "core/congestion_table.h"
#include "core/performance_table.h"
#include "sim/machine_catalog.h"
#include "workload/invoker.h"
#include "workload/suite.h"

namespace litmus::pricing
{

/** Solo per-component CPI of a whole function (ideal-price oracle). */
struct SoloBaseline
{
    double privCpi = 0.0;
    double sharedCpi = 0.0;

    double totalCpi() const { return privCpi + sharedCpi; }
};

/** Calibration configuration. */
struct CalibrationConfig
{
    sim::MachineConfig machine = sim::MachineCatalog::get("cascade-5218");
    sim::FrequencyPolicy policy = sim::FrequencyPolicy::Fixed;

    /** Stress levels to record (strictly increasing). */
    std::vector<unsigned> levels = {2, 4, 6, 8, 10, 12, 14,
                                    16, 18, 20, 22, 24, 26};

    /** CPU the subject runs on in dedicated (Method-agnostic) mode. */
    unsigned subjectCpu = 0;

    /** First CPU assigned to generator threads. */
    unsigned generatorFirstCpu = 1;

    /**
     * Temporal-sharing environment (Method 2): when positive, this
     * many functions churn on sharingCpus, and the subject joins that
     * pool instead of owning subjectCpu.
     */
    unsigned sharingFunctions = 0;
    std::vector<unsigned> sharingCpus;

    /** Reference functions (the Table 1 asterisks by default; an
     *  explicitly empty pool is a validate() error). */
    std::vector<const workload::FunctionSpec *> referencePool =
        workload::referenceSet();

    /** Subject-measurement repetitions per cell (averaged). */
    unsigned repetitions = 1;

    /**
     * Probe window override in instructions (0 = language defaults).
     * Must match the runtime probes that will consult these tables.
     */
    Instructions probeWindowOverride = 0;

    /** Simulated warmup before measuring each cell. */
    Seconds warmup = 0.08;

    std::uint64_t seed = 7;

    void validate() const;
};

/**
 * Everything calibration produces — a first-class, deployable
 * artifact. The congestion/performance tables (startup baselines
 * included), the reference-function solo baselines, and the name of
 * the machine type it was calibrated on travel together: table_io
 * round-trips the whole profile (v2 format), ProfileStore memoizes
 * one per machine type, and DiscountModel refuses to price a machine
 * whose type does not match.
 */
struct CalibrationProfile
{
    /** MachineConfig::name of the calibration machine. Empty on
     *  legacy (v1) artifacts and hand-built tables = matches any. */
    std::string machine;

    CongestionTable congestion;
    PerformanceTable performance;

    /** Solo baselines of the reference functions (diagnostics). */
    std::map<std::string, SoloBaseline> referenceSolo;

    /** fatal() when this profile was calibrated on a different
     *  machine type than @p machine_name (empty on either side is a
     *  wildcard). */
    void requireMachine(const std::string &machine_name) const;
};

/**
 * The one profile/machine matching rule: an empty name on either
 * side is a wildcard (legacy artifacts, synthetic tables), anything
 * else must match exactly. @p context names the caller in the
 * fatal().
 */
void requireMachineMatch(const std::string &calibrated,
                         const std::string &machine_name,
                         const char *context);

/**
 * Measure the solo baseline of a function spec on a machine (runs it
 * alone, no jitter).
 */
SoloBaseline measureSoloBaseline(const sim::MachineConfig &machine,
                                 const workload::FunctionSpec &spec,
                                 sim::FrequencyPolicy policy =
                                     sim::FrequencyPolicy::Fixed);

/** Run the full calibration procedure. */
CalibrationProfile calibrate(const CalibrationConfig &cfg);

/**
 * The provider's standard dedicated-core sweep for a machine: subject
 * on CPU 0, generators on CPUs 1..level, levels 2,4,... capped by the
 * machine's hardware-thread count (and the paper's 26). This is the
 * sweep ProfileStore runs when a machine type is first priced.
 */
CalibrationConfig dedicatedCalibrationFor(sim::MachineConfig machine);

} // namespace litmus::pricing

#endif // LITMUS_CORE_CALIBRATION_H
