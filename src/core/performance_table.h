/**
 * @file
 * The performance table (Figure 5, right).
 *
 * For each traffic generator and stress level, the geometric mean of
 * the reference functions' component slowdowns (whole-function CPI
 * ratios vs. running alone). Entries map 1-to-1 to congestion-table
 * rows; together they let the provider translate "startup slowed by
 * X" into "a typical tenant function slowed by Y".
 */

#ifndef LITMUS_CORE_PERFORMANCE_TABLE_H
#define LITMUS_CORE_PERFORMANCE_TABLE_H

#include <map>
#include <vector>

#include "workload/traffic_gen.h"

namespace litmus::pricing
{

/** One performance-table cell: reference gmean slowdowns. */
struct PerformanceEntry
{
    double privSlowdown = 1.0;
    double sharedSlowdown = 1.0;
    double totalSlowdown = 1.0;
};

/** Provider-built performance table. */
class PerformanceTable
{
  public:
    using GeneratorKind = workload::GeneratorKind;

    /** Add one cell; levels must arrive increasing. */
    void add(GeneratorKind gen, unsigned level,
             const PerformanceEntry &entry);

    /** Stress levels recorded for a generator. */
    const std::vector<double> &levels(GeneratorKind gen) const;

    const std::vector<double> &privSeries(GeneratorKind gen) const;
    const std::vector<double> &sharedSeries(GeneratorKind gen) const;
    const std::vector<double> &totalSeries(GeneratorKind gen) const;

    bool populated(GeneratorKind gen) const;

  private:
    struct Series
    {
        std::vector<double> levels;
        std::vector<double> priv;
        std::vector<double> shared;
        std::vector<double> total;
    };

    const Series &seriesFor(GeneratorKind gen) const;

    std::map<GeneratorKind, Series> series_;
};

} // namespace litmus::pricing

#endif // LITMUS_CORE_PERFORMANCE_TABLE_H
