/**
 * @file
 * Process-wide memoized store of calibration profiles.
 *
 * Calibration is the expensive provider-side step, and before this
 * store every bench, test, and fleet run re-swept the same machine
 * from scratch. The store calibrates each machine type at most once
 * per process (thread-safe: concurrent requests for the same key wait
 * for the first calibration instead of duplicating it) and hands out
 * shared immutable profiles, mirroring how a provider calibrates a
 * hardware generation once and deploys the artifact fleet-wide.
 */

#ifndef LITMUS_CORE_PROFILE_STORE_H
#define LITMUS_CORE_PROFILE_STORE_H

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "core/calibration.h"

namespace litmus::pricing
{

class ProfileStore
{
  public:
    using ProfilePtr = std::shared_ptr<const CalibrationProfile>;

    /** The process-wide store. */
    static ProfileStore &instance();

    /**
     * Profile for a catalog machine type under the standard
     * dedicated-core sweep (dedicatedCalibrationFor), calibrated on
     * first use and cached for the life of the process.
     */
    ProfilePtr dedicated(const std::string &machine_name);

    /**
     * Memoize an arbitrary calibration: returns the cached profile
     * for @p key, or runs @p produce (outside the store lock, exactly
     * once even under concurrency) and caches its result.
     */
    ProfilePtr getOrCalibrate(
        const std::string &key,
        const std::function<CalibrationProfile()> &produce);

    /** Insert or replace a profile (deserialized artifacts). */
    void put(const std::string &key, CalibrationProfile profile);

    /** Cached profile for @p key, or nullptr. Never calibrates. */
    ProfilePtr find(const std::string &key) const;

    /** Drop every cached profile (tests). */
    void clear();

  private:
    ProfileStore() = default;

    mutable Mutex mutex_;

    /** Key -> eventually-ready profile. The shared_future is stored
     *  (not the value) so late arrivals during a calibration block on
     *  it rather than re-calibrating; calibrations themselves run
     *  outside the lock, so mutex_ only ever guards map surgery. */
    std::map<std::string, std::shared_future<ProfilePtr>> profiles_
        LITMUS_GUARDED_BY(mutex_);
};

} // namespace litmus::pricing

#endif // LITMUS_CORE_PROFILE_STORE_H
