/**
 * @file
 * The three pricing schemes the evaluation compares (Section 7):
 *
 *  - commercial: pay-as-you-go, proportional to measured execution
 *    time (no discount) — today's platforms;
 *  - ideal: an oracle that discounts exactly proportionally to the
 *    slowdown (requires knowing T_solo, unobtainable in production);
 *  - Litmus: P = R_private * T_private + R_shared * T_shared, with
 *    rates from the Litmus test and the discount model.
 *
 * All quotes are expressed in cycles so normalized comparisons don't
 * depend on memory size or dollar rates; BillingLedger converts to
 * GB-second dollar charges for absolute bills.
 */

#ifndef LITMUS_CORE_PRICING_MODEL_H
#define LITMUS_CORE_PRICING_MODEL_H

#include "core/discount_model.h"

namespace litmus::pricing
{

/** One invocation priced all three ways. */
struct PriceQuote
{
    /** Commercial pay-as-you-go price (total measured cycles). */
    double commercial = 0.0;

    /** Litmus price and its components. */
    double litmus = 0.0;
    double litmusPriv = 0.0;
    double litmusShared = 0.0;

    /** Ideal (oracle) price and its components: solo-time cycles. */
    double ideal = 0.0;
    double idealPriv = 0.0;
    double idealShared = 0.0;

    /** The discount estimate used for the Litmus price. */
    DiscountEstimate estimate;

    /** Normalized prices (commercial == 1). */
    double litmusNormalized() const { return litmus / commercial; }
    double idealNormalized() const { return ideal / commercial; }

    /**
     * Weighted error rates of Figure 12: component difference from
     * the ideal component, weighted by the ideal total.
     */
    double privError() const { return (litmusPriv - idealPriv) / ideal; }
    double sharedError() const
    {
        return (litmusShared - idealShared) / ideal;
    }
    double totalError() const { return (litmus - ideal) / ideal; }
};

/**
 * Price measured counters with an already-computed discount estimate:
 * commercial = measured cycles, Litmus = R_private * T_private +
 * R_shared * T_shared. No solo oracle is involved, so the ideal lane
 * mirrors the commercial one (a default-constructed estimate prices
 * everything commercially — rates of 1). This is the shared primitive
 * behind PricingEngine::quote and the fleet ledgers.
 */
PriceQuote quoteWithEstimate(const sim::TaskCounters &counters,
                             const DiscountEstimate &estimate);

/**
 * Prices invocations with a calibrated discount model.
 */
class PricingEngine
{
  public:
    /**
     * @param model          calibrated discount model (borrowed;
     *                       must outlive the engine)
     * @param sharing_factor Method 1 temporal-sharing calibration
     *                       factor (1 = dedicated cores / Method 2)
     */
    explicit PricingEngine(const DiscountModel &model,
                           double sharing_factor = 1.0);

    /**
     * Price one invocation.
     *
     * @param counters whole-execution task counters
     * @param probe    the invocation's Litmus-test reading
     * @param lang     language of the function
     * @param solo     the function's solo baseline (ideal oracle only;
     *                 Litmus itself never sees it)
     */
    PriceQuote quote(const sim::TaskCounters &counters,
                     const ProbeReading &probe,
                     workload::Language lang,
                     const SoloBaseline &solo) const;

    const DiscountModel &model() const { return model_; }
    double sharingFactor() const { return sharingFactor_; }

  private:
    const DiscountModel &model_;
    double sharingFactor_;
};

} // namespace litmus::pricing

#endif // LITMUS_CORE_PRICING_MODEL_H
