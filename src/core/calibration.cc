#include "core/calibration.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "common/stats.h"
#include "sim/machine.h"
#include "workload/traffic_gen.h"

namespace litmus::pricing
{

namespace
{

using workload::FunctionSpec;
using workload::GeneratorKind;
using workload::Language;

/** Bare startup task used as the congestion-table subject. */
std::unique_ptr<workload::ProgramTask>
makeStartupTask(Language lang, Instructions window_override = 0)
{
    Instructions window = window_override > 0
                              ? window_override
                              : workload::probeWindow(lang);
    // The probe must close inside the startup (shorter runtimes like
    // Go cap the usable window).
    window = std::min(
        window,
        workload::startupProgram(lang).totalInstructions() * 0.9);
    return std::make_unique<workload::ProgramTask>(
        "start-" + workload::languageSuffix(lang),
        workload::startupProgram(lang), window);
}

/** Per-cell measurement context: engine + optional sharing churn. */
class CellEnvironment
{
  public:
    CellEnvironment(const CalibrationConfig &cfg, GeneratorKind gen,
                    unsigned level, std::uint64_t seed)
        : engine_(cfg.machine, cfg.policy)
    {
        if (cfg.sharingFunctions > 0) {
            workload::InvokerConfig icfg;
            icfg.placement = workload::InvokerConfig::Placement::Pooled;
            icfg.targetCount = cfg.sharingFunctions;
            icfg.cpuPool = cfg.sharingCpus;
            icfg.seed = seed;
            invoker_ =
                std::make_unique<workload::Invoker>(engine_, icfg);
        }

        engine_.onCompletion([this](sim::Task &task) {
            if (invoker_ && invoker_->handleCompletion(task))
                return;
            lastCounters_ = task.counters();
            lastProbe_ = task.probe();
            captured_ = true;
        });

        if (invoker_)
            invoker_->start();

        if (level > 0)
            workload::spawnGenerator(engine_, gen, level,
                                     cfg.generatorFirstCpu);

        engine_.run(cfg.warmup);
    }

    /** Run a subject task to completion; returns its final counters. */
    sim::TaskCounters
    measure(std::unique_ptr<sim::Task> subject,
            std::vector<unsigned> affinity, sim::ProbeCapture *probe_out)
    {
        subject->setAffinity(std::move(affinity));
        captured_ = false;
        sim::Task &handle = engine_.add(std::move(subject));
        const std::uint64_t id = handle.id();
        engine_.runUntilCompleteId(id);
        if (!captured_)
            panic("CellEnvironment: completion not captured");
        if (probe_out)
            *probe_out = lastProbe_;
        return lastCounters_;
    }

    sim::Engine &engine() { return engine_; }

  private:
    sim::Engine engine_;
    std::unique_ptr<workload::Invoker> invoker_;
    sim::TaskCounters lastCounters_;
    sim::ProbeCapture lastProbe_;
    bool captured_ = false;
};

} // namespace

void
CalibrationConfig::validate() const
{
    machine.validate();
    if (referencePool.empty())
        fatal("CalibrationConfig: referencePool is empty — the "
              "performance table needs at least one reference "
              "function (the default is workload::referenceSet())");
    if (levels.empty())
        fatal("CalibrationConfig: no stress levels");
    for (std::size_t i = 1; i < levels.size(); ++i) {
        if (levels[i] <= levels[i - 1])
            fatal("CalibrationConfig: levels must increase");
    }
    const unsigned maxLevel = levels.back();
    if (generatorFirstCpu + maxLevel > machine.hwThreads())
        fatal("CalibrationConfig: level ", maxLevel,
              " does not fit behind cpu ", generatorFirstCpu, " on ",
              machine.hwThreads(), " hardware threads");
    if (sharingFunctions > 0) {
        if (sharingCpus.empty())
            fatal("CalibrationConfig: sharing enabled without CPUs");
        for (unsigned cpu : sharingCpus) {
            if (cpu >= generatorFirstCpu &&
                cpu < generatorFirstCpu + maxLevel) {
                fatal("CalibrationConfig: sharing cpu ", cpu,
                      " overlaps generator range");
            }
        }
    }
    if (repetitions == 0)
        fatal("CalibrationConfig: repetitions must be positive");
}

void
requireMachineMatch(const std::string &calibrated,
                    const std::string &machine_name,
                    const char *context)
{
    if (!calibrated.empty() && !machine_name.empty() &&
        calibrated != machine_name) {
        fatal(context, ": calibrated on '", calibrated,
              "' but asked to price '", machine_name,
              "' — use the profile for that machine type");
    }
}

void
CalibrationProfile::requireMachine(const std::string &machine_name) const
{
    requireMachineMatch(machine, machine_name, "CalibrationProfile");
}

CalibrationConfig
dedicatedCalibrationFor(sim::MachineConfig machine)
{
    CalibrationConfig cfg;
    cfg.machine = std::move(machine);
    cfg.subjectCpu = 0;
    cfg.generatorFirstCpu = 1;
    cfg.levels.clear();
    // Generators occupy CPUs 1..level, so the deepest level is one
    // short of the thread count; the paper sweeps to 26.
    if (cfg.machine.hwThreads() < 3) {
        fatal("dedicatedCalibrationFor: machine '", cfg.machine.name,
              "' has only ", cfg.machine.hwThreads(), " hardware "
              "thread(s) — the dedicated sweep needs at least 3 "
              "(subject + 2 generators)");
    }
    const unsigned maxLevel =
        std::min(26u, cfg.machine.hwThreads() - 1);
    for (unsigned level = 2; level <= maxLevel; level += 2)
        cfg.levels.push_back(level);
    return cfg;
}

SoloBaseline
measureSoloBaseline(const sim::MachineConfig &machine,
                    const FunctionSpec &spec,
                    sim::FrequencyPolicy policy)
{
    const sim::RunResult run = sim::runSolo(
        machine,
        [&] { return workload::makeNominalInvocation(spec, false); },
        policy);
    SoloBaseline solo;
    solo.privCpi = run.counters.privateCycles() / run.counters.instructions;
    solo.sharedCpi =
        run.counters.stallSharedCycles / run.counters.instructions;
    return solo;
}

CalibrationProfile
calibrate(const CalibrationConfig &cfg)
{
    cfg.validate();
    CalibrationProfile result;
    result.machine = cfg.machine.name;

    const std::vector<const FunctionSpec *> &refs = cfg.referencePool;

    // ---- Congestion-free baselines ---------------------------------
    for (Language lang : workload::allLanguages()) {
        const sim::RunResult solo = sim::runSolo(
            cfg.machine,
            [&] {
                return makeStartupTask(lang, cfg.probeWindowOverride);
            },
            cfg.policy);
        result.congestion.setBaseline(lang, readProbe(solo.probe));
    }

    std::map<std::string, SoloBaseline> refSolo;
    for (const FunctionSpec *spec : refs)
        refSolo[spec->name] =
            measureSoloBaseline(cfg.machine, *spec, cfg.policy);
    result.referenceSolo = refSolo;

    const std::vector<unsigned> subjectAffinity =
        cfg.sharingFunctions > 0 ? cfg.sharingCpus
                                 : std::vector<unsigned>{cfg.subjectCpu};

    // ---- Stress sweep ----------------------------------------------
    // One environment per (generator, level) cell; every subject runs
    // sequentially inside it, exactly as a provider would sweep.
    for (GeneratorKind gen :
         {GeneratorKind::CtGen, GeneratorKind::MbGen}) {
        for (unsigned level : cfg.levels) {
            CellEnvironment env(cfg, gen, level, cfg.seed + 31 * level);

            // Congestion table: startup probes per language.
            for (Language lang : workload::allLanguages()) {
                std::vector<double> priv, shared, total, l3;
                for (unsigned rep = 0; rep < cfg.repetitions; ++rep) {
                    sim::ProbeCapture probe;
                    env.measure(
                        makeStartupTask(lang, cfg.probeWindowOverride),
                        subjectAffinity, &probe);
                    const ProbeReading reading = readProbe(probe);
                    const ProbeSlowdown s = slowdownOf(
                        reading, result.congestion.baseline(lang));
                    priv.push_back(s.priv);
                    shared.push_back(s.shared);
                    total.push_back(s.total);
                    l3.push_back(reading.machineL3MissPerUs);
                }
                CongestionEntry entry;
                entry.privSlowdown = gmean(priv);
                entry.sharedSlowdown = gmean(shared);
                entry.totalSlowdown = gmean(total);
                entry.l3MissPerUs = mean(l3);
                result.congestion.add(lang, gen, level, entry);
            }

            // Performance table: reference-function slowdown gmeans.
            std::vector<double> priv, shared, total;
            for (const FunctionSpec *spec : refs) {
                const SoloBaseline &solo = refSolo.at(spec->name);
                std::vector<double> p, s, t;
                for (unsigned rep = 0; rep < cfg.repetitions; ++rep) {
                    const sim::TaskCounters counters = env.measure(
                        workload::makeNominalInvocation(*spec, false),
                        subjectAffinity, nullptr);
                    const double privCpi =
                        counters.privateCycles() / counters.instructions;
                    const double sharedCpi = counters.stallSharedCycles /
                                             counters.instructions;
                    p.push_back(privCpi / solo.privCpi);
                    s.push_back(sharedCpi / solo.sharedCpi);
                    t.push_back((privCpi + sharedCpi) / solo.totalCpi());
                }
                priv.push_back(gmean(p));
                shared.push_back(gmean(s));
                total.push_back(gmean(t));
            }
            PerformanceEntry entry;
            entry.privSlowdown = gmean(priv);
            entry.sharedSlowdown = gmean(shared);
            entry.totalSlowdown = gmean(total);
            result.performance.add(gen, level, entry);
        }
    }

    return result;
}

} // namespace litmus::pricing
