#include "core/billing.h"

#include "common/logging.h"

namespace litmus::pricing
{

BillingLedger::BillingLedger(BillingConfig cfg) : cfg_(cfg)
{
    if (cfg_.usdPerGiBSecond <= 0 || cfg_.billingFrequency <= 0)
        fatal("BillingLedger: rates must be positive");
}

const BillRecord &
BillingLedger::record(const std::string &tenant,
                      const std::string &function,
                      const sim::TaskCounters &counters,
                      const PriceQuote &quote, Bytes memory)
{
    BillRecord rec;
    rec.tenant = tenant;
    rec.function = function;
    rec.cpuSeconds = counters.cycles / cfg_.billingFrequency;
    rec.memoryGiB = static_cast<double>(memory) / (1024.0 * 1024 * 1024);
    rec.quote = quote;

    const double gbSeconds = rec.cpuSeconds * rec.memoryGiB;
    rec.commercialUsd = gbSeconds * cfg_.usdPerGiBSecond;
    rec.litmusUsd = rec.commercialUsd * quote.litmusNormalized();

    records_.push_back(rec);
    return records_.back();
}

double
BillingLedger::totalCommercialUsd() const
{
    double total = 0;
    for (const BillRecord &rec : records_)
        total += rec.commercialUsd;
    return total;
}

double
BillingLedger::totalLitmusUsd() const
{
    double total = 0;
    for (const BillRecord &rec : records_)
        total += rec.litmusUsd;
    return total;
}

double
BillingLedger::aggregateDiscount() const
{
    const double commercial = totalCommercialUsd();
    if (commercial <= 0)
        return 0.0;
    return 1.0 - totalLitmusUsd() / commercial;
}

std::vector<const BillRecord *>
BillingLedger::tenantRecords(const std::string &tenant) const
{
    std::vector<const BillRecord *> out;
    for (const BillRecord &rec : records_) {
        if (rec.tenant == tenant)
            out.push_back(&rec);
    }
    return out;
}

} // namespace litmus::pricing
