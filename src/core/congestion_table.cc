#include "core/congestion_table.h"

#include "common/logging.h"
#include "common/regression.h"

namespace litmus::pricing
{

void
CongestionTable::setBaseline(Language lang, const ProbeReading &reading)
{
    if (!reading.valid())
        fatal("CongestionTable::setBaseline: invalid reading");
    baselines_[lang] = reading;
}

const ProbeReading &
CongestionTable::baseline(Language lang) const
{
    const auto it = baselines_.find(lang);
    if (it == baselines_.end())
        fatal("CongestionTable: no baseline for ",
              workload::languageName(lang));
    return it->second;
}

void
CongestionTable::add(Language lang, GeneratorKind gen, unsigned level,
                     const CongestionEntry &entry)
{
    Series &s = series_[{lang, gen}];
    if (!s.levels.empty() && level <= s.levels.back())
        fatal("CongestionTable::add: levels must increase (", level,
              " after ", s.levels.back(), ")");
    s.levels.push_back(level);
    s.priv.push_back(entry.privSlowdown);
    s.shared.push_back(entry.sharedSlowdown);
    s.total.push_back(entry.totalSlowdown);
    s.l3.push_back(entry.l3MissPerUs);
}

const CongestionTable::Series &
CongestionTable::seriesFor(Language lang, GeneratorKind gen) const
{
    const auto it = series_.find({lang, gen});
    if (it == series_.end())
        fatal("CongestionTable: no series for ",
              workload::languageName(lang), " / ",
              workload::generatorName(gen));
    return it->second;
}

namespace
{

/** Interpolate one column of a series at a fractional level. */
double
interpColumn(const std::vector<double> &levels,
             const std::vector<double> &col, double level)
{
    if (level <= levels.front())
        return col.front();
    if (level >= levels.back())
        return col.back();
    for (std::size_t i = 1; i < levels.size(); ++i) {
        if (level <= levels[i]) {
            const double t =
                (level - levels[i - 1]) / (levels[i] - levels[i - 1]);
            return lerp(col[i - 1], col[i], t);
        }
    }
    return col.back();
}

} // namespace

CongestionEntry
CongestionTable::at(Language lang, GeneratorKind gen, double level) const
{
    const Series &s = seriesFor(lang, gen);
    if (s.levels.empty())
        fatal("CongestionTable::at: empty series");
    CongestionEntry e;
    e.privSlowdown = interpColumn(s.levels, s.priv, level);
    e.sharedSlowdown = interpColumn(s.levels, s.shared, level);
    e.totalSlowdown = interpColumn(s.levels, s.total, level);
    e.l3MissPerUs = interpColumn(s.levels, s.l3, level);
    return e;
}

const std::vector<double> &
CongestionTable::levels(Language lang, GeneratorKind gen) const
{
    return seriesFor(lang, gen).levels;
}

const std::vector<double> &
CongestionTable::privSeries(Language lang, GeneratorKind gen) const
{
    return seriesFor(lang, gen).priv;
}

const std::vector<double> &
CongestionTable::sharedSeries(Language lang, GeneratorKind gen) const
{
    return seriesFor(lang, gen).shared;
}

const std::vector<double> &
CongestionTable::totalSeries(Language lang, GeneratorKind gen) const
{
    return seriesFor(lang, gen).total;
}

const std::vector<double> &
CongestionTable::l3Series(Language lang, GeneratorKind gen) const
{
    return seriesFor(lang, gen).l3;
}

bool
CongestionTable::populated(Language lang, GeneratorKind gen) const
{
    const auto it = series_.find({lang, gen});
    return it != series_.end() && it->second.levels.size() >= 2;
}

} // namespace litmus::pricing
