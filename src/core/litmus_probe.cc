#include "core/litmus_probe.h"

#include "common/logging.h"

namespace litmus::pricing
{

ProbeReading
readProbe(const sim::ProbeCapture &capture)
{
    if (!capture.started || !capture.complete)
        fatal("readProbe: probe capture incomplete");

    const sim::TaskCounters task =
        capture.taskAtEnd.since(capture.taskAtStart);
    const sim::MachineCounters machine =
        capture.machineAtEnd.since(capture.machineAtStart);

    if (task.instructions <= 0)
        fatal("readProbe: empty probe window");

    ProbeReading reading;
    reading.instructions = task.instructions;
    reading.privCpi = task.privateCycles() / task.instructions;
    reading.sharedCpi = task.stallSharedCycles / task.instructions;
    reading.machineL3MissPerUs = machine.l3MissRatePerUs();
    return reading;
}

ProbeReading
readProbe(const sim::Task &task)
{
    return readProbe(task.probe());
}

ProbeSlowdown
slowdownOf(const ProbeReading &reading, const ProbeReading &baseline)
{
    if (!reading.valid() || !baseline.valid())
        fatal("slowdownOf: invalid probe reading");
    if (baseline.privCpi <= 0 || baseline.sharedCpi <= 0 ||
        baseline.totalCpi() <= 0) {
        fatal("slowdownOf: degenerate baseline (privCpi=",
              baseline.privCpi, " sharedCpi=", baseline.sharedCpi, ")");
    }
    ProbeSlowdown s;
    s.priv = reading.privCpi / baseline.privCpi;
    s.shared = reading.sharedCpi / baseline.sharedCpi;
    s.total = reading.totalCpi() / baseline.totalCpi();
    return s;
}

} // namespace litmus::pricing
