#include "core/profile_store.h"

#include "common/logging.h"

namespace litmus::pricing
{

ProfileStore &
ProfileStore::instance()
{
    static ProfileStore store;
    return store;
}

ProfileStore::ProfilePtr
ProfileStore::dedicated(const std::string &machine_name)
{
    // Resolve outside getOrCalibrate so an unknown name fails fast
    // with the catalog message instead of mid-calibration.
    const sim::MachineConfig machine =
        sim::MachineCatalog::get(machine_name);
    return getOrCalibrate("dedicated/" + machine.name, [&machine] {
        return calibrate(dedicatedCalibrationFor(machine));
    });
}

ProfileStore::ProfilePtr
ProfileStore::getOrCalibrate(
    const std::string &key,
    const std::function<CalibrationProfile()> &produce)
{
    std::promise<ProfilePtr> promise;
    std::shared_future<ProfilePtr> future;
    bool owner = false;
    {
        MutexLock lock(&mutex_);
        const auto it = profiles_.find(key);
        if (it != profiles_.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            profiles_.emplace(key, future);
            owner = true;
        }
    }
    if (!owner) {
        // Another thread owns (or finished) this calibration; wait.
        return future.get();
    }
    // This thread inserted the entry: calibrate outside the lock so
    // other keys stay available meanwhile. If produce() throws, the
    // exception reaches current waiters but the entry is dropped, so
    // later requests retry instead of hitting a poisoned future.
    try {
        ProfilePtr profile =
            std::make_shared<const CalibrationProfile>(produce());
        promise.set_value(profile);
        return profile;
    } catch (...) {
        promise.set_exception(std::current_exception());
        MutexLock lock(&mutex_);
        profiles_.erase(key);
        throw;
    }
}

void
ProfileStore::put(const std::string &key, CalibrationProfile profile)
{
    std::promise<ProfilePtr> ready;
    ready.set_value(
        std::make_shared<const CalibrationProfile>(std::move(profile)));
    MutexLock lock(&mutex_);
    profiles_[key] = ready.get_future().share();
}

ProfileStore::ProfilePtr
ProfileStore::find(const std::string &key) const
{
    std::shared_future<ProfilePtr> future;
    {
        MutexLock lock(&mutex_);
        const auto it = profiles_.find(key);
        if (it == profiles_.end())
            return nullptr;
        future = it->second;
    }
    // May block on an in-flight calibration of the same key; by the
    // time find() returns, the profile is real either way.
    return future.get();
}

void
ProfileStore::clear()
{
    // An in-flight calibration holds its own promise; dropping the
    // map only forgets finished or future entries, it cannot leave a
    // waiter dangling (shared_future keeps the state alive).
    MutexLock lock(&mutex_);
    profiles_.clear();
}

} // namespace litmus::pricing
