/**
 * @file
 * Serialization of calibration artifacts.
 *
 * Calibration is the expensive provider-side step; its output — the
 * congestion and performance tables plus the startup baselines — is a
 * deployable artifact. This module round-trips both tables through a
 * line-oriented text format so a fleet can calibrate once and load
 * everywhere:
 *
 *     litmus-tables v1
 *     baseline <lang> <privCpi> <sharedCpi> <instructions> <l3PerUs>
 *     congestion <lang> <gen> <level> <priv> <shared> <total> <l3PerUs>
 *     performance <gen> <level> <priv> <shared> <total>
 */

#ifndef LITMUS_CORE_TABLE_IO_H
#define LITMUS_CORE_TABLE_IO_H

#include <iosfwd>
#include <string>

#include "core/calibration.h"

namespace litmus::pricing
{

/** Serialize both tables (and baselines) to a stream. */
void saveTables(std::ostream &os, const CongestionTable &congestion,
                const PerformanceTable &performance);

/** Serialize to a file; fatal() when unwritable. */
void saveTables(const std::string &path,
                const CongestionTable &congestion,
                const PerformanceTable &performance);

/** Deserialized calibration artifact. */
struct LoadedTables
{
    CongestionTable congestion;
    PerformanceTable performance;
};

/** Parse tables from a stream; fatal() on malformed input. */
LoadedTables loadTables(std::istream &is);

/** Parse tables from a file; fatal() when unreadable. */
LoadedTables loadTables(const std::string &path);

} // namespace litmus::pricing

#endif // LITMUS_CORE_TABLE_IO_H
