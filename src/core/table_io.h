/**
 * @file
 * Serialization of calibration profiles.
 *
 * Calibration is the expensive provider-side step; its output — the
 * CalibrationProfile — is a deployable artifact. This module
 * round-trips a whole profile through a line-oriented text format so
 * a fleet can calibrate once and load everywhere:
 *
 *     litmus-tables v2
 *     machine <name>
 *     baseline <lang> <privCpi> <sharedCpi> <instructions> <l3PerUs>
 *     solo <function> <privCpi> <sharedCpi>
 *     congestion <lang> <gen> <level> <priv> <shared> <total> <l3PerUs>
 *     performance <gen> <level> <priv> <shared> <total>
 *
 * The v1 format (no machine/solo records) still loads; such legacy
 * artifacts carry an empty machine name, which requireMachine treats
 * as a wildcard. Doubles are written with 17 significant digits, so a
 * save/load round-trip is bit-exact.
 */

#ifndef LITMUS_CORE_TABLE_IO_H
#define LITMUS_CORE_TABLE_IO_H

#include <iosfwd>
#include <string>

#include "core/calibration.h"

namespace litmus::pricing
{

/** Serialize a whole profile (v2) to a stream. */
void saveProfile(std::ostream &os, const CalibrationProfile &profile);

/** Serialize to a file; fatal() when unwritable. */
void saveProfile(const std::string &path,
                 const CalibrationProfile &profile);

/** Parse a profile (v1 or v2) from a stream; fatal() on malformed
 *  input. */
CalibrationProfile loadProfile(std::istream &is);

/** Parse a profile from a file; fatal() when unreadable. */
CalibrationProfile loadProfile(const std::string &path);

} // namespace litmus::pricing

#endif // LITMUS_CORE_TABLE_IO_H
